package servicemgr

import (
	"testing"
)

func TestReconcileRepairsAfterFailure(t *testing.T) {
	f := newFixture(t)
	m := New(f.eng, f.dep, f.sm, cfg())
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	// Kill s1's VM behind the manager's back (a silent node crash).
	m.active["s1"].StopAll()
	if m.Running() != 2 {
		t.Fatalf("Running = %d after silent kill", m.Running())
	}
	n := m.Reconcile()
	if n != 1 {
		t.Errorf("Reconcile deployed %d", n)
	}
	if m.Running() != 3 {
		t.Errorf("Running = %d after reconcile", m.Running())
	}
	// s1 was never marked down (the crash was silent), so it is the first
	// spare candidate: the dead slice is pruned and a fresh one deployed.
	if s := m.active["s1"]; s == nil || s.Running() != 1 {
		t.Error("s1 not redeployed with a live slice")
	}
}

func TestReconcileSkipsDownSites(t *testing.T) {
	f := newFixture(t)
	m := New(f.eng, f.dep, f.sm, cfg())
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	// s0 fails; its replacement must not be s3-marked-down either.
	if _, err := m.SiteFailed("s0"); err != nil {
		t.Fatal(err)
	}
	m.active["s3"].StopAll() // kill the replacement silently
	m.downAt["s3"] = f.eng.Now()
	n := m.Reconcile()
	if n != 1 {
		t.Fatalf("Reconcile deployed %d", n)
	}
	for _, site := range m.ActiveSites() {
		if site == "s0" || site == "s3" {
			t.Errorf("reconcile deployed to down site %s", site)
		}
	}
	if m.Running() != 3 {
		t.Errorf("Running = %d", m.Running())
	}
}

func TestSiteFailedSkipsDownCandidates(t *testing.T) {
	f := newFixture(t)
	m := New(f.eng, f.dep, f.sm, cfg())
	if err := m.Start(); err != nil {
		t.Fatal(err) // active: s0 s1 s2
	}
	// s3 is known-down; when s0 fails the spare must be s4, not s3.
	m.downAt["s3"] = f.eng.Now()
	repl, err := m.SiteFailed("s0")
	if err != nil {
		t.Fatal(err)
	}
	if repl != "s4" {
		t.Errorf("replacement = %s, want s4", repl)
	}
}

func TestReconcileBeforeStartIsNoop(t *testing.T) {
	f := newFixture(t)
	m := New(f.eng, f.dep, f.sm, cfg())
	if n := m.Reconcile(); n != 0 {
		t.Errorf("Reconcile before Start deployed %d", n)
	}
}

func TestTargetAccessor(t *testing.T) {
	f := newFixture(t)
	m := New(f.eng, f.dep, f.sm, cfg())
	if m.Target() != 3 {
		t.Errorf("Target = %d", m.Target())
	}
}
