// Package servicemgr implements the application-level service manager
// the paper's PlanetLab sections presuppose: a controller that keeps a
// long-lived network service at its target number of points of presence,
// buying resources through a SHARP broker and redeploying around site
// failures. "It is envisaged that high-value services ... will be built
// by the user community" (§2.2) — this is the management half of such a
// service, and the live counterpart of experiment E10's availability
// math.
package servicemgr

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/broker"
	"repro/internal/identity"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Controller errors.
var (
	ErrAlreadyStarted = errors.New("servicemgr: already started")
	ErrNoSpareSites   = errors.New("servicemgr: no spare site with stock")
)

// Config shapes a managed service.
type Config struct {
	Name string
	// Target is the desired number of simultaneous points of presence.
	Target int
	// CPUPerSite is the per-PoP resource ask.
	CPUPerSite float64
	// Candidates is the ordered site preference list (must have at least
	// Target entries to reach full strength).
	Candidates []string
	// Lease bounds each deployment's resource claim.
	Lease time.Duration
}

// Manager keeps a service at strength across failures.
type Manager struct {
	cfg Config
	eng *sim.Engine
	dep *broker.Deployer
	sm  *identity.Principal

	active map[string]*vm.Slice // site -> its single-VM slice
	downAt map[string]time.Duration

	// RedeployN counts failure-driven redeployments; DegradedTime
	// accumulates time spent below Target strength.
	RedeployN     int
	DegradedTime  time.Duration
	degraded      bool
	degradedSince time.Duration
	started       bool

	// Observability handles (inert when no tracer is installed).
	tr                     *obs.Tracer
	cRedeploys, cFailovers *obs.Counter
}

// SetTracer installs an observability tracer. A nil tracer (the default)
// keeps every instrumentation point inert.
func (m *Manager) SetTracer(tr *obs.Tracer) {
	m.tr = tr
	m.cRedeploys = tr.Counter("svc.redeploys")
	m.cFailovers = tr.Counter("svc.site_failures")
	tr.GaugeFunc("svc."+m.cfg.Name+".running", func() float64 { return float64(m.Running()) })
}

// New builds a manager over an (already stocked) deployer.
func New(eng *sim.Engine, dep *broker.Deployer, sm *identity.Principal, cfg Config) *Manager {
	return &Manager{
		cfg:    cfg,
		eng:    eng,
		dep:    dep,
		sm:     sm,
		active: make(map[string]*vm.Slice),
		downAt: make(map[string]time.Duration),
	}
}

// Start deploys to the first Target candidate sites. Partial success is
// tolerated (the manager runs degraded and counts the time).
func (m *Manager) Start() error {
	if m.started {
		return ErrAlreadyStarted
	}
	var span obs.SpanContext
	if m.tr != nil {
		span = m.tr.Begin("svc.start",
			obs.String("service", m.cfg.Name), obs.Int("target", m.cfg.Target))
	}
	restore := m.tr.EnterScope(span)
	defer restore()
	m.started = true
	for _, site := range m.cfg.Candidates {
		if len(m.active) >= m.cfg.Target {
			break
		}
		m.tryDeploy(site)
	}
	m.accountStrength()
	if len(m.active) == 0 {
		err := fmt.Errorf("servicemgr: %s could not reach any site", m.cfg.Name)
		span.End(obs.Err(err))
		return err
	}
	span.End(obs.Int("deployed", len(m.active)))
	return nil
}

func (m *Manager) tryDeploy(site string) bool {
	now := m.eng.Now()
	slice, err := m.dep.DeploySlice(
		fmt.Sprintf("%s@%s", m.cfg.Name, site), m.sm,
		m.cfg.CPUPerSite, now, now+m.cfg.Lease, []string{site})
	if err != nil {
		return false
	}
	m.active[site] = slice
	return true
}

// Target returns the configured desired strength.
func (m *Manager) Target() int { return m.cfg.Target }

// Running returns the current number of live points of presence.
func (m *Manager) Running() int {
	n := 0
	for _, s := range m.active {
		n += s.Running()
	}
	return n
}

// ActiveSites returns the sites currently hosting the service, sorted.
func (m *Manager) ActiveSites() []string {
	out := make([]string, 0, len(m.active))
	for s := range m.active {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// accountStrength tracks degraded time: below-target intervals are
// integrated into DegradedTime.
func (m *Manager) accountStrength() {
	now := m.eng.Now()
	below := m.Running() < m.cfg.Target
	switch {
	case below && !m.degraded:
		m.degraded = true
		m.degradedSince = now
	case !below && m.degraded:
		m.degraded = false
		m.DegradedTime += now - m.degradedSince
	}
}

// closeAccounting flushes an open degraded interval (shutdown path).
func (m *Manager) closeAccounting() {
	if m.degraded {
		m.DegradedTime += m.eng.Now() - m.degradedSince
		m.degraded = false
	}
}

// SiteFailed informs the manager that a site died: its VM is torn down
// and a spare candidate (not active, not recently failed, with broker
// stock) takes its place. Returns the replacement site, or an error when
// the service must run degraded.
func (m *Manager) SiteFailed(site string) (string, error) {
	var span obs.SpanContext
	if m.tr != nil {
		span = m.tr.Begin("svc.site_failed",
			obs.String("service", m.cfg.Name), obs.String("site", site))
	}
	restore := m.tr.EnterScope(span)
	defer restore()
	m.cFailovers.Inc()
	m.downAt[site] = m.eng.Now()
	if slice, ok := m.active[site]; ok {
		slice.StopAll()
		delete(m.active, site)
	}
	m.accountStrength()
	for _, cand := range m.cfg.Candidates {
		if _, isActive := m.active[cand]; isActive {
			continue
		}
		if cand == site {
			continue
		}
		if _, isDown := m.downAt[cand]; isDown {
			continue
		}
		if m.dep.Inventory(cand) < m.cfg.CPUPerSite {
			continue
		}
		if m.tryDeploy(cand) {
			m.RedeployN++
			m.cRedeploys.Inc()
			m.accountStrength()
			span.End(obs.String("replacement", cand))
			return cand, nil
		}
	}
	span.End(obs.Err(ErrNoSpareSites))
	return "", ErrNoSpareSites
}

// SiteRecovered clears a site's failure mark so it can be reused.
func (m *Manager) SiteRecovered(site string) {
	delete(m.downAt, site)
}

// Reconcile is the repair pass fault recovery hooks call after sites come
// back: dead slices are pruned and spare candidates (not active, not
// marked down, with stock) are deployed until the service is back at
// Target strength. It returns the number of new deployments.
func (m *Manager) Reconcile() int {
	if !m.started {
		return 0
	}
	var span obs.SpanContext
	if m.tr != nil {
		span = m.tr.Begin("svc.reconcile", obs.String("service", m.cfg.Name))
	}
	restore := m.tr.EnterScope(span)
	defer restore()
	for _, site := range m.ActiveSites() {
		if m.active[site].Running() == 0 {
			m.active[site].StopAll()
			delete(m.active, site)
		}
	}
	n := 0
	for _, cand := range m.cfg.Candidates {
		if m.Running() >= m.cfg.Target {
			break
		}
		if _, isActive := m.active[cand]; isActive {
			continue
		}
		if _, isDown := m.downAt[cand]; isDown {
			continue
		}
		if m.dep.Inventory(cand) < m.cfg.CPUPerSite {
			continue
		}
		if m.tryDeploy(cand) {
			m.RedeployN++
			m.cRedeploys.Inc()
			n++
		}
	}
	m.accountStrength()
	span.End(obs.Int("deployed", n))
	return n
}

// Stop tears the whole service down, closing the degraded-time books.
func (m *Manager) Stop() {
	for site, slice := range m.active {
		slice.StopAll()
		delete(m.active, site)
	}
	m.closeAccounting()
}
