// Package servicemgr implements the application-level service manager
// the paper's PlanetLab sections presuppose: a controller that keeps a
// long-lived network service at its target number of points of presence,
// buying resources through a SHARP broker and redeploying around site
// failures. "It is envisaged that high-value services ... will be built
// by the user community" (§2.2) — this is the management half of such a
// service, and the live counterpart of experiment E10's availability
// math.
//
// The manager owns its leases end to end: every deployment's SHARP
// leases are recorded, a watchdog enforces their expiry (a PoP whose
// lease lapsed is down, whatever the VM thinks), and — when a resilience
// kit is installed — a keepalive loop renews them before they lapse,
// retries failed deployments with deterministic backoff, and skips
// failover candidates whose circuit breaker has written the site off.
package servicemgr

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/broker"
	"repro/internal/identity"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/sharp"
	"repro/internal/sim"
	"repro/internal/trust"
	"repro/internal/vm"
)

// Controller errors.
var (
	ErrAlreadyStarted = errors.New("servicemgr: already started")
	ErrNoSpareSites   = errors.New("servicemgr: no spare site with stock")

	errDeployFailed = errors.New("servicemgr: deploy attempt failed")
)

// Config shapes a managed service.
type Config struct {
	Name string
	// Target is the desired number of simultaneous points of presence.
	Target int
	// CPUPerSite is the per-PoP resource ask.
	CPUPerSite float64
	// Candidates is the ordered site preference list (must have at least
	// Target entries to reach full strength).
	Candidates []string
	// Lease bounds each deployment's resource claim.
	Lease time.Duration
}

// Manager keeps a service at strength across failures.
type Manager struct {
	cfg Config
	eng *sim.Engine
	dep *broker.Deployer
	sm  *identity.Principal
	kit *resilience.Kit

	active   map[string]*vm.Slice // site -> its single-VM slice
	downAt   map[string]time.Duration
	leases   map[string][]*sharp.Lease
	leaseExp map[string]time.Duration // site -> earliest lease NotAfter
	watchdog map[string]sim.Event
	retrying map[string]bool // a background deploy retry is in flight

	// trust, when set, receives every exchange purchase outcome so the
	// manager's broker scores converge on actual redeem success.
	trust *trust.Scoreboard
	// TrustReportErrs counts scoreboard reports that were refused
	// (malformed seller names — should stay zero).
	TrustReportErrs int

	// RedeployN counts failure-driven redeployments; LeaseLapsedN counts
	// PoPs torn down because their lease expired under them; DegradedTime
	// accumulates time spent below Target strength.
	RedeployN     int
	LeaseLapsedN  int
	DegradedTime  time.Duration
	degraded      bool
	degradedSince time.Duration
	started       bool

	// Observability handles (inert when no tracer is installed).
	tr                     *obs.Tracer
	cRedeploys, cFailovers *obs.Counter
	cLapses                *obs.Counter
}

// SetTracer installs an observability tracer. A nil tracer (the default)
// keeps every instrumentation point inert.
func (m *Manager) SetTracer(tr *obs.Tracer) {
	m.tr = tr
	m.cRedeploys = tr.Counter("svc.redeploys")
	m.cFailovers = tr.Counter("svc.site_failures")
	m.cLapses = tr.Counter("svc.lease_lapses")
	tr.GaugeFunc("svc."+m.cfg.Name+".running", func() float64 { return float64(m.Running()) })
}

// SetResilience installs the federation's resilience kit: lease
// keepalive, deploy retry, and breaker-gated failover. Call before
// Start.
func (m *Manager) SetResilience(kit *resilience.Kit) { m.kit = kit }

// SetTrust installs the broker scoreboard the manager reports exchange
// purchase outcomes to. The deployer's Exchange reads the same
// scoreboard when weighting sellers, closing the reputation loop:
// service managers keep the scores, the market consults them. Call
// before Start.
func (m *Manager) SetTrust(sb *trust.Scoreboard) { m.trust = sb }

// reportOutcomes folds one deployment's market outcomes into the
// scoreboard (no-op without SetTrust or on the house-agent path, where
// there are no outcomes).
func (m *Manager) reportOutcomes(res *broker.DeployResult) {
	if m.trust == nil || res == nil {
		return
	}
	for _, o := range res.Outcomes {
		if err := m.trust.ReportOutcome(o.Seller, o.OK); err != nil {
			m.TrustReportErrs++
		}
	}
}

// New builds a manager over an (already stocked) deployer.
func New(eng *sim.Engine, dep *broker.Deployer, sm *identity.Principal, cfg Config) *Manager {
	return &Manager{
		cfg:      cfg,
		eng:      eng,
		dep:      dep,
		sm:       sm,
		active:   make(map[string]*vm.Slice),
		downAt:   make(map[string]time.Duration),
		leases:   make(map[string][]*sharp.Lease),
		leaseExp: make(map[string]time.Duration),
		watchdog: make(map[string]sim.Event),
		retrying: make(map[string]bool),
	}
}

// Start deploys to the first Target candidate sites. Partial success is
// tolerated (the manager runs degraded and counts the time).
func (m *Manager) Start() error {
	if m.started {
		return ErrAlreadyStarted
	}
	var span obs.SpanContext
	if m.tr != nil {
		span = m.tr.Begin("svc.start",
			obs.String("service", m.cfg.Name), obs.Int("target", m.cfg.Target))
	}
	restore := m.tr.EnterScope(span)
	defer restore()
	m.started = true
	for _, site := range m.cfg.Candidates {
		if len(m.active) >= m.cfg.Target {
			break
		}
		m.tryDeploy(site)
	}
	m.accountStrength()
	if len(m.active) == 0 {
		err := fmt.Errorf("servicemgr: %s could not reach any site", m.cfg.Name)
		span.End(obs.Err(err))
		return err
	}
	span.End(obs.Int("deployed", len(m.active)))
	return nil
}

// tryDeploy attempts one site now; on failure (with a kit installed) a
// background retry keeps working the site under the kit's policy.
func (m *Manager) tryDeploy(site string) bool {
	if m.deployOnce(site) {
		return true
	}
	m.scheduleRetry(site)
	return false
}

// deployOnce is a single deployment attempt: on success the site's
// leases go under watchdog (and keepalive, when a kit is present).
func (m *Manager) deployOnce(site string) bool {
	now := m.eng.Now()
	res, err := m.dep.DeploySlice(
		fmt.Sprintf("%s@%s", m.cfg.Name, site), m.sm,
		m.cfg.CPUPerSite, now, now+m.cfg.Lease, []string{site})
	m.reportOutcomes(res)
	if err != nil {
		return false
	}
	m.active[site] = res.Slice
	m.leases[site] = res.Leases[site]
	m.armLease(site)
	return true
}

// scheduleRetry keeps a failed deployment alive in the background: each
// attempt re-checks that the site is still wanted, so a retry whose site
// came up some other way (or whose service stopped) ends quietly.
func (m *Manager) scheduleRetry(site string) {
	if m.kit == nil || m.retrying[site] {
		return
	}
	m.retrying[site] = true
	m.kit.Retry.Do("svc.deploy."+site, nil,
		func(_ int, done func(error)) {
			if !m.wantsSite(site) {
				done(nil)
				return
			}
			if m.deployOnce(site) {
				done(nil)
				return
			}
			done(fmt.Errorf("%w: %s", errDeployFailed, site))
		},
		func(error) {
			m.retrying[site] = false
			m.accountStrength()
		})
}

// wantsSite reports whether a background retry should still pursue the
// site.
func (m *Manager) wantsSite(site string) bool {
	if !m.started || m.Running() >= m.cfg.Target {
		return false
	}
	if _, isActive := m.active[site]; isActive {
		return false
	}
	if _, isDown := m.downAt[site]; isDown {
		return false
	}
	return true
}

// armLease records the site's lease horizon, arms the expiry watchdog,
// and (with a kit) starts keepalive renewal at the configured lead.
func (m *Manager) armLease(site string) {
	leases := m.leases[site]
	if len(leases) == 0 {
		return
	}
	exp := leases[0].NotAfter
	for _, l := range leases[1:] {
		if l.NotAfter < exp {
			exp = l.NotAfter
		}
	}
	m.leaseExp[site] = exp
	m.armWatchdog(site, exp)
	if m.kit != nil {
		// No breaker at the executor layer: RenewLease runs the deployer's
		// own connectivity gate over the same breaker, and gating twice
		// would have the two layers fight over the half-open probe slot.
		m.kit.Renewer.Track(site, exp, m.cfg.Lease, nil, m.renewSite(site))
	}
}

// armWatchdog (re)schedules lease-expiry enforcement for a site.
func (m *Manager) armWatchdog(site string, exp time.Duration) {
	if ev, ok := m.watchdog[site]; ok {
		m.eng.Cancel(ev)
	}
	at := exp
	if now := m.eng.Now(); at < now {
		at = now
	}
	m.watchdog[site] = m.eng.At(at, func() { m.leaseExpired(site, exp) })
}

// renewSite returns the keepalive callback for one site: extend every
// lease backing the PoP to the target, then push the watchdog out.
func (m *Manager) renewSite(site string) resilience.RenewFunc {
	return func(target time.Duration, done func(error)) {
		leases := m.leases[site]
		if len(leases) == 0 {
			done(nil)
			return
		}
		for _, l := range leases {
			if err := m.dep.RenewLease(m.sm, l, target); err != nil {
				done(err)
				return
			}
		}
		m.leaseExp[site] = target
		m.armWatchdog(site, target)
		done(nil)
	}
}

// leaseExpired is the watchdog: a PoP whose lease lapsed loses its
// resources, so the VM is stopped and the site vacated. The exp guard
// makes stale events (a renewal landed after this fired was scheduled)
// no-ops.
func (m *Manager) leaseExpired(site string, exp time.Duration) {
	if cur, ok := m.leaseExp[site]; !ok || cur != exp {
		return
	}
	delete(m.watchdog, site)
	if _, ok := m.active[site]; !ok {
		return
	}
	var span obs.SpanContext
	if m.tr != nil {
		span = m.tr.Begin("svc.lease_lapse",
			obs.String("service", m.cfg.Name), obs.String("site", site))
	}
	restore := m.tr.EnterScope(span)
	defer restore()
	m.LeaseLapsedN++
	m.cLapses.Inc()
	m.vacate(site)
	m.accountStrength()
	span.End()
}

// vacate tears down one site's PoP and all its lease bookkeeping: the
// VM stops, the leases go back to the authority (releasing an already
// lapsed lease just closes its audit record), the watchdog and
// keepalive stand down.
func (m *Manager) vacate(site string) {
	if slice, ok := m.active[site]; ok {
		slice.StopAll()
		delete(m.active, site)
	}
	if ev, ok := m.watchdog[site]; ok {
		m.eng.Cancel(ev)
		delete(m.watchdog, site)
	}
	m.dep.ReleaseLeases(m.leases[site])
	delete(m.leases, site)
	delete(m.leaseExp, site)
	if m.kit != nil {
		m.kit.Renewer.Untrack(site)
	}
}

// Target returns the configured desired strength.
func (m *Manager) Target() int { return m.cfg.Target }

// Running returns the current number of live points of presence.
func (m *Manager) Running() int {
	n := 0
	for _, s := range m.active {
		n += s.Running()
	}
	return n
}

// ActiveSites returns the sites currently hosting the service, sorted.
func (m *Manager) ActiveSites() []string {
	out := make([]string, 0, len(m.active))
	for s := range m.active {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// LeaseHorizon reports when the site's earliest lease expires (ok=false
// when the site holds no leases). Invariant audits use this: an active
// PoP at a healthy site must never be past its horizon.
func (m *Manager) LeaseHorizon(site string) (time.Duration, bool) {
	exp, ok := m.leaseExp[site]
	return exp, ok
}

// DegradedSoFar returns degraded time including any open below-target
// interval, so availability can be computed mid-run without closing the
// books.
func (m *Manager) DegradedSoFar() time.Duration {
	if m.degraded {
		return m.DegradedTime + (m.eng.Now() - m.degradedSince)
	}
	return m.DegradedTime
}

// accountStrength tracks degraded time: below-target intervals are
// integrated into DegradedTime.
func (m *Manager) accountStrength() {
	now := m.eng.Now()
	below := m.Running() < m.cfg.Target
	switch {
	case below && !m.degraded:
		m.degraded = true
		m.degradedSince = now
	case !below && m.degraded:
		m.degraded = false
		m.DegradedTime += now - m.degradedSince
	}
}

// closeAccounting flushes an open degraded interval (shutdown path).
func (m *Manager) closeAccounting() {
	if m.degraded {
		m.DegradedTime += m.eng.Now() - m.degradedSince
		m.degraded = false
	}
}

// breakerReady reports whether the site's breaker admits new work (true
// when no kit is installed).
func (m *Manager) breakerReady(site string) bool {
	if m.kit == nil {
		return true
	}
	return m.kit.Breakers.For(site).Ready()
}

// SiteFailed informs the manager that a site died: its VM is torn down
// and a spare candidate (not active, not recently failed, not written
// off by its breaker, with broker stock) takes its place. Returns the
// replacement site, or an error when the service must run degraded.
func (m *Manager) SiteFailed(site string) (string, error) {
	var span obs.SpanContext
	if m.tr != nil {
		span = m.tr.Begin("svc.site_failed",
			obs.String("service", m.cfg.Name), obs.String("site", site))
	}
	restore := m.tr.EnterScope(span)
	defer restore()
	m.cFailovers.Inc()
	m.downAt[site] = m.eng.Now()
	if _, ok := m.active[site]; ok {
		m.vacate(site)
	}
	m.accountStrength()
	for _, cand := range m.cfg.Candidates {
		if _, isActive := m.active[cand]; isActive {
			continue
		}
		if cand == site {
			continue
		}
		if _, isDown := m.downAt[cand]; isDown {
			continue
		}
		if !m.breakerReady(cand) {
			continue
		}
		if m.dep.Inventory(cand) < m.cfg.CPUPerSite {
			continue
		}
		if m.tryDeploy(cand) {
			m.RedeployN++
			m.cRedeploys.Inc()
			m.accountStrength()
			span.End(obs.String("replacement", cand))
			return cand, nil
		}
	}
	span.End(obs.Err(ErrNoSpareSites))
	return "", ErrNoSpareSites
}

// SiteRecovered clears a site's failure mark so it can be reused.
func (m *Manager) SiteRecovered(site string) {
	delete(m.downAt, site)
}

// Reconcile is the repair pass fault recovery hooks call after sites come
// back: dead slices are pruned and spare candidates (not active, not
// marked down, breaker-admitted, with stock) are deployed until the
// service is back at Target strength. It returns the number of new
// deployments.
func (m *Manager) Reconcile() int {
	if !m.started {
		return 0
	}
	var span obs.SpanContext
	if m.tr != nil {
		span = m.tr.Begin("svc.reconcile", obs.String("service", m.cfg.Name))
	}
	restore := m.tr.EnterScope(span)
	defer restore()
	for _, site := range m.ActiveSites() {
		if m.active[site].Running() == 0 {
			m.vacate(site)
		}
	}
	n := 0
	for _, cand := range m.cfg.Candidates {
		if m.Running() >= m.cfg.Target {
			break
		}
		if _, isActive := m.active[cand]; isActive {
			continue
		}
		if _, isDown := m.downAt[cand]; isDown {
			continue
		}
		if !m.breakerReady(cand) {
			continue
		}
		if m.dep.Inventory(cand) < m.cfg.CPUPerSite {
			continue
		}
		if m.tryDeploy(cand) {
			m.RedeployN++
			m.cRedeploys.Inc()
			n++
		}
	}
	m.accountStrength()
	span.End(obs.Int("deployed", n))
	return n
}

// Stop tears the whole service down, closing the degraded-time books.
func (m *Manager) Stop() {
	for _, site := range m.ActiveSites() {
		m.vacate(site)
	}
	m.closeAccounting()
}
