package servicemgr

import (
	"testing"
	"time"

	"repro/internal/capability"
	"repro/internal/resilience"
)

// shortCfg is a service whose 2-hour leases actually matter inside the
// test horizon.
func shortCfg() Config {
	return Config{
		Name:       "cdn",
		Target:     3,
		CPUPerSite: 1,
		Candidates: []string{"s0", "s1", "s2", "s3", "s4"},
		Lease:      2 * time.Hour,
	}
}

func TestLeaseLapseTearsDownPoP(t *testing.T) {
	// Without a resilience kit nothing renews: the watchdog must enforce
	// expiry instead of letting VMs run on resources they no longer hold.
	f := newFixture(t)
	m := New(f.eng, f.dep, f.sm, shortCfg())
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if m.Running() != 3 {
		t.Fatalf("Running = %d", m.Running())
	}
	f.eng.RunUntil(3 * time.Hour)
	if m.Running() != 0 {
		t.Errorf("Running = %d after lease expiry", m.Running())
	}
	if m.LeaseLapsedN != 3 {
		t.Errorf("LeaseLapsedN = %d", m.LeaseLapsedN)
	}
	// Lapsed PoPs' resources went back to the nodes.
	if got := f.dep.Sites["s0"].NM.Available(capability.CPU); got != 4 {
		t.Errorf("s0 Available = %v after lapse, want 4", got)
	}
	m.Stop() // close the open degraded interval
	if m.DegradedTime == 0 {
		t.Error("no degraded time accrued after total lapse")
	}
}

func TestKeepaliveRenewalPreventsLapse(t *testing.T) {
	f := newFixture(t)
	// Renewals re-sell and eventually restock; give the authorities soft
	// headroom (issued claims are never un-issued).
	for _, s := range f.dep.Sites {
		s.Authority.SetOversellFactor(100)
	}
	kit := resilience.NewKit(f.eng, f.eng.ForkRand(), nil)
	m := New(f.eng, f.dep, f.sm, shortCfg())
	m.SetResilience(kit)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	f.eng.RunUntil(12 * time.Hour)
	if m.Running() != 3 {
		t.Errorf("Running = %d at 12h with keepalive", m.Running())
	}
	if m.LeaseLapsedN != 0 {
		t.Errorf("LeaseLapsedN = %d", m.LeaseLapsedN)
	}
	// 2h leases renewed at 1.5h then every 2h: at least 5 cycles per site.
	if kit.Renewer.RenewedN < 15 {
		t.Errorf("RenewedN = %d, want >= 15", kit.Renewer.RenewedN)
	}
	for _, site := range m.ActiveSites() {
		exp, ok := m.LeaseHorizon(site)
		if !ok || exp <= f.eng.Now() {
			t.Errorf("site %s horizon %v not ahead of now %v", site, exp, f.eng.Now())
		}
	}
	// Teardown stops the keepalive loop.
	m.Stop()
	for _, site := range []string{"s0", "s1", "s2"} {
		if kit.Renewer.Tracked(site) {
			t.Errorf("site %s still tracked after Stop", site)
		}
	}
}

func TestFailoverSkipsOpenBreaker(t *testing.T) {
	f := newFixture(t)
	kit := resilience.NewKit(f.eng, f.eng.ForkRand(), nil)
	m := New(f.eng, f.dep, f.sm, cfg())
	m.SetResilience(kit)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	// The broker has written s3 off; failover must go to s4 instead.
	br := kit.Breakers.For("s3")
	for i := 0; i < 3; i++ {
		br.Failure()
	}
	rep, err := m.SiteFailed("s1")
	if err != nil {
		t.Fatal(err)
	}
	if rep != "s4" {
		t.Errorf("replacement = %q, want s4 (s3 breaker open)", rep)
	}
}

func TestBackgroundRetryRecoversDeploy(t *testing.T) {
	// s3 has no stock when s1 fails, so the immediate failover finds no
	// spare; the background retry picks the site up once stock arrives.
	f := newFixture(t)
	for _, s := range f.dep.Sites {
		s.Authority.SetOversellFactor(100) // the test re-stocks s3 later
	}
	kit := resilience.NewKit(f.eng, f.eng.ForkRand(), nil)
	c := cfg()
	c.Candidates = []string{"s0", "s1", "s2", "s3"}
	m := New(f.eng, f.dep, f.sm, c)
	m.SetResilience(kit)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	// Drain s3's broker stock (a plain sale, no node capacity consumed)
	// so the failover attempt finds no spare.
	if _, err := f.dep.Agent.Sell(f.sm.Name, f.sm.Public(), "s3", capability.CPU,
		f.dep.Inventory("s3"), 0, 1000*time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SiteFailed("s1"); err == nil {
		t.Fatal("failover unexpectedly found a spare")
	}
	if m.Running() != 2 {
		t.Fatalf("Running = %d", m.Running())
	}
	// Stock returns; the next reconcile (the repair pass fault hooks run)
	// restores strength.
	f.eng.RunUntil(time.Hour)
	if err := f.dep.Stock(4, f.eng.Now(), f.eng.Now()+1000*time.Hour, "s3"); err != nil {
		t.Fatal(err)
	}
	if n := m.Reconcile(); n != 1 {
		t.Errorf("Reconcile deployed %d, want 1", n)
	}
	if m.Running() != 3 {
		t.Errorf("Running = %d after repair", m.Running())
	}
}
