package servicemgr

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/capability"
	"repro/internal/identity"
	"repro/internal/sharp"
	"repro/internal/silk"
	"repro/internal/sim"
)

type fixture struct {
	eng *sim.Engine
	dep *broker.Deployer
	sm  *identity.Principal
}

// newFixture builds 5 candidate sites with 4 CPU each, fully stocked.
func newFixture(t *testing.T) *fixture {
	t.Helper()
	eng := sim.NewEngine(13)
	rng := rand.New(rand.NewSource(13))
	sites := make(map[string]*broker.SiteRuntime)
	names := []string{"s0", "s1", "s2", "s3", "s4"}
	for _, s := range names {
		nm := capability.NewNodeManager(s, eng, rng, map[capability.ResourceType]float64{capability.CPU: 4})
		node := silk.NewNode(eng, s, silk.NodeSpec{Cores: 4, MemBytes: 1 << 30, DiskBytes: 1 << 34, NetBps: 1e7, MaxFDs: 512})
		auth := sharp.NewAuthority(eng, s, identity.NewPrincipal("auth@"+s, rng), nm,
			map[capability.ResourceType]float64{capability.CPU: 4})
		sites[s] = &broker.SiteRuntime{Authority: auth, NM: nm, Node: node}
	}
	dep := &broker.Deployer{Agent: sharp.NewAgent(identity.NewPrincipal("agent", rng)), Sites: sites}
	if err := dep.Stock(4, 0, 1000*time.Hour, names...); err != nil {
		t.Fatal(err)
	}
	return &fixture{eng: eng, dep: dep, sm: identity.NewPrincipal("sm", rng)}
}

func cfg() Config {
	return Config{
		Name:       "cdn",
		Target:     3,
		CPUPerSite: 1,
		Candidates: []string{"s0", "s1", "s2", "s3", "s4"},
		Lease:      1000 * time.Hour,
	}
}

func TestStartReachesTarget(t *testing.T) {
	f := newFixture(t)
	m := New(f.eng, f.dep, f.sm, cfg())
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if m.Running() != 3 {
		t.Errorf("Running = %d", m.Running())
	}
	sites := m.ActiveSites()
	if len(sites) != 3 || sites[0] != "s0" || sites[2] != "s2" {
		t.Errorf("ActiveSites = %v (preference order violated)", sites)
	}
	if err := m.Start(); !errors.Is(err, ErrAlreadyStarted) {
		t.Errorf("double start: %v", err)
	}
}

func TestFailureTriggersRedeploy(t *testing.T) {
	f := newFixture(t)
	m := New(f.eng, f.dep, f.sm, cfg())
	m.Start()
	replacement, err := m.SiteFailed("s1")
	if err != nil {
		t.Fatal(err)
	}
	if replacement != "s3" {
		t.Errorf("replacement = %q, want s3 (next candidate)", replacement)
	}
	if m.Running() != 3 {
		t.Errorf("Running = %d after redeploy", m.Running())
	}
	if m.RedeployN != 1 {
		t.Errorf("RedeployN = %d", m.RedeployN)
	}
	// s1's resources were released at its node.
	if got := f.dep.Sites["s1"].NM.Available(capability.CPU); got != 4 {
		t.Errorf("failed site capacity = %v", got)
	}
}

func TestExhaustedSparesRunDegraded(t *testing.T) {
	f := newFixture(t)
	c := cfg()
	c.Target = 5 // all candidates active from the start
	m := New(f.eng, f.dep, f.sm, c)
	m.Start()
	if m.Running() != 5 {
		t.Fatalf("Running = %d", m.Running())
	}
	if _, err := m.SiteFailed("s2"); !errors.Is(err, ErrNoSpareSites) {
		t.Errorf("err = %v", err)
	}
	if m.Running() != 4 {
		t.Errorf("Running = %d, want degraded 4", m.Running())
	}
	// Degraded time accrues until a site comes back.
	f.eng.RunUntil(10 * time.Hour)
	m.SiteRecovered("s2")
	if rep, err := m.SiteFailed("s4"); err != nil || rep != "s2" {
		// s2 recovered and has stock again? Its stock was consumed by the
		// original deploy (tickets are one-shot), so redeploy needs stock.
		t.Logf("redeploy after recover: rep=%q err=%v (stock-dependent)", rep, err)
	}
}

func TestDegradedTimeAccounting(t *testing.T) {
	f := newFixture(t)
	c := cfg()
	c.Target = 5
	m := New(f.eng, f.dep, f.sm, c)
	m.Start()
	f.eng.RunUntil(time.Hour)
	m.SiteFailed("s0") // degraded, no spare
	f.eng.RunUntil(3 * time.Hour)
	m.Stop() // still below target; accounting closes on state change
	if m.DegradedTime < 2*time.Hour {
		t.Errorf("DegradedTime = %v, want >= 2h", m.DegradedTime)
	}
}

func TestStopTearsDownEverything(t *testing.T) {
	f := newFixture(t)
	m := New(f.eng, f.dep, f.sm, cfg())
	m.Start()
	m.Stop()
	if m.Running() != 0 {
		t.Errorf("Running = %d after Stop", m.Running())
	}
	for _, s := range []string{"s0", "s1", "s2"} {
		if got := f.dep.Sites[s].NM.Available(capability.CPU); got != 4 {
			t.Errorf("site %s capacity = %v after Stop", s, got)
		}
	}
}

func TestInsufficientStockDegradesStart(t *testing.T) {
	f := newFixture(t)
	c := cfg()
	c.CPUPerSite = 5 // more than any site's stock
	m := New(f.eng, f.dep, f.sm, c)
	if err := m.Start(); err == nil {
		t.Error("start succeeded with no deployable site")
	}
	if m.Running() != 0 {
		t.Errorf("Running = %d", m.Running())
	}
}
