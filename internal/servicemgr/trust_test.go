package servicemgr

import (
	"testing"

	"repro/internal/broker"
	"repro/internal/trust"
)

// TestManagerReportsSellerOutcomes: with a trust scoreboard installed,
// every market outcome from a deploy feeds the seller's score — the
// manager is the buyer-side half of the reputation loop.
func TestManagerReportsSellerOutcomes(t *testing.T) {
	f := newFixture(t)
	scores := trust.NewScoreboard(trust.DefaultScoreDecay)
	ex := broker.NewExchange(f.eng.ForkRand(), scores)
	ex.AddSeller(f.dep.Agent)
	f.dep.Exchange = ex
	for _, rt := range f.dep.Sites {
		rt.Bank = trust.NewBank(rt.Node.Name)
		if err := rt.Bank.Deposit(f.dep.Agent.SellerName(), 5); err != nil {
			t.Fatal(err)
		}
	}
	m := New(f.eng, f.dep, f.sm, cfg())
	m.SetTrust(scores)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	name := f.dep.Agent.SellerName()
	if got := scores.Reports(name); got != 3 {
		t.Fatalf("Reports(%q) = %d; want 3 (one per deployed site)", name, got)
	}
	if got := scores.Score(name); got <= 0.5 {
		t.Fatalf("Score(%q) = %v; want > 0.5 after successful deploys", name, got)
	}
	if m.TrustReportErrs != 0 {
		t.Fatalf("TrustReportErrs = %d", m.TrustReportErrs)
	}
	// A redeploy after failure keeps reporting.
	if _, err := m.SiteFailed("s1"); err != nil {
		t.Fatal(err)
	}
	if got := scores.Reports(name); got != 4 {
		t.Fatalf("Reports(%q) after redeploy = %d; want 4", name, got)
	}
}

// TestManagerWithoutTrustIsInert: no scoreboard, no reports, no errors —
// the legacy path is untouched.
func TestManagerWithoutTrustIsInert(t *testing.T) {
	f := newFixture(t)
	m := New(f.eng, f.dep, f.sm, cfg())
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if m.TrustReportErrs != 0 {
		t.Fatalf("TrustReportErrs = %d", m.TrustReportErrs)
	}
}
