package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/broker"
	"repro/internal/capability"
	"repro/internal/gram"
	"repro/internal/mds"
	"repro/internal/silk"
)

// ErrNoMechanism marks a probe failing because the architecture simply
// has no mechanism for the operation — the interesting failures in
// Figure 1's y-axis (e.g. identity delegation on PlanetLab, resource
// usage delegation on stock Globus).
var ErrNoMechanism = errors.New("core: architecture provides no mechanism")

// Probe is one VO-level operation the functionality score counts.
type Probe struct {
	Name string
	// Desc cites the paper claim the probe operationalizes.
	Desc string
	Run  func(f *Federation) error
}

// Probes returns the full suite. Each probe performs real protocol work
// against the built federation; none inspects the Stack tag except where
// the architecture genuinely lacks the machinery (ErrNoMechanism arises
// from absent components, not from a switch on Stack).
func Probes() []Probe {
	return []Probe{
		{
			Name: "discovery",
			Desc: "find at least one VO resource through the discovery plane",
			Run:  probeDiscovery,
		},
		{
			Name: "remote-execution",
			Desc: "run work on a remote site through the VO path",
			Run:  probeRemoteExecution,
		},
		{
			Name: "advance-reservation",
			Desc: "the paper's midnight-slot example: reserve future capacity",
			Run:  probeReservation,
		},
		{
			Name: "co-allocation",
			Desc: "simultaneous resources at two sites, all-or-nothing",
			Run:  probeCoAllocation,
		},
		{
			Name: "identity-delegation",
			Desc: "a broker acts on a user's behalf with a delegated identity",
			Run:  probeIdentityDelegation,
		},
		{
			Name: "usage-delegation",
			Desc: "a site delegates resource-consumption rights to a broker",
			Run:  probeUsageDelegation,
		},
		{
			Name: "fine-grained-control",
			Desc: "claim a fraction of a CPU with kernel-level enforcement",
			Run:  probeFineGrained,
		},
		{
			Name: "uniform-node-api",
			Desc: "operate every member node without per-site adaptation",
			Run:  probeUniformAPI,
		},
		{
			Name: "central-update-push",
			Desc: "push a software update to every member node centrally",
			Run:  probeCentralUpdate,
		},
		{
			Name: "vm-instantiation",
			Desc: "obtain a virtual machine as a long-lived point of presence",
			Run:  probeVMInstantiation,
		},
	}
}

func firstPLSite(f *Federation) *Site {
	for _, s := range f.JoinedSites() {
		if s.Runtime != nil {
			return s
		}
	}
	return nil
}

func plSites(f *Federation) []*Site {
	var out []*Site
	for _, s := range f.JoinedSites() {
		if s.Runtime != nil {
			out = append(out, s)
		}
	}
	return out
}

func globusSites(f *Federation) []*Site {
	var out []*Site
	for _, s := range f.JoinedSites() {
		if s.Gatekeeper != nil {
			out = append(out, s)
		}
	}
	return out
}

func probeDiscovery(f *Federation) error {
	if len(globusSites(f)) > 0 {
		reply := f.Index.Eval(mds.Query{})
		if len(reply.Records) == 0 {
			return fmt.Errorf("core: index empty")
		}
		return nil
	}
	// PlanetLab's discovery plane is the per-node sensor feed into the
	// central collector (the CoMon/Sophia role).
	if len(plSites(f)) == 0 {
		return fmt.Errorf("core: no members to discover")
	}
	reply := f.Comon.Eval(mds.Query{})
	if len(reply.Records) == 0 {
		return fmt.Errorf("core: sensor collector empty")
	}
	return nil
}

func probeRemoteExecution(f *Federation) error {
	if len(globusSites(f)) > 0 {
		user := f.User("probe-user")
		proxy, err := user.Delegate("probe-user/proxy", f.Eng.Now(), 12*time.Hour, nil, f.Rng)
		if err != nil {
			return err
		}
		var got error
		done := false
		f.Matchmaker.SubmitJob(proxy, gram.JobSpec{
			RSL: `&(executable=/bin/probe)(count=1)(maxWallTime=60)`, ActualRun: 10 * time.Second,
		}, nil, func(p broker.Placement, e error) { got, done = e, true })
		f.Eng.RunUntil(f.Eng.Now() + 5*time.Minute)
		if !done {
			return fmt.Errorf("core: remote execution never completed")
		}
		return got
	}
	site := firstPLSite(f)
	if site == nil {
		return ErrNoMechanism
	}
	if err := f.Deployer.Stock(0.5, f.Eng.Now(), f.Eng.Now()+time.Hour, site.Spec.Name); err != nil {
		return err
	}
	sm := f.User("probe-sm").Holder
	slice, err := f.Deployer.DeploySliceAtomic("probe-slice", sm, 0.5, f.Eng.Now(), f.Eng.Now()+time.Hour, []string{site.Spec.Name})
	if err != nil {
		return err
	}
	defer slice.StopAll()
	ran := false
	if _, err := slice.VM(site.Runtime.Node.Name).Exec("probe", 0.1, func() { ran = true }); err != nil {
		return err
	}
	f.Eng.RunUntil(f.Eng.Now() + time.Minute)
	if !ran {
		return fmt.Errorf("core: VM task never ran")
	}
	return nil
}

func probeReservation(f *Federation) error {
	if gs := globusSites(f); len(gs) > 0 {
		// A reservation needs a site whose policy honours them.
		for _, s := range gs {
			if !s.Spec.Policy.HonourReservations {
				continue
			}
			_, err := s.Batch.Reserve(f.Eng.Now()+time.Hour, time.Hour, 1)
			return err
		}
		return fmt.Errorf("%w: no member site honours reservations", ErrNoMechanism)
	}
	site := firstPLSite(f)
	if site == nil {
		return ErrNoMechanism
	}
	// A future-dated dedicated capability IS an advance reservation.
	c, err := site.Runtime.NM.Mint(capability.MintRequest{
		Type: capability.CPU, Amount: 0.5, Dedicated: true,
		NotBefore: f.Eng.Now() + time.Hour, NotAfter: f.Eng.Now() + 2*time.Hour,
	})
	if err != nil {
		return err
	}
	site.Runtime.NM.Release(c.ID)
	return nil
}

func probeCoAllocation(f *Federation) error {
	if gs := globusSites(f); len(gs) >= 2 {
		user := f.User("probe-user")
		proxy, err := user.Delegate("probe-user/proxy2", f.Eng.Now(), 12*time.Hour, nil, f.Rng)
		if err != nil {
			return err
		}
		var got error
		done := false
		f.CoAlloc.CoAllocate(proxy, []broker.Part{
			{Gatekeeper: gs[0].Host, Spec: gram.JobSpec{RSL: `&(executable=a)(count=1)(maxWallTime=60)`, ActualRun: 10 * time.Second}},
			{Gatekeeper: gs[1].Host, Spec: gram.JobSpec{RSL: `&(executable=b)(count=1)(maxWallTime=60)`, ActualRun: 10 * time.Second}},
		}, func(_ []broker.Placement, e error) { got, done = e, true })
		f.Eng.RunUntil(f.Eng.Now() + 5*time.Minute)
		if !done {
			return fmt.Errorf("core: co-allocation never completed")
		}
		return got
	}
	pls := plSites(f)
	if len(pls) < 2 {
		return ErrNoMechanism
	}
	names := []string{pls[0].Spec.Name, pls[1].Spec.Name}
	if err := f.Deployer.Stock(0.5, f.Eng.Now(), f.Eng.Now()+time.Hour, names...); err != nil {
		return err
	}
	sm := f.User("probe-sm2").Holder
	slice, err := f.Deployer.DeploySliceAtomic("probe-coalloc", sm, 0.5, f.Eng.Now(), f.Eng.Now()+time.Hour, names)
	if err != nil {
		return err
	}
	slice.StopAll()
	return nil
}

func probeIdentityDelegation(f *Federation) error {
	if len(globusSites(f)) > 0 {
		user := f.User("probe-user")
		proxy, err := user.Delegate("probe-user/proxy3", f.Eng.Now(), 12*time.Hour, nil, f.Rng)
		if err != nil {
			return err
		}
		var placed broker.Placement
		var got error
		done := false
		f.Matchmaker.SubmitJob(proxy, gram.JobSpec{
			RSL: `&(executable=/bin/whoami)(maxWallTime=60)`, ActualRun: time.Second,
		}, nil, func(p broker.Placement, e error) { placed, got, done = p, e, true })
		f.Eng.RunUntil(f.Eng.Now() + 5*time.Minute)
		if !done || got != nil {
			return fmt.Errorf("core: delegated submission failed: %v", got)
		}
		// The defining property: the job is attributed to the user, not
		// the broker.
		for _, s := range globusSites(f) {
			if s.Host == placed.Gatekeeper {
				if owner := s.Gatekeeper.Job(placed.JobID).Spec.Owner; owner != "probe-user" {
					return fmt.Errorf("core: job attributed to %q", owner)
				}
				return nil
			}
		}
		return fmt.Errorf("core: placement site not found")
	}
	// "PlanetLab currently does not provide a mechanism for identity
	// delegation."
	return fmt.Errorf("%w: identity delegation", ErrNoMechanism)
}

func probeUsageDelegation(f *Federation) error {
	site := firstPLSite(f)
	if site == nil {
		// Stock Globus delegates identities, not resource rights: "Most
		// current Globus compatible resource schedulers employ identity
		// delegation only."
		return fmt.Errorf("%w: resource usage delegation", ErrNoMechanism)
	}
	auth := site.Runtime.Authority
	agent := f.Deployer.Agent
	tk, err := auth.IssueTicket(agent.Name, agent.Key(), capability.CPU, 0.25, f.Eng.Now(), f.Eng.Now()+time.Hour)
	if err != nil {
		return err
	}
	if err := agent.Acquire(tk); err != nil {
		return err
	}
	third := f.User("probe-third").Holder
	subs, err := agent.Sell(third.Name, third.Public(), site.Spec.Name, capability.CPU, 0.25, f.Eng.Now(), f.Eng.Now()+time.Hour)
	if err != nil {
		return err
	}
	lease, err := auth.Redeem(subs[0])
	if err != nil {
		return err
	}
	auth.ReleaseLease(lease)
	return nil
}

func probeFineGrained(f *Federation) error {
	site := firstPLSite(f)
	if site == nil {
		// Batch slots are whole machines; "fine-grained resource control
		// ... shockingly weak in deployed systems."
		return fmt.Errorf("%w: sub-node allocation", ErrNoMechanism)
	}
	c, err := site.Runtime.NM.Mint(capability.MintRequest{
		Type: capability.CPU, Amount: 0.1, Dedicated: true,
		NotBefore: f.Eng.Now(), NotAfter: f.Eng.Now() + time.Hour,
	})
	if err != nil {
		return err
	}
	defer site.Runtime.NM.Release(c.ID)
	// The claim must be enforceable at the node: a context with that
	// dedicated share must run work at exactly that rate.
	ctx, err := site.Runtime.Node.NewContext("probe-fine", silk.ContextSpec{DedicatedCores: c.Amount})
	if err != nil {
		return err
	}
	defer ctx.Close()
	ran := false
	start := f.Eng.Now()
	if _, err := ctx.RunTask("t", 0.05, func() { ran = true }); err != nil {
		return err
	}
	f.Eng.RunUntil(f.Eng.Now() + time.Minute)
	if !ran {
		return fmt.Errorf("core: fine-grained task never ran")
	}
	elapsed := f.Eng.Now() - start
	_ = elapsed
	return nil
}

func probeUniformAPI(f *Federation) error {
	if pls := plSites(f); len(pls) > 0 {
		// Every node presents the identical mandated spec — that is the
		// uniformity guarantee.
		want := pls[0].Runtime.Node.Spec
		for _, s := range pls[1:] {
			if s.Runtime.Node.Spec != want {
				return fmt.Errorf("core: node spec diverges at %s", s.Spec.Name)
			}
		}
		return nil
	}
	// Globus interposes glue over per-site dialects; the operation is
	// possible but not uniform — the probe asks for uniformity.
	return fmt.Errorf("%w: heterogeneous local managers need glue", ErrNoMechanism)
}

func probeCentralUpdate(f *Federation) error {
	joined := f.JoinedSites()
	if len(joined) == 0 {
		return fmt.Errorf("core: no members")
	}
	for _, s := range joined {
		ceded := s.Spec.Policy.CedeSoftwareUpdates
		if s.Runtime != nil {
			ceded = true // PlanetLab membership implies ceding updates
		}
		if !ceded {
			return fmt.Errorf("%w: site %s controls its own software", ErrNoMechanism, s.Spec.Name)
		}
	}
	return nil
}

func probeVMInstantiation(f *Federation) error {
	site := firstPLSite(f)
	if site == nil {
		// "GT3 service interfaces are being defined ... for example the
		// creation and initialization of a new virtual machine" — being
		// defined, not present.
		return fmt.Errorf("%w: no VM abstraction", ErrNoMechanism)
	}
	if err := f.Deployer.Stock(0.25, f.Eng.Now(), f.Eng.Now()+24*time.Hour, site.Spec.Name); err != nil {
		return err
	}
	sm := f.User("probe-sm3").Holder
	slice, err := f.Deployer.DeploySliceAtomic("probe-pop", sm, 0.25, f.Eng.Now(), f.Eng.Now()+24*time.Hour, []string{site.Spec.Name})
	if err != nil {
		return err
	}
	defer slice.StopAll()
	v := slice.VM(site.Runtime.Node.Name)
	ctx, err := v.Ctx()
	if err != nil {
		return err
	}
	// Unix-style API surface: port + disk + fd.
	if err := ctx.OpenPort(8080); err != nil {
		return err
	}
	if err := ctx.WriteDisk(1 << 20); err != nil {
		return err
	}
	if err := ctx.OpenFD(); err != nil {
		return err
	}
	return nil
}

// FunctionalityReport is the outcome of running the probe suite.
type FunctionalityReport struct {
	Passed, Total int
	// Results maps probe name to nil or the failure.
	Results map[string]error
}

// Score returns the passed fraction.
func (r FunctionalityReport) Score() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Passed) / float64(r.Total)
}

// RunProbes executes the suite against the federation.
func RunProbes(f *Federation) FunctionalityReport {
	rep := FunctionalityReport{Results: make(map[string]error)}
	for _, p := range Probes() {
		err := p.Run(f)
		rep.Results[p.Name] = err
		rep.Total++
		if err == nil {
			rep.Passed++
		}
	}
	return rep
}
