package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/capability"
	"repro/internal/identity"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sharp"
	"repro/internal/vm"
)

// ---- Table 1 ----------------------------------------------------------

// Abbreviation is one row of the paper's Table 1, extended with the
// gridlab module that implements the named system.
type Abbreviation struct {
	Abbr, Definition, Module string
}

// Table1 returns the paper's abbreviation glossary mapped onto this
// repository — the registry doubles as the implemented-system inventory.
func Table1() []Abbreviation {
	return []Abbreviation{
		{"GT", "Globus Toolkit", "internal/gram, internal/gsi, internal/mds, internal/broker"},
		{"GT3", "Globus Toolkit version 3", "internal/gram (service/job abstraction)"},
		{"VO", "Virtual Organization", "internal/core (Federation)"},
		{"WSRF", "Web Services Resource Framework", "internal/agreement (typed wire forms; encodings bracketed per §2.1)"},
		{"OGSA", "Open Grid Services Architecture", "internal/agreement, internal/mds (service interfaces)"},
		{"GSI", "Grid Security Infrastructure", "internal/gsi, internal/identity (proxy certificates)"},
		{"VM", "Virtual Machine", "internal/vm, internal/silk (enforcement)"},
	}
}

// RenderTable1 writes the glossary as an aligned table.
func RenderTable1(w io.Writer) {
	t := metrics.NewTable("abbr", "definition", "implemented by")
	for _, a := range Table1() {
		t.AddRow(a.Abbr, a.Definition, a.Module)
	}
	t.Render(w)
}

// ---- Figure 1 ---------------------------------------------------------

// Fig1Point is one system's position in the autonomy/functionality plane.
type Fig1Point struct {
	Stack         Stack
	Autonomy      float64
	Functionality float64
	Participation float64
	// Effective = Functionality × Participation: what the VO can actually
	// count on across the candidate population.
	Effective float64
}

// fig1Sites builds a candidate population of n sites whose autonomy
// demands are spread over [0,1] — the realistic mixed population both
// projects recruit from.
func fig1Sites(n int) []SiteSpec {
	specs := make([]SiteSpec, 0, n)
	for i := 0; i < n; i++ {
		alpha := float64(i) / float64(n-1)
		specs = append(specs, SiteSpec{
			Name:         fmt.Sprintf("site%02d", i),
			X:            float64(5 * (i + 1)),
			Y:            float64((i * 7) % 40),
			Nodes:        2,
			ClusterSlots: 8,
			Policy:       GradedPolicy(alpha),
		})
	}
	return specs
}

// Figure1 reproduces the paper's Figure 1 by construction and
// measurement: build each stack over the same mixed-autonomy candidate
// population, run the probe suite, and place each system at (mean member
// autonomy, probe pass fraction). The expected shape — PlanetLab high
// functionality / low autonomy, Globus the reverse — emerges from which
// probes mechanically succeed.
func Figure1(seed int64, nSites int) []Fig1Point {
	return Figure1Parallel(seed, nSites, 1)
}

// fig1Point builds one stack over the mixed population and measures it;
// each call owns a private federation.
func fig1Point(seed int64, nSites int, stack Stack) Fig1Point {
	f := Build(stack, Config{Seed: seed}, fig1Sites(nSites))
	rep := RunProbes(f)
	return Fig1Point{
		Stack:         stack,
		Autonomy:      f.MeanAutonomy(),
		Functionality: rep.Score(),
		Participation: f.Participation(),
		Effective:     rep.Score() * f.Participation(),
	}
}

// Figure1Sweep sweeps a homogeneous population's autonomy demand alpha
// and reports each stack's effective functionality — the quantitative
// form of the Figure-1 tradeoff curve.
func Figure1Sweep(seed int64, nSites int, alphas []float64) *metrics.Table {
	return Figure1SweepParallel(seed, nSites, alphas, 1)
}

// fig1SweepRows computes both stack rows for one autonomy demand alpha.
func fig1SweepRows(seed int64, nSites int, alpha float64) [][]any {
	specs := make([]SiteSpec, nSites)
	for i := range specs {
		specs[i] = SiteSpec{
			Name:         fmt.Sprintf("s%02d", i),
			X:            float64(5 * (i + 1)),
			Y:            10,
			Nodes:        2,
			ClusterSlots: 8,
			Policy:       GradedPolicy(alpha),
		}
	}
	var rows [][]any
	for _, stack := range []Stack{StackGlobus, StackPlanetLab} {
		f := Build(stack, Config{Seed: seed}, specs)
		rep := RunProbes(f)
		rows = append(rows, []any{alpha, stack.String(), len(f.JoinedSites()), rep.Score(), rep.Score() * f.Participation()})
	}
	return rows
}

// RenderFigure1 draws the scatter and the per-probe breakdown.
func RenderFigure1(w io.Writer, seed int64, nSites int) {
	pts := Figure1(seed, nSites)
	var plotPts []metrics.Point
	for _, p := range pts {
		label := 'G'
		if p.Stack == StackPlanetLab {
			label = 'P'
		}
		plotPts = append(plotPts, metrics.Point{X: p.Autonomy, Y: p.Functionality, Label: label})
	}
	metrics.ScatterPlot(w, "Figure 1: P=PlanetLab, G=Globus", "individual site autonomy", "functionality at VO level", 48, 12, plotPts)
	t := metrics.NewTable("stack", "autonomy", "functionality", "participation", "effective")
	for _, p := range pts {
		t.AddRow(p.Stack.String(), p.Autonomy, p.Functionality, p.Participation, p.Effective)
	}
	t.Render(w)
}

// ---- Figure 2 ---------------------------------------------------------

// TraceStep is one arrow of the Figure-2 protocol diagram.
type TraceStep struct {
	Step   string // the paper's label: "1a", "2a", ..., "7"
	From   string
	To     string
	Action string
	At     time.Duration
}

// Figure2Result carries the protocol trace and the artifacts it built.
type Figure2Result struct {
	Trace  []TraceStep
	Slice  *vm.Slice
	Leases []*sharp.Lease
}

// Figure2 executes the SHARP scenario exactly as the paper's Figure 2
// draws it: an agent acquires tickets from sites A and B (1a/2a, 1b/2b),
// a service manager buys them (3, 4), redeems them at their issuers for
// leases (5, 6), then creates a VM, binds the leased resources, and
// starts the service (7).
func Figure2(seed int64) (*Figure2Result, error) {
	res, _, err := figure2(seed, false)
	return res, err
}

// Figure2Traced runs the same scenario with the obs layer on and returns
// the federation's tracer alongside the result: the nine protocol arrows
// become "fig2.step" spans under a root "fig2" span, with the sharp
// issue/redeem spans nested beneath the steps that caused them.
func Figure2Traced(seed int64) (*Figure2Result, *obs.Tracer, error) {
	return figure2(seed, true)
}

func figure2(seed int64, trace bool) (*Figure2Result, *obs.Tracer, error) {
	f := Build(StackPlanetLab, Config{Seed: seed, StopPushers: true, Trace: trace}, []SiteSpec{
		{Name: "siteA", X: 10, Y: 0, Nodes: 2, Policy: PlanetLabSitePolicy()},
		{Name: "siteB", X: 40, Y: 20, Nodes: 2, Policy: PlanetLabSitePolicy()},
	})
	agent := f.Deployer.Agent
	sm := identity.NewPrincipal("service-manager", f.Rng)
	res := &Figure2Result{}
	now := f.Eng.Now()
	horizon := now + time.Hour
	var root obs.SpanContext
	if f.Tracer != nil {
		root = f.Tracer.Begin("fig2", obs.Int("seed", int(seed)))
		defer func() { root.End() }()
	}
	restore := f.Tracer.EnterScope(root)
	defer restore()
	record := func(step, from, to, action string) {
		res.Trace = append(res.Trace, TraceStep{Step: step, From: from, To: to, Action: action, At: f.Eng.Now()})
		if f.Tracer != nil {
			s := f.Tracer.BeginUnder(root, "fig2.step",
				obs.String("step", step), obs.String("from", from),
				obs.String("to", to), obs.String("action", action))
			s.End()
		}
	}

	// Steps 1a/2a and 1b/2b: the agent acquires tickets from both sites.
	for i, siteName := range []string{"siteA", "siteB"} {
		suffix := string(rune('a' + i))
		auth := f.Deployer.Sites[siteName].Authority
		record("1"+suffix, agent.Name, siteName, "request ticket")
		tk, err := auth.IssueTicket(agent.Name, agent.Key(), capability.CPU, 1, now, horizon)
		if err != nil {
			return nil, nil, err
		}
		record("2"+suffix, siteName, agent.Name, "grant ticket")
		if err := agent.Acquire(tk); err != nil {
			return nil, nil, err
		}
	}

	if fig2MidHook != nil {
		fig2MidHook(f)
	}

	// Steps 3/4: the service manager buys site-A resources from the agent.
	record("3", sm.Name, agent.Name, "request ticket")
	bought, err := agent.Sell(sm.Name, sm.Public(), "siteA", capability.CPU, 1, now, horizon)
	if err != nil {
		return nil, nil, err
	}
	record("4", agent.Name, sm.Name, "grant ticket")

	// Steps 5/6: redeem at the issuing site for a hard lease.
	authA := f.Deployer.Sites["siteA"].Authority
	record("5", sm.Name, "siteA", "redeem ticket")
	for _, tk := range bought {
		lease, err := authA.Redeem(tk)
		if err != nil {
			return nil, nil, err
		}
		res.Leases = append(res.Leases, lease)
	}
	record("6", "siteA", sm.Name, "grant lease")

	// Step 7: instantiate the service in a VM bound to the leases.
	rtA := f.Deployer.Sites["siteA"]
	v := vm.New("figure2-service", rtA.Node, rtA.NM)
	for _, lease := range res.Leases {
		if err := v.Bind(lease.CapID); err != nil {
			return nil, nil, err
		}
	}
	if err := v.Start(); err != nil {
		return nil, nil, err
	}
	record("7", sm.Name, "siteA", "instantiate service in virtual machine")
	slice := vm.NewSlice("figure2")
	if err := slice.Add(v); err != nil {
		return nil, nil, err
	}
	res.Slice = slice
	f.Tracer.SampleGauges()
	return res, f.Tracer, nil
}

// fig2MidHook, when set, runs between the ticket-acquisition and purchase
// phases of figure2 — the snapshot-purity gate uses it to take a
// mid-scenario engine snapshot and prove the capture is behaviourally
// free. Always nil outside tests.
var fig2MidHook func(f *Federation)

// Figure2ExpectedSteps is the paper's arrow order.
var Figure2ExpectedSteps = []string{"1a", "2a", "1b", "2b", "3", "4", "5", "6", "7"}

// ValidateFigure2 checks a trace against the paper's step sequence.
func ValidateFigure2(res *Figure2Result) error {
	if len(res.Trace) != len(Figure2ExpectedSteps) {
		return fmt.Errorf("core: %d steps, want %d", len(res.Trace), len(Figure2ExpectedSteps))
	}
	for i, want := range Figure2ExpectedSteps {
		if res.Trace[i].Step != want {
			return fmt.Errorf("core: step %d = %q, want %q", i, res.Trace[i].Step, want)
		}
	}
	if res.Slice == nil || res.Slice.Running() != 1 {
		return fmt.Errorf("core: service not running after step 7")
	}
	return nil
}

// RenderFigure2 prints the protocol trace.
func RenderFigure2(w io.Writer, seed int64) error {
	res, err := Figure2(seed)
	if err != nil {
		return err
	}
	if err := ValidateFigure2(res); err != nil {
		return err
	}
	t := metrics.NewTable("step", "from", "to", "action")
	for _, s := range res.Trace {
		t.AddRow(s.Step, s.From, s.To, s.Action)
	}
	t.Render(w)
	fmt.Fprintf(w, "service running: %d VM(s); leases: %d\n", res.Slice.Running(), len(res.Leases))
	return nil
}

// RenderProbeMatrix builds all three stacks over the given sites and
// prints the probe-by-probe comparison — the expanded, mechanised form of
// Figure 1's two points.
func RenderProbeMatrix(w io.Writer, seed int64, specs []SiteSpec) {
	stacks := []Stack{StackGlobus, StackPlanetLab, StackHybrid}
	reports := make(map[Stack]FunctionalityReport, len(stacks))
	for _, st := range stacks {
		f := Build(st, Config{Seed: seed}, specs)
		reports[st] = RunProbes(f)
	}
	t := metrics.NewTable("probe", "globus", "planetlab", "hybrid", "paper basis")
	mark := func(err error) string {
		if err == nil {
			return "yes"
		}
		return "-"
	}
	for _, p := range Probes() {
		t.AddRow(p.Name,
			mark(reports[StackGlobus].Results[p.Name]),
			mark(reports[StackPlanetLab].Results[p.Name]),
			mark(reports[StackHybrid].Results[p.Name]),
			p.Desc)
	}
	t.AddRow("TOTAL",
		fmt.Sprintf("%d/%d", reports[StackGlobus].Passed, reports[StackGlobus].Total),
		fmt.Sprintf("%d/%d", reports[StackPlanetLab].Passed, reports[StackPlanetLab].Total),
		fmt.Sprintf("%d/%d", reports[StackHybrid].Passed, reports[StackHybrid].Total),
		"")
	t.Render(w)
}
