package core

import (
	"bytes"
	"testing"
)

// TestFigure2SpanOrder asserts the paper's 1a..7 arrow ordering is
// recoverable from the trace spans alone — without consulting the
// Figure2Result — which is the property the obs layer exists for.
func TestFigure2SpanOrder(t *testing.T) {
	res, tr, err := Figure2Traced(42)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateFigure2(res); err != nil {
		t.Fatal(err)
	}
	if tr == nil {
		t.Fatal("Figure2Traced returned a nil tracer")
	}
	steps := tr.FindSpans("fig2.step")
	if len(steps) != len(Figure2ExpectedSteps) {
		t.Fatalf("got %d fig2.step spans, want %d", len(steps), len(Figure2ExpectedSteps))
	}
	var roots []uint64
	for i, s := range steps {
		got := ""
		for _, a := range s.Attrs {
			if a.Key == "step" {
				got = a.Val
			}
		}
		if got != Figure2ExpectedSteps[i] {
			t.Errorf("span %d: step %q, want %q", i, got, Figure2ExpectedSteps[i])
		}
		roots = append(roots, s.Parent)
	}
	// Every step hangs off the single root "fig2" span.
	fig2 := tr.FindSpans("fig2")
	if len(fig2) != 1 {
		t.Fatalf("got %d fig2 root spans, want 1", len(fig2))
	}
	for i, p := range roots {
		if p != fig2[0].ID {
			t.Errorf("step span %d parented to %d, want root %d", i, p, fig2[0].ID)
		}
	}
	// The protocol work is visible too: two issues (1a/1b) and one redeem
	// (5) as causal children inside the run.
	if n := len(tr.FindSpans("sharp.issue")); n != 2 {
		t.Errorf("got %d sharp.issue spans, want 2", n)
	}
	if n := len(tr.FindSpans("sharp.redeem")); n != 1 {
		t.Errorf("got %d sharp.redeem spans, want 1", n)
	}
}

// TestTracedRunMatchesUntraced gates the zero-perturbation property:
// enabling tracing must not change what the scenario does — same trace
// steps, same artifacts — because instrumentation adds no engine events
// and no rng draws.
func TestTracedRunMatchesUntraced(t *testing.T) {
	plain, err := Figure2(7)
	if err != nil {
		t.Fatal(err)
	}
	traced, _, err := Figure2Traced(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Trace) != len(traced.Trace) {
		t.Fatalf("step counts differ: %d vs %d", len(plain.Trace), len(traced.Trace))
	}
	for i := range plain.Trace {
		if plain.Trace[i] != traced.Trace[i] {
			t.Errorf("step %d differs: %+v vs %+v", i, plain.Trace[i], traced.Trace[i])
		}
	}
}

// TestTraceDeterminism is the byte-identity gate: the same seeded
// scenario exported twice must produce identical JSONL, byte for byte.
func TestTraceDeterminism(t *testing.T) {
	runs := map[string]func() ([]byte, error){
		"fig2": func() ([]byte, error) {
			_, tr, err := Figure2Traced(42)
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			if err := tr.WriteJSONL(&buf); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		},
		"delegation": func() ([]byte, error) {
			tr, err := TraceDelegation(42)
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			if err := tr.WriteJSONL(&buf); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		},
	}
	for name, run := range runs {
		a, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s: same-seed JSONL differs (%d vs %d bytes)", name, len(a), len(b))
		}
		if len(a) == 0 {
			t.Errorf("%s: trace is empty", name)
		}
	}
}

// TestTraceDelegationShape sanity-checks the delegation scenario's causal
// story: a failover redeploy happens and nests a redeem under it.
func TestTraceDelegationShape(t *testing.T) {
	tr, err := TraceDelegation(42)
	if err != nil {
		t.Fatal(err)
	}
	fails := tr.FindSpans("svc.site_failed")
	if len(fails) != 1 {
		t.Fatalf("got %d svc.site_failed spans, want 1", len(fails))
	}
	// The failover's replacement deploy is a child of the failure span.
	child := false
	for _, s := range tr.FindSpans("broker.deploy") {
		if s.Parent == fails[0].ID {
			child = true
		}
	}
	if !child {
		t.Error("no broker.deploy span parented to the svc.site_failed span")
	}
	if len(tr.FindSpans("svc.reconcile")) != 1 {
		t.Error("expected exactly one svc.reconcile span")
	}
}
