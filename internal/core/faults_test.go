package core

import (
	"testing"
	"time"

	"repro/internal/gram"
)

func faultSpecs() []SiteSpec {
	return []SiteSpec{
		{Name: "s00", X: 10, Y: 0, Nodes: 2, ClusterSlots: 8, Policy: PlanetLabSitePolicy()},
		{Name: "s01", X: 20, Y: 10, Nodes: 2, ClusterSlots: 8, Policy: PlanetLabSitePolicy()},
	}
}

func TestCrashSiteNotifiesObserversAndLogs(t *testing.T) {
	f := Build(StackHybrid, Config{Seed: 1}, faultSpecs())
	var events []string
	f.AddFaultObserver(func(site string, down bool) {
		state := "up"
		if down {
			state = "down"
		}
		events = append(events, site+":"+state)
	})
	start := f.Eng.Now()
	f.CrashSite("s00")
	if !f.SiteDown("s00") {
		t.Fatal("site not down after CrashSite")
	}
	f.Eng.RunUntil(start + time.Hour)
	f.RestoreSite("s00")
	if f.SiteDown("s00") {
		t.Fatal("site down after RestoreSite")
	}
	if len(events) != 2 || events[0] != "s00:down" || events[1] != "s00:up" {
		t.Errorf("observer events = %v", events)
	}
	log := f.DownLog("s00")
	if len(log) != 1 || log[0].Open || log[0].From != start || log[0].To != start+time.Hour {
		t.Errorf("down log = %+v", log)
	}
}

func TestCrashNodeIsSilent(t *testing.T) {
	f := Build(StackHybrid, Config{Seed: 1}, faultSpecs())
	notified := 0
	f.AddFaultObserver(func(string, bool) { notified++ })
	f.CrashNode("s00")
	if !f.SiteDown("s00") {
		t.Fatal("site not down after CrashNode")
	}
	f.RestoreSite("s00")
	if notified != 0 {
		t.Errorf("silent crash notified observers %d times", notified)
	}
	if len(f.DownLog("s00")) != 1 {
		t.Errorf("down log = %+v", f.DownLog("s00"))
	}
}

// mustSubmitProbeJob submits a long probe job to the site's gatekeeper
// and returns an accessor for it.
func mustSubmitProbeJob(t *testing.T, f *Federation, s *Site) *gram.Job {
	t.Helper()
	user := f.User("fault-user")
	proxy, err := user.Delegate("fault-user/p", f.Eng.Now(), 12*time.Hour, nil, f.Rng)
	if err != nil {
		t.Fatal(err)
	}
	var jobID string
	gram.Submit(f.Net, "vo-broker", s.Host, gram.SubmitRequest{
		Cred: proxy,
		Spec: gram.JobSpec{
			RSL:       "&(executable=probe)(count=1)(maxWallTime=3600)",
			ActualRun: 30 * time.Minute,
		},
	}, 30*time.Second, func(rep gram.SubmitReply, err error) {
		if err != nil {
			t.Errorf("submit: %v", err)
			return
		}
		jobID = rep.JobID
	})
	f.Eng.RunUntil(f.Eng.Now() + 5*time.Second)
	if jobID == "" {
		t.Fatal("submission never completed")
	}
	return s.Gatekeeper.Job(jobID)
}

func TestCrashSiteFailsItsJobs(t *testing.T) {
	f := Build(StackHybrid, Config{Seed: 1}, faultSpecs())
	s := f.SiteByName("s00")
	j := mustSubmitProbeJob(t, f, s)
	f.Eng.RunUntil(f.Eng.Now() + 10*time.Second)
	if j.State() != gram.Active {
		t.Fatalf("job state = %v before crash", j.State())
	}
	f.CrashSite("s00")
	if j.State() != gram.Failed {
		t.Fatalf("job state after crash = %v", j.State())
	}
	// The completion event scheduled for the crashed job must be a no-op.
	f.Eng.RunUntil(f.Eng.Now() + time.Hour)
	if j.State() != gram.Failed {
		t.Errorf("job resurrected to %v", j.State())
	}
}

func TestHostDownSince(t *testing.T) {
	f := Build(StackHybrid, Config{Seed: 1}, faultSpecs())
	if _, down := f.HostDownSince("gk-s00"); down {
		t.Fatal("host down before crash")
	}
	f.Eng.RunUntil(time.Minute)
	f.CrashNode("s00")
	since, down := f.HostDownSince("gk-s00")
	if !down || since != time.Minute {
		t.Errorf("HostDownSince = %v, %v", since, down)
	}
	if _, down := f.HostDownSince("no-such-host"); down {
		t.Error("unknown host reported down")
	}
}

func TestCrashIdempotentAndUnknownSiteNoop(t *testing.T) {
	f := Build(StackHybrid, Config{Seed: 1}, faultSpecs())
	f.CrashSite("s00")
	f.CrashSite("s00") // second crash is a no-op
	if len(f.DownLog("s00")) != 1 {
		t.Errorf("double crash logged twice: %+v", f.DownLog("s00"))
	}
	f.CrashSite("nowhere")
	f.RestoreSite("nowhere")
	f.RestoreSite("s01") // restoring an up site is a no-op
	if f.SiteDown("nowhere") || f.SiteDown("s01") {
		t.Error("phantom outage recorded")
	}
}
