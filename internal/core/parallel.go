package core

import (
	"math/rand"
	"time"

	"repro/internal/metrics"
	"repro/internal/perf"
	"repro/internal/workload"
)

// This file holds the parallel variants of the sweep experiments. Every
// grid point builds its own engine, rng, and federation inside the point
// functions in experiments.go / figures.go, so the only cross-goroutine
// traffic is each worker writing into its preassigned result slot. Rows
// are reduced into the table in fixed grid order afterwards, which makes
// the output byte-identical to the sequential run at any worker count —
// the workers=1 path IS the sequential API (RunScale etc. delegate here).
//
// E5 (RunDelegation) has no parallel variant: its operations share one
// federation and one churn rng, so its grid points are not independent.

// RunScaleParallel is RunScale fanned over workers goroutines
// (workers <= 0 means GOMAXPROCS).
func RunScaleParallel(seed int64, siteCounts []int, workers int) *metrics.Table {
	t := metrics.NewTable("sites", "stack", "reg msgs/cycle", "staleness", "setup latency", "msgs/op")
	rows := make([][][]any, len(siteCounts))
	perf.ForEach(len(siteCounts), workers, func(i int) {
		rows[i] = scaleRows(seed, siteCounts[i])
	})
	addRows2(t, rows)
	return t
}

// RunProxyLifetimeParallel is RunProxyLifetime fanned over workers
// goroutines. The job population is generated once, before the fan-out,
// and only read by the grid points.
func RunProxyLifetimeParallel(seed int64, lifetimes []time.Duration, nJobs, workers int) *metrics.Table {
	t := metrics.NewTable("proxy lifetime", "job auth-failure rate", "mean abuse window", "tradeoff cost")
	jobs := proxyJobs(seed, nJobs)
	rows := make([][]any, len(lifetimes))
	perf.ForEach(len(lifetimes), workers, func(i int) {
		rows[i] = proxyLifetimeRow(seed, jobs, lifetimes[i])
	})
	addRows(t, rows)
	return t
}

// RunAllocationParallel is RunAllocation fanned over workers goroutines.
// The Zipf service population is generated once and only read.
func RunAllocationParallel(seed int64, nNodes, nServices, workers int) *metrics.Table {
	t := metrics.NewTable("discipline", "port conflict rate", "admission fail rate", "cpu utilization", "jain fairness")
	baseRng := rand.New(rand.NewSource(seed))
	svcs := workload.GenerateNetServices(baseRng, workload.DefaultNetServices(), nServices)
	rows := make([][]any, len(allocationDisciplines))
	perf.ForEach(len(allocationDisciplines), workers, func(i int) {
		rows[i] = allocationRow(seed, nNodes, nServices, svcs, allocationDisciplines[i])
	})
	addRows(t, rows)
	return t
}

// RunHeterogeneityParallel is RunHeterogeneity fanned over workers
// goroutines.
func RunHeterogeneityParallel(seed int64, dialectCounts []int, nJobs, workers int) *metrics.Table {
	t := metrics.NewTable("dialects", "translate ops/job", "opaque error fraction", "jobs completed")
	rows := make([][]any, len(dialectCounts))
	perf.ForEach(len(dialectCounts), workers, func(i int) {
		rows[i] = heterogeneityRow(seed, dialectCounts[i], nJobs)
	})
	addRows(t, rows)
	return t
}

// RunDataGridParallel is RunDataGrid fanned over workers goroutines; the
// (loss × stripe × path) grid is flattened loss-major to match the
// sequential loop nest.
func RunDataGridParallel(seed int64, bytes float64, losses []float64, stripes []int, workers int) *metrics.Table {
	t := metrics.NewTable("loss", "streams", "path", "throughput MB/s")
	overlays := []bool{false, true}
	n := len(losses) * len(stripes) * len(overlays)
	rows := make([][]any, n)
	perf.ForEach(n, workers, func(i int) {
		loss := losses[i/(len(stripes)*len(overlays))]
		k := stripes[(i/len(overlays))%len(stripes)]
		overlay := overlays[i%len(overlays)]
		rows[i] = dataGridRow(seed, bytes, loss, k, overlay)
	})
	addRows(t, rows)
	return t
}

// RunOversubParallel is RunOversub fanned over workers goroutines.
func RunOversubParallel(seed int64, factors []float64, workers int) *metrics.Table {
	t := metrics.NewTable("oversell factor", "tickets issued", "redeems ok", "conflicts", "utilization", "conflict rate")
	rows := make([][]any, len(factors))
	perf.ForEach(len(factors), workers, func(i int) {
		rows[i] = oversubRow(seed, factors[i])
	})
	addRows(t, rows)
	return t
}

// Figure1Parallel is Figure1 with the two stack builds fanned out.
func Figure1Parallel(seed int64, nSites, workers int) []Fig1Point {
	if nSites < 4 {
		nSites = 4
	}
	stacks := []Stack{StackGlobus, StackPlanetLab}
	pts := make([]Fig1Point, len(stacks))
	perf.ForEach(len(stacks), workers, func(i int) {
		pts[i] = fig1Point(seed, nSites, stacks[i])
	})
	return pts
}

// Figure1SweepParallel is Figure1Sweep fanned over workers goroutines.
func Figure1SweepParallel(seed int64, nSites int, alphas []float64, workers int) *metrics.Table {
	t := metrics.NewTable("alpha", "stack", "joined", "functionality", "effective")
	rows := make([][][]any, len(alphas))
	perf.ForEach(len(alphas), workers, func(i int) {
		rows[i] = fig1SweepRows(seed, nSites, alphas[i])
	})
	addRows2(t, rows)
	return t
}

// addRows reduces one row per grid cell into the table in grid order.
func addRows(t *metrics.Table, rows [][]any) {
	for _, r := range rows {
		t.AddRow(r...)
	}
}

// addRows2 reduces multi-row grid cells into the table in grid order.
func addRows2(t *metrics.Table, rows [][][]any) {
	for _, rs := range rows {
		for _, r := range rs {
			t.AddRow(r...)
		}
	}
}
