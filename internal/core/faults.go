package core

import (
	"fmt"
	"time"
)

// This file is the fault surface of a built federation: the operations a
// fault injector uses to kill and revive sites, and the bookkeeping audits
// need to ask "was this site down at time t?" afterwards. The distinction
// between CrashSite and CrashNode mirrors the paper's two failure
// diagnoses: a declared site outage is something the VO's management plane
// hears about (PlanetLab's central operators power-cycle the node, the
// service manager redeploys), while a silent node crash is only ever
// discovered indirectly — through MDS registrations drying up and jobs
// never calling back.

// DownInterval is one recorded outage of a site. Open marks an outage
// still in progress (To is meaningless while Open).
type DownInterval struct {
	From time.Duration
	To   time.Duration
	Open bool
}

// FaultObserver is notified of *declared* site state changes. Silent
// crashes (CrashNode) bypass observers by design.
type FaultObserver func(site string, down bool)

// SiteByName finds a site by its spec name, nil when absent.
func (f *Federation) SiteByName(name string) *Site {
	for _, s := range f.Sites {
		if s.Spec.Name == name {
			return s
		}
	}
	return nil
}

// AddFaultObserver registers a declared-outage observer.
func (f *Federation) AddFaultObserver(fn FaultObserver) {
	f.faultObs = append(f.faultObs, fn)
}

// SiteDown reports whether the named site is currently crashed.
func (f *Federation) SiteDown(name string) bool {
	if f.downSince == nil {
		return false
	}
	_, down := f.downSince[name]
	return down
}

// DownLog returns the recorded outage intervals for a site, oldest first.
func (f *Federation) DownLog(name string) []DownInterval {
	return f.downLog[name]
}

// HostDownSince maps a service host back to its site and reports when that
// site went down (ok=false when the host's site is up or unknown).
func (f *Federation) HostDownSince(host string) (time.Duration, bool) {
	for _, s := range f.Sites {
		if s.Host == host {
			since, down := f.downSince[s.Spec.Name]
			return since, down
		}
	}
	return 0, false
}

// CrashSite takes a site down as a declared outage: the network host dies
// (killing flows and dropping messages), the batch manager loses every
// job, and fault observers are told so management planes can react.
func (f *Federation) CrashSite(name string) { f.crash(name, true) }

// CrashNode takes the site down silently: same physical effect, but no
// observer hears — the failure must be discovered through soft state.
func (f *Federation) CrashNode(name string) { f.crash(name, false) }

func (f *Federation) crash(name string, declared bool) {
	s := f.SiteByName(name)
	if s == nil || !s.Joined {
		return
	}
	if f.downSince == nil {
		f.downSince = make(map[string]time.Duration)
		f.downDeclared = make(map[string]bool)
		f.downLog = make(map[string][]DownInterval)
	}
	if _, already := f.downSince[name]; already {
		return
	}
	now := f.Eng.Now()
	f.downSince[name] = now
	f.downDeclared[name] = declared
	f.downLog[name] = append(f.downLog[name], DownInterval{From: now, Open: true})
	f.Net.SetDown(s.Host, true)
	if s.Batch != nil {
		s.Batch.Crash(fmt.Errorf("core: site %s crashed at %v", name, now))
	}
	if declared {
		for _, fn := range f.faultObs {
			fn(name, true)
		}
	}
}

// RestoreSite brings a crashed site back: the host rejoins the network
// (MDS pushes resume on their tickers) and, for declared outages,
// observers hear about the recovery.
func (f *Federation) RestoreSite(name string) {
	s := f.SiteByName(name)
	if s == nil {
		return
	}
	if _, down := f.downSince[name]; !down {
		return
	}
	now := f.Eng.Now()
	delete(f.downSince, name)
	log := f.downLog[name]
	log[len(log)-1].To = now
	log[len(log)-1].Open = false
	f.Net.SetDown(s.Host, false)
	declared := f.downDeclared[name]
	delete(f.downDeclared, name)
	if declared {
		for _, fn := range f.faultObs {
			fn(name, false)
		}
	}
}
