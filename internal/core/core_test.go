package core

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func testSpecs(n int, policy AutonomyPolicy) []SiteSpec {
	specs := make([]SiteSpec, n)
	for i := range specs {
		specs[i] = SiteSpec{
			Name: "s" + string(rune('a'+i)), X: float64(10 * (i + 1)), Y: 5,
			Nodes: 2, ClusterSlots: 8, Policy: policy,
		}
	}
	return specs
}

func TestAutonomyScores(t *testing.T) {
	if got := PlanetLabSitePolicy().Autonomy(); got != 0 {
		t.Errorf("PlanetLab member autonomy = %v, want 0", got)
	}
	if got := GlobusSitePolicy(false, false).Autonomy(); got != 1 {
		t.Errorf("max-autonomy Globus site = %v, want 1", got)
	}
	if got := GlobusSitePolicy(true, true).Autonomy(); got >= 1 || got <= 0.5 {
		t.Errorf("typical Globus site = %v, want in (0.5,1)", got)
	}
}

func TestGradedPolicyMonotone(t *testing.T) {
	prev := -1.0
	for alpha := 0.0; alpha <= 1.0; alpha += 0.05 {
		a := GradedPolicy(alpha).Autonomy()
		if a < prev {
			t.Fatalf("autonomy not monotone at alpha=%v: %v < %v", alpha, a, prev)
		}
		prev = a
	}
	if !GradedPolicy(0).AcceptsCentralControl() {
		t.Error("alpha=0 site refuses central control")
	}
	if GradedPolicy(1).AcceptsCentralControl() {
		t.Error("alpha=1 site accepts central control")
	}
}

func TestBuildPlanetLabRefusesAutonomousSites(t *testing.T) {
	specs := testSpecs(4, GlobusSitePolicy(true, true)) // retain controls
	f := Build(StackPlanetLab, Config{Seed: 1, StopPushers: true}, specs)
	if len(f.JoinedSites()) != 0 {
		t.Errorf("joined = %d, want 0 (sites refuse PlanetLab terms)", len(f.JoinedSites()))
	}
	if f.Participation() != 0 {
		t.Errorf("participation = %v", f.Participation())
	}
}

func TestBuildGlobusAcceptsEveryone(t *testing.T) {
	specs := append(testSpecs(2, GlobusSitePolicy(true, true)), testSpecs(2, PlanetLabSitePolicy())[0])
	specs[2].Name = "sz"
	f := Build(StackGlobus, Config{Seed: 1, StopPushers: true}, specs)
	if len(f.JoinedSites()) != 3 {
		t.Errorf("joined = %d, want 3", len(f.JoinedSites()))
	}
	for _, s := range f.JoinedSites() {
		if s.Gatekeeper == nil || s.Batch == nil {
			t.Errorf("site %s missing Globus machinery", s.Spec.Name)
		}
		if s.Runtime != nil {
			t.Errorf("site %s has PlanetLab machinery under Globus build", s.Spec.Name)
		}
	}
}

func TestBuildHybridDegradesRefusers(t *testing.T) {
	specs := testSpecs(2, PlanetLabSitePolicy())
	specs = append(specs, SiteSpec{Name: "sx", X: 50, Y: 5, Nodes: 2, ClusterSlots: 8, Policy: GlobusSitePolicy(true, true)})
	f := Build(StackHybrid, Config{Seed: 1, StopPushers: true}, specs)
	if len(f.JoinedSites()) != 3 {
		t.Fatalf("joined = %d", len(f.JoinedSites()))
	}
	plCount := 0
	for _, s := range f.JoinedSites() {
		if s.Gatekeeper == nil {
			t.Errorf("hybrid site %s missing Globus side", s.Spec.Name)
		}
		if s.Runtime != nil {
			plCount++
		}
	}
	if plCount != 2 {
		t.Errorf("PlanetLab-managed sites = %d, want 2", plCount)
	}
}

func TestProbeSuiteOnGlobus(t *testing.T) {
	f := Build(StackGlobus, Config{Seed: 2}, testSpecs(3, GlobusSitePolicy(true, true)))
	rep := RunProbes(f)
	mustPass := []string{"discovery", "remote-execution", "advance-reservation", "co-allocation", "identity-delegation", "central-update-push"}
	for _, name := range mustPass[:5] {
		if err := rep.Results[name]; err != nil {
			t.Errorf("globus %s: %v", name, err)
		}
	}
	mustFail := []string{"usage-delegation", "fine-grained-control", "uniform-node-api", "vm-instantiation"}
	for _, name := range mustFail {
		if err := rep.Results[name]; !errors.Is(err, ErrNoMechanism) {
			t.Errorf("globus %s = %v, want ErrNoMechanism", name, err)
		}
	}
}

func TestProbeSuiteOnPlanetLab(t *testing.T) {
	f := Build(StackPlanetLab, Config{Seed: 2}, testSpecs(3, PlanetLabSitePolicy()))
	rep := RunProbes(f)
	mustPass := []string{"discovery", "remote-execution", "advance-reservation", "co-allocation",
		"usage-delegation", "fine-grained-control", "uniform-node-api", "central-update-push", "vm-instantiation"}
	for _, name := range mustPass {
		if err := rep.Results[name]; err != nil {
			t.Errorf("planetlab %s: %v", name, err)
		}
	}
	if err := rep.Results["identity-delegation"]; !errors.Is(err, ErrNoMechanism) {
		t.Errorf("planetlab identity-delegation = %v, want ErrNoMechanism", err)
	}
	if rep.Passed != 9 || rep.Total != 10 {
		t.Errorf("score = %d/%d", rep.Passed, rep.Total)
	}
}

func TestHybridPassesEverything(t *testing.T) {
	// §5's point: the layered system offers the union of mechanisms.
	f := Build(StackHybrid, Config{Seed: 2}, testSpecs(3, PlanetLabSitePolicy()))
	rep := RunProbes(f)
	for name, err := range rep.Results {
		// uniform-node-api legitimately fails under hybrid when Globus
		// sites are in the mix; with all-PlanetLab members it passes.
		if err != nil {
			t.Errorf("hybrid %s: %v", name, err)
		}
	}
}

func TestFigure1Shape(t *testing.T) {
	pts := Figure1(3, 8)
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	var g, p Fig1Point
	for _, pt := range pts {
		switch pt.Stack {
		case StackGlobus:
			g = pt
		case StackPlanetLab:
			p = pt
		}
	}
	// The paper's Figure 1: PlanetLab = low autonomy, high functionality;
	// Globus = high autonomy, lower VO-level functionality.
	if !(p.Functionality > g.Functionality) {
		t.Errorf("functionality: planetlab %v <= globus %v", p.Functionality, g.Functionality)
	}
	if !(g.Autonomy > p.Autonomy) {
		t.Errorf("autonomy: globus %v <= planetlab %v", g.Autonomy, p.Autonomy)
	}
	if g.Participation != 1 {
		t.Errorf("globus participation = %v, want 1 (accepts everyone)", g.Participation)
	}
	if p.Participation >= 1 {
		t.Errorf("planetlab participation = %v, want < 1 (high-autonomy sites refuse)", p.Participation)
	}
}

func TestFigure1SweepRuns(t *testing.T) {
	tab := Figure1Sweep(3, 4, []float64{0.1, 0.9})
	out := tab.String()
	if !strings.Contains(out, "globus") || !strings.Contains(out, "planetlab") {
		t.Errorf("sweep table:\n%s", out)
	}
	// At alpha=0.9 PlanetLab effective functionality must be 0 (nobody
	// joins).
	lines := strings.Split(out, "\n")
	found := false
	for _, l := range lines {
		if strings.Contains(l, "0.90") && strings.Contains(l, "planetlab") {
			fields := strings.Fields(l)
			if fields[2] == "0" && fields[len(fields)-1] == "0" {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("alpha=0.9 planetlab row wrong:\n%s", out)
	}
}

func TestFigure2TraceMatchesPaper(t *testing.T) {
	res, err := Figure2(7)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateFigure2(res); err != nil {
		t.Fatal(err)
	}
	if len(res.Leases) == 0 {
		t.Error("no leases")
	}
	// Steps are in non-decreasing virtual time.
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].At < res.Trace[i-1].At {
			t.Errorf("trace time went backwards at %d", i)
		}
	}
}

func TestTable1CoversPaperAbbreviations(t *testing.T) {
	want := map[string]bool{"GT": true, "GT3": true, "VO": true, "WSRF": true, "OGSA": true, "GSI": true, "VM": true}
	for _, a := range Table1() {
		delete(want, a.Abbr)
		if a.Definition == "" || a.Module == "" {
			t.Errorf("row %q incomplete", a.Abbr)
		}
	}
	if len(want) != 0 {
		t.Errorf("missing abbreviations: %v", want)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	var sb strings.Builder
	RenderTable1(&sb)
	if !strings.Contains(sb.String(), "Grid Security Infrastructure") {
		t.Error("table1 render")
	}
	sb.Reset()
	RenderFigure1(&sb, 3, 6)
	if !strings.Contains(sb.String(), "Figure 1") {
		t.Error("figure1 render")
	}
	sb.Reset()
	if err := RenderFigure2(&sb, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "instantiate service") {
		t.Error("figure2 render")
	}
}

func TestUserMappedEverywhere(t *testing.T) {
	f := Build(StackGlobus, Config{Seed: 1, StopPushers: true}, testSpecs(3, GlobusSitePolicy(true, false)))
	f.User("carol")
	for _, s := range f.JoinedSites() {
		if _, err := s.Gridmap.Authorize("carol"); err != nil {
			t.Errorf("site %s: %v", s.Spec.Name, err)
		}
	}
	// Same credential on repeat calls.
	if f.User("carol") != f.User("carol") {
		t.Error("User not memoized")
	}
}

func TestStackString(t *testing.T) {
	if StackGlobus.String() != "globus" || StackHybrid.String() != "hybrid" {
		t.Error("stack names")
	}
}

func TestMeanAutonomyPlanetLabMembers(t *testing.T) {
	f := Build(StackPlanetLab, Config{Seed: 1, StopPushers: true}, testSpecs(3, PlanetLabSitePolicy()))
	if got := f.MeanAutonomy(); got != 0 {
		t.Errorf("PlanetLab member autonomy = %v, want 0 (mandated policy)", got)
	}
	fg := Build(StackGlobus, Config{Seed: 1, StopPushers: true}, testSpecs(3, GlobusSitePolicy(false, false)))
	if got := fg.MeanAutonomy(); got != 1 {
		t.Errorf("Globus autonomy = %v, want 1", got)
	}
}

func TestExperimentsSmoke(t *testing.T) {
	// E3 at small scale.
	scale := RunScale(5, []int{4}).String()
	if !strings.Contains(scale, "globus") || !strings.Contains(scale, "planetlab") {
		t.Errorf("scale:\n%s", scale)
	}
	// E4: failure rate must decrease with lifetime.
	pl := RunProxyLifetime(5, []time.Duration{time.Hour, 64 * time.Hour}, 100)
	out := pl.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("proxy table:\n%s", out)
	}
	shortFail := strings.Fields(lines[2])[1]
	longFail := strings.Fields(lines[3])[1]
	if !(shortFail > longFail) { // string compare works for "0.xx" forms
		t.Errorf("failure rate not decreasing: 1h=%s 64h=%s\n%s", shortFail, longFail, out)
	}
	// E7: zero dialects → zero-ish ops; more dialects → more ops.
	het := RunHeterogeneity(5, []int{0, 4}, 30)
	hetOut := het.String()
	hetLines := strings.Split(strings.TrimSpace(hetOut), "\n")
	if len(hetLines) != 4 {
		t.Fatalf("het table:\n%s", hetOut)
	}
	// E9: conflicts appear only above factor 1.
	ov := RunOversub(5, []float64{1.0, 2.0}).String()
	ovLines := strings.Split(strings.TrimSpace(ov), "\n")
	f1 := strings.Fields(ovLines[2])
	f2 := strings.Fields(ovLines[3])
	if f1[3] != "0" {
		t.Errorf("factor 1.0 had conflicts:\n%s", ov)
	}
	if f2[3] == "0" {
		t.Errorf("factor 2.0 had no conflicts:\n%s", ov)
	}
}

func TestDelegationExperimentShape(t *testing.T) {
	tab := RunDelegation(5, 4, 10, 0.5)
	out := tab.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("delegation table:\n%s", out)
	}
	// Usage delegation must succeed at least as often as identity
	// delegation under churn (tickets pre-stocked).
	gFields := strings.Fields(lines[2])
	pFields := strings.Fields(lines[3])
	gRate, pRate := gFields[2], pFields[2]
	if pRate < gRate {
		t.Errorf("usage-delegation success %s < identity %s under churn:\n%s", pRate, gRate, out)
	}
}

func TestAllocationExperimentShape(t *testing.T) {
	tab := RunAllocation(5, 5, 100)
	out := tab.String()
	if !strings.Contains(out, "best-effort") || !strings.Contains(out, "reserved") {
		t.Fatalf("allocation table:\n%s", out)
	}
}

func TestDataGridExperimentShape(t *testing.T) {
	tab := RunDataGrid(5, 50e6, []float64{0, 0.01}, []int{1, 4})
	out := tab.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// header + sep + 2 losses × 2 stripes × 2 paths = 10 lines.
	if len(lines) != 10 {
		t.Fatalf("datagrid rows = %d:\n%s", len(lines), out)
	}
}

func TestRecommendationsComplete(t *testing.T) {
	recs := Recommendations()
	if len(recs) < 5 {
		t.Fatalf("only %d recommendations", len(recs))
	}
	toPL, toGT := 0, 0
	for _, r := range recs {
		if r.Claim == "" || r.DemonstratedBy == "" {
			t.Errorf("incomplete recommendation %+v", r)
		}
		switch r.To {
		case "PlanetLab":
			toPL++
		case "Globus":
			toGT++
		}
	}
	// §6 addresses both communities.
	if toPL < 2 || toGT < 2 {
		t.Errorf("coverage: %d to PlanetLab, %d to Globus", toPL, toGT)
	}
	var sb strings.Builder
	RenderRecommendations(&sb)
	if !strings.Contains(sb.String(), "identity delegation") {
		t.Error("render missing content")
	}
}

func TestRenderProbeMatrix(t *testing.T) {
	var sb strings.Builder
	RenderProbeMatrix(&sb, 3, testSpecs(3, PlanetLabSitePolicy()))
	out := sb.String()
	for _, want := range []string{"identity-delegation", "usage-delegation", "TOTAL", "hybrid"} {
		if !strings.Contains(out, want) {
			t.Errorf("matrix missing %q:\n%s", want, out)
		}
	}
}
