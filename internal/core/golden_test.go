package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// The Figure 2 protocol trace is part of the repo's contract: its rendered
// output for the canonical seed is pinned to a committed golden file, so
// any drift in the SHARP handshake ordering, naming, or rendering is an
// explicit, reviewed change. Regenerate with:
//
//	go test ./internal/core -run TestFigure2Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

func TestFigure2Golden(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderFigure2(&buf, 42); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "figure2_golden.txt")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Figure 2 trace drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// Figure 2 must also render identically across seeds in structure: the
// paper's arrow order is seed-independent even though key material varies.
func TestFigure2StepOrderSeedIndependent(t *testing.T) {
	for _, seed := range []int64{1, 7, 99} {
		res, err := Figure2(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := ValidateFigure2(res); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}
