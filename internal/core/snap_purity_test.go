package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/sim"
)

// Snapshot-purity gates: sim.Engine.Snapshot must be behaviourally free.
// These tests run a scenario twice — once plain, once taking (and
// discarding) mid-scenario snapshots via the unexported hooks — and
// require byte-identical rendered output. The chaos counterpart lives in
// faultlab's TestChaosSnapshotPurity; together they cover fig2, E3, and
// the chaos scenario as the gate demands.

// fig2Output renders Figure 2 plus its full JSONL trace.
func fig2Output(t *testing.T, seed int64) []byte {
	t.Helper()
	var b bytes.Buffer
	res, tr, err := Figure2Traced(seed)
	if err != nil {
		t.Fatalf("Figure2Traced: %v", err)
	}
	if err := ValidateFigure2(res); err != nil {
		t.Fatalf("ValidateFigure2: %v", err)
	}
	for _, s := range res.Trace {
		fmt.Fprintf(&b, "%s %s->%s %s @%v\n", s.Step, s.From, s.To, s.Action, s.At)
	}
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return b.Bytes()
}

func TestFigure2SnapshotPurity(t *testing.T) {
	const seed = 42
	plain := fig2Output(t, seed)

	var snaps []sim.Snapshot
	fig2MidHook = func(f *Federation) { snaps = append(snaps, f.Eng.Snapshot()) }
	defer func() { fig2MidHook = nil }()
	snapped := fig2Output(t, seed)

	if len(snaps) == 0 {
		t.Fatalf("mid-scenario hook never ran")
	}
	if !bytes.Equal(plain, snapped) {
		t.Fatalf("snapshot perturbed Figure 2 (plain %dB, snapped %dB)", len(plain), len(snapped))
	}
}

func TestScaleSnapshotPurity(t *testing.T) {
	const seed = 7
	render := func() []byte {
		var b bytes.Buffer
		RunScale(seed, []int{10}).Render(&b)
		return b.Bytes()
	}
	plain := render()

	took := 0
	scaleMidHook = func(f *Federation) { took++; _ = f.Eng.Snapshot() }
	defer func() { scaleMidHook = nil }()
	snapped := render()

	if took != 2 {
		t.Fatalf("hook ran %d times, want 2 (globus + planetlab builds)", took)
	}
	if !bytes.Equal(plain, snapped) {
		t.Fatalf("snapshot perturbed E3 output:\nplain:\n%s\nsnapped:\n%s", plain, snapped)
	}
}
