// Package core is gridlab's reproduction of the paper's contribution: a
// framework that assembles the *same* wide-area substrate into either of
// the two resource-management architectures — Globus (GSI + GRAM + MDS +
// meta-schedulers over heterogeneous, autonomous sites) or PlanetLab
// (mandated node software, node managers minting capabilities, SHARP
// peering, VMs/slices) — and measures them under one probe suite, making
// the paper's qualitative comparisons (Figure 1, §3-§5) quantitative.
//
// The key modelling decision mirrors §3.4: a Site carries an
// AutonomyPolicy describing which controls it retains. Building the
// PlanetLab stack *requires* ceding specific controls ("by mandating the
// operating system ..., by allowing PlanetLab administrators 'root'
// access ..., and by giving PlanetLab administrators access to a remote
// power button"); sites that refuse simply do not join. Building the
// Globus stack accepts every site but inherits whatever functionality
// each site's policy leaves enabled. Functionality at the VO level is
// then measured by running real probe operations against the built
// federation — the two stacks' scores are emergent, not hard-coded.
package core

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/broker"
	"repro/internal/capability"
	"repro/internal/gram"
	"repro/internal/gsi"
	"repro/internal/identity"
	"repro/internal/mds"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/sharp"
	"repro/internal/silk"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Stack selects which architecture a federation is built as.
type Stack int

// The architectures under comparison. StackHybrid layers Globus services
// over PlanetLab-managed nodes (§5).
const (
	StackGlobus Stack = iota
	StackPlanetLab
	StackHybrid
)

var stackNames = [...]string{"globus", "planetlab", "hybrid"}

func (s Stack) String() string {
	if int(s) < len(stackNames) {
		return stackNames[s]
	}
	return fmt.Sprintf("Stack(%d)", int(s))
}

// AutonomyPolicy enumerates the §3.4 site-control levers. Each boolean
// records whether the site CEDES that control to the federation (true =
// ceded). More ceded controls → lower autonomy, more uniform VO-level
// functionality.
type AutonomyPolicy struct {
	// CedeOSChoice: the site runs the federation-mandated OS image.
	CedeOSChoice bool
	// CedeRootAccess: federation administrators get root on nodes.
	CedeRootAccess bool
	// CedePowerControl: federation gets the remote power button.
	CedePowerControl bool
	// CedeSoftwareUpdates: central administrators push updates.
	CedeSoftwareUpdates bool
	// HonourReservations: the local scheduler accepts advance
	// reservations from outside (a site-specific usage policy).
	HonourReservations bool
	// OpenAccess: the site admits any VO-authenticated user; when false
	// it whitelists only users it has locally approved.
	OpenAccess bool
}

// Autonomy returns the Figure-1 x-coordinate: the fraction of controls
// the site retains, in [0,1].
func (p AutonomyPolicy) Autonomy() float64 {
	retained := 0.0
	if !p.CedeOSChoice {
		retained++
	}
	if !p.CedeRootAccess {
		retained++
	}
	if !p.CedePowerControl {
		retained++
	}
	if !p.CedeSoftwareUpdates {
		retained++
	}
	if !p.HonourReservations {
		retained++ // refusing external reservations is retained control
	}
	if !p.OpenAccess {
		retained++
	}
	return retained / 6
}

// AcceptsCentralControl reports whether the site's policy satisfies
// PlanetLab's non-negotiable requirements.
func (p AutonomyPolicy) AcceptsCentralControl() bool {
	return p.CedeOSChoice && p.CedeRootAccess && p.CedePowerControl && p.CedeSoftwareUpdates
}

// PlanetLabSitePolicy is the policy a PlanetLab member must run.
func PlanetLabSitePolicy() AutonomyPolicy {
	return AutonomyPolicy{
		CedeOSChoice:        true,
		CedeRootAccess:      true,
		CedePowerControl:    true,
		CedeSoftwareUpdates: true,
		HonourReservations:  true,
		OpenAccess:          true,
	}
}

// GlobusSitePolicy is a typical grid site: it joins the VO but retains
// every local control; reservations and open access depend on the site.
func GlobusSitePolicy(honourRes, openAccess bool) AutonomyPolicy {
	return AutonomyPolicy{HonourReservations: honourRes, OpenAccess: openAccess}
}

// GradedPolicy interpolates a site's autonomy demand alpha in [0,1] into
// a concrete policy: the more autonomy a site insists on, the fewer
// controls it cedes. Thresholds follow the natural ordering of how
// painful each concession is (software updates < reservations < power <
// root < OS choice; access control is the most jealously guarded).
func GradedPolicy(alpha float64) AutonomyPolicy {
	return AutonomyPolicy{
		CedeSoftwareUpdates: alpha < 0.55,
		HonourReservations:  alpha < 0.65,
		CedePowerControl:    alpha < 0.45,
		CedeRootAccess:      alpha < 0.35,
		CedeOSChoice:        alpha < 0.25,
		OpenAccess:          alpha < 0.75,
	}
}

// SiteSpec describes one site's physical contribution.
type SiteSpec struct {
	Name string
	X, Y float64
	// Nodes is the PlanetLab-side node count (each DefaultPlanetLabNode).
	Nodes int
	// ClusterSlots is the Globus-side batch machine size.
	ClusterSlots int
	Policy       AutonomyPolicy
}

// Site is one constructed member of a federation.
type Site struct {
	Spec SiteSpec
	// Joined reports whether the stack's requirements admitted the site.
	Joined bool
	// Host is the site's service host ("gk-<name>").
	Host string

	// Globus-side machinery (nil on a pure PlanetLab build or unjoined).
	Gatekeeper *gram.Gatekeeper
	Batch      *gram.BatchManager
	Gridmap    *gsi.Gridmap
	GRIS       *mds.GRIS

	// PlanetLab-side machinery (nil on a pure Globus build or unjoined).
	Runtime *broker.SiteRuntime
	// Sensors is the PlanetLab-side per-node monitoring pusher. It is held
	// here (not just scheduled) so engine snapshots can reach and rewind
	// its push state.
	Sensors *mds.GRIS
}

// Federation is a built two-stack testbed.
type Federation struct {
	Stack Stack
	Eng   *sim.Engine
	Net   *simnet.Network
	CA    *identity.CA
	Rng   *rand.Rand

	// Tracer is the federation-wide observability tracer, non-nil only
	// when the federation was built with Config.Trace. Every subsystem
	// (network, authorities, batch managers, deployer) shares it, so
	// spans nest causally across layers.
	Tracer *obs.Tracer

	// Resilience is the federation-wide retry/breaker/keepalive kit,
	// non-nil only when built with Config.Resilience. All layers share
	// the one kit, so its per-site breakers agree on a site's health.
	Resilience *resilience.Kit

	Sites []*Site

	// VO-level services.
	IndexHost string
	Index     *mds.GIIS
	// Comon is the PlanetLab-side monitoring collector: per-node sensors
	// push soft-state snapshots here (the CoMon/Ganglia/Sophia role the
	// paper cites for "wide-area monitoring and instrumentation").
	Comon      *mds.GIIS
	Matchmaker *broker.Matchmaker
	CoAlloc    *broker.CoAllocator
	Deployer   *broker.Deployer

	users map[string]*identity.Credential

	// Fault bookkeeping (see faults.go).
	faultObs     []FaultObserver
	downSince    map[string]time.Duration
	downDeclared map[string]bool
	downLog      map[string][]DownInterval
}

// Config tunes federation construction.
type Config struct {
	Seed int64
	// RefreshInterval sets the MDS soft-state period (default 2m).
	RefreshInterval time.Duration
	// StopPushers, when set, stops the MDS pushers after the initial
	// registration so short experiments can drain the event queue.
	StopPushers bool
	// Trace enables the obs tracing/metrics layer: a Tracer is created,
	// bound to the engine, and installed into every subsystem built here.
	// Off (the default) costs nothing — all instrumentation is nil-gated.
	Trace bool
	// Resilience enables the fault-handling layer: deterministic
	// retry/backoff on transport faults, per-site circuit breakers shared
	// across the brokers, and (via servicemgr) lease-renewal keepalive.
	// Off (the default) reproduces the raw protocols byte for byte.
	Resilience bool
}

// Build assembles a federation of the given architecture over the sites.
func Build(stack Stack, cfg Config, specs []SiteSpec) *Federation {
	eng := sim.NewEngine(cfg.Seed)
	net := simnet.New(eng)
	rng := eng.ForkRand()
	if cfg.RefreshInterval == 0 {
		cfg.RefreshInterval = 2 * time.Minute
	}

	net.AddSite("vo-center", 0, 0)
	net.AddHost("vo-index", "vo-center", 1e7)
	net.AddHost("vo-broker", "vo-center", 1e7)
	net.AddHost("vo-comon", "vo-center", 1e7)

	f := &Federation{
		Stack: stack,
		Eng:   eng,
		Net:   net,
		CA:    identity.NewCA("vo-ca", 1e6*time.Hour, rng),
		Rng:   rng,
		users: make(map[string]*identity.Credential),
	}
	f.Index = mds.NewGIIS(eng, net, "vo-index")
	f.IndexHost = "vo-index"
	f.Comon = mds.NewGIIS(eng, net, "vo-comon")
	f.Matchmaker = &broker.Matchmaker{Net: net, Host: "vo-broker", Index: "vo-index", Timeout: time.Minute}
	f.CoAlloc = &broker.CoAllocator{Net: net, Host: "vo-broker", Timeout: time.Minute}
	f.Deployer = &broker.Deployer{
		Agent: sharp.NewAgent(identity.NewPrincipal("vo-agent", rng)),
		Sites: make(map[string]*broker.SiteRuntime),
	}
	if cfg.Trace {
		f.Tracer = obs.NewTracer(eng)
		f.Tracer.BindEngine()
		net.SetTracer(f.Tracer)
		f.Deployer.SetTracer(f.Tracer)
	}
	// The deployer always knows the fault surface: deploying "into" a
	// crashed site against its in-process authority would be a liveness
	// lie the real system could not tell.
	f.Deployer.SiteDown = f.SiteDown
	if cfg.Resilience {
		f.Resilience = resilience.NewKit(eng, eng.ForkRand(), f.Tracer)
		f.Deployer.Breakers = f.Resilience.Breakers
		f.Matchmaker.Retry = f.Resilience.Retry
		f.Matchmaker.Breakers = f.Resilience.Breakers
		f.Matchmaker.SiteOf = func(gk string) string {
			return strings.TrimPrefix(gk, "gk-")
		}
		f.CoAlloc.Retry = f.Resilience.Retry
		if f.Tracer != nil {
			f.CoAlloc.SetTracer(f.Tracer)
		}
	}

	verifier := identity.NewVerifier(f.CA)
	var pushers []*mds.GRIS
	for _, spec := range specs {
		site := &Site{Spec: spec, Host: "gk-" + spec.Name}
		f.Sites = append(f.Sites, site)
		net.AddSite(spec.Name, spec.X, spec.Y)
		net.AddHost(site.Host, spec.Name, 1.25e7)

		wantsGlobus := stack == StackGlobus || stack == StackHybrid
		wantsPL := stack == StackPlanetLab || stack == StackHybrid
		if wantsPL && !spec.Policy.AcceptsCentralControl() {
			// The site refuses PlanetLab's terms. Under a pure PlanetLab
			// build it simply is not a member; under hybrid it degrades
			// to Globus-only membership.
			if stack == StackPlanetLab {
				site.Joined = false
				continue
			}
			wantsPL = false
		}
		site.Joined = true

		if wantsGlobus {
			site.Gridmap = gsi.NewGridmap()
			if !spec.Policy.OpenAccess {
				site.Gridmap.UseWhitelist = true
			}
			policy := &gsi.SitePolicy{
				Auth:    &gsi.ChainAuthenticator{Verifier: verifier},
				Gridmap: site.Gridmap,
			}
			site.Gatekeeper = gram.NewGatekeeper(net, net.Host(site.Host), policy)
			slots := spec.ClusterSlots
			if slots <= 0 {
				slots = 8
			}
			site.Batch = gram.NewBatchManager(eng, "batch", slots)
			if f.Tracer != nil {
				site.Batch.SetTracer(f.Tracer)
			}
			site.Gatekeeper.AddManager("batch", site.Batch)

			site.GRIS = mds.NewGRIS(eng, net, site.Host)
			host, slotsStr := site.Host, fmt.Sprint(slots)
			reservable := fmt.Sprint(spec.Policy.HonourReservations)
			site.GRIS.AddProviderInto(site.Host+"/cluster", func(attrs map[string]string) {
				attrs["gatekeeper"] = host
				attrs["os"] = "linux"
				attrs["cpus"] = slotsStr
				attrs["reservable"] = reservable
				attrs["jobmanager"] = "batch"
			})
			site.GRIS.StartPush("vo-index", cfg.RefreshInterval)
			pushers = append(pushers, site.GRIS)
		}

		if wantsPL {
			nodes := spec.Nodes
			if nodes <= 0 {
				nodes = 2
			}
			nodeSpec := silk.DefaultPlanetLabNode()
			node := silk.NewNode(eng, spec.Name+"/n0", nodeSpec)
			nm := capability.NewNodeManager(spec.Name+"/n0", eng, rng, map[capability.ResourceType]float64{
				capability.CPU:     nodeSpec.Cores,
				capability.Network: nodeSpec.NetBps,
				capability.Memory:  nodeSpec.MemBytes,
				capability.Disk:    nodeSpec.DiskBytes,
			})
			auth := sharp.NewAuthority(eng, spec.Name,
				identity.NewPrincipal("auth@"+spec.Name, rng), nm,
				map[capability.ResourceType]float64{capability.CPU: nodeSpec.Cores})
			if f.Tracer != nil {
				auth.SetTracer(f.Tracer)
			}
			site.Runtime = &broker.SiteRuntime{Authority: auth, NM: nm, Node: node}
			f.Deployer.Sites[spec.Name] = site.Runtime

			// Per-node sensor: a slice-count/port snapshot pushed to the
			// central collector, one record per node.
			sensors := mds.NewGRIS(eng, net, site.Host)
			siteName := spec.Name
			for ni := 0; ni < nodes; ni++ {
				nodeName := fmt.Sprintf("%s/n%d", siteName, ni)
				sensors.AddProviderInto(nodeName+"/sensor", func(attrs map[string]string) {
					attrs["site"] = siteName
					attrs["node"] = nodeName
					attrs["slices"] = fmt.Sprint(node.Contexts())
					attrs["ports"] = fmt.Sprint(node.PortsInUse())
				})
			}
			sensors.StartPush("vo-comon", cfg.RefreshInterval)
			site.Sensors = sensors
			pushers = append(pushers, sensors)
		}
	}

	// Let initial MDS registrations land.
	eng.RunUntil(time.Second)
	if cfg.StopPushers {
		for _, g := range pushers {
			g.Stop()
		}
	}
	// The federation is the mega-root for engine snapshots: every stateful
	// layer built here (network, MDS, batch managers, authorities,
	// resilience kit, fault bookkeeping) hangs off it.
	eng.SnapRoot("core.federation", f)
	return f
}

// User returns (creating on first use) a CA-certified user credential,
// mapped into every joined Globus site's gridmap (and whitelisted where
// the site runs closed access — the probe user is locally approved).
func (f *Federation) User(name string) *identity.Credential {
	if cred, ok := f.users[name]; ok {
		return cred
	}
	p := identity.NewPrincipal(name, f.Rng)
	cred := identity.UserCredential(p, f.CA.IssueUser(p, 0, 1e5*time.Hour))
	f.users[name] = cred
	for _, s := range f.Sites {
		if s.Gridmap != nil {
			s.Gridmap.Map(name, "u-"+name)
			if s.Gridmap.UseWhitelist {
				s.Gridmap.Whitelist(name)
			}
		}
	}
	return cred
}

// JoinedSites returns the members that actually joined.
func (f *Federation) JoinedSites() []*Site {
	var out []*Site
	for _, s := range f.Sites {
		if s.Joined {
			out = append(out, s)
		}
	}
	return out
}

// MeanAutonomy returns the average autonomy retained across ALL candidate
// sites under this stack's terms: joined PlanetLab members retain only
// what PlanetLab's mandated policy leaves; joined Globus members retain
// their own policy; refused sites retain full autonomy but contribute
// nothing (they still count toward the x-axis as written — the paper's
// axes describe members, so refused sites are excluded here).
func (f *Federation) MeanAutonomy() float64 {
	joined := f.JoinedSites()
	if len(joined) == 0 {
		return 1
	}
	total := 0.0
	for _, s := range joined {
		switch {
		case f.Stack == StackPlanetLab,
			f.Stack == StackHybrid && s.Runtime != nil:
			total += PlanetLabSitePolicy().Autonomy()
		default:
			total += s.Spec.Policy.Autonomy()
		}
	}
	return total / float64(len(joined))
}

// Participation is the fraction of candidate sites that joined.
func (f *Federation) Participation() float64 {
	if len(f.Sites) == 0 {
		return 0
	}
	return float64(len(f.JoinedSites())) / float64(len(f.Sites))
}
