package core

import (
	"testing"
	"time"
)

// TestParallelSweepsByteIdentical gates the parallel experiment executor:
// every *Parallel variant must render a byte-identical table (or identical
// points) at workers=1 and workers=8. The workers=1 path is the
// sequential API itself, so this also pins parallel output to the
// goldens the sequential tests already check.
func TestParallelSweepsByteIdentical(t *testing.T) {
	const seed = 42
	cases := []struct {
		name string
		run  func(workers int) string
	}{
		{"scale", func(w int) string {
			return RunScaleParallel(seed, []int{4, 8, 12}, w).String()
		}},
		{"proxylife", func(w int) string {
			return RunProxyLifetimeParallel(seed, []time.Duration{time.Hour, 8 * time.Hour, 64 * time.Hour}, 200, w).String()
		}},
		{"allocation", func(w int) string {
			return RunAllocationParallel(seed, 4, 40, w).String()
		}},
		{"heterogeneity", func(w int) string {
			return RunHeterogeneityParallel(seed, []int{0, 1, 4}, 60, w).String()
		}},
		{"datagrid", func(w int) string {
			return RunDataGridParallel(seed, 1e7, []float64{0, 0.02}, []int{1, 4}, w).String()
		}},
		{"oversub", func(w int) string {
			return RunOversubParallel(seed, []float64{0.5, 1, 2}, w).String()
		}},
		{"fig1sweep", func(w int) string {
			return Figure1SweepParallel(seed, 6, []float64{0, 0.5, 1}, w).String()
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			seq := tc.run(1)
			par := tc.run(8)
			if seq != par {
				t.Fatalf("workers=8 output differs from workers=1:\n--- w1 ---\n%s\n--- w8 ---\n%s", seq, par)
			}
			if seq == "" {
				t.Fatal("empty table")
			}
		})
	}
}

// TestFigure1ParallelMatchesSequential compares the point structs, which
// include float fields, for exact equality across worker counts.
func TestFigure1ParallelMatchesSequential(t *testing.T) {
	seq := Figure1Parallel(7, 8, 1)
	par := Figure1Parallel(7, 8, 4)
	if len(seq) != len(par) {
		t.Fatalf("point counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("point %d: workers=1 %+v, workers=4 %+v", i, seq[i], par[i])
		}
	}
}
