package core

import (
	"fmt"
	"time"

	"repro/internal/identity"
	"repro/internal/obs"
	"repro/internal/servicemgr"
)

// TraceDelegation runs a small usage-delegation lifecycle with the obs
// layer on and returns the tracer: a deployer stocks tickets from three
// PlanetLab sites, a service manager deploys a two-PoP service, one site
// fails (triggering a failover redeploy to the spare), recovers, and a
// reconcile pass confirms the service is back at strength. The resulting
// trace shows the full causal chain broker.stock → svc.start →
// broker.deploy → sharp.issue/redeem, then svc.site_failed → the
// replacement deploy.
func TraceDelegation(seed int64) (*obs.Tracer, error) {
	specs := make([]SiteSpec, 3)
	for i := range specs {
		specs[i] = SiteSpec{
			Name: fmt.Sprintf("s%02d", i), X: float64(10 * (i + 1)), Y: 5,
			Nodes: 2, Policy: PlanetLabSitePolicy(),
		}
	}
	f := Build(StackPlanetLab, Config{Seed: seed, StopPushers: true, Trace: true}, specs)
	tr := f.Tracer

	now := f.Eng.Now()
	horizon := now + 24*time.Hour
	if err := f.Deployer.Stock(2, now, horizon, "s00", "s01", "s02"); err != nil {
		return tr, err
	}
	sm := identity.NewPrincipal("trace-sm", f.Rng)
	mgr := servicemgr.New(f.Eng, f.Deployer, sm, servicemgr.Config{
		Name:       "traced-svc",
		Target:     2,
		CPUPerSite: 1,
		Candidates: []string{"s00", "s01", "s02"},
		Lease:      24 * time.Hour,
	})
	mgr.SetTracer(tr)
	if err := mgr.Start(); err != nil {
		return tr, err
	}

	// An hour in, the first site dies; the manager fails over to the
	// spare. The site later recovers and a reconcile pass runs clean.
	f.Eng.At(now+time.Hour, func() {
		f.Net.SetDown("gk-s00", true)
		mgr.SiteFailed("s00")
	})
	f.Eng.At(now+3*time.Hour, func() {
		f.Net.SetDown("gk-s00", false)
		mgr.SiteRecovered("s00")
		mgr.Reconcile()
	})
	f.Eng.RunUntil(now + 4*time.Hour)
	mgr.Stop()
	tr.SampleGauges()
	return tr, nil
}
