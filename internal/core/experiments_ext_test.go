package core

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// row returns the fields of the i-th data row (0-based) of a rendered
// table.
func row(t *testing.T, table interface{ String() string }, i int) []string {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(table.String()), "\n")
	if len(lines) < i+3 {
		t.Fatalf("table too short:\n%s", table.String())
	}
	return strings.Fields(lines[i+2])
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return f
}

func TestAvailabilityMonotone(t *testing.T) {
	tab := RunAvailability(9, []int{1, 2, 4, 8}, 60*24*time.Hour)
	prevAny, prevAll := -1.0, 2.0
	for i := 0; i < 4; i++ {
		r := row(t, tab, i)
		anyUp := parseF(t, r[len(r)-2])
		allUp := parseF(t, r[len(r)-1])
		// §3.2: service availability rises with points of presence;
		// co-allocation availability falls.
		if anyUp < prevAny {
			t.Errorf("any-up availability not monotone at k row %d: %v < %v", i, anyUp, prevAny)
		}
		if allUp > prevAll {
			t.Errorf("all-up availability not antitone at k row %d: %v > %v", i, allUp, prevAll)
		}
		prevAny, prevAll = anyUp, allUp
	}
	// With 8 PoPs and ~5% per-site downtime, the service should be
	// essentially always reachable.
	r := row(t, tab, 3)
	if anyUp := parseF(t, r[len(r)-2]); anyUp < 0.999 {
		t.Errorf("8-PoP availability = %v, want ~1", anyUp)
	}
}

func TestBackfillAblationShape(t *testing.T) {
	tab := RunBackfillAblation(9, 16, 120)
	easy := row(t, tab, 0)
	fcfs := row(t, tab, 1)
	// Backfill must actually backfill and must not lengthen mean wait.
	backfilled, _ := strconv.Atoi(easy[len(easy)-1])
	if backfilled == 0 {
		t.Error("EASY run backfilled nothing")
	}
	if n, _ := strconv.Atoi(fcfs[len(fcfs)-1]); n != 0 {
		t.Error("FCFS run backfilled jobs")
	}
	easyWait, err1 := time.ParseDuration(easy[2])
	fcfsWait, err2 := time.ParseDuration(fcfs[2])
	if err1 != nil || err2 != nil {
		t.Fatalf("parse waits: %v %v", err1, err2)
	}
	if easyWait > fcfsWait {
		t.Errorf("backfill increased mean wait: %v > %v", easyWait, fcfsWait)
	}
	// Utilization with backfill >= without.
	if parseF(t, easy[len(easy)-2]) < parseF(t, fcfs[len(fcfs)-2]) {
		t.Errorf("backfill lowered utilization:\n%s", tab.String())
	}
}

func TestPoolingAblationShape(t *testing.T) {
	tab := RunPoolingAblation(9, 400e6)
	static := row(t, tab, 0)
	pooled := row(t, tab, 1)
	// Pooling must beat a static split on asymmetric paths.
	if parseF(t, pooled[len(pooled)-1]) <= parseF(t, static[len(static)-1]) {
		t.Errorf("pooling did not help:\n%s", tab.String())
	}
}

func TestTTLAblationShape(t *testing.T) {
	periods := []time.Duration{time.Minute, 10 * time.Minute}
	tab := RunTTLAblation(9, periods, 50)
	short := row(t, tab, 0)
	long := row(t, tab, 1)
	shortStale, _ := time.ParseDuration(short[1])
	longStale, _ := time.ParseDuration(long[1])
	if shortStale >= longStale {
		t.Errorf("staleness did not grow with period: %v vs %v", shortStale, longStale)
	}
	if parseF(t, short[2]) <= parseF(t, long[2]) {
		t.Errorf("traffic did not shrink with period:\n%s", tab.String())
	}
	// Staleness is bounded by the period (plus propagation).
	if longStale > periods[1]+time.Minute {
		t.Errorf("staleness %v exceeds period %v", longStale, periods[1])
	}
}

func TestBackfillDisabledStillCorrect(t *testing.T) {
	// The FCFS path must preserve reservation correctness: a reserved
	// window still excludes queued jobs.
	tab := RunBackfillAblation(11, 8, 40)
	if !strings.Contains(tab.String(), "pure FCFS") {
		t.Fatalf("missing FCFS row:\n%s", tab.String())
	}
}

func TestManagedAvailabilityBeatsStatic(t *testing.T) {
	tab := RunManagedAvailability(9, 3, 60*24*time.Hour)
	managed := row(t, tab, 0)
	static := row(t, tab, 1)
	mFrac := parseF(t, managed[len(managed)-2])
	sFrac := parseF(t, static[len(static)-2])
	if mFrac > sFrac {
		t.Errorf("managed degraded %v > static %v:\n%s", mFrac, sFrac, tab.String())
	}
	if n, _ := strconv.Atoi(managed[len(managed)-1]); n == 0 {
		t.Error("managed service never redeployed")
	}
}
