package core

import (
	"testing"
)

// Determinism regression: running the same experiment twice with the same
// seed must render byte-identical metric tables. E3 (scale) exercises the
// MDS registration machinery; E9 (oversubscription) exercises SHARP
// ticket issue/redeem — together they cover both stacks' hot paths.
func TestRunScaleDeterministic(t *testing.T) {
	a := RunScale(42, []int{4, 8}).String()
	b := RunScale(42, []int{4, 8}).String()
	if a != b {
		t.Errorf("E3 diverged across identical runs:\n%s\nvs\n%s", a, b)
	}
}

func TestRunOversubDeterministic(t *testing.T) {
	a := RunOversub(42, []float64{1, 2}).String()
	b := RunOversub(42, []float64{1, 2}).String()
	if a != b {
		t.Errorf("E9 diverged across identical runs:\n%s\nvs\n%s", a, b)
	}
}
