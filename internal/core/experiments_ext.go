package core

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/broker"
	"repro/internal/capability"
	"repro/internal/gram"
	"repro/internal/identity"
	"repro/internal/mds"
	"repro/internal/metrics"
	"repro/internal/rsl"
	"repro/internal/servicemgr"
	"repro/internal/sharp"
	"repro/internal/silk"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/workload"
)

// This file holds the extension experiments beyond the paper's explicit
// artifacts: E10 quantifies §3.2's distribution claim, and three
// ablations isolate design choices DESIGN.md calls out (EASY backfill,
// mTCP-style pooling, and the MDS soft-state refresh period).

// ---- E10: points of presence vs co-allocation under failures ----------

// RunAvailability quantifies §3.2's contrast: "for PlanetLab services,
// embracing resource distribution is an objective, while for grid
// applications, resource distribution is a necessary evil." Sites fail
// and recover independently (exponential MTBF/MTTR). A PlanetLab-style
// service with k points of presence is up while ANY of its k sites is up
// (availability rises with k); a co-allocated grid computation needs ALL
// k sites simultaneously (availability falls with k). Both curves come
// from the same failure trace.
func RunAvailability(seed int64, ks []int, horizon time.Duration) *metrics.Table {
	const nSites = 20
	mtbf := 72 * time.Hour
	mttr := 4 * time.Hour

	eng := sim.NewEngine(seed)
	rng := rand.New(rand.NewSource(seed))
	up := make([]bool, nSites)
	for i := range up {
		up[i] = true
	}

	maxK := 0
	for _, k := range ks {
		if k > maxK {
			maxK = k
		}
	}
	// anyUp[k-1] accumulates time with >=1 of the first k sites up;
	// allUp[k-1] time with all k up.
	anyUp := make([]time.Duration, maxK)
	allUp := make([]time.Duration, maxK)
	last := time.Duration(0)

	account := func() {
		now := eng.Now()
		dt := now - last
		last = now
		if dt <= 0 {
			return
		}
		upCount := 0
		for k := 0; k < maxK; k++ {
			if up[k] {
				upCount++
			}
			if upCount > 0 {
				anyUp[k] += dt
			}
			if upCount == k+1 {
				allUp[k] += dt
			}
		}
	}

	var flip func(site int)
	flip = func(site int) {
		account()
		up[site] = !up[site]
		mean := mtbf
		if !up[site] {
			mean = mttr
		}
		eng.Schedule(workload.Exp(rng, mean), func() { flip(site) })
	}
	for i := 0; i < nSites; i++ {
		i := i
		//gridlint:ignore snapcapture run-to-completion experiment harness on a local engine that is never snapshotted or forked
		eng.Schedule(workload.Exp(rng, mtbf), func() { flip(i) })
	}
	eng.RunUntil(horizon)
	account()

	t := metrics.NewTable("points of presence k", "service availability (any up)", "co-allocation availability (all up)")
	for _, k := range ks {
		t.AddRow(k, anyUp[k-1].Seconds()/horizon.Seconds(), allUp[k-1].Seconds()/horizon.Seconds())
	}
	return t
}

// ---- Ablation A1: EASY backfill ----------------------------------------

// RunBackfillAblation isolates the batch manager's backfill design
// choice: the same job stream through the same machine with backfill on
// and off. Expected: backfill cuts mean wait and lifts utilization
// without delaying any head-of-line job (EASY's guarantee).
func RunBackfillAblation(seed int64, slots, nJobs int) *metrics.Table {
	t := metrics.NewTable("scheduler", "mean wait", "p95 wait", "makespan", "utilization", "backfilled")
	rng := rand.New(rand.NewSource(seed))
	jobs := workload.GenerateGridJobs(rng, workload.GridJobConfig{
		MeanInterarrival: 5 * time.Minute,
		MedianRun:        time.Hour,
		RunSigma:         1.0,
		MaxCount:         slots / 2,
		WallFactor:       2,
	}, nJobs)

	for _, disable := range []bool{false, true} {
		eng := sim.NewEngine(seed)
		bm := gram.NewBatchManager(eng, "batch", slots)
		bm.DisableBackfill = disable
		var done []*gram.Job
		for _, wj := range jobs {
			wj := wj
			//gridlint:ignore snapcapture run-to-completion experiment harness on a local engine that is never snapshotted or forked
			eng.At(wj.Arrival, func() {
				spec, err := rsl.Parse(wj.RSL())
				if err != nil {
					panic(err)
				}
				req, _ := spec.Single()
				j := &gram.Job{ID: wj.ID, Req: req, Spec: gram.JobSpec{RSL: wj.RSL(), ActualRun: wj.Run}}
				if err := bm.Submit(j); err == nil {
					done = append(done, j)
				}
			})
		}
		eng.Run()
		var wait metrics.Sample
		var makespan time.Duration
		var work float64
		for _, j := range done {
			if j.State() != gram.Done {
				continue
			}
			wait.Add(j.WaitTime().Seconds())
			if j.Ended > makespan {
				makespan = j.Ended
			}
			work += float64(j.Count()) * (j.Ended - j.Started).Seconds()
		}
		name := "EASY backfill"
		if disable {
			name = "pure FCFS"
		}
		t.AddRow(name,
			(time.Duration(wait.Mean()) * time.Second).String(),
			(time.Duration(wait.Quantile(0.95)) * time.Second).String(),
			makespan.Round(time.Minute).String(),
			work/(float64(slots)*makespan.Seconds()),
			bm.BackfilledN)
	}
	return t
}

// ---- Ablation A2: multipath pooling ------------------------------------

// RunPoolingAblation isolates mTCP-style dynamic re-balancing: the same
// multipath transfer with a static byte split vs pooled work stealing,
// over asymmetric paths (the relay path has half the capacity). Static
// splitting strands bytes on the slow path; pooling finishes when the
// aggregate is done.
func RunPoolingAblation(seed int64, bytes float64) *metrics.Table {
	t := metrics.NewTable("splitting", "duration", "throughput MB/s")
	for _, pooled := range []bool{false, true} {
		eng := sim.NewEngine(seed)
		net := simnet.New(eng)
		net.AddSite("A", 0, 0)
		net.AddSite("B", 40, 0)
		net.AddSite("R", 20, 15)
		net.AddHost("src", "A", 1.25e7)
		net.AddHost("dst", "B", 1.25e7)
		net.AddHost("relay", "R", 0.3125e7) // quarter-capacity relay
		var result *simnet.Flow
		_, err := net.StartFlow("src", "dst", bytes, simnet.FlowOpts{
			Streams: 2,
			Paths:   [][]string{nil, {"relay"}},
			Pooled:  pooled,
		}, func(f *simnet.Flow) { result = f })
		if err != nil {
			panic(err)
		}
		eng.Run()
		name := "static split"
		if pooled {
			name = "pooled (mTCP-style)"
		}
		t.AddRow(name, result.Duration().Round(time.Second).String(), result.ThroughputBps()/1e6)
	}
	return t
}

// ---- Ablation A3: MDS refresh period -----------------------------------

// RunTTLAblation sweeps the soft-state refresh period: freshness is paid
// for with registration traffic. Staleness is measured (not assumed) by
// querying the real index just before the next refresh lands.
func RunTTLAblation(seed int64, periods []time.Duration, nResources int) *metrics.Table {
	t := metrics.NewTable("refresh period", "measured staleness", "reg msgs/hour")
	for _, period := range periods {
		eng := sim.NewEngine(seed)
		net := simnet.New(eng)
		net.AddSite("A", 0, 0)
		net.AddSite("B", 30, 0)
		net.AddHost("idx", "A", 1e7)
		net.AddHost("src", "B", 1e7)
		idx := mds.NewGIIS(eng, net, "idx")
		g := mds.NewGRIS(eng, net, "src")
		for i := 0; i < nResources; i++ {
			name := fmt.Sprintf("r%03d", i)
			g.AddProvider(name, func() map[string]string { return map[string]string{"up": "1"} })
		}
		g.StartPush("idx", period)
		// Measure just before the 4th refresh fires.
		eng.RunUntil(3*period - time.Second)
		stale := idx.Eval(mds.Query{}).MaxStale
		g.Stop()
		msgsPerHour := float64(nResources) * float64(time.Hour) / float64(period)
		t.AddRow(period.String(), stale.Round(time.Second).String(), msgsPerHour)
	}
	return t
}

// ---- E11: managed service under churn ----------------------------------

// RunManagedAvailability runs the live counterpart of E10: a
// servicemgr-controlled service (k points of presence, redeploying via
// the SHARP broker on failure) against a statically placed one, under
// the same exponential site-failure trace. The managed service converts
// PlanetLab's spare capacity into availability; the static one eats
// every outage.
func RunManagedAvailability(seed int64, target int, horizon time.Duration) *metrics.Table {
	const nSites = 12
	mtbf := 48 * time.Hour
	mttr := 6 * time.Hour

	eng := sim.NewEngine(seed)
	rng := rand.New(rand.NewSource(seed))

	names := make([]string, nSites)
	runtimes := make(map[string]*broker.SiteRuntime, nSites)
	for i := range names {
		s := fmt.Sprintf("p%02d", i)
		names[i] = s
		nm := capability.NewNodeManager(s, eng, rng, map[capability.ResourceType]float64{capability.CPU: 4})
		node := silk.NewNode(eng, s, silk.DefaultPlanetLabNode())
		auth := sharp.NewAuthority(eng, s, identity.NewPrincipal("auth@"+s, rng), nm,
			map[capability.ResourceType]float64{capability.CPU: 4})
		auth.OversellFactor = 1e6 // deep soft stock; conflicts only at redeem
		runtimes[s] = &broker.SiteRuntime{Authority: auth, NM: nm, Node: node}
	}
	dep := &broker.Deployer{Agent: sharp.NewAgent(identity.NewPrincipal("agent", rng)), Sites: runtimes}
	if err := dep.Stock(500, 0, horizon+time.Hour, names...); err != nil {
		panic(err)
	}
	sm := identity.NewPrincipal("sm", rng)
	mgr := servicemgr.New(eng, dep, sm, servicemgr.Config{
		Name:       "managed-svc",
		Target:     target,
		CPUPerSite: 1,
		Candidates: names,
		Lease:      horizon + time.Hour,
	})
	if err := mgr.Start(); err != nil {
		panic(err)
	}

	// Static placement on the first `target` sites: no redeploys.
	staticSites := map[string]bool{}
	for _, s := range names[:target] {
		staticSites[s] = true
	}
	staticDownN := 0 // how many of the static sites are currently down
	staticDegraded := time.Duration(0)
	staticSince := time.Duration(0)

	up := make(map[string]bool, nSites)
	for _, s := range names {
		up[s] = true
	}
	var flip func(site string)
	flip = func(site string) {
		wasUp := up[site]
		up[site] = !wasUp
		now := eng.Now()
		if wasUp {
			// Site went down.
			if staticSites[site] {
				if staticDownN == 0 {
					staticSince = now
				}
				staticDownN++
			}
			for _, active := range mgr.ActiveSites() {
				if active == site {
					mgr.SiteFailed(site)
					break
				}
			}
			eng.Schedule(workload.Exp(rng, mttr), func() { flip(site) })
			return
		}
		// Site recovered.
		if staticSites[site] {
			staticDownN--
			if staticDownN == 0 {
				staticDegraded += now - staticSince
			}
		}
		mgr.SiteRecovered(site)
		eng.Schedule(workload.Exp(rng, mtbf), func() { flip(site) })
	}
	for _, s := range names {
		s := s
		//gridlint:ignore snapcapture run-to-completion experiment harness on a local engine that is never snapshotted or forked
		eng.Schedule(workload.Exp(rng, mtbf), func() { flip(s) })
	}
	eng.RunUntil(horizon)
	if staticDownN > 0 {
		staticDegraded += eng.Now() - staticSince
	}
	mgr.Stop()

	t := metrics.NewTable("strategy", "degraded fraction", "redeploys")
	t.AddRow(fmt.Sprintf("managed (k=%d, redeploy)", target),
		mgr.DegradedTime.Seconds()/horizon.Seconds(), mgr.RedeployN)
	t.AddRow(fmt.Sprintf("static (k=%d, fixed sites)", target),
		staticDegraded.Seconds()/horizon.Seconds(), 0)
	return t
}
