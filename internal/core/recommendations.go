package core

import (
	"io"

	"repro/internal/metrics"
)

// Recommendation maps one of the paper's §6 "summary and
// recommendations" items to the code that demonstrates it in this
// reproduction — the closing claims of the paper made executable.
type Recommendation struct {
	// To names the community the paper addresses.
	To string
	// Claim is the paper's recommendation, abbreviated.
	Claim string
	// DemonstratedBy names the module/experiment realizing it here.
	DemonstratedBy string
}

// Recommendations returns the paper's §6 list with pointers into the
// codebase.
func Recommendations() []Recommendation {
	return []Recommendation{
		{
			To:    "PlanetLab",
			Claim: "Promote interoperability between services (uniform discovery, representation, invocation)",
			DemonstratedBy: "internal/mds reused as the sensor collector (Federation.Comon); " +
				"internal/agreement service interfaces shared by all three enforcement backends",
		},
		{
			To:    "PlanetLab",
			Claim: "Add support for identity delegation (proxy certificates and GSI offer a possible model)",
			DemonstratedBy: "internal/identity proxy chains validate under the PlanetLab stack too — " +
				"probe identity-delegation flips to pass under StackHybrid (core/probes.go)",
		},
		{
			To:    "Globus",
			Claim: "Add support for delegating resource usage rights — and address virtualization",
			DemonstratedBy: "internal/agreement.SharpEnforcement: WS-Agreement as the vehicle over " +
				"SHARP tickets/leases, exactly the §6 sketch; internal/vm for the virtualization half",
		},
		{
			To:    "Globus",
			Claim: "WS-Agreement as a vehicle for global schedulers based on usage delegation",
			DemonstratedBy: "examples/agreements (three backends, one protocol); " +
				"E5 quantifies the delegation-style difference the recommendation rests on",
		},
		{
			To:    "Globus",
			Claim: "Integrate community contributions via a PlanetLab-style feedback loop",
			DemonstratedBy: "internal/gsi CAS assertion admission (AdmitWithAssertion): community-level " +
				"grants without per-site user enrollment — the outsourcing primitive §6 names",
		},
		{
			To:    "Both",
			Claim: "Pool experiences on security and policy in an increasingly hostile Internet",
			DemonstratedBy: "shared internal/identity PKI under both stacks; blast-radius accounting " +
				"(broker.MatchmakerBlastRadius vs DeployerBlastRadius) in E5",
		},
	}
}

// RenderRecommendations prints the checklist.
func RenderRecommendations(w io.Writer) {
	t := metrics.NewTable("to", "paper recommendation (§6)", "demonstrated by")
	for _, r := range Recommendations() {
		t.AddRow(r.To, r.Claim, r.DemonstratedBy)
	}
	t.Render(w)
}
