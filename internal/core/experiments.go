package core

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/broker"
	"repro/internal/capability"
	"repro/internal/gram"
	"repro/internal/identity"
	"repro/internal/mds"
	"repro/internal/metrics"
	"repro/internal/rsl"
	"repro/internal/sharp"
	"repro/internal/silk"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/workload"
)

// This file implements the quantified-claim experiments E3-E9 from
// DESIGN.md. Each returns a metrics.Table so cmd/gridlab and the bench
// harness print identical artifacts.

// ---- E3: deployment scale ---------------------------------------------

// RunScale sweeps federation size and reports per-stack control-plane
// cost and freshness: registration messages per refresh cycle, worst-case
// discovery staleness just before a refresh, end-to-end placement
// latency, and control messages per placement. The paper's scale context
// (§2.1/§2.2): GT at 20-50 sites heading for 100s; PlanetLab at 155
// sites heading for ~1000.
func RunScale(seed int64, siteCounts []int) *metrics.Table {
	return RunScaleParallel(seed, siteCounts, 1)
}

// scaleRows computes the E3 table rows for one federation size. Each call
// owns a private engine and rng per stack, so grid points are independent
// and safe to fan out.
func scaleRows(seed int64, n int) [][]any {
	specs := make([]SiteSpec, n)
	for i := range specs {
		specs[i] = SiteSpec{
			Name:         fmt.Sprintf("s%04d", i),
			X:            float64(3 * ((i % 40) + 1)),
			Y:            float64(3 * (i / 40)),
			Nodes:        2,
			ClusterSlots: 8,
			Policy:       PlanetLabSitePolicy(), // both stacks admit all
		}
	}

	// Globus build: measure one refresh cycle, then one brokered job.
	fg := Build(StackGlobus, Config{Seed: seed, RefreshInterval: 2 * time.Minute}, specs)
	if scaleMidHook != nil {
		scaleMidHook(fg)
	}
	reg0 := fg.Index.RegisterN
	fg.Eng.RunUntil(fg.Eng.Now() + 2*time.Minute)
	regPerCycle := fg.Index.RegisterN - reg0
	fg.Eng.RunUntil(fg.Eng.Now() + 2*time.Minute - time.Second)
	stale := fg.Index.Eval(mds.Query{}).MaxStale
	user := fg.User("alice")
	proxy, err := user.Delegate("alice/p", fg.Eng.Now(), 12*time.Hour, nil, fg.Rng)
	if err != nil {
		panic(err)
	}
	msgs0 := fg.Net.Host("vo-broker").MsgsSent
	start := fg.Eng.Now()
	placedAt := start
	fg.Matchmaker.SubmitJob(proxy, gram.JobSpec{
		RSL: `&(executable=x)(count=1)(maxWallTime=60)`, ActualRun: time.Second,
	}, nil, func(broker.Placement, error) { placedAt = fg.Eng.Now() })
	fg.Eng.RunUntil(fg.Eng.Now() + 5*time.Minute)
	setupG := placedAt - start
	msgsG := fg.Net.Host("vo-broker").MsgsSent - msgs0
	rows := [][]any{{n, "globus", regPerCycle, stale.Round(time.Second).String(), setupG.Round(time.Millisecond).String(), msgsG}}

	// PlanetLab build: measure the sensor plane over one refresh
	// cycle, then deploy a 5-point-of-presence slice.
	fp := Build(StackPlanetLab, Config{Seed: seed, RefreshInterval: 2 * time.Minute}, specs)
	if scaleMidHook != nil {
		scaleMidHook(fp)
	}
	regP0 := fp.Comon.RegisterN
	fp.Eng.RunUntil(fp.Eng.Now() + 2*time.Minute)
	regPPerCycle := fp.Comon.RegisterN - regP0
	fp.Eng.RunUntil(fp.Eng.Now() + 2*time.Minute - time.Second)
	staleP := fp.Comon.Eval(mds.Query{}).MaxStale
	k := 5
	if n < k {
		k = n
	}
	sites := make([]string, k)
	for i := range sites {
		sites[i] = specs[i].Name
	}
	now := fp.Eng.Now()
	if err := fp.Deployer.Stock(1, now, now+time.Hour, sites...); err != nil {
		panic(err)
	}
	hops0 := fp.Deployer.Hops
	sm := identity.NewPrincipal("sm", fp.Rng)
	if _, err := fp.Deployer.DeploySliceAtomic("svc", sm, 0.5, now, now+time.Hour, sites); err != nil {
		return append(rows, []any{n, "planetlab", n, "-", "deploy failed", 0})
	}
	hops := fp.Deployer.Hops - hops0
	// The SHARP flow here is in-process; estimate wide-area latency
	// as hop count × mean broker↔site one-way delay (documented in
	// EXPERIMENTS.md).
	var rttSum time.Duration
	for _, s := range sites {
		rttSum += fp.Net.RTT("vo-broker", "gk-"+s)
	}
	est := time.Duration(float64(rttSum) / float64(len(sites)) / 2 * float64(hops))
	return append(rows, []any{n, "planetlab", regPPerCycle, staleP.Round(time.Second).String(), est.Round(time.Millisecond).String(), hops})
}

// scaleMidHook, when set, runs on each freshly built federation inside
// scaleRows (E3) — the snapshot-purity gate uses it to take mid-scenario
// engine snapshots. Always nil outside tests.
var scaleMidHook func(f *Federation)

// ---- E4: proxy-certificate lifetime -----------------------------------

// RunProxyLifetime quantifies §4.2.1's tradeoff: "Choosing the lifetime
// of proxy certificates requires a compromise between allowing long-term
// jobs to continue to run as authenticated entities and the need to
// limit the damage in the event a proxy is compromised." For each
// lifetime, a lognormal job population (median 2h) runs through real
// chain validation at completion time; rows report the authentication
// failure rate and the mean abuse window a stolen proxy would grant.
func RunProxyLifetime(seed int64, lifetimes []time.Duration, nJobs int) *metrics.Table {
	return RunProxyLifetimeParallel(seed, lifetimes, nJobs, 1)
}

// proxyJobs generates the shared job population for E4. The slice is
// read-only across grid points; each lifetime forks its own prng.
func proxyJobs(seed int64, nJobs int) []workload.GridJob {
	rng := rand.New(rand.NewSource(seed))
	return workload.GenerateGridJobs(rng, workload.GridJobConfig{
		MeanInterarrival: time.Minute,
		MedianRun:        2 * time.Hour,
		RunSigma:         1.0,
		MaxCount:         1,
		WallFactor:       1.5,
	}, nJobs)
}

// proxyLifetimeRow computes one E4 row: all state (CA, principals, prng)
// is private to the call; jobs is only read.
func proxyLifetimeRow(seed int64, jobs []workload.GridJob, life time.Duration) []any {
	prng := rand.New(rand.NewSource(seed + int64(life)))
	ca := identity.NewCA("ca", 1e6*time.Hour, prng)
	verifier := identity.NewVerifier(ca)
	userP := identity.NewPrincipal("user", prng)
	user := identity.UserCredential(userP, ca.IssueUser(userP, 0, 1e5*time.Hour))

	failures := 0
	for _, j := range jobs {
		proxy, err := user.Delegate("user/proxy", j.Arrival, life, nil, prng)
		if err != nil {
			failures++
			continue
		}
		// The job manager validates the proxy when the job completes
		// (stage-out); an expired proxy fails the job.
		if _, err := verifier.Validate(proxy, j.Arrival+j.Run); err != nil {
			if !errors.Is(err, identity.ErrExpired) {
				panic(err) // only expiry is expected here
			}
			failures++
		}
	}
	failRate := float64(failures) / float64(len(jobs))
	// A proxy stolen uniformly at random during its validity remains
	// abusable for half its lifetime in expectation.
	meanAbuse := life / 2
	// One scalarization makes the crossover visible: failure rate
	// plus abuse window normalized to a 64h horizon.
	cost := failRate + meanAbuse.Hours()/64
	return []any{life.String(), failRate, meanAbuse.String(), cost}
}

// ---- E5: delegation styles --------------------------------------------

// RunDelegation compares the two §4.2 brokering styles under site-policy
// churn: before each placement every site flips into refusing the user
// with probability churn (and heals otherwise). Identity-delegation
// brokering re-authenticates on every submission, so churn bites
// immediately; usage delegation rides bearer tickets acquired before the
// churn, so outstanding claims keep redeeming. The blast-radius columns
// quantify what a compromised broker yields under each style.
func RunDelegation(seed int64, nSites, nOps int, churn float64) *metrics.Table {
	t := metrics.NewTable("style", "success rate", "mean hops/op", "identities exposed", "resource exposed (cpu)")
	specs := make([]SiteSpec, nSites)
	for i := range specs {
		specs[i] = SiteSpec{
			Name: fmt.Sprintf("s%02d", i), X: float64(5 * (i + 1)), Y: 10,
			Nodes: 2, ClusterSlots: 4, Policy: PlanetLabSitePolicy(),
		}
	}

	// Identity delegation (Globus). Pushers stay live: the experiment
	// advances virtual time past the record TTL between operations.
	fg := Build(StackGlobus, Config{Seed: seed}, specs)
	user := fg.User("alice")
	churnRng := rand.New(rand.NewSource(seed + 1))
	okG := 0
	hops0 := fg.Matchmaker.Hops
	for op := 0; op < nOps; op++ {
		for _, s := range fg.JoinedSites() {
			if churnRng.Float64() < churn {
				s.Gridmap.Blacklist("alice")
			} else {
				s.Gridmap.Unblacklist("alice")
			}
		}
		proxy, err := user.Delegate("alice/p", fg.Eng.Now(), 12*time.Hour, nil, fg.Rng)
		if err != nil {
			panic(err)
		}
		done := false
		var subErr error
		fg.Matchmaker.SubmitJob(proxy, gram.JobSpec{
			RSL: `&(executable=x)(count=1)(maxWallTime=60)`, ActualRun: time.Second,
		}, nil, func(_ broker.Placement, e error) { done, subErr = true, e })
		fg.Eng.RunUntil(fg.Eng.Now() + 10*time.Minute)
		if done && subErr == nil {
			okG++
		}
	}
	brG := broker.MatchmakerBlastRadius(fg.Matchmaker)
	t.AddRow("identity-delegation (globus)",
		float64(okG)/float64(nOps),
		float64(fg.Matchmaker.Hops-hops0)/float64(nOps),
		brG.IdentitiesExposed, 0.0)

	// Usage delegation (PlanetLab): tickets stocked before churn begins.
	fp := Build(StackPlanetLab, Config{Seed: seed, StopPushers: true}, specs)
	now := fp.Eng.Now()
	siteNames := make([]string, len(specs))
	for i := range specs {
		siteNames[i] = specs[i].Name
	}
	// Stock exactly what the op stream will consume (tickets are one-shot)
	// plus one op of slack, staying inside each authority's issue budget.
	perSite := 0.25 * (float64(nOps)/float64(nSites) + 1)
	if err := fp.Deployer.Stock(perSite, now, now+1000*time.Hour, siteNames...); err != nil {
		panic(err)
	}
	okP := 0
	hopsP0 := fp.Deployer.Hops
	for op := 0; op < nOps; op++ {
		// PlanetLab churn hits new issuance, not outstanding bearer
		// tickets: redemption of stocked tickets is unaffected — the
		// structural property being measured.
		sm := identity.NewPrincipal(fmt.Sprintf("sm%d", op), fp.Rng)
		site := siteNames[op%len(siteNames)]
		slice, err := fp.Deployer.DeploySliceAtomic(fmt.Sprintf("svc%d", op), sm, 0.25, now, now+1000*time.Hour, []string{site})
		if err == nil {
			okP++
			slice.StopAll()
		}
	}
	brP := broker.DeployerBlastRadius(fp.Deployer)
	t.AddRow("usage-delegation (planetlab)",
		float64(okP)/float64(nOps),
		float64(fp.Deployer.Hops-hopsP0)/float64(nOps),
		0, brP.ResourceExposed)
	return t
}

// ---- E6: allocation disciplines ---------------------------------------

// RunAllocation reproduces §4.2.2's observation: "most resources
// allocations are 'best-effort' and resources that cannot be shared
// (e.g., network ports) are allocated on a first-come-first-served
// basis." A Zipf-popular service population lands on a node pool under
// two disciplines; rows report port-conflict rate, admission failures,
// CPU utilization, and Jain fairness of achieved/demanded CPU.
func RunAllocation(seed int64, nNodes, nServices int) *metrics.Table {
	return RunAllocationParallel(seed, nNodes, nServices, 1)
}

// allocationDisciplines is the E6 grid axis, in output order.
var allocationDisciplines = []string{"best-effort", "reserved"}

// allocationRow computes one E6 row: the service population svcs is
// read-only; the engine, nodes, and managers are private to the call.
func allocationRow(seed int64, nNodes, nServices int, svcs []workload.NetService, discipline string) []any {
	eng := sim.NewEngine(seed)
	spec := silk.DefaultPlanetLabNode()
	nodes := make([]*silk.Node, nNodes)
	nms := make([]*capability.NodeManager, nNodes)
	for i := range nodes {
		nodes[i] = silk.NewNode(eng, fmt.Sprintf("n%02d", i), spec)
		nms[i] = capability.NewNodeManager(nodes[i].Name, eng, rand.New(rand.NewSource(seed+int64(i))),
			map[capability.ResourceType]float64{capability.CPU: spec.Cores})
	}
	portConflicts := 0
	admissionFails := 0
	admitted := make([]bool, nServices)
	bestEffortPerNode := make([]int, nNodes)

	for i, svc := range svcs {
		nodeIdx := i % nNodes
		nm := nms[nodeIdx]
		// Port claim: FCFS under both disciplines.
		if _, err := nm.Mint(capability.MintRequest{
			Type: capability.Port, PortNum: svc.Port,
			NotAfter: 1000 * time.Hour,
		}); err != nil {
			portConflicts++
		}
		switch discipline {
		case "best-effort":
			if _, err := nodes[nodeIdx].NewContext(svc.ID, silk.ContextSpec{CPUShares: 1}); err != nil {
				admissionFails++
				continue
			}
			admitted[i] = true
			bestEffortPerNode[nodeIdx]++
		case "reserved":
			if _, err := nm.Mint(capability.MintRequest{
				Type: capability.CPU, Amount: svc.CPUPerSite, Dedicated: true,
				NotAfter: 1000 * time.Hour,
			}); err != nil {
				admissionFails++
				continue
			}
			if _, err := nodes[nodeIdx].NewContext(svc.ID, silk.ContextSpec{DedicatedCores: svc.CPUPerSite}); err != nil {
				admissionFails++
				continue
			}
			admitted[i] = true
		}
	}

	// Steady-state achieved CPU: best-effort contexts split the
	// shared capacity equally but never take more than demand;
	// reserved contexts hold exactly their demand.
	totalUsed := 0.0
	ratios := make([]float64, nServices)
	for i, svc := range svcs {
		if !admitted[i] {
			continue
		}
		nodeIdx := i % nNodes
		achieved := svc.CPUPerSite
		if discipline == "best-effort" {
			share := spec.Cores / float64(bestEffortPerNode[nodeIdx])
			if share < achieved {
				achieved = share
			}
		}
		totalUsed += achieved
		ratios[i] = achieved / svc.CPUPerSite
	}
	capacity := float64(nNodes) * spec.Cores
	return []any{discipline,
		float64(portConflicts) / float64(nServices),
		float64(admissionFails) / float64(nServices),
		totalUsed / capacity,
		metrics.Jain(ratios)}
}

// ---- E7: heterogeneity glue -------------------------------------------

// RunHeterogeneity quantifies §4.1: GT's "glue" interposes translation
// over h distinct local-manager dialects, while PlanetLab "does not need
// to build the 'glue' level". Rows report translation operations per job
// and the fraction of failures that lose fidelity in back-translation
// (h=0 is the PlanetLab uniform interface).
func RunHeterogeneity(seed int64, dialectCounts []int, nJobs int) *metrics.Table {
	return RunHeterogeneityParallel(seed, dialectCounts, nJobs, 1)
}

// heterogeneityRow computes one E7 row; engine, managers, rng, and job
// stream are all private to the call.
func heterogeneityRow(seed int64, h, nJobs int) []any {
	eng := sim.NewEngine(seed)
	var managers []*gram.Glue
	if h == 0 {
		managers = append(managers, gram.NewGlue(gram.NewBatchManager(eng, "uniform", 8), gram.CanonicalDialect))
	} else {
		for i, d := range gram.StandardDialects(h) {
			managers = append(managers, gram.NewGlue(gram.NewBatchManager(eng, fmt.Sprintf("lm%d", i), 8), d))
		}
	}
	rng := rand.New(rand.NewSource(seed))
	jobs := workload.GenerateGridJobs(rng, workload.GridJobConfig{
		MeanInterarrival: time.Minute, MedianRun: 10 * time.Minute,
		RunSigma: 0.5, MaxCount: 8, WallFactor: 2,
	}, nJobs)
	errsTotal, errsOpaque := 0, 0
	var submitted []*gram.Job
	for i, wj := range jobs {
		g := managers[i%len(managers)]
		spec, err := rsl.Parse(wj.RSL())
		if err != nil {
			panic(err)
		}
		req, err := spec.Single()
		if err != nil {
			panic(err)
		}
		// Every 7th job is malformed (missing wall time) to probe
		// error-translation fidelity.
		if i%7 == 3 {
			req = stripWall(req)
		}
		job := &gram.Job{ID: wj.ID, Req: req, Spec: gram.JobSpec{RSL: wj.RSL(), ActualRun: wj.Run}}
		if err := g.Submit(job); err != nil {
			errsTotal++
			if errors.Is(err, gram.ErrOpaqueLocal) {
				errsOpaque++
			}
			continue
		}
		submitted = append(submitted, job)
	}
	eng.Run()
	done := 0
	for _, j := range submitted {
		if j.State() == gram.Done {
			done++
		}
	}
	ops := 0
	for _, g := range managers {
		ops += g.TranslateOps
	}
	opaqueFrac := 0.0
	if errsTotal > 0 {
		opaqueFrac = float64(errsOpaque) / float64(errsTotal)
	}
	return []any{h, float64(ops) / float64(nJobs), opaqueFrac, done}
}

func stripWall(r rsl.Request) rsl.Request {
	out := rsl.Request{}
	for _, rel := range r.Relations {
		if rel.Attr == "maxWallTime" {
			continue
		}
		out.Relations = append(out.Relations, rel)
	}
	return out
}

// ---- E8: data-grid transfers ------------------------------------------

// RunDataGrid reproduces the §5 scenario quantitatively: striped
// GridFTP-style transfers with and without a PlanetLab multipath overlay,
// across loss rates. The expected shape: striping multiplies
// loss-limited throughput; the overlay wins once the direct path is
// lossy.
func RunDataGrid(seed int64, bytes float64, losses []float64, stripes []int) *metrics.Table {
	return RunDataGridParallel(seed, bytes, losses, stripes, 1)
}

// dataGridRow computes one E8 cell (loss × stripe × path choice) on a
// private engine and network.
func dataGridRow(seed int64, bytes, loss float64, k int, overlay bool) []any {
	eng := sim.NewEngine(seed)
	net := simnet.New(eng)
	net.AddSite("A", 0, 0)
	net.AddSite("B", 40, 0)
	net.AddSite("R1", 20, 15)
	net.AddSite("R2", 20, -15)
	net.AddHost("src", "A", 1.25e7)
	net.AddHost("dst", "B", 1.25e7)
	net.AddHost("r1", "R1", 1.25e7)
	net.AddHost("r2", "R2", 1.25e7)
	net.SetLoss("A", "B", loss)
	opts := simnet.FlowOpts{Streams: k}
	pathName := "direct"
	if overlay {
		opts.Paths = [][]string{nil, {"r1"}, {"r2"}}
		opts.Pooled = true
		if opts.Streams < 3 {
			opts.Streams = 3
		}
		pathName = "multipath"
	}
	var result *simnet.Flow
	if _, err := net.StartFlow("src", "dst", bytes, opts, func(f *simnet.Flow) { result = f }); err != nil {
		return []any{loss, k, pathName, "error"}
	}
	eng.Run()
	if result == nil {
		return []any{loss, k, pathName, "incomplete"}
	}
	return []any{loss, k, pathName, result.ThroughputBps() / 1e6}
}

// ---- E9: SHARP oversubscription ---------------------------------------

// RunOversub sweeps the authority's oversell factor: soft-claim issuance
// rises with the factor and the predicted conflicts surface at redeem
// time. Shape: utilization climbs to 1.0 at factor >= 1; the rejection
// rate grows past it.
func RunOversub(seed int64, factors []float64) *metrics.Table {
	return RunOversubParallel(seed, factors, 1)
}

// oversubRow computes one E9 row on a private engine, rng, and authority.
func oversubRow(seed int64, factor float64) []any {
	eng := sim.NewEngine(seed)
	rng := rand.New(rand.NewSource(seed))
	nm := capability.NewNodeManager("S", eng, rng, map[capability.ResourceType]float64{capability.CPU: 100})
	auth := sharp.NewAuthority(eng, "S", identity.NewPrincipal("auth", rng), nm,
		map[capability.ResourceType]float64{capability.CPU: 100})
	auth.OversellFactor = factor
	agent := sharp.NewAgent(identity.NewPrincipal("agent", rng))
	var tickets []*sharp.Ticket
	for {
		tk, err := auth.IssueTicket(agent.Name, agent.Key(), capability.CPU, 5, 0, time.Hour)
		if err != nil {
			break
		}
		tickets = append(tickets, tk)
	}
	ok, conflicts := 0, 0
	leased := 0.0
	for _, tk := range tickets {
		lease, err := auth.Redeem(tk)
		if err != nil {
			conflicts++
			continue
		}
		ok++
		leased += lease.Amount
	}
	return []any{factor, len(tickets), ok, conflicts, leased / 100, float64(conflicts) / float64(len(tickets))}
}
