// Package gram implements the Globus Resource Allocation Manager: the
// per-site gatekeeper that authenticates requests via GSI, authorizes them
// through the site gridmap, and hands jobs to local-scheduler job
// managers. Two job managers model the paper's local-resource spectrum: a
// fork manager (immediate best-effort execution, contending on the node's
// CPU) and a batch manager (FCFS queue with EASY backfill and *advance
// reservations* — the paper's midnight-reservation example: "discover a
// node that supports reservations, query for available timeslots, make a
// reservation, claim the reservation each day, and bind it to the
// application").
//
// The dialect layer models the heterogeneity "glue" GT must provide
// ("GT provides, in effect, a set of unifying interfaces through which
// local resource management functionality can be discovered and used"),
// which experiment E7 quantifies against PlanetLab's uniform node
// interface.
package gram

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/rsl"
)

// Job lifecycle errors.
var (
	ErrUnknownJob      = errors.New("gram: unknown job")
	ErrBadState        = errors.New("gram: invalid state transition")
	ErrQueueFull       = errors.New("gram: queue full")
	ErrNoReservation   = errors.New("gram: unknown or unusable reservation")
	ErrInfeasible      = errors.New("gram: reservation window infeasible")
	ErrTooManySlots    = errors.New("gram: request exceeds machine size")
	ErrNoSuchManager   = errors.New("gram: no such job manager")
	ErrWallTimeMissing = errors.New("gram: maxWallTime required by batch manager")
)

// JobState is the GRAM job state machine (GT2 vocabulary, condensed).
type JobState int

// The job states.
const (
	Unsubmitted JobState = iota
	Pending              // accepted, waiting for resources
	Active               // running
	Done                 // finished successfully
	Failed
	Cancelled
)

var jobStateNames = [...]string{"unsubmitted", "pending", "active", "done", "failed", "cancelled"}

func (s JobState) String() string {
	if int(s) < len(jobStateNames) {
		return jobStateNames[s]
	}
	return fmt.Sprintf("JobState(%d)", int(s))
}

// Terminal reports whether no further transitions can occur.
func (s JobState) Terminal() bool { return s == Done || s == Failed || s == Cancelled }

// JobSpec is what a client submits: the RSL description plus the job's
// true runtime (known to the workload generator, not to the scheduler,
// which sees only maxWallTime).
type JobSpec struct {
	RSL string
	// ActualRun is the job's true execution time at full allocation; the
	// batch manager bills wall-clock, the fork manager core-seconds.
	ActualRun time.Duration
	// Owner is the authenticated grid subject (filled by the gatekeeper).
	Owner string
	// LocalAccount is the gridmap-resolved account (filled by gatekeeper).
	LocalAccount string
}

// Transition is one step of a job's recorded lifecycle.
type Transition struct {
	To JobState
	At time.Duration
}

// Job is one unit of managed work.
type Job struct {
	ID    string
	Spec  JobSpec
	Req   rsl.Request
	state JobState

	Submitted time.Duration
	Started   time.Duration
	Ended     time.Duration

	// History records every state transition with its virtual time —
	// the audit trail that lets sites "associate resource usage with
	// specific individuals" (§4.2.1). Times are filled by the managers
	// via the Submitted/Started/Ended fields; History keeps the order.
	History []Transition

	// FailReason records why the job failed.
	FailReason error

	// OnState, when set, observes every transition.
	OnState func(*Job, JobState)
}

// State returns the current job state.
func (j *Job) State() JobState { return j.state }

func (j *Job) transition(to JobState) {
	j.state = to
	at := j.Submitted
	switch to {
	case Active:
		at = j.Started
	case Done, Failed, Cancelled:
		at = j.Ended
	}
	j.History = append(j.History, Transition{To: to, At: at})
	if j.OnState != nil {
		j.OnState(j, to)
	}
}

// ChargedCoreSeconds returns the usage to bill the job's owner: slots ×
// wall-clock occupancy for completed or killed work, zero before then.
func (j *Job) ChargedCoreSeconds() float64 {
	if j.Ended <= j.Started || j.Started == 0 {
		return 0
	}
	return float64(j.Count()) * (j.Ended - j.Started).Seconds()
}

// WaitTime returns queue delay (valid once Active or later).
func (j *Job) WaitTime() time.Duration { return j.Started - j.Submitted }

// Count returns the requested slot count (default 1).
func (j *Job) Count() int { return j.Req.IntDefault("count", 1) }

// MaxWall returns the declared wall-time limit in seconds, or an error
// when absent.
func (j *Job) MaxWall() (time.Duration, error) {
	d, err := j.Req.Seconds("maxWallTime")
	if err != nil {
		return 0, ErrWallTimeMissing
	}
	return d, nil
}

// Manager is a local-scheduler adapter: GRAM's uniform interface over
// heterogeneous local resource managers.
type Manager interface {
	// Name identifies the manager (e.g. "fork", "batch").
	Name() string
	// Submit accepts a job; the manager drives its state machine.
	Submit(j *Job) error
	// Cancel stops a pending or active job.
	Cancel(j *Job) error
}
