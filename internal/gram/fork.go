package gram

import (
	"fmt"

	"repro/internal/silk"
	"repro/internal/sim"
)

// ForkManager is the best-effort local scheduler: jobs start immediately
// and contend for the node's CPU under proportional sharing, so load
// stretches everyone's completion time. This is the "most resource
// allocations are 'best-effort'" regime.
type ForkManager struct {
	eng  *sim.Engine
	node *silk.Node
	ctx  *silk.Context

	tasks map[*Job]*sim.FluidConsumer

	// CompletedN counts finished jobs.
	CompletedN int
}

// NewForkManager creates a fork manager executing on node.
func NewForkManager(eng *sim.Engine, node *silk.Node) (*ForkManager, error) {
	ctx, err := node.NewContext("gram-fork", silk.ContextSpec{CPUShares: 1})
	if err != nil {
		return nil, err
	}
	return &ForkManager{eng: eng, node: node, ctx: ctx, tasks: make(map[*Job]*sim.FluidConsumer)}, nil
}

// Name implements Manager.
func (m *ForkManager) Name() string { return "fork" }

// Submit implements Manager: the job goes Active immediately; its CPU
// demand is count × ActualRun core-seconds.
func (m *ForkManager) Submit(j *Job) error {
	if j.State() != Unsubmitted {
		return fmt.Errorf("%w: submit in %v", ErrBadState, j.State())
	}
	j.Submitted = m.eng.Now()
	work := j.Spec.ActualRun.Seconds() * float64(j.Count())
	j.Started = m.eng.Now()
	j.transition(Active)
	task, err := m.ctx.RunTask(j.ID, work, func() {
		delete(m.tasks, j)
		j.Ended = m.eng.Now()
		m.CompletedN++
		j.transition(Done)
	})
	if err != nil {
		j.FailReason = err
		j.transition(Failed)
		return err
	}
	m.tasks[j] = task
	return nil
}

// Cancel implements Manager.
func (m *ForkManager) Cancel(j *Job) error {
	task, ok := m.tasks[j]
	if !ok {
		return ErrUnknownJob
	}
	m.ctx.KillTask(task)
	delete(m.tasks, j)
	j.Ended = m.eng.Now()
	j.transition(Cancelled)
	return nil
}

// Active returns the number of running jobs.
func (m *ForkManager) Active() int { return len(m.tasks) }
