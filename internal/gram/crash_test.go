package gram

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestCrashFailsQueuedAndRunningJobs(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewBatchManager(eng, "batch", 4)
	running := mkJob(t, "j1", `&(executable=a)(count=4)(maxWallTime=100)`, 80*time.Second)
	queued := mkJob(t, "j2", `&(executable=b)(count=4)(maxWallTime=100)`, 30*time.Second)
	if err := m.Submit(running); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(queued); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(10 * time.Second)

	boom := errors.New("head node died")
	m.Crash(boom)
	if running.State() != Failed || queued.State() != Failed {
		t.Fatalf("states after crash: %v %v", running.State(), queued.State())
	}
	if !errors.Is(running.FailReason, boom) || !errors.Is(queued.FailReason, boom) {
		t.Errorf("fail reasons: %v / %v", running.FailReason, queued.FailReason)
	}
	if running.Ended != 10*time.Second {
		t.Errorf("running job ended at %v", running.Ended)
	}
	if m.QueueLen() != 0 || m.RunningN() != 0 {
		t.Errorf("queue=%d running=%d after crash", m.QueueLen(), m.RunningN())
	}
	if m.CrashN != 1 {
		t.Errorf("CrashN = %d", m.CrashN)
	}

	// The stale completion event for the crashed running job is a no-op.
	eng.Run()
	if running.State() != Failed {
		t.Errorf("crashed job resurrected to %v", running.State())
	}
}

func TestCrashDropsReservationsButManagerRecovers(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewBatchManager(eng, "batch", 4)
	id, err := m.Reserve(100*time.Second, 50*time.Second, 2)
	if err != nil {
		t.Fatal(err)
	}
	m.Crash(errors.New("power cut"))
	if err := m.CancelReservation(id); !errors.Is(err, ErrNoReservation) {
		t.Errorf("reservation survived crash: %v", err)
	}
	// The site comes back: new submissions run normally.
	j := mkJob(t, "j3", `&(executable=c)(count=1)(maxWallTime=60)`, 20*time.Second)
	if err := m.Submit(j); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if j.State() != Done {
		t.Errorf("post-recovery job = %v", j.State())
	}
}

func TestGatekeeperJobsSorted(t *testing.T) {
	// Jobs() must return a deterministic, ID-sorted view regardless of map
	// order. Build a bare gatekeeper-shaped job set via a BatchManager and
	// check ordering through the exported accessor on a live gatekeeper in
	// core's tests; here, verify sorting over a hand-built jobs map.
	g := &Gatekeeper{jobs: map[string]*Job{
		"gk/3": {ID: "gk/3"},
		"gk/1": {ID: "gk/1"},
		"gk/2": {ID: "gk/2"},
	}}
	got := g.Jobs()
	if len(got) != 3 || got[0].ID != "gk/1" || got[1].ID != "gk/2" || got[2].ID != "gk/3" {
		t.Errorf("Jobs() order = %v", []string{got[0].ID, got[1].ID, got[2].ID})
	}
}
