package gram

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/gsi"
	"repro/internal/identity"
	"repro/internal/sim"
	"repro/internal/simnet"
)

type gkFixture struct {
	eng   *sim.Engine
	net   *simnet.Network
	gk    *Gatekeeper
	batch *BatchManager
	alice *identity.Credential
	evil  *identity.Credential
}

func newGKFixture(t *testing.T) *gkFixture {
	t.Helper()
	eng := sim.NewEngine(1)
	net := simnet.New(eng)
	net.AddSite("A", 0, 0)
	net.AddSite("B", 30, 0)
	net.AddHost("client", "A", 1e6)
	net.AddHost("gk", "B", 1e6)

	rng := eng.ForkRand()
	ca := identity.NewCA("ca", 10000*time.Hour, rng)
	aliceP := identity.NewPrincipal("alice", rng)
	alice := identity.UserCredential(aliceP, ca.IssueUser(aliceP, 0, 5000*time.Hour))
	evilP := identity.NewPrincipal("mallory", rng)
	evil := identity.UserCredential(evilP, ca.IssueUser(evilP, 0, 5000*time.Hour))

	gm := gsi.NewGridmap()
	gm.Map("alice", "u1001")
	policy := &gsi.SitePolicy{
		Auth:    &gsi.ChainAuthenticator{Verifier: identity.NewVerifier(ca)},
		Gridmap: gm,
	}
	gk := NewGatekeeper(net, net.Host("gk"), policy)
	batch := NewBatchManager(eng, "batch", 8)
	gk.AddManager("batch", batch)
	return &gkFixture{eng: eng, net: net, gk: gk, batch: batch, alice: alice, evil: evil}
}

func TestGatekeeperSubmitFlow(t *testing.T) {
	f := newGKFixture(t)
	var reply SubmitReply
	var err error
	var notices []StateNotice
	f.net.Host("client").Handle("cb", func(_ string, raw any) (any, error) {
		notices = append(notices, raw.(StateNotice))
		return nil, nil
	})
	Submit(f.net, "client", "gk", SubmitRequest{
		Cred:            f.alice,
		Spec:            JobSpec{RSL: `&(executable=/bin/sim)(count=2)(maxWallTime=100)`, ActualRun: 60 * time.Second},
		CallbackHost:    "client",
		CallbackService: "cb",
	}, time.Minute, func(r SubmitReply, e error) { reply, err = r, e })
	f.eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if reply.JobID == "" || reply.State != Active {
		t.Errorf("reply = %+v", reply)
	}
	j := f.gk.Job(reply.JobID)
	if j == nil || j.State() != Done {
		t.Fatalf("job missing or not done: %+v", j)
	}
	if j.Spec.Owner != "alice" || j.Spec.LocalAccount != "u1001" {
		t.Errorf("identity mapping: owner=%q local=%q", j.Spec.Owner, j.Spec.LocalAccount)
	}
	// Callback saw the Done transition.
	sawDone := false
	for _, n := range notices {
		if n.JobID == reply.JobID && n.State == Done {
			sawDone = true
		}
	}
	if !sawDone {
		t.Errorf("notices = %+v, want Done", notices)
	}
}

func TestGatekeeperRejectsUnmapped(t *testing.T) {
	f := newGKFixture(t)
	var err error
	Submit(f.net, "client", "gk", SubmitRequest{
		Cred: f.evil,
		Spec: JobSpec{RSL: `&(executable=x)(maxWallTime=10)`, ActualRun: time.Second},
	}, time.Minute, func(_ SubmitReply, e error) { err = e })
	f.eng.Run()
	if !errors.Is(err, gsi.ErrNoMapping) {
		t.Errorf("err = %v, want ErrNoMapping", err)
	}
	if f.gk.AuthFailN != 1 {
		t.Errorf("AuthFailN = %d", f.gk.AuthFailN)
	}
}

func TestGatekeeperDelegatedProxySubmission(t *testing.T) {
	// A broker holding alice's proxy submits on her behalf: the job is
	// owned by alice, not the broker — the identity-delegation pattern.
	f := newGKFixture(t)
	proxy, errD := f.alice.Delegate("alice/proxy", 0, 12*time.Hour, nil, f.eng.ForkRand())
	if errD != nil {
		t.Fatal(errD)
	}
	var reply SubmitReply
	var err error
	Submit(f.net, "client", "gk", SubmitRequest{
		Cred: proxy,
		Spec: JobSpec{RSL: `&(executable=x)(maxWallTime=10)`, ActualRun: time.Second},
	}, time.Minute, func(r SubmitReply, e error) { reply, err = r, e })
	f.eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if f.gk.Job(reply.JobID).Spec.Owner != "alice" {
		t.Errorf("owner = %q, want alice", f.gk.Job(reply.JobID).Spec.Owner)
	}
}

func TestGatekeeperExpiredProxyRejected(t *testing.T) {
	f := newGKFixture(t)
	proxy, _ := f.alice.Delegate("alice/proxy", 0, time.Hour, nil, f.eng.ForkRand())
	// Let the proxy expire before submitting.
	f.eng.RunUntil(2 * time.Hour)
	var err error
	Submit(f.net, "client", "gk", SubmitRequest{
		Cred: proxy,
		Spec: JobSpec{RSL: `&(executable=x)(maxWallTime=10)`, ActualRun: time.Second},
	}, time.Minute, func(_ SubmitReply, e error) { err = e })
	f.eng.Run()
	if !errors.Is(err, gsi.ErrNotAuthenticated) {
		t.Errorf("err = %v, want ErrNotAuthenticated", err)
	}
}

func TestGatekeeperStatusAndCancel(t *testing.T) {
	f := newGKFixture(t)
	var jobID string
	Submit(f.net, "client", "gk", SubmitRequest{
		Cred: f.alice,
		Spec: JobSpec{RSL: `&(executable=x)(maxWallTime=10000)`, ActualRun: 2 * time.Hour},
	}, time.Minute, func(r SubmitReply, e error) { jobID = r.JobID })
	f.eng.RunUntil(time.Minute)
	if jobID == "" {
		t.Fatal("no job id")
	}
	var st StatusReply
	f.net.Call("client", "gk", SvcStatus, jobID, time.Minute, func(r any, e error) {
		if e == nil {
			st = r.(StatusReply)
		}
	})
	f.eng.RunUntil(2 * time.Minute)
	if st.State != Active {
		t.Errorf("status = %v", st.State)
	}
	var cancelErr error
	f.net.Call("client", "gk", SvcCancel, jobID, time.Minute, func(_ any, e error) { cancelErr = e })
	f.eng.Run()
	if cancelErr != nil {
		t.Fatal(cancelErr)
	}
	if f.gk.Job(jobID).State() != Cancelled {
		t.Errorf("state = %v", f.gk.Job(jobID).State())
	}
	// Status of unknown job errors.
	var unkErr error
	f.net.Call("client", "gk", SvcStatus, "nosuch", time.Minute, func(_ any, e error) { unkErr = e })
	f.eng.Run()
	if !errors.Is(unkErr, ErrUnknownJob) {
		t.Errorf("unknown: %v", unkErr)
	}
}

func TestGatekeeperReserveRPC(t *testing.T) {
	f := newGKFixture(t)
	var rep ReserveReply
	var err error
	f.net.Call("client", "gk", SvcReserve, ReserveRequest{
		Cred: f.alice, Start: time.Hour, Dur: time.Hour, Count: 4,
	}, time.Minute, func(r any, e error) {
		if e == nil {
			rep = r.(ReserveReply)
		}
		err = e
	})
	f.eng.RunUntil(time.Minute)
	if err != nil || rep.ReservationID == "" {
		t.Fatalf("reserve = (%+v, %v)", rep, err)
	}
	// Claim it through a normal submit.
	var jr SubmitReply
	Submit(f.net, "client", "gk", SubmitRequest{
		Cred: f.alice,
		Spec: JobSpec{
			RSL:       `&(executable=x)(count=4)(maxWallTime=1800)(reservation=` + rep.ReservationID + `)`,
			ActualRun: 20 * time.Minute,
		},
	}, time.Minute, func(r SubmitReply, e error) { jr, err = r, e })
	f.eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	j := f.gk.Job(jr.JobID)
	if j.State() != Done || j.Started != time.Hour {
		t.Errorf("claimed job: state=%v started=%v", j.State(), j.Started)
	}
}

func TestGatekeeperUnknownManager(t *testing.T) {
	f := newGKFixture(t)
	var err error
	Submit(f.net, "client", "gk", SubmitRequest{
		Cred:    f.alice,
		Manager: "nosuch",
		Spec:    JobSpec{RSL: `&(executable=x)(maxWallTime=10)`, ActualRun: time.Second},
	}, time.Minute, func(_ SubmitReply, e error) { err = e })
	f.eng.Run()
	if !errors.Is(err, ErrNoSuchManager) {
		t.Errorf("err = %v", err)
	}
}

func TestGatekeeperBadRSL(t *testing.T) {
	f := newGKFixture(t)
	var err error
	Submit(f.net, "client", "gk", SubmitRequest{
		Cred: f.alice,
		Spec: JobSpec{RSL: `not rsl`, ActualRun: time.Second},
	}, time.Minute, func(_ SubmitReply, e error) { err = e })
	f.eng.Run()
	if err == nil {
		t.Error("bad RSL accepted")
	}
}

func TestUsageAccountingPerOwner(t *testing.T) {
	f := newGKFixture(t)
	// Two jobs with distinct slot-time footprints, both owned by alice.
	for _, spec := range []struct {
		count int
		run   time.Duration
	}{{2, 100 * time.Second}, {4, 50 * time.Second}} {
		rsl := fmt.Sprintf(`&(executable=x)(count=%d)(maxWallTime=1000)`, spec.count)
		Submit(f.net, "client", "gk", SubmitRequest{
			Cred: f.alice,
			Spec: JobSpec{RSL: rsl, ActualRun: spec.run},
		}, time.Minute, func(SubmitReply, error) {})
		f.eng.Run()
	}
	usage := f.gk.UsageByOwner()
	// 2×100 + 4×50 = 400 core-seconds for alice.
	if got := usage["alice"]; got != 400 {
		t.Errorf("alice usage = %v, want 400", got)
	}
}

func TestJobHistoryRecordsLifecycle(t *testing.T) {
	f := newGKFixture(t)
	var id string
	Submit(f.net, "client", "gk", SubmitRequest{
		Cred: f.alice,
		Spec: JobSpec{RSL: `&(executable=x)(count=8)(maxWallTime=100)`, ActualRun: 30 * time.Second},
	}, time.Minute, func(r SubmitReply, e error) { id = r.JobID })
	f.eng.Run()
	j := f.gk.Job(id)
	if len(j.History) < 2 {
		t.Fatalf("history = %+v", j.History)
	}
	// Pending -> Active -> Done (batch manager with free slots goes
	// Pending then immediately Active in the same instant).
	last := j.History[len(j.History)-1]
	if last.To != Done || last.At != j.Ended {
		t.Errorf("last transition = %+v", last)
	}
	for i := 1; i < len(j.History); i++ {
		if j.History[i].At < j.History[i-1].At {
			t.Error("history times decrease")
		}
	}
	if j.ChargedCoreSeconds() != 8*30 {
		t.Errorf("charged = %v", j.ChargedCoreSeconds())
	}
}
