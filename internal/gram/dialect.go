package gram

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/rsl"
)

// Dialect describes one local resource manager's idiosyncrasies: the
// attribute names it insists on, attributes it requires even when
// redundant, and the (partial) error vocabulary it can express. Real GT
// deployments bridged PBS, LSF, Condor, LoadLeveler and more; "it is rare
// that there is not some amount of heterogeneity to manage."
type Dialect struct {
	Name string
	// Rename maps canonical attribute names to the dialect's names.
	Rename map[string]string
	// Required lists dialect attributes the glue must synthesize when the
	// canonical request omits them (name -> default value).
	Required map[string]string
	// Errors lists the canonical error kinds the dialect can express.
	// Anything else degrades to an opaque code and loses fidelity.
	Errors map[error]string
}

// ErrOpaqueLocal is the degraded error returned when a local manager's
// failure has no canonical translation — the fidelity loss E7 counts.
var ErrOpaqueLocal = errors.New("gram: opaque local-manager error")

// CanonicalDialect is the identity dialect: PlanetLab's uniform node
// interface, where no translation happens at all.
var CanonicalDialect = Dialect{Name: "canonical"}

// StandardDialects returns n synthetic local-manager dialects with
// progressively divergent vocabularies, for the E7 heterogeneity sweep.
func StandardDialects(n int) []Dialect {
	names := []string{"pbs", "lsf", "condor", "loadleveler", "sge", "nqe", "ccs", "easy"}
	out := make([]Dialect, 0, n)
	for i := 0; i < n; i++ {
		name := names[i%len(names)]
		d := Dialect{
			Name: name,
			Rename: map[string]string{
				"count":       []string{"nodes", "n_procs", "machine_count", "tasks"}[i%4],
				"maxWallTime": []string{"walltime", "cpu_limit", "wall_clock_limit", "time"}[i%4],
				"queue":       []string{"destination", "class", "pool", "partition"}[i%4],
			},
			Required: map[string]string{},
			Errors:   map[error]string{ErrTooManySlots: name + "-E12"},
		}
		if i%2 == 0 {
			d.Required["shell"] = "/bin/sh"
		}
		if i%3 == 0 {
			d.Errors[ErrQueueFull] = name + "-E13"
		}
		// Every other dialect has a richer error vocabulary and can
		// express a missing wall-time limit; the rest degrade it to an
		// opaque code — so fidelity varies with the dialect mix.
		if i%2 == 1 {
			d.Errors[ErrWallTimeMissing] = name + "-E25"
		}
		out = append(out, d)
	}
	return out
}

// Glue is the unifying adapter GRAM interposes between the canonical
// interface and one dialect-speaking local manager. It rewrites requests
// into the dialect, rewrites the dialect's answers back, and counts the
// work — the cost PlanetLab avoids by mandating one node architecture.
type Glue struct {
	Inner   Manager
	Dialect Dialect

	// TranslateOps counts attribute/error rewrites performed.
	TranslateOps int
	// OpaqueErrs counts errors that lost fidelity in back-translation.
	OpaqueErrs int
}

// NewGlue wraps a manager in a dialect adapter.
func NewGlue(inner Manager, d Dialect) *Glue {
	return &Glue{Inner: inner, Dialect: d}
}

// Name implements Manager.
func (g *Glue) Name() string { return g.Dialect.Name + "+" + g.Inner.Name() }

// translate rewrites a canonical request into the dialect and back,
// charging the rewrite ops. The round trip models marshalling to the
// local manager's submission language and parsing its acknowledgement.
func (g *Glue) translate(req rsl.Request) rsl.Request {
	if g.Dialect.Rename == nil && g.Dialect.Required == nil {
		return req
	}
	local := rsl.Request{Relations: make([]rsl.Relation, 0, len(req.Relations)+len(g.Dialect.Required))}
	for _, rel := range req.Relations {
		out := rel
		if to, ok := g.Dialect.Rename[rel.Attr]; ok {
			out.Attr = to
			g.TranslateOps++ // canonical -> local
		}
		local.Relations = append(local.Relations, out)
	}
	// Synthesized attributes are appended in sorted name order: the
	// relation sequence is part of the request a trace may record, so it
	// must not depend on map iteration order.
	required := make([]string, 0, len(g.Dialect.Required))
	for attr := range g.Dialect.Required {
		required = append(required, attr)
	}
	sort.Strings(required)
	for _, attr := range required {
		if _, ok := local.Find(attr); !ok {
			local.Relations = append(local.Relations, rsl.Relation{
				Attr: attr, Op: rsl.OpEq, Values: []rsl.Value{{Literal: g.Dialect.Required[attr]}},
			})
			g.TranslateOps++
		}
	}
	// Back-translation to canonical for the inner (simulated) manager.
	back := rsl.Request{Relations: make([]rsl.Relation, 0, len(local.Relations))}
	inverse := make(map[string]string, len(g.Dialect.Rename))
	for k, v := range g.Dialect.Rename {
		inverse[v] = k
	}
	for _, rel := range local.Relations {
		out := rel
		if to, ok := inverse[rel.Attr]; ok {
			out.Attr = to
			g.TranslateOps++ // local -> canonical
		}
		back.Relations = append(back.Relations, out)
	}
	return back
}

// translateErr maps an inner error through the dialect vocabulary; errors
// the dialect cannot express degrade to ErrOpaqueLocal.
func (g *Glue) translateErr(err error) error {
	if err == nil {
		return nil
	}
	g.TranslateOps++
	// First-match over an unordered map would let the winning translation
	// vary between runs when an error matches several canonical kinds;
	// match in sorted local-code order instead.
	type errCode struct {
		canonical error
		code      string
	}
	codes := make([]errCode, 0, len(g.Dialect.Errors))
	for canonical, code := range g.Dialect.Errors {
		codes = append(codes, errCode{canonical, code})
	}
	sort.Slice(codes, func(i, j int) bool {
		if codes[i].code != codes[j].code {
			return codes[i].code < codes[j].code
		}
		return codes[i].canonical.Error() < codes[j].canonical.Error()
	})
	for _, ec := range codes {
		if errors.Is(err, ec.canonical) {
			return fmt.Errorf("%w (local code %s)", ec.canonical, ec.code)
		}
	}
	if g.Dialect.Rename == nil && g.Dialect.Required == nil {
		return err // canonical dialect: perfect fidelity
	}
	g.OpaqueErrs++
	return fmt.Errorf("%w: %s", ErrOpaqueLocal, g.Dialect.Name)
}

// Submit implements Manager with request and error translation.
func (g *Glue) Submit(j *Job) error {
	j.Req = g.translate(j.Req)
	return g.translateErr(g.Inner.Submit(j))
}

// Cancel implements Manager.
func (g *Glue) Cancel(j *Job) error {
	return g.translateErr(g.Inner.Cancel(j))
}
