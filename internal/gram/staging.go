package gram

import (
	"errors"
	"time"

	"repro/internal/simnet"
)

// Staged submission models the GASS-style data movement that wrapped
// GRAM jobs in practice: stage the input to the site over the data
// plane, run the job, stage the output back, then report completion.
// Grid applications are "often compute-intensive [but] some also consume
// significant amounts of disk and/or network bandwidth" (§3.2) — this is
// where that bandwidth goes.

// ErrStageFailed wraps data-plane failures during staging.
var ErrStageFailed = errors.New("gram: staging transfer failed")

// StagedRequest bundles a submission with its data movement.
type StagedRequest struct {
	Submit SubmitRequest
	// StageInBytes are moved client -> gatekeeper before submission.
	StageInBytes float64
	// StageOutBytes are moved gatekeeper -> client after completion.
	StageOutBytes float64
	// Streams is the stripe width for both transfers (default 1).
	Streams int
}

// StagedResult reports the full lifecycle outcome.
type StagedResult struct {
	JobID string
	// StageIn/StageOut are the measured transfer durations (0 if none).
	StageIn, StageOut time.Duration
	// Final is the job's terminal state.
	Final JobState
}

// SubmitStaged runs the three-phase lifecycle and calls done exactly once
// with the result or the first error. The job's completion is observed
// via a callback service registered on the client host, so the whole
// flow — data in, job, data out — rides the simulated WAN.
func SubmitStaged(net *simnet.Network, from, gatekeeper string, req StagedRequest, timeout time.Duration, done func(StagedResult, error)) {
	res := StagedResult{}
	finished := false
	finish := func(err error) {
		if finished {
			return
		}
		finished = true
		done(res, err)
	}

	submitPhase := func() {
		// Register a per-job callback service before submitting.
		cbSvc := "gram.staged.cb/" + from + "/" + gatekeeper
		req.Submit.CallbackHost = from
		req.Submit.CallbackService = cbSvc
		var stageOut func()
		net.Host(from).Handle(cbSvc, func(_ string, raw any) (any, error) {
			n, ok := raw.(StateNotice)
			if !ok || n.JobID != res.JobID {
				return nil, nil
			}
			if !n.State.Terminal() {
				return nil, nil
			}
			res.Final = n.State
			if n.State == Done && req.StageOutBytes > 0 {
				stageOut()
				return nil, nil
			}
			finish(nil)
			return nil, nil
		})
		stageOut = func() {
			start := net.Engine().Now()
			flow, err := net.StartFlow(gatekeeper, from, req.StageOutBytes,
				simnet.FlowOpts{Streams: req.Streams}, func(*simnet.Flow) {
					res.StageOut = net.Engine().Now() - start
					finish(nil)
				})
			if err != nil {
				finish(errors.Join(ErrStageFailed, err))
				return
			}
			flow.OnFail = func(_ *simnet.Flow, e error) { finish(errors.Join(ErrStageFailed, e)) }
		}
		Submit(net, from, gatekeeper, req.Submit, timeout, func(reply SubmitReply, err error) {
			if err != nil {
				finish(err)
				return
			}
			res.JobID = reply.JobID
		})
	}

	if req.StageInBytes > 0 {
		start := net.Engine().Now()
		flow, err := net.StartFlow(from, gatekeeper, req.StageInBytes,
			simnet.FlowOpts{Streams: req.Streams}, func(*simnet.Flow) {
				res.StageIn = net.Engine().Now() - start
				submitPhase()
			})
		if err != nil {
			finish(errors.Join(ErrStageFailed, err))
			return
		}
		//gridlint:ignore snapleaf call-scoped completion guard; staged-call closures die with the call and flows are torn down on fork boundaries
		flow.OnFail = func(_ *simnet.Flow, e error) { finish(errors.Join(ErrStageFailed, e)) }
		return
	}
	submitPhase()
}
