package gram

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/rsl"
	"repro/internal/silk"
	"repro/internal/sim"
)

func mkJob(t *testing.T, id, src string, actual time.Duration) *Job {
	t.Helper()
	spec, err := rsl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	req, err := spec.Single()
	if err != nil {
		t.Fatal(err)
	}
	return &Job{ID: id, Req: req, Spec: JobSpec{RSL: src, ActualRun: actual}}
}

func TestBatchFCFSAndCompletion(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewBatchManager(eng, "batch", 4)
	j1 := mkJob(t, "j1", `&(executable=a)(count=4)(maxWallTime=100)`, 50*time.Second)
	j2 := mkJob(t, "j2", `&(executable=b)(count=4)(maxWallTime=100)`, 30*time.Second)
	if err := m.Submit(j1); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(j2); err != nil {
		t.Fatal(err)
	}
	if j1.State() != Active || j2.State() != Pending {
		t.Fatalf("states = %v %v", j1.State(), j2.State())
	}
	eng.Run()
	if j1.State() != Done || j2.State() != Done {
		t.Fatalf("final = %v %v", j1.State(), j2.State())
	}
	// j1 runs [0,50), j2 [50,80).
	if j1.Ended != 50*time.Second || j2.Started != 50*time.Second || j2.Ended != 80*time.Second {
		t.Errorf("times: j1end=%v j2start=%v j2end=%v", j1.Ended, j2.Started, j2.Ended)
	}
	if j2.WaitTime() != 50*time.Second {
		t.Errorf("j2 wait = %v", j2.WaitTime())
	}
	if m.CompletedN != 2 {
		t.Errorf("CompletedN = %d", m.CompletedN)
	}
}

func TestBatchEASYBackfill(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewBatchManager(eng, "batch", 4)
	// j1 takes all 4 slots for 100s. j2 (head-blocked) wants 4. j3 wants
	// 2 slots for 50s — it fits entirely before j2's shadow time, so EASY
	// must backfill it... but j1 holds all 4 slots, so j3 cannot run now.
	// Use j1 with 2 slots instead: j2 wants 4 (blocked until j1 ends at
	// 100), j3 wants 2 for <=100s and backfills immediately.
	j1 := mkJob(t, "j1", `&(executable=a)(count=2)(maxWallTime=100)`, 100*time.Second)
	j2 := mkJob(t, "j2", `&(executable=b)(count=4)(maxWallTime=100)`, 10*time.Second)
	j3 := mkJob(t, "j3", `&(executable=c)(count=2)(maxWallTime=100)`, 40*time.Second)
	m.Submit(j1)
	m.Submit(j2)
	m.Submit(j3)
	if j3.State() != Active {
		t.Fatalf("j3 not backfilled: %v", j3.State())
	}
	if j2.State() != Pending {
		t.Fatalf("j2 jumped the queue: %v", j2.State())
	}
	eng.Run()
	if m.BackfilledN != 1 {
		t.Errorf("BackfilledN = %d", m.BackfilledN)
	}
	// j2 starts when j1's estimate expires at 100s.
	if j2.Started != 100*time.Second {
		t.Errorf("j2 started at %v, want 100s", j2.Started)
	}
}

func TestBackfillDoesNotDelayHead(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewBatchManager(eng, "batch", 4)
	// j1: 2 slots until t=100. Head j2: 4 slots (shadow t=100).
	// j3: 2 slots, wall 200s — starting it now would push j2 past its
	// shadow, so EASY must NOT backfill it.
	j1 := mkJob(t, "j1", `&(executable=a)(count=2)(maxWallTime=100)`, 100*time.Second)
	j2 := mkJob(t, "j2", `&(executable=b)(count=4)(maxWallTime=50)`, 10*time.Second)
	j3 := mkJob(t, "j3", `&(executable=c)(count=2)(maxWallTime=200)`, 10*time.Second)
	m.Submit(j1)
	m.Submit(j2)
	m.Submit(j3)
	if j3.State() == Active {
		t.Fatal("j3 backfilled despite delaying head")
	}
	eng.Run()
	if j2.Started != 100*time.Second {
		t.Errorf("head delayed: started %v", j2.Started)
	}
}

func TestBatchEarlyFinishPullsQueueForward(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewBatchManager(eng, "batch", 4)
	// j1 estimates 100s but actually runs 20s; j2 should start at 20s.
	j1 := mkJob(t, "j1", `&(executable=a)(count=4)(maxWallTime=100)`, 20*time.Second)
	j2 := mkJob(t, "j2", `&(executable=b)(count=4)(maxWallTime=10)`, 5*time.Second)
	m.Submit(j1)
	m.Submit(j2)
	eng.Run()
	if j2.Started != 20*time.Second {
		t.Errorf("j2 started %v, want 20s", j2.Started)
	}
}

func TestBatchWallTimeKill(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewBatchManager(eng, "batch", 1)
	j := mkJob(t, "j", `&(executable=a)(maxWallTime=10)`, time.Hour)
	m.Submit(j)
	eng.Run()
	if j.State() != Failed {
		t.Fatalf("state = %v", j.State())
	}
	if j.Ended != 10*time.Second {
		t.Errorf("killed at %v, want 10s", j.Ended)
	}
	if m.WallKillN != 1 {
		t.Errorf("WallKillN = %d", m.WallKillN)
	}
}

func TestBatchRequiresWallTime(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewBatchManager(eng, "batch", 1)
	j := mkJob(t, "j", `&(executable=a)`, time.Second)
	if err := m.Submit(j); !errors.Is(err, ErrWallTimeMissing) {
		t.Errorf("err = %v", err)
	}
	if j.State() != Failed {
		t.Errorf("state = %v", j.State())
	}
}

func TestBatchTooManySlots(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewBatchManager(eng, "batch", 2)
	j := mkJob(t, "j", `&(executable=a)(count=3)(maxWallTime=10)`, time.Second)
	if err := m.Submit(j); !errors.Is(err, ErrTooManySlots) {
		t.Errorf("err = %v", err)
	}
}

func TestBatchQueueFull(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewBatchManager(eng, "batch", 1)
	m.MaxQueue = 1
	m.Submit(mkJob(t, "j1", `&(executable=a)(maxWallTime=100)`, 90*time.Second))
	m.Submit(mkJob(t, "j2", `&(executable=a)(maxWallTime=100)`, 90*time.Second))
	j3 := mkJob(t, "j3", `&(executable=a)(maxWallTime=100)`, 90*time.Second)
	if err := m.Submit(j3); !errors.Is(err, ErrQueueFull) {
		t.Errorf("err = %v", err)
	}
}

func TestBatchCancelQueuedAndRunning(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewBatchManager(eng, "batch", 1)
	j1 := mkJob(t, "j1", `&(executable=a)(maxWallTime=100)`, 90*time.Second)
	j2 := mkJob(t, "j2", `&(executable=a)(maxWallTime=100)`, 90*time.Second)
	m.Submit(j1)
	m.Submit(j2)
	if err := m.Cancel(j2); err != nil {
		t.Fatal(err)
	}
	if j2.State() != Cancelled {
		t.Errorf("queued cancel: %v", j2.State())
	}
	if err := m.Cancel(j1); err != nil {
		t.Fatal(err)
	}
	if j1.State() != Cancelled {
		t.Errorf("running cancel: %v", j1.State())
	}
	if err := m.Cancel(j1); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("double cancel: %v", err)
	}
	eng.Run()
	if m.RunningN() != 0 || m.QueueLen() != 0 {
		t.Errorf("leftovers: running=%d queued=%d", m.RunningN(), m.QueueLen())
	}
}

func TestReservationAdmissionAndClaim(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewBatchManager(eng, "batch", 4)
	// The paper's example: one hour starting at midnight. Reserve 2 slots
	// at t=1000s for 3600s.
	id, err := m.Reserve(1000*time.Second, time.Hour, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A second overlapping reservation for 3 slots must be refused (2+3>4).
	if _, err := m.Reserve(1500*time.Second, time.Hour, 3); !errors.Is(err, ErrInfeasible) {
		t.Errorf("overcommitted reservation: %v", err)
	}
	// 2 more slots fit.
	if _, err := m.Reserve(1500*time.Second, time.Hour, 2); err != nil {
		t.Errorf("fitting reservation: %v", err)
	}
	// Claim before the window opens: job waits until t=1000.
	j := mkJob(t, "j", fmt.Sprintf(`&(executable=a)(count=2)(maxWallTime=3600)(reservation=%s)`, id), 30*time.Minute)
	if err := m.Submit(j); err != nil {
		t.Fatal(err)
	}
	if j.State() != Pending {
		t.Fatalf("claimed job state = %v", j.State())
	}
	eng.Run()
	if j.Started != 1000*time.Second {
		t.Errorf("claimed job started %v, want 1000s", j.Started)
	}
	if j.State() != Done {
		t.Errorf("state = %v", j.State())
	}
}

func TestReservationBlocksBackfillWindow(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewBatchManager(eng, "batch", 2)
	// Reserve the whole machine over [100, 200).
	if _, err := m.Reserve(100*time.Second, 100*time.Second, 2); err != nil {
		t.Fatal(err)
	}
	// A 150s-wall job cannot start now (it would overlap the
	// reservation) and must wait until t=200.
	j := mkJob(t, "j", `&(executable=a)(count=2)(maxWallTime=150)`, 10*time.Second)
	m.Submit(j)
	if j.State() == Active {
		t.Fatal("job overlaps reservation")
	}
	// A short job fits before the window.
	short := mkJob(t, "s", `&(executable=a)(count=2)(maxWallTime=50)`, 10*time.Second)
	m.Submit(short)
	if short.State() != Active {
		t.Errorf("short job refused: %v", short.State())
	}
	eng.Run()
	if j.Started != 200*time.Second {
		t.Errorf("blocked job started %v, want 200s", j.Started)
	}
}

func TestReservationErrors(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewBatchManager(eng, "batch", 2)
	if _, err := m.Reserve(0, time.Hour, 3); !errors.Is(err, ErrTooManySlots) {
		t.Errorf("too big: %v", err)
	}
	eng.RunUntil(10 * time.Second)
	if _, err := m.Reserve(5*time.Second, time.Hour, 1); !errors.Is(err, ErrInfeasible) {
		t.Errorf("past start: %v", err)
	}
	j := mkJob(t, "j", `&(executable=a)(maxWallTime=10)(reservation=nosuch)`, time.Second)
	if err := m.Submit(j); !errors.Is(err, ErrNoReservation) {
		t.Errorf("bad claim: %v", err)
	}
	// Claim exceeding reservation size.
	id, _ := m.Reserve(20*time.Second, time.Hour, 1)
	big := mkJob(t, "b", fmt.Sprintf(`&(executable=a)(count=2)(maxWallTime=10)(reservation=%s)`, id), time.Second)
	if err := m.Submit(big); !errors.Is(err, ErrNoReservation) {
		t.Errorf("oversized claim: %v", err)
	}
	// Cancel reservation then claim.
	if err := m.CancelReservation(id); err != nil {
		t.Fatal(err)
	}
	if err := m.CancelReservation(id); !errors.Is(err, ErrNoReservation) {
		t.Errorf("double cancel: %v", err)
	}
}

func TestForkManagerContention(t *testing.T) {
	eng := sim.NewEngine(1)
	node := silk.NewNode(eng, "n", silk.NodeSpec{Cores: 1, MaxFDs: 10})
	m, err := NewForkManager(eng, node)
	if err != nil {
		t.Fatal(err)
	}
	j1 := mkJob(t, "j1", `&(executable=a)`, 10*time.Second)
	j2 := mkJob(t, "j2", `&(executable=b)`, 10*time.Second)
	m.Submit(j1)
	m.Submit(j2)
	if j1.State() != Active || j2.State() != Active || m.Active() != 2 {
		t.Fatal("fork jobs not immediately active")
	}
	eng.Run()
	// Both share 1 core: each 10 core-seconds → both done at 20s.
	if j1.Ended != 20*time.Second || j2.Ended != 20*time.Second {
		t.Errorf("ends %v %v, want 20s (best-effort stretch)", j1.Ended, j2.Ended)
	}
}

func TestForkCancel(t *testing.T) {
	eng := sim.NewEngine(1)
	node := silk.NewNode(eng, "n", silk.NodeSpec{Cores: 1, MaxFDs: 10})
	m, _ := NewForkManager(eng, node)
	j := mkJob(t, "j", `&(executable=a)`, time.Hour)
	m.Submit(j)
	if err := m.Cancel(j); err != nil {
		t.Fatal(err)
	}
	if j.State() != Cancelled {
		t.Errorf("state = %v", j.State())
	}
	if err := m.Cancel(j); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("double: %v", err)
	}
	eng.Run()
}

func TestGlueTranslation(t *testing.T) {
	eng := sim.NewEngine(1)
	inner := NewBatchManager(eng, "batch", 4)
	d := StandardDialects(1)[0]
	g := NewGlue(inner, d)
	j := mkJob(t, "j", `&(executable=a)(count=2)(maxWallTime=10)(queue=default)`, time.Second)
	if err := g.Submit(j); err != nil {
		t.Fatal(err)
	}
	// count, maxWallTime, queue each rename twice (out and back) = 6 ops,
	// plus the dialect's required attr synthesis and nil error translation.
	if g.TranslateOps < 6 {
		t.Errorf("TranslateOps = %d, want >= 6", g.TranslateOps)
	}
	eng.Run()
	if j.State() != Done {
		t.Errorf("state = %v", j.State())
	}
	// The canonical attribute still resolves after the round trip.
	if j.Count() != 2 {
		t.Errorf("count after translation = %d", j.Count())
	}
}

func TestGlueErrorFidelity(t *testing.T) {
	eng := sim.NewEngine(1)
	inner := NewBatchManager(eng, "batch", 2)
	d := StandardDialects(1)[0] // knows ErrTooManySlots and ErrQueueFull
	g := NewGlue(inner, d)
	// Translatable error keeps its canonical identity.
	big := mkJob(t, "big", `&(executable=a)(count=5)(maxWallTime=10)`, time.Second)
	if err := g.Submit(big); !errors.Is(err, ErrTooManySlots) {
		t.Errorf("translatable: %v", err)
	}
	if g.OpaqueErrs != 0 {
		t.Errorf("OpaqueErrs = %d", g.OpaqueErrs)
	}
	// Untranslatable error degrades.
	noWall := mkJob(t, "nw", `&(executable=a)`, time.Second)
	if err := g.Submit(noWall); !errors.Is(err, ErrOpaqueLocal) {
		t.Errorf("untranslatable: %v", err)
	}
	if g.OpaqueErrs != 1 {
		t.Errorf("OpaqueErrs = %d", g.OpaqueErrs)
	}
}

func TestCanonicalGluePerfectFidelity(t *testing.T) {
	eng := sim.NewEngine(1)
	inner := NewBatchManager(eng, "batch", 2)
	g := NewGlue(inner, CanonicalDialect)
	noWall := mkJob(t, "nw", `&(executable=a)`, time.Second)
	if err := g.Submit(noWall); !errors.Is(err, ErrWallTimeMissing) {
		t.Errorf("canonical fidelity: %v", err)
	}
	if g.OpaqueErrs != 0 {
		t.Errorf("OpaqueErrs = %d", g.OpaqueErrs)
	}
	// Renames cost nothing under the canonical dialect.
	j := mkJob(t, "j", `&(executable=a)(maxWallTime=10)`, time.Second)
	g.Submit(j)
	if g.TranslateOps > 2 { // error translations only
		t.Errorf("TranslateOps = %d", g.TranslateOps)
	}
}

func TestJobStateString(t *testing.T) {
	if Pending.String() != "pending" || Done.String() != "done" {
		t.Error("state names")
	}
	if !Done.Terminal() || Pending.Terminal() {
		t.Error("Terminal()")
	}
}
