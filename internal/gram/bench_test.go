package gram

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/rsl"
	"repro/internal/sim"
)

func BenchmarkBatchSubmitCycle(b *testing.B) {
	eng := sim.NewEngine(1)
	m := NewBatchManager(eng, "batch", 64)
	spec, _ := rsl.Parse(`&(executable=x)(count=4)(maxWallTime=600)`)
	req, _ := spec.Single()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := &Job{ID: fmt.Sprintf("j%d", i), Req: req,
			Spec: JobSpec{ActualRun: 5 * time.Minute}}
		if err := m.Submit(j); err != nil {
			b.Fatal(err)
		}
		if i%256 == 255 {
			eng.Run()
		}
	}
	eng.Run()
}
