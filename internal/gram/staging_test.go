package gram

import (
	"errors"
	"testing"
	"time"

	"repro/internal/simnet"
)

func TestStagedSubmitFullLifecycle(t *testing.T) {
	f := newGKFixture(t)
	var res StagedResult
	var err error
	got := false
	SubmitStaged(f.net, "client", "gk", StagedRequest{
		Submit: SubmitRequest{
			Cred: f.alice,
			Spec: JobSpec{RSL: `&(executable=/bin/sim)(count=2)(maxWallTime=600)`, ActualRun: 5 * time.Minute},
		},
		StageInBytes:  10e6, // 10 MB in
		StageOutBytes: 50e6, // 50 MB of results out
		Streams:       4,
	}, time.Hour, func(r StagedResult, e error) { res, err, got = r, e, true })
	f.eng.Run()
	if !got {
		t.Fatal("staged submit never completed")
	}
	if err != nil {
		t.Fatal(err)
	}
	if res.Final != Done || res.JobID == "" {
		t.Errorf("result = %+v", res)
	}
	// Both transfers took real time over the 1e6 B/s links.
	if res.StageIn < 9*time.Second || res.StageIn > 12*time.Second {
		t.Errorf("stage-in = %v, want ~10s", res.StageIn)
	}
	if res.StageOut < 45*time.Second || res.StageOut > 60*time.Second {
		t.Errorf("stage-out = %v, want ~50s", res.StageOut)
	}
	// The job itself is Done at the gatekeeper.
	if f.gk.Job(res.JobID).State() != Done {
		t.Error("job not done at site")
	}
}

func TestStagedSubmitNoData(t *testing.T) {
	f := newGKFixture(t)
	var res StagedResult
	var err error
	SubmitStaged(f.net, "client", "gk", StagedRequest{
		Submit: SubmitRequest{
			Cred: f.alice,
			Spec: JobSpec{RSL: `&(executable=x)(maxWallTime=60)`, ActualRun: time.Second},
		},
	}, time.Hour, func(r StagedResult, e error) { res, err = r, e })
	f.eng.Run()
	if err != nil || res.Final != Done {
		t.Fatalf("no-data staged = (%+v, %v)", res, err)
	}
	if res.StageIn != 0 || res.StageOut != 0 {
		t.Errorf("phantom staging times: %+v", res)
	}
}

func TestStagedSubmitAuthFailureAfterStageIn(t *testing.T) {
	f := newGKFixture(t)
	var err error
	SubmitStaged(f.net, "client", "gk", StagedRequest{
		Submit: SubmitRequest{
			Cred: f.evil, // unmapped subject
			Spec: JobSpec{RSL: `&(executable=x)(maxWallTime=60)`, ActualRun: time.Second},
		},
		StageInBytes: 1e6,
	}, time.Hour, func(_ StagedResult, e error) { err = e })
	f.eng.Run()
	if err == nil {
		t.Fatal("unauthorized staged submit succeeded")
	}
}

func TestStagedSubmitFailedJobSkipsStageOut(t *testing.T) {
	f := newGKFixture(t)
	var res StagedResult
	var err error
	SubmitStaged(f.net, "client", "gk", StagedRequest{
		Submit: SubmitRequest{
			Cred: f.alice,
			// Exceeds the wall limit -> Failed at the site.
			Spec: JobSpec{RSL: `&(executable=x)(maxWallTime=60)`, ActualRun: time.Hour},
		},
		StageOutBytes: 100e6,
	}, time.Hour, func(r StagedResult, e error) { res, err = r, e })
	f.eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Final != Failed {
		t.Errorf("final = %v, want failed", res.Final)
	}
	if res.StageOut != 0 {
		t.Error("stage-out ran for a failed job")
	}
}

func TestStagedSubmitStageInKilledByFailure(t *testing.T) {
	f := newGKFixture(t)
	var err error
	got := false
	SubmitStaged(f.net, "client", "gk", StagedRequest{
		Submit: SubmitRequest{
			Cred: f.alice,
			Spec: JobSpec{RSL: `&(executable=x)(maxWallTime=60)`, ActualRun: time.Second},
		},
		StageInBytes: 1e9, // long transfer
	}, time.Hour, func(_ StagedResult, e error) { err, got = e, true })
	f.eng.Schedule(time.Second, func() { f.net.SetDown("gk", true) })
	f.eng.Run()
	if !got {
		t.Fatal("no completion after kill")
	}
	if !errors.Is(err, ErrStageFailed) || !errors.Is(err, simnet.ErrHostDown) {
		t.Errorf("err = %v, want ErrStageFailed wrapping ErrHostDown", err)
	}
}
