package gram

import (
	"time"

	"repro/internal/resilience"
	"repro/internal/simnet"
)

// This file holds the client-side GRAM helpers (Submit lives next to the
// gatekeeper): cancellation and the resilience-routed variants. The
// retry wrappers classify only transport faults (timeout, partition,
// host down) as retryable — a site that *answered* with a refusal said
// no on purpose, and asking again cannot change site policy.

// Cancel asks a gatekeeper to cancel a job and delivers the final status
// asynchronously. Unlike the fire-and-forget pattern this replaces, the
// error surfaces to the caller — a cancel lost to a partition leaves an
// orphaned job charging the user at the site.
func Cancel(net *simnet.Network, from, gatekeeper, jobID string, timeout time.Duration, done func(StatusReply, error)) {
	net.Call(from, gatekeeper, SvcCancel, jobID, timeout, func(resp any, err error) {
		if err != nil {
			done(StatusReply{}, err)
			return
		}
		done(resp.(StatusReply), nil)
	})
}

// SubmitWithRetry routes Submit through a resilience executor: transport
// faults back off and retry (gated by the site's breaker when one is
// passed); refusals fail immediately. A nil executor degrades to a plain
// Submit.
func SubmitWithRetry(ex *resilience.Executor, br *resilience.Breaker, net *simnet.Network, from, gatekeeper string, req SubmitRequest, timeout time.Duration, done func(SubmitReply, error)) {
	if ex == nil {
		Submit(net, from, gatekeeper, req, timeout, done)
		return
	}
	var last SubmitReply
	pol := ex.Policy()
	pol.Retryable = retryableTransport
	//gridlint:ignore snapcapture call-scoped reply accumulator; in-flight retry chains are exercised by the resilience fork differential gate
	ex.DoWithPolicy("gram.submit", pol, br, func(attempt int, settle func(error)) {
		Submit(net, from, gatekeeper, req, timeout, func(r SubmitReply, err error) {
			if err == nil {
				last = r
			}
			settle(err)
		})
	}, func(err error) { done(last, err) })
}

// CancelWithRetry routes Cancel through a resilience executor with the
// same transport-only retry classification. A nil executor degrades to a
// plain Cancel.
func CancelWithRetry(ex *resilience.Executor, br *resilience.Breaker, net *simnet.Network, from, gatekeeper, jobID string, timeout time.Duration, done func(StatusReply, error)) {
	if ex == nil {
		Cancel(net, from, gatekeeper, jobID, timeout, done)
		return
	}
	var last StatusReply
	pol := ex.Policy()
	pol.Retryable = retryableTransport
	//gridlint:ignore snapcapture call-scoped reply accumulator; in-flight retry chains are exercised by the resilience fork differential gate
	ex.DoWithPolicy("gram.cancel", pol, br, func(attempt int, settle func(error)) {
		Cancel(net, from, gatekeeper, jobID, timeout, func(r StatusReply, err error) {
			if err == nil {
				last = r
			}
			settle(err)
		})
	}, func(err error) { done(last, err) })
}

// retryableTransport treats network-layer faults and open breakers as
// retryable; anything a live gatekeeper said is final.
func retryableTransport(err error) bool {
	return simnet.IsTransient(err) || resilience.IsBreakerOpen(err)
}
