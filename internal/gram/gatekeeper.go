package gram

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/gsi"
	"repro/internal/identity"
	"repro/internal/rsl"
	"repro/internal/simnet"
)

// Service names the gatekeeper registers on its host.
const (
	SvcSubmit  = "gram.submit"
	SvcStatus  = "gram.status"
	SvcCancel  = "gram.cancel"
	SvcReserve = "gram.reserve"
)

// SubmitRequest is the wire form of a job submission: the caller's
// delegated credential travels with the job ("the scheduler receives jobs
// descriptions from users and submits them to individual sites on behalf
// of these users").
type SubmitRequest struct {
	Cred *identity.Credential
	Spec JobSpec
	// Manager selects the job manager; empty picks the default.
	Manager string
	// CallbackHost/Service receive asynchronous state notifications.
	CallbackHost    string
	CallbackService string
}

// SubmitReply acknowledges a submission.
type SubmitReply struct {
	JobID string
	State JobState
}

// StateNotice is pushed to the callback contact on every transition.
type StateNotice struct {
	JobID string
	State JobState
	// Reason is the failure reason, when failed.
	Reason string
}

// StatusReply answers a status poll.
type StatusReply struct {
	State JobState
}

// ReserveRequest asks the batch manager for an advance reservation.
type ReserveRequest struct {
	Cred    *identity.Credential
	Manager string
	Start   time.Duration
	Dur     time.Duration
	Count   int
}

// ReserveReply returns the reservation handle.
type ReserveReply struct {
	ReservationID string
}

// Gatekeeper is a site's GRAM front door: it authenticates with GSI,
// authorizes through the site gridmap, and dispatches to job managers.
type Gatekeeper struct {
	net    *simnet.Network
	host   *simnet.Host
	policy *gsi.SitePolicy

	managers map[string]Manager
	def      string
	jobs     map[string]*Job
	seq      int

	// AuthFailN counts rejected submissions, SubmitN accepted ones.
	AuthFailN, SubmitN int
}

// NewGatekeeper installs a gatekeeper on host with the given site policy.
func NewGatekeeper(net *simnet.Network, host *simnet.Host, policy *gsi.SitePolicy) *Gatekeeper {
	g := &Gatekeeper{
		net:      net,
		host:     host,
		policy:   policy,
		managers: make(map[string]Manager),
		jobs:     make(map[string]*Job),
	}
	host.Handle(SvcSubmit, g.handleSubmit)
	host.Handle(SvcStatus, g.handleStatus)
	host.Handle(SvcCancel, g.handleCancel)
	host.Handle(SvcReserve, g.handleReserve)
	return g
}

// AddManager registers a job manager; the first one becomes the default.
func (g *Gatekeeper) AddManager(name string, m Manager) {
	if len(g.managers) == 0 {
		g.def = name
	}
	g.managers[name] = m
}

// Job returns a job by ID (local API, used in tests and by managers).
func (g *Gatekeeper) Job(id string) *Job { return g.jobs[id] }

// Jobs returns every job this gatekeeper has accepted, sorted by ID so
// audits over the job set are deterministic.
func (g *Gatekeeper) Jobs() []*Job {
	out := make([]*Job, 0, len(g.jobs))
	for _, j := range g.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// UsageByOwner aggregates charged core-seconds per authenticated grid
// subject — the site-side accounting record that motivates identity
// delegation ("the frequent requirement to be able to associate resource
// usage with specific individuals rather than communities or services").
func (g *Gatekeeper) UsageByOwner() map[string]float64 {
	out := make(map[string]float64)
	// Jobs() iterates in sorted ID order: owners with several jobs get
	// their core-seconds summed in a reproducible sequence (float
	// addition is not associative, so order changes the bits).
	for _, j := range g.Jobs() {
		if cs := j.ChargedCoreSeconds(); cs > 0 {
			out[j.Spec.Owner] += cs
		}
	}
	return out
}

func (g *Gatekeeper) handleSubmit(from string, raw any) (any, error) {
	req, ok := raw.(SubmitRequest)
	if !ok {
		return nil, fmt.Errorf("gram: bad submit payload %T", raw)
	}
	now := g.net.Engine().Now()
	local, subject, err := g.policy.Admit(req.Cred, "submit", now)
	if err != nil {
		g.AuthFailN++
		return nil, err
	}
	spec, err := rsl.Parse(req.Spec.RSL)
	if err != nil {
		return nil, err
	}
	r, err := spec.Single()
	if err != nil {
		return nil, err
	}
	mgrName := req.Manager
	if mgrName == "" {
		mgrName = r.StringDefault("jobmanager", g.def)
	}
	mgr, ok := g.managers[mgrName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchManager, mgrName)
	}
	g.seq++
	job := &Job{
		ID:  fmt.Sprintf("%s/%d", g.host.Name, g.seq),
		Req: r,
		Spec: JobSpec{
			RSL:          req.Spec.RSL,
			ActualRun:    req.Spec.ActualRun,
			Owner:        subject,
			LocalAccount: local,
		},
	}
	if req.CallbackHost != "" {
		cbHost, cbSvc := req.CallbackHost, req.CallbackService
		job.OnState = func(j *Job, s JobState) {
			n := StateNotice{JobID: j.ID, State: s}
			if j.FailReason != nil {
				n.Reason = j.FailReason.Error()
			}
			g.net.Send(g.host.Name, cbHost, cbSvc, n)
		}
	}
	g.jobs[job.ID] = job
	if err := mgr.Submit(job); err != nil {
		return nil, err
	}
	g.SubmitN++
	return SubmitReply{JobID: job.ID, State: job.State()}, nil
}

func (g *Gatekeeper) handleStatus(from string, raw any) (any, error) {
	id, ok := raw.(string)
	if !ok {
		return nil, fmt.Errorf("gram: bad status payload %T", raw)
	}
	j, ok := g.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	return StatusReply{State: j.State()}, nil
}

func (g *Gatekeeper) handleCancel(from string, raw any) (any, error) {
	id, ok := raw.(string)
	if !ok {
		return nil, fmt.Errorf("gram: bad cancel payload %T", raw)
	}
	j, ok := g.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	// Find the manager holding it by asking each; managers return
	// ErrUnknownJob for jobs they do not hold.
	for _, m := range g.managers {
		if err := m.Cancel(j); err == nil {
			return StatusReply{State: j.State()}, nil
		}
	}
	return nil, ErrUnknownJob
}

func (g *Gatekeeper) handleReserve(from string, raw any) (any, error) {
	req, ok := raw.(ReserveRequest)
	if !ok {
		return nil, fmt.Errorf("gram: bad reserve payload %T", raw)
	}
	now := g.net.Engine().Now()
	if _, _, err := g.policy.Admit(req.Cred, "reserve", now); err != nil {
		g.AuthFailN++
		return nil, err
	}
	mgrName := req.Manager
	if mgrName == "" {
		mgrName = g.def
	}
	mgr, ok := g.managers[mgrName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchManager, mgrName)
	}
	bm, ok := mgr.(*BatchManager)
	if !ok {
		return nil, fmt.Errorf("gram: manager %q does not support reservations", mgrName)
	}
	id, err := bm.Reserve(req.Start, req.Dur, req.Count)
	if err != nil {
		return nil, err
	}
	return ReserveReply{ReservationID: id}, nil
}

// Submit is the client-side helper: send a job to a gatekeeper host and
// deliver the reply asynchronously.
func Submit(net *simnet.Network, from, gatekeeper string, req SubmitRequest, timeout time.Duration, done func(SubmitReply, error)) {
	net.Call(from, gatekeeper, SvcSubmit, req, timeout, func(resp any, err error) {
		if err != nil {
			done(SubmitReply{}, err)
			return
		}
		done(resp.(SubmitReply), nil)
	})
}
