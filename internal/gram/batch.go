package gram

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// BatchManager is a space-shared cluster scheduler: jobs request `count`
// slots for up to `maxWallTime`, queue FCFS, start via EASY backfill, and
// may claim advance reservations. It models "a queuing system supporting
// reservations on a cluster" — the enforcement backend the paper names
// for WS-Agreement on the Globus side.
type BatchManager struct {
	eng   *sim.Engine
	name  string
	Slots int
	// MaxQueue bounds the pending queue (0 = unbounded).
	MaxQueue int
	// DisableBackfill turns EASY backfill off (pure FCFS), for the
	// scheduling ablation.
	DisableBackfill bool

	queue        []*Job
	running      map[*Job]*commitment
	reservations map[string]*Reservation
	resSeq       int
	timer        *sim.Timer

	// Counters for experiment accounting.
	CompletedN, BackfilledN, WallKillN int
	// CrashN counts node crashes injected via Crash.
	CrashN int

	// Observability handles (inert when no tracer is installed). jobSpans
	// keeps one open span per in-flight job, from Submit to its terminal
	// transition.
	tr                               *obs.Tracer
	jobSpans                         map[*Job]obs.SpanContext
	cSubmitted, cStarted             *obs.Counter
	cDone, cFailed, cCancelled       *obs.Counter
	cBackfilled, cWallKilled, cCrash *obs.Counter
	hWait                            *obs.Hist
}

// commitment is a slot claim over a time interval.
type commitment struct {
	start, end time.Duration
	count      int
}

// Reservation is an admitted advance reservation.
type Reservation struct {
	ID    string
	Start time.Duration
	End   time.Duration
	Count int

	claimed bool
}

// NewBatchManager creates a batch scheduler with the given machine size.
func NewBatchManager(eng *sim.Engine, name string, slots int) *BatchManager {
	if slots <= 0 {
		panic(fmt.Sprintf("gram: batch manager %q needs positive slots, got %d", name, slots))
	}
	m := &BatchManager{
		eng:          eng,
		name:         name,
		Slots:        slots,
		running:      make(map[*Job]*commitment),
		reservations: make(map[string]*Reservation),
	}
	m.timer = eng.NewTimer(m.kick)
	return m
}

// Name implements Manager.
func (m *BatchManager) Name() string { return m.name }

// SetTracer installs an observability tracer. A nil tracer (the default)
// keeps every instrumentation point inert.
func (m *BatchManager) SetTracer(tr *obs.Tracer) {
	m.tr = tr
	if tr != nil {
		m.jobSpans = make(map[*Job]obs.SpanContext)
	}
	m.cSubmitted = tr.Counter("gram.jobs.submitted")
	m.cStarted = tr.Counter("gram.jobs.started")
	m.cDone = tr.Counter("gram.jobs.done")
	m.cFailed = tr.Counter("gram.jobs.failed")
	m.cCancelled = tr.Counter("gram.jobs.cancelled")
	m.cBackfilled = tr.Counter("gram.jobs.backfilled")
	m.cWallKilled = tr.Counter("gram.jobs.wall_killed")
	m.cCrash = tr.Counter("gram.crashes")
	m.hWait = tr.Hist("gram.job.wait")
}

// jobSpan returns (and removes) the open span for a job reaching a
// terminal state; the zero SpanContext is inert when untraced.
func (m *BatchManager) jobSpan(j *Job) obs.SpanContext {
	s := m.jobSpans[j]
	if m.jobSpans != nil {
		delete(m.jobSpans, j)
	}
	return s
}

// QueueLen returns the number of pending jobs.
func (m *BatchManager) QueueLen() int { return len(m.queue) }

// RunningN returns the number of active jobs.
func (m *BatchManager) RunningN() int { return len(m.running) }

// commitments returns all current slot claims: running jobs (to their
// estimated ends) and unclaimed reservations.
func (m *BatchManager) commitments() []commitment {
	now := m.eng.Now()
	out := make([]commitment, 0, len(m.running)+len(m.reservations))
	for _, c := range m.running {
		// Commitment order never escapes: minFree sums integer slot
		// counts (commutative) and earliestStart sorts its candidates.
		//gridlint:ignore maporder consumers aggregate commutatively (integer sums) or sort candidates themselves
		out = append(out, *c)
	}
	for _, r := range m.reservations {
		if r.claimed || r.End <= now {
			continue
		}
		start := r.Start
		if start < now {
			start = now
		}
		//gridlint:ignore maporder consumers aggregate commutatively (integer sums) or sort candidates themselves
		out = append(out, commitment{start: start, end: r.End, count: r.Count})
	}
	return out
}

// minFree returns the minimum free slot count over [t0, t1) given the
// commitments plus an optional extra commitment.
func (m *BatchManager) minFree(cs []commitment, t0, t1 time.Duration) int {
	// Evaluate at t0 and at every commitment boundary inside the window.
	points := []time.Duration{t0}
	for _, c := range cs {
		if c.start > t0 && c.start < t1 {
			points = append(points, c.start)
		}
	}
	min := m.Slots + 1
	for _, p := range points {
		used := 0
		for _, c := range cs {
			if c.start <= p && p < c.end {
				used += c.count
			}
		}
		if free := m.Slots - used; free < min {
			min = free
		}
	}
	return min
}

// earliestStart finds the first time >= after at which count slots are
// free for dur, given commitments.
func (m *BatchManager) earliestStart(cs []commitment, count int, dur, after time.Duration) time.Duration {
	// Candidate start times: `after` and each commitment end after it.
	cands := []time.Duration{after}
	for _, c := range cs {
		if c.end > after {
			cands = append(cands, c.end)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	for _, t := range cands {
		if m.minFree(cs, t, t+dur) >= count {
			return t
		}
	}
	// Unreachable when count <= Slots: after the last commitment ends the
	// machine is empty.
	panic("gram: no feasible start found")
}

// Submit implements Manager.
func (m *BatchManager) Submit(j *Job) error {
	if j.State() != Unsubmitted {
		return fmt.Errorf("%w: submit in %v", ErrBadState, j.State())
	}
	var span obs.SpanContext
	if m.tr != nil {
		span = m.tr.Begin("gram.job",
			obs.String("mgr", m.name), obs.String("job", j.ID),
			obs.Int("count", j.Count()))
	}
	wall, err := j.MaxWall()
	if err != nil {
		j.FailReason = err
		j.transition(Failed)
		m.cFailed.Inc()
		span.End(obs.Err(err))
		return err
	}
	if j.Count() > m.Slots {
		j.FailReason = fmt.Errorf("%w: %d > %d", ErrTooManySlots, j.Count(), m.Slots)
		j.transition(Failed)
		m.cFailed.Inc()
		span.End(obs.Err(j.FailReason))
		return j.FailReason
	}
	if m.MaxQueue > 0 && len(m.queue) >= m.MaxQueue {
		j.FailReason = ErrQueueFull
		j.transition(Failed)
		m.cFailed.Inc()
		span.End(obs.Err(ErrQueueFull))
		return ErrQueueFull
	}
	j.Submitted = m.eng.Now()
	m.cSubmitted.Inc()
	if m.tr != nil {
		m.jobSpans[j] = span
	}

	// A job naming a reservation claims it rather than queueing.
	if resID := j.Req.StringDefault("reservation", ""); resID != "" {
		return m.claim(j, resID, wall)
	}
	j.transition(Pending)
	m.queue = append(m.queue, j)
	m.kick()
	return nil
}

// Reserve admits an advance reservation of count slots over
// [start, start+dur), returning its ID, or ErrInfeasible when the window
// cannot be guaranteed alongside existing commitments.
func (m *BatchManager) Reserve(start, dur time.Duration, count int) (string, error) {
	if count > m.Slots {
		return "", fmt.Errorf("%w: %d > %d", ErrTooManySlots, count, m.Slots)
	}
	if start < m.eng.Now() {
		return "", fmt.Errorf("%w: start %v in the past", ErrInfeasible, start)
	}
	if m.minFree(m.commitments(), start, start+dur) < count {
		return "", ErrInfeasible
	}
	m.resSeq++
	id := fmt.Sprintf("%s-r%d", m.name, m.resSeq)
	m.reservations[id] = &Reservation{ID: id, Start: start, End: start + dur, Count: count}
	// An admitted reservation shrinks what backfill may use.
	m.kick()
	return id, nil
}

// CancelReservation drops an unclaimed reservation.
func (m *BatchManager) CancelReservation(id string) error {
	r, ok := m.reservations[id]
	if !ok || r.claimed {
		return ErrNoReservation
	}
	delete(m.reservations, id)
	m.kick()
	return nil
}

// claim starts a job inside its reservation window.
func (m *BatchManager) claim(j *Job, resID string, wall time.Duration) error {
	r, ok := m.reservations[resID]
	now := m.eng.Now()
	if !ok || r.claimed || now >= r.End {
		j.FailReason = ErrNoReservation
		j.transition(Failed)
		m.cFailed.Inc()
		m.jobSpan(j).End(obs.Err(ErrNoReservation))
		return ErrNoReservation
	}
	if j.Count() > r.Count {
		j.FailReason = fmt.Errorf("%w: job wants %d, reservation holds %d", ErrNoReservation, j.Count(), r.Count)
		j.transition(Failed)
		m.cFailed.Inc()
		m.jobSpan(j).End(obs.Err(j.FailReason))
		return j.FailReason
	}
	j.transition(Pending)
	if now >= r.Start {
		m.startReserved(j, r, wall)
		return nil
	}
	// Claim at window open.
	m.eng.At(r.Start, func() {
		if j.State() == Pending {
			m.startReserved(j, r, wall)
		}
	})
	return nil
}

func (m *BatchManager) startReserved(j *Job, r *Reservation, wall time.Duration) {
	r.claimed = true
	now := m.eng.Now()
	end := now + wall
	if end > r.End {
		end = r.End // the guarantee stops at the window edge
	}
	m.start(j, end-now)
	m.kick()
}

// start moves a job to Active and schedules its completion or wall kill.
func (m *BatchManager) start(j *Job, wall time.Duration) {
	now := m.eng.Now()
	j.Started = now
	c := &commitment{start: now, end: now + wall, count: j.Count()}
	m.running[j] = c
	j.transition(Active)
	m.cStarted.Inc()
	m.hWait.Observe(j.WaitTime())
	m.jobSpans[j].Event("gram.active", obs.Dur("wait", j.WaitTime()))
	if j.Spec.ActualRun <= wall {
		m.eng.Schedule(j.Spec.ActualRun, func() { m.finish(j, Done, nil) })
	} else {
		m.eng.Schedule(wall, func() {
			m.WallKillN++
			m.cWallKilled.Inc()
			m.finish(j, Failed, fmt.Errorf("gram: %s exceeded wall limit %v", j.ID, wall))
		})
	}
}

func (m *BatchManager) finish(j *Job, to JobState, reason error) {
	if _, ok := m.running[j]; !ok {
		return
	}
	delete(m.running, j)
	j.Ended = m.eng.Now()
	j.FailReason = reason
	if to == Done {
		m.CompletedN++
		m.cDone.Inc()
	} else {
		m.cFailed.Inc()
	}
	j.transition(to)
	m.jobSpan(j).End(obs.String("state", to.String()), obs.Err(reason))
	m.kick()
}

// Crash models the cluster's head node dying: every queued and running
// job fails immediately — nothing survives a node crash, which is exactly
// the invariant fault checkers hold GRAM to (no job may report done on a
// crashed node) — and unclaimed reservations are lost. The manager itself
// stays usable for submissions once the site recovers; completion events
// already scheduled for crashed jobs become no-ops.
func (m *BatchManager) Crash(reason error) {
	m.CrashN++
	m.cCrash.Inc()
	if m.tr != nil {
		m.tr.Event("gram.crash", obs.String("mgr", m.name), obs.Err(reason))
	}
	now := m.eng.Now()
	queued := m.queue
	m.queue = nil
	for _, j := range queued {
		j.Ended = now
		j.FailReason = reason
		j.transition(Failed)
		m.cFailed.Inc()
		m.jobSpan(j).End(obs.String("state", "failed"), obs.Err(reason))
	}
	running := make([]*Job, 0, len(m.running))
	for j := range m.running {
		running = append(running, j)
	}
	sort.Slice(running, func(i, j int) bool { return running[i].ID < running[j].ID })
	for _, j := range running {
		delete(m.running, j)
		j.Ended = now
		j.FailReason = reason
		j.transition(Failed)
		m.cFailed.Inc()
		m.jobSpan(j).End(obs.String("state", "failed"), obs.Err(reason))
	}
	m.reservations = make(map[string]*Reservation)
	m.timer.Stop()
}

// Cancel implements Manager.
func (m *BatchManager) Cancel(j *Job) error {
	for i, q := range m.queue {
		if q == j {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			j.Ended = m.eng.Now()
			j.transition(Cancelled)
			m.cCancelled.Inc()
			m.jobSpan(j).End(obs.String("state", "cancelled"))
			return nil
		}
	}
	if _, ok := m.running[j]; ok {
		delete(m.running, j)
		j.Ended = m.eng.Now()
		j.transition(Cancelled)
		m.cCancelled.Inc()
		m.jobSpan(j).End(obs.String("state", "cancelled"))
		m.kick()
		return nil
	}
	return ErrUnknownJob
}

// kick runs one EASY-backfill scheduling pass and arms the timer for the
// next decision point.
func (m *BatchManager) kick() {
	now := m.eng.Now()
	for len(m.queue) > 0 {
		head := m.queue[0]
		wall, _ := head.MaxWall()
		cs := m.commitments()
		t := m.earliestStart(cs, head.Count(), wall, now)
		if t == now {
			m.queue = m.queue[1:]
			m.start(head, wall)
			continue
		}
		// Head is blocked until its shadow time t. Pin a shadow
		// commitment for it, then backfill later jobs that fit *now*
		// without disturbing the shadow.
		if !m.DisableBackfill {
			shadow := commitment{start: t, end: t + wall, count: head.Count()}
			var rest []*Job
			for _, j := range m.queue[1:] {
				jw, _ := j.MaxWall()
				csNow := append(m.commitments(), shadow)
				if m.minFree(csNow, now, now+jw) >= j.Count() {
					m.start(j, jw)
					m.BackfilledN++
					m.cBackfilled.Inc()
					continue
				}
				rest = append(rest, j)
			}
			m.queue = append(m.queue[:1], rest...)
		}
		// Re-kick at the shadow time (or earlier events re-kick us).
		m.timer.Reset(t - now)
		return
	}
	m.timer.Stop()
}
