package gram

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rsl"
	"repro/internal/sim"
)

// mkStream builds a deterministic job stream from fuzz bytes: each byte
// pair encodes (count, runtime); wall = 2×run.
func mkStream(t testing.TB, raw []uint8, slots int) []*Job {
	t.Helper()
	var jobs []*Job
	for i := 0; i+1 < len(raw); i += 2 {
		count := int(raw[i])%slots + 1
		run := time.Duration(int(raw[i+1])%120+1) * time.Minute
		src := fmt.Sprintf(`&(executable=x)(count=%d)(maxWallTime=%d)`, count, int(run.Seconds()*2))
		spec, err := rsl.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		req, _ := spec.Single()
		jobs = append(jobs, &Job{
			ID:   fmt.Sprintf("j%d", i/2),
			Req:  req,
			Spec: JobSpec{RSL: src, ActualRun: run},
		})
	}
	return jobs
}

// TestBatchNeverOversubscribesProperty checks the core invariant: at no
// instant does the sum of running jobs' slot counts exceed the machine
// size, for arbitrary job streams, with and without backfill.
func TestBatchNeverOversubscribesProperty(t *testing.T) {
	const slots = 8
	f := func(raw []uint8, disableBackfill bool) bool {
		eng := sim.NewEngine(3)
		m := NewBatchManager(eng, "batch", slots)
		m.DisableBackfill = disableBackfill
		jobs := mkStream(t, raw, slots)

		inUse := 0
		peakOK := true
		for _, j := range jobs {
			j := j
			j.OnState = func(_ *Job, s JobState) {
				switch s {
				case Active:
					inUse += j.Count()
					if inUse > slots {
						peakOK = false
					}
				case Done, Failed, Cancelled:
					if j.Started != 0 || j.State() == Done {
						inUse -= j.Count()
					}
				}
			}
		}
		// Stagger arrivals 1 minute apart.
		for i, j := range jobs {
			j := j
			eng.At(time.Duration(i)*time.Minute, func() { m.Submit(j) })
		}
		eng.Run()
		// Every job reached a terminal state.
		for _, j := range jobs {
			if !j.State().Terminal() {
				return false
			}
		}
		return peakOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestBackfillOnlyWhenEarlierJobsBlockedProperty checks the guarantee
// EASY actually makes (it is *not* pointwise FCFS domination — backfill
// may delay non-head jobs): a job starts out of arrival order only when
// every earlier-arrived job still pending at that instant could not have
// started in the slots that were free. Combined with the no-starvation
// check, this is the EASY contract.
func TestBackfillOnlyWhenEarlierJobsBlockedProperty(t *testing.T) {
	const slots = 8
	f := func(raw []uint8) bool {
		eng := sim.NewEngine(3)
		m := NewBatchManager(eng, "batch", slots)
		jobs := mkStream(t, raw, slots)
		if len(jobs) == 0 {
			return true
		}
		order := make(map[*Job]int, len(jobs))
		pending := make(map[*Job]bool)
		inUse := 0
		ok := true
		for i, j := range jobs {
			order[j] = i
			j := j
			j.OnState = func(_ *Job, s JobState) {
				switch s {
				case Pending:
					pending[j] = true
				case Active:
					delete(pending, j)
					freeBefore := slots - inUse
					// The queue head (earliest pending arrival) is the one
					// EASY protects: if it fit in the free slots, nothing
					// may jump it. Non-head jobs can legitimately be
					// skipped when starting them would delay the head.
					var head *Job
					for h := range pending {
						if head == nil || order[h] < order[head] {
							head = h
						}
					}
					if head != nil && order[head] < order[j] && head.Count() <= freeBefore {
						ok = false // jumped over a startable head
					}
					inUse += j.Count()
				case Done, Failed, Cancelled:
					delete(pending, j)
					if j.Started != 0 {
						inUse -= j.Count()
					}
				}
			}
		}
		for i, j := range jobs {
			j := j
			eng.At(time.Duration(i)*time.Minute, func() { m.Submit(j) })
		}
		eng.Run()
		// No starvation: every job terminated.
		for _, j := range jobs {
			if !j.State().Terminal() {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestBatchDeterministicAcrossRuns re-runs an identical stream and
// expects identical schedules.
func TestBatchDeterministicAcrossRuns(t *testing.T) {
	raw := []uint8{3, 40, 7, 10, 1, 90, 8, 5, 2, 61, 4, 33}
	run := func() []time.Duration {
		eng := sim.NewEngine(3)
		m := NewBatchManager(eng, "batch", 8)
		jobs := mkStream(t, raw, 8)
		for i, j := range jobs {
			j := j
			eng.At(time.Duration(i)*time.Minute, func() { m.Submit(j) })
		}
		eng.Run()
		var out []time.Duration
		for _, j := range jobs {
			out = append(out, j.Started, j.Ended)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
