package broker

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/capability"
	"repro/internal/identity"
	"repro/internal/obs"
	"repro/internal/sharp"
	"repro/internal/trust"
	"repro/internal/vm"
)

// ErrNoSellers reports a market purchase with no eligible seller —
// every registered broker is either out of collateral at the site or
// claims no inventory for it.
var ErrNoSellers = errors.New("broker: no eligible sellers for site")

// Seller is the market-facing surface of a SHARP broker: something that
// claims inventory and sells delegated tickets against it.
// *sharp.Agent is the honest implementation; adversary.OversellBroker
// lies through exactly this interface — inflated inventory, replayed
// and oversubscribed tickets — which is why the buyer must score
// redeem outcomes rather than trust the answers.
type Seller interface {
	SellerName() string
	Inventory(site string, typ capability.ResourceType) float64
	Sell(buyerName string, buyerKey ed25519.PublicKey, site string, typ capability.ResourceType, amount float64, notBefore, notAfter time.Duration) ([]*sharp.Ticket, error)
}

// SellerStats counts one seller's market history on an exchange.
type SellerStats struct {
	// Picked counts times the seller was chosen as a purchase attempt.
	Picked int
	// RedeemOK / RedeemFail count purchase attempts whose tickets did /
	// did not convert into leases.
	RedeemOK, RedeemFail int
}

// Exchange is the score-weighted ticket market the deployer buys from
// when one is installed: sellers register once; each site purchase
// picks a primary seller with probability proportional to the square of
// its scoreboard score (squaring sharpens convergence away from
// low-scored brokers), then fails over through the remaining eligible
// sellers in descending score order. Eligibility requires unslashed
// collateral at the target site's bank, so a broker whose deposits
// fraud has drained is priced out entirely — the economic half of the
// byzantine defense.
type Exchange struct {
	// SlashPenalty is the collateral seized per detected fraud
	// (replayed or double-spent ticket, oversell conflict, forged
	// chain). Defaults to 1 CPU-unit of collateral.
	SlashPenalty float64

	// MinScore is a reputation eligibility floor: sellers scored below
	// it are excluded from a purchase whenever at least one seller at or
	// above the floor is eligible. The conditional keeps the market live
	// during cold start and when every broker has been dragged down —
	// starving all sellers would turn a reputation signal into a
	// self-inflicted outage. Zero disables the floor.
	MinScore float64

	sellers []Seller
	scores  *trust.Scoreboard
	rng     *rand.Rand
	stats   map[string]*SellerStats

	// SlashN / SlashTotal aggregate collateral actually seized via this
	// exchange; SlashErrN counts ledger refusals (no account — a seller
	// admitted without collateral, which eligibility should prevent).
	SlashN     int
	SlashTotal float64
	SlashErrN  int
}

// NewExchange creates an empty market. rng drives the weighted primary
// pick and must be forked from the engine (determinism); scores may be
// nil, in which case every seller weighs the same.
func NewExchange(rng *rand.Rand, scores *trust.Scoreboard) *Exchange {
	return &Exchange{
		SlashPenalty: 1,
		scores:       scores,
		rng:          rng,
		stats:        make(map[string]*SellerStats),
	}
}

// AddSeller registers a seller. Registration order is the deterministic
// tiebreak everywhere the exchange orders sellers.
func (x *Exchange) AddSeller(s Seller) {
	x.sellers = append(x.sellers, s)
	x.stats[s.SellerName()] = &SellerStats{}
}

// Sellers returns the registered sellers in registration order.
func (x *Exchange) Sellers() []Seller {
	return append([]Seller(nil), x.sellers...)
}

// Stats returns the market history for a seller name (zero value for
// unknown names).
func (x *Exchange) Stats(name string) SellerStats {
	if st, ok := x.stats[name]; ok {
		return *st
	}
	return SellerStats{}
}

// score returns the scoreboard score for a seller (neutral 0.5 without
// a scoreboard).
func (x *Exchange) score(name string) float64 {
	if x.scores == nil {
		return 0.5
	}
	return x.scores.Score(name)
}

// rank orders eligible sellers for one purchase: collateral-gated
// (bank non-nil ⇒ Held > 0 required), inventory-claimed (the seller
// says it can cover the amount — byzantine sellers lie here, which is
// fine: their redeem failures are how they are found out), primary
// picked by score²-weighted draw, failover by descending score.
func (x *Exchange) rank(site string, typ capability.ResourceType, amount float64, bank *trust.Bank) []Seller {
	type cand struct {
		s     Seller
		score float64
		idx   int
	}
	var elig []cand
	for i, s := range x.sellers {
		if bank != nil && bank.Held(s.SellerName()) <= 0 {
			continue
		}
		if s.Inventory(site, typ) < amount {
			continue
		}
		elig = append(elig, cand{s: s, score: x.score(s.SellerName()), idx: i})
	}
	if x.MinScore > 0 {
		above := elig[:0:0]
		for _, c := range elig {
			if c.score >= x.MinScore {
				above = append(above, c)
			}
		}
		if len(above) > 0 {
			elig = above
		}
	}
	if len(elig) == 0 {
		return nil
	}
	primary := 0
	if len(elig) > 1 {
		var total float64
		for _, c := range elig {
			total += c.score * c.score
		}
		u := x.rng.Float64() * total
		if total > 0 {
			acc := 0.0
			for i, c := range elig {
				acc += c.score * c.score
				if u < acc {
					primary = i
					break
				}
			}
		}
	}
	out := make([]Seller, 0, len(elig))
	out = append(out, elig[primary].s)
	rest := append([]cand(nil), elig[:primary]...)
	rest = append(rest, elig[primary+1:]...)
	sort.SliceStable(rest, func(i, j int) bool {
		if rest[i].score != rest[j].score {
			return rest[i].score > rest[j].score
		}
		return rest[i].idx < rest[j].idx
	})
	for _, c := range rest {
		out = append(out, c.s)
	}
	return out
}

// fraudulent classifies a redeem failure as seller fraud: a replayed or
// double-spent ticket, a capacity conflict (overselling surfacing at
// redeem time), or a chain that fails cryptographic verification. Plain
// expiry or an unreachable site is the buyer's or network's problem,
// not the seller's.
func fraudulent(err error) bool {
	return errors.Is(err, sharp.ErrReplayed) ||
		errors.Is(err, sharp.ErrDoubleSpend) ||
		errors.Is(err, sharp.ErrConflict) ||
		errors.Is(err, sharp.ErrBadSignature) ||
		errors.Is(err, sharp.ErrBadChain) ||
		errors.Is(err, sharp.ErrAmountWidened)
}

// slash seizes collateral for one detected fraud, tolerating a missing
// account (counted, not fatal — the run's invariant sweep will flag it).
func (x *Exchange) slash(bank *trust.Bank, seller, reason string) {
	if bank == nil {
		return
	}
	took, err := bank.Slash(seller, x.SlashPenalty, reason)
	if err != nil {
		x.SlashErrN++
		return
	}
	x.SlashN++
	x.SlashTotal += took
}

// Purchase is a bare market buy: rank the eligible sellers for the
// site, then try each in order — buy tickets, redeem them at the site
// authority — until one seller's tickets convert into leases. No VM is
// bound; callers that only probe the market (reputation exercisers,
// tests) release the returned leases themselves. Every attempt is
// returned as a SellerOutcome for the buyer's scoreboard; fraudulent
// redeem failures slash the seller's collateral exactly as the deploy
// path does.
func (x *Exchange) Purchase(buyerName string, buyerKey ed25519.PublicKey, site string, rt *SiteRuntime, typ capability.ResourceType, amount float64, notBefore, notAfter time.Duration) ([]*sharp.Lease, []SellerOutcome, error) {
	order := x.rank(site, typ, amount, rt.Bank)
	if len(order) == 0 {
		return nil, nil, fmt.Errorf("%w: %s", ErrNoSellers, site)
	}
	var outcomes []SellerOutcome
	var lastErr error
	for _, s := range order {
		name := s.SellerName()
		x.stats[name].Picked++
		tickets, err := s.Sell(buyerName, buyerKey, site, typ, amount, notBefore, notAfter)
		if err != nil {
			x.stats[name].RedeemFail++
			outcomes = append(outcomes, SellerOutcome{Site: site, Seller: name, Err: err})
			lastErr = fmt.Errorf("%w: %v", ErrNoTickets, err)
			continue
		}
		var leases []*sharp.Lease
		redeemErr := error(nil)
		for _, tk := range tickets {
			lease, err := rt.Authority.Redeem(tk)
			if err != nil {
				redeemErr = err
				break
			}
			leases = append(leases, lease)
		}
		if redeemErr != nil {
			for _, l := range leases {
				rt.Authority.ReleaseLease(l)
			}
			x.stats[name].RedeemFail++
			outcomes = append(outcomes, SellerOutcome{Site: site, Seller: name, Err: redeemErr})
			if fraudulent(redeemErr) {
				x.slash(rt.Bank, name, fmt.Sprintf("%s: %v", site, redeemErr))
			}
			lastErr = redeemErr
			continue
		}
		x.stats[name].RedeemOK++
		outcomes = append(outcomes, SellerOutcome{Site: site, Seller: name, OK: true})
		return leases, outcomes, nil
	}
	return nil, outcomes, lastErr
}

// deploySiteMarket is deploySite's exchange path: rank the eligible
// sellers, then try each in order — buy, redeem, bind — until one's
// tickets convert into leases. Every attempt is recorded as a
// SellerOutcome for the buyer's scoreboard; fraudulent redeem failures
// slash the seller's collateral at the site bank.
func (d *Deployer) deploySiteMarket(span obs.SpanContext, res *DeployResult, rt *SiteRuntime, sliceName string, sm *identity.Principal, cpuPerSite float64, notBefore, notAfter time.Duration, site string) ([]*sharp.Lease, error) {
	if err := d.reachable(site); err != nil {
		return nil, err
	}
	x := d.Exchange
	order := x.rank(site, capability.CPU, cpuPerSite, rt.Bank)
	if len(order) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoSellers, site)
	}
	var lastErr error
	for _, s := range order {
		name := s.SellerName()
		x.stats[name].Picked++
		d.Hops += 2 // buy request + ticket grant
		tickets, err := s.Sell(sm.Name, sm.Public(), site, capability.CPU, cpuPerSite, notBefore, notAfter)
		if err != nil {
			// Refusing to sell claimed inventory is a failed outcome for
			// the scoreboard but not slashable fraud — no bogus ticket
			// was presented to the site.
			x.stats[name].RedeemFail++
			res.Outcomes = append(res.Outcomes, SellerOutcome{Site: site, Seller: name, Err: err})
			lastErr = fmt.Errorf("%w: %v", ErrNoTickets, err)
			continue
		}
		leases, err := d.redeemAndBind(span, res.Slice, sliceName, site, rt, tickets)
		if err != nil {
			x.stats[name].RedeemFail++
			res.Outcomes = append(res.Outcomes, SellerOutcome{Site: site, Seller: name, Err: err})
			if fraudulent(err) {
				x.slash(rt.Bank, name, fmt.Sprintf("%s: %v", site, err))
			}
			lastErr = err
			continue
		}
		x.stats[name].RedeemOK++
		res.Outcomes = append(res.Outcomes, SellerOutcome{Site: site, Seller: name, OK: true})
		return leases, nil
	}
	return nil, lastErr
}

// redeemAndBind converts bought tickets into leases backing a started
// VM, rolling everything back on failure. Shared by the market path's
// per-seller attempts.
func (d *Deployer) redeemAndBind(span obs.SpanContext, slice *vm.Slice, sliceName, site string, rt *SiteRuntime, tickets []*sharp.Ticket) ([]*sharp.Lease, error) {
	var leases []*sharp.Lease
	v := vm.New(sliceName+"@"+site, rt.Node, rt.NM)
	fail := func(err error) ([]*sharp.Lease, error) {
		for _, l := range leases {
			rt.Authority.ReleaseLease(l)
		}
		if v.State() == vm.Running {
			v.Stop()
		}
		span.Annotate(obs.Err(err))
		return nil, err
	}
	for _, tk := range tickets {
		d.Hops += 2 // redeem + lease grant
		lease, err := rt.Authority.Redeem(tk)
		if err != nil {
			return fail(err)
		}
		leases = append(leases, lease)
		if err := v.Bind(lease.CapID); err != nil {
			return fail(err)
		}
	}
	if err := v.Start(); err != nil {
		return fail(err)
	}
	if err := slice.Add(v); err != nil {
		return fail(err)
	}
	return leases, nil
}
