package broker

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/capability"
	"repro/internal/identity"
	"repro/internal/sharp"
	"repro/internal/silk"
	"repro/internal/sim"
	"repro/internal/simnet"
)

type netDepFixture struct {
	eng *sim.Engine
	net *simnet.Network
	d   *NetDeployer
	sm  *identity.Principal
}

func newNetDepFixture(t *testing.T) *netDepFixture {
	t.Helper()
	eng := sim.NewEngine(6)
	net := simnet.New(eng)
	net.AddSite("center", 0, 0)
	net.AddHost("agenthost", "center", 1e7)
	net.AddHost("smhost", "center", 1e7)
	rng := rand.New(rand.NewSource(6))

	d := &NetDeployer{
		Net:           net,
		Host:          "agenthost",
		Agent:         sharp.NewAgent(identity.NewPrincipal("agent", rng)),
		AuthorityHost: make(map[string]string),
		SiteNodes:     make(map[string]*SiteRuntime),
		Timeout:       time.Minute,
	}
	for i, s := range []string{"A", "B", "C"} {
		net.AddSite(s, float64(20*(i+1)), 10)
		authHost := "auth-" + s
		net.AddHost(authHost, s, 1e7)
		nm := capability.NewNodeManager(s+"/n0", eng, rng, map[capability.ResourceType]float64{capability.CPU: 4})
		node := silk.NewNode(eng, s+"/n0", silk.NodeSpec{Cores: 4, MemBytes: 1 << 30, DiskBytes: 1 << 34, NetBps: 1e7, MaxFDs: 512})
		auth := sharp.NewAuthority(eng, s, identity.NewPrincipal("auth@"+s, rng), nm,
			map[capability.ResourceType]float64{capability.CPU: 4})
		sharp.NewAuthorityService(net, authHost, auth)
		d.AuthorityHost[s] = authHost
		d.SiteNodes[s] = &SiteRuntime{Authority: auth, NM: nm, Node: node}
	}
	sharp.NewAgentService(net, "agenthost", d.Agent)
	return &netDepFixture{eng: eng, net: net, d: d, sm: identity.NewPrincipal("sm", rng)}
}

func TestNetDeployerFullFlow(t *testing.T) {
	f := newNetDepFixture(t)
	var stockErr error
	f.d.StockOverNet(2, 0, time.Hour, []string{"A", "B", "C"}, func(err error) { stockErr = err })
	f.eng.Run()
	if stockErr != nil {
		t.Fatal(stockErr)
	}
	if got := f.d.Agent.Inventory("A", capability.CPU); got != 2 {
		t.Fatalf("stocked %v at A", got)
	}
	var gotErr error
	var running int
	start := f.eng.Now()
	var setup time.Duration
	f.d.DeploySliceOverNet("cdn", "smhost", f.sm, 1, 0, time.Hour, []string{"A", "B", "C"},
		func(s *vmSliceAlias, err error) {
			gotErr = err
			if s != nil {
				running = s.Running()
			}
			setup = f.eng.Now() - start
		})
	f.eng.Run()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if running != 3 {
		t.Errorf("running = %d", running)
	}
	// Setup paid real WAN round-trips: 3 sites × (buy + redeem) legs.
	if setup < 100*time.Millisecond {
		t.Errorf("setup = %v, expected real RTTs", setup)
	}
	if f.d.SetupTime == 0 || f.d.DeployedN != 1 {
		t.Errorf("counters: setup=%v deployed=%d", f.d.SetupTime, f.d.DeployedN)
	}
}

func TestNetDeployerInsufficientStockFails(t *testing.T) {
	f := newNetDepFixture(t)
	f.d.StockOverNet(0.5, 0, time.Hour, []string{"A"}, func(error) {})
	f.eng.Run()
	var gotErr error
	f.d.DeploySliceOverNet("svc", "smhost", f.sm, 1, 0, time.Hour, []string{"A"},
		func(_ *vmSliceAlias, err error) { gotErr = err })
	f.eng.Run()
	if !errors.Is(gotErr, ErrDeployFailed) {
		t.Errorf("err = %v", gotErr)
	}
}

func TestNetDeployerPartitionFailsAndRollsBack(t *testing.T) {
	f := newNetDepFixture(t)
	f.d.StockOverNet(2, 0, time.Hour, []string{"A", "B"}, func(error) {})
	f.eng.Run()
	// Cut the SM off from site B's authority: redeem at B must time out,
	// and A's already-built VM must be torn down.
	f.net.Partition("center", "B", true)
	var gotErr error
	done := false
	f.d.DeploySliceOverNet("svc", "smhost", f.sm, 1, 0, time.Hour, []string{"A", "B"},
		func(_ *vmSliceAlias, err error) { gotErr, done = err, true })
	f.eng.Run()
	if !done || gotErr == nil {
		t.Fatalf("deploy = (%v, done=%v)", gotErr, done)
	}
	if f.d.SiteNodes["A"].Node.Contexts() != 0 {
		t.Error("site A VM survived rollback")
	}
	if got := f.d.SiteNodes["A"].NM.Available(capability.CPU); got != 4 {
		t.Errorf("site A capacity = %v after rollback", got)
	}
}

func TestNetDeployerUnknownSite(t *testing.T) {
	f := newNetDepFixture(t)
	var stockErr error
	f.d.StockOverNet(1, 0, time.Hour, []string{"Z"}, func(err error) { stockErr = err })
	f.eng.Run()
	if !errors.Is(stockErr, ErrDeployFailed) {
		t.Errorf("stock unknown site: %v", stockErr)
	}
	var depErr error
	f.d.DeploySliceOverNet("svc", "smhost", f.sm, 1, 0, time.Hour, []string{"Z"},
		func(_ *vmSliceAlias, err error) { depErr = err })
	f.eng.Run()
	if !errors.Is(depErr, ErrDeployFailed) {
		t.Errorf("deploy unknown site: %v", depErr)
	}
}

func TestNetDeployerLatencyScalesWithSiteDistance(t *testing.T) {
	// Two deployments to the near and far site: setup time must order by
	// distance (A at x=20 vs C at x=60).
	measure := func(site string) time.Duration {
		f := newNetDepFixture(t)
		f.d.StockOverNet(2, 0, time.Hour, []string{site}, func(error) {})
		f.eng.Run()
		start := f.eng.Now()
		var setup time.Duration
		f.d.DeploySliceOverNet("svc", "smhost", f.sm, 1, 0, time.Hour, []string{site},
			func(s *vmSliceAlias, err error) {
				if err != nil {
					t.Fatal(err)
				}
				setup = f.eng.Now() - start
			})
		f.eng.Run()
		return setup
	}
	near, far := measure("A"), measure("C")
	if far <= near {
		t.Errorf("far-site setup %v <= near-site %v", far, near)
	}
	_ = fmt.Sprint(near, far)
}
