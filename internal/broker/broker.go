// Package broker implements the VO-level schedulers the paper contrasts in
// §4.2.2. On the Globus side, job flow is *push*: "brokers pass job
// requests from users or applications to resources", carrying the user's
// delegated identity (Matchmaker, modelled on Condor-G matchmaking over
// MDS), with DUROC-style all-or-nothing co-allocation (CoAllocator). On
// the PlanetLab side, resource flow is *pull*: "node managers and brokers
// push capabilities (resource reservations) from resources to the users
// that originate requests" (Deployer, built on SHARP tickets redeemed
// into leases and bound to VMs).
//
// Both brokers expose counters the E5 experiment compares: control-plane
// hops per placement, allocation success under site-policy churn, and
// compromise blast radius (what an attacker gains by owning the broker).
package broker

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/gram"
	"repro/internal/identity"
	"repro/internal/mds"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/simnet"
)

// Broker errors.
var (
	ErrNoCandidates = errors.New("broker: no matching resources")
	ErrAllRefused   = errors.New("broker: every candidate refused the job")
	ErrPartialFail  = errors.New("broker: co-allocation failed; parts cancelled")
)

// Matchmaker is an identity-delegation meta-scheduler: it holds users'
// proxy credentials, discovers resources through an MDS index, and
// submits jobs to site gatekeepers on the users' behalf.
type Matchmaker struct {
	Net   *simnet.Network
	Host  string // the broker's own host
	Index string // GIIS host to query

	// Timeout bounds each RPC leg.
	Timeout time.Duration

	// Retry, when set, routes submissions through deterministic
	// backoff-and-retry for transport faults (refusals stay final).
	Retry *resilience.Executor
	// Breakers, when set, gates candidates: a gatekeeper whose breaker is
	// not ready is skipped without an attempt. SiteOf maps a gatekeeper
	// host to its breaker key (nil keys by host name).
	Breakers *resilience.BreakerSet
	SiteOf   func(gatekeeper string) string

	// heldProxies are the delegated credentials the broker currently
	// stores — the compromise blast radius of this design.
	heldProxies []*identity.Credential

	// Hops counts control messages initiated per placement attempt;
	// PlacedN / FailedN count outcomes.
	Hops, PlacedN, FailedN int
}

// HeldProxies returns the delegated credentials the broker is storing —
// each one lets a thief act as that user until its NotAfter.
func (m *Matchmaker) HeldProxies() []*identity.Credential { return m.heldProxies }

// breakerFor maps a gatekeeper host to its site breaker (nil when no set
// is installed).
func (m *Matchmaker) breakerFor(gk string) *resilience.Breaker {
	if m.Breakers == nil {
		return nil
	}
	key := gk
	if m.SiteOf != nil {
		key = m.SiteOf(gk)
	}
	return m.Breakers.For(key)
}

// Placement reports where a job landed.
type Placement struct {
	JobID      string
	Gatekeeper string
}

// SubmitJob places one job: query the index for records matching the
// job's requirement filters, then try each candidate gatekeeper in rank
// order with the user's delegated credential until one accepts.
//
// Resource records are expected to carry at least "gatekeeper" (host
// name); filters beyond that come from the caller.
func (m *Matchmaker) SubmitJob(proxy *identity.Credential, spec gram.JobSpec, filters []mds.Filter, done func(Placement, error)) {
	m.heldProxies = append(m.heldProxies, proxy)
	m.Hops++
	mds.QueryIndex(m.Net, m.Host, m.Index, mds.Query{Filters: filters}, m.Timeout,
		func(reply mds.QueryReply, err error) {
			if err != nil {
				m.FailedN++
				done(Placement{}, err)
				return
			}
			var gks []string
			for _, rec := range reply.Records {
				if gk, ok := rec.Attrs["gatekeeper"]; ok {
					gks = append(gks, gk)
				}
			}
			if len(gks) == 0 {
				m.FailedN++
				done(Placement{}, ErrNoCandidates)
				return
			}
			m.tryNext(proxy, spec, gks, done)
		})
}

func (m *Matchmaker) tryNext(proxy *identity.Credential, spec gram.JobSpec, gks []string, done func(Placement, error)) {
	if len(gks) == 0 {
		m.FailedN++
		done(Placement{}, ErrAllRefused)
		return
	}
	gk := gks[0]
	br := m.breakerFor(gk)
	if !br.Ready() {
		// The breaker has written this site off; spend the attempt on the
		// next candidate instead of a known-dead gatekeeper.
		m.tryNext(proxy, spec, gks[1:], done)
		return
	}
	m.Hops++
	gram.SubmitWithRetry(m.Retry, br, m.Net, m.Host, gk,
		gram.SubmitRequest{Cred: proxy, Spec: spec}, m.Timeout,
		func(reply gram.SubmitReply, err error) {
			if err != nil {
				// Site refused (policy, auth, capacity) or stayed dark
				// through the retry budget: try the next — exactly why
				// identity delegation needs per-site retries.
				m.tryNext(proxy, spec, gks[1:], done)
				return
			}
			m.PlacedN++
			done(Placement{JobID: reply.JobID, Gatekeeper: gk}, nil)
		})
}

// CoAllocator is the DUROC-style all-or-nothing multi-site allocator: a
// multi-request RSL names a gatekeeper per part via the classic
// resourceManagerContact attribute; all parts must be accepted or every
// accepted part is cancelled.
type CoAllocator struct {
	Net     *simnet.Network
	Host    string
	Timeout time.Duration

	// Retry, when set, routes the abort-path cancels through
	// deterministic retry so a single dropped message no longer orphans a
	// job at a live site.
	Retry *resilience.Executor

	// CoAllocN / AbortN count outcomes; CancelLostN counts abort-path
	// cancels that never reached the site (orphaned remote jobs).
	CoAllocN, AbortN, CancelLostN int
	// Hops counts control messages initiated.
	Hops int

	tr                    *obs.Tracer
	cCancels, cCancelLost *obs.Counter
}

// SetTracer installs an observability tracer. A nil tracer (the default)
// keeps every instrumentation point inert.
func (c *CoAllocator) SetTracer(tr *obs.Tracer) {
	c.tr = tr
	c.cCancels = tr.Counter("broker.coalloc.cancels")
	c.cCancelLost = tr.Counter("broker.coalloc.cancels_lost")
}

// Part describes one component of a co-allocation.
type Part struct {
	Gatekeeper string
	Spec       gram.JobSpec
}

// CoAllocate submits all parts with the user's credential; if any part is
// refused, the accepted parts are cancelled and ErrPartialFail reported.
func (c *CoAllocator) CoAllocate(proxy *identity.Credential, parts []Part, done func([]Placement, error)) {
	if len(parts) == 0 {
		done(nil, fmt.Errorf("broker: empty co-allocation"))
		return
	}
	placements := make([]Placement, len(parts))
	var pending = len(parts)
	var failed error
	finishOne := func() {
		pending--
		if pending > 0 {
			return
		}
		if failed == nil {
			c.CoAllocN++
			done(placements, nil)
			return
		}
		// Cancel the parts that did start (the DUROC barrier abort).
		c.AbortN++
		for _, p := range placements {
			if p.JobID != "" {
				c.cancelPart(p)
			}
		}
		done(nil, fmt.Errorf("%w: %v", ErrPartialFail, failed))
	}
	for i, part := range parts {
		i, part := i, part
		c.Hops++
		gram.Submit(c.Net, c.Host, part.Gatekeeper, gram.SubmitRequest{Cred: proxy, Spec: part.Spec}, c.Timeout,
			func(reply gram.SubmitReply, err error) {
				if err != nil {
					if failed == nil {
						failed = err
					}
				} else {
					placements[i] = Placement{JobID: reply.JobID, Gatekeeper: part.Gatekeeper}
				}
				finishOne()
			})
	}
}

// cancelPart aborts one accepted part. The cancel's outcome is tracked:
// a cancel that never lands (after retries, when an executor is wired)
// leaves the remote job running and charging the user, so it is counted
// rather than discarded.
func (c *CoAllocator) cancelPart(p Placement) {
	c.Hops++
	c.cCancels.Inc()
	gram.CancelWithRetry(c.Retry, nil, c.Net, c.Host, p.Gatekeeper, p.JobID, c.Timeout,
		func(_ gram.StatusReply, err error) {
			if err != nil {
				c.CancelLostN++
				c.cCancelLost.Inc()
			}
		})
}
