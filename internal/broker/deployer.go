package broker

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/capability"
	"repro/internal/identity"
	"repro/internal/obs"
	"repro/internal/sharp"
	"repro/internal/silk"
	"repro/internal/vm"
)

// ErrNoTickets reports that the broker could not supply resources for a
// requested site.
var ErrNoTickets = errors.New("broker: no tickets available for site")

// SiteRuntime bundles one PlanetLab site's local machinery: the SHARP
// authority, its node manager, and the node the VMs land on. (One node
// per site keeps the model at the paper's granularity of "a few nodes
// each".)
type SiteRuntime struct {
	Authority *sharp.Authority
	NM        *capability.NodeManager
	Node      *silk.Node
}

// Deployer is the PlanetLab-style usage-delegation broker: it pre-pulls
// tickets from site authorities into a SHARP agent and hands resource
// claims — never identities — to service managers, which redeem and bind
// them locally.
type Deployer struct {
	Agent *sharp.Agent
	Sites map[string]*SiteRuntime

	// Hops counts ticket/lease protocol steps for E5 symmetry with the
	// Matchmaker's counter.
	Hops int
	// DeployedN / FailedN count slice deployments.
	DeployedN, FailedN int

	// Observability handles (inert when no tracer is installed).
	tr                     *obs.Tracer
	cDeployOK, cDeployFail *obs.Counter
	cStocked               *obs.Counter
}

// SetTracer installs an observability tracer. A nil tracer (the default)
// keeps every instrumentation point inert.
func (d *Deployer) SetTracer(tr *obs.Tracer) {
	d.tr = tr
	d.cDeployOK = tr.Counter("broker.deploys.ok")
	d.cDeployFail = tr.Counter("broker.deploys.failed")
	d.cStocked = tr.Counter("broker.tickets.stocked")
}

// Stock pulls a ticket of `amount` CPU from each named site into the
// agent's inventory (Figure 2 steps 1-2, amortized over many requests).
func (d *Deployer) Stock(amount float64, notBefore, notAfter time.Duration, sites ...string) error {
	var span obs.SpanContext
	if d.tr != nil {
		span = d.tr.Begin("broker.stock",
			obs.Float("amount", amount), obs.Int("sites", len(sites)))
		defer func() { span.End() }()
	}
	restore := d.tr.EnterScope(span)
	defer restore()
	for _, s := range sites {
		rt, ok := d.Sites[s]
		if !ok {
			err := fmt.Errorf("broker: unknown site %q", s)
			span.Annotate(obs.Err(err))
			return err
		}
		d.Hops += 2 // request + grant
		tk, err := rt.Authority.IssueTicket(d.Agent.Name, d.Agent.Key(), capability.CPU, amount, notBefore, notAfter)
		if err != nil {
			span.Annotate(obs.Err(err))
			return err
		}
		if err := d.Agent.Acquire(tk); err != nil {
			span.Annotate(obs.Err(err))
			return err
		}
		d.cStocked.Inc()
	}
	return nil
}

// Inventory reports unsold CPU stock for a site.
func (d *Deployer) Inventory(site string) float64 {
	return d.Agent.Inventory(site, capability.CPU)
}

// DeploySlice builds a service's points of presence: for each requested
// site, buy a ticket from the agent (steps 3-4), redeem it at the site
// authority for a lease (5-6), then create a VM, bind the lease's
// capability, and start it (7). On any site failing, already-built VMs
// are torn down and their leases released (all-or-nothing, so a partial
// CDN does not linger).
func (d *Deployer) DeploySlice(sliceName string, sm *identity.Principal, cpuPerSite float64, notBefore, notAfter time.Duration, sites []string) (*vm.Slice, error) {
	var span, siteSpan obs.SpanContext
	if d.tr != nil {
		span = d.tr.Begin("broker.deploy",
			obs.String("slice", sliceName), obs.String("sm", sm.Name),
			obs.Float("cpu_per_site", cpuPerSite), obs.Int("sites", len(sites)))
	}
	restore := d.tr.EnterScope(span)
	defer restore()
	slice := vm.NewSlice(sliceName)
	var leases []struct {
		rt *SiteRuntime
		l  *sharp.Lease
	}
	rollback := func() {
		slice.StopAll()
		for _, x := range leases {
			x.rt.Authority.ReleaseLease(x.l)
		}
	}
	// fail records the outcome on the open spans before unwinding.
	fail := func(err error) error {
		d.FailedN++
		d.cDeployFail.Inc()
		siteSpan.End(obs.Err(err))
		span.End(obs.Err(err))
		rollback()
		return err
	}
	for _, site := range sites {
		if d.tr != nil {
			siteSpan = d.tr.BeginUnder(span, "broker.deploy.site", obs.String("site", site))
		}
		restoreSite := d.tr.EnterScope(siteSpan)
		rt, ok := d.Sites[site]
		if !ok {
			restoreSite()
			return nil, fail(fmt.Errorf("broker: unknown site %q", site))
		}
		d.Hops += 2 // buy request + ticket grant
		tickets, err := d.Agent.Sell(sm.Name, sm.Public(), site, capability.CPU, cpuPerSite, notBefore, notAfter)
		if err != nil {
			restoreSite()
			return nil, fail(fmt.Errorf("%w: %v", ErrNoTickets, err))
		}
		v := vm.New(sliceName+"@"+site, rt.Node, rt.NM)
		for _, tk := range tickets {
			d.Hops += 2 // redeem + lease grant
			lease, err := rt.Authority.Redeem(tk)
			if err != nil {
				restoreSite()
				return nil, fail(err)
			}
			leases = append(leases, struct {
				rt *SiteRuntime
				l  *sharp.Lease
			}{rt, lease})
			if err := v.Bind(lease.CapID); err != nil {
				restoreSite()
				return nil, fail(err)
			}
		}
		if err := v.Start(); err != nil {
			restoreSite()
			return nil, fail(err)
		}
		if err := slice.Add(v); err != nil {
			restoreSite()
			return nil, fail(err)
		}
		restoreSite()
		siteSpan.End()
		siteSpan = obs.SpanContext{}
	}
	d.DeployedN++
	d.cDeployOK.Inc()
	span.End(obs.Int("vms", len(sites)))
	return slice, nil
}

// BlastRadius describes what an attacker gains by compromising a broker —
// the E5 comparison the paper motivates: a matchmaker leaks *identities*
// (usable for anything, anywhere, until proxy expiry), a SHARP agent
// leaks only *resource claims* (bounded amount, bounded interval, bounded
// sites).
type BlastRadius struct {
	// IdentitiesExposed counts user proxies an attacker could replay.
	IdentitiesExposed int
	// ResourceExposed sums the CPU amount of unsold tickets.
	ResourceExposed float64
	// SitesExposed counts sites with exposed stock.
	SitesExposed int
}

// MatchmakerBlastRadius computes the exposure of a compromised
// identity-delegation broker.
func MatchmakerBlastRadius(m *Matchmaker) BlastRadius {
	return BlastRadius{IdentitiesExposed: len(m.HeldProxies())}
}

// DeployerBlastRadius computes the exposure of a compromised
// usage-delegation broker. Sites are visited in sorted order so the
// floating-point exposure total is bit-identical across runs.
func DeployerBlastRadius(d *Deployer) BlastRadius {
	sites := make([]string, 0, len(d.Sites))
	for site := range d.Sites {
		sites = append(sites, site)
	}
	sort.Strings(sites)
	var b BlastRadius
	for _, site := range sites {
		if amt := d.Inventory(site); amt > 0 {
			b.ResourceExposed += amt
			b.SitesExposed++
		}
	}
	return b
}
