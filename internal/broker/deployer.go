package broker

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/capability"
	"repro/internal/identity"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/sharp"
	"repro/internal/silk"
	"repro/internal/trust"
	"repro/internal/vm"
)

// Deployer errors.
var (
	// ErrNoTickets reports that the broker could not supply resources for
	// a requested site.
	ErrNoTickets = errors.New("broker: no tickets available for site")
	// ErrSiteUnreachable reports a deploy/renew refused because the
	// target site is currently down or partitioned (per the SiteDown
	// hook). It is the transient failure that charges the site's breaker.
	ErrSiteUnreachable = errors.New("broker: site unreachable")
	// ErrAllSitesFailed reports a deployment where not a single site
	// succeeded.
	ErrAllSitesFailed = errors.New("broker: no site deployed")
)

// SiteAuthority is the authority surface everything holding a
// SiteRuntime relies on. *sharp.Authority is the honest implementation;
// internal/adversary wraps it with byzantine behaviours (reneging on
// redeem, silently shrinking leases) that still satisfy this interface,
// so the deploy/renew/audit machinery cannot tell an adversarial site
// apart structurally — only behaviourally, which is the point.
type SiteAuthority interface {
	Key() ed25519.PublicKey
	IssueTicket(holderName string, holderKey ed25519.PublicKey, typ capability.ResourceType, amount float64, notBefore, notAfter time.Duration) (*sharp.Ticket, error)
	Redeem(t *sharp.Ticket) (*sharp.Lease, error)
	Renew(leaseID string, tickets ...*sharp.Ticket) (*sharp.Lease, error)
	ReleaseLease(l *sharp.Lease)
	LeaseRecords() []sharp.LeaseRecord
	SetClockSkew(d time.Duration)
	ClockSkew() time.Duration
	SetOversellFactor(f float64)
}

// SiteRuntime bundles one PlanetLab site's local machinery: the SHARP
// authority, its node manager, and the node the VMs land on. (One node
// per site keeps the model at the paper's granularity of "a few nodes
// each".)
type SiteRuntime struct {
	Authority SiteAuthority
	NM        *capability.NodeManager
	Node      *silk.Node
	// Bank, when non-nil, is the site's collateral ledger: brokers must
	// hold unslashed collateral here to be eligible on the exchange, and
	// detected fraud against this site slashes it.
	Bank *trust.Bank
}

// Deployer is the PlanetLab-style usage-delegation broker: it pre-pulls
// tickets from site authorities into a SHARP agent and hands resource
// claims — never identities — to service managers, which redeem and bind
// them locally.
type Deployer struct {
	Agent *sharp.Agent
	Sites map[string]*SiteRuntime

	// SiteDown, when set, reports whether a site is currently crashed or
	// partitioned away; deploy and renew attempts against such a site
	// fail with ErrSiteUnreachable (and charge its breaker) instead of
	// silently succeeding against the in-process authority. core wires
	// this to the federation's fault surface.
	SiteDown func(site string) bool
	// Breakers, when set, gates per-site attempts: a site whose breaker
	// is open is skipped without an attempt. All layers of one federation
	// share the set, so they agree on a site's health.
	Breakers *resilience.BreakerSet
	// Exchange, when non-nil, routes deploy-path ticket purchases
	// through a score-weighted multi-broker market (with collateral
	// gating and fraud slashing) instead of the house agent. Renewals
	// always stay on the house agent: a lease is renewed by whoever
	// deployed it. Nil keeps the single-agent path byte-identical to
	// pre-market behaviour.
	Exchange *Exchange

	// Hops counts ticket/lease protocol steps for E5 symmetry with the
	// Matchmaker's counter.
	Hops int
	// DeployedN counts fully successful slice deployments; FailedN counts
	// deployments where at least one site failed (including degraded
	// partial successes). RenewedN / RenewFailN count lease renewals.
	DeployedN, FailedN   int
	RenewedN, RenewFailN int

	// Observability handles (inert when no tracer is installed).
	tr                     *obs.Tracer
	cDeployOK, cDeployFail *obs.Counter
	cStocked               *obs.Counter
	cSkipped               *obs.Counter
	cRenewOK, cRenewFail   *obs.Counter
}

// SetTracer installs an observability tracer. A nil tracer (the default)
// keeps every instrumentation point inert.
func (d *Deployer) SetTracer(tr *obs.Tracer) {
	d.tr = tr
	d.cDeployOK = tr.Counter("broker.deploys.ok")
	d.cDeployFail = tr.Counter("broker.deploys.failed")
	d.cStocked = tr.Counter("broker.tickets.stocked")
	d.cSkipped = tr.Counter("broker.sites.skipped")
	d.cRenewOK = tr.Counter("broker.renews.ok")
	d.cRenewFail = tr.Counter("broker.renews.failed")
}

// reachable gates one attempt against a site: the breaker must admit it
// and the site must not be known-down. A down site charges its breaker.
func (d *Deployer) reachable(site string) error {
	br := d.Breakers.For(site)
	if !br.Allow() {
		d.cSkipped.Inc()
		return fmt.Errorf("%w: %s", resilience.ErrBreakerOpen, site)
	}
	if d.SiteDown != nil && d.SiteDown(site) {
		br.Failure()
		return fmt.Errorf("%w: %s", ErrSiteUnreachable, site)
	}
	br.Success()
	return nil
}

// Probe runs the connectivity gate against a site without deploying
// anything. After an outage heals it is how a repair pass gives a
// tripped breaker its half-open trial — otherwise a site the service no
// longer needs would stay written off forever.
func (d *Deployer) Probe(site string) error {
	if _, ok := d.Sites[site]; !ok {
		return fmt.Errorf("broker: unknown site %q", site)
	}
	return d.reachable(site)
}

// Stock pulls a ticket of `amount` CPU from each named site into the
// agent's inventory (Figure 2 steps 1-2, amortized over many requests).
// Stocking is best-effort per site: an unreachable or refusing site does
// not block the others; the joined per-site errors come back (nil when
// every site stocked).
func (d *Deployer) Stock(amount float64, notBefore, notAfter time.Duration, sites ...string) error {
	var span obs.SpanContext
	if d.tr != nil {
		span = d.tr.Begin("broker.stock",
			obs.Float("amount", amount), obs.Int("sites", len(sites)))
		defer func() { span.End() }()
	}
	restore := d.tr.EnterScope(span)
	defer restore()
	var errs []error
	for _, s := range sites {
		if err := d.stockSite(s, amount, notBefore, notAfter); err != nil {
			span.Annotate(obs.Err(err))
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

func (d *Deployer) stockSite(site string, amount float64, notBefore, notAfter time.Duration) error {
	rt, ok := d.Sites[site]
	if !ok {
		return fmt.Errorf("broker: unknown site %q", site)
	}
	if err := d.reachable(site); err != nil {
		return err
	}
	d.Hops += 2 // request + grant
	tk, err := rt.Authority.IssueTicket(d.Agent.Name, d.Agent.Key(), capability.CPU, amount, notBefore, notAfter)
	if err != nil {
		return err
	}
	if err := d.Agent.Acquire(tk); err != nil {
		return err
	}
	d.cStocked.Inc()
	return nil
}

// Inventory reports unsold CPU stock for a site.
func (d *Deployer) Inventory(site string) float64 {
	return d.Agent.Inventory(site, capability.CPU)
}

// SiteFailure records why one site of a deployment did not come up.
type SiteFailure struct {
	Site string
	Err  error
}

// DeployResult is the degraded-mode outcome of a partial-success
// deployment: which sites came up, which failed and why, and the leases
// backing each deployed site (the caller renews and releases these).
type DeployResult struct {
	Slice    *vm.Slice
	Deployed []string
	Failed   []SiteFailure
	Leases   map[string][]*sharp.Lease
	// Outcomes records one entry per exchange purchase attempt (empty on
	// the house-agent path): which seller was tried for which site and
	// whether its tickets actually redeemed into leases. Service
	// managers fold these into their broker scoreboards.
	Outcomes []SellerOutcome
}

// SellerOutcome is one market purchase attempt, as seen by the buyer.
type SellerOutcome struct {
	Site   string
	Seller string
	OK     bool
	Err    error
}

// Degraded reports whether any requested site failed.
func (r *DeployResult) Degraded() bool { return len(r.Failed) > 0 }

// Err joins the per-site failures (nil when none).
func (r *DeployResult) Err() error {
	var errs []error
	for _, f := range r.Failed {
		errs = append(errs, fmt.Errorf("%s: %w", f.Site, f.Err))
	}
	return errors.Join(errs...)
}

// DeploySlice builds a service's points of presence: for each requested
// site, buy a ticket from the agent (steps 3-4), redeem it at the site
// authority for a lease (5-6), then create a VM, bind the lease's
// capability, and start it (7). Deployment is partial-success: a failing
// site is rolled back individually (its leases released) and reported in
// the result while the other sites keep their VMs — a degraded CDN beats
// no CDN, and the paper's soft-state story repairs it later. The error
// is non-nil only when not a single site deployed.
func (d *Deployer) DeploySlice(sliceName string, sm *identity.Principal, cpuPerSite float64, notBefore, notAfter time.Duration, sites []string) (*DeployResult, error) {
	var span obs.SpanContext
	if d.tr != nil {
		span = d.tr.Begin("broker.deploy",
			obs.String("slice", sliceName), obs.String("sm", sm.Name),
			obs.Float("cpu_per_site", cpuPerSite), obs.Int("sites", len(sites)))
	}
	restore := d.tr.EnterScope(span)
	defer restore()
	res := &DeployResult{
		Slice:  vm.NewSlice(sliceName),
		Leases: make(map[string][]*sharp.Lease),
	}
	for _, site := range sites {
		leases, err := d.deploySite(span, res, sliceName, sm, cpuPerSite, notBefore, notAfter, site)
		if err != nil {
			res.Failed = append(res.Failed, SiteFailure{Site: site, Err: err})
			continue
		}
		res.Deployed = append(res.Deployed, site)
		res.Leases[site] = leases
	}
	if len(res.Deployed) == 0 {
		d.FailedN++
		d.cDeployFail.Inc()
		err := fmt.Errorf("%w: %w", ErrAllSitesFailed, res.Err())
		span.End(obs.Err(err))
		return res, err
	}
	if res.Degraded() {
		d.FailedN++
		d.cDeployFail.Inc()
	} else {
		d.DeployedN++
		d.cDeployOK.Inc()
	}
	span.End(obs.Int("vms", len(res.Deployed)), obs.Int("failed", len(res.Failed)))
	return res, nil
}

// deploySite attempts one site, rolling back that site's own leases and
// VM on failure. With an Exchange installed it becomes a market
// purchase with seller failover; otherwise the house agent supplies the
// tickets.
func (d *Deployer) deploySite(parent obs.SpanContext, res *DeployResult, sliceName string, sm *identity.Principal, cpuPerSite float64, notBefore, notAfter time.Duration, site string) ([]*sharp.Lease, error) {
	slice := res.Slice
	var span obs.SpanContext
	if d.tr != nil {
		span = d.tr.BeginUnder(parent, "broker.deploy.site", obs.String("site", site))
	}
	restore := d.tr.EnterScope(span)
	defer restore()
	rt, ok := d.Sites[site]
	if !ok {
		err := fmt.Errorf("broker: unknown site %q", site)
		span.End(obs.Err(err))
		return nil, err
	}
	if d.Exchange != nil {
		leases, err := d.deploySiteMarket(span, res, rt, sliceName, sm, cpuPerSite, notBefore, notAfter, site)
		if err != nil {
			span.End(obs.Err(err))
			return nil, err
		}
		span.End()
		return leases, nil
	}
	var leases []*sharp.Lease
	var v *vm.VM
	fail := func(err error) ([]*sharp.Lease, error) {
		for _, l := range leases {
			rt.Authority.ReleaseLease(l)
		}
		if v != nil && v.State() == vm.Running {
			v.Stop()
		}
		span.End(obs.Err(err))
		return nil, err
	}
	if err := d.reachable(site); err != nil {
		span.End(obs.Err(err))
		return nil, err
	}
	d.Hops += 2 // buy request + ticket grant
	tickets, err := d.Agent.Sell(sm.Name, sm.Public(), site, capability.CPU, cpuPerSite, notBefore, notAfter)
	if err != nil {
		return fail(fmt.Errorf("%w: %v", ErrNoTickets, err))
	}
	v = vm.New(sliceName+"@"+site, rt.Node, rt.NM)
	for _, tk := range tickets {
		d.Hops += 2 // redeem + lease grant
		lease, err := rt.Authority.Redeem(tk)
		if err != nil {
			return fail(err)
		}
		leases = append(leases, lease)
		if err := v.Bind(lease.CapID); err != nil {
			return fail(err)
		}
	}
	if err := v.Start(); err != nil {
		return fail(err)
	}
	if err := slice.Add(v); err != nil {
		return fail(err)
	}
	span.End()
	return leases, nil
}

// DeploySliceAtomic is the all-or-nothing variant co-allocation-style
// callers keep: any site failing tears down the sites that did come up
// (so a partial CDN does not linger) and reports the error.
func (d *Deployer) DeploySliceAtomic(sliceName string, sm *identity.Principal, cpuPerSite float64, notBefore, notAfter time.Duration, sites []string) (*vm.Slice, error) {
	res, err := d.DeploySlice(sliceName, sm, cpuPerSite, notBefore, notAfter, sites)
	if err != nil {
		return nil, err
	}
	if res.Degraded() {
		res.Slice.StopAll()
		for _, site := range res.Deployed {
			d.ReleaseLeases(res.Leases[site])
		}
		return nil, res.Err()
	}
	return res.Slice, nil
}

// ReleaseLeases returns leases to their site authorities (teardown and
// rollback paths; unknown sites are skipped — nothing to return to).
func (d *Deployer) ReleaseLeases(leases []*sharp.Lease) {
	for _, l := range leases {
		if rt, ok := d.Sites[l.Site]; ok {
			rt.Authority.ReleaseLease(l)
		}
	}
}

// RenewLease extends one lease to the target notAfter: buy fresh tickets
// from the agent for the covering interval — re-stocking from the
// issuing authority when the agent's inventory ran dry — and present
// them to the authority as a renewal. The breaker and SiteDown gates
// apply: renewing against a dead site fails fast and charges its
// breaker, which is exactly when the renewer's retry loop should back
// off.
func (d *Deployer) RenewLease(sm *identity.Principal, l *sharp.Lease, notAfter time.Duration) error {
	var span obs.SpanContext
	if d.tr != nil {
		span = d.tr.Begin("broker.renew",
			obs.String("site", l.Site), obs.String("lease", l.ID), obs.Dur("not_after", notAfter))
	}
	restore := d.tr.EnterScope(span)
	defer restore()
	fail := func(err error) error {
		d.RenewFailN++
		d.cRenewFail.Inc()
		span.End(obs.Err(err))
		return err
	}
	rt, ok := d.Sites[l.Site]
	if !ok {
		return fail(fmt.Errorf("broker: unknown site %q", l.Site))
	}
	if err := d.reachable(l.Site); err != nil {
		return fail(err)
	}
	nb := l.NotBefore
	if inv := d.Inventory(l.Site); inv < l.Amount {
		// Inventory ran dry: re-acquire a fresh root ticket first.
		d.Hops += 2
		tk, err := rt.Authority.IssueTicket(d.Agent.Name, d.Agent.Key(), capability.CPU, l.Amount-inv, nb, notAfter)
		if err != nil {
			return fail(err)
		}
		if err := d.Agent.Acquire(tk); err != nil {
			return fail(err)
		}
		d.cStocked.Inc()
	}
	d.Hops += 2 // buy request + ticket grant
	tickets, err := d.Agent.Sell(sm.Name, sm.Public(), l.Site, capability.CPU, l.Amount, nb, notAfter)
	if err != nil {
		return fail(fmt.Errorf("%w: %v", ErrNoTickets, err))
	}
	d.Hops += 2 // renew request + grant
	if _, err := rt.Authority.Renew(l.ID, tickets...); err != nil {
		return fail(err)
	}
	d.RenewedN++
	d.cRenewOK.Inc()
	span.End()
	return nil
}

// BlastRadius describes what an attacker gains by compromising a broker —
// the E5 comparison the paper motivates: a matchmaker leaks *identities*
// (usable for anything, anywhere, until proxy expiry), a SHARP agent
// leaks only *resource claims* (bounded amount, bounded interval, bounded
// sites).
type BlastRadius struct {
	// IdentitiesExposed counts user proxies an attacker could replay.
	IdentitiesExposed int
	// ResourceExposed sums the CPU amount of unsold tickets.
	ResourceExposed float64
	// SitesExposed counts sites with exposed stock.
	SitesExposed int
}

// MatchmakerBlastRadius computes the exposure of a compromised
// identity-delegation broker.
func MatchmakerBlastRadius(m *Matchmaker) BlastRadius {
	return BlastRadius{IdentitiesExposed: len(m.HeldProxies())}
}

// DeployerBlastRadius computes the exposure of a compromised
// usage-delegation broker. Sites are visited in sorted order so the
// floating-point exposure total is bit-identical across runs.
func DeployerBlastRadius(d *Deployer) BlastRadius {
	sites := make([]string, 0, len(d.Sites))
	for site := range d.Sites {
		sites = append(sites, site)
	}
	sort.Strings(sites)
	var b BlastRadius
	for _, site := range sites {
		if amt := d.Inventory(site); amt > 0 {
			b.ResourceExposed += amt
			b.SitesExposed++
		}
	}
	return b
}
