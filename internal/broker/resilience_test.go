package broker

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/gram"
	"repro/internal/resilience"
)

func TestDeploySlicePartialSuccess(t *testing.T) {
	_, d, sm := plFixture(t)
	// Stock covers A fully but only 0.5 CPU at B: the degraded result
	// keeps A's PoP instead of tearing the whole slice down.
	if err := d.Stock(4, 0, time.Hour, "A"); err != nil {
		t.Fatal(err)
	}
	if err := d.Stock(0.5, 0, time.Hour, "B"); err != nil {
		t.Fatal(err)
	}
	res, err := d.DeploySlice("svc", sm, 1, 0, time.Hour, []string{"A", "B"})
	if err != nil {
		t.Fatalf("partial deploy errored: %v", err)
	}
	if !res.Degraded() {
		t.Fatal("result not marked degraded")
	}
	if len(res.Deployed) != 1 || res.Deployed[0] != "A" {
		t.Errorf("Deployed = %v", res.Deployed)
	}
	if len(res.Failed) != 1 || res.Failed[0].Site != "B" || !errors.Is(res.Failed[0].Err, ErrNoTickets) {
		t.Errorf("Failed = %+v", res.Failed)
	}
	if res.Slice.Running() != 1 {
		t.Errorf("Running = %d", res.Slice.Running())
	}
	if len(res.Leases["A"]) == 0 {
		t.Error("no leases recorded for the deployed site")
	}
	if !errors.Is(res.Err(), ErrNoTickets) {
		t.Errorf("res.Err() = %v", res.Err())
	}
	// Degraded deployments count as failures in the E-counters.
	if d.DeployedN != 0 || d.FailedN != 1 {
		t.Errorf("DeployedN=%d FailedN=%d", d.DeployedN, d.FailedN)
	}
}

func TestDeployerBreakerTripsAndRecloses(t *testing.T) {
	eng, d, sm := plFixture(t)
	if err := d.Stock(4, 0, 10*time.Hour, "A", "B"); err != nil {
		t.Fatal(err)
	}
	down := map[string]bool{"B": true}
	d.SiteDown = func(s string) bool { return down[s] }
	d.Breakers = resilience.NewBreakerSet(eng,
		resilience.BreakerConfig{Threshold: 2, Cooldown: 10 * time.Minute, HalfOpenSuccesses: 1}, nil)

	for i := 0; i < 2; i++ {
		_, err := d.DeploySlice(fmt.Sprintf("s%d", i), sm, 1, 0, time.Hour, []string{"B"})
		if !errors.Is(err, ErrSiteUnreachable) {
			t.Fatalf("attempt %d: %v", i, err)
		}
	}
	if st := d.Breakers.For("B").State(); st != resilience.StateOpen {
		t.Fatalf("breaker state after threshold = %s", st)
	}
	// Open breaker fails fast without consulting the site.
	if _, err := d.DeploySlice("s2", sm, 1, 0, time.Hour, []string{"B"}); !errors.Is(err, resilience.ErrBreakerOpen) {
		t.Fatalf("open-breaker deploy: %v", err)
	}
	// After the cool-down the site has recovered: the half-open probe is
	// the deploy itself, and its success re-closes the breaker.
	down["B"] = false
	eng.RunUntil(10 * time.Minute)
	now := eng.Now()
	res, err := d.DeploySlice("s3", sm, 1, now, now+time.Hour, []string{"B"})
	if err != nil || res.Degraded() {
		t.Fatalf("post-recovery deploy: %+v, %v", res, err)
	}
	br := d.Breakers.For("B")
	if br.State() != resilience.StateClosed || br.ReclosesN != 1 || br.TripsN != 1 {
		t.Errorf("breaker = state %s trips %d recloses %d", br.State(), br.TripsN, br.ReclosesN)
	}
}

func TestRenewLeaseExtendsAndRestocks(t *testing.T) {
	eng, d, sm := plFixture(t)
	// Exactly enough stock for the deploy: the renewal must re-acquire a
	// fresh root ticket from the authority before it can sell to the SM.
	if err := d.Stock(1, 0, 10*time.Hour, "A"); err != nil {
		t.Fatal(err)
	}
	res, err := d.DeploySlice("svc", sm, 1, 0, time.Hour, []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	lease := res.Leases["A"][0]
	eng.RunUntil(45 * time.Minute)
	if d.Inventory("A") != 0 {
		t.Fatalf("Inventory = %v, want 0 before renewal", d.Inventory("A"))
	}
	if err := d.RenewLease(sm, lease, 2*time.Hour); err != nil {
		t.Fatal(err)
	}
	if lease.NotAfter != 2*time.Hour {
		t.Errorf("lease NotAfter = %v", lease.NotAfter)
	}
	if d.RenewedN != 1 || d.RenewFailN != 0 {
		t.Errorf("RenewedN=%d RenewFailN=%d", d.RenewedN, d.RenewFailN)
	}
	// The backing capability moved with the lease.
	c, err := d.Sites["A"].NM.Verify(lease.CapID)
	if err != nil || c.NotAfter != 2*time.Hour {
		t.Errorf("capability = %+v, %v", c, err)
	}
	// An unreachable site fails the renewal and counts it.
	d.SiteDown = func(string) bool { return true }
	if err := d.RenewLease(sm, lease, 3*time.Hour); !errors.Is(err, ErrSiteUnreachable) {
		t.Errorf("unreachable renew: %v", err)
	}
	if d.RenewFailN != 1 {
		t.Errorf("RenewFailN = %d", d.RenewFailN)
	}
}

func TestStockBestEffortAcrossSites(t *testing.T) {
	_, d, _ := plFixture(t)
	err := d.Stock(2, 0, time.Hour, "A", "Z", "B")
	if err == nil {
		t.Fatal("unknown site error swallowed")
	}
	// The good sites stocked despite Z failing.
	if d.Inventory("A") != 2 || d.Inventory("B") != 2 {
		t.Errorf("inventory A=%v B=%v", d.Inventory("A"), d.Inventory("B"))
	}
}

func TestMatchmakerSkipsOpenBreaker(t *testing.T) {
	f := newGlobusFixture(t)
	bs := resilience.NewBreakerSet(f.eng, resilience.DefaultBreakerConfig(), nil)
	f.mm.Breakers = bs
	br := bs.For("gk1")
	for i := 0; i < 3; i++ {
		br.Failure()
	}
	if br.State() != resilience.StateOpen {
		t.Fatal("fixture breaker not open")
	}
	var got Placement
	var err error
	f.mm.SubmitJob(f.proxy, gram.JobSpec{
		RSL: `&(executable=x)(maxWallTime=10)`, ActualRun: time.Second,
	}, nil, func(p Placement, e error) { got, err = p, e })
	f.eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got.Gatekeeper == "gk1" {
		t.Error("placed at the written-off gatekeeper")
	}
}

func TestMatchmakerRetryRidesOutOutage(t *testing.T) {
	f := newGlobusFixture(t)
	f.mm.Timeout = 15 * time.Second
	f.mm.Retry = resilience.NewExecutor(f.eng, f.eng.ForkRand(), resilience.Policy{
		Base: 30 * time.Second, Cap: 2 * time.Minute, Mult: 2, Jitter: time.Second, MaxAttempts: 5,
	}, nil)
	// gk1 is dark for the first minute; without retry the legacy path
	// would fall through to gk2 on the first transport fault.
	f.net.SetDown("gk1", true)
	f.eng.Schedule(time.Minute, func() { f.net.SetDown("gk1", false) })
	var got Placement
	var err error
	f.mm.SubmitJob(f.proxy, gram.JobSpec{
		RSL: `&(executable=x)(maxWallTime=10)`, ActualRun: time.Second,
	}, nil, func(p Placement, e error) { got, err = p, e })
	f.eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got.Gatekeeper != "gk1" {
		t.Errorf("placed at %q, want gk1 (retry should outlast the outage)", got.Gatekeeper)
	}
}

func TestCoAllocatorCancelRetriesAndCountsLoss(t *testing.T) {
	f := newGlobusFixture(t)
	co := &CoAllocator{Net: f.net, Host: "bk", Timeout: 15 * time.Second}
	co.Retry = resilience.NewExecutor(f.eng, f.eng.ForkRand(), resilience.Policy{
		Base: 30 * time.Second, Cap: time.Minute, Mult: 2, Jitter: time.Second, MaxAttempts: 3,
	}, nil)
	submit := func() Placement {
		var p Placement
		gram.Submit(f.net, "bk", "gk1", gram.SubmitRequest{
			Cred: f.proxy,
			Spec: gram.JobSpec{RSL: `&(executable=x)(maxWallTime=7000)`, ActualRun: time.Hour},
		}, time.Minute, func(r gram.SubmitReply, err error) {
			if err != nil {
				t.Fatal(err)
			}
			p = Placement{JobID: r.JobID, Gatekeeper: "gk1"}
		})
		f.eng.RunUntil(f.eng.Now() + 10*time.Second)
		return p
	}

	// A cancel issued into a transient outage lands once the site is back:
	// the job is reaped instead of charging the user for an hour.
	p1 := submit()
	f.net.SetDown("gk1", true)
	f.eng.Schedule(45*time.Second, func() { f.net.SetDown("gk1", false) })
	co.cancelPart(p1)
	f.eng.RunUntil(f.eng.Now() + 10*time.Minute)
	if j := f.gks["gk1"].Job(p1.JobID); j.State() != gram.Cancelled {
		t.Errorf("job after retried cancel = %v, want Cancelled", j.State())
	}
	if co.CancelLostN != 0 {
		t.Errorf("CancelLostN = %d after a cancel that landed", co.CancelLostN)
	}

	// A cancel whose site never comes back is counted as lost, not
	// silently discarded.
	p2 := submit()
	f.net.SetDown("gk1", true)
	co.cancelPart(p2)
	f.eng.RunUntil(f.eng.Now() + 30*time.Minute)
	if co.CancelLostN != 1 {
		t.Errorf("CancelLostN = %d, want 1", co.CancelLostN)
	}
}

func TestDeployerBreakerGateChargesOnlyConnectivity(t *testing.T) {
	// In-process refusals (no tickets) must NOT charge the breaker: the
	// site answered, so connectivity is fine.
	eng, d, sm := plFixture(t)
	d.Breakers = resilience.NewBreakerSet(eng,
		resilience.BreakerConfig{Threshold: 2, Cooldown: 10 * time.Minute}, nil)
	for i := 0; i < 5; i++ {
		_, err := d.DeploySlice(fmt.Sprintf("s%d", i), sm, 1, 0, time.Hour, []string{"A"})
		if !errors.Is(err, ErrNoTickets) {
			t.Fatalf("attempt %d: %v", i, err)
		}
	}
	if st := d.Breakers.For("A").State(); st != resilience.StateClosed {
		t.Errorf("breaker state = %s after in-process refusals", st)
	}
}
