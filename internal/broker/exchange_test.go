package broker

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/capability"
	"repro/internal/identity"
	"repro/internal/sharp"
	"repro/internal/silk"
	"repro/internal/sim"
	"repro/internal/trust"
)

// marketFixture: two sites with banks, one honest agent stocked at
// both, a deployer with an exchange installed.
type marketFixture struct {
	eng    *sim.Engine
	rng    *rand.Rand
	d      *Deployer
	ex     *Exchange
	scores *trust.Scoreboard
	honest *sharp.Agent
	sm     *identity.Principal
}

func newMarketFixture(t *testing.T) *marketFixture {
	t.Helper()
	eng := sim.NewEngine(1)
	rng := rand.New(rand.NewSource(11))
	sites := make(map[string]*SiteRuntime)
	for _, s := range []string{"A", "B"} {
		nm := capability.NewNodeManager(s, eng, rng, map[capability.ResourceType]float64{capability.CPU: 8})
		node := silk.NewNode(eng, s, silk.NodeSpec{Cores: 8, MemBytes: 1 << 30, DiskBytes: 1 << 34, NetBps: 1e7, MaxFDs: 1024})
		auth := sharp.NewAuthority(eng, s, identity.NewPrincipal("auth@"+s, rng), nm, map[capability.ResourceType]float64{capability.CPU: 8})
		auth.SetOversellFactor(100)
		sites[s] = &SiteRuntime{Authority: auth, NM: nm, Node: node, Bank: trust.NewBank(s)}
	}
	honest := sharp.NewAgent(identity.NewPrincipal("honest", rng))
	d := &Deployer{Agent: honest, Sites: sites}
	if err := d.Stock(8, 0, 10*time.Hour, "A", "B"); err != nil {
		t.Fatal(err)
	}
	scores := trust.NewScoreboard(trust.DefaultScoreDecay)
	ex := NewExchange(eng.ForkRand(), scores)
	ex.AddSeller(honest)
	d.Exchange = ex
	for _, s := range []string{"A", "B"} {
		if err := sites[s].Bank.Deposit("honest", 10); err != nil {
			t.Fatal(err)
		}
	}
	return &marketFixture{eng: eng, rng: rng, d: d, ex: ex, scores: scores,
		honest: honest, sm: identity.NewPrincipal("sm", rng)}
}

// addByz registers an oversell broker with stock and collateral at both
// sites.
func (f *marketFixture) addByz(t *testing.T, factor float64, replayEvery int) *adversary.OversellBroker {
	t.Helper()
	byz := adversary.NewOversellBroker(identity.NewPrincipal("byz", f.rng), factor, replayEvery)
	for s, rt := range f.d.Sites {
		tk, err := rt.Authority.IssueTicket(byz.SellerName(), byz.Key(), capability.CPU, 2, 0, 10*time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		if err := byz.Acquire(tk); err != nil {
			t.Fatal(err)
		}
		if err := rt.Bank.Deposit(byz.SellerName(), 5); err != nil {
			t.Fatalf("deposit at %s: %v", s, err)
		}
	}
	f.ex.AddSeller(byz)
	return byz
}

func TestMarketDeployHonestOnly(t *testing.T) {
	f := newMarketFixture(t)
	res, err := f.d.DeploySlice("svc", f.sm, 1, 0, time.Hour, []string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Slice.Running() != 2 {
		t.Fatalf("Running = %d; want 2", res.Slice.Running())
	}
	if len(res.Outcomes) != 2 {
		t.Fatalf("outcomes = %+v; want 2", res.Outcomes)
	}
	for _, o := range res.Outcomes {
		if !o.OK || o.Seller != "honest" {
			t.Fatalf("outcome = %+v", o)
		}
	}
	if st := f.ex.Stats("honest"); st.RedeemOK != 2 || st.RedeemFail != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMarketFailsOverAndSlashesFraud(t *testing.T) {
	f := newMarketFixture(t)
	byz := f.addByz(t, 10, 1)
	// Drive the byz broker's score up so it wins the weighted pick, then
	// deploy repeatedly at one site: its first sale redeems (building
	// false trust is part of the attack), later replayed sales fail at
	// the replay cache, slash collateral, and fail over to the honest
	// seller — every deploy still succeeds.
	for i := 0; i < 6; i++ {
		if err := f.scores.ReportOutcome(byz.SellerName(), true); err != nil {
			t.Fatal(err)
		}
	}
	bank := f.d.Sites["A"].Bank
	deposited := bank.Deposited(byz.SellerName())
	fraudSeen := false
	for i := 0; i < 5; i++ {
		res, err := f.d.DeploySlice("svc", f.sm, 0.5, 0, time.Hour, []string{"A"})
		if err != nil {
			t.Fatalf("deploy %d: %v", i, err)
		}
		if res.Slice.Running() != 1 {
			t.Fatalf("deploy %d: Running = %d", i, res.Slice.Running())
		}
		for _, o := range res.Outcomes {
			if o.Seller == byz.SellerName() && !o.OK && errors.Is(o.Err, sharp.ErrReplayed) {
				fraudSeen = true
			}
			if err := f.scores.ReportOutcome(o.Seller, o.OK); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !fraudSeen {
		t.Fatal("no replayed-sale outcome recorded against the byz broker")
	}
	if f.ex.SlashN == 0 || f.ex.SlashTotal <= 0 {
		t.Fatalf("SlashN = %d, SlashTotal = %v; want slashes", f.ex.SlashN, f.ex.SlashTotal)
	}
	if got := bank.Slashed(byz.SellerName()); got <= 0 {
		t.Fatalf("bank slashed = %v; want > 0", got)
	}
	if err := bank.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if bank.Deposited(byz.SellerName()) != deposited {
		t.Fatal("slashing changed the deposited total (conservation)")
	}
	if bank.Slashed("honest") != 0 {
		t.Fatal("honest seller was slashed")
	}
}

func TestMarketCollateralGate(t *testing.T) {
	f := newMarketFixture(t)
	byz := f.addByz(t, 10, 1)
	bank := f.d.Sites["A"].Bank
	// Drain the byz broker's collateral entirely: it becomes ineligible
	// at A no matter how good its announced inventory looks.
	if _, err := bank.Slash(byz.SellerName(), bank.Held(byz.SellerName()), "test drain"); err != nil {
		t.Fatal(err)
	}
	order := f.ex.rank("A", capability.CPU, 0.5, bank)
	if len(order) != 1 || order[0].SellerName() != "honest" {
		names := make([]string, len(order))
		for i, s := range order {
			names[i] = s.SellerName()
		}
		t.Fatalf("rank = %v; want [honest]", names)
	}
}

func TestMarketMinScoreFloor(t *testing.T) {
	f := newMarketFixture(t)
	byz := f.addByz(t, 10, 1)
	f.ex.MinScore = 0.25
	for i := 0; i < 10; i++ {
		if err := f.scores.ReportOutcome(byz.SellerName(), false); err != nil {
			t.Fatal(err)
		}
	}
	bank := f.d.Sites["A"].Bank
	order := f.ex.rank("A", capability.CPU, 0.5, bank)
	if len(order) != 1 || order[0].SellerName() != "honest" {
		t.Fatalf("rank kept %d sellers; want the floored honest-only list", len(order))
	}
	// Liveness: when every seller is below the floor, the floor yields
	// rather than starving the market.
	for i := 0; i < 10; i++ {
		if err := f.scores.ReportOutcome("honest", false); err != nil {
			t.Fatal(err)
		}
	}
	order = f.ex.rank("A", capability.CPU, 0.5, bank)
	if len(order) != 2 {
		t.Fatalf("rank starved the market below the floor: %d sellers", len(order))
	}
}

func TestMarketNoSellers(t *testing.T) {
	f := newMarketFixture(t)
	// Ask for more than anyone claims to have.
	_, err := f.d.DeploySlice("huge", f.sm, 100, 0, time.Hour, []string{"A"})
	if !errors.Is(err, ErrNoSellers) {
		t.Fatalf("deploy = %v; want ErrNoSellers", err)
	}
}

func TestMarketDeterministicAcrossRuns(t *testing.T) {
	run := func() []string {
		eng := sim.NewEngine(42)
		rng := rand.New(rand.NewSource(11))
		sites := make(map[string]*SiteRuntime)
		nm := capability.NewNodeManager("A", eng, rng, map[capability.ResourceType]float64{capability.CPU: 8})
		node := silk.NewNode(eng, "A", silk.NodeSpec{Cores: 8, MemBytes: 1 << 30, DiskBytes: 1 << 34, NetBps: 1e7, MaxFDs: 1024})
		auth := sharp.NewAuthority(eng, "A", identity.NewPrincipal("auth@A", rng), nm, map[capability.ResourceType]float64{capability.CPU: 8})
		auth.SetOversellFactor(100)
		sites["A"] = &SiteRuntime{Authority: auth, NM: nm, Node: node, Bank: trust.NewBank("A")}
		scores := trust.NewScoreboard(trust.DefaultScoreDecay)
		ex := NewExchange(eng.ForkRand(), scores)
		d := &Deployer{Agent: sharp.NewAgent(identity.NewPrincipal("house", rng)), Sites: sites, Exchange: ex}
		sm := identity.NewPrincipal("sm", rng)
		for i := 0; i < 3; i++ {
			a := sharp.NewAgent(identity.NewPrincipal(fmt.Sprintf("seller-%d", i), rng))
			tk, _ := auth.IssueTicket(a.Name, a.Key(), capability.CPU, 2, 0, 10*time.Hour)
			_ = a.Acquire(tk)
			ex.AddSeller(a)
			_ = sites["A"].Bank.Deposit(a.Name, 5)
		}
		var picks []string
		for i := 0; i < 8; i++ {
			res, err := d.DeploySlice("svc", sm, 0.25, 0, time.Hour, []string{"A"})
			if err != nil {
				return []string{"err: " + err.Error()}
			}
			for _, o := range res.Outcomes {
				picks = append(picks, o.Seller)
				if err := scores.ReportOutcome(o.Seller, o.OK); err != nil {
					return []string{"err: " + err.Error()}
				}
			}
		}
		return picks
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("pick counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pick %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}
