package broker

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/capability"
	"repro/internal/gram"
	"repro/internal/gsi"
	"repro/internal/identity"
	"repro/internal/mds"
	"repro/internal/sharp"
	"repro/internal/silk"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// globusFixture builds a 3-site Globus federation: an index + broker host
// at site O, gatekeepers gk1..gk3 at sites S1..S3 with batch managers.
type globusFixture struct {
	eng   *sim.Engine
	net   *simnet.Network
	mm    *Matchmaker
	gks   map[string]*gram.Gatekeeper
	maps  map[string]*gsi.Gridmap
	alice *identity.Credential
	proxy *identity.Credential
}

func newGlobusFixture(t *testing.T) *globusFixture {
	t.Helper()
	eng := sim.NewEngine(1)
	net := simnet.New(eng)
	net.AddSite("O", 0, 0)
	net.AddHost("idx", "O", 1e6)
	net.AddHost("bk", "O", 1e6)

	rng := eng.ForkRand()
	ca := identity.NewCA("ca", 1e6*time.Hour, rng)
	aliceP := identity.NewPrincipal("alice", rng)
	alice := identity.UserCredential(aliceP, ca.IssueUser(aliceP, 0, 1e5*time.Hour))
	proxy, err := alice.Delegate("alice/proxy", 0, 12*time.Hour, nil, rng)
	if err != nil {
		t.Fatal(err)
	}

	idx := mds.NewGIIS(eng, net, "idx")
	_ = idx
	var pushers []*mds.GRIS
	gks := make(map[string]*gram.Gatekeeper)
	maps := make(map[string]*gsi.Gridmap)
	for i := 1; i <= 3; i++ {
		site := fmt.Sprintf("S%d", i)
		gkHost := fmt.Sprintf("gk%d", i)
		net.AddSite(site, float64(20*i), 10)
		net.AddHost(gkHost, site, 1e6)
		gm := gsi.NewGridmap()
		gm.Map("alice", "u1001")
		maps[site] = gm
		policy := &gsi.SitePolicy{
			Auth:    &gsi.ChainAuthenticator{Verifier: identity.NewVerifier(ca)},
			Gridmap: gm,
		}
		gk := gram.NewGatekeeper(net, net.Host(gkHost), policy)
		gk.AddManager("batch", gram.NewBatchManager(eng, "batch", 4))
		gks[gkHost] = gk
		// Register the resource in the index.
		gris := mds.NewGRIS(eng, net, gkHost)
		caps := fmt.Sprint(4)
		gris.AddProvider(gkHost+"/cluster", func() map[string]string {
			return map[string]string{"gatekeeper": gkHost, "os": "linux", "cpus": caps}
		})
		gris.StartPush("idx", time.Minute)
		pushers = append(pushers, gris)
	}
	mm := &Matchmaker{Net: net, Host: "bk", Index: "idx", Timeout: time.Minute}
	eng.RunUntil(time.Second) // let registrations land
	// Stop the soft-state pushers so eng.Run() drains in tests; the
	// cached records stay valid for their 2-minute TTL, which covers
	// every query these tests make.
	for _, g := range pushers {
		g.Stop()
	}
	return &globusFixture{eng: eng, net: net, mm: mm, gks: gks, maps: maps, alice: alice, proxy: proxy}
}

func TestMatchmakerPlacesJob(t *testing.T) {
	f := newGlobusFixture(t)
	var got Placement
	var err error
	f.mm.SubmitJob(f.proxy, gram.JobSpec{
		RSL: `&(executable=/bin/sim)(count=2)(maxWallTime=100)`, ActualRun: time.Minute,
	}, []mds.Filter{{Attr: "os", Op: mds.FEq, Value: "linux"}}, func(p Placement, e error) { got, err = p, e })
	f.eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got.JobID == "" || got.Gatekeeper == "" {
		t.Fatalf("placement = %+v", got)
	}
	// The job ran under alice's identity at the site.
	j := f.gks[got.Gatekeeper].Job(got.JobID)
	if j.Spec.Owner != "alice" {
		t.Errorf("owner = %q", j.Spec.Owner)
	}
	if j.State() != gram.Done {
		t.Errorf("state = %v", j.State())
	}
	if f.mm.PlacedN != 1 {
		t.Errorf("PlacedN = %d", f.mm.PlacedN)
	}
}

func TestMatchmakerRetriesOnSiteRefusal(t *testing.T) {
	f := newGlobusFixture(t)
	// Two of the three sites blacklist alice (policy churn): the broker
	// must fall through to the remaining one.
	f.maps["S1"].Blacklist("alice")
	f.maps["S2"].Blacklist("alice")
	var got Placement
	var err error
	f.mm.SubmitJob(f.proxy, gram.JobSpec{
		RSL: `&(executable=x)(maxWallTime=10)`, ActualRun: time.Second,
	}, nil, func(p Placement, e error) { got, err = p, e })
	f.eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got.Gatekeeper != "gk3" {
		t.Errorf("placed at %q, want gk3", got.Gatekeeper)
	}
	if f.mm.Hops < 3 { // index + at least 2 submits
		t.Errorf("Hops = %d", f.mm.Hops)
	}
}

func TestMatchmakerAllRefused(t *testing.T) {
	f := newGlobusFixture(t)
	for _, gm := range f.maps {
		gm.Blacklist("alice")
	}
	var err error
	f.mm.SubmitJob(f.proxy, gram.JobSpec{
		RSL: `&(executable=x)(maxWallTime=10)`, ActualRun: time.Second,
	}, nil, func(_ Placement, e error) { err = e })
	f.eng.Run()
	if !errors.Is(err, ErrAllRefused) {
		t.Errorf("err = %v", err)
	}
	if f.mm.FailedN != 1 {
		t.Errorf("FailedN = %d", f.mm.FailedN)
	}
}

func TestMatchmakerNoCandidates(t *testing.T) {
	f := newGlobusFixture(t)
	var err error
	f.mm.SubmitJob(f.proxy, gram.JobSpec{
		RSL: `&(executable=x)(maxWallTime=10)`, ActualRun: time.Second,
	}, []mds.Filter{{Attr: "os", Op: mds.FEq, Value: "plan9"}}, func(_ Placement, e error) { err = e })
	f.eng.Run()
	if !errors.Is(err, ErrNoCandidates) {
		t.Errorf("err = %v", err)
	}
}

func TestMatchmakerBlastRadiusGrows(t *testing.T) {
	f := newGlobusFixture(t)
	for i := 0; i < 5; i++ {
		f.mm.SubmitJob(f.proxy, gram.JobSpec{
			RSL: `&(executable=x)(maxWallTime=10)`, ActualRun: time.Second,
		}, nil, func(Placement, error) {})
	}
	f.eng.Run()
	if br := MatchmakerBlastRadius(f.mm); br.IdentitiesExposed != 5 {
		t.Errorf("IdentitiesExposed = %d", br.IdentitiesExposed)
	}
}

func TestCoAllocatorAllOrNothing(t *testing.T) {
	f := newGlobusFixture(t)
	co := &CoAllocator{Net: f.net, Host: "bk", Timeout: time.Minute}
	// Success case: both parts fit.
	var ps []Placement
	var err error
	co.CoAllocate(f.proxy, []Part{
		{Gatekeeper: "gk1", Spec: gram.JobSpec{RSL: `&(executable=a)(count=2)(maxWallTime=100)`, ActualRun: time.Minute}},
		{Gatekeeper: "gk2", Spec: gram.JobSpec{RSL: `&(executable=b)(count=2)(maxWallTime=100)`, ActualRun: time.Minute}},
	}, func(p []Placement, e error) { ps, err = p, e })
	f.eng.RunUntil(time.Hour)
	if err != nil || len(ps) != 2 {
		t.Fatalf("co-alloc = (%v, %v)", ps, err)
	}
	if co.CoAllocN != 1 {
		t.Errorf("CoAllocN = %d", co.CoAllocN)
	}
	// Failure case: one part is refused (blacklist) → the other must be
	// cancelled.
	f.maps["S2"].Blacklist("alice")
	var err2 error
	var ps2 []Placement
	co.CoAllocate(f.proxy, []Part{
		{Gatekeeper: "gk1", Spec: gram.JobSpec{RSL: `&(executable=a)(count=2)(maxWallTime=7000)`, ActualRun: time.Hour}},
		{Gatekeeper: "gk2", Spec: gram.JobSpec{RSL: `&(executable=b)(count=2)(maxWallTime=7000)`, ActualRun: time.Hour}},
	}, func(p []Placement, e error) { ps2, err2 = p, e })
	f.eng.Run()
	if !errors.Is(err2, ErrPartialFail) || ps2 != nil {
		t.Fatalf("partial = (%v, %v)", ps2, err2)
	}
	if co.AbortN != 1 {
		t.Errorf("AbortN = %d", co.AbortN)
	}
	// The accepted gk1 part must have been cancelled.
	cancelled := false
	for id := 1; id <= 3; id++ {
		if j := f.gks["gk1"].Job(fmt.Sprintf("gk1/%d", id)); j != nil && j.State() == gram.Cancelled {
			cancelled = true
		}
	}
	if !cancelled {
		t.Error("gk1 part not cancelled after partial failure")
	}
}

// plFixture builds 3 PlanetLab sites with authorities and a deployer.
func plFixture(t *testing.T) (*sim.Engine, *Deployer, *identity.Principal) {
	t.Helper()
	eng := sim.NewEngine(1)
	rng := rand.New(rand.NewSource(3))
	sites := make(map[string]*SiteRuntime)
	for _, s := range []string{"A", "B", "C"} {
		nm := capability.NewNodeManager(s, eng, rng, map[capability.ResourceType]float64{capability.CPU: 4})
		node := silk.NewNode(eng, s, silk.NodeSpec{Cores: 4, MemBytes: 1 << 30, DiskBytes: 1 << 34, NetBps: 1e7, MaxFDs: 1024})
		auth := sharp.NewAuthority(eng, s, identity.NewPrincipal("auth@"+s, rng), nm, map[capability.ResourceType]float64{capability.CPU: 4})
		sites[s] = &SiteRuntime{Authority: auth, NM: nm, Node: node}
	}
	d := &Deployer{Agent: sharp.NewAgent(identity.NewPrincipal("agent", rng)), Sites: sites}
	sm := identity.NewPrincipal("sm", rng)
	return eng, d, sm
}

func TestDeployerSliceAcrossSites(t *testing.T) {
	eng, d, sm := plFixture(t)
	if err := d.Stock(4, 0, time.Hour, "A", "B", "C"); err != nil {
		t.Fatal(err)
	}
	slice, err := d.DeploySliceAtomic("cdn", sm, 1, 0, time.Hour, []string{"A", "B", "C"})
	if err != nil {
		t.Fatal(err)
	}
	if slice.Running() != 3 {
		t.Errorf("Running = %d", slice.Running())
	}
	// VMs really execute work under their leases.
	var done time.Duration
	v := slice.VM("A")
	if _, err := v.Exec("task", 2, func() { done = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// 1 dedicated core → 2 core-seconds in 2s.
	if done != 2*time.Second {
		t.Errorf("task at %v, want 2s", done)
	}
	if d.DeployedN != 1 {
		t.Errorf("DeployedN = %d", d.DeployedN)
	}
}

func TestDeployerInsufficientStock(t *testing.T) {
	_, d, sm := plFixture(t)
	if err := d.Stock(1, 0, time.Hour, "A"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.DeploySlice("big", sm, 2, 0, time.Hour, []string{"A"}); !errors.Is(err, ErrNoTickets) {
		t.Errorf("err = %v", err)
	}
	if d.FailedN != 1 {
		t.Errorf("FailedN = %d", d.FailedN)
	}
}

func TestDeployerRollbackOnPartialFailure(t *testing.T) {
	_, d, sm := plFixture(t)
	// Stock covers A fully but only 0.5 CPU at B.
	if err := d.Stock(4, 0, time.Hour, "A"); err != nil {
		t.Fatal(err)
	}
	if err := d.Stock(0.5, 0, time.Hour, "B"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.DeploySliceAtomic("svc", sm, 1, 0, time.Hour, []string{"A", "B"}); err == nil {
		t.Fatal("partial deploy succeeded")
	}
	// Tickets are soft claims (no NM commitment); the one lease that was
	// minted at A must have been released by the rollback, restoring the
	// full dedicated capacity.
	if got := d.Sites["A"].NM.Available(capability.CPU); got != 4 {
		t.Errorf("site A Available = %v, want 4 after rollback", got)
	}
	if d.Sites["A"].Node.Contexts() != 0 {
		t.Errorf("site A has %d leftover contexts", d.Sites["A"].Node.Contexts())
	}
}

func TestDeployerBlastRadiusIsResourcesNotIdentities(t *testing.T) {
	_, d, _ := plFixture(t)
	d.Stock(2, 0, time.Hour, "A", "B")
	br := DeployerBlastRadius(d)
	if br.IdentitiesExposed != 0 {
		t.Errorf("IdentitiesExposed = %d", br.IdentitiesExposed)
	}
	if br.ResourceExposed != 4 || br.SitesExposed != 2 {
		t.Errorf("blast = %+v", br)
	}
}

func TestDeployerUnknownSite(t *testing.T) {
	_, d, sm := plFixture(t)
	if err := d.Stock(1, 0, time.Hour, "Z"); err == nil {
		t.Error("stock from unknown site")
	}
	if _, err := d.DeploySlice("s", sm, 1, 0, time.Hour, []string{"Z"}); err == nil {
		t.Error("deploy to unknown site")
	}
}

func TestMatchmakerSurvivesLossyControlPlane(t *testing.T) {
	// The broker's retry ladder also covers message loss: with 20% loss
	// on every path, a single SubmitJob either places or reports a
	// definite error — never hangs — and usually places within the
	// candidate list (each candidate gets one timeout-bounded attempt).
	f := newGlobusFixture(t)
	f.net.BaseLoss = 0.2
	placedOrFailed := 0
	attempts := 5
	for i := 0; i < attempts; i++ {
		proxy, err := f.alice.Delegate("alice/p", f.eng.Now(), 12*time.Hour, nil, f.eng.ForkRand())
		if err != nil {
			t.Fatal(err)
		}
		f.mm.SubmitJob(proxy, gram.JobSpec{
			RSL: `&(executable=x)(maxWallTime=10)`, ActualRun: time.Second,
		}, nil, func(p Placement, e error) { placedOrFailed++ })
		f.eng.RunUntil(f.eng.Now() + 10*time.Minute)
	}
	if placedOrFailed != attempts {
		t.Errorf("%d/%d submissions resolved under loss", placedOrFailed, attempts)
	}
	if f.mm.PlacedN == 0 {
		t.Error("nothing placed despite retries")
	}
}
