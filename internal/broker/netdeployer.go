package broker

import (
	"errors"
	"time"

	"repro/internal/capability"
	"repro/internal/identity"
	"repro/internal/sharp"
	"repro/internal/simnet"
	"repro/internal/vm"
)

// NetDeployer is the Deployer's wire-protocol twin: every SHARP step —
// ticket acquisition (Figure 2: 1,2), resale (3,4), and redemption (5,6)
// — is a real RPC over the simulated WAN, so slice setup pays measured
// round-trips and inherits loss, timeouts, and partitions. The paper's
// Figure 2 deliberately draws these as network arrows between
// organizations; this type is that diagram executable.
type NetDeployer struct {
	Net *simnet.Network
	// Host is the broker's own host (the agent runs here).
	Host  string
	Agent *sharp.Agent
	// AuthorityHost maps site name -> the host running its
	// sharp.AuthorityService.
	AuthorityHost map[string]string
	// SiteNodes maps site name -> local VM substrate (node manager and
	// silk node), used at bind time (step 7 is site-local).
	SiteNodes map[string]*SiteRuntime
	// Timeout bounds each RPC leg.
	Timeout time.Duration

	// SetupTime accumulates measured wall-clock (virtual) time spent in
	// deployment RPCs; DeployedN counts successful slices.
	SetupTime time.Duration
	DeployedN int
}

// ErrDeployFailed wraps any failed step of a networked deployment.
var ErrDeployFailed = errors.New("broker: networked deployment failed")

// StockOverNet acquires one CPU ticket per site into the agent, over the
// wire, and calls done with the first error (nil when all succeed).
func (d *NetDeployer) StockOverNet(amount float64, notBefore, notAfter time.Duration, sites []string, done func(error)) {
	remaining := len(sites)
	if remaining == 0 {
		done(nil)
		return
	}
	var firstErr error
	for _, site := range sites {
		authHost, ok := d.AuthorityHost[site]
		if !ok {
			remaining--
			if firstErr == nil {
				firstErr = errors.Join(ErrDeployFailed, errors.New("unknown site "+site))
			}
			continue
		}
		sharp.IssueOverNet(d.Net, d.Host, authHost, sharp.IssueRequest{
			HolderName: d.Agent.Name,
			HolderKey:  d.Agent.Key(),
			Type:       capability.CPU,
			Amount:     amount,
			NotBefore:  notBefore,
			NotAfter:   notAfter,
		}, d.Timeout, func(tk *sharp.Ticket, err error) {
			if err == nil {
				err = d.Agent.Acquire(tk)
			}
			if err != nil && firstErr == nil {
				firstErr = errors.Join(ErrDeployFailed, err)
			}
			remaining--
			if remaining == 0 {
				done(firstErr)
			}
		})
	}
	if remaining == 0 {
		done(firstErr)
	}
}

// DeploySliceOverNet builds a slice like Deployer.DeploySlice, but the
// service manager (running at smHost) buys tickets from the agent and
// redeems them at each site authority over the network. The callback
// receives the running slice or the first error (already-built VMs are
// torn down on failure).
func (d *NetDeployer) DeploySliceOverNet(sliceName, smHost string, sm *identity.Principal, cpuPerSite float64, notBefore, notAfter time.Duration, sites []string, done func(*vm.Slice, error)) {
	start := d.Net.Engine().Now()
	slice := vm.NewSlice(sliceName)
	var leases []struct {
		rt *SiteRuntime
		l  *sharp.Lease
	}
	fail := func(err error) {
		slice.StopAll()
		for _, x := range leases {
			x.rt.Authority.ReleaseLease(x.l)
		}
		done(nil, errors.Join(ErrDeployFailed, err))
	}

	var deployNext func(i int)
	deployNext = func(i int) {
		if i == len(sites) {
			d.SetupTime += d.Net.Engine().Now() - start
			d.DeployedN++
			done(slice, nil)
			return
		}
		site := sites[i]
		rt, ok := d.SiteNodes[site]
		authHost, ok2 := d.AuthorityHost[site]
		if !ok || !ok2 {
			fail(errors.New("unknown site " + site))
			return
		}
		// Steps 3/4: buy from the agent over the wire.
		sharp.BuyOverNet(d.Net, smHost, d.Host, sharp.BuyRequest{
			BuyerName: sm.Name,
			BuyerKey:  sm.Public(),
			Site:      site,
			Type:      capability.CPU,
			Amount:    cpuPerSite,
			NotBefore: notBefore,
			NotAfter:  notAfter,
		}, d.Timeout, func(tickets []*sharp.Ticket, err error) {
			if err != nil {
				fail(err)
				return
			}
			// Steps 5/6: redeem each ticket at the issuing authority.
			v := vm.New(sliceName+"@"+site, rt.Node, rt.NM)
			var redeemNext func(j int)
			redeemNext = func(j int) {
				if j == len(tickets) {
					// Step 7: instantiate.
					if err := v.Start(); err != nil {
						fail(err)
						return
					}
					if err := slice.Add(v); err != nil {
						fail(err)
						return
					}
					deployNext(i + 1)
					return
				}
				sharp.RedeemOverNet(d.Net, smHost, authHost, tickets[j], d.Timeout, func(lease *sharp.Lease, err error) {
					if err != nil {
						fail(err)
						return
					}
					leases = append(leases, struct {
						rt *SiteRuntime
						l  *sharp.Lease
					}{rt, lease})
					if err := v.Bind(lease.CapID); err != nil {
						fail(err)
						return
					}
					redeemNext(j + 1)
				})
			}
			redeemNext(0)
		})
	}
	deployNext(0)
}

// vmSliceAlias keeps test signatures tidy.
type vmSliceAlias = vm.Slice
