// Package metrics provides the measurement and rendering utilities every
// gridlab experiment uses: counters, sample sets with quantiles, Jain's
// fairness index, aligned ASCII tables, and a dot plot for the Figure-1
// style scatter outputs. Keeping rendering here means cmd/gridlab and the
// benches print byte-identical artifacts.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Sample is an accumulating set of float64 observations.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends an observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the observation count.
func (s *Sample) N() int { return len(s.xs) }

// Sum returns the total.
func (s *Sample) Sum() float64 {
	t := 0.0
	for _, x := range s.xs {
		t += x
	}
	return t
}

// Mean returns the average (0 when empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.Sum() / float64(len(s.xs))
}

// Min returns the smallest observation (0 when empty).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation (0 when empty).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Stddev returns the population standard deviation.
func (s *Sample) Stddev() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	mu := s.Mean()
	v := 0.0
	for _, x := range s.xs {
		v += (x - mu) * (x - mu)
	}
	return math.Sqrt(v / float64(len(s.xs)))
}

// Quantile returns the q-th quantile (0 <= q <= 1) by linear
// interpolation; 0 when empty.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := q * float64(len(s.xs)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s.xs) {
		return s.xs[lo]
	}
	return s.xs[lo]*(1-frac) + s.xs[lo+1]*frac
}

// Jain computes Jain's fairness index over allocations: 1 is perfectly
// fair, 1/n maximally unfair. Empty or all-zero input yields 0.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Table renders aligned columns. Rows are added as formatted cells; the
// writer pads to the widest cell per column.
type Table struct {
	Header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{Header: header} }

// AddRow appends a row; each cell is rendered with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e6:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1e6 || (v != 0 && math.Abs(v) < 0.01):
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	ncol := len(t.Header)
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.rows {
		measure(r)
	}
	writeRow := func(row []string) {
		parts := make([]string, ncol)
		for i := 0; i < ncol; i++ {
			c := ""
			if i < len(row) {
				c = row[i]
			}
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.Header)
	sep := make([]string, ncol)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// Point is one labelled scatter point.
type Point struct {
	X, Y  float64
	Label rune
}

// ScatterPlot renders labelled points on a w×h character grid with the
// origin at bottom-left — the Figure-1 rendering.
func ScatterPlot(w io.Writer, title, xlabel, ylabel string, width, height int, pts []Point) {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	minX, maxX, minY, maxY := 0.0, 1.0, 0.0, 1.0
	for _, p := range pts {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	for _, p := range pts {
		x := int((p.X - minX) / (maxX - minX) * float64(width-1))
		y := int((p.Y - minY) / (maxY - minY) * float64(height-1))
		row := height - 1 - y
		grid[row][x] = p.Label
	}
	fmt.Fprintln(w, title)
	for i, row := range grid {
		marker := "|"
		if i == 0 {
			marker = "^"
		}
		fmt.Fprintf(w, "  %s %s\n", marker, strings.TrimRight(string(row), " "))
	}
	fmt.Fprintf(w, "  +%s>\n", strings.Repeat("-", width))
	fmt.Fprintf(w, "  y: %s, x: %s\n", ylabel, xlabel)
}
