package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Quantile(0.5) != 0 {
		t.Error("empty sample stats nonzero")
	}
	for _, x := range []float64{4, 1, 3, 2, 5} {
		s.Add(x)
	}
	if s.N() != 5 || s.Sum() != 15 || s.Mean() != 3 {
		t.Errorf("n=%d sum=%v mean=%v", s.N(), s.Sum(), s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("min=%v max=%v", s.Min(), s.Max())
	}
	if got := s.Quantile(0.5); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := s.Quantile(1); got != 5 {
		t.Errorf("q1 = %v", got)
	}
	if got := s.Quantile(0.25); got != 2 {
		t.Errorf("q25 = %v", got)
	}
	if math.Abs(s.Stddev()-math.Sqrt(2)) > 1e-9 {
		t.Errorf("stddev = %v", s.Stddev())
	}
}

func TestQuantileInterpolates(t *testing.T) {
	var s Sample
	s.Add(0)
	s.Add(10)
	if got := s.Quantile(0.5); got != 5 {
		t.Errorf("interpolated median = %v", got)
	}
}

func TestSampleAddAfterQuantile(t *testing.T) {
	var s Sample
	s.Add(5)
	_ = s.Quantile(0.5)
	s.Add(1)
	if got := s.Min(); got != 1 {
		t.Errorf("min after resort = %v", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("q0 after add = %v", got)
	}
}

func TestJain(t *testing.T) {
	if got := Jain([]float64{1, 1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal Jain = %v", got)
	}
	if got := Jain([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("max-unfair Jain = %v", got)
	}
	if Jain(nil) != 0 || Jain([]float64{0, 0}) != 0 {
		t.Error("degenerate Jain nonzero")
	}
}

// Property: Jain is scale-invariant and bounded in (1/n, 1].
func TestJainProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		any := false
		for i, r := range raw {
			xs[i] = float64(r)
			if r > 0 {
				any = true
			}
		}
		if !any {
			return Jain(xs) == 0
		}
		j := Jain(xs)
		if j <= 0 || j > 1.0000001 {
			return false
		}
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = xs[i] * 7.5
		}
		return math.Abs(Jain(scaled)-j) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("short", 1)
	tb.AddRow("a-much-longer-name", 123456789.0)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[1], "----") {
		t.Errorf("header/sep wrong:\n%s", out)
	}
	// Column two starts at the same offset in all rows.
	idx := strings.Index(lines[2], "1")
	if idx < 0 || !strings.HasPrefix(lines[3][strings.Index(lines[0], "value"):], "1.23e+08") {
		t.Errorf("alignment:\n%s", out)
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := NewTable("v")
	tb.AddRow(3.0)       // integral
	tb.AddRow(3.14159)   // small
	tb.AddRow(1.25e7)    // large
	tb.AddRow(0.0000012) // tiny
	out := tb.String()
	for _, want := range []string{"3\n", "3.14", "1.25e+07", "1.2e-06"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestScatterPlot(t *testing.T) {
	var sb strings.Builder
	ScatterPlot(&sb, "Figure 1", "autonomy", "functionality", 20, 6, []Point{
		{X: 0.1, Y: 0.9, Label: 'P'},
		{X: 0.9, Y: 0.2, Label: 'G'},
	})
	out := sb.String()
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "P") || !strings.Contains(out, "G") {
		t.Fatalf("plot:\n%s", out)
	}
	// P (high functionality) must appear on an earlier line than G.
	pLine, gLine := -1, -1
	for i, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "P") && !strings.Contains(line, "Figure") {
			pLine = i
		}
		if strings.Contains(line, "G") {
			gLine = i
		}
	}
	if pLine < 0 || gLine < 0 || pLine >= gLine {
		t.Errorf("P at %d, G at %d:\n%s", pLine, gLine, out)
	}
}
