// Package obs is gridlab's deterministic observability layer: causal
// spans and a metrics registry, both bound to the sim.Engine virtual
// clock. It exists because the paper's comparison is ultimately about
// observable mechanism behaviour — who sent what to whom, when tickets
// became leases (Figure 2's 1a/1b→7 ordering), and how control traffic
// grows with scale — and because monitoring is itself a first-class
// Grid service in the VO model.
//
// Design rules:
//
//   - Everything is virtual-time: span begin/end and gauge samples carry
//     Engine.Now() durations, never the wall clock, so the same seed
//     yields a byte-identical trace.
//   - The nil *Tracer is the off switch: every method (and every method
//     of the instruments it hands out) is nil-safe and does no work, so
//     instrumented hot paths cost one branch when tracing is disabled.
//   - Causality is explicit: the kernel is single-threaded, so the
//     tracer keeps a single "active" span that Scope installs around a
//     callback — the span-context handle is passed by value through
//     scheduled events and simnet deliveries, never via goroutine-local
//     state.
package obs

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Attr is one key=value span or event attribute. Attributes are ordered
// (a slice, not a map) so exports are deterministic.
type Attr struct {
	Key string
	Val string
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Val: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Val: fmt.Sprint(v)} }

// Float builds a float attribute (rendered compactly with %g).
func Float(k string, v float64) Attr { return Attr{Key: k, Val: fmt.Sprintf("%g", v)} }

// Dur builds a duration attribute.
func Dur(k string, v time.Duration) Attr { return Attr{Key: k, Val: v.String()} }

// Err builds an "err" attribute ("" for nil).
func Err(e error) Attr {
	if e == nil {
		return Attr{Key: "err", Val: ""}
	}
	return Attr{Key: "err", Val: e.Error()}
}

// Span is one causally linked interval of virtual time. IDs are
// sequential from 1; Parent 0 means a root span.
type Span struct {
	ID     uint64
	Parent uint64
	Name   string
	Begin  time.Duration
	End    time.Duration
	Open   bool // still open (End not yet called)
	Attrs  []Attr
}

// recKind tags entries of the chronological event log.
type recKind uint8

const (
	recBegin recKind = iota
	recEnd
	recPoint
	recGauge
)

// rec is one entry of the chronological event log the JSONL exporter
// writes. Spans additionally live in Tracer.spans for interval exports.
type rec struct {
	kind   recKind
	at     time.Duration
	span   uint64
	parent uint64
	name   string
	val    float64
	attrs  []Attr
}

// SpanContext is the explicit causal handle: a (tracer, span-ID) pair
// passed by value through scheduled events and message deliveries. The
// zero SpanContext is inert.
type SpanContext struct {
	tr *Tracer
	id uint64
}

// Valid reports whether the context names a live tracer span.
func (c SpanContext) Valid() bool { return c.tr != nil && c.id != 0 }

// ID returns the span ID (0 for the zero context).
func (c SpanContext) ID() uint64 { return c.id }

// Tracer records spans, point events, and metrics against an engine's
// virtual clock. A nil *Tracer is valid and records nothing.
type Tracer struct {
	eng    *sim.Engine
	spans  []*Span // index = ID-1
	log    []rec
	active SpanContext

	counters   map[string]*Counter
	hists      map[string]*Hist
	gaugeNames []string
	gaugeFns   []func() float64
}

// NewTracer returns a tracer bound to the engine's virtual clock.
func NewTracer(eng *sim.Engine) *Tracer {
	if eng == nil {
		panic("obs: nil engine")
	}
	return &Tracer{
		eng:      eng,
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Hist),
	}
}

// Begin opens a span as a child of the currently active span (a root
// span when none is active) and returns its context. It does not change
// the active span; use Scope to run work under it.
func (t *Tracer) Begin(name string, attrs ...Attr) SpanContext {
	if t == nil {
		return SpanContext{}
	}
	return t.BeginUnder(t.active, name, attrs...)
}

// BeginUnder opens a span under an explicit parent context (which may be
// the zero context for a root span).
func (t *Tracer) BeginUnder(parent SpanContext, name string, attrs ...Attr) SpanContext {
	if t == nil {
		return SpanContext{}
	}
	id := uint64(len(t.spans) + 1)
	s := &Span{
		ID:     id,
		Parent: parent.id,
		Name:   name,
		Begin:  t.eng.Now(),
		Open:   true,
		Attrs:  append([]Attr(nil), attrs...),
	}
	t.spans = append(t.spans, s)
	t.log = append(t.log, rec{kind: recBegin, at: s.Begin, span: id, parent: s.Parent, name: name, attrs: s.Attrs})
	return SpanContext{tr: t, id: id}
}

// span resolves a context to its span (nil for inert contexts).
func (c SpanContext) span() *Span {
	if !c.Valid() {
		return nil
	}
	return c.tr.spans[c.id-1]
}

// End closes the span at the current virtual time, appending any final
// attributes. Ending an already closed span or the zero context is a
// no-op, so cleanup paths may End unconditionally.
func (c SpanContext) End(attrs ...Attr) {
	s := c.span()
	if s == nil || !s.Open {
		return
	}
	s.Open = false
	s.End = c.tr.eng.Now()
	s.Attrs = append(s.Attrs, attrs...)
	c.tr.log = append(c.tr.log, rec{kind: recEnd, at: s.End, span: s.ID, name: s.Name, attrs: attrs})
}

// Annotate appends attributes to an open span.
func (c SpanContext) Annotate(attrs ...Attr) {
	if s := c.span(); s != nil && s.Open {
		s.Attrs = append(s.Attrs, attrs...)
	}
}

// Event records a point event under the span.
func (c SpanContext) Event(name string, attrs ...Attr) {
	if !c.Valid() {
		return
	}
	c.tr.log = append(c.tr.log, rec{
		kind: recPoint, at: c.tr.eng.Now(), span: c.id, name: name,
		attrs: append([]Attr(nil), attrs...),
	})
}

// Event records a point event under the active span (root when none).
func (t *Tracer) Event(name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.log = append(t.log, rec{
		kind: recPoint, at: t.eng.Now(), span: t.active.id, name: name,
		attrs: append([]Attr(nil), attrs...),
	})
}

// Active returns the currently active span context (zero when none).
func (t *Tracer) Active() SpanContext {
	if t == nil {
		return SpanContext{}
	}
	return t.active
}

// Scope runs fn with ctx installed as the active span, restoring the
// previous active span afterwards. This is the causal propagation rule:
// whoever schedules work on the engine wraps the callback in Scope with
// the span it should be attributed to. On a nil tracer it just runs fn.
func (t *Tracer) Scope(ctx SpanContext, fn func()) {
	if t == nil {
		fn()
		return
	}
	prev := t.active
	t.active = ctx
	fn()
	t.active = prev
}

// EnterScope installs ctx as the active span and returns the function
// that restores the previous one — the paired form of Scope, for call
// sites with early returns (defer the restore). On a nil tracer it is a
// no-op and returns a no-op.
func (t *Tracer) EnterScope(ctx SpanContext) func() {
	if t == nil {
		return func() {}
	}
	prev := t.active
	t.active = ctx
	return func() { t.active = prev }
}

// Schedule is the propagation-preserving twin of Engine.Schedule: fn
// runs after delay with ctx as the active span.
func (t *Tracer) Schedule(delay time.Duration, ctx SpanContext, fn func()) sim.Event {
	if t == nil {
		panic("obs: Schedule on nil tracer (schedule on the engine directly)")
	}
	return t.eng.Schedule(delay, func() { t.Scope(ctx, fn) })
}

// Spans returns the recorded spans in begin order.
func (t *Tracer) Spans() []*Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// FindSpans returns all spans with the given name, in begin order.
func (t *Tracer) FindSpans(name string) []*Span {
	if t == nil {
		return nil
	}
	var out []*Span
	for _, s := range t.spans {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}
