package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonAttr is the wire form of an Attr.
type jsonAttr struct {
	K string `json:"k"`
	V string `json:"v"`
}

// jsonRec is one JSONL line. Field order is fixed by the struct, and
// encoding/json emits struct fields in declaration order, so the same
// event log always serializes to the same bytes.
type jsonRec struct {
	T      string     `json:"t"`
	At     int64      `json:"at"` // virtual nanoseconds
	Span   uint64     `json:"span,omitempty"`
	Parent uint64     `json:"parent,omitempty"`
	Name   string     `json:"name,omitempty"`
	V      float64    `json:"v,omitempty"`
	N      uint64     `json:"n,omitempty"`
	Attrs  []jsonAttr `json:"attrs,omitempty"`
}

func toJSONAttrs(attrs []Attr) []jsonAttr {
	if len(attrs) == 0 {
		return nil
	}
	out := make([]jsonAttr, len(attrs))
	for i, a := range attrs {
		out[i] = jsonAttr{K: a.Key, V: a.Val}
	}
	return out
}

var recNames = [...]string{recBegin: "begin", recEnd: "end", recPoint: "event", recGauge: "gauge"}

// WriteJSONL writes the chronological event log — span begins and ends,
// point events, gauge samples — one JSON object per line, followed by
// the final counter values and histogram summaries (sorted by name).
// The output is a pure function of the recorded run: same seed, same
// bytes.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, r := range t.log {
		jr := jsonRec{
			T:      recNames[r.kind],
			At:     int64(r.at),
			Span:   r.span,
			Parent: r.parent,
			Name:   r.name,
			V:      r.val,
			Attrs:  toJSONAttrs(r.attrs),
		}
		if err := enc.Encode(&jr); err != nil {
			return err
		}
	}
	end := int64(t.eng.Now())
	for _, name := range t.counterNames() {
		jr := jsonRec{T: "counter", At: end, Name: name, N: t.counters[name].Value()}
		if err := enc.Encode(&jr); err != nil {
			return err
		}
	}
	for _, name := range t.histNames() {
		h := t.hists[name]
		jr := jsonRec{
			T: "hist", At: end, Name: name, N: uint64(h.N()),
			Attrs: []jsonAttr{
				{K: "p50", V: fmt.Sprintf("%g", h.Quantile(0.5))},
				{K: "p95", V: fmt.Sprintf("%g", h.Quantile(0.95))},
				{K: "max", V: fmt.Sprintf("%g", h.Quantile(1))},
			},
		}
		if err := enc.Encode(&jr); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace_event format (the JSON
// array form), loadable in chrome://tracing and Perfetto. Virtual time
// maps to microseconds; spans become complete ("X") events and point
// events become instants ("i").
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeArgs renders attrs as a map; encoding/json sorts map keys, so
// the output stays deterministic (later duplicates of a key win).
func chromeArgs(id, parent uint64, attrs []Attr) map[string]string {
	args := make(map[string]string, len(attrs)+2)
	args["span"] = fmt.Sprint(id)
	if parent != 0 {
		args["parent"] = fmt.Sprint(parent)
	}
	for _, a := range attrs {
		args[a.Key] = a.Val
	}
	return args
}

// WriteChromeTrace writes the span set in Chrome trace_event format.
// Open spans are emitted as running to the current virtual time.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	var evs []chromeEvent
	for _, s := range t.spans {
		end := s.End
		if s.Open {
			end = t.eng.Now()
		}
		evs = append(evs, chromeEvent{
			Name: s.Name, Ph: "X",
			Ts:  float64(s.Begin) / 1e3,
			Dur: float64(end-s.Begin) / 1e3,
			Pid: 1, Tid: 1,
			Args: chromeArgs(s.ID, s.Parent, s.Attrs),
		})
	}
	for _, r := range t.log {
		if r.kind != recPoint {
			continue
		}
		evs = append(evs, chromeEvent{
			Name: r.name, Ph: "i",
			Ts:  float64(r.at) / 1e3,
			Pid: 1, Tid: 1, S: "t",
			Args: chromeArgs(r.span, 0, r.attrs),
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(evs)
}
