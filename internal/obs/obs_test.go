package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestSpanParentAndTimes(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := NewTracer(eng)
	root := tr.Begin("root", String("k", "v"))
	var child SpanContext
	tr.Schedule(10*time.Millisecond, root, func() {
		child = tr.Begin("child")
		tr.Schedule(5*time.Millisecond, child, func() {
			child.End(Int("n", 3))
		})
	})
	eng.Run()
	root.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	r, c := spans[0], spans[1]
	if r.Parent != 0 || c.Parent != r.ID {
		t.Errorf("parents: root=%d child=%d (root ID %d)", r.Parent, c.Parent, r.ID)
	}
	if c.Begin != 10*time.Millisecond || c.End != 15*time.Millisecond {
		t.Errorf("child interval [%v,%v], want [10ms,15ms]", c.Begin, c.End)
	}
	if c.Open {
		t.Error("child still open")
	}
	if len(c.Attrs) != 1 || c.Attrs[0] != (Attr{Key: "n", Val: "3"}) {
		t.Errorf("child attrs = %v", c.Attrs)
	}
}

func TestScopeRestoresActive(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := NewTracer(eng)
	a := tr.Begin("a")
	tr.Scope(a, func() {
		if tr.Active() != a {
			t.Error("active not installed")
		}
		b := tr.Begin("b")
		if b.span().Parent != a.ID() {
			t.Error("b not parented to a")
		}
	})
	if tr.Active().Valid() {
		t.Error("active not restored")
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	ctx := tr.Begin("x", String("a", "b"))
	ctx.End()
	ctx.Annotate(Int("n", 1))
	ctx.Event("e")
	tr.Event("e2")
	tr.Counter("c").Inc()
	tr.Counter("c").Add(10)
	tr.Hist("h").Observe(time.Second)
	tr.GaugeFunc("g", func() float64 { return 1 })
	tr.SampleGauges()
	tr.BindEngine()
	ran := false
	tr.Scope(ctx, func() { ran = true })
	if !ran {
		t.Fatal("Scope did not run fn on nil tracer")
	}
	if tr.Spans() != nil || tr.FindSpans("x") != nil {
		t.Error("nil tracer recorded spans")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil WriteJSONL = (%q, %v)", buf.String(), err)
	}
}

func TestEndIdempotentAndDoubleEnd(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := NewTracer(eng)
	s := tr.Begin("s")
	s.End()
	endAt := s.span().End
	eng.Schedule(time.Second, func() { s.End(String("late", "yes")) })
	eng.Run()
	if s.span().End != endAt {
		t.Error("second End moved the end time")
	}
	for _, a := range s.span().Attrs {
		if a.Key == "late" {
			t.Error("second End appended attrs")
		}
	}
}

func TestCountersGaugesHists(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := NewTracer(eng)
	c := tr.Counter("net.msgs")
	c.Inc()
	c.Add(2)
	if tr.Counter("net.msgs") != c {
		t.Error("counter not interned by name")
	}
	if c.Value() != 3 {
		t.Errorf("counter = %d, want 3", c.Value())
	}
	h := tr.Hist("rtt")
	h.Observe(100 * time.Millisecond)
	h.Observe(300 * time.Millisecond)
	if h.N() != 2 || h.Quantile(1) != 0.3 {
		t.Errorf("hist n=%d max=%v", h.N(), h.Quantile(1))
	}
	v := 7.0
	tr.GaugeFunc("depth", func() float64 { return v })
	tr.SampleGauges()
	v = 9
	eng.Schedule(time.Second, func() { tr.SampleGauges() })
	eng.Run()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var gauges []float64
	for _, line := range lines {
		var r struct {
			T    string  `json:"t"`
			Name string  `json:"name"`
			V    float64 `json:"v"`
		}
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
		if r.T == "gauge" {
			gauges = append(gauges, r.V)
		}
	}
	if len(gauges) != 2 || gauges[0] != 7 || gauges[1] != 9 {
		t.Errorf("gauge samples = %v, want [7 9]", gauges)
	}
}

func TestJSONLDeterministic(t *testing.T) {
	run := func() string {
		eng := sim.NewEngine(42)
		tr := NewTracer(eng)
		tr.BindEngine()
		root := tr.Begin("run", String("seed", "42"))
		for i := 0; i < 5; i++ {
			i := i
			tr.Schedule(time.Duration(i)*time.Millisecond, root, func() {
				s := tr.Begin("step", Int("i", i))
				tr.Counter("steps").Inc()
				tr.Hist("lat").Observe(time.Duration(i) * time.Millisecond)
				s.End()
			})
		}
		eng.Run()
		tr.SampleGauges()
		root.End()
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same-seed JSONL differs:\n%s\n----\n%s", a, b)
	}
	if !strings.Contains(a, `"t":"counter"`) || !strings.Contains(a, `"t":"hist"`) {
		t.Error("summary records missing")
	}
}

func TestChromeTraceValidJSON(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := NewTracer(eng)
	s := tr.Begin("outer", String("site", "A"))
	tr.Scope(s, func() {
		in := tr.Begin("inner")
		in.Event("mark", Int("x", 1))
		in.End()
	})
	s.End()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("invalid chrome trace JSON: %v", err)
	}
	if len(evs) != 3 { // 2 X spans + 1 instant
		t.Errorf("got %d events, want 3", len(evs))
	}
}

func TestTimelineRenders(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := NewTracer(eng)
	a := tr.Begin("alpha")
	eng.Schedule(time.Second, func() {})
	eng.Run()
	b := tr.BeginUnder(a, "beta")
	b.End()
	a.End()
	tr.Counter("c").Inc()
	var buf bytes.Buffer
	tr.WriteTimeline(&buf, 40)
	out := buf.String()
	for _, want := range []string{"alpha", "  beta", "counter", "2 spans"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}
