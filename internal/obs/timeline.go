package obs

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/metrics"
)

// WriteTimeline renders the span set as an ASCII virtual-time Gantt
// chart: one row per span in begin order, indented by causal depth,
// with a bar spanning its interval scaled to width columns. It is the
// human-readable sibling of WriteChromeTrace, and the counter table
// below it is the registry's final state.
func (t *Tracer) WriteTimeline(w io.Writer, width int) {
	if t == nil {
		fmt.Fprintln(w, "obs: tracing disabled (nil tracer)")
		return
	}
	if width < 20 {
		width = 20
	}
	if len(t.spans) == 0 {
		fmt.Fprintln(w, "obs: no spans recorded")
	} else {
		t0 := t.spans[0].Begin
		t1 := t0
		for _, s := range t.spans {
			end := s.End
			if s.Open {
				end = t.eng.Now()
			}
			if end > t1 {
				t1 = end
			}
		}
		span := t1 - t0
		if span <= 0 {
			span = 1
		}
		col := func(at time.Duration) int {
			c := int(float64(at-t0) / float64(span) * float64(width-1))
			if c < 0 {
				c = 0
			}
			if c > width-1 {
				c = width - 1
			}
			return c
		}
		depth := make(map[uint64]int, len(t.spans))
		nameW := 0
		for _, s := range t.spans {
			depth[s.ID] = depth[s.Parent] + 1
			if n := len(s.Name) + 2*(depth[s.ID]-1); n > nameW {
				nameW = n
			}
		}
		fmt.Fprintf(w, "timeline %v .. %v (%d spans)\n", t0, t1, len(t.spans))
		for _, s := range t.spans {
			end := s.End
			mark := byte(']')
			if s.Open {
				end, mark = t.eng.Now(), '>'
			}
			bar := make([]byte, width)
			for i := range bar {
				bar[i] = ' '
			}
			lo, hi := col(s.Begin), col(end)
			for i := lo; i <= hi; i++ {
				bar[i] = '='
			}
			bar[lo] = '['
			bar[hi] = mark
			if lo == hi {
				bar[lo] = '|'
			}
			label := strings.Repeat("  ", depth[s.ID]-1) + s.Name
			fmt.Fprintf(w, "%-*s |%s| %v\n", nameW, label, bar, end-s.Begin)
		}
	}
	if len(t.counters) > 0 {
		tbl := metrics.NewTable("counter", "value")
		for _, name := range t.counterNames() {
			tbl.AddRow(name, fmt.Sprint(t.counters[name].Value()))
		}
		fmt.Fprintln(w)
		tbl.Render(w)
	}
	if len(t.hists) > 0 {
		tbl := metrics.NewTable("histogram", "n", "p50 (s)", "p95 (s)", "max (s)")
		for _, name := range t.histNames() {
			h := t.hists[name]
			tbl.AddRow(name, h.N(), h.Quantile(0.5), h.Quantile(0.95), h.Quantile(1))
		}
		fmt.Fprintln(w)
		tbl.Render(w)
	}
}
