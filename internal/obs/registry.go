package obs

import (
	"sort"
	"time"

	"repro/internal/metrics"
)

// Counter is a monotonically increasing count. A nil *Counter (what a
// nil tracer hands out) is valid and does nothing, so instrumented code
// holds counters unconditionally and pays one branch when tracing is
// off.
type Counter struct {
	Name string
	n    uint64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.n++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.n += n
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Counter returns (registering on first use) the named counter, or nil
// when the tracer is nil.
func (t *Tracer) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	c, ok := t.counters[name]
	if !ok {
		c = &Counter{Name: name}
		t.counters[name] = c
	}
	return c
}

// Hist is a histogram of virtual-time durations (span latencies, queue
// waits). A nil *Hist is valid and does nothing.
type Hist struct {
	Name string
	s    metrics.Sample
}

// Observe records one duration.
func (h *Hist) Observe(d time.Duration) {
	if h != nil {
		h.s.Add(d.Seconds())
	}
}

// N returns the observation count (0 on nil).
func (h *Hist) N() int {
	if h == nil {
		return 0
	}
	return h.s.N()
}

// Quantile returns the q-th quantile in seconds (0 on nil).
func (h *Hist) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return h.s.Quantile(q)
}

// Hist returns (registering on first use) the named histogram, or nil
// when the tracer is nil.
func (t *Tracer) Hist(name string) *Hist {
	if t == nil {
		return nil
	}
	h, ok := t.hists[name]
	if !ok {
		h = &Hist{Name: name}
		t.hists[name] = h
	}
	return h
}

// GaugeFunc registers a named gauge backed by a callback (engine queue
// depth, processed events, inventory levels). Gauges are pull-style:
// nothing is recorded until SampleGauges snapshots them, so registering
// a gauge never perturbs the event schedule.
func (t *Tracer) GaugeFunc(name string, fn func() float64) {
	if t == nil {
		return
	}
	t.gaugeNames = append(t.gaugeNames, name)
	t.gaugeFns = append(t.gaugeFns, fn)
}

// SampleGauges records one sample of every registered gauge at the
// current virtual time, in registration order.
func (t *Tracer) SampleGauges() {
	if t == nil {
		return
	}
	now := t.eng.Now()
	for i, name := range t.gaugeNames {
		t.log = append(t.log, rec{kind: recGauge, at: now, name: name, val: t.gaugeFns[i]()})
	}
}

// BindEngine registers the kernel's own health gauges — event-queue
// depth and processed-event count — on the tracer.
func (t *Tracer) BindEngine() {
	if t == nil {
		return
	}
	eng := t.eng
	t.GaugeFunc("engine.pending", func() float64 { return float64(eng.Pending()) })
	t.GaugeFunc("engine.processed", func() float64 { return float64(eng.Processed()) })
}

// counterNames returns registered counter names, sorted for export.
func (t *Tracer) counterNames() []string {
	names := make([]string, 0, len(t.counters))
	for name := range t.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// histNames returns registered histogram names, sorted for export.
func (t *Tracer) histNames() []string {
	names := make([]string, 0, len(t.hists))
	for name := range t.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
