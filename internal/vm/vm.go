// Package vm implements PlanetLab's node abstraction: "The main
// abstraction offered by a PlanetLab node is a virtual machine (VM): each
// user of a PlanetLab node is presented with the image of a raw, dedicated
// machine ... PlanetLab provides its users with a virtual container at
// each host to act as a 'point of presence' for a service."
//
// A VM accumulates resource capabilities (minted by the node's
// capability.NodeManager), redeems them at Start, and enforces the
// resulting envelope through a silk.Context. A Slice is the distributed
// set of VMs a service holds across nodes — "a distributed virtual
// machine with a relatively low-level system abstraction, in the form of
// (a distributed set of) virtual containers and a familiar Unix-style
// API".
package vm

import (
	"errors"
	"fmt"

	"repro/internal/capability"
	"repro/internal/silk"
	"repro/internal/sim"
)

// Lifecycle errors.
var (
	ErrWrongState = errors.New("vm: operation invalid in current state")
	ErrNoCtx      = errors.New("vm: not started")
)

// State is the VM lifecycle state.
type State int

// VM lifecycle states.
const (
	Created State = iota // capabilities may be bound
	Running              // silk context live
	Stopped              // torn down
	Failed               // Start failed (e.g. port conflict)
)

var stateNames = [...]string{"created", "running", "stopped", "failed"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// VM is one virtual container on one node.
type VM struct {
	Name string
	Node *silk.Node

	nm    *capability.NodeManager
	state State
	caps  []*capability.Capability
	ctx   *silk.Context
	// FailReason records why Start failed.
	FailReason error
}

// New creates a VM on node, whose capability ledger is nm.
func New(name string, node *silk.Node, nm *capability.NodeManager) *VM {
	return &VM{Name: name, Node: node, nm: nm}
}

// State returns the lifecycle state.
func (v *VM) State() State { return v.state }

// Bind redeems a capability at the node manager and attaches its resource
// claim to the VM. Only legal before Start. A capability for a different
// node is rejected.
func (v *VM) Bind(id capability.ID) error {
	if v.state != Created {
		return fmt.Errorf("%w: bind in %v", ErrWrongState, v.state)
	}
	c, err := v.nm.Bind(id)
	if err != nil {
		return err
	}
	if c.Node != v.Node.Name {
		return fmt.Errorf("vm: capability for node %q bound on %q", c.Node, v.Node.Name)
	}
	v.caps = append(v.caps, c)
	return nil
}

// envelope folds the bound capabilities into a silk context spec plus the
// port list to claim.
func (v *VM) envelope() (silk.ContextSpec, []int) {
	spec := silk.ContextSpec{}
	var ports []int
	for _, c := range v.caps {
		switch c.Type {
		case capability.CPU:
			if c.Dedicated {
				spec.DedicatedCores += c.Amount
			} else {
				spec.CPUShares += c.Amount
			}
		case capability.Network:
			if c.Dedicated {
				spec.DedicatedNetBps += c.Amount
			} else if c.Amount > spec.NetRateBps {
				spec.NetRateBps = c.Amount
			}
		case capability.Memory:
			spec.MemBytes += c.Amount
		case capability.Disk:
			spec.DiskBytes += c.Amount
		case capability.Port:
			ports = append(ports, c.PortNum)
		case capability.FileDescriptors:
			spec.MaxFDs += int(c.Amount)
		}
	}
	return spec, ports
}

// Start materializes the VM: creates the enforcement context from the
// bound envelope and claims its ports. On any failure every acquired
// resource is released and the VM enters Failed.
func (v *VM) Start() error {
	if v.state != Created {
		return fmt.Errorf("%w: start in %v", ErrWrongState, v.state)
	}
	spec, ports := v.envelope()
	ctx, err := v.Node.NewContext(v.Name, spec)
	if err != nil {
		v.fail(err)
		return err
	}
	for _, p := range ports {
		if err := ctx.OpenPort(p); err != nil {
			ctx.Close()
			v.fail(err)
			return err
		}
	}
	v.ctx = ctx
	v.state = Running
	return nil
}

func (v *VM) fail(err error) {
	v.state = Failed
	v.FailReason = err
	v.releaseCaps()
}

func (v *VM) releaseCaps() {
	for _, c := range v.caps {
		v.nm.Release(c.ID)
	}
	v.caps = nil
}

// Stop tears down a running VM, killing its tasks and returning all
// capability-backed resources to the node.
func (v *VM) Stop() error {
	if v.state != Running {
		return fmt.Errorf("%w: stop in %v", ErrWrongState, v.state)
	}
	v.ctx.Close()
	v.ctx = nil
	v.releaseCaps()
	v.state = Stopped
	return nil
}

// Ctx returns the live enforcement context, or an error when not running.
// Callers use it for the Unix-style API surface: RunTask, OpenPort,
// WriteDisk, OpenFD, AllowSend.
func (v *VM) Ctx() (*silk.Context, error) {
	if v.state != Running {
		return nil, ErrNoCtx
	}
	return v.ctx, nil
}

// Exec runs coreSeconds of CPU work in the VM.
func (v *VM) Exec(name string, coreSeconds float64, onDone func()) (*sim.FluidConsumer, error) {
	ctx, err := v.Ctx()
	if err != nil {
		return nil, err
	}
	return ctx.RunTask(name, coreSeconds, onDone)
}

// Slice is a service's distributed set of VMs — its points of presence.
type Slice struct {
	Name string
	vms  map[string]*VM // node name -> VM
}

// NewSlice returns an empty slice.
func NewSlice(name string) *Slice {
	return &Slice{Name: name, vms: make(map[string]*VM)}
}

// Add registers a VM under its node's name. One VM per node per slice,
// matching PlanetLab's model.
func (s *Slice) Add(v *VM) error {
	if _, dup := s.vms[v.Node.Name]; dup {
		return fmt.Errorf("vm: slice %q already has a VM on %q", s.Name, v.Node.Name)
	}
	s.vms[v.Node.Name] = v
	return nil
}

// VM returns the slice's VM on a node, or nil.
func (s *Slice) VM(node string) *VM { return s.vms[node] }

// Len returns the number of VMs in the slice.
func (s *Slice) Len() int { return len(s.vms) }

// StartAll starts every VM, returning the first error but attempting all.
func (s *Slice) StartAll() error {
	var first error
	for _, v := range s.vms {
		if err := v.Start(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// StopAll stops every running VM.
func (s *Slice) StopAll() {
	for _, v := range s.vms {
		if v.State() == Running {
			v.Stop()
		}
	}
}

// Running counts VMs currently in the Running state.
func (s *Slice) Running() int {
	n := 0
	for _, v := range s.vms {
		if v.State() == Running {
			n++
		}
	}
	return n
}
