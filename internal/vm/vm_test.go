package vm

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/capability"
	"repro/internal/silk"
	"repro/internal/sim"
)

const hour = time.Hour

type fixture struct {
	eng  *sim.Engine
	node *silk.Node
	nm   *capability.NodeManager
}

func newFixture() *fixture {
	eng := sim.NewEngine(1)
	node := silk.NewNode(eng, "n1", silk.NodeSpec{Cores: 2, MemBytes: 1000, DiskBytes: 1000, NetBps: 1000, MaxFDs: 64})
	nm := capability.NewNodeManager("n1", eng, rand.New(rand.NewSource(2)), map[capability.ResourceType]float64{
		capability.CPU: 2, capability.Network: 1000, capability.Memory: 1000, capability.Disk: 1000,
	})
	return &fixture{eng: eng, node: node, nm: nm}
}

func (f *fixture) mint(t *testing.T, req capability.MintRequest) *capability.Capability {
	t.Helper()
	if req.NotAfter == 0 {
		req.NotAfter = hour
	}
	c, err := f.nm.Mint(req)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestVMLifecycle(t *testing.T) {
	f := newFixture()
	v := New("svc", f.node, f.nm)
	if v.State() != Created {
		t.Fatalf("state = %v", v.State())
	}
	cpu := f.mint(t, capability.MintRequest{Type: capability.CPU, Amount: 1, Dedicated: true})
	if err := v.Bind(cpu.ID); err != nil {
		t.Fatal(err)
	}
	if err := v.Start(); err != nil {
		t.Fatal(err)
	}
	if v.State() != Running {
		t.Fatalf("state = %v", v.State())
	}
	var done time.Duration
	if _, err := v.Exec("t", 5, func() { done = f.eng.Now() }); err != nil {
		t.Fatal(err)
	}
	f.eng.Run()
	// 1 dedicated core → 5 core-seconds take 5s.
	if done != 5*time.Second {
		t.Errorf("task done at %v, want 5s", done)
	}
	if err := v.Stop(); err != nil {
		t.Fatal(err)
	}
	if v.State() != Stopped {
		t.Errorf("state = %v", v.State())
	}
}

func TestBindAfterStartRejected(t *testing.T) {
	f := newFixture()
	v := New("svc", f.node, f.nm)
	v.Start()
	c := f.mint(t, capability.MintRequest{Type: capability.Memory, Amount: 10})
	if err := v.Bind(c.ID); !errors.Is(err, ErrWrongState) {
		t.Errorf("bind after start: %v", err)
	}
}

func TestBindForgedCapability(t *testing.T) {
	f := newFixture()
	v := New("svc", f.node, f.nm)
	var forged capability.ID
	if err := v.Bind(forged); !errors.Is(err, capability.ErrUnknownCapability) {
		t.Errorf("forged bind: %v", err)
	}
}

func TestBindWrongNode(t *testing.T) {
	f := newFixture()
	otherNM := capability.NewNodeManager("n2", f.eng, rand.New(rand.NewSource(3)), nil)
	v := New("svc", f.node, otherNM)
	c, err := otherNM.Mint(capability.MintRequest{Type: capability.Memory, Amount: 10, NotAfter: hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Bind(c.ID); err == nil {
		t.Error("cross-node capability accepted")
	}
}

func TestCapabilityBindsOnceAcrossVMs(t *testing.T) {
	f := newFixture()
	c := f.mint(t, capability.MintRequest{Type: capability.Memory, Amount: 10})
	v1 := New("a", f.node, f.nm)
	v2 := New("b", f.node, f.nm)
	if err := v1.Bind(c.ID); err != nil {
		t.Fatal(err)
	}
	if err := v2.Bind(c.ID); !errors.Is(err, capability.ErrAlreadyBound) {
		t.Errorf("double bind across VMs: %v", err)
	}
}

func TestPortConflictFailsStart(t *testing.T) {
	f := newFixture()
	p1 := f.mint(t, capability.MintRequest{Type: capability.Port, PortNum: 80})
	v1 := New("a", f.node, f.nm)
	v1.Bind(p1.ID)
	if err := v1.Start(); err != nil {
		t.Fatal(err)
	}
	// The node manager refuses to mint port 80 again (FCFS at mint time).
	if _, err := f.nm.Mint(capability.MintRequest{Type: capability.Port, PortNum: 80, NotAfter: hour}); !errors.Is(err, capability.ErrPortTaken) {
		t.Fatalf("second mint: %v", err)
	}
	// Stop releases the port for re-minting.
	v1.Stop()
	if _, err := f.nm.Mint(capability.MintRequest{Type: capability.Port, PortNum: 80, NotAfter: hour}); err != nil {
		t.Errorf("mint after stop: %v", err)
	}
}

func TestStartFailureReleasesCapabilities(t *testing.T) {
	f := newFixture()
	// Occupy all node memory directly so Start's context creation fails.
	blocker, err := f.node.NewContext("blocker", silk.ContextSpec{MemBytes: 1000})
	if err != nil {
		t.Fatal(err)
	}
	_ = blocker
	mem := f.mint(t, capability.MintRequest{Type: capability.Memory, Amount: 500})
	v := New("svc", f.node, f.nm)
	v.Bind(mem.ID)
	if err := v.Start(); err == nil {
		t.Fatal("start succeeded with node memory exhausted")
	}
	if v.State() != Failed || v.FailReason == nil {
		t.Errorf("state=%v reason=%v", v.State(), v.FailReason)
	}
	// The capability's dedicated amount must be back in the pool.
	if got := f.nm.Available(capability.Memory); got != 1000 {
		t.Errorf("Available(Memory) = %v, want 1000", got)
	}
}

func TestEnvelopeAccumulation(t *testing.T) {
	f := newFixture()
	v := New("svc", f.node, f.nm)
	v.Bind(f.mint(t, capability.MintRequest{Type: capability.CPU, Amount: 0.5, Dedicated: true}).ID)
	v.Bind(f.mint(t, capability.MintRequest{Type: capability.CPU, Amount: 0.5, Dedicated: true}).ID)
	v.Bind(f.mint(t, capability.MintRequest{Type: capability.Disk, Amount: 300}).ID)
	v.Bind(f.mint(t, capability.MintRequest{Type: capability.FileDescriptors, Amount: 8}).ID)
	if err := v.Start(); err != nil {
		t.Fatal(err)
	}
	ctx, err := v.Ctx()
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Spec.DedicatedCores != 1.0 {
		t.Errorf("DedicatedCores = %v, want 1.0", ctx.Spec.DedicatedCores)
	}
	if ctx.Spec.DiskBytes != 300 || ctx.Spec.MaxFDs != 8 {
		t.Errorf("spec = %+v", ctx.Spec)
	}
	// Disk quota enforced from capability.
	if err := ctx.WriteDisk(301); !errors.Is(err, silk.ErrDiskQuota) {
		t.Errorf("quota: %v", err)
	}
}

func TestExecBeforeStart(t *testing.T) {
	f := newFixture()
	v := New("svc", f.node, f.nm)
	if _, err := v.Exec("t", 1, nil); !errors.Is(err, ErrNoCtx) {
		t.Errorf("exec before start: %v", err)
	}
}

func TestStopKillsTasks(t *testing.T) {
	f := newFixture()
	v := New("svc", f.node, f.nm)
	v.Start()
	fired := false
	v.Exec("t", 1000, func() { fired = true })
	f.eng.Schedule(time.Second, func() { v.Stop() })
	f.eng.Run()
	if fired {
		t.Error("task survived Stop")
	}
}

func TestDoubleStartStop(t *testing.T) {
	f := newFixture()
	v := New("svc", f.node, f.nm)
	if err := v.Start(); err != nil {
		t.Fatal(err)
	}
	if err := v.Start(); !errors.Is(err, ErrWrongState) {
		t.Errorf("double start: %v", err)
	}
	v.Stop()
	if err := v.Stop(); !errors.Is(err, ErrWrongState) {
		t.Errorf("double stop: %v", err)
	}
}

func TestSlice(t *testing.T) {
	f := newFixture()
	node2 := silk.NewNode(f.eng, "n2", silk.NodeSpec{Cores: 2, MemBytes: 1000, DiskBytes: 1000, NetBps: 1000, MaxFDs: 64})
	nm2 := capability.NewNodeManager("n2", f.eng, rand.New(rand.NewSource(4)), nil)

	s := NewSlice("cdn")
	v1 := New("cdn@n1", f.node, f.nm)
	v2 := New("cdn@n2", node2, nm2)
	if err := s.Add(v1); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(v2); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(New("dup", f.node, f.nm)); err == nil {
		t.Error("duplicate node in slice accepted")
	}
	if err := s.StartAll(); err != nil {
		t.Fatal(err)
	}
	if s.Running() != 2 || s.Len() != 2 {
		t.Errorf("Running=%d Len=%d", s.Running(), s.Len())
	}
	if s.VM("n1") != v1 || s.VM("nope") != nil {
		t.Error("VM lookup wrong")
	}
	s.StopAll()
	if s.Running() != 0 {
		t.Errorf("Running=%d after StopAll", s.Running())
	}
}

func TestSliceStartAllReportsFirstError(t *testing.T) {
	f := newFixture()
	// Exhaust node memory so the VM with a memory cap fails.
	f.node.NewContext("blocker", silk.ContextSpec{MemBytes: 1000})
	s := NewSlice("svc")
	bad := New("bad", f.node, f.nm)
	bad.Bind(f.mint(t, capability.MintRequest{Type: capability.Memory, Amount: 500}).ID)
	s.Add(bad)
	if err := s.StartAll(); err == nil {
		t.Error("StartAll swallowed failure")
	}
}

func TestStateString(t *testing.T) {
	if Created.String() != "created" || Failed.String() != "failed" {
		t.Error("state names wrong")
	}
	if State(9).String() == "" {
		t.Error("unknown state empty")
	}
}
