package silk

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
)

func newNode(t *testing.T) (*sim.Engine, *Node) {
	t.Helper()
	eng := sim.NewEngine(1)
	n := NewNode(eng, "n1", NodeSpec{Cores: 2, MemBytes: 1000, DiskBytes: 1000, NetBps: 1000, MaxFDs: 4})
	return eng, n
}

func TestFairShareCPU(t *testing.T) {
	eng, n := newNode(t)
	c1, err := n.NewContext("vm1", ContextSpec{CPUShares: 1})
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := n.NewContext("vm2", ContextSpec{CPUShares: 1})
	var d1, d2 time.Duration
	c1.RunTask("t", 2, func() { d1 = eng.Now() }) // 2 core-seconds
	c2.RunTask("t", 2, func() { d2 = eng.Now() })
	eng.Run()
	// 2 cores split evenly: each gets 1 core → 2s each.
	if d1 != 2*time.Second || d2 != 2*time.Second {
		t.Errorf("completions %v %v, want 2s both", d1, d2)
	}
	if c1.CPUUsed() != 2 {
		t.Errorf("CPUUsed = %v, want 2", c1.CPUUsed())
	}
}

func TestWeightedShares(t *testing.T) {
	eng, n := newNode(t)
	heavy, _ := n.NewContext("heavy", ContextSpec{CPUShares: 3})
	light, _ := n.NewContext("light", ContextSpec{CPUShares: 1})
	var dh, dl time.Duration
	heavy.RunTask("t", 3, func() { dh = eng.Now() })
	light.RunTask("t", 3, func() { dl = eng.Now() })
	eng.Run()
	// heavy: 1.5 cores → 2s. light: 0.5 cores for 2s (1 cs), then 2 cores → +1s = 3s.
	if dh != 2*time.Second {
		t.Errorf("heavy at %v, want 2s", dh)
	}
	if dl != 3*time.Second {
		t.Errorf("light at %v, want 3s", dl)
	}
}

func TestDedicatedCPUIsolation(t *testing.T) {
	eng, n := newNode(t)
	ded, err := n.NewContext("ded", ContextSpec{DedicatedCores: 1})
	if err != nil {
		t.Fatal(err)
	}
	fair, _ := n.NewContext("fair", ContextSpec{CPUShares: 1})
	var dd, df time.Duration
	ded.RunTask("t", 5, func() { dd = eng.Now() })
	fair.RunTask("t", 5, func() { df = eng.Now() })
	eng.Run()
	// Dedicated: exactly 1 core → 5s regardless of the other context.
	if dd != 5*time.Second {
		t.Errorf("dedicated at %v, want 5s", dd)
	}
	// Fair context has the remaining 1 core to itself → 5s too.
	if df != 5*time.Second {
		t.Errorf("fair at %v, want 5s", df)
	}
}

func TestDedicatedAdmissionControl(t *testing.T) {
	_, n := newNode(t)
	if _, err := n.NewContext("a", ContextSpec{DedicatedCores: 1.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.NewContext("b", ContextSpec{DedicatedCores: 1}); !errors.Is(err, ErrCPUOverCommit) {
		t.Errorf("overcommit: %v", err)
	}
	if _, err := n.NewContext("c", ContextSpec{DedicatedCores: 0.5}); err != nil {
		t.Errorf("exact fit: %v", err)
	}
}

func TestDedicatedNetAdmission(t *testing.T) {
	_, n := newNode(t)
	if _, err := n.NewContext("a", ContextSpec{DedicatedNetBps: 800}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.NewContext("b", ContextSpec{DedicatedNetBps: 300}); !errors.Is(err, ErrNetOverCommit) {
		t.Errorf("net overcommit: %v", err)
	}
}

func TestMemoryAdmission(t *testing.T) {
	_, n := newNode(t)
	if _, err := n.NewContext("a", ContextSpec{MemBytes: 800}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.NewContext("b", ContextSpec{MemBytes: 300}); !errors.Is(err, ErrMemoryLimit) {
		t.Errorf("mem overcommit: %v", err)
	}
}

func TestContextCloseReleasesResources(t *testing.T) {
	eng, n := newNode(t)
	c, _ := n.NewContext("a", ContextSpec{DedicatedCores: 1.5, MemBytes: 800, DedicatedNetBps: 800})
	if err := c.OpenPort(80); err != nil {
		t.Fatal(err)
	}
	fired := false
	c.RunTask("t", 100, func() { fired = true })
	c.Close()
	eng.Run()
	if fired {
		t.Error("task completed after Close")
	}
	if c.OpenPort(81) == nil {
		t.Error("OpenPort on closed context succeeded")
	}
	// Everything is reusable now.
	c2, err := n.NewContext("b", ContextSpec{DedicatedCores: 1.5, MemBytes: 800, DedicatedNetBps: 800})
	if err != nil {
		t.Fatalf("resources not released: %v", err)
	}
	if err := c2.OpenPort(80); err != nil {
		t.Errorf("port not released: %v", err)
	}
	c.Close() // idempotent
}

func TestPortsFCFS(t *testing.T) {
	_, n := newNode(t)
	a, _ := n.NewContext("a", ContextSpec{})
	b, _ := n.NewContext("b", ContextSpec{})
	if err := a.OpenPort(80); err != nil {
		t.Fatal(err)
	}
	if err := b.OpenPort(80); !errors.Is(err, ErrPortInUse) {
		t.Fatalf("second bind: %v", err)
	}
	if b.ConflictN != 1 {
		t.Errorf("ConflictN = %d, want 1", b.ConflictN)
	}
	if err := a.ClosePort(80); err != nil {
		t.Fatal(err)
	}
	if err := b.OpenPort(80); err != nil {
		t.Errorf("bind after release: %v", err)
	}
	if err := a.ClosePort(80); !errors.Is(err, ErrPortNotOwned) {
		t.Errorf("close unowned: %v", err)
	}
	if n.PortsInUse() != 1 {
		t.Errorf("PortsInUse = %d", n.PortsInUse())
	}
}

func TestDiskQuota(t *testing.T) {
	_, n := newNode(t)
	c, _ := n.NewContext("a", ContextSpec{DiskBytes: 100})
	if err := c.WriteDisk(60); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteDisk(60); !errors.Is(err, ErrDiskQuota) {
		t.Errorf("quota: %v", err)
	}
	c.FreeDisk(30)
	if err := c.WriteDisk(60); err != nil {
		t.Errorf("after free: %v", err)
	}
	if got := c.DiskUsed(); got != 90 {
		t.Errorf("DiskUsed = %v, want 90", got)
	}
	// Over-free clamps to zero.
	c.FreeDisk(1e9)
	if c.DiskUsed() != 0 {
		t.Errorf("DiskUsed after over-free = %v", c.DiskUsed())
	}
}

func TestNodeDiskExhaustion(t *testing.T) {
	_, n := newNode(t) // node disk 1000
	a, _ := n.NewContext("a", ContextSpec{})
	b, _ := n.NewContext("b", ContextSpec{})
	if err := a.WriteDisk(900); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteDisk(200); !errors.Is(err, ErrDiskQuota) {
		t.Errorf("node-level exhaustion: %v", err)
	}
}

func TestFDLimit(t *testing.T) {
	_, n := newNode(t)
	c, _ := n.NewContext("a", ContextSpec{MaxFDs: 2})
	if err := c.OpenFD(); err != nil {
		t.Fatal(err)
	}
	if err := c.OpenFD(); err != nil {
		t.Fatal(err)
	}
	if err := c.OpenFD(); !errors.Is(err, ErrFDLimit) {
		t.Errorf("fd limit: %v", err)
	}
	c.CloseFD()
	if err := c.OpenFD(); err != nil {
		t.Errorf("after close: %v", err)
	}
}

func TestFDDefaultFromNode(t *testing.T) {
	_, n := newNode(t) // MaxFDs 4
	c, _ := n.NewContext("a", ContextSpec{})
	for i := 0; i < 4; i++ {
		if err := c.OpenFD(); err != nil {
			t.Fatalf("fd %d: %v", i, err)
		}
	}
	if err := c.OpenFD(); !errors.Is(err, ErrFDLimit) {
		t.Errorf("default limit: %v", err)
	}
}

func TestKillTask(t *testing.T) {
	eng, n := newNode(t)
	c, _ := n.NewContext("a", ContextSpec{})
	fired := false
	task, _ := c.RunTask("t", 100, func() { fired = true })
	eng.Schedule(time.Second, func() { c.KillTask(task) })
	eng.Run()
	if fired {
		t.Error("killed task completed")
	}
}

func TestRunTaskOnClosedContext(t *testing.T) {
	_, n := newNode(t)
	c, _ := n.NewContext("a", ContextSpec{})
	c.Close()
	if _, err := c.RunTask("t", 1, nil); !errors.Is(err, ErrContextClosed) {
		t.Errorf("closed: %v", err)
	}
}

func TestTokenBucket(t *testing.T) {
	eng := sim.NewEngine(1)
	b := NewTokenBucket(eng, 100, 50) // 100 B/s, 50 burst
	if !b.Take(50) {
		t.Fatal("full bucket refused burst")
	}
	if b.Take(1) {
		t.Fatal("empty bucket granted")
	}
	if w := b.Wait(10); w != 100*time.Millisecond {
		t.Errorf("Wait(10) = %v, want 100ms", w)
	}
	eng.RunUntil(100 * time.Millisecond)
	if !b.Take(10) {
		t.Error("refilled bucket refused")
	}
	// Refill caps at burst.
	eng.RunUntil(10 * time.Second)
	if b.Take(51) {
		t.Error("bucket exceeded burst capacity")
	}
	if !b.Take(50) {
		t.Error("bucket below burst after long idle")
	}
}

func TestContextTokenBucketPolicing(t *testing.T) {
	eng, n := newNode(t)
	c, _ := n.NewContext("a", ContextSpec{NetRateBps: 100})
	if c.NetRateBps() != 100 {
		t.Errorf("NetRateBps = %v", c.NetRateBps())
	}
	// Burst is rate/4 = 25 bytes.
	if !c.AllowSend(25) {
		t.Fatal("burst refused")
	}
	if c.AllowSend(25) {
		t.Fatal("post-burst granted")
	}
	if w := c.SendWait(25); w != 250*time.Millisecond {
		t.Errorf("SendWait = %v, want 250ms", w)
	}
	eng.RunUntil(250 * time.Millisecond)
	if !c.AllowSend(25) {
		t.Error("after refill refused")
	}
}

func TestUncappedContextAllowsAll(t *testing.T) {
	_, n := newNode(t)
	c, _ := n.NewContext("a", ContextSpec{})
	if !c.AllowSend(1e12) || c.SendWait(1e12) != 0 {
		t.Error("uncapped context policed")
	}
}

func TestDedicatedNetCapsRate(t *testing.T) {
	_, n := newNode(t)
	c, _ := n.NewContext("a", ContextSpec{DedicatedNetBps: 500})
	if c.NetRateBps() != 500 {
		t.Errorf("dedicated net rate = %v, want 500", c.NetRateBps())
	}
}

func TestDefaultPlanetLabNode(t *testing.T) {
	s := DefaultPlanetLabNode()
	if s.Cores <= 0 || s.NetBps <= 0 || s.MaxFDs <= 0 {
		t.Errorf("bad default spec %+v", s)
	}
}
