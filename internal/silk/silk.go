// Package silk models the OS-level resource-control layer PlanetLab relies
// on ("SILK, a Linux kernel module, is the OS-level mechanism that
// supports and enforces capabilities" — Bavier et al.). It provides, per
// node, the fine-grained controls the paper enumerates for capabilities:
// "fair-share or dedicated use for CPU, network, memory, disk, network
// ports, file descriptors".
//
// A Node owns the physical resources; a Context is the enforcement domain
// of one virtual machine on the node. CPU is scheduled with weighted
// proportional sharing (the fluid analogue of stride/lottery scheduling,
// cf. resource containers [Banga et al. 1999] and Scout); network egress
// is policed by a token bucket; disk and memory are quota-counted; ports
// and file descriptors are exclusive integer resources allocated
// first-come-first-served — which is exactly the behaviour E6 measures
// ("resources that cannot be shared (e.g., network ports) are allocated
// on a first-come-first-served basis").
package silk

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/sim"
)

// Enforcement errors.
var (
	ErrPortInUse     = errors.New("silk: port already bound")
	ErrPortNotOwned  = errors.New("silk: port not owned by this context")
	ErrDiskQuota     = errors.New("silk: disk quota exceeded")
	ErrMemoryLimit   = errors.New("silk: memory limit exceeded")
	ErrFDLimit       = errors.New("silk: file descriptor limit exceeded")
	ErrCPUOverCommit = errors.New("silk: dedicated CPU exceeds node capacity")
	ErrNetOverCommit = errors.New("silk: dedicated bandwidth exceeds node capacity")
	ErrContextClosed = errors.New("silk: context closed")
)

// NodeSpec describes a node's physical resources.
type NodeSpec struct {
	Cores     float64 // CPU capacity in core-seconds per second
	MemBytes  float64
	DiskBytes float64
	NetBps    float64 // egress capacity policed by token buckets
	MaxFDs    int     // per-context default FD limit
}

// DefaultPlanetLabNode mirrors the era's standard PlanetLab hardware:
// "Intel-based desktop and server configurations".
func DefaultPlanetLabNode() NodeSpec {
	return NodeSpec{
		Cores:     2,
		MemBytes:  2 << 30,  // 2 GiB
		DiskBytes: 80 << 30, // 80 GB
		NetBps:    12.5e6,   // 100 Mb/s
		MaxFDs:    1024,
	}
}

// Node is one machine's enforcement state.
type Node struct {
	Name string
	Spec NodeSpec

	eng      *sim.Engine
	cpu      *sim.FluidSystem
	shared   *sim.FluidResource // CPU left after dedicated carve-outs
	ports    map[int]*Context
	memUsed  float64
	diskUsed float64

	dedicatedCPU float64
	dedicatedNet float64
	contexts     map[*Context]struct{}
}

// NewNode creates a node with the given spec.
func NewNode(eng *sim.Engine, name string, spec NodeSpec) *Node {
	n := &Node{
		Name:     name,
		Spec:     spec,
		eng:      eng,
		cpu:      sim.NewFluidSystem(eng),
		ports:    make(map[int]*Context),
		contexts: make(map[*Context]struct{}),
	}
	n.shared = n.cpu.NewResource(name+"/cpu", spec.Cores)
	return n
}

// ContextSpec is the resource envelope for one VM's context.
type ContextSpec struct {
	// CPUShares weights fair-share CPU (default 1).
	CPUShares float64
	// DedicatedCores, when > 0, carves a guaranteed CPU slice out of the
	// node; the context's tasks then run against that slice alone.
	DedicatedCores float64
	// NetRateBps caps egress via a token bucket; 0 inherits a fair share
	// of the node (spec.NetBps / #contexts recomputed lazily is avoided:
	// 0 simply means uncapped by silk, capped by access links in simnet).
	NetRateBps float64
	// DedicatedNetBps reserves guaranteed egress (admission-controlled).
	DedicatedNetBps float64
	MemBytes        float64
	DiskBytes       float64
	MaxFDs          int // 0 -> node default
}

// Context is a VM's enforcement domain on a node.
type Context struct {
	Name string
	Spec ContextSpec

	node      *Node
	cpuSlice  *sim.FluidResource // non-nil when dedicated
	bucket    *TokenBucket
	memUsed   float64
	diskUsed  float64
	fdsUsed   int
	ports     []int
	closed    bool
	cpuUsed   float64 // accumulated core-seconds, for accounting
	running   map[*sim.FluidConsumer]struct{}
	ConflictN int // port-conflict count, for E6 accounting
}

// NewContext admission-controls and creates an enforcement context.
func (n *Node) NewContext(name string, spec ContextSpec) (*Context, error) {
	if spec.CPUShares <= 0 {
		spec.CPUShares = 1
	}
	if spec.MaxFDs == 0 {
		spec.MaxFDs = n.Spec.MaxFDs
	}
	if spec.DedicatedCores > 0 && n.dedicatedCPU+spec.DedicatedCores > n.Spec.Cores {
		return nil, fmt.Errorf("%w: want %.2f, free %.2f", ErrCPUOverCommit,
			spec.DedicatedCores, n.Spec.Cores-n.dedicatedCPU)
	}
	if spec.DedicatedNetBps > 0 && n.dedicatedNet+spec.DedicatedNetBps > n.Spec.NetBps {
		return nil, fmt.Errorf("%w: want %.0f, free %.0f", ErrNetOverCommit,
			spec.DedicatedNetBps, n.Spec.NetBps-n.dedicatedNet)
	}
	if spec.MemBytes > 0 && n.memUsed+spec.MemBytes > n.Spec.MemBytes {
		return nil, fmt.Errorf("%w: want %.0f, free %.0f", ErrMemoryLimit,
			spec.MemBytes, n.Spec.MemBytes-n.memUsed)
	}
	c := &Context{Name: name, Spec: spec, node: n, running: make(map[*sim.FluidConsumer]struct{})}
	if spec.DedicatedCores > 0 {
		n.dedicatedCPU += spec.DedicatedCores
		n.shared.SetCapacity(n.Spec.Cores - n.dedicatedCPU)
		c.cpuSlice = n.cpu.NewResource(n.Name+"/"+name+"/cpu", spec.DedicatedCores)
	}
	if spec.DedicatedNetBps > 0 {
		n.dedicatedNet += spec.DedicatedNetBps
	}
	rate := spec.NetRateBps
	if spec.DedicatedNetBps > 0 && (rate == 0 || rate > spec.DedicatedNetBps) {
		rate = spec.DedicatedNetBps
	}
	if rate > 0 {
		c.bucket = NewTokenBucket(n.eng, rate, rate/4) // 250ms burst
	}
	if spec.MemBytes > 0 {
		n.memUsed += spec.MemBytes
	}
	n.contexts[c] = struct{}{}
	return c, nil
}

// Close tears the context down, releasing every held resource.
func (c *Context) Close() {
	if c.closed {
		return
	}
	c.closed = true
	for _, p := range c.ports {
		delete(c.node.ports, p)
	}
	c.ports = nil
	for t := range c.running {
		c.node.cpu.Remove(t)
	}
	c.running = nil
	if c.cpuSlice != nil {
		c.cpuSlice.SetCapacity(0)
		c.node.dedicatedCPU -= c.Spec.DedicatedCores
		c.node.shared.SetCapacity(c.node.Spec.Cores - c.node.dedicatedCPU)
	}
	if c.Spec.DedicatedNetBps > 0 {
		c.node.dedicatedNet -= c.Spec.DedicatedNetBps
	}
	if c.Spec.MemBytes > 0 {
		c.node.memUsed -= c.Spec.MemBytes
	}
	c.node.diskUsed -= c.diskUsed
	c.diskUsed = 0
	delete(c.node.contexts, c)
}

// Closed reports whether the context has been torn down.
func (c *Context) Closed() bool { return c.closed }

// RunTask executes coreSeconds of CPU work under the context's scheduling
// class and invokes onDone at completion. Fair-share tasks compete on the
// node's shared CPU weighted by CPUShares; dedicated contexts run on their
// carved-out slice.
func (c *Context) RunTask(name string, coreSeconds float64, onDone func()) (*sim.FluidConsumer, error) {
	if c.closed {
		return nil, ErrContextClosed
	}
	res := c.node.shared
	if c.cpuSlice != nil {
		res = c.cpuSlice
	}
	var t *sim.FluidConsumer
	t = &sim.FluidConsumer{
		Name:   c.Name + "/" + name,
		Weight: c.Spec.CPUShares,
		OnDone: func() {
			delete(c.running, t)
			c.cpuUsed += coreSeconds
			if onDone != nil {
				onDone()
			}
		},
	}
	c.node.cpu.Add(t, coreSeconds, res)
	c.running[t] = struct{}{}
	return t, nil
}

// KillTask aborts a running task without its completion callback.
func (c *Context) KillTask(t *sim.FluidConsumer) {
	if _, ok := c.running[t]; ok {
		c.node.cpu.Remove(t)
		delete(c.running, t)
	}
}

// CPUUsed returns accumulated core-seconds of completed work.
func (c *Context) CPUUsed() float64 { return c.cpuUsed }

// OpenPort binds a TCP/UDP port exclusively, first-come-first-served.
func (c *Context) OpenPort(port int) error {
	if c.closed {
		return ErrContextClosed
	}
	if owner, taken := c.node.ports[port]; taken {
		c.ConflictN++
		return fmt.Errorf("%w: %d held by %s", ErrPortInUse, port, owner.Name)
	}
	c.node.ports[port] = c
	c.ports = append(c.ports, port)
	return nil
}

// ClosePort releases a port the context owns.
func (c *Context) ClosePort(port int) error {
	if c.node.ports[port] != c {
		return fmt.Errorf("%w: %d", ErrPortNotOwned, port)
	}
	delete(c.node.ports, port)
	for i, p := range c.ports {
		if p == port {
			c.ports = append(c.ports[:i], c.ports[i+1:]...)
			break
		}
	}
	return nil
}

// WriteDisk charges bytes against the context quota and node disk.
func (c *Context) WriteDisk(bytes float64) error {
	if c.closed {
		return ErrContextClosed
	}
	if c.Spec.DiskBytes > 0 && c.diskUsed+bytes > c.Spec.DiskBytes {
		return fmt.Errorf("%w: used %.0f + %.0f > quota %.0f", ErrDiskQuota, c.diskUsed, bytes, c.Spec.DiskBytes)
	}
	if c.node.diskUsed+bytes > c.node.Spec.DiskBytes {
		return fmt.Errorf("%w: node disk full", ErrDiskQuota)
	}
	c.diskUsed += bytes
	c.node.diskUsed += bytes
	return nil
}

// FreeDisk releases previously written bytes.
func (c *Context) FreeDisk(bytes float64) {
	if bytes > c.diskUsed {
		bytes = c.diskUsed
	}
	c.diskUsed -= bytes
	c.node.diskUsed -= bytes
}

// DiskUsed returns the context's current disk usage.
func (c *Context) DiskUsed() float64 { return c.diskUsed }

// OpenFD allocates a file descriptor slot.
func (c *Context) OpenFD() error {
	if c.closed {
		return ErrContextClosed
	}
	if c.fdsUsed >= c.Spec.MaxFDs {
		return fmt.Errorf("%w: %d", ErrFDLimit, c.Spec.MaxFDs)
	}
	c.fdsUsed++
	return nil
}

// CloseFD releases a descriptor slot.
func (c *Context) CloseFD() {
	if c.fdsUsed > 0 {
		c.fdsUsed--
	}
}

// AllowSend polices egress through the context's token bucket; with no
// bucket configured it always admits. It returns false when the send must
// be delayed (callers typically retry after WaitTime).
func (c *Context) AllowSend(bytes float64) bool {
	if c.bucket == nil {
		return true
	}
	return c.bucket.Take(bytes)
}

// SendWait returns how long until bytes would be admitted.
func (c *Context) SendWait(bytes float64) time.Duration {
	if c.bucket == nil {
		return 0
	}
	return c.bucket.Wait(bytes)
}

// NetRateBps returns the context's policed egress rate (0 = uncapped),
// used by upper layers as the flow rate limit.
func (c *Context) NetRateBps() float64 {
	if c.bucket == nil {
		return 0
	}
	return c.bucket.rate
}

// Contexts returns the number of live contexts on the node.
func (n *Node) Contexts() int { return len(n.contexts) }

// ContextList returns the live contexts sorted by name, for deterministic
// audits of the node's enforcement state.
func (n *Node) ContextList() []*Context {
	out := make([]*Context, 0, len(n.contexts))
	for c := range n.contexts {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PortsInUse returns the number of bound ports on the node.
func (n *Node) PortsInUse() int { return len(n.ports) }

// PortBindings returns the node's port table as port -> owning context
// name (the kernel-side view invariant checkers cross-examine against the
// per-context port lists).
func (n *Node) PortBindings() map[int]string {
	out := make(map[int]string, len(n.ports))
	for p, c := range n.ports {
		out[p] = c.Name
	}
	return out
}

// Ports returns a copy of the ports the context currently holds.
func (c *Context) Ports() []int {
	out := make([]int, len(c.ports))
	copy(out, c.ports)
	return out
}

// TokenBucket is a classic token bucket in virtual time.
type TokenBucket struct {
	eng    *sim.Engine
	rate   float64 // tokens (bytes) per second
	burst  float64
	tokens float64
	last   time.Duration
}

// NewTokenBucket returns a full bucket with the given rate and burst.
func NewTokenBucket(eng *sim.Engine, rate, burst float64) *TokenBucket {
	if rate <= 0 || burst <= 0 {
		panic(fmt.Sprintf("silk: token bucket rate %v burst %v must be positive", rate, burst))
	}
	return &TokenBucket{eng: eng, rate: rate, burst: burst, tokens: burst, last: eng.Now()}
}

func (b *TokenBucket) refill() {
	now := b.eng.Now()
	b.tokens += b.rate * (now - b.last).Seconds()
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
}

// Take consumes n tokens if available, reporting success.
func (b *TokenBucket) Take(n float64) bool {
	b.refill()
	if b.tokens >= n {
		b.tokens -= n
		return true
	}
	return false
}

// Wait returns the time until n tokens will be available (0 if now).
func (b *TokenBucket) Wait(n float64) time.Duration {
	b.refill()
	if b.tokens >= n {
		return 0
	}
	need := n - b.tokens
	return time.Duration(need / b.rate * float64(time.Second))
}
