// Package rsl implements the Globus Resource Specification Language, the
// job-description notation GRAM consumes ("The corresponding abstractions
// offered by the Globus Toolkit are the service (for GT3) or job (for GT2
// and GT3)"). It parses the classic RSL-1 syntax:
//
//	&(executable=/bin/sim)(count=4)(maxWallTime=3600)(queue=batch)
//
// including conjunctions (&), multi-requests (+) used by co-allocators
// like DUROC, relational operators (=, !=, <, <=, >, >=), quoted strings,
// value lists, and nested pair lists for environment bindings:
//
//	+(&(executable=a)(count=2))(&(executable=b)(count=4))
//	&(executable=/bin/x)(environment=(HOME /home/u)(TERM vt100))
//
// The parser reports errors with byte offsets, and Spec.String() renders a
// canonical form that reparses to an equivalent spec.
package rsl

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Op is a relational operator in an RSL relation.
type Op int

// The RSL relational operators.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

var opNames = [...]string{"=", "!=", "<", "<=", ">", ">="}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Value is a single RSL value: either a literal word/string, or a
// parenthesized list of values (as in environment pairs).
type Value struct {
	Literal string
	List    []Value
}

// IsList reports whether the value is a parenthesized list.
func (v Value) IsList() bool { return v.List != nil }

func (v Value) String() string {
	if !v.IsList() {
		return quoteIfNeeded(v.Literal)
	}
	parts := make([]string, len(v.List))
	for i, x := range v.List {
		parts[i] = x.String()
	}
	return "(" + strings.Join(parts, " ") + ")"
}

// Relation is one (attribute op values...) clause.
type Relation struct {
	Attr   string
	Op     Op
	Values []Value
}

func (r Relation) String() string {
	parts := make([]string, len(r.Values))
	for i, v := range r.Values {
		parts[i] = v.String()
	}
	return "(" + r.Attr + r.Op.String() + strings.Join(parts, " ") + ")"
}

// Request is a conjunction of relations describing one job.
type Request struct {
	Relations []Relation
}

// Spec is a parsed RSL specification: one request, or a multi-request.
type Spec struct {
	Multi    bool
	Requests []Request
}

// ErrParse wraps all syntax errors.
var ErrParse = errors.New("rsl: parse error")

// ErrMissing reports an absent required attribute.
var ErrMissing = errors.New("rsl: missing attribute")

// ErrType reports an attribute whose value has the wrong type.
var ErrType = errors.New("rsl: wrong value type")

func parseErr(pos int, format string, args ...any) error {
	return fmt.Errorf("%w at offset %d: %s", ErrParse, pos, fmt.Sprintf(format, args...))
}

// Parse parses an RSL string.
func Parse(src string) (*Spec, error) {
	p := &parser{src: src}
	p.skipSpace()
	var spec *Spec
	var err error
	switch {
	case p.peek() == '+':
		spec, err = p.parseMulti()
	case p.peek() == '&':
		var req Request
		req, err = p.parseConjunction()
		if err == nil {
			spec = &Spec{Requests: []Request{req}}
		}
	default:
		return nil, parseErr(p.pos, "expected '&' or '+', got %q", p.peekStr())
	}
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, parseErr(p.pos, "trailing input %q", p.peekStr())
	}
	return spec, nil
}

type parser struct {
	src string
	pos int
}

func (p *parser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) peekStr() string {
	end := p.pos + 8
	if end > len(p.src) {
		end = len(p.src)
	}
	if p.pos >= len(p.src) {
		return "<end>"
	}
	return p.src[p.pos:end]
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) expect(b byte) error {
	if p.peek() != b {
		return parseErr(p.pos, "expected %q, got %q", string(b), p.peekStr())
	}
	p.pos++
	return nil
}

func (p *parser) parseMulti() (*Spec, error) {
	if err := p.expect('+'); err != nil {
		return nil, err
	}
	spec := &Spec{Multi: true}
	for {
		p.skipSpace()
		if p.peek() != '(' {
			break
		}
		p.pos++
		p.skipSpace()
		req, err := p.parseConjunction()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		spec.Requests = append(spec.Requests, req)
	}
	if len(spec.Requests) == 0 {
		return nil, parseErr(p.pos, "multi-request with no sub-requests")
	}
	return spec, nil
}

func (p *parser) parseConjunction() (Request, error) {
	var req Request
	if err := p.expect('&'); err != nil {
		return req, err
	}
	for {
		p.skipSpace()
		if p.peek() != '(' {
			break
		}
		rel, err := p.parseRelation()
		if err != nil {
			return req, err
		}
		req.Relations = append(req.Relations, rel)
	}
	if len(req.Relations) == 0 {
		return req, parseErr(p.pos, "conjunction with no relations")
	}
	return req, nil
}

func (p *parser) parseRelation() (Relation, error) {
	var rel Relation
	if err := p.expect('('); err != nil {
		return rel, err
	}
	p.skipSpace()
	attr := p.word()
	if attr == "" {
		return rel, parseErr(p.pos, "expected attribute name")
	}
	rel.Attr = attr
	p.skipSpace()
	op, err := p.operator()
	if err != nil {
		return rel, err
	}
	rel.Op = op
	for {
		p.skipSpace()
		switch {
		case p.peek() == ')':
			p.pos++
			if len(rel.Values) == 0 {
				return rel, parseErr(p.pos, "relation %q has no value", attr)
			}
			return rel, nil
		case p.peek() == 0:
			return rel, parseErr(p.pos, "unterminated relation %q", attr)
		default:
			v, err := p.value()
			if err != nil {
				return rel, err
			}
			rel.Values = append(rel.Values, v)
		}
	}
}

func (p *parser) operator() (Op, error) {
	switch p.peek() {
	case '=':
		p.pos++
		return OpEq, nil
	case '!':
		p.pos++
		if err := p.expect('='); err != nil {
			return 0, err
		}
		return OpNe, nil
	case '<':
		p.pos++
		if p.peek() == '=' {
			p.pos++
			return OpLe, nil
		}
		return OpLt, nil
	case '>':
		p.pos++
		if p.peek() == '=' {
			p.pos++
			return OpGe, nil
		}
		return OpGt, nil
	}
	return 0, parseErr(p.pos, "expected operator, got %q", p.peekStr())
}

func (p *parser) value() (Value, error) {
	switch {
	case p.peek() == '(':
		p.pos++
		var list []Value
		for {
			p.skipSpace()
			if p.peek() == ')' {
				p.pos++
				return Value{List: ensureList(list)}, nil
			}
			if p.peek() == 0 {
				return Value{}, parseErr(p.pos, "unterminated list")
			}
			v, err := p.value()
			if err != nil {
				return Value{}, err
			}
			list = append(list, v)
		}
	case p.peek() == '"':
		return p.quoted()
	default:
		w := p.word()
		if w == "" {
			return Value{}, parseErr(p.pos, "expected value, got %q", p.peekStr())
		}
		return Value{Literal: w}, nil
	}
}

// ensureList keeps empty lists distinguishable from literals.
func ensureList(l []Value) []Value {
	if l == nil {
		return []Value{}
	}
	return l
}

func (p *parser) quoted() (Value, error) {
	start := p.pos
	p.pos++ // opening quote
	var sb strings.Builder
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '"' {
			// RSL escapes a quote by doubling it.
			if p.pos+1 < len(p.src) && p.src[p.pos+1] == '"' {
				sb.WriteByte('"')
				p.pos += 2
				continue
			}
			p.pos++
			return Value{Literal: sb.String()}, nil
		}
		sb.WriteByte(c)
		p.pos++
	}
	return Value{}, parseErr(start, "unterminated string")
}

func isWordByte(c byte) bool {
	switch c {
	case '(', ')', '=', '<', '>', '!', '"', ' ', '\t', '\n', '\r', '&', '+', 0:
		return false
	}
	return true
}

func (p *parser) word() string {
	start := p.pos
	for p.pos < len(p.src) && isWordByte(p.src[p.pos]) {
		p.pos++
	}
	return p.src[start:p.pos]
}

func quoteIfNeeded(s string) string {
	if s == "" {
		return `""`
	}
	for i := 0; i < len(s); i++ {
		if !isWordByte(s[i]) {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
	}
	return s
}

// String renders the canonical RSL form.
func (s *Spec) String() string {
	if s.Multi {
		var sb strings.Builder
		sb.WriteByte('+')
		for _, r := range s.Requests {
			sb.WriteByte('(')
			sb.WriteString(r.String())
			sb.WriteByte(')')
		}
		return sb.String()
	}
	return s.Requests[0].String()
}

// String renders one request's conjunction.
func (r Request) String() string {
	var sb strings.Builder
	sb.WriteByte('&')
	for _, rel := range r.Relations {
		sb.WriteString(rel.String())
	}
	return sb.String()
}

// Single returns the sole request of a non-multi spec.
func (s *Spec) Single() (Request, error) {
	if s.Multi || len(s.Requests) != 1 {
		return Request{}, fmt.Errorf("rsl: expected a single request, have %d (multi=%v)", len(s.Requests), s.Multi)
	}
	return s.Requests[0], nil
}

// Find returns the first relation for attr (case-insensitive, as GRAM
// treated attribute names), or false.
func (r Request) Find(attr string) (Relation, bool) {
	for _, rel := range r.Relations {
		if strings.EqualFold(rel.Attr, attr) {
			return rel, true
		}
	}
	return Relation{}, false
}

// String returns attr's single literal value.
func (r Request) String2(attr string) (string, error) {
	rel, ok := r.Find(attr)
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrMissing, attr)
	}
	if len(rel.Values) != 1 || rel.Values[0].IsList() {
		return "", fmt.Errorf("%w: %q is not a single literal", ErrType, attr)
	}
	return rel.Values[0].Literal, nil
}

// StringDefault returns attr's value or a default when absent.
func (r Request) StringDefault(attr, def string) string {
	if v, err := r.String2(attr); err == nil {
		return v
	}
	return def
}

// Int returns attr's value as an integer.
func (r Request) Int(attr string) (int, error) {
	s, err := r.String2(attr)
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("%w: %q=%q is not an integer", ErrType, attr, s)
	}
	return n, nil
}

// IntDefault returns attr as an int or a default when absent/invalid.
func (r Request) IntDefault(attr string, def int) int {
	if n, err := r.Int(attr); err == nil {
		return n
	}
	return def
}

// Float returns attr's value as a float64.
func (r Request) Float(attr string) (float64, error) {
	s, err := r.String2(attr)
	if err != nil {
		return 0, err
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: %q=%q is not a number", ErrType, attr, s)
	}
	return f, nil
}

// Seconds returns attr interpreted as a duration in whole seconds
// (GRAM's maxWallTime convention is minutes; callers pick the unit).
func (r Request) Seconds(attr string) (time.Duration, error) {
	f, err := r.Float(attr)
	if err != nil {
		return 0, err
	}
	return time.Duration(f * float64(time.Second)), nil
}

// Strings returns all literal values of attr (e.g. arguments).
func (r Request) Strings(attr string) ([]string, error) {
	rel, ok := r.Find(attr)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrMissing, attr)
	}
	out := make([]string, 0, len(rel.Values))
	for _, v := range rel.Values {
		if v.IsList() {
			return nil, fmt.Errorf("%w: %q contains a list", ErrType, attr)
		}
		out = append(out, v.Literal)
	}
	return out, nil
}

// Pairs decodes attr's value as a list of (name value) pairs, the RSL
// environment convention.
func (r Request) Pairs(attr string) (map[string]string, error) {
	rel, ok := r.Find(attr)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrMissing, attr)
	}
	out := make(map[string]string, len(rel.Values))
	for _, v := range rel.Values {
		if !v.IsList() || len(v.List) != 2 || v.List[0].IsList() || v.List[1].IsList() {
			return nil, fmt.Errorf("%w: %q entries must be (name value) pairs", ErrType, attr)
		}
		out[v.List[0].Literal] = v.List[1].Literal
	}
	return out, nil
}
