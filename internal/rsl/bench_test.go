package rsl

import "testing"

func BenchmarkParseSimple(b *testing.B) {
	src := `&(executable=/bin/sim)(count=4)(maxWallTime=3600)(queue=batch)`
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseComplex(b *testing.B) {
	src := `+(&(executable=a)(count=2)(environment=(HOME /h)(PATH /bin))(arguments=-v "x y" 42))(&(executable=b)(memory>=512)(maxWallTime=600))`
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCanonicalRender(b *testing.B) {
	s, _ := Parse(`&(executable=/bin/sim)(count=4)(arguments=-v --out "file 1")`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.String()
	}
}
