package rsl

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func mustParse(t *testing.T, src string) *Spec {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return s
}

func TestParseSimpleJob(t *testing.T) {
	s := mustParse(t, `&(executable=/bin/sim)(count=4)(maxWallTime=3600)`)
	req, err := s.Single()
	if err != nil {
		t.Fatal(err)
	}
	if exe, _ := req.String2("executable"); exe != "/bin/sim" {
		t.Errorf("executable = %q", exe)
	}
	if n, _ := req.Int("count"); n != 4 {
		t.Errorf("count = %d", n)
	}
	if d, _ := req.Seconds("maxWallTime"); d != 3600*time.Second {
		t.Errorf("maxWallTime = %v", d)
	}
}

func TestParseWhitespaceTolerant(t *testing.T) {
	s := mustParse(t, "  & ( executable = /bin/a )\n\t( count = 2 ) ")
	req, _ := s.Single()
	if exe, _ := req.String2("executable"); exe != "/bin/a" {
		t.Errorf("executable = %q", exe)
	}
}

func TestParseQuotedStrings(t *testing.T) {
	s := mustParse(t, `&(directory="/home/my user")(note="say ""hi""")`)
	req, _ := s.Single()
	if d, _ := req.String2("directory"); d != "/home/my user" {
		t.Errorf("directory = %q", d)
	}
	if n, _ := req.String2("note"); n != `say "hi"` {
		t.Errorf("note = %q", n)
	}
}

func TestParseArguments(t *testing.T) {
	s := mustParse(t, `&(executable=/bin/a)(arguments=-v --out "file 1" 42)`)
	req, _ := s.Single()
	args, err := req.Strings("arguments")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"-v", "--out", "file 1", "42"}
	if len(args) != len(want) {
		t.Fatalf("args = %v", args)
	}
	for i := range want {
		if args[i] != want[i] {
			t.Errorf("args[%d] = %q, want %q", i, args[i], want[i])
		}
	}
}

func TestParseEnvironmentPairs(t *testing.T) {
	s := mustParse(t, `&(executable=/bin/a)(environment=(HOME /home/u)(TERM vt100))`)
	req, _ := s.Single()
	env, err := req.Pairs("environment")
	if err != nil {
		t.Fatal(err)
	}
	if env["HOME"] != "/home/u" || env["TERM"] != "vt100" {
		t.Errorf("env = %v", env)
	}
}

func TestParseMultiRequest(t *testing.T) {
	s := mustParse(t, `+(&(executable=a)(count=2))(&(executable=b)(count=4))`)
	if !s.Multi || len(s.Requests) != 2 {
		t.Fatalf("multi=%v len=%d", s.Multi, len(s.Requests))
	}
	if n, _ := s.Requests[1].Int("count"); n != 4 {
		t.Errorf("second count = %d", n)
	}
	if _, err := s.Single(); err == nil {
		t.Error("Single() on multi-request succeeded")
	}
}

func TestParseRelationalOperators(t *testing.T) {
	s := mustParse(t, `&(memory>=512)(disk<10000)(cpus>1)(slots<=8)(os!=windows)`)
	req, _ := s.Single()
	ops := map[string]Op{"memory": OpGe, "disk": OpLt, "cpus": OpGt, "slots": OpLe, "os": OpNe}
	for attr, want := range ops {
		rel, ok := req.Find(attr)
		if !ok || rel.Op != want {
			t.Errorf("%s: op = %v (found=%v), want %v", attr, rel.Op, ok, want)
		}
	}
}

func TestAttrCaseInsensitive(t *testing.T) {
	s := mustParse(t, `&(MaxWallTime=60)`)
	req, _ := s.Single()
	if _, ok := req.Find("maxwalltime"); !ok {
		t.Error("case-insensitive lookup failed")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``, `x`, `&`, `&()`, `&(=5)`, `&(count)`, `&(count=)`,
		`&(count=4`, `&(count=4))`, `&(s="unterminated)`, `+`,
		`+()`, `&(a=(1 2)`, `&(a!5)`,
	}
	for _, src := range bad {
		if _, err := Parse(src); !errors.Is(err, ErrParse) {
			t.Errorf("Parse(%q) = %v, want ErrParse", src, err)
		}
	}
}

func TestParseErrorHasOffset(t *testing.T) {
	_, err := Parse(`&(count=4)(bad`)
	if err == nil || !strings.Contains(err.Error(), "offset") {
		t.Errorf("err = %v, want offset info", err)
	}
}

func TestTypedAccessorErrors(t *testing.T) {
	s := mustParse(t, `&(count=four)(args=a b)(env=(A 1))`)
	req, _ := s.Single()
	if _, err := req.Int("count"); !errors.Is(err, ErrType) {
		t.Errorf("Int: %v", err)
	}
	if _, err := req.String2("nope"); !errors.Is(err, ErrMissing) {
		t.Errorf("missing: %v", err)
	}
	if _, err := req.String2("args"); !errors.Is(err, ErrType) {
		t.Errorf("multi-value as string: %v", err)
	}
	if _, err := req.Strings("env"); !errors.Is(err, ErrType) {
		t.Errorf("list in strings: %v", err)
	}
	if _, err := req.Pairs("count"); !errors.Is(err, ErrType) {
		t.Errorf("literal as pairs: %v", err)
	}
	if _, err := req.Float("count"); !errors.Is(err, ErrType) {
		t.Errorf("Float: %v", err)
	}
}

func TestDefaults(t *testing.T) {
	s := mustParse(t, `&(executable=/bin/a)`)
	req, _ := s.Single()
	if got := req.IntDefault("count", 1); got != 1 {
		t.Errorf("IntDefault = %d", got)
	}
	if got := req.StringDefault("queue", "default"); got != "default" {
		t.Errorf("StringDefault = %q", got)
	}
	if got := req.StringDefault("executable", "x"); got != "/bin/a" {
		t.Errorf("present StringDefault = %q", got)
	}
}

func TestCanonicalRoundTrip(t *testing.T) {
	srcs := []string{
		`&(executable=/bin/sim)(count=4)`,
		`&(directory="/home/my user")(arguments=-v "x y")`,
		`+(&(executable=a)(count=2))(&(executable=b)(memory>=512))`,
		`&(environment=(HOME /h)(X 1))(count=2)`,
	}
	for _, src := range srcs {
		s1 := mustParse(t, src)
		s2 := mustParse(t, s1.String())
		if s1.String() != s2.String() {
			t.Errorf("round-trip diverged:\n  %s\n  %s", s1, s2)
		}
	}
}

// Property: rendering then reparsing any generated spec is a fixed point.
func TestRoundTripProperty(t *testing.T) {
	words := []string{"a", "bin", "x1", "/usr/bin/app", "4", "value-with-dash"}
	f := func(attrSeed, valSeed []uint8) bool {
		if len(attrSeed) == 0 {
			return true
		}
		if len(attrSeed) > 6 {
			attrSeed = attrSeed[:6]
		}
		var sb strings.Builder
		sb.WriteByte('&')
		for i, a := range attrSeed {
			attr := words[int(a)%len(words)]
			val := "v"
			if len(valSeed) > 0 {
				val = words[int(valSeed[i%len(valSeed)])%len(words)]
			}
			sb.WriteString("(" + "attr" + attr + "=" + val + ")")
		}
		s1, err := Parse(sb.String())
		if err != nil {
			return false
		}
		s2, err := Parse(s1.String())
		if err != nil {
			return false
		}
		return s1.String() == s2.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEmptyQuotedValue(t *testing.T) {
	s := mustParse(t, `&(stdin="")`)
	req, _ := s.Single()
	if v, err := req.String2("stdin"); err != nil || v != "" {
		t.Errorf("empty string value = (%q, %v)", v, err)
	}
	// Canonical form renders and reparses.
	if _, err := Parse(s.String()); err != nil {
		t.Errorf("reparse %q: %v", s.String(), err)
	}
}

func TestOpString(t *testing.T) {
	if OpGe.String() != ">=" || OpNe.String() != "!=" {
		t.Error("op names wrong")
	}
}
