package sharp

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/capability"
	"repro/internal/identity"
	"repro/internal/sim"
)

func benchAuthority(b *testing.B) (*Authority, *Agent, *identity.Principal) {
	b.Helper()
	eng := sim.NewEngine(1)
	rng := rand.New(rand.NewSource(1))
	nm := capability.NewNodeManager("S", eng, rng, map[capability.ResourceType]float64{capability.CPU: 1e9})
	auth := NewAuthority(eng, "S", identity.NewPrincipal("auth", rng), nm,
		map[capability.ResourceType]float64{capability.CPU: 1e9})
	return auth, NewAgent(identity.NewPrincipal("agent", rng)), identity.NewPrincipal("sm", rng)
}

func BenchmarkIssueTicket(b *testing.B) {
	auth, agent, _ := benchAuthority(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := auth.IssueTicket(agent.Name, agent.Key(), capability.CPU, 0.001, 0, time.Hour); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyDelegatedTicket(b *testing.B) {
	auth, agent, sm := benchAuthority(b)
	tk, _ := auth.IssueTicket(agent.Name, agent.Key(), capability.CPU, 10, 0, time.Hour)
	agent.Acquire(tk)
	subs, _ := agent.Sell(sm.Name, sm.Public(), "S", capability.CPU, 5, 0, time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := subs[0].Verify(auth.Key(), time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRedeem(b *testing.B) {
	auth, agent, _ := benchAuthority(b)
	tickets := make([]*Ticket, b.N)
	for i := range tickets {
		tk, err := auth.IssueTicket(agent.Name, agent.Key(), capability.CPU, 0.0001, 0, time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		tickets[i] = tk
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := auth.Redeem(tickets[i]); err != nil {
			b.Fatal(err)
		}
	}
}
