// Package sharp implements SHARP [Fu, Chase, Chun, Schwab, Vahdat, SOSP
// 2003], the secure resource-peering architecture the paper presents as
// PlanetLab's emerging VO-level resource manager (Figure 2): sites issue
// cryptographically signed *tickets* (soft claims) to brokers ("agents"),
// agents subdivide and resell tickets to service managers, and a ticket
// becomes a hard *lease* only when redeemed at its issuing site authority.
// Because tickets are soft, an authority may deliberately oversubscribe;
// conflicts then surface as redeem-time rejections — the tradeoff the E9
// experiment sweeps.
//
// Every delegation step is a signed claim chained to its parent by hash,
// so a forged, widened, or replayed ticket fails verification — "SHARP
// ... develops its own trust delegation and authentication mechanisms in
// the PlanetLab context."
package sharp

import (
	"bytes"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/capability"
	"repro/internal/identity"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Protocol errors.
var (
	ErrBadChain      = errors.New("sharp: claim chain invalid")
	ErrBadSignature  = errors.New("sharp: claim signature invalid")
	ErrAmountWidened = errors.New("sharp: claim exceeds parent amount")
	ErrIntervalGrew  = errors.New("sharp: claim interval outside parent")
	ErrExpired       = errors.New("sharp: ticket not current")
	ErrConflict      = errors.New("sharp: redeem conflict (oversubscribed)")
	ErrDoubleSpend   = errors.New("sharp: ticket already redeemed")
	// ErrReplayed is the typed rejection for presenting an
	// already-redeemed leaf claim again (the client replay attack).
	// Errors carrying it also carry ErrDoubleSpend, so callers checking
	// either sentinel agree.
	ErrReplayed     = errors.New("sharp: redeemed ticket replayed")
	ErrOverIssue    = errors.New("sharp: issue would exceed oversell bound")
	ErrNotHolder    = errors.New("sharp: delegator is not the ticket holder")
	ErrInventory    = errors.New("sharp: agent inventory insufficient")
	ErrWrongSite    = errors.New("sharp: ticket names a different site")
	ErrUnknownLease = errors.New("sharp: unknown or released lease")
	ErrRenewAmount  = errors.New("sharp: renewal tickets cover less than the lease amount")
	ErrRenewGap     = errors.New("sharp: renewal ticket starts after the lease ends")
	ErrNotExtended  = errors.New("sharp: renewal does not extend the lease")
)

// RedeemGrace is the near-expiry guard on redeem and renew: a ticket
// whose leaf expires within one delivery quantum of the verification
// clock is rejected as ErrExpired outright. Without it, a redeem racing
// notAfter by less than one engine tick would succeed or fail depending
// on event-queue ordering — legal either way, but not deterministic
// under instrumentation-induced reorderings. One millisecond is simnet's
// minimum propagation delay, so no remote caller can observe the
// difference.
const RedeemGrace = time.Millisecond

// Replay-cache sizing: the per-authority redeemed-leaf cache holds at
// most replayCap entries before each insert prunes entries whose leaf
// expired more than replaySlack ago. The slack keeps an entry alive
// across any plausible clock-skew window — a pruned entry's ticket must
// be so stale that Verify rejects it as ErrExpired under every skew the
// fault injector models, so pruning can never re-admit a replay.
const (
	defaultReplayCap = 4096
	replaySlack      = 72 * time.Hour
)

// replayCache is the authority's redeemed-serial memory: leaf claim
// hash -> leaf NotAfter. Bounded: once len reaches its cap, inserting
// prunes safely-expired entries (see replaySlack). Entries for live
// tickets are never evicted, so a double redeem is rejected
// deterministically for as long as the ticket itself could still
// verify.
type replayCache struct {
	cap     int
	entries map[[32]byte]time.Duration
	// PrunedN counts evicted entries (observability for soak tests).
	PrunedN int
}

func newReplayCache(capN int) *replayCache {
	if capN <= 0 {
		capN = defaultReplayCap
	}
	return &replayCache{cap: capN, entries: make(map[[32]byte]time.Duration)}
}

// seen reports whether a leaf hash was already redeemed.
func (rc *replayCache) seen(h [32]byte) bool {
	_, ok := rc.entries[h]
	return ok
}

// add marks a leaf hash redeemed, pruning first when at capacity.
func (rc *replayCache) add(h [32]byte, notAfter, now time.Duration) {
	if len(rc.entries) >= rc.cap {
		rc.prune(now)
	}
	rc.entries[h] = notAfter
}

// prune drops entries whose leaf expired more than replaySlack before
// now. Map iteration order is irrelevant: the delete condition is
// per-entry and the count is a plain sum.
func (rc *replayCache) prune(now time.Duration) int {
	n := 0
	for h, notAfter := range rc.entries {
		if notAfter+replaySlack <= now {
			delete(rc.entries, h)
			n++
		}
	}
	rc.PrunedN += n
	return n
}

// Claim is one signed delegation step.
type Claim struct {
	Site       string
	Type       capability.ResourceType
	Amount     float64
	NotBefore  time.Duration
	NotAfter   time.Duration
	Issuer     string
	IssuerKey  ed25519.PublicKey
	Holder     string
	HolderKey  ed25519.PublicKey
	Serial     uint64
	ParentHash [32]byte // zero for root claims
	Sig        []byte
}

func (c *Claim) tbs() []byte {
	var buf bytes.Buffer
	w := func(s string) {
		var n [4]byte
		binary.BigEndian.PutUint32(n[:], uint32(len(s)))
		buf.Write(n[:])
		buf.WriteString(s)
	}
	w(c.Site)
	var t [8]byte
	binary.BigEndian.PutUint64(t[:], uint64(c.Type))
	buf.Write(t[:])
	binary.BigEndian.PutUint64(t[:], uint64(int64(c.Amount*1e6)))
	buf.Write(t[:])
	binary.BigEndian.PutUint64(t[:], uint64(c.NotBefore))
	buf.Write(t[:])
	binary.BigEndian.PutUint64(t[:], uint64(c.NotAfter))
	buf.Write(t[:])
	w(c.Issuer)
	buf.Write(c.IssuerKey)
	w(c.Holder)
	buf.Write(c.HolderKey)
	binary.BigEndian.PutUint64(t[:], c.Serial)
	buf.Write(t[:])
	buf.Write(c.ParentHash[:])
	return buf.Bytes()
}

// Hash returns the claim's chaining digest (covers the signature so a
// re-signed claim is a different node).
func (c *Claim) Hash() [32]byte {
	return sha256.Sum256(append(c.tbs(), c.Sig...))
}

// Ticket is a chain of claims from a site authority (chain[0]) to the
// current holder (last element).
type Ticket struct {
	Chain []Claim
}

// Leaf returns the chain's final claim.
func (t *Ticket) Leaf() *Claim {
	if len(t.Chain) == 0 {
		return nil
	}
	return &t.Chain[len(t.Chain)-1]
}

// Root returns the authority-issued claim.
func (t *Ticket) Root() *Claim {
	if len(t.Chain) == 0 {
		return nil
	}
	return &t.Chain[0]
}

// Amount returns the leaf amount — what the ticket is worth.
func (t *Ticket) Amount() float64 { return t.Leaf().Amount }

// Verify checks the whole chain against the pinned authority key: every
// signature, hash link, amount narrowing, and interval nesting.
func (t *Ticket) Verify(authorityKey ed25519.PublicKey, now time.Duration) error {
	return t.verify(authorityKey, now, func(c *Claim) bool {
		return ed25519.Verify(c.IssuerKey, c.tbs(), c.Sig)
	})
}

// VerifyCached is Verify with the signature checks memoized through a
// SigCache: chains sharing already-verified links (the same stocked
// ticket resold many times) skip the repeated ed25519 math. Results are
// identical to Verify — the cache only ever skips re-proving triples
// that already proved valid (see identity.SigCache).
func (t *Ticket) VerifyCached(authorityKey ed25519.PublicKey, now time.Duration, cache *identity.SigCache) error {
	if cache == nil {
		return t.Verify(authorityKey, now)
	}
	return t.verify(authorityKey, now, func(c *Claim) bool {
		return cache.Verify(c.IssuerKey, c.tbs(), c.Sig)
	})
}

// verify runs the structural chain walk with signature validity
// answered by sigOK, so the direct, memoized, and batched paths share
// one body and one error precedence.
func (t *Ticket) verify(authorityKey ed25519.PublicKey, now time.Duration, sigOK func(*Claim) bool) error {
	if len(t.Chain) == 0 {
		return fmt.Errorf("%w: empty", ErrBadChain)
	}
	root := t.Root()
	if !authorityKey.Equal(root.IssuerKey) {
		return fmt.Errorf("%w: root not issued by authority", ErrBadChain)
	}
	for i := range t.Chain {
		c := &t.Chain[i]
		if !sigOK(c) {
			return fmt.Errorf("%w: link %d", ErrBadSignature, i)
		}
		if i == 0 {
			if c.ParentHash != ([32]byte{}) {
				return fmt.Errorf("%w: root has a parent", ErrBadChain)
			}
			continue
		}
		parent := &t.Chain[i-1]
		if !parent.HolderKey.Equal(ed25519.PublicKey(c.IssuerKey)) {
			return fmt.Errorf("%w: link %d issuer is not parent holder", ErrBadChain, i)
		}
		if c.ParentHash != parent.Hash() {
			return fmt.Errorf("%w: link %d parent hash mismatch", ErrBadChain, i)
		}
		if c.Amount > parent.Amount {
			return fmt.Errorf("%w: link %d %v > %v", ErrAmountWidened, i, c.Amount, parent.Amount)
		}
		if c.NotBefore < parent.NotBefore || c.NotAfter > parent.NotAfter {
			return fmt.Errorf("%w: link %d", ErrIntervalGrew, i)
		}
		if c.Site != parent.Site || c.Type != parent.Type {
			return fmt.Errorf("%w: link %d changes site/type", ErrBadChain, i)
		}
	}
	leaf := t.Leaf()
	if now < leaf.NotBefore || now >= leaf.NotAfter {
		return ErrExpired
	}
	return nil
}

// Delegate appends a claim transferring amount (≤ leaf amount) over a
// sub-interval to a new holder, signed by the current holder's key.
func (t *Ticket) Delegate(holder *identity.Principal, newHolderName string, newHolderKey ed25519.PublicKey, amount float64, notBefore, notAfter time.Duration, serial uint64) (*Ticket, error) {
	leaf := t.Leaf()
	if leaf == nil {
		return nil, fmt.Errorf("%w: empty", ErrBadChain)
	}
	if !leaf.HolderKey.Equal(holder.Public()) {
		return nil, ErrNotHolder
	}
	if amount <= 0 || amount > leaf.Amount {
		return nil, fmt.Errorf("%w: %v of %v", ErrAmountWidened, amount, leaf.Amount)
	}
	if notBefore < leaf.NotBefore || notAfter > leaf.NotAfter || notAfter <= notBefore {
		return nil, ErrIntervalGrew
	}
	c := Claim{
		Site:       leaf.Site,
		Type:       leaf.Type,
		Amount:     amount,
		NotBefore:  notBefore,
		NotAfter:   notAfter,
		Issuer:     leaf.Holder,
		IssuerKey:  holder.Public(),
		Holder:     newHolderName,
		HolderKey:  newHolderKey,
		Serial:     serial,
		ParentHash: leaf.Hash(),
	}
	c.Sig = holder.Sign(c.tbs())
	chain := append(append([]Claim(nil), t.Chain...), c)
	return &Ticket{Chain: chain}, nil
}

// Lease is a hard claim: the authority has committed concrete resources,
// backed by a dedicated capability minted at the site's node manager.
type Lease struct {
	ID        string
	Site      string
	Type      capability.ResourceType
	Amount    float64
	NotBefore time.Duration
	NotAfter  time.Duration
	CapID     capability.ID
}

// Authority is a site's SHARP root: it issues tickets against its
// capacity (scaled by OversellFactor) and converts valid tickets to
// leases while capacity remains.
type Authority struct {
	Site string
	// OversellFactor >= 1 scales how many soft claims the authority
	// issues relative to hard capacity (1.0 = conservative, no redeem
	// conflicts from its own issuance).
	OversellFactor float64

	eng      *sim.Engine
	signer   *identity.Principal
	nm       *capability.NodeManager
	capacity map[capability.ResourceType]float64
	issued   map[capability.ResourceType]float64
	replay   *replayCache
	sigCache *identity.SigCache
	serial   uint64
	leaseSeq int
	skew     time.Duration

	// Compact lease state: audit records live in one flat,
	// generation-stamped slot slice instead of a heap *LeaseRecord per
	// lease. recordOf maps lease ID -> slot handle; a handle whose
	// generation no longer matches its slot is stale (the slot was
	// recycled). In the default mode slots are append-only, so
	// LeaseRecords preserves the historical grant-order audit log
	// exactly as before; with SetCompactLeases(true), ReleaseLease
	// recycles slots through the free list and memory stays O(live
	// leases) instead of O(every lease ever granted) — the mode the
	// planetary-scale experiment runs in.
	leaseRecs []LeaseRecord
	leaseGens []uint32
	leaseFree []int32
	liveN     int
	recordOf  map[string]leaseHandle
	compact   bool

	// IssuedN, RedeemOK, RedeemConflict count outcomes for E9;
	// RenewOK/RenewRej count lease renewals. ReplayRejN counts redeems
	// and renewals rejected by the replay cache — the byzantine sweeps'
	// double-spend evidence.
	IssuedN, RedeemOK, RedeemConflict int
	RenewOK, RenewRej                 int
	ReplayRejN                        int

	// BatchSigN counts link signatures presented through RedeemBatch;
	// BatchVerifiedN counts how many actually cost an ed25519.Verify
	// after dedup and memoization — the amortization evidence the
	// throughput gates assert on deterministically.
	BatchSigN, BatchVerifiedN int

	// Observability handles (inert when no tracer is installed).
	tr                                     *obs.Tracer
	cIssued, cIssueRejected                *obs.Counter
	cRedeemOK, cRedeemConflict, cRedeemRej *obs.Counter
	cRenewOK, cRenewRej                    *obs.Counter
}

// LeaseRecord is the authority-side audit entry for one granted lease: the
// lease plus the ticket terms it was redeemed under. Invariant checkers
// use it to prove no lease ever outlives its ticket's term.
type LeaseRecord struct {
	Lease         *Lease
	LeafNotBefore time.Duration
	LeafNotAfter  time.Duration
	RootNotAfter  time.Duration
	RedeemedAt    time.Duration
	Released      bool
	// Renewals counts successful Renew calls against this lease; the
	// leaf/root terms above advance with each one so the containment
	// invariant keeps holding against the freshest redeemed ticket.
	Renewals      int
	LastRenewedAt time.Duration
}

// leaseHandle addresses one slot of the flat lease-record store. The
// generation stamp makes recycled slots detectable: a handle minted for
// a released-and-reused slot no longer matches the slot's generation.
type leaseHandle struct {
	idx int32
	gen uint32
}

// allocLeaseSlot pops a free slot (compact mode) or appends one,
// returning its handle with a fresh generation.
func (a *Authority) allocLeaseSlot() leaseHandle {
	if n := len(a.leaseFree); n > 0 {
		idx := a.leaseFree[n-1]
		a.leaseFree = a.leaseFree[:n-1]
		// The generation was bumped when the slot was freed, so handles
		// from the previous occupancy are already stale.
		return leaseHandle{idx: idx, gen: a.leaseGens[idx]}
	}
	a.leaseRecs = append(a.leaseRecs, LeaseRecord{})
	a.leaseGens = append(a.leaseGens, 1)
	return leaseHandle{idx: int32(len(a.leaseRecs) - 1), gen: 1}
}

// leaseAt dereferences a handle, nil when stale or out of range.
func (a *Authority) leaseAt(h leaseHandle) *LeaseRecord {
	if h.idx < 0 || int(h.idx) >= len(a.leaseRecs) || a.leaseGens[h.idx] != h.gen {
		return nil
	}
	return &a.leaseRecs[h.idx]
}

// NewAuthority creates a site authority over the given capacity. The
// node manager enforces hard allocations; its dedicated capacity for each
// type must match `cap` (the caller typically builds both together).
func NewAuthority(eng *sim.Engine, site string, signer *identity.Principal, nm *capability.NodeManager, capacity map[capability.ResourceType]float64) *Authority {
	capCopy := make(map[capability.ResourceType]float64, len(capacity))
	for k, v := range capacity {
		capCopy[k] = v
	}
	return &Authority{
		Site:           site,
		OversellFactor: 1,
		eng:            eng,
		signer:         signer,
		nm:             nm,
		capacity:       capCopy,
		issued:         make(map[capability.ResourceType]float64),
		replay:         newReplayCache(defaultReplayCap),
		sigCache:       identity.NewSigCache(identity.DefaultSigCacheCap),
		recordOf:       make(map[string]leaseHandle),
	}
}

// SetCompactLeases switches the lease store to O(live) mode: released
// leases recycle their audit slot through the free list instead of
// retaining it forever. The full-history default keeps LeaseRecords a
// complete grant-order audit log (what the chaos invariant checkers
// consume); compact mode keeps only live leases' records, which is what
// lets a million-lease run's memory track live state rather than
// history. Switch before the first redeem.
func (a *Authority) SetCompactLeases(on bool) { a.compact = on }

// LiveLeases reports how many leases are currently granted and not
// released.
func (a *Authority) LiveLeases() int { return a.liveN }

// LeaseSlots reports the lease store's slot capacity — in compact mode
// this tracks peak concurrency, not cumulative grants, which is the
// O(live)-memory evidence the scale experiment records.
func (a *Authority) LeaseSlots() int { return len(a.leaseRecs) }

// SigCacheStats reports the verification memo's counters (hits, misses,
// generation evictions).
func (a *Authority) SigCacheStats() (hits, misses, evictions int) {
	return a.sigCache.Hits, a.sigCache.Misses, a.sigCache.Evictions
}

// Key returns the authority's public key (peers pin this).
func (a *Authority) Key() ed25519.PublicKey { return a.signer.Public() }

// SetTracer installs an observability tracer. A nil tracer (the default)
// keeps every instrumentation point inert.
func (a *Authority) SetTracer(tr *obs.Tracer) {
	a.tr = tr
	a.cIssued = tr.Counter("sharp.tickets.issued")
	a.cIssueRejected = tr.Counter("sharp.tickets.rejected")
	a.cRedeemOK = tr.Counter("sharp.redeem.ok")
	a.cRedeemConflict = tr.Counter("sharp.redeem.conflict")
	a.cRedeemRej = tr.Counter("sharp.redeem.rejected")
	a.cRenewOK = tr.Counter("sharp.renew.ok")
	a.cRenewRej = tr.Counter("sharp.renew.rejected")
}

// SetClockSkew skews the authority's validity clock: Redeem verifies
// tickets at Now()+d instead of Now(). Fault injection uses it to model a
// site whose certificate clock has drifted — tickets reject as expired
// (positive skew) or not yet valid (negative skew) while the drift lasts.
func (a *Authority) SetClockSkew(d time.Duration) { a.skew = d }

// ClockSkew returns the current verification-clock drift.
func (a *Authority) ClockSkew() time.Duration { return a.skew }

// SetOversellFactor adjusts the soft-claim issue budget. Exists so
// callers holding the authority behind the broker.SiteAuthority
// interface (which byzantine wrappers also satisfy) can tune it.
func (a *Authority) SetOversellFactor(f float64) { a.OversellFactor = f }

// ReplayCacheLen reports how many redeemed leaf hashes the authority
// currently remembers (bounded; see replayCache).
func (a *Authority) ReplayCacheLen() int { return len(a.replay.entries) }

// LeaseRecords returns a copy of the lease audit log. In the default
// full-history mode slots are append-only, so the order is grant order
// exactly as before; in compact mode released slots have been recycled
// and the copy covers live leases in slot order.
func (a *Authority) LeaseRecords() []LeaseRecord {
	out := make([]LeaseRecord, 0, len(a.leaseRecs))
	for i := range a.leaseRecs {
		if a.leaseRecs[i].Lease == nil {
			continue // free or never-occupied slot
		}
		out = append(out, a.leaseRecs[i])
	}
	return out
}

// IssueTicket mints a root ticket for a holder, bounded by the oversell
// budget: sum of issued soft claims <= capacity × OversellFactor.
func (a *Authority) IssueTicket(holderName string, holderKey ed25519.PublicKey, typ capability.ResourceType, amount float64, notBefore, notAfter time.Duration) (*Ticket, error) {
	var span obs.SpanContext
	if a.tr != nil {
		span = a.tr.Begin("sharp.issue",
			obs.String("site", a.Site), obs.String("holder", holderName),
			obs.String("type", typ.String()), obs.Float("amount", amount))
	}
	if amount <= 0 || notAfter <= notBefore {
		a.cIssueRejected.Inc()
		err := fmt.Errorf("sharp: bad issue request (amount %v, interval [%v,%v))", amount, notBefore, notAfter)
		span.End(obs.Err(err))
		return nil, err
	}
	budget := a.capacity[typ] * a.OversellFactor
	if a.issued[typ]+amount > budget {
		a.cIssueRejected.Inc()
		err := fmt.Errorf("%w: issued %.1f + %.1f > %.1f", ErrOverIssue, a.issued[typ], amount, budget)
		span.End(obs.Err(err))
		return nil, err
	}
	a.issued[typ] += amount
	a.serial++
	c := Claim{
		Site:      a.Site,
		Type:      typ,
		Amount:    amount,
		NotBefore: notBefore,
		NotAfter:  notAfter,
		Issuer:    a.signer.Name,
		IssuerKey: a.signer.Public(),
		Holder:    holderName,
		HolderKey: holderKey,
		Serial:    a.serial,
	}
	c.Sig = a.signer.Sign(c.tbs())
	a.IssuedN++
	a.cIssued.Inc()
	span.End(obs.Int("serial", int(a.serial)))
	return &Ticket{Chain: []Claim{c}}, nil
}

// Redeem converts a ticket to a lease: verify the chain, reject double
// spends, then try to commit hard capacity at the node manager. Failure
// to commit is the oversubscription conflict of Figure 2's step 5-6.
// Chain signatures resolve through the authority's verification memo,
// so re-presented prefixes (the same stocked ticket resold many times)
// cost one ed25519.Verify ever, not one per redeem.
func (a *Authority) Redeem(t *Ticket) (*Lease, error) {
	return a.redeemWith(t, func(c *Claim) bool {
		return a.sigCache.Verify(c.IssuerKey, c.tbs(), c.Sig)
	})
}

// redeemWith is the one redeem body, with signature validity answered
// by sigOK — the single (memoized) and batched paths share it, so batch
// redemption is definitionally equivalent to a sequential redeem loop.
func (a *Authority) redeemWith(t *Ticket, sigOK func(*Claim) bool) (*Lease, error) {
	var span obs.SpanContext
	if a.tr != nil {
		attrs := []obs.Attr{obs.String("site", a.Site)}
		if leaf := t.Leaf(); leaf != nil {
			attrs = append(attrs,
				obs.String("holder", leaf.Holder),
				obs.String("type", leaf.Type.String()),
				obs.Float("amount", leaf.Amount))
		}
		span = a.tr.Begin("sharp.redeem", attrs...)
	}
	now := a.eng.Now() + a.skew
	if t.Root() != nil && t.Root().Site != a.Site {
		a.cRedeemRej.Inc()
		span.End(obs.Err(ErrWrongSite))
		return nil, ErrWrongSite
	}
	if err := t.verify(a.signer.Public(), now, sigOK); err != nil {
		a.cRedeemRej.Inc()
		span.End(obs.Err(err))
		return nil, err
	}
	leaf := t.Leaf()
	if leaf.NotAfter-now <= RedeemGrace {
		a.cRedeemRej.Inc()
		err := fmt.Errorf("%w: %v left of ticket term is inside the %v redeem grace",
			ErrExpired, leaf.NotAfter-now, RedeemGrace)
		span.End(obs.Err(err))
		return nil, err
	}
	h := leaf.Hash()
	if a.replay.seen(h) {
		a.ReplayRejN++
		a.cRedeemRej.Inc()
		err := fmt.Errorf("%w (%w): leaf serial %d", ErrReplayed, ErrDoubleSpend, leaf.Serial)
		span.End(obs.Err(err))
		return nil, err
	}
	cap_, err := a.nm.Mint(capability.MintRequest{
		Type:      leaf.Type,
		Amount:    leaf.Amount,
		Dedicated: true,
		NotBefore: leaf.NotBefore,
		NotAfter:  leaf.NotAfter,
	})
	if err != nil {
		a.RedeemConflict++
		a.cRedeemConflict.Inc()
		err = fmt.Errorf("%w: %v", ErrConflict, err)
		span.End(obs.Err(err))
		return nil, err
	}
	a.replay.add(h, leaf.NotAfter, a.eng.Now())
	a.leaseSeq++
	a.RedeemOK++
	lease := &Lease{
		ID:        fmt.Sprintf("%s/lease%d", a.Site, a.leaseSeq),
		Site:      a.Site,
		Type:      leaf.Type,
		Amount:    leaf.Amount,
		NotBefore: leaf.NotBefore,
		NotAfter:  leaf.NotAfter,
		CapID:     cap_.ID,
	}
	hd := a.allocLeaseSlot()
	*a.leaseAt(hd) = LeaseRecord{
		Lease:         lease,
		LeafNotBefore: leaf.NotBefore,
		LeafNotAfter:  leaf.NotAfter,
		RootNotAfter:  t.Root().NotAfter,
		RedeemedAt:    a.eng.Now(),
	}
	a.recordOf[lease.ID] = hd
	a.liveN++
	a.cRedeemOK.Inc()
	span.End(obs.String("lease", lease.ID))
	return lease, nil
}

// RedeemResult pairs one batch entry's outcome with its position.
type RedeemResult struct {
	Lease *Lease
	Err   error
}

// RedeemBatch redeems many tickets in one pass, amortizing chain
// verification: every link signature across the whole batch is
// collected first, deduplicated (tickets resold from one stocked ticket
// share their entire prefix), resolved against the verification memo,
// and only the genuinely new triples pay an ed25519.Verify. The
// per-ticket admission logic then replays in input order with the
// precomputed signature verdicts, so results — leases, errors, replay
// rejections, conflict accounting — are identical to calling Redeem in
// a loop (a differential test pins this).
func (a *Authority) RedeemBatch(tickets []*Ticket) []RedeemResult {
	batch := identity.NewBatch(a.sigCache)
	// Phase 1: collect every link signature. offsets[i] is ticket i's
	// first item index; items appear in chain order per ticket.
	offsets := make([]int, len(tickets))
	for i, t := range tickets {
		offsets[i] = batch.Len()
		if t == nil {
			continue
		}
		for j := range t.Chain {
			c := &t.Chain[j]
			batch.Add(c.IssuerKey, c.tbs(), c.Sig)
		}
	}
	// Phase 2: one resolution pass over the distinct triples.
	verdicts := batch.Run()
	a.BatchVerifiedN += batch.VerifiedN
	a.BatchSigN += batch.Len()
	// Phase 3: sequential admission with memoized signature answers.
	out := make([]RedeemResult, len(tickets))
	for i, t := range tickets {
		if t == nil {
			out[i] = RedeemResult{Err: fmt.Errorf("%w: nil ticket", ErrBadChain)}
			continue
		}
		// verify visits claims in chain order — the order phase 1
		// enqueued them — and calls sigOK exactly once per link until
		// the first failure, so a running cursor recovers each claim's
		// verdict without re-hashing.
		cursor := offsets[i]
		lease, err := a.redeemWith(t, func(*Claim) bool {
			ok := verdicts[cursor]
			cursor++
			return ok
		})
		out[i] = RedeemResult{Lease: lease, Err: err}
	}
	return out
}

// ReleaseLease returns a lease's resources (service teardown). In
// compact mode the audit slot is recycled; otherwise it is retained
// with Released set, preserving the historical log.
func (a *Authority) ReleaseLease(l *Lease) {
	a.nm.Release(l.CapID)
	hd, ok := a.recordOf[l.ID]
	if !ok {
		return
	}
	rec := a.leaseAt(hd)
	if rec == nil || rec.Released {
		return
	}
	rec.Released = true
	a.liveN--
	if a.compact {
		delete(a.recordOf, l.ID)
		*rec = LeaseRecord{}
		a.leaseGens[hd.idx]++ // stale out handles to the old occupancy
		a.leaseFree = append(a.leaseFree, hd.idx)
	}
}

// Renew extends a live lease using fresh tickets — the soft-state
// refresh the paper's short-lifetime tradeoff presumes. The holder
// presents one or more valid tickets for the same site/type whose
// amounts sum to at least the lease amount; the lease (and its backing
// capability) is extended to the earliest of the tickets' leaf expiries,
// and each ticket is marked spent. No new capacity is committed — the
// lease keeps the resources it holds, just for longer — so renewal can
// never fail on a capacity conflict, only on verification.
//
// Containment bookkeeping: the lease's audit record advances its
// leaf/root terms to the renewal tickets' (so the lease-term invariant
// keeps holding), increments Renewals, and stamps LastRenewedAt.
func (a *Authority) Renew(leaseID string, tickets ...*Ticket) (*Lease, error) {
	var span obs.SpanContext
	if a.tr != nil {
		span = a.tr.Begin("sharp.renew",
			obs.String("site", a.Site), obs.String("lease", leaseID),
			obs.Int("tickets", len(tickets)))
	}
	fail := func(err error) (*Lease, error) {
		a.RenewRej++
		a.cRenewRej.Inc()
		span.End(obs.Err(err))
		return nil, err
	}
	hd, ok := a.recordOf[leaseID]
	rec := a.leaseAt(hd)
	if !ok || rec == nil || rec.Released {
		return fail(fmt.Errorf("%w: %s", ErrUnknownLease, leaseID))
	}
	lease := rec.Lease
	now := a.eng.Now() + a.skew
	if now >= lease.NotAfter {
		return fail(fmt.Errorf("%w: lease lapsed at %v", ErrExpired, lease.NotAfter))
	}
	if len(tickets) == 0 {
		return fail(fmt.Errorf("%w: no tickets presented", ErrRenewAmount))
	}
	var total float64
	target := time.Duration(1<<63 - 1)
	rootNotAfter := target
	for _, t := range tickets {
		if t.Root() != nil && t.Root().Site != a.Site {
			return fail(ErrWrongSite)
		}
		if err := t.VerifyCached(a.signer.Public(), now, a.sigCache); err != nil {
			return fail(err)
		}
		leaf := t.Leaf()
		if leaf.NotAfter-now <= RedeemGrace {
			return fail(fmt.Errorf("%w: %v left of ticket term is inside the %v redeem grace",
				ErrExpired, leaf.NotAfter-now, RedeemGrace))
		}
		if leaf.Type != lease.Type {
			return fail(fmt.Errorf("%w: ticket type %v, lease type %v", ErrBadChain, leaf.Type, lease.Type))
		}
		if leaf.NotBefore > lease.NotAfter {
			return fail(fmt.Errorf("%w: ticket starts %v, lease ends %v", ErrRenewGap, leaf.NotBefore, lease.NotAfter))
		}
		if a.replay.seen(leaf.Hash()) {
			a.ReplayRejN++
			return fail(fmt.Errorf("%w (%w): leaf serial %d", ErrReplayed, ErrDoubleSpend, leaf.Serial))
		}
		total += leaf.Amount
		if leaf.NotAfter < target {
			target = leaf.NotAfter
		}
		if t.Root().NotAfter < rootNotAfter {
			rootNotAfter = t.Root().NotAfter
		}
	}
	if total < lease.Amount-1e-9 {
		return fail(fmt.Errorf("%w: tickets total %.2f, lease %.2f", ErrRenewAmount, total, lease.Amount))
	}
	if target <= lease.NotAfter {
		return fail(fmt.Errorf("%w: tickets end %v, lease already ends %v", ErrNotExtended, target, lease.NotAfter))
	}
	if err := a.nm.Extend(lease.CapID, target); err != nil {
		return fail(err)
	}
	for _, t := range tickets {
		a.replay.add(t.Leaf().Hash(), t.Leaf().NotAfter, a.eng.Now())
	}
	lease.NotAfter = target
	if target > rec.LeafNotAfter {
		rec.LeafNotAfter = target
	}
	if rootNotAfter > rec.RootNotAfter {
		rec.RootNotAfter = rootNotAfter
	}
	rec.Renewals++
	rec.LastRenewedAt = a.eng.Now()
	a.RenewOK++
	a.cRenewOK.Inc()
	span.End(obs.Dur("not_after", target))
	return lease, nil
}

// Agent is a SHARP broker: it accumulates tickets from site authorities
// and resells subdivided tickets to service managers, tracking what is
// left of each acquired ticket.
type Agent struct {
	Name string

	signer *identity.Principal
	serial uint64
	// stock holds acquired tickets with their unsold remainder.
	stock []*stockEntry

	// SoldN counts delegations to service managers.
	SoldN int
}

type stockEntry struct {
	ticket    *Ticket
	remaining float64
}

// NewAgent creates a broker around an existing signing principal.
func NewAgent(signer *identity.Principal) *Agent {
	return &Agent{Name: signer.Name, signer: signer}
}

// Key returns the agent's public key (authorities issue tickets to it).
func (ag *Agent) Key() ed25519.PublicKey { return ag.signer.Public() }

// SellerName identifies the agent on a ticket exchange (it is the
// honest implementation of broker.Seller).
func (ag *Agent) SellerName() string { return ag.Name }

// Acquire stores a ticket issued to this agent (Figure 2 steps 1-2).
func (ag *Agent) Acquire(t *Ticket) error {
	leaf := t.Leaf()
	if leaf == nil || !leaf.HolderKey.Equal(ag.signer.Public()) {
		return ErrNotHolder
	}
	ag.stock = append(ag.stock, &stockEntry{ticket: t, remaining: leaf.Amount})
	return nil
}

// Inventory returns the unsold amount held for a site and type.
func (ag *Agent) Inventory(site string, typ capability.ResourceType) float64 {
	total := 0.0
	for _, s := range ag.stock {
		leaf := s.ticket.Leaf()
		if leaf.Site == site && leaf.Type == typ {
			total += s.remaining
		}
	}
	return total
}

// Sell delegates amount from stock to a buyer (Figure 2 steps 3-4),
// possibly spanning multiple stocked tickets; each produces one
// delegated ticket.
func (ag *Agent) Sell(buyerName string, buyerKey ed25519.PublicKey, site string, typ capability.ResourceType, amount float64, notBefore, notAfter time.Duration) ([]*Ticket, error) {
	if ag.Inventory(site, typ) < amount {
		return nil, fmt.Errorf("%w: have %.1f, want %.1f", ErrInventory, ag.Inventory(site, typ), amount)
	}
	var out []*Ticket
	need := amount
	for _, s := range ag.stock {
		if need <= 0 {
			break
		}
		leaf := s.ticket.Leaf()
		if leaf.Site != site || leaf.Type != typ || s.remaining <= 0 {
			continue
		}
		take := need
		if take > s.remaining {
			take = s.remaining
		}
		nb, na := notBefore, notAfter
		if nb < leaf.NotBefore {
			nb = leaf.NotBefore
		}
		if na > leaf.NotAfter {
			na = leaf.NotAfter
		}
		ag.serial++
		sub, err := s.ticket.Delegate(ag.signer, buyerName, buyerKey, take, nb, na, ag.serial)
		if err != nil {
			return nil, err
		}
		s.remaining -= take
		need -= take
		out = append(out, sub)
		ag.SoldN++
	}
	return out, nil
}
