package sharp

import (
	"errors"
	"testing"
	"time"

	"repro/internal/capability"
)

// TestReplayRejectedTyped is the double-redeem regression test: the
// same ticket presented twice must fail with the typed ErrReplayed
// (which also satisfies the legacy ErrDoubleSpend check).
func TestReplayRejectedTyped(t *testing.T) {
	f := newFixture(t)
	tk, err := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 2, 0, hour)
	if err != nil {
		t.Fatal(err)
	}
	lease, err := f.auth.Redeem(tk)
	if err != nil {
		t.Fatal(err)
	}
	_, err = f.auth.Redeem(tk)
	if !errors.Is(err, ErrReplayed) {
		t.Fatalf("second redeem = %v; want ErrReplayed", err)
	}
	if !errors.Is(err, ErrDoubleSpend) {
		t.Fatalf("second redeem = %v; want ErrDoubleSpend too", err)
	}
	if f.auth.ReplayRejN != 1 {
		t.Fatalf("ReplayRejN = %d; want 1", f.auth.ReplayRejN)
	}
	// Releasing the lease must NOT un-burn the ticket: the claim was
	// consumed, not the resources.
	f.auth.ReleaseLease(lease)
	if _, err := f.auth.Redeem(tk); !errors.Is(err, ErrReplayed) {
		t.Fatalf("redeem after release = %v; want ErrReplayed", err)
	}
}

// TestReplayRejectedOnRenew covers the renewal path: a leaf spent by
// renewal is replay-rejected when presented again.
func TestReplayRejectedOnRenew(t *testing.T) {
	f := newFixture(t)
	tk, _ := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 2, 0, hour)
	lease, err := f.auth.Redeem(tk)
	if err != nil {
		t.Fatal(err)
	}
	ext, _ := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 2, 0, 2*hour)
	if _, err := f.auth.Renew(lease.ID, ext); err != nil {
		t.Fatal(err)
	}
	if _, err := f.auth.Renew(lease.ID, ext); !errors.Is(err, ErrReplayed) {
		t.Fatalf("renew with spent ticket = %v; want ErrReplayed", err)
	}
	if _, err := f.auth.Redeem(ext); !errors.Is(err, ErrReplayed) {
		t.Fatalf("redeem renewal-spent ticket = %v; want ErrReplayed", err)
	}
}

// TestReplayCacheBoundedPrune proves the cache is bounded: entries
// whose leaf expired more than replaySlack ago are pruned when the
// cache hits its cap, while live entries keep rejecting replays.
func TestReplayCacheBoundedPrune(t *testing.T) {
	f := newFixture(t)
	f.auth.replay = newReplayCache(4)
	var old []*Ticket
	for i := 0; i < 4; i++ {
		tk, err := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 0.5, 0, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.auth.Redeem(tk); err != nil {
			t.Fatal(err)
		}
		old = append(old, tk)
	}
	if got := f.auth.ReplayCacheLen(); got != 4 {
		t.Fatalf("cache len = %d; want 4", got)
	}
	// Jump past the old leaves' expiry plus the safety slack; the next
	// insert is over cap and must prune all four.
	f.eng.RunUntil(replaySlack + 2*time.Minute)
	now := f.eng.Now()
	live, err := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 0.5, now, now+hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.auth.Redeem(live); err != nil {
		t.Fatal(err)
	}
	if got := f.auth.ReplayCacheLen(); got != 1 {
		t.Fatalf("cache len after prune = %d; want 1", got)
	}
	if f.auth.replay.PrunedN != 4 {
		t.Fatalf("PrunedN = %d; want 4", f.auth.replay.PrunedN)
	}
	// The live entry still rejects replays; the pruned tickets are
	// long-expired so they reject too — just as ErrExpired, never as a
	// successful redeem.
	if _, err := f.auth.Redeem(live); !errors.Is(err, ErrReplayed) {
		t.Fatalf("live replay = %v; want ErrReplayed", err)
	}
	if _, err := f.auth.Redeem(old[0]); !errors.Is(err, ErrExpired) {
		t.Fatalf("pruned stale ticket = %v; want ErrExpired", err)
	}
}

// TestReplayCacheKeepsLiveEntriesOverCap: pruning only ever removes
// safely-expired entries — a cache full of live tickets grows past its
// cap rather than forgetting a spendable claim.
func TestReplayCacheKeepsLiveEntriesOverCap(t *testing.T) {
	f := newFixture(t)
	f.auth.replay = newReplayCache(2)
	var tks []*Ticket
	for i := 0; i < 4; i++ {
		tk, err := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 0.5, 0, hour)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.auth.Redeem(tk); err != nil {
			t.Fatalf("redeem %d: %v", i, err)
		}
		tks = append(tks, tk)
	}
	if got := f.auth.ReplayCacheLen(); got != 4 {
		t.Fatalf("cache len = %d; want 4 (live entries never pruned)", got)
	}
	for i, tk := range tks {
		if _, err := f.auth.Redeem(tk); !errors.Is(err, ErrReplayed) {
			t.Fatalf("replay %d = %v; want ErrReplayed", i, err)
		}
	}
}
