package sharp

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/capability"
	"repro/internal/identity"
	"repro/internal/sim"
	"repro/internal/sim/snaptest"
)

// twinAuthorities builds two authorities for the same site sharing one
// signing key, each over its own (identical) node manager — the rig for
// proving batch redemption is observably identical to a sequential
// redeem loop.
func twinAuthorities(t *testing.T, capacity float64) (*sim.Engine, *Authority, *Authority) {
	t.Helper()
	eng := sim.NewEngine(7)
	rng := rand.New(rand.NewSource(7))
	signer := identity.NewPrincipal("authority@A", rng)
	mk := func(seed int64) *Authority {
		nm := capability.NewNodeManager("A", eng, rand.New(rand.NewSource(seed)),
			map[capability.ResourceType]float64{capability.CPU: capacity})
		return NewAuthority(eng, "A", signer, nm, map[capability.ResourceType]float64{capability.CPU: capacity})
	}
	return eng, mk(11), mk(11)
}

// TestRedeemBatchMatchesSequential is the differential gate: the same
// ticket mix — valid chains, an in-batch double spend, a tampered
// signature, and capacity conflicts — must produce identical leases,
// identical errors, and identical counters whether redeemed one at a
// time or through RedeemBatch.
func TestRedeemBatchMatchesSequential(t *testing.T) {
	_, seqAuth, batchAuth := twinAuthorities(t, 6)
	rng := rand.New(rand.NewSource(21))
	agent := NewAgent(identity.NewPrincipal("agent-1", rng))
	sm := identity.NewPrincipal("sm", rng)

	seqAuth.OversellFactor = 3
	root, err := seqAuth.IssueTicket(agent.Name, agent.Key(), capability.CPU, 12, 0, hour)
	if err != nil {
		t.Fatal(err)
	}
	agent.Acquire(root)
	var tickets []*Ticket
	for i := 0; i < 4; i++ {
		subs, err := agent.Sell(sm.Name, sm.Public(), "A", capability.CPU, 3, 0, hour)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, subs...)
	}
	// Double spend: the first ticket appears again mid-batch.
	tickets = append(tickets, tickets[0])
	// Forgery: a tampered copy of the second ticket.
	evil := &Ticket{Chain: append([]Claim(nil), tickets[1].Chain...)}
	evil.Chain[len(evil.Chain)-1].Amount = 99
	tickets = append(tickets, evil)
	// With capacity 6 and 3-CPU leaves, the third valid redeem conflicts.

	seqRes := make([]RedeemResult, len(tickets))
	for i, tk := range tickets {
		l, err := seqAuth.Redeem(tk)
		seqRes[i] = RedeemResult{Lease: l, Err: err}
	}
	batchRes := batchAuth.RedeemBatch(tickets)

	for i := range tickets {
		s, b := seqRes[i], batchRes[i]
		if (s.Err == nil) != (b.Err == nil) {
			t.Fatalf("ticket %d: sequential err %v, batch err %v", i, s.Err, b.Err)
		}
		if s.Err != nil {
			if s.Err.Error() != b.Err.Error() {
				t.Errorf("ticket %d: error text diverged:\n  seq:   %v\n  batch: %v", i, s.Err, b.Err)
			}
			continue
		}
		if s.Lease.ID != b.Lease.ID || s.Lease.Amount != b.Lease.Amount ||
			s.Lease.NotAfter != b.Lease.NotAfter {
			t.Errorf("ticket %d: lease diverged: %+v vs %+v", i, s.Lease, b.Lease)
		}
	}
	if seqAuth.RedeemOK != batchAuth.RedeemOK ||
		seqAuth.RedeemConflict != batchAuth.RedeemConflict ||
		seqAuth.ReplayRejN != batchAuth.ReplayRejN {
		t.Errorf("counters diverged: seq ok/conflict/replay %d/%d/%d, batch %d/%d/%d",
			seqAuth.RedeemOK, seqAuth.RedeemConflict, seqAuth.ReplayRejN,
			batchAuth.RedeemOK, batchAuth.RedeemConflict, batchAuth.ReplayRejN)
	}
	if seqAuth.LiveLeases() != batchAuth.LiveLeases() {
		t.Errorf("live leases: seq %d, batch %d", seqAuth.LiveLeases(), batchAuth.LiveLeases())
	}
	sr, br := seqAuth.LeaseRecords(), batchAuth.LeaseRecords()
	if len(sr) != len(br) {
		t.Fatalf("audit log length: seq %d, batch %d", len(sr), len(br))
	}
	for i := range sr {
		if sr[i].Lease.ID != br[i].Lease.ID || sr[i].LeafNotAfter != br[i].LeafNotAfter {
			t.Errorf("audit record %d diverged", i)
		}
	}
}

// TestRedeemBatchNilTicket: a nil entry yields ErrBadChain in place
// without disturbing its neighbors.
func TestRedeemBatchNilTicket(t *testing.T) {
	f := newFixture(t)
	tk, _ := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 2, 0, hour)
	res := f.auth.RedeemBatch([]*Ticket{nil, tk})
	if !errors.Is(res[0].Err, ErrBadChain) {
		t.Errorf("nil ticket: %v", res[0].Err)
	}
	if res[1].Err != nil || res[1].Lease == nil {
		t.Errorf("neighbor: %+v", res[1])
	}
}

// TestRedeemBatchAmortizesSharedPrefixes is the deterministic form of
// the >=3x acceptance gate: 64 depth-4 tickets resold from one stocked
// ticket present 256 link signatures but share a 3-link prefix, so the
// batch must resolve them with at most a third as many ed25519.Verify
// calls as the naive one-per-link count (expected: 3 + 64 = 67 vs 256,
// ~3.8x). Wall-clock throughput rides on exactly this ratio — asserting
// on counters keeps the gate timing-independent.
func TestRedeemBatchAmortizesSharedPrefixes(t *testing.T) {
	eng := sim.NewEngine(3)
	rng := rand.New(rand.NewSource(31))
	signer := identity.NewPrincipal("authority@A", rng)
	nm := capability.NewNodeManager("A", eng, rng, map[capability.ResourceType]float64{capability.CPU: 64})
	auth := NewAuthority(eng, "A", signer, nm, map[capability.ResourceType]float64{capability.CPU: 64})
	agent := NewAgent(identity.NewPrincipal("agent", rng))
	sub := NewAgent(identity.NewPrincipal("sub-agent", rng))
	sub2 := NewAgent(identity.NewPrincipal("sub-sub-agent", rng))
	sm := identity.NewPrincipal("sm", rng)

	root, err := auth.IssueTicket(agent.Name, agent.Key(), capability.CPU, 64, 0, hour)
	if err != nil {
		t.Fatal(err)
	}
	agent.Acquire(root)
	mid, err := agent.Sell(sub.Name, sub.Key(), "A", capability.CPU, 64, 0, hour)
	if err != nil {
		t.Fatal(err)
	}
	sub.Acquire(mid[0])
	mid2, err := sub.Sell(sub2.Name, sub2.Key(), "A", capability.CPU, 64, 0, hour)
	if err != nil {
		t.Fatal(err)
	}
	sub2.Acquire(mid2[0])
	tickets := make([]*Ticket, 0, 64)
	for i := 0; i < 64; i++ {
		subs, err := sub2.Sell(sm.Name, sm.Public(), "A", capability.CPU, 1, 0, hour)
		if err != nil {
			t.Fatal(err)
		}
		if len(subs[0].Chain) != 4 {
			t.Fatalf("chain depth = %d, want 4", len(subs[0].Chain))
		}
		tickets = append(tickets, subs...)
	}

	res := auth.RedeemBatch(tickets)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("redeem %d: %v", i, r.Err)
		}
	}
	if auth.BatchSigN != 64*4 {
		t.Fatalf("BatchSigN = %d, want 256", auth.BatchSigN)
	}
	if auth.BatchVerifiedN != 3+64 {
		t.Errorf("BatchVerifiedN = %d, want 67 (3 shared prefix links + 64 leaves)", auth.BatchVerifiedN)
	}
	if auth.BatchVerifiedN*3 > auth.BatchSigN {
		t.Errorf("amortization below 3x: %d verifies for %d link signatures",
			auth.BatchVerifiedN, auth.BatchSigN)
	}
}

// TestBatchForgeryStillRejected: the PR 9 forgery kit must not slip
// through the batched path — a tampered claim misses the memo (its
// digest differs) and fails the real verification.
func TestBatchForgeryStillRejected(t *testing.T) {
	f := newFixture(t)
	tk, _ := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 2, 0, hour)
	// Prime the cache with the honest ticket.
	if res := f.auth.RedeemBatch([]*Ticket{tk}); res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	evil := &Ticket{Chain: append([]Claim(nil), tk.Chain...)}
	evil.Chain[0].Amount = 10
	if res := f.auth.RedeemBatch([]*Ticket{evil}); !errors.Is(res[0].Err, ErrBadSignature) {
		t.Errorf("tampered via batch: %v", res[0].Err)
	}
}

// TestSigCacheCrossesRedeems: re-presented prefixes cost zero verifies
// on later batches — the cross-batch memo at work.
func TestSigCacheCrossesRedeems(t *testing.T) {
	f := newFixture(t)
	tk, _ := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 6, 0, hour)
	f.agent.Acquire(tk)
	first, _ := f.agent.Sell(f.sm.Name, f.sm.Public(), "A", capability.CPU, 1, 0, hour)
	second, _ := f.agent.Sell(f.sm.Name, f.sm.Public(), "A", capability.CPU, 1, 0, hour)
	f.auth.RedeemBatch(first)
	verifiedAfterFirst := f.auth.BatchVerifiedN
	f.auth.RedeemBatch(second)
	// Second batch shares its 2-link prefix with the first: only the new
	// leaf claim needs a real verification.
	if got := f.auth.BatchVerifiedN - verifiedAfterFirst; got != 1 {
		t.Errorf("second batch verified %d signatures, want 1 (leaf only)", got)
	}
}

// TestCompactLeaseStoreRecycles: in compact mode released slots recycle
// through the free list, so the slot count tracks peak concurrency, not
// cumulative grants — the O(live)-memory property the planetary scale
// run depends on.
func TestCompactLeaseStoreRecycles(t *testing.T) {
	f := newFixture(t)
	f.auth.SetCompactLeases(true)
	f.auth.OversellFactor = 10 // issue budget is cumulative; capacity still caps live leases

	redeemOne := func() *Lease {
		t.Helper()
		tk, err := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 1, 0, hour)
		if err != nil {
			t.Fatal(err)
		}
		l, err := f.auth.Redeem(tk)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}

	var live []*Lease
	for i := 0; i < 10; i++ {
		live = append(live, redeemOne())
	}
	if f.auth.LiveLeases() != 10 || f.auth.LeaseSlots() != 10 {
		t.Fatalf("after 10 grants: live=%d slots=%d", f.auth.LiveLeases(), f.auth.LeaseSlots())
	}
	for _, l := range live[:6] {
		f.auth.ReleaseLease(l)
	}
	if f.auth.LiveLeases() != 4 {
		t.Fatalf("after 6 releases: live=%d", f.auth.LiveLeases())
	}
	for i := 0; i < 6; i++ {
		redeemOne()
	}
	// 16 grants total, but released slots were reused: still 10 slots.
	if f.auth.LiveLeases() != 10 || f.auth.LeaseSlots() != 10 {
		t.Errorf("after recycling: live=%d slots=%d, want 10/10", f.auth.LiveLeases(), f.auth.LeaseSlots())
	}
	if got := len(f.auth.LeaseRecords()); got != 10 {
		t.Errorf("compact audit log holds %d records, want 10 live", got)
	}
	// A released lease is gone: renewing it must fail as unknown, even
	// though its old slot now hosts a different lease.
	tk, _ := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 1, 0, hour)
	if _, err := f.auth.Renew(live[0].ID, tk); !errors.Is(err, ErrUnknownLease) {
		t.Errorf("renew of released lease: %v", err)
	}
	// Double release of an already-recycled lease must be inert.
	before := f.auth.LiveLeases()
	f.auth.ReleaseLease(live[0])
	if f.auth.LiveLeases() != before {
		t.Errorf("double release changed live count: %d -> %d", before, f.auth.LiveLeases())
	}
}

// TestDefaultLeaseStoreKeepsHistory: without opting in, the audit log
// still retains released leases in grant order — what the chaos
// invariant checkers consume.
func TestDefaultLeaseStoreKeepsHistory(t *testing.T) {
	f := newFixture(t)
	tk1, _ := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 3, 0, hour)
	tk2, _ := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 3, 0, hour)
	l1, _ := f.auth.Redeem(tk1)
	l2, _ := f.auth.Redeem(tk2)
	f.auth.ReleaseLease(l1)
	recs := f.auth.LeaseRecords()
	if len(recs) != 2 {
		t.Fatalf("history length %d, want 2", len(recs))
	}
	if recs[0].Lease.ID != l1.ID || !recs[0].Released {
		t.Errorf("record 0 = %+v", recs[0])
	}
	if recs[1].Lease.ID != l2.ID || recs[1].Released {
		t.Errorf("record 1 = %+v", recs[1])
	}
	if f.auth.LiveLeases() != 1 || f.auth.LeaseSlots() != 2 {
		t.Errorf("live=%d slots=%d, want 1/2", f.auth.LiveLeases(), f.auth.LeaseSlots())
	}
}

// compactSnapDriver hoists the fork-vs-cold scenario's state into one
// SnapRoot-registered struct: the authority (flat slot slices, free
// list, handle map, signature memo, replay cache) plus the driver's own
// lease rotation — everything the snapshot walker must rewind.
type compactSnapDriver struct {
	eng   *sim.Engine
	auth  *Authority
	agent *Agent
	sm    *identity.Principal
	live  []*Lease
	seq   int
	log   []string
}

func (d *compactSnapDriver) emit(format string, args ...any) {
	d.log = append(d.log, fmt.Sprintf("%v ", d.eng.Now())+fmt.Sprintf(format, args...))
}

// tick churns the compact store: sell-and-batch-redeem a fresh lease
// each minute, renew the median lease, release the oldest once more
// than six are live. Slot recycling, generation bumps, memo growth, and
// replay-cache pruning all straddle the snapshot point.
func (d *compactSnapDriver) tick() {
	d.seq++
	now := d.eng.Now()
	tk, err := d.auth.IssueTicket(d.agent.Name, d.agent.Key(), capability.CPU, 1, now, now+20*time.Minute)
	if err != nil {
		d.emit("issue err=%v", err)
		return
	}
	d.agent.Acquire(tk)
	subs, err := d.agent.Sell(d.sm.Name, d.sm.Public(), "A", capability.CPU, 1, now, now+20*time.Minute)
	if err != nil {
		d.emit("sell err=%v", err)
		return
	}
	for _, r := range d.auth.RedeemBatch(subs) {
		if r.Err != nil {
			d.emit("redeem err=%v", r.Err)
			continue
		}
		d.live = append(d.live, r.Lease)
		d.emit("redeem %s live=%d slots=%d", r.Lease.ID, d.auth.LiveLeases(), d.auth.LeaseSlots())
	}
	if n := len(d.live); n > 3 && d.seq%3 == 0 {
		mid := d.live[n/2]
		rtk, err := d.auth.IssueTicket(d.agent.Name, d.agent.Key(), capability.CPU, 1, now, now+40*time.Minute)
		if err == nil {
			if _, err := d.auth.Renew(mid.ID, rtk); err != nil {
				d.emit("renew %s err=%v", mid.ID, err)
			} else {
				d.emit("renew %s to %v", mid.ID, mid.NotAfter)
			}
		}
	}
	for len(d.live) > 6 {
		old := d.live[0]
		d.live = d.live[1:]
		d.auth.ReleaseLease(old)
		d.emit("release %s live=%d slots=%d", old.ID, d.auth.LiveLeases(), d.auth.LeaseSlots())
	}
}

func buildCompactLeaseDiff(seed int64) (*sim.Engine, func() []byte) {
	eng := sim.NewEngine(seed)
	rng := eng.ForkRand()
	signer := identity.NewPrincipal("authority@A", rng)
	nm := capability.NewNodeManager("A", eng, eng.ForkRand(), map[capability.ResourceType]float64{capability.CPU: 8})
	auth := NewAuthority(eng, "A", signer, nm, map[capability.ResourceType]float64{capability.CPU: 8})
	auth.SetCompactLeases(true)
	auth.OversellFactor = 1000 // issue budget is cumulative across the horizon
	d := &compactSnapDriver{
		eng:   eng,
		auth:  auth,
		agent: NewAgent(identity.NewPrincipal("agent", rng)),
		sm:    identity.NewPrincipal("sm", rng),
	}
	eng.SnapRoot("sharp.compactdiff", d)
	eng.NewTicker(time.Minute, d.tick)
	render := func() []byte {
		var b bytes.Buffer
		for _, ln := range d.log {
			fmt.Fprintln(&b, ln)
		}
		hits, misses, evictions := auth.SigCacheStats()
		fmt.Fprintf(&b, "ok=%d conflict=%d renewOK=%d live=%d slots=%d free=%d sig=%d/%d/%d batch=%d/%d\n",
			auth.RedeemOK, auth.RedeemConflict, auth.RenewOK,
			auth.LiveLeases(), auth.LeaseSlots(), len(auth.leaseFree),
			hits, misses, evictions, auth.BatchVerifiedN, auth.BatchSigN)
		for _, r := range auth.LeaseRecords() {
			fmt.Fprintf(&b, "rec %s [%v,%v) renewals=%d\n", r.Lease.ID, r.LeafNotBefore, r.LeafNotAfter, r.Renewals)
		}
		return b.Bytes()
	}
	return eng, render
}

// TestForkVsColdCompactLeases: the compact lease store under churn —
// recycled slots, bumped generations, a warm signature memo — must
// rewind byte-identically through snapshot/fork.
func TestForkVsColdCompactLeases(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 3
	}
	snaptest.Scenario{
		Name:      "sharp.compact",
		Build:     buildCompactLeaseDiff,
		WarmUntil: 20 * time.Minute,
		Horizon:   75 * time.Minute,
	}.Run(t, snaptest.Seeds(1, n))
}
