package sharp

import (
	"errors"
	"testing"
	"time"

	"repro/internal/capability"
)

// sellOne buys `amount` CPU from the agent and requires a single ticket
// back (the fixture's stock is one contiguous block).
func sellOne(t *testing.T, f *fixture, amount float64, notBefore, notAfter time.Duration) *Ticket {
	t.Helper()
	tks, err := f.agent.Sell(f.sm.Name, f.sm.Public(), "A", capability.CPU, amount, notBefore, notAfter)
	if err != nil {
		t.Fatal(err)
	}
	if len(tks) != 1 {
		t.Fatalf("want one ticket, got %d", len(tks))
	}
	return tks[0]
}

// stock puts amount CPU of agent inventory in place.
func stock(t *testing.T, f *fixture, amount float64, notBefore, notAfter time.Duration) {
	t.Helper()
	tk, err := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, amount, notBefore, notAfter)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.agent.Acquire(tk); err != nil {
		t.Fatal(err)
	}
}

func TestRenewExtendsLeaseCapabilityAndRecord(t *testing.T) {
	f := newFixture(t)
	stock(t, f, 8, 0, 10*hour)
	lease, err := f.auth.Redeem(sellOne(t, f, 2, 0, 2*hour))
	if err != nil {
		t.Fatal(err)
	}
	f.eng.RunUntil(90 * time.Minute) // renew at 75% of the term

	renewTk := sellOne(t, f, 2, f.eng.Now(), 4*hour)
	got, err := f.auth.Renew(lease.ID, renewTk)
	if err != nil {
		t.Fatal(err)
	}
	if got != lease || lease.NotAfter != 4*hour {
		t.Fatalf("lease not extended in place: %+v", lease)
	}
	// The backing capability moved with it.
	cap_, err := f.nm.Verify(lease.CapID)
	if err != nil || cap_.NotAfter != 4*hour {
		t.Fatalf("capability = %+v, err %v", cap_, err)
	}
	// And the audit record keeps the containment invariant intact.
	recs := f.auth.LeaseRecords()
	if len(recs) != 1 {
		t.Fatalf("want one record, got %d", len(recs))
	}
	r := recs[0]
	if r.Renewals != 1 || r.LastRenewedAt != 90*time.Minute {
		t.Fatalf("record renewal bookkeeping: %+v", r)
	}
	if lease.NotAfter > r.LeafNotAfter || lease.NotAfter > r.RootNotAfter {
		t.Fatalf("record terms lag the renewed lease: lease %v leaf %v root %v",
			lease.NotAfter, r.LeafNotAfter, r.RootNotAfter)
	}
	if f.auth.RenewOK != 1 || f.auth.RenewRej != 0 {
		t.Fatalf("counters: ok=%d rej=%d", f.auth.RenewOK, f.auth.RenewRej)
	}
}

func TestRenewAcrossMultipleTickets(t *testing.T) {
	// Sell splits across stocked tickets; Renew must accept the set when
	// the amounts sum to the lease amount.
	f := newFixture(t)
	stock(t, f, 3, 0, 10*hour)
	lease, err := f.auth.Redeem(sellOne(t, f, 3, 0, 2*hour))
	if err != nil {
		t.Fatal(err)
	}
	stock(t, f, 1, 0, 10*hour)
	stock(t, f, 2, 0, 10*hour)
	f.eng.RunUntil(time.Hour)
	tks, err := f.agent.Sell(f.sm.Name, f.sm.Public(), "A", capability.CPU, 3, f.eng.Now(), 5*hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(tks) < 2 {
		t.Fatalf("fixture did not split: %d tickets", len(tks))
	}
	if _, err := f.auth.Renew(lease.ID, tks...); err != nil {
		t.Fatal(err)
	}
	if lease.NotAfter != 5*hour {
		t.Fatalf("lease end %v, want 5h", lease.NotAfter)
	}
}

func TestRenewRejections(t *testing.T) {
	f := newFixture(t)
	f.auth.OversellFactor = 2 // the rejection probes burn soft inventory
	stock(t, f, 11, 0, 10*hour)
	lease, err := f.auth.Redeem(sellOne(t, f, 2, 0, 2*hour))
	if err != nil {
		t.Fatal(err)
	}

	if _, err := f.auth.Renew("A/lease999", sellOne(t, f, 2, 0, 3*hour)); !errors.Is(err, ErrUnknownLease) {
		t.Errorf("unknown lease: %v", err)
	}
	// Amount below the lease: soft claims must cover the hard claim.
	if _, err := f.auth.Renew(lease.ID, sellOne(t, f, 1, 0, 3*hour)); !errors.Is(err, ErrRenewAmount) {
		t.Errorf("short amount: %v", err)
	}
	// A ticket that does not extend past the current lease end.
	if _, err := f.auth.Renew(lease.ID, sellOne(t, f, 2, 0, 2*hour)); !errors.Is(err, ErrNotExtended) {
		t.Errorf("no extension: %v", err)
	}
	// Double spend: the same renewal ticket cannot be presented twice.
	tk := sellOne(t, f, 2, 0, 4*hour)
	if _, err := f.auth.Renew(lease.ID, tk); err != nil {
		t.Fatal(err)
	}
	if _, err := f.auth.Renew(lease.ID, tk); !errors.Is(err, ErrDoubleSpend) {
		t.Errorf("double spend: %v", err)
	}
	// A released lease cannot be renewed.
	f.auth.ReleaseLease(lease)
	if _, err := f.auth.Renew(lease.ID, sellOne(t, f, 2, 0, 5*hour)); !errors.Is(err, ErrUnknownLease) {
		t.Errorf("released lease: %v", err)
	}
}

func TestRedeemGraceRejectsNearExpiryDeterministically(t *testing.T) {
	f := newFixture(t)
	stock(t, f, 8, 0, 10*hour)

	// A ticket expiring exactly one RedeemGrace after "now" is rejected:
	// the redeem is racing notAfter within one delivery quantum, and the
	// outcome must not depend on event-queue ordering.
	f.eng.RunUntil(time.Hour)
	tk := sellOne(t, f, 1, 0, f.eng.Now()+RedeemGrace)
	if _, err := f.auth.Redeem(tk); !errors.Is(err, ErrExpired) {
		t.Fatalf("redeem inside grace: want ErrExpired, got %v", err)
	}
	// Just outside the grace window it succeeds.
	tk2 := sellOne(t, f, 1, 0, f.eng.Now()+RedeemGrace+time.Millisecond)
	if _, err := f.auth.Redeem(tk2); err != nil {
		t.Fatalf("redeem outside grace: %v", err)
	}
}

func TestRedeemGraceWithSkewedClock(t *testing.T) {
	// Regression: a site whose verification clock has drifted forward must
	// apply the same grace bound at its skewed "now", so the rejection is
	// a deterministic function of (ticket, skew), not of delivery order.
	f := newFixture(t)
	stock(t, f, 8, 0, 10*hour)
	f.eng.RunUntil(time.Hour)

	skew := 30 * time.Minute
	f.auth.SetClockSkew(skew)
	// Valid for 30m+grace of real time — but the authority's skewed clock
	// puts it inside the grace window.
	tk := sellOne(t, f, 1, 0, f.eng.Now()+skew+RedeemGrace)
	if _, err := f.auth.Redeem(tk); !errors.Is(err, ErrExpired) {
		t.Fatalf("skewed redeem inside grace: want ErrExpired, got %v", err)
	}
	// The same ticket becomes redeemable once the skew heals.
	f.auth.SetClockSkew(0)
	if _, err := f.auth.Redeem(tk); err != nil {
		t.Fatalf("redeem after skew heals: %v", err)
	}

	// Renew applies the same skewed-grace rule.
	lease, err := f.auth.Redeem(sellOne(t, f, 1, 0, 3*hour))
	if err != nil {
		t.Fatal(err)
	}
	f.auth.SetClockSkew(skew)
	renewTk := sellOne(t, f, 1, 0, f.eng.Now()+skew+RedeemGrace)
	if _, err := f.auth.Renew(lease.ID, renewTk); !errors.Is(err, ErrExpired) {
		t.Fatalf("skewed renew inside grace: want ErrExpired, got %v", err)
	}
}

func TestCapabilityExtend(t *testing.T) {
	f := newFixture(t)
	c, err := f.nm.Mint(capability.MintRequest{
		Type: capability.CPU, Amount: 2, Dedicated: true, NotBefore: 0, NotAfter: hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := f.nm.Available(capability.CPU)
	if err := f.nm.Extend(c.ID, 2*hour); err != nil {
		t.Fatal(err)
	}
	if c.NotAfter != 2*hour {
		t.Fatalf("NotAfter = %v", c.NotAfter)
	}
	if f.nm.Available(capability.CPU) != before {
		t.Fatal("extend changed committed capacity")
	}
	if err := f.nm.Extend(c.ID, 2*hour); err == nil {
		t.Fatal("non-extension accepted")
	}
	f.eng.RunUntil(3 * hour)
	if err := f.nm.Extend(c.ID, 4*hour); !errors.Is(err, capability.ErrExpiredCapability) {
		t.Fatalf("extend of lapsed capability: %v", err)
	}
}
