package sharp

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/capability"
	"repro/internal/identity"
	"repro/internal/sim"
)

func newPeer(t *testing.T, eng *sim.Engine, rng *rand.Rand, site string, cpu float64, pol PeerPolicy) *Peer {
	t.Helper()
	nm := capability.NewNodeManager(site, eng, rng, map[capability.ResourceType]float64{capability.CPU: cpu})
	auth := NewAuthority(eng, site, identity.NewPrincipal("auth@"+site, rng), nm,
		map[capability.ResourceType]float64{capability.CPU: cpu})
	return NewPeer(auth, identity.NewPrincipal("peer@"+site, rng), pol)
}

func TestBarterExchangesBothLegs(t *testing.T) {
	eng := sim.NewEngine(1)
	rng := rand.New(rand.NewSource(1))
	a := newPeer(t, eng, rng, "A", 8, PeerPolicy{MaxExport: 8})
	b := newPeer(t, eng, rng, "B", 8, PeerPolicy{MaxExport: 8})
	if err := Barter(a, b, 3, 0, time.Hour); err != nil {
		t.Fatal(err)
	}
	if got := a.Imports().Inventory("B", capability.CPU); got != 3 {
		t.Errorf("A holds %v of B, want 3", got)
	}
	if got := b.Imports().Inventory("A", capability.CPU); got != 3 {
		t.Errorf("B holds %v of A, want 3", got)
	}
	if a.Exported() != 3 || b.Exported() != 3 {
		t.Errorf("exports %v/%v", a.Exported(), b.Exported())
	}
	// Imported tickets redeem at the issuing site.
	tks, err := a.Imports().Sell("sm", identity.NewPrincipal("sm", rng).Public(), "B", capability.CPU, 2, 0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Authority.Redeem(tks[0]); err != nil {
		t.Errorf("redeem imported ticket: %v", err)
	}
}

func TestBarterPolicyEnforcement(t *testing.T) {
	eng := sim.NewEngine(1)
	rng := rand.New(rand.NewSource(2))
	a := newPeer(t, eng, rng, "A", 8, PeerPolicy{MaxExport: 8, AllowList: []string{"C"}})
	b := newPeer(t, eng, rng, "B", 8, PeerPolicy{MaxExport: 8})
	if err := Barter(a, b, 1, 0, time.Hour); !errors.Is(err, ErrPeerPolicy) {
		t.Errorf("allowlist: %v", err)
	}
	c := newPeer(t, eng, rng, "C", 8, PeerPolicy{MaxExport: 2})
	if err := Barter(a, c, 1, 0, time.Hour); err != nil {
		t.Fatalf("allowed pair: %v", err)
	}
	// C's export cap (2) is nearly used; another 2 exceeds it.
	if err := Barter(a, c, 2, 0, time.Hour); !errors.Is(err, ErrPeerPolicy) {
		t.Errorf("export cap: %v", err)
	}
	if err := Barter(a, a, 1, 0, time.Hour); !errors.Is(err, ErrSelfPeering) {
		t.Errorf("self: %v", err)
	}
}

func TestBarterFailsWhenIssueRefused(t *testing.T) {
	eng := sim.NewEngine(1)
	rng := rand.New(rand.NewSource(3))
	a := newPeer(t, eng, rng, "A", 8, PeerPolicy{MaxExport: 100})
	b := newPeer(t, eng, rng, "B", 1, PeerPolicy{MaxExport: 100}) // tiny site
	// B cannot issue 4 CPU (capacity 1, oversell 1).
	if err := Barter(a, b, 4, 0, time.Hour); !errors.Is(err, ErrBarterFailed) {
		t.Errorf("issue refusal: %v", err)
	}
	// A's abandoned leg cost nothing redeemable by B (it was never
	// handed over), and A's export count is unchanged.
	if a.Exported() != 0 {
		t.Errorf("exported = %v after failed barter", a.Exported())
	}
}

func TestMeshBarterFullMesh(t *testing.T) {
	eng := sim.NewEngine(1)
	rng := rand.New(rand.NewSource(4))
	peers := []*Peer{
		newPeer(t, eng, rng, "A", 8, PeerPolicy{MaxExport: 8}),
		newPeer(t, eng, rng, "B", 8, PeerPolicy{MaxExport: 8}),
		newPeer(t, eng, rng, "C", 8, PeerPolicy{MaxExport: 8}),
		newPeer(t, eng, rng, "D", 8, PeerPolicy{MaxExport: 8}),
	}
	fed := NewPeerFederation(peers...)
	trades := fed.MeshBarter(2, 0, time.Hour)
	if trades != 6 { // C(4,2) pairs
		t.Fatalf("trades = %d, want 6", trades)
	}
	for _, p := range peers {
		if got := p.ForeignInventory(fed); got != 6 {
			t.Errorf("%s foreign inventory = %v, want 6 (2 from each of 3 peers)", p.Site, got)
		}
		if p.Exported() != 6 {
			t.Errorf("%s exported = %v, want 6", p.Site, p.Exported())
		}
	}
	if fed.Peer("A") == nil || fed.Peer("Z") != nil {
		t.Error("Peer lookup wrong")
	}
}

func TestMeshBarterRespectsPolicies(t *testing.T) {
	eng := sim.NewEngine(1)
	rng := rand.New(rand.NewSource(5))
	// B only trades with A; C trades with anyone.
	a := newPeer(t, eng, rng, "A", 8, PeerPolicy{MaxExport: 8})
	b := newPeer(t, eng, rng, "B", 8, PeerPolicy{MaxExport: 8, AllowList: []string{"A"}})
	c := newPeer(t, eng, rng, "C", 8, PeerPolicy{MaxExport: 8})
	fed := NewPeerFederation(a, b, c)
	trades := fed.MeshBarter(1, 0, time.Hour)
	if trades != 2 { // A-B and A-C; B-C blocked
		t.Errorf("trades = %d, want 2", trades)
	}
	if got := b.Imports().Inventory("C", capability.CPU); got != 0 {
		t.Errorf("B holds %v of C despite policy", got)
	}
}
