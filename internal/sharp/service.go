package sharp

import (
	"crypto/ed25519"
	"fmt"
	"time"

	"repro/internal/capability"
	"repro/internal/simnet"
)

// This file puts the SHARP roles on the wire: an AuthorityService and an
// AgentService register simnet handlers, so ticket acquisition, resale,
// and redemption pay real WAN round-trips (and can be lost, timed out,
// or partitioned away). The in-process Authority/Agent types stay the
// source of truth; the services are thin, faithful protocol adapters —
// which is also how SHARP was built: local state, signed messages.

// Service names registered by the SHARP roles.
const (
	SvcIssue  = "sharp.issue"  // authority: request a root ticket
	SvcRedeem = "sharp.redeem" // authority: redeem a ticket for a lease
	SvcBuy    = "sharp.buy"    // agent: buy a delegated ticket
)

// IssueRequest asks an authority for a root ticket.
type IssueRequest struct {
	HolderName string
	HolderKey  ed25519.PublicKey
	Type       capability.ResourceType
	Amount     float64
	NotBefore  time.Duration
	NotAfter   time.Duration
}

// BuyRequest asks an agent for a delegated ticket.
type BuyRequest struct {
	BuyerName string
	BuyerKey  ed25519.PublicKey
	Site      string
	Type      capability.ResourceType
	Amount    float64
	NotBefore time.Duration
	NotAfter  time.Duration
}

// BuyReply carries the delegated tickets (possibly several when the
// agent's stock is fragmented).
type BuyReply struct {
	Tickets []*Ticket
}

// AuthorityService exposes an Authority on a host.
type AuthorityService struct {
	Auth *Authority
	Host string
}

// NewAuthorityService registers the issue and redeem handlers.
func NewAuthorityService(net *simnet.Network, host string, auth *Authority) *AuthorityService {
	s := &AuthorityService{Auth: auth, Host: host}
	h := net.Host(host)
	h.Handle(SvcIssue, func(from string, raw any) (any, error) {
		req, ok := raw.(IssueRequest)
		if !ok {
			return nil, fmt.Errorf("sharp: bad issue payload %T", raw)
		}
		return auth.IssueTicket(req.HolderName, req.HolderKey, req.Type, req.Amount, req.NotBefore, req.NotAfter)
	})
	h.Handle(SvcRedeem, func(from string, raw any) (any, error) {
		tk, ok := raw.(*Ticket)
		if !ok {
			return nil, fmt.Errorf("sharp: bad redeem payload %T", raw)
		}
		return auth.Redeem(tk)
	})
	return s
}

// AgentService exposes an Agent's resale interface on a host.
type AgentService struct {
	Agent *Agent
	Host  string
}

// NewAgentService registers the buy handler.
func NewAgentService(net *simnet.Network, host string, agent *Agent) *AgentService {
	s := &AgentService{Agent: agent, Host: host}
	net.Host(host).Handle(SvcBuy, func(from string, raw any) (any, error) {
		req, ok := raw.(BuyRequest)
		if !ok {
			return nil, fmt.Errorf("sharp: bad buy payload %T", raw)
		}
		tickets, err := agent.Sell(req.BuyerName, req.BuyerKey, req.Site, req.Type, req.Amount, req.NotBefore, req.NotAfter)
		if err != nil {
			return nil, err
		}
		return BuyReply{Tickets: tickets}, nil
	})
	return s
}

// IssueOverNet requests a root ticket from an authority host.
func IssueOverNet(net *simnet.Network, from, authHost string, req IssueRequest, timeout time.Duration, done func(*Ticket, error)) {
	net.Call(from, authHost, SvcIssue, req, timeout, func(resp any, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		done(resp.(*Ticket), nil)
	})
}

// BuyOverNet buys a delegated ticket from an agent host.
func BuyOverNet(net *simnet.Network, from, agentHost string, req BuyRequest, timeout time.Duration, done func([]*Ticket, error)) {
	net.Call(from, agentHost, SvcBuy, req, timeout, func(resp any, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		done(resp.(BuyReply).Tickets, nil)
	})
}

// RedeemOverNet redeems a ticket at an authority host.
func RedeemOverNet(net *simnet.Network, from, authHost string, tk *Ticket, timeout time.Duration, done func(*Lease, error)) {
	net.Call(from, authHost, SvcRedeem, tk, timeout, func(resp any, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		done(resp.(*Lease), nil)
	})
}
