package sharp

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/capability"
	"repro/internal/identity"
)

// Peering implements the site-to-site half of SHARP that Figure 2's
// caption summarizes: "sites can trade resources with dynamically
// discovered partners or contribute resources to federations according
// to local policies." Each site runs a Peer wrapping its Authority; a
// barter exchanges equal amounts of ticketed CPU in both directions, so
// a site's outstanding exports are always covered by imports — the
// local-policy constraint the paper emphasizes.

// Peering errors.
var (
	ErrPeerPolicy   = errors.New("sharp: peer refused by local policy")
	ErrSelfPeering  = errors.New("sharp: site cannot peer with itself")
	ErrUnknownPeer  = errors.New("sharp: unknown peer")
	ErrBarterFailed = errors.New("sharp: barter could not issue both legs")
)

// PeerPolicy is a site's local trading policy.
type PeerPolicy struct {
	// MaxExport bounds total CPU the site will ticket to peers.
	MaxExport float64
	// AllowList, when non-empty, restricts trading partners.
	AllowList []string
}

func (p PeerPolicy) allows(site string) bool {
	if len(p.AllowList) == 0 {
		return true
	}
	for _, s := range p.AllowList {
		if s == site {
			return true
		}
	}
	return false
}

// Peer is one site's trading arm: an Authority plus an Agent identity
// that holds tickets imported from partners.
type Peer struct {
	Site      string
	Authority *Authority
	Policy    PeerPolicy

	holder   *identity.Principal
	imports  *Agent
	exported float64
}

// NewPeer wraps an authority for trading.
func NewPeer(auth *Authority, holder *identity.Principal, policy PeerPolicy) *Peer {
	return &Peer{
		Site:      auth.Site,
		Authority: auth,
		Policy:    policy,
		holder:    holder,
		imports:   NewAgent(holder),
	}
}

// Imports exposes the agent holding tickets acquired from partners, so
// local service managers can buy foreign resources from their own site.
func (p *Peer) Imports() *Agent { return p.imports }

// Exported returns total CPU ticketed away to peers.
func (p *Peer) Exported() float64 { return p.exported }

// Barter exchanges `amount` CPU of tickets in both directions between two
// peers over [notBefore, notAfter). Both legs must be permitted by both
// policies and issuable by both authorities, or nothing changes.
func Barter(a, b *Peer, amount float64, notBefore, notAfter time.Duration) error {
	if a.Site == b.Site {
		return ErrSelfPeering
	}
	if !a.Policy.allows(b.Site) || !b.Policy.allows(a.Site) {
		return fmt.Errorf("%w: %s<->%s", ErrPeerPolicy, a.Site, b.Site)
	}
	if a.exported+amount > a.Policy.MaxExport {
		return fmt.Errorf("%w: %s export cap", ErrPeerPolicy, a.Site)
	}
	if b.exported+amount > b.Policy.MaxExport {
		return fmt.Errorf("%w: %s export cap", ErrPeerPolicy, b.Site)
	}
	// Issue a->b first; on failure of the reverse leg, the first ticket
	// is simply never distributed (soft claims cost nothing until
	// redeemed, so abandoning it is safe — SHARP's key property).
	tkAB, err := a.Authority.IssueTicket(b.holder.Name, b.holder.Public(), capability.CPU, amount, notBefore, notAfter)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBarterFailed, err)
	}
	tkBA, err := b.Authority.IssueTicket(a.holder.Name, a.holder.Public(), capability.CPU, amount, notBefore, notAfter)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBarterFailed, err)
	}
	if err := b.imports.Acquire(tkAB); err != nil {
		return fmt.Errorf("%w: %v", ErrBarterFailed, err)
	}
	if err := a.imports.Acquire(tkBA); err != nil {
		return fmt.Errorf("%w: %v", ErrBarterFailed, err)
	}
	a.exported += amount
	b.exported += amount
	return nil
}

// Federation is a set of peers trading pairwise.
type PeerFederation struct {
	peers map[string]*Peer
}

// NewPeerFederation registers the peers.
func NewPeerFederation(peers ...*Peer) *PeerFederation {
	f := &PeerFederation{peers: make(map[string]*Peer, len(peers))}
	for _, p := range peers {
		f.peers[p.Site] = p
	}
	return f
}

// Peer returns a member by site name.
func (f *PeerFederation) Peer(site string) *Peer { return f.peers[site] }

// MeshBarter runs pairwise barters of `amount` between every allowed
// pair, in deterministic site order, and reports how many trades
// happened. This is the "contribute resources to federations" mode: after
// a full mesh, every site holds claims on every partner.
func (f *PeerFederation) MeshBarter(amount float64, notBefore, notAfter time.Duration) (trades int) {
	sites := make([]string, 0, len(f.peers))
	for s := range f.peers {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	for i := 0; i < len(sites); i++ {
		for j := i + 1; j < len(sites); j++ {
			if err := Barter(f.peers[sites[i]], f.peers[sites[j]], amount, notBefore, notAfter); err == nil {
				trades++
			}
		}
	}
	return trades
}

// ForeignInventory sums the CPU a site holds on all partners. Partner
// order is sorted: float addition is not associative, so summing in map
// iteration order would make the total's low bits schedule-dependent.
func (p *Peer) ForeignInventory(f *PeerFederation) float64 {
	sites := make([]string, 0, len(f.peers))
	for site := range f.peers {
		sites = append(sites, site)
	}
	sort.Strings(sites)
	total := 0.0
	for _, site := range sites {
		if site == p.Site {
			continue
		}
		total += p.imports.Inventory(site, capability.CPU)
	}
	return total
}
