package sharp

import (
	"errors"
	"testing"
	"time"

	"repro/internal/capability"
	"repro/internal/identity"
)

// TestVerifyWindowEdges pins the exact boundary semantics of the leaf
// validity window: [NotBefore, NotAfter) — inclusive start, exclusive
// end.
func TestVerifyWindowEdges(t *testing.T) {
	f := newFixture(t)
	tk, err := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 2, 10*time.Minute, hour)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		now     time.Duration
		wantErr error
	}{
		{"before window", 10*time.Minute - time.Nanosecond, ErrExpired},
		{"notBefore == now (inclusive)", 10 * time.Minute, nil},
		{"mid window", 30 * time.Minute, nil},
		{"last valid instant", hour - time.Nanosecond, nil},
		{"notAfter == now (exclusive)", hour, ErrExpired},
		{"after window", hour + time.Minute, ErrExpired},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tk.Verify(f.auth.Key(), tc.now)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("Verify(now=%v) = %v; want %v", tc.now, err, tc.wantErr)
			}
		})
	}
}

// TestRedeemClockSkewEdges drives the same window edges through
// Authority.Redeem under clock skew: a fast site clock (positive skew)
// expires tickets early, a slow one (negative skew) refuses
// not-yet-valid tickets the holder believes are live.
func TestRedeemClockSkewEdges(t *testing.T) {
	cases := []struct {
		name    string
		skew    time.Duration
		nb, na  time.Duration
		wantErr error
	}{
		{"no skew, live", 0, 0, hour, nil},
		{"fast clock expires early", 45 * time.Minute, 0, 30 * time.Minute, ErrExpired},
		{"fast clock inside grace", 30*time.Minute - RedeemGrace, 0, 30 * time.Minute, ErrExpired},
		{"fast clock just outside grace", 30*time.Minute - RedeemGrace - time.Nanosecond, 0, 30 * time.Minute, nil},
		{"slow clock sees future ticket", -time.Minute, 0, hour, ErrExpired},
		{"slow clock, early-enough start", -time.Minute, -time.Minute, hour, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := newFixture(t)
			nb := tc.nb
			if nb < 0 {
				// IssueTicket offsets are absolute engine times; model an
				// "already valid for a while" ticket by advancing the engine
				// instead of issuing into the past.
				f.eng.RunUntil(-nb)
				nb = 0
			}
			tk, err := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 2, nb, tc.na)
			if err != nil {
				t.Fatal(err)
			}
			f.auth.SetClockSkew(tc.skew)
			if got := f.auth.ClockSkew(); got != tc.skew {
				t.Fatalf("ClockSkew() = %v; want %v", got, tc.skew)
			}
			_, err = f.auth.Redeem(tk)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("Redeem(skew=%v, window=[%v,%v)) = %v; want %v",
					tc.skew, tc.nb, tc.na, err, tc.wantErr)
			}
		})
	}
}

// TestMultiHopWidenRejected walks a three-hop delegation chain where
// every link narrows correctly except the last, whose amount exceeds
// its parent: Verify must pinpoint it as ErrAmountWidened (not a
// signature or chain error — the claim is validly signed by the
// rightful holder).
func TestMultiHopWidenRejected(t *testing.T) {
	f := newFixture(t)
	root, err := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 4, 0, hour)
	if err != nil {
		t.Fatal(err)
	}
	mid := identity.NewPrincipal("reseller", f.rng)
	hop1, err := root.Delegate(f.agent.signer, mid.Name, mid.Public(), 2, 0, hour, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Honest sub-delegation of the narrowed amount still verifies.
	ok, err := hop1.Delegate(mid, f.sm.Name, f.sm.Public(), 2, 0, hour, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ok.Verify(f.auth.Key(), time.Minute); err != nil {
		t.Fatalf("honest 3-hop chain: %v", err)
	}
	// Delegate itself refuses to widen...
	if _, err := hop1.Delegate(mid, f.sm.Name, f.sm.Public(), 3, 0, hour, 3); !errors.Is(err, ErrAmountWidened) {
		t.Fatalf("widening Delegate = %v; want ErrAmountWidened", err)
	}
	// ...so forge the widened third hop directly: a validly signed claim
	// for 3 CPU hanging off the 2-CPU hop. Only the narrowing rule can
	// catch it.
	leaf := hop1.Leaf()
	c := Claim{
		Site:       leaf.Site,
		Type:       leaf.Type,
		Amount:     3,
		NotBefore:  leaf.NotBefore,
		NotAfter:   leaf.NotAfter,
		Issuer:     mid.Name,
		IssuerKey:  mid.Public(),
		Holder:     f.sm.Name,
		HolderKey:  f.sm.Public(),
		Serial:     4,
		ParentHash: leaf.Hash(),
	}
	c.Sig = mid.Sign(c.tbs())
	widened := &Ticket{Chain: append(append([]Claim(nil), hop1.Chain...), c)}
	if err := widened.Verify(f.auth.Key(), time.Minute); !errors.Is(err, ErrAmountWidened) {
		t.Fatalf("widened 3-hop chain = %v; want ErrAmountWidened", err)
	}
	if _, err := f.auth.Redeem(widened); !errors.Is(err, ErrAmountWidened) {
		t.Fatalf("redeem widened chain = %v; want ErrAmountWidened", err)
	}
}
