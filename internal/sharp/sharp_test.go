package sharp

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/capability"
	"repro/internal/identity"
	"repro/internal/sim"
)

const hour = time.Hour

type fixture struct {
	eng   *sim.Engine
	auth  *Authority
	nm    *capability.NodeManager
	agent *Agent
	sm    *identity.Principal
	rng   *rand.Rand
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	eng := sim.NewEngine(1)
	rng := rand.New(rand.NewSource(5))
	signer := identity.NewPrincipal("authority@A", rng)
	nm := capability.NewNodeManager("A", eng, rng, map[capability.ResourceType]float64{
		capability.CPU: 10,
	})
	auth := NewAuthority(eng, "A", signer, nm, map[capability.ResourceType]float64{
		capability.CPU: 10,
	})
	agent := NewAgent(identity.NewPrincipal("agent-1", rng))
	sm := identity.NewPrincipal("service-manager", rng)
	return &fixture{eng: eng, auth: auth, nm: nm, agent: agent, sm: sm, rng: rng}
}

func TestIssueVerifyRedeem(t *testing.T) {
	f := newFixture(t)
	tk, err := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 4, 0, hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Verify(f.auth.Key(), time.Minute); err != nil {
		t.Fatal(err)
	}
	lease, err := f.auth.Redeem(tk)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Amount != 4 || lease.Site != "A" {
		t.Errorf("lease = %+v", lease)
	}
	// The lease is backed by a real bindable capability.
	if _, err := f.nm.Bind(lease.CapID); err != nil {
		t.Errorf("lease capability: %v", err)
	}
}

func TestDoubleSpendRejected(t *testing.T) {
	f := newFixture(t)
	tk, _ := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 2, 0, hour)
	if _, err := f.auth.Redeem(tk); err != nil {
		t.Fatal(err)
	}
	if _, err := f.auth.Redeem(tk); !errors.Is(err, ErrDoubleSpend) {
		t.Errorf("second redeem: %v", err)
	}
}

func TestDelegationChainRedeems(t *testing.T) {
	f := newFixture(t)
	tk, _ := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 6, 0, hour)
	f.agent.Acquire(tk)
	subs, err := f.agent.Sell(f.sm.Name, f.sm.Public(), "A", capability.CPU, 4, 0, hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 || subs[0].Amount() != 4 {
		t.Fatalf("subs = %+v", subs)
	}
	if len(subs[0].Chain) != 2 {
		t.Errorf("chain length = %d", len(subs[0].Chain))
	}
	lease, err := f.auth.Redeem(subs[0])
	if err != nil {
		t.Fatal(err)
	}
	if lease.Amount != 4 {
		t.Errorf("lease amount = %v", lease.Amount)
	}
	if f.agent.Inventory("A", capability.CPU) != 2 {
		t.Errorf("inventory = %v", f.agent.Inventory("A", capability.CPU))
	}
}

func TestForgedSignatureRejected(t *testing.T) {
	f := newFixture(t)
	tk, _ := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 2, 0, hour)
	evil := *tk
	evil.Chain = append([]Claim(nil), tk.Chain...)
	evil.Chain[0].Amount = 10 // tamper
	if _, err := f.auth.Redeem(&evil); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered: %v", err)
	}
}

func TestWidenedDelegationRejected(t *testing.T) {
	f := newFixture(t)
	tk, _ := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 2, 0, hour)
	if _, err := tk.Delegate(f.agent.signer, f.sm.Name, f.sm.Public(), 5, 0, hour, 1); !errors.Is(err, ErrAmountWidened) {
		t.Errorf("widen: %v", err)
	}
	if _, err := tk.Delegate(f.agent.signer, f.sm.Name, f.sm.Public(), 1, 0, 2*hour, 1); !errors.Is(err, ErrIntervalGrew) {
		t.Errorf("grow interval: %v", err)
	}
}

func TestNonHolderCannotDelegate(t *testing.T) {
	f := newFixture(t)
	tk, _ := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 2, 0, hour)
	thief := identity.NewPrincipal("thief", f.rng)
	if _, err := tk.Delegate(thief, "x", thief.Public(), 1, 0, hour, 1); !errors.Is(err, ErrNotHolder) {
		t.Errorf("thief delegation: %v", err)
	}
}

func TestSplicedChainRejected(t *testing.T) {
	f := newFixture(t)
	// Build two independent tickets, then splice agent-2's delegation
	// under agent-1's root.
	tk1, _ := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 5, 0, hour)
	agent2 := NewAgent(identity.NewPrincipal("agent-2", f.rng))
	tk2, _ := f.auth.IssueTicket(agent2.Name, agent2.Key(), capability.CPU, 5, 0, hour)
	sub2, err := tk2.Delegate(agent2.signer, f.sm.Name, f.sm.Public(), 3, 0, hour, 1)
	if err != nil {
		t.Fatal(err)
	}
	spliced := &Ticket{Chain: []Claim{tk1.Chain[0], sub2.Chain[1]}}
	if _, err := f.auth.Redeem(spliced); !errors.Is(err, ErrBadChain) {
		t.Errorf("spliced: %v", err)
	}
}

func TestExpiredTicket(t *testing.T) {
	f := newFixture(t)
	tk, _ := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 2, 0, hour)
	f.eng.RunUntil(2 * hour)
	if _, err := f.auth.Redeem(tk); !errors.Is(err, ErrExpired) {
		t.Errorf("expired: %v", err)
	}
}

func TestWrongSiteRejected(t *testing.T) {
	f := newFixture(t)
	signerB := identity.NewPrincipal("authority@B", f.rng)
	nmB := capability.NewNodeManager("B", f.eng, f.rng, map[capability.ResourceType]float64{capability.CPU: 5})
	authB := NewAuthority(f.eng, "B", signerB, nmB, map[capability.ResourceType]float64{capability.CPU: 5})
	tkB, _ := authB.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 2, 0, hour)
	if _, err := f.auth.Redeem(tkB); !errors.Is(err, ErrWrongSite) {
		t.Errorf("cross-site redeem: %v", err)
	}
}

func TestOversellBound(t *testing.T) {
	f := newFixture(t)
	f.auth.OversellFactor = 2 // may issue 20 CPU of soft claims
	for i := 0; i < 4; i++ {
		if _, err := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 5, 0, hour); err != nil {
			t.Fatalf("issue %d: %v", i, err)
		}
	}
	if _, err := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 1, 0, hour); !errors.Is(err, ErrOverIssue) {
		t.Errorf("beyond oversell: %v", err)
	}
}

func TestOversubscriptionConflictsAtRedeem(t *testing.T) {
	// The E9 mechanism: with factor 2, all tickets issue but only the
	// first capacity's worth of redeems succeed.
	f := newFixture(t)
	f.auth.OversellFactor = 2
	var tickets []*Ticket
	for i := 0; i < 4; i++ {
		tk, err := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 5, 0, hour)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	ok, conflict := 0, 0
	for _, tk := range tickets {
		if _, err := f.auth.Redeem(tk); err == nil {
			ok++
		} else if errors.Is(err, ErrConflict) {
			conflict++
		} else {
			t.Fatalf("unexpected: %v", err)
		}
	}
	if ok != 2 || conflict != 2 {
		t.Errorf("ok=%d conflict=%d, want 2/2 (capacity 10, tickets 4×5)", ok, conflict)
	}
	if f.auth.RedeemOK != 2 || f.auth.RedeemConflict != 2 {
		t.Errorf("counters %d/%d", f.auth.RedeemOK, f.auth.RedeemConflict)
	}
}

func TestLeaseReleaseReturnsCapacity(t *testing.T) {
	f := newFixture(t)
	tk, _ := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 10, 0, hour)
	lease, err := f.auth.Redeem(tk)
	if err != nil {
		t.Fatal(err)
	}
	if f.nm.Available(capability.CPU) != 0 {
		t.Fatal("capacity not committed")
	}
	f.auth.ReleaseLease(lease)
	if f.nm.Available(capability.CPU) != 10 {
		t.Errorf("capacity not returned: %v", f.nm.Available(capability.CPU))
	}
}

func TestAgentSellSpansStockedTickets(t *testing.T) {
	f := newFixture(t)
	t1, _ := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 3, 0, hour)
	t2, _ := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 3, 0, hour)
	f.agent.Acquire(t1)
	f.agent.Acquire(t2)
	subs, err := f.agent.Sell(f.sm.Name, f.sm.Public(), "A", capability.CPU, 5, 0, hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 {
		t.Fatalf("subs = %d tickets", len(subs))
	}
	total := 0.0
	for _, s := range subs {
		lease, err := f.auth.Redeem(s)
		if err != nil {
			t.Fatal(err)
		}
		total += lease.Amount
	}
	if total != 5 {
		t.Errorf("total leased = %v", total)
	}
	if got := f.agent.Inventory("A", capability.CPU); got != 1 {
		t.Errorf("inventory = %v", got)
	}
}

func TestAgentSellInsufficient(t *testing.T) {
	f := newFixture(t)
	tk, _ := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 2, 0, hour)
	f.agent.Acquire(tk)
	if _, err := f.agent.Sell(f.sm.Name, f.sm.Public(), "A", capability.CPU, 3, 0, hour); !errors.Is(err, ErrInventory) {
		t.Errorf("oversell from stock: %v", err)
	}
}

func TestAgentAcquireRequiresHolding(t *testing.T) {
	f := newFixture(t)
	other := identity.NewPrincipal("other", f.rng)
	tk, _ := f.auth.IssueTicket("other", other.Public(), capability.CPU, 2, 0, hour)
	if err := f.agent.Acquire(tk); !errors.Is(err, ErrNotHolder) {
		t.Errorf("acquire foreign ticket: %v", err)
	}
}

func TestSubdelegationDepth(t *testing.T) {
	// authority -> agent -> sub-agent -> service manager: three-link
	// chains must verify and redeem.
	f := newFixture(t)
	subAgent := NewAgent(identity.NewPrincipal("sub-agent", f.rng))
	tk, _ := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 8, 0, hour)
	f.agent.Acquire(tk)
	mid, err := f.agent.Sell(subAgent.Name, subAgent.Key(), "A", capability.CPU, 6, 0, hour)
	if err != nil {
		t.Fatal(err)
	}
	subAgent.Acquire(mid[0])
	leafTickets, err := subAgent.Sell(f.sm.Name, f.sm.Public(), "A", capability.CPU, 2, 0, hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(leafTickets[0].Chain) != 3 {
		t.Errorf("chain depth = %d", len(leafTickets[0].Chain))
	}
	if _, err := f.auth.Redeem(leafTickets[0]); err != nil {
		t.Errorf("redeem depth-3 chain: %v", err)
	}
}

// Property: however an agent splits its stock across buyers, the total
// redeemable amount never exceeds the issued root amount, and every
// individually sold ticket verifies.
func TestConservationProperty(t *testing.T) {
	f := func(cuts []uint8) bool {
		fx := struct {
			eng *sim.Engine
			rng *rand.Rand
		}{sim.NewEngine(2), rand.New(rand.NewSource(9))}
		signer := identity.NewPrincipal("auth", fx.rng)
		nm := capability.NewNodeManager("S", fx.eng, fx.rng, map[capability.ResourceType]float64{capability.CPU: 100})
		auth := NewAuthority(fx.eng, "S", signer, nm, map[capability.ResourceType]float64{capability.CPU: 100})
		agent := NewAgent(identity.NewPrincipal("ag", fx.rng))
		tk, err := auth.IssueTicket(agent.Name, agent.Key(), capability.CPU, 100, 0, hour)
		if err != nil {
			return false
		}
		agent.Acquire(tk)
		buyer := identity.NewPrincipal("buyer", fx.rng)
		total := 0.0
		for _, c := range cuts {
			amt := float64(c%37) + 1
			subs, err := agent.Sell(buyer.Name, buyer.Public(), "S", capability.CPU, amt, 0, hour)
			if errors.Is(err, ErrInventory) {
				continue
			}
			if err != nil {
				return false
			}
			for _, s := range subs {
				if s.Verify(auth.Key(), 0) != nil {
					return false
				}
				lease, err := auth.Redeem(s)
				if err != nil {
					return false
				}
				total += lease.Amount
			}
		}
		return total <= 100.000001 && total+agent.Inventory("S", capability.CPU) <= 100.000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestIssueRejectsBadRequests(t *testing.T) {
	f := newFixture(t)
	if _, err := f.auth.IssueTicket("x", f.agent.Key(), capability.CPU, 0, 0, hour); err == nil {
		t.Error("zero amount issued")
	}
	if _, err := f.auth.IssueTicket("x", f.agent.Key(), capability.CPU, 1, hour, hour); err == nil {
		t.Error("empty interval issued")
	}
}

func TestVerifyEmptyTicket(t *testing.T) {
	f := newFixture(t)
	empty := &Ticket{}
	if err := empty.Verify(f.auth.Key(), 0); !errors.Is(err, ErrBadChain) {
		t.Errorf("empty: %v", err)
	}
	if empty.Leaf() != nil || empty.Root() != nil {
		t.Error("empty ticket leaf/root non-nil")
	}
}
