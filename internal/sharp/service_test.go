package sharp

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/capability"
	"repro/internal/identity"
	"repro/internal/sim"
	"repro/internal/simnet"
)

type netFixture struct {
	eng   *sim.Engine
	net   *simnet.Network
	auth  *Authority
	agent *Agent
	sm    *identity.Principal
}

func newNetFixture(t *testing.T) *netFixture {
	t.Helper()
	eng := sim.NewEngine(1)
	net := simnet.New(eng)
	net.AddSite("A", 0, 0)
	net.AddSite("B", 30, 0)
	net.AddSite("C", 10, 25)
	net.AddHost("authA", "A", 1e6)
	net.AddHost("agent", "B", 1e6)
	net.AddHost("smhost", "C", 1e6)

	rng := rand.New(rand.NewSource(4))
	nm := capability.NewNodeManager("A", eng, rng, map[capability.ResourceType]float64{capability.CPU: 8})
	auth := NewAuthority(eng, "A", identity.NewPrincipal("auth@A", rng), nm,
		map[capability.ResourceType]float64{capability.CPU: 8})
	agent := NewAgent(identity.NewPrincipal("agent-1", rng))
	NewAuthorityService(net, "authA", auth)
	NewAgentService(net, "agent", agent)
	return &netFixture{eng: eng, net: net, auth: auth, agent: agent, sm: identity.NewPrincipal("sm", rng)}
}

func TestFullFlowOverNetwork(t *testing.T) {
	f := newNetFixture(t)
	// Agent acquires a ticket over the wire (Figure 2 steps 1-2).
	var acquired *Ticket
	IssueOverNet(f.net, "agent", "authA", IssueRequest{
		HolderName: f.agent.Name, HolderKey: f.agent.Key(),
		Type: capability.CPU, Amount: 4, NotAfter: time.Hour,
	}, time.Minute, func(tk *Ticket, err error) {
		if err != nil {
			t.Errorf("issue: %v", err)
			return
		}
		acquired = tk
	})
	f.eng.Run()
	if acquired == nil {
		t.Fatal("no ticket")
	}
	if err := f.agent.Acquire(acquired); err != nil {
		t.Fatal(err)
	}

	// SM buys over the wire (steps 3-4), then redeems (5-6).
	var bought []*Ticket
	BuyOverNet(f.net, "smhost", "agent", BuyRequest{
		BuyerName: f.sm.Name, BuyerKey: f.sm.Public(),
		Site: "A", Type: capability.CPU, Amount: 2, NotAfter: time.Hour,
	}, time.Minute, func(tks []*Ticket, err error) {
		if err != nil {
			t.Errorf("buy: %v", err)
			return
		}
		bought = tks
	})
	f.eng.Run()
	if len(bought) != 1 {
		t.Fatalf("bought %d tickets", len(bought))
	}
	var lease *Lease
	RedeemOverNet(f.net, "smhost", "authA", bought[0], time.Minute, func(l *Lease, err error) {
		if err != nil {
			t.Errorf("redeem: %v", err)
			return
		}
		lease = l
	})
	f.eng.Run()
	if lease == nil || lease.Amount != 2 {
		t.Fatalf("lease = %+v", lease)
	}
}

func TestNetworkRedeemConflictSurfaces(t *testing.T) {
	f := newNetFixture(t)
	f.auth.OversellFactor = 2
	// Issue 2×8 CPU directly, redeem both over the wire: second conflicts.
	t1, _ := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 8, 0, time.Hour)
	t2, _ := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 8, 0, time.Hour)
	var errs []error
	for _, tk := range []*Ticket{t1, t2} {
		RedeemOverNet(f.net, "smhost", "authA", tk, time.Minute, func(_ *Lease, err error) {
			errs = append(errs, err)
		})
		f.eng.Run()
	}
	if errs[0] != nil {
		t.Errorf("first redeem: %v", errs[0])
	}
	if !errors.Is(errs[1], ErrConflict) {
		t.Errorf("second redeem: %v", errs[1])
	}
}

func TestNetworkPartitionBlocksRedeem(t *testing.T) {
	f := newNetFixture(t)
	tk, _ := f.auth.IssueTicket(f.agent.Name, f.agent.Key(), capability.CPU, 1, 0, time.Hour)
	f.net.Partition("C", "A", true)
	var got error
	RedeemOverNet(f.net, "smhost", "authA", tk, time.Minute, func(_ *Lease, err error) { got = err })
	f.eng.Run()
	if !errors.Is(got, simnet.ErrPartitioned) {
		t.Errorf("partitioned redeem: %v", got)
	}
	// Heal; the ticket is still good (soft claim survived the outage).
	f.net.Partition("C", "A", false)
	var lease *Lease
	RedeemOverNet(f.net, "smhost", "authA", tk, time.Minute, func(l *Lease, err error) { lease = l })
	f.eng.Run()
	if lease == nil {
		t.Error("redeem after heal failed")
	}
}

func TestNetworkIssueRespectsOversellBound(t *testing.T) {
	f := newNetFixture(t)
	var errs []error
	for i := 0; i < 3; i++ {
		IssueOverNet(f.net, "agent", "authA", IssueRequest{
			HolderName: f.agent.Name, HolderKey: f.agent.Key(),
			Type: capability.CPU, Amount: 4, NotAfter: time.Hour,
		}, time.Minute, func(_ *Ticket, err error) { errs = append(errs, err) })
		f.eng.Run()
	}
	if errs[0] != nil || errs[1] != nil {
		t.Errorf("first two issues: %v %v", errs[0], errs[1])
	}
	if !errors.Is(errs[2], ErrOverIssue) {
		t.Errorf("third issue: %v", errs[2])
	}
}

func TestNetworkBuyInsufficientStock(t *testing.T) {
	f := newNetFixture(t)
	var got error
	BuyOverNet(f.net, "smhost", "agent", BuyRequest{
		BuyerName: f.sm.Name, BuyerKey: f.sm.Public(),
		Site: "A", Type: capability.CPU, Amount: 1, NotAfter: time.Hour,
	}, time.Minute, func(_ []*Ticket, err error) { got = err })
	f.eng.Run()
	if !errors.Is(got, ErrInventory) {
		t.Errorf("empty-stock buy: %v", got)
	}
}
