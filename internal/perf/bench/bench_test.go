package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSpecsDerivedRates(t *testing.T) {
	specs := []Spec{{
		Name:        "noop",
		EventsPerOp: 100,
		Fn: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = make([]byte, 16)
			}
		},
	}}
	results, err := RunSpecs(specs, "10x")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results", len(results))
	}
	r := results[0]
	if r.Name != "noop" || r.NsPerOp <= 0 {
		t.Fatalf("bad result %+v", r)
	}
	if r.EventsPerSec <= 0 {
		t.Fatalf("events/sec not derived: %+v", r)
	}
	if r.SweepsPerSec != 0 {
		t.Fatalf("sweeps/sec should be absent: %+v", r)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := []Result{
		{Name: "a", NsPerOp: 123.5, AllocsPerOp: 7, BytesPerOp: 64, EventsPerSec: 8.1e6},
		{Name: "b", NsPerOp: 999, SweepsPerSec: 12},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost entries: %d vs %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("entry %d: %+v != %+v", i, in[i], out[i])
		}
	}
}

func TestCompare(t *testing.T) {
	baseline := []Result{
		{Name: "fast", NsPerOp: 100},
		{Name: "slow", NsPerOp: 100},
		{Name: "gone", NsPerOp: 100},
	}
	current := []Result{
		{Name: "fast", NsPerOp: 150},  // 1.5x: within 2x
		{Name: "slow", NsPerOp: 250},  // 2.5x: regression
		{Name: "fresh", NsPerOp: 1e9}, // no baseline: ignored
	}
	regs := Compare(current, baseline, 2.0)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions %v, want 1", len(regs), regs)
	}
	if regs[0].Name != "slow" || regs[0].Ratio != 2.5 {
		t.Fatalf("bad regression %+v", regs[0])
	}
	if !strings.Contains(regs[0].String(), "slow") {
		t.Fatalf("String() = %q", regs[0].String())
	}
}

func TestCompareEmptyBaseline(t *testing.T) {
	if regs := Compare([]Result{{Name: "x", NsPerOp: 5}}, nil, 2); regs != nil {
		t.Fatalf("regressions against empty baseline: %v", regs)
	}
}
