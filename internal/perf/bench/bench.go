// Package bench is the benchmark-regression harness: a spec registry
// measured through testing.Benchmark, a JSON report format, and a
// baseline comparison that fails CI on large slowdowns. It is a
// subpackage so that importing perf's executor does not link the testing
// package into library code.
package bench

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"testing"
)

// Spec is one registered benchmark: a testing-style body plus the
// domain-throughput conversion factors the JSON report derives from
// ns/op. Specs are shared between the bench test files (go test -bench)
// and the gridlab bench subcommand so both measure the same bodies.
type Spec struct {
	Name string
	// EventsPerOp is how many kernel events one b.N iteration processes
	// (0 when events/sec is meaningless for the benchmark).
	EventsPerOp float64
	// SweepsPerOp is how many whole chaos runs one iteration executes.
	SweepsPerOp float64
	Fn          func(b *testing.B)
}

// Result is one benchmark measurement, the unit of the JSON report and
// of the committed baseline file.
type Result struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	SweepsPerSec float64 `json:"sweeps_per_sec,omitempty"`
}

// benchInited guards the one-time testing.Init: calling it twice panics.
var benchInited bool

// benchRounds is how many times each spec is measured; the fastest round
// is reported. Noise (scheduler preemption, frequency ramp, a GC cycle
// landing mid-measurement) is strictly additive, so min-of-N is the
// standard estimator of the true cost — without it, a microbenchmark in
// the tens of microseconds can read 3x high on a short -benchtime and
// trip the regression gate spuriously.
const benchRounds = 3

// RunSpecs measures every spec with testing.Benchmark. benchtime is the
// standard -benchtime syntax ("1s", "100x"); empty keeps the testing
// default. Measurement uses the wall clock by necessity, so each spec is
// measured benchRounds times and the fastest round reported; the
// baseline comparison allows a generous ratio on top of that.
func RunSpecs(specs []Spec, benchtime string) ([]Result, error) {
	if !benchInited {
		testing.Init()
		benchInited = true
	}
	if benchtime != "" {
		if err := flag.Set("test.benchtime", benchtime); err != nil {
			return nil, fmt.Errorf("perf: bad benchtime %q: %v", benchtime, err)
		}
	}
	results := make([]Result, 0, len(specs))
	for _, spec := range specs {
		r := testing.Benchmark(spec.Fn)
		for round := 1; round < benchRounds; round++ {
			if again := testing.Benchmark(spec.Fn); again.N > 0 &&
				(r.N == 0 || again.T.Nanoseconds()*int64(r.N) < r.T.Nanoseconds()*int64(again.N)) {
				r = again
			}
		}
		if r.N == 0 {
			return nil, fmt.Errorf("perf: benchmark %s did not run", spec.Name)
		}
		res := Result{
			Name:        spec.Name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if res.NsPerOp > 0 {
			if spec.EventsPerOp > 0 {
				res.EventsPerSec = spec.EventsPerOp / (res.NsPerOp / 1e9)
			}
			if spec.SweepsPerOp > 0 {
				res.SweepsPerSec = spec.SweepsPerOp / (res.NsPerOp / 1e9)
			}
		}
		results = append(results, res)
	}
	return results, nil
}

// WriteJSON renders results as indented JSON, the committed-baseline
// format.
func WriteJSON(w io.Writer, results []Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// ReadJSON parses a results file written by WriteJSON.
func ReadJSON(r io.Reader) ([]Result, error) {
	var results []Result
	if err := json.NewDecoder(r).Decode(&results); err != nil {
		return nil, fmt.Errorf("perf: parsing baseline: %v", err)
	}
	return results, nil
}

// Regression is one benchmark that slowed past the allowed ratio.
type Regression struct {
	Name     string
	Ratio    float64 // new ns/op ÷ baseline ns/op
	Baseline float64
	Current  float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%.2fx > allowed)", r.Name, r.Current, r.Baseline, r.Ratio)
}

// Compare reports every result whose ns/op exceeds maxRatio × its
// baseline entry. Results without a baseline entry (new benchmarks) and
// baseline entries without a result are ignored.
func Compare(results, baseline []Result, maxRatio float64) []Regression {
	base := make(map[string]Result, len(baseline))
	for _, b := range baseline {
		base[b.Name] = b
	}
	var regs []Regression
	for _, r := range results {
		b, ok := base[r.Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		if ratio := r.NsPerOp / b.NsPerOp; ratio > maxRatio {
			regs = append(regs, Regression{Name: r.Name, Ratio: ratio, Baseline: b.NsPerOp, Current: r.NsPerOp})
		}
	}
	return regs
}
