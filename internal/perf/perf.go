// Package perf is the one audited owner of cross-goroutine fan-out in
// gridlab. Every other package is single-threaded by design: the sim
// kernel interleaves events on one goroutine precisely so runs are
// deterministic, and the gridlint enginerace analyzer enforces that no
// engine, rng, or report crosses a goroutine boundary elsewhere.
//
// perf parallelizes at the only safe granularity: whole runs. A sweep
// over a (seed × profile) or parameter grid builds one private engine
// per grid cell, executes cells across a worker pool, and writes each
// result into a preallocated slot indexed by grid position. Reducing the
// slots in fixed grid order afterwards makes the output byte-identical
// to a sequential sweep at any worker count — parallelism changes only
// wall-clock time, never results.
//
// The package is deliberately stdlib-only and imports nothing from the
// repository, so any layer (core, faultlab, the CLI) can use it without
// import cycles.
package perf

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count flag: n itself when positive, else
// GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n), fanned across min(workers, n)
// goroutines (workers <= 0 means GOMAXPROCS). Indexes are handed out
// atomically, so call order across goroutines is unspecified: fn must
// write only to state owned by index i — the slot-per-cell pattern — and
// must not touch shared state. workers == 1 degenerates to a plain loop
// on the calling goroutine, which is the reference behaviour parallel
// runs are tested against.
//
// A panic in any fn is captured and re-raised on the calling goroutine
// after the pool drains, so a deterministic panic surfaces identically
// at every worker count.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value
	)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if !run(fn, i, &panicked) {
				break
			}
		}
		if p := panicked.Load(); p != nil {
			panic(p.(*workerPanic).value)
		}
		return
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if !run(fn, i, &panicked) {
					return
				}
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p.(*workerPanic).value)
	}
}

// workerPanic wraps a captured panic value so a nil panic payload still
// records as "a panic happened".
type workerPanic struct{ value any }

// run executes fn(i), converting a panic into a stored first-panic and a
// stop signal for the worker that hit it.
func run(fn func(int), i int, panicked *atomic.Value) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			// CompareAndSwap keeps the first panic; later ones are dropped.
			panicked.CompareAndSwap(nil, &workerPanic{
				value: fmt.Sprintf("perf: worker panic on index %d: %v", i, r),
			})
			ok = false
		}
	}()
	fn(i)
	return true
}
