package perf

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 100} {
		const n = 257
		var hits [n]atomic.Int32
		ForEach(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	ran := false
	ForEach(0, 4, func(int) { ran = true })
	ForEach(-3, 4, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for n <= 0")
	}
}

func TestForEachSingleWorkerIsSequential(t *testing.T) {
	var order []int
	ForEach(10, 1, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("workers=1 order[%d] = %d, want %d", i, got, i)
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "index 7") || !strings.Contains(msg, "boom") {
					t.Fatalf("workers=%d: panic = %v, want index 7 / boom", workers, r)
				}
			}()
			ForEach(16, workers, func(i int) {
				if i == 7 {
					panic("boom")
				}
			})
		}()
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-1); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-1) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}
