package chaos_test

// Sweep macrobenchmark, shared with the gridlab bench subcommand via the
// internal/perf/benches registry (an external test package so the
// registry's chaos import is not a cycle). Run with:
//
//	go test ./internal/perf/chaos -bench Sweep -benchmem

import (
	"testing"

	"repro/internal/perf/benches"
)

func BenchmarkSweep(b *testing.B) {
	for _, spec := range benches.Sweep() {
		b.Run(spec.Name, spec.Fn)
	}
}
