// Package chaos fans faultlab's (seed × profile) chaos sweep across a
// worker pool. Every grid cell builds its own private engine, rng, and
// federation inside faultlab.RunChaos, so cells share nothing; results
// land in preallocated slots indexed by grid position and are reduced in
// the same seed-major order the sequential faultlab.Sweep uses. The
// output is therefore byte-identical to the sequential sweep at any
// worker count — this is asserted by the determinism tests, which run
// under -race in CI.
//
// It lives in a subpackage because perf itself must stay stdlib-only
// (core imports perf; faultlab imports core; importing faultlab from
// perf would cycle).
package chaos

import (
	"repro/internal/faultlab"
	"repro/internal/perf"
)

// Reports runs the chaos grid — seeds startSeed..startSeed+seeds-1 ×
// profiles — across workers goroutines and returns every report in
// seed-major grid order. workers <= 0 means GOMAXPROCS; workers == 1 is
// the sequential reference.
func Reports(startSeed int64, seeds int, profiles []faultlab.Profile, cfg faultlab.ChaosConfig, workers int) []*faultlab.Report {
	if seeds <= 0 || len(profiles) == 0 {
		return nil
	}
	reps := make([]*faultlab.Report, seeds*len(profiles))
	perf.ForEach(len(reps), workers, func(i int) {
		seed := startSeed + int64(i/len(profiles))
		reps[i] = faultlab.RunChaos(seed, profiles[i%len(profiles)], cfg)
	})
	return reps
}

// Sweep is the parallel counterpart of faultlab.Sweep: same grid, same
// aggregate, reduced through SweepResult.Add in the same fixed order, so
// the result is identical to the sequential sweep regardless of workers.
func Sweep(startSeed int64, seeds int, profiles []faultlab.Profile, cfg faultlab.ChaosConfig, workers int) *faultlab.SweepResult {
	res := &faultlab.SweepResult{}
	for _, rep := range Reports(startSeed, seeds, profiles, cfg, workers) {
		res.Add(rep)
	}
	return res
}
