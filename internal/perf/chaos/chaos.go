// Package chaos fans faultlab's (seed × profile) chaos sweep across a
// worker pool. The unit of parallelism is one SEED: each worker builds
// the seed's profile-independent scenario once, snapshots the engine, and
// re-forks it per profile (faultlab.ForkedSeedReports), so the build cost
// is paid seeds times instead of seeds×profiles times. Seeds share
// nothing — every seed owns a private engine, rng, and federation — and
// results land in preallocated per-seed slots reduced in the same
// seed-major order the sequential faultlab.Sweep uses. Forked runs are
// byte-identical to cold ones (the snaptest gates enforce this), so the
// output is identical to the sequential sweep at any worker count — the
// determinism tests assert this under -race in CI.
//
// It lives in a subpackage because perf itself must stay stdlib-only
// (core imports perf; faultlab imports core; importing faultlab from
// perf would cycle).
package chaos

import (
	"repro/internal/faultlab"
	"repro/internal/perf"
)

// Reports runs the chaos grid — seeds startSeed..startSeed+seeds-1 ×
// profiles — across workers goroutines and returns every report in
// seed-major grid order. workers <= 0 means GOMAXPROCS; workers == 1 is
// the sequential reference. Report.Tracer is shared per seed and left
// rewound by the seed's last fork; use the summary/violation fields, not
// the tracer, from sweep results.
func Reports(startSeed int64, seeds int, profiles []faultlab.Profile, cfg faultlab.ChaosConfig, workers int) []*faultlab.Report {
	if seeds <= 0 || len(profiles) == 0 {
		return nil
	}
	reps := make([]*faultlab.Report, seeds*len(profiles))
	ForEachReport(startSeed, seeds, profiles, cfg, workers, func(i int, rep *faultlab.Report) {
		reps[i] = rep
	})
	return reps
}

// ForEachReport runs the same grid as Reports but hands each report to
// visit as soon as its run completes — BEFORE the seed's next fork rewinds
// the shared tracer — which is the only way to harvest per-cell trace
// output from a parallel sweep. i is the seed-major grid index. visit runs
// on worker goroutines (concurrently across seeds, sequentially within
// one), so it must only touch per-cell state or synchronize.
func ForEachReport(startSeed int64, seeds int, profiles []faultlab.Profile, cfg faultlab.ChaosConfig, workers int, visit func(i int, rep *faultlab.Report)) {
	if seeds <= 0 || len(profiles) == 0 {
		return
	}
	perf.ForEach(seeds, workers, func(i int) {
		j := 0
		faultlab.ForkedSeedRun(startSeed+int64(i), profiles, cfg, func(rep *faultlab.Report) {
			visit(i*len(profiles)+j, rep)
			j++
		})
	})
}

// Sweep is the parallel counterpart of faultlab.Sweep: same grid, same
// aggregate, reduced through SweepResult.Add in the same fixed order, so
// the result is identical to the sequential sweep regardless of workers.
func Sweep(startSeed int64, seeds int, profiles []faultlab.Profile, cfg faultlab.ChaosConfig, workers int) *faultlab.SweepResult {
	res := &faultlab.SweepResult{}
	for _, rep := range Reports(startSeed, seeds, profiles, cfg, workers) {
		res.Add(rep)
	}
	return res
}

// ByzantineSweep is the parallel counterpart of
// faultlab.ByzantineSweep: one profile over a seed range, one seed per
// worker task, reduced through ByzantineSweepResult.Add in seed order —
// so the evidence table is byte-identical to the sequential sweep at
// any worker count.
func ByzantineSweep(startSeed int64, seeds int, p faultlab.Profile, cfg faultlab.ChaosConfig, workers int) *faultlab.ByzantineSweepResult {
	if seeds <= 0 {
		return faultlab.NewByzantineSweepResult()
	}
	reps := make([]*faultlab.Report, seeds)
	perf.ForEach(seeds, workers, func(i int) {
		reps[i] = faultlab.RunChaos(startSeed+int64(i), p, cfg)
	})
	res := faultlab.NewByzantineSweepResult()
	for _, rep := range reps {
		res.Add(rep)
	}
	return res
}
