package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/faultlab"
)

// testConfig is a shrunken chaos scenario: full stack, short horizon, so
// the N-vs-1 worker comparisons stay fast enough for -race CI runs.
func testConfig() faultlab.ChaosConfig {
	cfg := faultlab.DefaultChaosConfig()
	cfg.Sites = 4
	cfg.Target = 2
	cfg.Horizon = 90 * time.Minute
	cfg.Converge = 15 * time.Minute
	return cfg
}

// reportKey is the JSON-comparable projection of a report: everything
// observable from a run except the tracer handle.
type reportKey struct {
	Seed         int64
	Profile      string
	Trace        []string
	Violations   []faultlab.Violation
	Summary      string
	Availability float64
	LeaseLapses  int
	Flags        string
}

func marshalReports(t *testing.T, reps []*faultlab.Report) []byte {
	t.Helper()
	keys := make([]reportKey, len(reps))
	for i, r := range reps {
		keys[i] = reportKey{
			Seed: r.Seed, Profile: r.Profile, Trace: r.Trace,
			Violations: r.Violations, Summary: r.Summary,
			Availability: r.Availability, LeaseLapses: r.LeaseLapses,
			Flags: r.Flags,
		}
	}
	b, err := json.Marshal(keys)
	if err != nil {
		t.Fatalf("marshal reports: %v", err)
	}
	return b
}

// TestParallelSweepByteIdentical is the acceptance gate for the parallel
// executor: the same grid at workers=1 and workers=8 must produce
// byte-identical per-report JSON and an identical aggregate.
func TestParallelSweepByteIdentical(t *testing.T) {
	cfg := testConfig()
	profiles := faultlab.Profiles()

	seq := Reports(1, 2, profiles, cfg, 1)
	par := Reports(1, 2, profiles, cfg, 8)
	if len(seq) != len(par) {
		t.Fatalf("report count: workers=1 %d, workers=8 %d", len(seq), len(par))
	}
	a, b := marshalReports(t, seq), marshalReports(t, par)
	if !bytes.Equal(a, b) {
		t.Fatalf("workers=8 reports differ from workers=1:\n--- w1 ---\n%s\n--- w8 ---\n%s", a, b)
	}

	ra := Sweep(1, 2, profiles, cfg, 1)
	rb := Sweep(1, 2, profiles, cfg, 8)
	if ra.Runs != rb.Runs || ra.ViolationN != rb.ViolationN ||
		ra.AvailabilitySum != rb.AvailabilitySum || ra.LeaseLapses != rb.LeaseLapses {
		t.Fatalf("aggregates differ: w1=%+v w8=%+v", ra, rb)
	}
}

// TestParallelMatchesSequentialFaultlabSweep pins the parallel path to
// the pre-existing sequential API, not just to itself.
func TestParallelMatchesSequentialFaultlabSweep(t *testing.T) {
	cfg := testConfig()
	profiles := faultlab.Profiles()
	want := faultlab.Sweep(5, 2, profiles, cfg)
	got := Sweep(5, 2, profiles, cfg, 0)
	if got.Runs != want.Runs || got.ViolationN != want.ViolationN ||
		got.AvailabilitySum != want.AvailabilitySum || got.LeaseLapses != want.LeaseLapses {
		t.Fatalf("parallel sweep %+v != sequential faultlab.Sweep %+v", got, want)
	}
	if (got.First == nil) != (want.First == nil) {
		t.Fatalf("First mismatch: parallel %v, sequential %v", got.First, want.First)
	}
	if got.First != nil && (got.First.Seed != want.First.Seed || got.First.Profile != want.First.Profile) {
		t.Fatalf("first failure: parallel (%d,%s) != sequential (%d,%s)",
			got.First.Seed, got.First.Profile, want.First.Seed, want.First.Profile)
	}
}

// TestParallelTraceIdentical turns the obs tracing layer on and asserts
// the JSONL trace of every grid cell is byte-identical across worker
// counts: parallelism must not perturb even the observability stream. The
// traces are drained inside the visit callback — a seed's forks share one
// tracer, and each fork rewinds it.
func TestParallelTraceIdentical(t *testing.T) {
	cfg := testConfig()
	cfg.Trace = true
	profiles := []faultlab.Profile{faultlab.Profiles()[0], faultlab.Quiet()}

	drain := func(workers int) [][]byte {
		out := make([][]byte, 2*len(profiles))
		ForEachReport(3, 2, profiles, cfg, workers, func(i int, rep *faultlab.Report) {
			var b bytes.Buffer
			if err := rep.Tracer.WriteJSONL(&b); err != nil {
				t.Errorf("cell %d (w%d): trace: %v", i, workers, err)
			}
			out[i] = b.Bytes()
		})
		return out
	}
	seq, par := drain(1), drain(8)
	for i := range seq {
		if !bytes.Equal(seq[i], par[i]) {
			t.Fatalf("cell %d: traces differ (%d vs %d bytes)", i, len(seq[i]), len(par[i]))
		}
	}
}

// TestReportsGridOrder asserts slot i holds the (seed-major) grid cell i.
func TestReportsGridOrder(t *testing.T) {
	cfg := testConfig()
	profiles := faultlab.Profiles()[:2]
	reps := Reports(10, 2, profiles, cfg, 4)
	for i, rep := range reps {
		wantSeed := int64(10 + i/len(profiles))
		wantProfile := profiles[i%len(profiles)].Name
		if rep.Seed != wantSeed || rep.Profile != wantProfile {
			t.Fatalf("slot %d: (%d,%s), want (%d,%s)", i, rep.Seed, rep.Profile, wantSeed, wantProfile)
		}
	}
}

func TestEmptyGrid(t *testing.T) {
	cfg := testConfig()
	if got := Reports(0, 0, faultlab.Profiles(), cfg, 4); got != nil {
		t.Fatalf("Reports with 0 seeds = %v, want nil", got)
	}
	if res := Sweep(0, 0, faultlab.Profiles(), cfg, 4); res.Runs != 0 {
		t.Fatalf("Sweep with 0 seeds ran %d cells", res.Runs)
	}
}

// byzTestConfig is the shrunken byzantine scenario for the
// worker-determinism gates: the small chaos grid plus a 2-vs-1 broker
// market with the full defense stack on.
func byzTestConfig() faultlab.ChaosConfig {
	cfg := testConfig()
	cfg.Resilience = true
	cfg.Lease = 30 * time.Minute
	cfg.ReconcileEvery = 10 * time.Minute
	cfg.Horizon = 3 * time.Hour
	byz := faultlab.DefaultByzantineConfig()
	byz.HonestBrokers = 2
	byz.ByzantineBrokers = 1
	byz.StockPerSite = 50
	byz.Deposit = 5
	byz.AttackEvery = 20 * time.Minute
	cfg.Byzantine = byz
	return cfg
}

// TestByzantineSweepWorkerByteIdentical is satellite coverage for the
// byzantine evidence pipeline: the rendered sweep — per-seed shares,
// slash totals, attack tallies — must be byte-identical at workers=1 and
// workers=8, and both must match the sequential faultlab reducer.
func TestByzantineSweepWorkerByteIdentical(t *testing.T) {
	cfg := byzTestConfig()
	p := faultlab.Profiles()[2]
	w1 := ByzantineSweep(1, 3, p, cfg, 1)
	w8 := ByzantineSweep(1, 3, p, cfg, 8)
	if w1.String() != w8.String() {
		t.Fatalf("workers=8 sweep differs from workers=1:\n--- w1 ---\n%s\n--- w8 ---\n%s", w1, w8)
	}
	seq := faultlab.ByzantineSweep(1, 3, p, cfg)
	if seq.String() != w1.String() {
		t.Fatalf("parallel sweep differs from sequential:\n--- seq ---\n%s\n--- par ---\n%s", seq, w1)
	}
}

// TestByzantineReportsWorkerByteIdentical drills below the aggregate:
// every per-run byzantine section — scoreboard snapshot, collateral
// held/slashed, replay and forgery counters — plus the summary rows
// derived from it must be byte-identical across worker counts.
func TestByzantineReportsWorkerByteIdentical(t *testing.T) {
	cfg := byzTestConfig()
	profiles := []faultlab.Profile{faultlab.Profiles()[2]}
	drain := func(workers int) [][]byte {
		out := make([][]byte, 3)
		ForEachReport(1, 3, profiles, cfg, workers, func(i int, rep *faultlab.Report) {
			var b bytes.Buffer
			b.WriteString(rep.Summary)
			if rep.Byzantine != nil {
				fmt.Fprintf(&b, "byzantine=%+v\n", *rep.Byzantine)
			}
			out[i] = b.Bytes()
		})
		return out
	}
	seq, par := drain(1), drain(8)
	for i := range seq {
		if rep := seq[i]; len(rep) == 0 {
			t.Fatalf("cell %d: empty serialization", i)
		}
		if !bytes.Equal(seq[i], par[i]) {
			t.Fatalf("cell %d: byzantine sections differ:\n--- w1 ---\n%s\n--- w8 ---\n%s", i, seq[i], par[i])
		}
	}
}

func TestByzantineSweepEmptyGrid(t *testing.T) {
	cfg := byzTestConfig()
	if res := ByzantineSweep(0, 0, faultlab.Profiles()[2], cfg, 4); res.Runs != 0 {
		t.Fatalf("ByzantineSweep with 0 seeds ran %d cells", res.Runs)
	}
}
