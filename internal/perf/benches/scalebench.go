package benches

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/capability"
	"repro/internal/identity"
	"repro/internal/mds"
	"repro/internal/perf/bench"
	"repro/internal/sharp"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// depth4Tickets builds n depth-4 SHARP tickets that share a three-link
// delegation prefix (authority -> agent -> sub -> sub2, then one leaf
// resale each) — the shape RedeemBatch amortizes: n×4 link signatures
// presented, 3+n distinct after dedup.
func depth4Tickets(n int) (tickets []*sharp.Ticket, authKey []byte) {
	eng := sim.NewEngine(1)
	rng := eng.ForkRand()
	nm := capability.NewNodeManager("S", eng, rng, map[capability.ResourceType]float64{capability.CPU: 1e9})
	signer := identity.NewPrincipal("auth", rng)
	auth := sharp.NewAuthority(eng, "S", signer, nm, map[capability.ResourceType]float64{capability.CPU: 1e9})
	agent := sharp.NewAgent(identity.NewPrincipal("agent", rng))
	sub := sharp.NewAgent(identity.NewPrincipal("sub", rng))
	sub2 := sharp.NewAgent(identity.NewPrincipal("sub2", rng))
	sm := identity.NewPrincipal("sm", rng)

	root, err := auth.IssueTicket(agent.Name, agent.Key(), capability.CPU, float64(n), 0, time.Hour)
	if err != nil {
		panic(err)
	}
	if err := agent.Acquire(root); err != nil {
		panic(err)
	}
	mid, err := agent.Sell(sub.Name, sub.Key(), "S", capability.CPU, float64(n), 0, time.Hour)
	if err != nil {
		panic(err)
	}
	if err := sub.Acquire(mid[0]); err != nil {
		panic(err)
	}
	mid2, err := sub.Sell(sub2.Name, sub2.Key(), "S", capability.CPU, float64(n), 0, time.Hour)
	if err != nil {
		panic(err)
	}
	if err := sub2.Acquire(mid2[0]); err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		leaves, err := sub2.Sell(sm.Name, sm.Public(), "S", capability.CPU, 1, 0, time.Hour)
		if err != nil {
			panic(err)
		}
		tickets = append(tickets, leaves...)
	}
	return tickets, signer.Public()
}

// verifyChain measures the naive path: one full depth-4 chain
// verification (four ed25519 checks) per ticket, no memoization.
func verifyChain() func(b *testing.B) {
	return func(b *testing.B) {
		tickets, key := depth4Tickets(1)
		t := tickets[0]
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := t.Verify(key, 0); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// verifyBatch64 measures the amortized path: 64 shared-prefix tickets
// verified through a fresh memo cache per iteration (64×4 = 256 link
// signatures presented, 67 distinct ed25519 checks). The committed
// baseline pins this at >=3x the per-ticket throughput of
// sharp/verify-chain — the batching acceptance gate.
func verifyBatch64() func(b *testing.B) {
	return func(b *testing.B) {
		tickets, key := depth4Tickets(64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cache := identity.NewSigCache(identity.DefaultSigCacheCap)
			for _, t := range tickets {
				if err := t.VerifyCached(key, 0, cache); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// registerRegion measures steady-state soft-state refresh into a warm
// sharded region index: n records re-registered per iteration, each
// rewriting its dense slot in place (alloc-free after warmup).
func registerRegion(n int) func(b *testing.B) {
	return func(b *testing.B) {
		eng := sim.NewEngine(1)
		net := simnet.New(eng)
		net.AddSite("R", 0, 0)
		net.AddHost("bench/index", "R", 1e9)
		rg := mds.NewRegionIndex(eng, net, "bench/index", "bench", nil)
		attrs := make(map[string]string, 4)
		regs := make([]mds.Registration, n)
		cpus := make([]string, n)
		load := make([]string, n)
		for j := range regs {
			regs[j] = mds.Registration{Rec: mds.Record{
				Name:   fmt.Sprintf("s%03d/n%03d", j/100, j%100),
				Source: fmt.Sprintf("s%03d", j/100),
				Attrs:  attrs,
			}, TTL: time.Hour}
			cpus[j] = fmt.Sprint(2 << uint(j%4))
			load[j] = fmt.Sprint(j % 32)
		}
		// Attr values are precomputed: the benchmark isolates the index's
		// register path, which is alloc-free in steady state.
		fill := func(j int) {
			attrs["os"] = "linux"
			attrs["cpus"] = cpus[j]
			attrs["load"] = load[j]
			attrs["site"] = regs[j].Rec.Source
		}
		for j := range regs {
			fill(j)
			if err := rg.RegisterRecord(regs[j]); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range regs {
				fill(j)
				if err := rg.RegisterRecord(regs[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// querySharded measures root fan-out over a sharded federation: 8
// regions × 1,250 records, a fixed query mix (prunable, broad, and
// numeric-range shapes) per iteration.
func querySharded() func(b *testing.B) {
	return func(b *testing.B) {
		eng := sim.NewEngine(1)
		net := simnet.New(eng)
		net.AddSite("HQ", 0, 0)
		net.AddHost("root/index", "HQ", 1e9)
		root := mds.NewRootIndex(eng, net, "root/index")
		in := mds.NewInterner()
		const regions, perRegion = 8, 1250
		attrs := make(map[string]string, 4)
		for r := 0; r < regions; r++ {
			name := fmt.Sprintf("R%02d", r)
			host := name + "/index"
			net.AddHost(host, "HQ", 1e9)
			rg := mds.NewRegionIndex(eng, net, host, name, in)
			for j := 0; j < perRegion; j++ {
				attrs["region"] = name
				attrs["os"] = "linux"
				attrs["cpus"] = fmt.Sprint(2 << uint(j%4))
				attrs["load"] = fmt.Sprint(j % 32)
				if err := rg.RegisterRecord(mds.Registration{Rec: mds.Record{
					Name:   fmt.Sprintf("%s/n%05d", name, j),
					Source: name,
					Attrs:  attrs,
				}, TTL: time.Hour}); err != nil {
					b.Fatal(err)
				}
			}
			root.AttachRegion(rg)
			root.AbsorbSummary(rg.Summary(time.Hour))
		}
		queries := []mds.Query{
			{Filters: []mds.Filter{{Attr: "region", Op: mds.FEq, Value: "R03"}}, Limit: 10},
			{Filters: []mds.Filter{{Attr: "os", Op: mds.FEq, Value: "linux"}}, Limit: 10},
			{Filters: []mds.Filter{{Attr: "cpus", Op: mds.FGe, Value: "16"}}, Limit: 10},
			{Filters: []mds.Filter{{Attr: "ghost", Op: mds.FEq, Value: "x"}}},
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				if _, err := root.QueryShards(q); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// Scale returns the PR-10 scale-path benchmarks: batched SHARP
// verification vs the naive chain walk, and the sharded MDS hot paths.
func Scale() []bench.Spec {
	return []bench.Spec{
		{Name: "sharp/verify-chain", EventsPerOp: 1, Fn: verifyChain()},
		{Name: "sharp/verify-batch-64", EventsPerOp: 64, Fn: verifyBatch64()},
		{Name: "mds/register-10k", EventsPerOp: 10_000, Fn: registerRegion(10_000)},
		{Name: "mds/query-sharded", EventsPerOp: 4, Fn: querySharded()},
	}
}
