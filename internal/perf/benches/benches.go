// Package benches registers the concrete benchmark specs the repository
// tracks for regressions: sim-kernel microbenchmarks (schedule/fire,
// cancel churn, ticker steady state) and chaos-sweep macrobenchmarks.
// The same specs back the bench test files (go test -bench) and the
// gridlab bench subcommand, so the committed BENCH_baseline.json and
// ad-hoc test runs measure identical bodies.
package benches

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/faultlab"
	"repro/internal/perf/bench"
	"repro/internal/perf/chaos"
	"repro/internal/sim"
)

// scheduleFire builds a fresh engine per iteration, schedules n events
// over a spread of virtual times, and drains the queue — the kernel's
// push/pop churn path.
func scheduleFire(n int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := sim.NewEngine(1)
			for j := 0; j < n; j++ {
				e.Schedule(time.Duration(j%997)*time.Millisecond, func() {})
			}
			e.Run()
		}
	}
}

// cancelChurn schedules n events, cancels every other one (exercising
// lazy tombstones and compaction), and drains the rest.
func cancelChurn(n int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := sim.NewEngine(1)
			evs := make([]sim.Event, 0, n)
			for j := 0; j < n; j++ {
				evs = append(evs, e.Schedule(time.Duration(j%997)*time.Millisecond, func() {}))
			}
			for j := 0; j < len(evs); j += 2 {
				e.Cancel(evs[j])
			}
			e.Run()
		}
	}
}

// ticker drives one ticker for n ticks per iteration — the steady-state
// node-recycling path, allocation-free after warmup.
func ticker(n int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		e := sim.NewEngine(1)
		count := 0
		//gridlint:ignore snapcapture microbenchmark counter on a throwaway engine that is never snapshotted
		tk := e.NewTicker(time.Second, func() { count++ })
		defer tk.Stop()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.RunUntil(e.Now() + time.Duration(n)*time.Second)
		}
	}
}

// snapshotBench measures Engine.Snapshot over an engine with n pending
// events — the deep walker's capture cost.
func snapshotBench(n int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		e := sim.NewEngine(1)
		for j := 0; j < n; j++ {
			e.Schedule(time.Duration(j%997)*time.Millisecond, func() {})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = e.Snapshot()
		}
	}
}

// forkBench measures Snapshot.Fork: one capture, b.N rewinds, each
// followed by a short replay so the restored heap is actually exercised.
func forkBench(n int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		e := sim.NewEngine(1)
		for j := 0; j < n; j++ {
			e.Schedule(time.Duration(j%997)*time.Millisecond, func() {})
		}
		snap := e.Snapshot()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			snap.Fork()
			e.RunUntil(time.Millisecond)
		}
	}
}

// fluidChurn measures the max-min allocator under flow churn: a
// clustered topology (16 clusters of 4 resources, consumers confined to
// one cluster) with a steady pool of 64 long-lived consumers, through
// `ops` remove+add pairs. Components stay small, so the incremental
// dirty-set allocator re-fills ~4 consumers per change where the full
// reference mode re-fills all 64 and reschedules every completion event
// — the committed baseline pins the incremental entry at ≥2× the
// admitted+removed flows/sec of the full one.
func fluidChurn(ops int, full bool) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := sim.NewEngine(1)
			s := sim.NewFluidSystem(e)
			s.SetFullRecompute(full)
			const clusters, per = 16, 4
			res := make([]*sim.FluidResource, clusters*per)
			for j := range res {
				res[j] = s.NewResource(fmt.Sprintf("r%d", j), 100)
			}
			// Long-lived consumers (work far beyond the horizon) so the
			// measured cost is pure add/remove reallocation churn.
			add := func(c, k int) *sim.FluidConsumer {
				fc := &sim.FluidConsumer{Name: "f", Weight: 1 + float64(k%3)}
				s.Add(fc, 1e12, res[c*per+k%per], res[c*per+(k+1)%per])
				return fc
			}
			live := make([]*sim.FluidConsumer, 0, clusters*4)
			for c := 0; c < clusters; c++ {
				for k := 0; k < 4; k++ {
					live = append(live, add(c, k))
				}
			}
			for op := 0; op < ops; op++ {
				idx := op % len(live)
				s.Remove(live[idx])
				live[idx] = add(op%clusters, op)
				e.RunUntil(e.Now() + time.Millisecond)
			}
		}
	}
}

// Fluid returns the fluid-kernel churn benchmarks: the incremental
// allocator and the full-recompute reference running the identical
// churn script (the differential gates prove their outputs identical;
// these measure the cost gap).
func Fluid() []bench.Spec {
	const ops = 1000
	return []bench.Spec{{
		Name:        "fluid/churn-1k",
		EventsPerOp: 2 * ops, // flows admitted + removed per iteration
		Fn:          fluidChurn(ops, false),
	}, {
		Name:        "fluid/incremental-vs-full",
		EventsPerOp: 2 * ops,
		Fn:          fluidChurn(ops, true),
	}}
}

// Kernel returns the sim-kernel microbenchmark specs. sizes lists the
// schedule/fire churn sizes; Smoke uses the small ones, the bench test
// files add the 1M-event variant.
func Kernel(sizes ...int) []bench.Spec {
	if len(sizes) == 0 {
		sizes = []int{10_000, 100_000}
	}
	var specs []bench.Spec
	for _, n := range sizes {
		specs = append(specs, bench.Spec{
			Name:        benchName("kernel/schedule-fire", n),
			EventsPerOp: float64(n),
			Fn:          scheduleFire(n),
		})
	}
	specs = append(specs,
		bench.Spec{Name: "kernel/cancel-churn-10k", EventsPerOp: 10_000, Fn: cancelChurn(10_000)},
		bench.Spec{Name: "kernel/ticker-1k", EventsPerOp: 1_000, Fn: ticker(1_000)},
		bench.Spec{Name: "kernel/snapshot-10k", EventsPerOp: 10_000, Fn: snapshotBench(10_000)},
		bench.Spec{Name: "kernel/fork-10k", EventsPerOp: 10_000, Fn: forkBench(10_000)},
	)
	return specs
}

// Sweep returns the chaos-sweep macrobenchmarks: a shrunken scenario
// (4 sites, 90-minute horizon) over one seed × all profiles, run through
// the parallel executor at workers=1 so the measurement is the single-run
// cost, not host parallelism. The warm-fork spec builds each seed's
// federation once and re-forks it per profile (the production Sweep
// path); the cold-start spec rebuilds per cell, preserved as the
// reference the fork speedup is judged against — gridlab bench reports
// both in sweeps/sec, and the baseline pins warm strictly above cold.
func Sweep() []bench.Spec {
	cfg := faultlab.DefaultChaosConfig()
	cfg.Sites = 4
	cfg.Target = 2
	cfg.Horizon = 90 * time.Minute
	cfg.Converge = 15 * time.Minute
	profiles := faultlab.Profiles()
	return []bench.Spec{{
		Name:        "sweep/chaos-small",
		SweepsPerOp: float64(len(profiles)),
		Fn: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				chaos.Sweep(1, 1, profiles, cfg, 1)
			}
		},
	}, {
		Name:        "sweep/chaos-small-cold",
		SweepsPerOp: float64(len(profiles)),
		Fn: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := &faultlab.SweepResult{}
				for _, p := range profiles {
					res.Add(faultlab.RunChaos(1, p, cfg))
				}
			}
		},
	}}
}

// All returns the full registry the gridlab bench subcommand runs.
func All() []bench.Spec {
	return append(append(append(Kernel(), Fluid()...), Scale()...), Sweep()...)
}

func benchName(prefix string, n int) string {
	switch {
	case n >= 1_000_000 && n%1_000_000 == 0:
		return fmt.Sprintf("%s-%dm", prefix, n/1_000_000)
	case n >= 1_000 && n%1_000 == 0:
		return fmt.Sprintf("%s-%dk", prefix, n/1_000)
	default:
		return fmt.Sprintf("%s-%d", prefix, n)
	}
}
