package benches_test

// Scale-path benchmarks, shared with the gridlab bench subcommand via
// the registry. Run with:
//
//	go test ./internal/perf/benches -bench Scale -benchmem
//
// sharp/verify-batch-64 vs sharp/verify-chain is the batching
// acceptance gate: per-ticket verification of a shared-prefix batch
// must be at least 3x cheaper than the naive chain walk.

import (
	"testing"

	"repro/internal/perf/benches"
)

func BenchmarkScale(b *testing.B) {
	for _, spec := range benches.Scale() {
		b.Run(spec.Name, spec.Fn)
	}
}

// TestBatchVerifySpeedup asserts the >=3x amortization gate using the
// registry's own benchmark bodies, so CI enforces it without depending
// on wall-clock baselines: it times one naive chain verify against the
// per-ticket cost of the 64-ticket memoized batch.
func TestBatchVerifySpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate")
	}
	specs := benches.Scale()
	var chainNs, batchNs float64
	for _, s := range specs {
		r := testing.Benchmark(s.Fn)
		perEvent := float64(r.T.Nanoseconds()) / float64(r.N) / s.EventsPerOp
		switch s.Name {
		case "sharp/verify-chain":
			chainNs = perEvent
		case "sharp/verify-batch-64":
			batchNs = perEvent
		}
	}
	if chainNs == 0 || batchNs == 0 {
		t.Fatalf("missing specs: chain=%v batch=%v", chainNs, batchNs)
	}
	speedup := chainNs / batchNs
	t.Logf("verify-chain %.0f ns/ticket, verify-batch-64 %.0f ns/ticket, speedup %.2fx", chainNs, batchNs, speedup)
	if speedup < 3 {
		t.Fatalf("batch verify speedup %.2fx, want >= 3x", speedup)
	}
}
