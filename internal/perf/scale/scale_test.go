package scale

import (
	"bytes"
	"testing"
	"time"
)

// smallConfig is a quick federation that still exercises every
// mechanism: multiple regions, growth windows, batching, renew/release
// churn, summary push, and the root query phase.
func smallConfig() Config {
	return Config{
		Sites:           12,
		NodesPerSite:    8,
		LeasesPerSite:   48,
		Regions:         4,
		Batch:           16,
		RefreshInterval: 2 * time.Minute,
		Windows:         2,
	}
}

func render(rep *Report) []byte {
	var buf bytes.Buffer
	rep.Render(&buf)
	return buf.Bytes()
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	cfg := smallConfig()
	base := render(Run(7, cfg, 1))
	for _, w := range []int{2, 4} {
		got := render(Run(7, cfg, w))
		if !bytes.Equal(base, got) {
			t.Fatalf("report differs between workers=1 and workers=%d:\n--- w1 ---\n%s\n--- w%d ---\n%s",
				w, base, w, got)
		}
	}
	if rerun := render(Run(7, cfg, 1)); !bytes.Equal(base, rerun) {
		t.Fatalf("report differs across identical reruns")
	}
	if diff := render(Run(8, cfg, 1)); bytes.Equal(base, diff) {
		t.Fatalf("different seeds produced identical reports")
	}
}

func TestRunAccounting(t *testing.T) {
	cfg := smallConfig()
	rep := Run(3, cfg, 2)

	if rep.SitesN != cfg.Sites {
		t.Fatalf("sites = %d, want %d", rep.SitesN, cfg.Sites)
	}
	wantNodes := cfg.Sites * cfg.NodesPerSite
	if rep.NodesLiveN != wantNodes {
		t.Fatalf("mds live = %d, want %d (soft-state should keep every node fresh)", rep.NodesLiveN, wantNodes)
	}
	if rep.MDSSlotsN != wantNodes {
		t.Fatalf("mds slots = %d, want %d (dense store, no churn growth)", rep.MDSSlotsN, wantNodes)
	}
	wantGranted := cfg.Sites * cfg.LeasesPerSite
	if rep.GrantedN != wantGranted {
		t.Fatalf("granted = %d, want %d", rep.GrantedN, wantGranted)
	}
	wantReleased := wantGranted / releaseEvery
	if rep.ReleasedN != wantReleased {
		t.Fatalf("released = %d, want %d", rep.ReleasedN, wantReleased)
	}
	if rep.LiveN != wantGranted-wantReleased {
		t.Fatalf("live = %d, want %d", rep.LiveN, wantGranted-wantReleased)
	}
	// Compact store: slots are O(live), never O(granted). With releases
	// interleaved into the redeem stream the free list recycles, so the
	// high-water mark stays below the grant count.
	if rep.LeaseSlotsN >= wantGranted {
		t.Fatalf("lease slots = %d, want < %d granted (compact store should recycle)", rep.LeaseSlotsN, wantGranted)
	}
	if rep.LeaseSlotsN < rep.LiveN {
		t.Fatalf("lease slots = %d < live %d", rep.LeaseSlotsN, rep.LiveN)
	}
	// Batched verification amortizes: every ticket is a depth-1 chain
	// sharing nothing, but renew-path and batch memoization still dedup
	// the issuer signature checks. The gate is the acceptance bar from
	// the issue: >= 3x fewer verifies than signatures presented.
	if rep.BatchVerifiedN <= 0 || rep.BatchSigN <= 0 {
		t.Fatalf("batch counters empty: sigs=%d verified=%d", rep.BatchSigN, rep.BatchVerifiedN)
	}
	if rep.RenewedN == 0 {
		t.Fatalf("no renewals happened")
	}
	if len(rep.RootLines) == 0 {
		t.Fatalf("root query phase produced no lines")
	}
	if len(rep.Perf) != 0 {
		t.Fatalf("no WallClock injected but Perf lines present: %v", rep.Perf)
	}
}

func TestRunWindowsStream(t *testing.T) {
	cfg := smallConfig()
	rep := Run(5, cfg, 1)
	for _, cell := range rep.Cells {
		if len(cell.Lines) != cfg.Windows {
			t.Fatalf("region %s emitted %d window lines, want %d:\n%v",
				cell.RegionName, len(cell.Lines), cfg.Windows, cell.Lines)
		}
	}
}

func TestRegistrationFlatness(t *testing.T) {
	cfg := smallConfig()
	var fake time.Duration
	clock := func() time.Duration { fake += time.Millisecond; return fake }
	early, late := RegistrationFlatness(1, cfg, 16, 4, clock)
	if early <= 0 || late <= 0 {
		t.Fatalf("probe returned early=%v late=%v", early, late)
	}
	if e, l := RegistrationFlatness(1, cfg, 16, 4, nil); e != 0 || l != 0 {
		t.Fatalf("nil clock should disable the probe, got %v/%v", e, l)
	}
	if e, l := RegistrationFlatness(1, cfg, 4, 4, clock); e != 0 || l != 0 {
		t.Fatalf("window not fitting should disable the probe, got %v/%v", e, l)
	}
}
