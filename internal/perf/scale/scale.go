// Package scale is the planetary-scale federation experiment (E14): it
// grows a federation past both papers' ambitions — GT2/GT3 "20-50
// sites ... expected to scale to 100s", PlanetLab ~1,000 sites — to
// 1,000 sites / 100k nodes / ~1M concurrent leases in one
// deterministic run, exercising the three scale-flat mechanisms this
// milestone added: the sharded MDS (dense regional indexes + summary
// pruning at the root), batched SHARP verification (dedup + memo), and
// the compact O(live) lease store.
//
// Parallelism follows the perf contract: the federation is partitioned
// into regions, each region is one grid cell with its own private
// engine, cells run across a worker pool into preallocated slots, and
// the report reduces slots in region order — so stdout is
// byte-identical at any worker count. Cross-region state (the root
// index) is assembled after the barrier from per-region results.
//
// Wall-clock measurements (sites/sec, leases/sec, peak RSS, the
// registration-flatness probe) never touch the deterministic report:
// they are produced only when the caller injects a clock (the CLI owns
// time.Now; this package must stay wall-time-free) and are rendered on
// stderr by the caller.
package scale

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/capability"
	"repro/internal/identity"
	"repro/internal/mds"
	"repro/internal/perf"
	"repro/internal/sharp"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Config sizes the experiment.
type Config struct {
	// Sites is the federation size; NodesPerSite the sensor records each
	// site registers; LeasesPerSite the leases each site's service
	// managers redeem and hold live.
	Sites, NodesPerSite, LeasesPerSite int
	// Regions is the MDS shard count (one parallel cell per region).
	Regions int
	// Batch is the RedeemBatch size.
	Batch int
	// RefreshInterval is the MDS soft-state push period.
	RefreshInterval time.Duration
	// Windows is how many streaming metric windows each cell emits.
	Windows int
	// WallClock, when non-nil, stamps per-phase wall durations into
	// Report.Perf (stderr material). Injected by the CLI — never called
	// on the deterministic path.
	WallClock func() time.Duration
}

// DefaultConfig is the full planetary run: 1,000 sites, 100k nodes,
// 1M leases target.
func DefaultConfig() Config {
	return Config{
		Sites:           1000,
		NodesPerSite:    100,
		LeasesPerSite:   1000,
		Regions:         16,
		Batch:           64,
		RefreshInterval: 10 * time.Minute,
		Windows:         4,
	}
}

// growthStep is the virtual time between site joins within a cell.
const growthStep = 20 * time.Second

// releaseEvery / renewEvery pick which leases churn: every 16th redeem
// is released immediately (exercising slot recycling) and every 8th is
// renewed once (exercising the memoized renew path).
const (
	releaseEvery = 16
	renewEvery   = 8
)

// siteState is one site's resource-management stack inside a cell.
type siteState struct {
	name  string
	nm    *capability.NodeManager
	auth  *sharp.Authority
	agent *sharp.Agent
	sm    *identity.Principal
	gris  *mds.GRIS
}

// cell is one region's slot: a private engine simulating the region's
// sites end to end. It is the cell engine's SnapRoot, so every struct
// the growth ticker mutates is snapshot-reachable.
type cell struct {
	eng *sim.Engine
	net *simnet.Network
	cfg Config

	regionIdx  int
	regionName string
	regionHost string
	region     *mds.RegionIndex

	siteLo, siteHi int // global site index range [lo, hi)
	nextSite       int // next site to grow (ticker cursor)

	sites  []*siteState
	leases []*sharp.Lease

	// Streaming window accumulators — reset at each window boundary;
	// only the rendered lines are retained.
	winSites, winLeases, winReleased, winRenewed int
	winSigs, winVerified                         int
	windowSize                                   int

	lines []string

	// Totals.
	grantedN, releasedN, renewedN int
}

// Result is one cell's reduced output plus the live region handle the
// root phase attaches for query fan-out.
type Result struct {
	RegionName string
	Region     *mds.RegionIndex

	Lines []string

	SitesN, NodesLive, RegisterN, SlotsN    int
	GrantedN, LiveN, LeaseSlotsN, ReleasedN int
	RenewedN                                int
	BatchSigN, BatchVerifiedN               int
	SigHits, SigMisses                      int
	InternedKeys                            int
	// KeyFp fingerprints the region's first agent key, making the seed
	// observable in the otherwise purely structural report.
	KeyFp string

	WallNs int64
}

// Report is the whole experiment's outcome: deterministic body lines
// (Render) plus wall-clock lines for stderr (Perf) and the headline
// totals the CLI turns into BENCH_ entries.
type Report struct {
	Cfg   Config
	Cells []Result

	SitesN, NodesLiveN, RegisterN int
	GrantedN, LiveN, LeaseSlotsN  int
	ReleasedN, RenewedN           int
	BatchSigN, BatchVerifiedN     int
	MDSSlotsN                     int
	RootLines                     []string
	Perf                          []string
	body                          []string
}

// Run executes the experiment: cells in parallel, then the root
// assembly and query phase, then reduction in region order.
func Run(seed int64, cfg Config, workers int) *Report {
	if cfg.Regions <= 0 {
		cfg.Regions = 1
	}
	if cfg.Regions > cfg.Sites {
		cfg.Regions = cfg.Sites
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 64
	}
	if cfg.Windows <= 0 {
		cfg.Windows = 4
	}
	if cfg.RefreshInterval <= 0 {
		cfg.RefreshInterval = 10 * time.Minute
	}

	perSite := (cfg.Sites + cfg.Regions - 1) / cfg.Regions
	results := make([]*Result, cfg.Regions)
	var wallStart time.Duration
	if cfg.WallClock != nil {
		wallStart = cfg.WallClock()
	}
	perf.ForEach(cfg.Regions, workers, func(i int) {
		lo := i * perSite
		hi := lo + perSite
		if hi > cfg.Sites {
			hi = cfg.Sites
		}
		results[i] = runCell(seed, cfg, i, lo, hi)
	})

	rep := &Report{Cfg: cfg}
	for _, r := range results {
		if r == nil {
			continue
		}
		rep.Cells = append(rep.Cells, *r)
		rep.SitesN += r.SitesN
		rep.NodesLiveN += r.NodesLive
		rep.RegisterN += r.RegisterN
		rep.MDSSlotsN += r.SlotsN
		rep.GrantedN += r.GrantedN
		rep.LiveN += r.LiveN
		rep.LeaseSlotsN += r.LeaseSlotsN
		rep.ReleasedN += r.ReleasedN
		rep.RenewedN += r.RenewedN
		rep.BatchSigN += r.BatchSigN
		rep.BatchVerifiedN += r.BatchVerifiedN
	}
	rep.rootPhase(seed)
	rep.reduce()

	if cfg.WallClock != nil {
		wall := cfg.WallClock() - wallStart
		secs := wall.Seconds()
		if secs > 0 {
			rep.Perf = append(rep.Perf,
				fmt.Sprintf("wall=%.2fs sites/sec=%.1f leases/sec=%.0f", secs,
					float64(rep.SitesN)/secs, float64(rep.GrantedN)/secs))
		}
	}
	return rep
}

// runCell simulates one region: sites join on a growth ticker, each
// bringing its node sensors (pushed to the region index over the
// simulated network) and its lease plane (batch-redeemed against a
// compact-store authority). Windowed metrics stream out as lines; no
// per-event history is retained.
func runCell(seed int64, cfg Config, regionIdx, lo, hi int) *Result {
	eng := sim.NewEngine(seed*10007 + int64(regionIdx))
	net := simnet.New(eng)
	net.AddSite("R", 0, 0)
	regionName := fmt.Sprintf("R%02d", regionIdx)
	regionHost := regionName + "/index"
	net.AddHost(regionHost, "R", 1e9)

	c := &cell{
		eng: eng, net: net, cfg: cfg,
		regionIdx: regionIdx, regionName: regionName, regionHost: regionHost,
		region: mds.NewRegionIndex(eng, net, regionHost, regionName, nil),
		siteLo: lo, siteHi: hi, nextSite: lo,
	}
	nSites := hi - lo
	c.windowSize = (nSites + cfg.Windows - 1) / cfg.Windows
	if c.windowSize <= 0 {
		c.windowSize = 1
	}
	eng.SnapRoot("scale.cell", c)

	eng.NewTicker(growthStep, c.growTick)
	growth := time.Duration(nSites+1) * growthStep
	eng.RunUntil(growth + 2*cfg.RefreshInterval)
	c.flushWindow() // tail window, if the site count didn't divide evenly

	res := &Result{
		RegionName: regionName,
		Region:     c.region,
		Lines:      c.lines,
		SitesN:     len(c.sites),
		NodesLive:  c.region.Live(),
		RegisterN:  c.region.RegisterN,
		SlotsN:     c.region.Slots(),
		GrantedN:   c.grantedN,
		ReleasedN:  c.releasedN,
		RenewedN:   c.renewedN,

		InternedKeys: c.region.Keys(),
	}
	if len(c.sites) > 0 {
		res.KeyFp = fmt.Sprintf("%x", c.sites[0].agent.Key()[:4])
	}
	for _, s := range c.sites {
		res.LiveN += s.auth.LiveLeases()
		res.LeaseSlotsN += s.auth.LeaseSlots()
		res.BatchSigN += s.auth.BatchSigN
		res.BatchVerifiedN += s.auth.BatchVerifiedN
		hits, misses, _ := s.auth.SigCacheStats()
		res.SigHits += hits
		res.SigMisses += misses
	}
	return res
}

// growTick grows the next site, emitting a window line at boundaries.
func (c *cell) growTick() {
	if c.nextSite >= c.siteHi {
		return
	}
	c.growSite(c.nextSite)
	c.nextSite++
	if grown := c.nextSite - c.siteLo; grown%c.windowSize == 0 {
		c.flushWindow()
	}
}

// growSite brings one site online: sensors registered and pushing to
// the region index, then the site's whole lease population redeemed in
// batches against its authority.
func (c *cell) growSite(global int) {
	cfg := c.cfg
	name := fmt.Sprintf("s%04d", global)
	host := name + "/gk"
	c.net.AddHost(host, "R", 1e8)
	rng := c.eng.ForkRand()

	nm := capability.NewNodeManager(name, c.eng, rng, map[capability.ResourceType]float64{
		capability.CPU: float64(cfg.LeasesPerSite),
	})
	auth := sharp.NewAuthority(c.eng, name, identity.NewPrincipal("auth@"+name, rng), nm,
		map[capability.ResourceType]float64{capability.CPU: float64(cfg.LeasesPerSite)})
	auth.SetCompactLeases(true)
	auth.SetOversellFactor(2) // root issue + renewal tickets share the budget
	s := &siteState{
		name:  name,
		nm:    nm,
		auth:  auth,
		agent: sharp.NewAgent(identity.NewPrincipal("agent@"+name, rng)),
		sm:    identity.NewPrincipal("sm@"+name, rng),
		gris:  mds.NewGRIS(c.eng, c.net, host),
	}
	c.sites = append(c.sites, s)

	// Node sensors: fill-style providers (alloc-free steady refresh),
	// attribute churn derived from virtual time so every refresh
	// rewrites values deterministically.
	oses := [3]string{"linux", "planetlab", "linux"}
	for ni := 0; ni < cfg.NodesPerSite; ni++ {
		node := ni
		nodeName := fmt.Sprintf("%s/n%03d", name, node)
		s.gris.AddProviderInto(nodeName, func(attrs map[string]string) {
			attrs["region"] = c.regionName
			attrs["site"] = name
			attrs["os"] = oses[node%len(oses)]
			attrs["cpus"] = fmt.Sprint(2 << uint(node%4))
			attrs["load"] = fmt.Sprint((node*7 + int(c.eng.Now()/time.Minute)) % 32)
		})
	}
	s.gris.StartPush(c.regionHost, cfg.RefreshInterval)

	// Lease plane: one root ticket subdivided into leaf tickets, batch
	// redeemed; tickets are transient (dropped after redeem) so only
	// live lease state persists.
	now := c.eng.Now()
	notAfter := now + 24*time.Hour
	root, err := s.auth.IssueTicket(s.agent.Name, s.agent.Key(), capability.CPU,
		float64(cfg.LeasesPerSite), now, notAfter)
	if err != nil {
		panic(fmt.Sprintf("scale: issue root for %s: %v", name, err))
	}
	if err := s.agent.Acquire(root); err != nil {
		panic(fmt.Sprintf("scale: acquire root for %s: %v", name, err))
	}
	batch := make([]*sharp.Ticket, 0, cfg.Batch)
	for sold := 0; sold < cfg.LeasesPerSite; {
		batch = batch[:0]
		for len(batch) < cfg.Batch && sold < cfg.LeasesPerSite {
			subs, err := s.agent.Sell(s.sm.Name, s.sm.Public(), name, capability.CPU, 1, now, notAfter)
			if err != nil {
				panic(fmt.Sprintf("scale: sell at %s: %v", name, err))
			}
			batch = append(batch, subs...)
			sold++
		}
		for _, r := range s.auth.RedeemBatch(batch) {
			if r.Err != nil {
				panic(fmt.Sprintf("scale: redeem at %s: %v", name, r.Err))
			}
			c.grantedN++
			c.winLeases++
			n := c.grantedN
			switch {
			case n%releaseEvery == 0:
				s.auth.ReleaseLease(r.Lease)
				c.releasedN++
				c.winReleased++
			case n%renewEvery == 0:
				rtk, err := s.auth.IssueTicket(s.agent.Name, s.agent.Key(), capability.CPU,
					1, c.eng.Now(), notAfter+time.Hour)
				if err == nil {
					if _, err := s.auth.Renew(r.Lease.ID, rtk); err != nil {
						panic(fmt.Sprintf("scale: renew at %s: %v", name, err))
					}
					c.renewedN++
					c.winRenewed++
				}
			default:
				c.leases = append(c.leases, r.Lease)
			}
		}
	}
	c.winSites++
}

// flushWindow emits one streaming metrics line and resets the window.
func (c *cell) flushWindow() {
	if c.winSites == 0 {
		return
	}
	var sigs, verified int
	for _, s := range c.sites {
		sigs += s.auth.BatchSigN
		verified += s.auth.BatchVerifiedN
	}
	dSigs, dVer := sigs-c.winSigs, verified-c.winVerified
	c.winSigs, c.winVerified = sigs, verified
	ratio := 0.0
	if dVer > 0 {
		ratio = float64(dSigs) / float64(dVer)
	}
	c.lines = append(c.lines, fmt.Sprintf(
		"%s w%02d t=%v sites=%d leases=%d released=%d renewed=%d sigs=%d verified=%d (%.1fx) mds_live=%d",
		c.regionName, len(c.lines), c.eng.Now(), c.winSites, c.winLeases,
		c.winReleased, c.winRenewed, dSigs, dVer, ratio, c.region.Live()))
	c.winSites, c.winLeases, c.winReleased, c.winRenewed = 0, 0, 0, 0
}

// rootPhase assembles the federation root after the cell barrier: a
// fresh engine advanced to the cells' horizon, every region attached,
// every summary absorbed with its soft-state TTL, then a fixed query
// set fanned out to demonstrate (and count) summary pruning.
func (rep *Report) rootPhase(seed int64) {
	if len(rep.Cells) == 0 {
		return
	}
	eng := sim.NewEngine(seed)
	net := simnet.New(eng)
	net.AddSite("HQ", 0, 0)
	net.AddHost("root/index", "HQ", 1e9)
	root := mds.NewRootIndex(eng, net, "root/index")

	perSite := (rep.Cfg.Sites + rep.Cfg.Regions - 1) / rep.Cfg.Regions
	horizon := time.Duration(perSite+1)*growthStep + 2*rep.Cfg.RefreshInterval
	eng.RunUntil(horizon)
	for i := range rep.Cells {
		root.AttachRegion(rep.Cells[i].Region)
		root.AbsorbSummary(rep.Cells[i].Region.Summary(2 * rep.Cfg.RefreshInterval))
	}

	midRegion := fmt.Sprintf("R%02d", len(rep.Cells)/2)
	queries := []struct {
		desc string
		q    mds.Query
	}{
		{"os=linux limit 10", mds.Query{Filters: []mds.Filter{{Attr: "os", Op: mds.FEq, Value: "linux"}}, Limit: 10}},
		{"region=" + midRegion, mds.Query{Filters: []mds.Filter{{Attr: "region", Op: mds.FEq, Value: midRegion}}, Limit: 5}},
		{"cpus>=16", mds.Query{Filters: []mds.Filter{{Attr: "cpus", Op: mds.FGe, Value: "16"}}, Limit: 10}},
		{"load<4 limit 20", mds.Query{Filters: []mds.Filter{{Attr: "load", Op: mds.FLt, Value: "4"}}, Limit: 20}},
		{"ghost attr", mds.Query{Filters: []mds.Filter{{Attr: "ghost", Op: mds.FEq, Value: "x"}}}},
	}
	for _, qc := range queries {
		f0, p0, u0 := root.FanoutN, root.PrunedN, root.UnknownN
		reply, err := root.QueryShards(qc.q)
		if err != nil {
			rep.RootLines = append(rep.RootLines, fmt.Sprintf("  %-20s error: %v", qc.desc, err))
			continue
		}
		rep.RootLines = append(rep.RootLines, fmt.Sprintf(
			"  %-20s records=%-4d fanout=%d pruned=%d unknown=%d maxstale=%v",
			qc.desc, len(reply.Records), root.FanoutN-f0, root.PrunedN-p0, root.UnknownN-u0, reply.MaxStale))
	}
}

// reduce builds the deterministic report body from the cell slots in
// region order.
func (rep *Report) reduce() {
	cfg := rep.Cfg
	var b []string
	b = append(b, fmt.Sprintf("scale: %d sites / %d regions / %d nodes, lease target %d (batch %d, refresh %v)",
		cfg.Sites, cfg.Regions, cfg.Sites*cfg.NodesPerSite, cfg.Sites*cfg.LeasesPerSite, cfg.Batch, cfg.RefreshInterval))
	b = append(b, "")
	for i := range rep.Cells {
		b = append(b, rep.Cells[i].Lines...)
	}
	b = append(b, "")
	for i := range rep.Cells {
		r := &rep.Cells[i]
		ratio := 0.0
		if r.BatchVerifiedN > 0 {
			ratio = float64(r.BatchSigN) / float64(r.BatchVerifiedN)
		}
		b = append(b, fmt.Sprintf(
			"region %s [%s]: sites=%d mds_live=%d mds_slots=%d regs=%d keys=%d leases: granted=%d live=%d slots=%d released=%d renewed=%d sigs=%d/%d (%.1fx)",
			r.RegionName, r.KeyFp, r.SitesN, r.NodesLive, r.SlotsN, r.RegisterN, r.InternedKeys,
			r.GrantedN, r.LiveN, r.LeaseSlotsN, r.ReleasedN, r.RenewedN,
			r.BatchSigN, r.BatchVerifiedN, ratio))
	}
	b = append(b, "")
	ratio := 0.0
	if rep.BatchVerifiedN > 0 {
		ratio = float64(rep.BatchSigN) / float64(rep.BatchVerifiedN)
	}
	b = append(b, fmt.Sprintf(
		"federation: sites=%d mds_live=%d mds_slots=%d registrations=%d leases: granted=%d live=%d slots=%d released=%d renewed=%d batch_sigs=%d verified=%d (%.1fx amortized)",
		rep.SitesN, rep.NodesLiveN, rep.MDSSlotsN, rep.RegisterN,
		rep.GrantedN, rep.LiveN, rep.LeaseSlotsN, rep.ReleasedN, rep.RenewedN,
		rep.BatchSigN, rep.BatchVerifiedN, ratio))
	if len(rep.RootLines) > 0 {
		b = append(b, "", "root queries (summary-pruned fan-out):")
		b = append(b, rep.RootLines...)
	}
	rep.body = b
}

// Render writes the deterministic report (byte-identical at any worker
// count and across runs of the same seed).
func (rep *Report) Render(w io.Writer) {
	fmt.Fprintln(w, strings.Join(rep.body, "\n"))
}

// RegistrationFlatness is the scale-flat probe for the acceptance gate:
// per-record cost of steady-state soft-state refresh — the load that
// dominates a long-running federation — measured against a small
// (`window`-site) index and against a full (`nSites`-site) index.
// Each probe builds its index, then times refresh passes (in-place slot
// rewrite of `window` sites' records), taking the fastest of three so
// GC and scheduler noise don't swamp the comparison. A scale-flat index
// keeps the two within a few percent; the flat-GIIS failure mode
// (per-refresh allocation, whole-registry work on the hot path) shows
// up as atLargeNs pulling away from atSmallNs. Returns per-record
// nanoseconds for both index sizes (0,0 when clock is nil or the sizes
// don't fit).
func RegistrationFlatness(seed int64, cfg Config, nSites, window int, clock func() time.Duration) (atSmallNs, atLargeNs float64) {
	if clock == nil || window <= 0 || nSites < 2*window {
		return 0, 0
	}
	probe := func(total int) float64 {
		eng := sim.NewEngine(seed)
		net := simnet.New(eng)
		net.AddSite("R", 0, 0)
		net.AddHost("probe/index", "R", 1e9)
		rg := mds.NewRegionIndex(eng, net, "probe/index", "probe", nil)
		attrs := make(map[string]string, 5)
		registerSite := func(si int) {
			for ni := 0; ni < cfg.NodesPerSite; ni++ {
				attrs["region"] = "probe"
				attrs["site"] = fmt.Sprintf("s%04d", si)
				attrs["os"] = "linux"
				attrs["cpus"] = fmt.Sprint(2 << uint(ni%4))
				attrs["load"] = fmt.Sprint((ni*7 + si) % 32)
				if err := rg.RegisterRecord(mds.Registration{Rec: mds.Record{
					Name:   fmt.Sprintf("s%04d/n%03d", si, ni),
					Source: fmt.Sprintf("s%04d", si),
					Attrs:  attrs,
				}, TTL: time.Hour}); err != nil {
					panic(fmt.Sprintf("scale: flatness probe: %v", err))
				}
			}
		}
		for si := 0; si < total; si++ {
			registerSite(si) // build, untimed
		}
		best := 0.0
		recs := float64(window * cfg.NodesPerSite)
		for round := 0; round < 3; round++ {
			t0 := clock()
			for si := 0; si < window; si++ {
				registerSite(si) // steady-state refresh, in place
			}
			if ns := float64((clock() - t0).Nanoseconds()) / recs; best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	return probe(window), probe(nSites)
}
