// Package datagrid implements the Section-5 cooperation scenario: "We
// believe that layering Globus on top of PlanetLab can significantly
// strengthen the data grid infrastructure." It provides the three
// services the paper names:
//
//   - a Giggle-style replica location service (local replica catalogs
//     plus a replica location index) [Chervenak et al.],
//   - a GridFTP-style transfer service that "can split data transfers
//     over multiple TCP streams to increase transfer throughput when data
//     is striped across multiple nodes", integrated with GSI
//     authorization, and
//   - an mTCP/BANANAS-style overlay path service that monitors the
//     simulated Internet and picks relay paths to "improve transfer
//     throughput between two endpoints" via multipath routing.
package datagrid

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/gsi"
	"repro/internal/identity"
	"repro/internal/simnet"
)

// Service errors.
var (
	ErrUnknownLogical = errors.New("datagrid: unknown logical file")
	ErrNoReplica      = errors.New("datagrid: no replica available")
	ErrUnauthorized   = errors.New("datagrid: transfer not authorized")
)

// Replica is one physical copy of a logical file.
type Replica struct {
	Host  string
	Bytes float64
}

// LRC is a local replica catalog: logical name -> replicas at this site.
type LRC struct {
	Site     string
	replicas map[string][]Replica
}

// NewLRC returns an empty local catalog.
func NewLRC(site string) *LRC {
	return &LRC{Site: site, replicas: make(map[string][]Replica)}
}

// Register records a physical replica for a logical name.
func (l *LRC) Register(logical string, r Replica) {
	l.replicas[logical] = append(l.replicas[logical], r)
}

// Lookup returns this site's replicas for a logical name.
func (l *LRC) Lookup(logical string) []Replica {
	return append([]Replica(nil), l.replicas[logical]...)
}

// Logicals returns the catalog's logical names, sorted.
func (l *LRC) Logicals() []string {
	out := make([]string, 0, len(l.replicas))
	for n := range l.replicas {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RLI is the replica location index: it maps logical names to the LRCs
// that hold replicas (the two-tier Giggle design).
type RLI struct {
	lrcs  map[string]*LRC
	index map[string]map[string]bool // logical -> site set
}

// NewRLI returns an empty index.
func NewRLI() *RLI {
	return &RLI{lrcs: make(map[string]*LRC), index: make(map[string]map[string]bool)}
}

// Attach registers an LRC and absorbs its current contents (soft-state
// refresh in deployments; here a direct sync keeps the model simple and
// the staleness dimension lives in package mds).
func (r *RLI) Attach(l *LRC) {
	r.lrcs[l.Site] = l
	r.Refresh(l.Site)
}

// Refresh re-imports one site's logical names.
func (r *RLI) Refresh(site string) {
	l, ok := r.lrcs[site]
	if !ok {
		return
	}
	for _, name := range l.Logicals() {
		if r.index[name] == nil {
			r.index[name] = make(map[string]bool)
		}
		r.index[name][site] = true
	}
}

// Locate returns every replica of a logical name across all sites,
// sorted by host for determinism.
func (r *RLI) Locate(logical string) ([]Replica, error) {
	sites, ok := r.index[logical]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownLogical, logical)
	}
	var out []Replica
	siteNames := make([]string, 0, len(sites))
	for s := range sites {
		siteNames = append(siteNames, s)
	}
	sort.Strings(siteNames)
	for _, s := range siteNames {
		out = append(out, r.lrcs[s].Lookup(logical)...)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrNoReplica, logical)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Host < out[j].Host })
	return out, nil
}

// PathEstimate scores one candidate route.
type PathEstimate struct {
	Relays []string // nil = direct
	// RateBps is the predicted steady-state TCP rate: the minimum of the
	// path's link capacities and its Mathis loss bound.
	RateBps float64
	RTT     time.Duration
	Loss    float64
}

// EstimatePath predicts the achievable single-stream rate over
// src -> relays... -> dst, the overlay's "monitoring the Internet" step.
func EstimatePath(net *simnet.Network, src, dst string, relays []string) (PathEstimate, error) {
	hops := append([]string{src}, append(relays, dst)...)
	var rtt time.Duration
	survive := 1.0
	minCap := math.Inf(1)
	for i := 0; i+1 < len(hops); i++ {
		a, b := net.Host(hops[i]), net.Host(hops[i+1])
		if a == nil || b == nil {
			return PathEstimate{}, simnet.ErrNoSuchHost
		}
		if a.Down() || b.Down() {
			return PathEstimate{}, simnet.ErrHostDown
		}
		if net.Partitioned(a.Site, b.Site) {
			return PathEstimate{}, simnet.ErrPartitioned
		}
		rtt += 2 * net.Latency(a.Site, b.Site)
		survive *= 1 - net.Loss(a.Site, b.Site)
		if c := a.LinkBps(); c < minCap {
			minCap = c
		}
		if c := b.LinkBps(); c < minCap {
			minCap = c
		}
	}
	loss := 1 - survive
	rate := minCap
	if loss > 0 {
		mathis := net.MTU / (rtt.Seconds() * math.Sqrt(2*loss/3))
		if mathis < rate {
			rate = mathis
		}
	}
	return PathEstimate{Relays: relays, RateBps: rate, RTT: rtt, Loss: loss}, nil
}

// BestPaths ranks the direct path and every single-relay path through the
// candidates by predicted rate and returns the top k (k >= 1). This is
// the path-selection half of the mTCP service.
func BestPaths(net *simnet.Network, src, dst string, candidates []string, k int) []PathEstimate {
	var ests []PathEstimate
	if e, err := EstimatePath(net, src, dst, nil); err == nil {
		ests = append(ests, e)
	}
	for _, relay := range candidates {
		if relay == src || relay == dst {
			continue
		}
		if e, err := EstimatePath(net, src, dst, []string{relay}); err == nil {
			ests = append(ests, e)
		}
	}
	sort.SliceStable(ests, func(i, j int) bool { return ests[i].RateBps > ests[j].RateBps })
	if k < 1 {
		k = 1
	}
	if len(ests) > k {
		ests = ests[:k]
	}
	return ests
}

// TransferService is the GridFTP head: GSI-authorized, striped,
// optionally multipath third-party transfers.
type TransferService struct {
	Net    *simnet.Network
	Policy *gsi.SitePolicy

	// TransferN and BytesMoved count completed transfers.
	TransferN  int
	BytesMoved float64
}

// TransferOpts selects striping and routing.
type TransferOpts struct {
	// Streams is the stripe width (parallel TCP streams).
	Streams int
	// Relays, when non-empty, enables multipath across the direct path
	// plus one relay path per listed relay, with mTCP-style pooling.
	Relays []string
}

// Transfer authorizes cred for the "transfer" right, then moves bytes
// from src to dst, invoking done with the completed flow.
func (s *TransferService) Transfer(cred *identity.Credential, src, dst string, bytes float64, opts TransferOpts, done func(*simnet.Flow, error)) {
	now := s.Net.Engine().Now()
	if _, _, err := s.Policy.Admit(cred, "transfer", now); err != nil {
		done(nil, fmt.Errorf("%w: %v", ErrUnauthorized, err))
		return
	}
	fo := simnet.FlowOpts{Streams: opts.Streams}
	if len(opts.Relays) > 0 {
		fo.Paths = [][]string{nil}
		for _, r := range opts.Relays {
			fo.Paths = append(fo.Paths, []string{r})
		}
		fo.Pooled = true
		if fo.Streams < len(fo.Paths) {
			fo.Streams = len(fo.Paths)
		}
	}
	fl, err := s.Net.StartFlow(src, dst, bytes, fo, func(f *simnet.Flow) {
		s.TransferN++
		s.BytesMoved += bytes
		done(f, nil)
	})
	if err != nil {
		done(nil, err)
		return
	}
	// A flow killed mid-transfer (host death, partition) must surface as a
	// failed transfer, not a callback that never fires.
	fl.OnFail = func(f *simnet.Flow, ferr error) { done(f, ferr) }
}

// FetchBest resolves a logical name through the RLI, picks the replica
// whose path to dst has the highest predicted rate, and transfers it.
func (s *TransferService) FetchBest(cred *identity.Credential, rli *RLI, logical, dst string, opts TransferOpts, done func(*simnet.Flow, error)) {
	reps, err := rli.Locate(logical)
	if err != nil {
		done(nil, err)
		return
	}
	best := -1
	bestRate := -1.0
	for i, r := range reps {
		if e, err := EstimatePath(s.Net, r.Host, dst, nil); err == nil && e.RateBps > bestRate {
			best, bestRate = i, e.RateBps
		}
	}
	if best < 0 {
		done(nil, ErrNoReplica)
		return
	}
	s.Transfer(cred, reps[best].Host, dst, reps[best].Bytes, opts, done)
}
