package datagrid

import (
	"errors"
	"testing"
	"time"

	"repro/internal/simnet"
)

// A partition landing mid-transfer must surface as a failed transfer
// through the done callback — affected stripes fail the flow, the
// callback fires with ErrPartitioned, and nothing hangs.
func TestTransferFailsOnMidFlightPartition(t *testing.T) {
	f := newFixture(t)
	var gotErr error
	called := false
	f.svc.Transfer(f.alice, "src", "dst", 10e6, TransferOpts{Streams: 4}, func(_ *simnet.Flow, err error) {
		called = true
		gotErr = err
	})
	f.eng.RunUntil(2 * time.Second)
	if called {
		t.Fatal("transfer finished before the partition landed")
	}
	f.net.Partition("A", "B", true)
	f.eng.Run()
	if !called {
		t.Fatal("done callback never fired — transfer hung across the partition")
	}
	if !errors.Is(gotErr, simnet.ErrPartitioned) {
		t.Errorf("err = %v, want ErrPartitioned", gotErr)
	}
	if f.svc.TransferN != 0 {
		t.Errorf("failed transfer counted as completed (TransferN = %d)", f.svc.TransferN)
	}
}

// The multipath (pooled) variant survives a partial cut: the relay path
// carries the stranded bytes and the transfer completes.
func TestMultipathTransferSurvivesPartialCut(t *testing.T) {
	f := newFixture(t)
	var gotErr error
	called := false
	f.svc.Transfer(f.alice, "src", "dst", 4e6, TransferOpts{Streams: 2, Relays: []string{"relay"}},
		func(_ *simnet.Flow, err error) {
			called = true
			gotErr = err
		})
	f.eng.RunUntil(time.Second)
	f.net.Partition("A", "B", true) // direct path only; A-R-B survives
	f.eng.Run()
	if !called {
		t.Fatal("transfer hung")
	}
	if gotErr != nil {
		t.Fatalf("multipath transfer failed: %v", gotErr)
	}
	if f.svc.TransferN != 1 {
		t.Errorf("TransferN = %d", f.svc.TransferN)
	}
}
