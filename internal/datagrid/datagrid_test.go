package datagrid

import (
	"errors"
	"testing"
	"time"

	"repro/internal/gsi"
	"repro/internal/identity"
	"repro/internal/sim"
	"repro/internal/simnet"
)

type fixture struct {
	eng   *sim.Engine
	net   *simnet.Network
	svc   *TransferService
	alice *identity.Credential
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	eng := sim.NewEngine(1)
	net := simnet.New(eng)
	net.AddSite("A", 0, 0)
	net.AddSite("B", 40, 0)
	net.AddSite("R", 20, 15)
	net.AddHost("src", "A", 1e6)
	net.AddHost("dst", "B", 1e6)
	net.AddHost("relay", "R", 1e6)
	net.AddHost("src2", "A", 5e5)

	rng := eng.ForkRand()
	ca := identity.NewCA("ca", 1e6*time.Hour, rng)
	aliceP := identity.NewPrincipal("alice", rng)
	alice := identity.UserCredential(aliceP, ca.IssueUser(aliceP, 0, 1e5*time.Hour))
	gm := gsi.NewGridmap()
	gm.Map("alice", "u1")
	svc := &TransferService{
		Net:    net,
		Policy: &gsi.SitePolicy{Auth: &gsi.ChainAuthenticator{Verifier: identity.NewVerifier(ca)}, Gridmap: gm},
	}
	return &fixture{eng: eng, net: net, svc: svc, alice: alice}
}

func TestReplicaCatalogTwoTier(t *testing.T) {
	lrcA := NewLRC("A")
	lrcB := NewLRC("B")
	lrcA.Register("lfn://climate/run1", Replica{Host: "src", Bytes: 1e6})
	lrcB.Register("lfn://climate/run1", Replica{Host: "dst", Bytes: 1e6})
	lrcB.Register("lfn://climate/run2", Replica{Host: "dst", Bytes: 2e6})
	rli := NewRLI()
	rli.Attach(lrcA)
	rli.Attach(lrcB)
	reps, err := rli.Locate("lfn://climate/run1")
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 || reps[0].Host != "dst" || reps[1].Host != "src" {
		t.Errorf("replicas = %+v", reps)
	}
	if _, err := rli.Locate("lfn://nope"); !errors.Is(err, ErrUnknownLogical) {
		t.Errorf("unknown: %v", err)
	}
	// Late registration becomes visible after refresh.
	lrcA.Register("lfn://late", Replica{Host: "src", Bytes: 1})
	if _, err := rli.Locate("lfn://late"); err == nil {
		t.Error("stale index knew unfetched name")
	}
	rli.Refresh("A")
	if _, err := rli.Locate("lfn://late"); err != nil {
		t.Errorf("after refresh: %v", err)
	}
}

func TestEstimatePathCleanAndLossy(t *testing.T) {
	f := newFixture(t)
	clean, err := EstimatePath(f.net, "src", "dst", nil)
	if err != nil {
		t.Fatal(err)
	}
	if clean.RateBps != 1e6 || clean.Loss != 0 {
		t.Errorf("clean = %+v", clean)
	}
	f.net.SetLoss("A", "B", 0.01)
	lossy, _ := EstimatePath(f.net, "src", "dst", nil)
	if lossy.RateBps >= clean.RateBps {
		t.Errorf("loss did not cap rate: %v", lossy.RateBps)
	}
	if lossy.Loss < 0.0099 || lossy.Loss > 0.0101 {
		t.Errorf("loss = %v", lossy.Loss)
	}
	// Relay path accumulates RTT but avoids the lossy segment.
	viaRelay, _ := EstimatePath(f.net, "src", "dst", []string{"relay"})
	if viaRelay.RateBps <= lossy.RateBps {
		t.Errorf("relay %v <= direct %v on lossy net", viaRelay.RateBps, lossy.RateBps)
	}
}

func TestBestPathsRanksRelayFirstOnLossyDirect(t *testing.T) {
	f := newFixture(t)
	f.net.SetLoss("A", "B", 0.02)
	paths := BestPaths(f.net, "src", "dst", []string{"relay", "src2"}, 2)
	if len(paths) != 2 {
		t.Fatalf("paths = %d", len(paths))
	}
	if len(paths[0].Relays) != 1 || paths[0].Relays[0] != "relay" {
		t.Errorf("best path = %+v, want via relay", paths[0])
	}
}

func TestBestPathsSkipsDeadRelays(t *testing.T) {
	f := newFixture(t)
	f.net.SetDown("relay", true)
	paths := BestPaths(f.net, "src", "dst", []string{"relay"}, 3)
	for _, p := range paths {
		if len(p.Relays) > 0 && p.Relays[0] == "relay" {
			t.Error("dead relay ranked")
		}
	}
}

func TestTransferAuthorized(t *testing.T) {
	f := newFixture(t)
	var flow *simnet.Flow
	var err error
	f.svc.Transfer(f.alice, "src", "dst", 1e6, TransferOpts{Streams: 2}, func(fl *simnet.Flow, e error) {
		flow, err = fl, e
	})
	f.eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if flow == nil || !flow.Done() {
		t.Fatal("transfer incomplete")
	}
	if f.svc.TransferN != 1 || f.svc.BytesMoved != 1e6 {
		t.Errorf("counters %d/%v", f.svc.TransferN, f.svc.BytesMoved)
	}
}

func TestTransferUnauthorized(t *testing.T) {
	f := newFixture(t)
	rng := f.eng.ForkRand()
	otherCA := identity.NewCA("other", 1e6*time.Hour, rng)
	evilP := identity.NewPrincipal("eve", rng)
	evil := identity.UserCredential(evilP, otherCA.IssueUser(evilP, 0, 1e5*time.Hour))
	var err error
	f.svc.Transfer(evil, "src", "dst", 1e6, TransferOpts{}, func(_ *simnet.Flow, e error) { err = e })
	f.eng.Run()
	if !errors.Is(err, ErrUnauthorized) {
		t.Errorf("err = %v", err)
	}
}

func TestMultipathTransferBeatsDirectOnLossyPath(t *testing.T) {
	// The paper's §5 claim, end to end: a PlanetLab overlay service
	// improves a Globus data-grid transfer.
	f := newFixture(t)
	f.net.SetLoss("A", "B", 0.02)
	var direct, multi *simnet.Flow
	f.svc.Transfer(f.alice, "src", "dst", 2e6, TransferOpts{Streams: 2}, func(fl *simnet.Flow, e error) { direct = fl })
	f.eng.Run()

	f2 := newFixture(t)
	f2.net.SetLoss("A", "B", 0.02)
	f2.svc.Transfer(f2.alice, "src", "dst", 2e6, TransferOpts{Streams: 2, Relays: []string{"relay"}}, func(fl *simnet.Flow, e error) { multi = fl })
	f2.eng.Run()

	if direct == nil || multi == nil {
		t.Fatal("transfers incomplete")
	}
	if multi.ThroughputBps() <= direct.ThroughputBps() {
		t.Errorf("multipath %.0f <= direct %.0f", multi.ThroughputBps(), direct.ThroughputBps())
	}
}

func TestFetchBestPicksClosestReplica(t *testing.T) {
	f := newFixture(t)
	// Two replicas: one at src (1 MB/s link) and one at src2 (0.5 MB/s
	// link). FetchBest must pick src.
	lrc := NewLRC("A")
	lrc.Register("lfn://d", Replica{Host: "src", Bytes: 1e6})
	lrc.Register("lfn://d", Replica{Host: "src2", Bytes: 1e6})
	rli := NewRLI()
	rli.Attach(lrc)
	var flow *simnet.Flow
	var err error
	f.svc.FetchBest(f.alice, rli, "lfn://d", "dst", TransferOpts{}, func(fl *simnet.Flow, e error) { flow, err = fl, e })
	f.eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if flow.From != "src" {
		t.Errorf("fetched from %q, want src", flow.From)
	}
	// Unknown name surfaces.
	var err2 error
	f.svc.FetchBest(f.alice, rli, "lfn://nope", "dst", TransferOpts{}, func(_ *simnet.Flow, e error) { err2 = e })
	f.eng.Run()
	if !errors.Is(err2, ErrUnknownLogical) {
		t.Errorf("unknown fetch: %v", err2)
	}
}

func TestTransferViaDeadRelayFails(t *testing.T) {
	f := newFixture(t)
	f.net.SetDown("relay", true)
	var err error
	f.svc.Transfer(f.alice, "src", "dst", 1e6, TransferOpts{Relays: []string{"relay"}},
		func(_ *simnet.Flow, e error) { err = e })
	f.eng.Run()
	if !errors.Is(err, simnet.ErrHostDown) {
		t.Errorf("dead relay transfer: %v", err)
	}
}

func TestFetchBestSkipsDownReplicaHost(t *testing.T) {
	f := newFixture(t)
	lrc := NewLRC("A")
	lrc.Register("lfn://d", Replica{Host: "src", Bytes: 1e6})
	lrc.Register("lfn://d", Replica{Host: "src2", Bytes: 1e6})
	rli := NewRLI()
	rli.Attach(lrc)
	// The better replica host dies; FetchBest must fall back to src2.
	f.net.SetDown("src", true)
	var flow *simnet.Flow
	var err error
	f.svc.FetchBest(f.alice, rli, "lfn://d", "dst", TransferOpts{}, func(fl *simnet.Flow, e error) {
		flow, err = fl, e
	})
	f.eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if flow.From != "src2" {
		t.Errorf("fetched from %q, want src2 (fallback)", flow.From)
	}
	// All replicas down -> ErrNoReplica.
	f.net.SetDown("src2", true)
	var err2 error
	f.svc.FetchBest(f.alice, rli, "lfn://d", "dst", TransferOpts{}, func(_ *simnet.Flow, e error) { err2 = e })
	f.eng.Run()
	if !errors.Is(err2, ErrNoReplica) {
		t.Errorf("all down: %v", err2)
	}
}

func TestTransferDuringPartitionFails(t *testing.T) {
	f := newFixture(t)
	f.net.Partition("A", "B", true)
	var err error
	f.svc.Transfer(f.alice, "src", "dst", 1e6, TransferOpts{}, func(_ *simnet.Flow, e error) { err = e })
	f.eng.Run()
	if !errors.Is(err, simnet.ErrPartitioned) {
		t.Errorf("partitioned transfer: %v", err)
	}
}
