// Package gsi implements the Grid Security Infrastructure layer [Foster et
// al. 1998] used by the Globus stack: challenge–response mutual
// authentication built on identity credentials, per-site authorization via
// gridmap files with black/white listing (the paper's §3.4 site-autonomy
// mechanisms), and the Community Authorization Service (CAS) [Pearlman et
// al. 2002] that issues community-scoped capability assertions.
//
// PlanetLab's thinner SSH-keypair model is implemented here too
// (SSHAuthenticator) so the two stacks' security substrates can be
// compared under one interface, mirroring §3.1: "PlanetLab provides
// limited security functionality and services build their own security
// layer if needed."
package gsi

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/identity"
)

// Authorization errors.
var (
	ErrNotAuthenticated = errors.New("gsi: authentication failed")
	ErrNoMapping        = errors.New("gsi: subject not in gridmap")
	ErrBlacklisted      = errors.New("gsi: subject blacklisted")
	ErrNotWhitelisted   = errors.New("gsi: subject not whitelisted")
	ErrRightDenied      = errors.New("gsi: credential lacks required right")
	ErrAssertionExpired = errors.New("gsi: CAS assertion expired")
	ErrBadAssertion     = errors.New("gsi: CAS assertion signature invalid")
)

// Authenticator abstracts "prove who you are at time now". The Globus
// stack uses chain validation; the PlanetLab stack uses raw key lookup.
type Authenticator interface {
	// Authenticate returns the canonical subject name, or an error.
	Authenticate(cred *identity.Credential, now time.Duration) (string, error)
}

// ChainAuthenticator authenticates by validating the full certificate
// chain against trusted CAs (the GSI model).
type ChainAuthenticator struct {
	Verifier *identity.Verifier
}

// Authenticate implements Authenticator via chain validation.
func (a *ChainAuthenticator) Authenticate(cred *identity.Credential, now time.Duration) (string, error) {
	subj, err := a.Verifier.Validate(cred, now)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrNotAuthenticated, err)
	}
	return subj, nil
}

// SSHAuthenticator authenticates by matching the holder's public key
// against a registry of enrolled keys — PlanetLab's model ("the security
// infrastructure is based on SSH"). No chains, no delegation: a key either
// is enrolled or is not, which is exactly why the paper notes PlanetLab
// "currently does not provide a mechanism for identity delegation".
type SSHAuthenticator struct {
	keys map[string]string // fingerprint of public key -> subject
}

// NewSSHAuthenticator returns an empty key registry.
func NewSSHAuthenticator() *SSHAuthenticator {
	return &SSHAuthenticator{keys: make(map[string]string)}
}

func keyFingerprint(p *identity.Principal) string {
	return string(p.Public())
}

// Enroll registers a principal's public key under its name.
func (a *SSHAuthenticator) Enroll(p *identity.Principal) {
	a.keys[keyFingerprint(p)] = p.Name
}

// Authenticate implements Authenticator by direct key lookup. The chain is
// ignored; only the holder key matters.
func (a *SSHAuthenticator) Authenticate(cred *identity.Credential, _ time.Duration) (string, error) {
	if cred == nil || cred.Holder == nil {
		return "", ErrNotAuthenticated
	}
	subj, ok := a.keys[keyFingerprint(cred.Holder)]
	if !ok {
		return "", fmt.Errorf("%w: key not enrolled", ErrNotAuthenticated)
	}
	return subj, nil
}

// Gridmap is a site's authorization database: it maps authenticated grid
// subjects to local accounts and applies site-local black/white lists —
// the concrete form of "black- or white-listing users at the site level".
type Gridmap struct {
	mapping   map[string]string
	blacklist map[string]bool
	whitelist map[string]bool
	// UseWhitelist, when true, denies any subject not explicitly listed.
	UseWhitelist bool
}

// NewGridmap returns an empty gridmap.
func NewGridmap() *Gridmap {
	return &Gridmap{
		mapping:   make(map[string]string),
		blacklist: make(map[string]bool),
		whitelist: make(map[string]bool),
	}
}

// Map binds a grid subject to a local account name.
func (g *Gridmap) Map(subject, localAccount string) { g.mapping[subject] = localAccount }

// Blacklist bans a subject regardless of mapping.
func (g *Gridmap) Blacklist(subject string) { g.blacklist[subject] = true }

// Unblacklist lifts a ban (site policy churn heals as well as bites).
func (g *Gridmap) Unblacklist(subject string) { delete(g.blacklist, subject) }

// Whitelist admits a subject when UseWhitelist is on.
func (g *Gridmap) Whitelist(subject string) { g.whitelist[subject] = true }

// Authorize returns the local account for an authenticated subject.
func (g *Gridmap) Authorize(subject string) (string, error) {
	if g.blacklist[subject] {
		return "", fmt.Errorf("%w: %q", ErrBlacklisted, subject)
	}
	if g.UseWhitelist && !g.whitelist[subject] {
		return "", fmt.Errorf("%w: %q", ErrNotWhitelisted, subject)
	}
	acct, ok := g.mapping[subject]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrNoMapping, subject)
	}
	return acct, nil
}

// Subjects returns the mapped subjects in sorted order.
func (g *Gridmap) Subjects() []string {
	out := make([]string, 0, len(g.mapping))
	for s := range g.mapping {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// SitePolicy bundles a site's full GSI configuration: how to
// authenticate, who maps to what, and which VO-level rights the site
// honours at all (sites "retain control over local resources ... by
// specifying and enforcing site-specific usage policies").
type SitePolicy struct {
	Auth    Authenticator
	Gridmap *Gridmap
	// HonouredRights lists the VO-level rights this site will act on;
	// nil means all.
	HonouredRights []string
	// TrustedCAS pins community-authorization signing keys by community
	// name; a valid CAS assertion admits a subject with no individual
	// gridmap entry under the community account (the paper's "related
	// Community Authorization Service implements a capability-based
	// service").
	TrustedCAS map[string]*identity.Principal
}

// AdmitWithAssertion admits a subject on the strength of a CAS
// assertion: the credential must authenticate as the assertion's
// subject, the assertion must verify against the pinned community key
// and cover (action, resource), and the subject lands in the shared
// community account. Blacklists still apply — sites retain the veto.
func (p *SitePolicy) AdmitWithAssertion(cred *identity.Credential, a *Assertion, action, resource string, now time.Duration) (local, subject string, err error) {
	subject, err = p.Auth.Authenticate(cred, now)
	if err != nil {
		return "", "", err
	}
	if p.Gridmap != nil && p.Gridmap.blacklist[subject] {
		return "", subject, fmt.Errorf("%w: %q", ErrBlacklisted, subject)
	}
	key, ok := p.TrustedCAS[a.Community]
	if !ok {
		return "", subject, fmt.Errorf("%w: untrusted community %q", ErrBadAssertion, a.Community)
	}
	if err := VerifyAssertion(a, key, now); err != nil {
		return "", subject, err
	}
	if a.Subject != subject {
		return "", subject, fmt.Errorf("%w: assertion for %q presented by %q", ErrBadAssertion, a.Subject, subject)
	}
	if a.Action != action || a.Resource != resource {
		return "", subject, fmt.Errorf("%w: assertion covers (%s,%s), not (%s,%s)",
			ErrBadAssertion, a.Action, a.Resource, action, resource)
	}
	return "community-" + a.Community, subject, nil
}

// Admit runs the full gate: authenticate, check the credential carries the
// required right, check the site honours that right, authorize via
// gridmap. It returns the local account.
func (p *SitePolicy) Admit(cred *identity.Credential, right string, now time.Duration) (local string, subject string, err error) {
	subject, err = p.Auth.Authenticate(cred, now)
	if err != nil {
		return "", "", err
	}
	if right != "" && !cred.HasRight(right) {
		return "", subject, fmt.Errorf("%w: %q", ErrRightDenied, right)
	}
	if right != "" && p.HonouredRights != nil {
		ok := false
		for _, r := range p.HonouredRights {
			if r == right {
				ok = true
				break
			}
		}
		if !ok {
			return "", subject, fmt.Errorf("%w: site does not honour %q", ErrRightDenied, right)
		}
	}
	local, err = p.Gridmap.Authorize(subject)
	if err != nil {
		return "", subject, err
	}
	return local, subject, nil
}

// Assertion is a CAS-issued statement that a community member may perform
// an action on a resource, signed by the community service. It implements
// the capability-style authorization the paper notes CAS provides ("The
// related Community Authorization Service implements a capability-based
// service").
type Assertion struct {
	Community string
	Subject   string
	Action    string
	Resource  string
	NotAfter  time.Duration
	Signature []byte
}

func (a *Assertion) tbs() []byte {
	return []byte(fmt.Sprintf("%s|%s|%s|%s|%d", a.Community, a.Subject, a.Action, a.Resource, a.NotAfter))
}

// CAS is a Community Authorization Service for one virtual organization.
type CAS struct {
	Community string
	signer    *identity.Principal
	members   map[string]bool
	// grants maps action -> resource-pattern set the community as a whole
	// has been granted by resource providers.
	grants map[string]map[string]bool
}

// NewCAS creates a community service with a fresh signing identity.
func NewCAS(community string, rng *rand.Rand) *CAS {
	return &CAS{
		Community: community,
		signer:    identity.NewPrincipal("cas/"+community, rng),
		members:   make(map[string]bool),
		grants:    make(map[string]map[string]bool),
	}
}

// Signer returns the CAS signing principal (resource providers pin this
// key to verify assertions).
func (c *CAS) Signer() *identity.Principal { return c.signer }

// AddMember enrolls a subject in the community.
func (c *CAS) AddMember(subject string) { c.members[subject] = true }

// Grant records that resource providers allow the community to perform
// action on resource.
func (c *CAS) Grant(action, resource string) {
	if c.grants[action] == nil {
		c.grants[action] = make(map[string]bool)
	}
	c.grants[action][resource] = true
}

// Issue returns a signed assertion for a member, or an error when the
// subject is not a member or the community lacks the grant.
func (c *CAS) Issue(subject, action, resource string, notAfter time.Duration) (*Assertion, error) {
	if !c.members[subject] {
		return nil, fmt.Errorf("gsi: %q is not a member of community %q", subject, c.Community)
	}
	if !c.grants[action][resource] {
		return nil, fmt.Errorf("gsi: community %q has no grant for %s on %s", c.Community, action, resource)
	}
	a := &Assertion{
		Community: c.Community,
		Subject:   subject,
		Action:    action,
		Resource:  resource,
		NotAfter:  notAfter,
	}
	a.Signature = c.signer.Sign(a.tbs())
	return a, nil
}

// VerifyAssertion checks an assertion against the CAS key and the clock.
func VerifyAssertion(a *Assertion, casKey *identity.Principal, now time.Duration) error {
	if now >= a.NotAfter {
		return ErrAssertionExpired
	}
	if !casKey.Verify(a.tbs(), a.Signature) {
		return ErrBadAssertion
	}
	return nil
}
