package gsi

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/identity"
)

const hour = time.Hour

type fixture struct {
	rng   *rand.Rand
	ca    *identity.CA
	alice *identity.Credential
	bob   *identity.Credential
	auth  *ChainAuthenticator
}

func newFixture() *fixture {
	rng := rand.New(rand.NewSource(3))
	ca := identity.NewCA("ca", 1000*hour, rng)
	a := identity.NewPrincipal("alice", rng)
	b := identity.NewPrincipal("bob", rng)
	return &fixture{
		rng:   rng,
		ca:    ca,
		alice: identity.UserCredential(a, ca.IssueUser(a, 0, 500*hour)),
		bob:   identity.UserCredential(b, ca.IssueUser(b, 0, 500*hour)),
		auth:  &ChainAuthenticator{Verifier: identity.NewVerifier(ca)},
	}
}

func TestChainAuthenticator(t *testing.T) {
	f := newFixture()
	subj, err := f.auth.Authenticate(f.alice, hour)
	if err != nil || subj != "alice" {
		t.Fatalf("Authenticate = (%q, %v)", subj, err)
	}
	if _, err := f.auth.Authenticate(f.alice, 600*hour); !errors.Is(err, ErrNotAuthenticated) {
		t.Errorf("expired: %v", err)
	}
}

func TestSSHAuthenticator(t *testing.T) {
	f := newFixture()
	ssh := NewSSHAuthenticator()
	ssh.Enroll(f.alice.Holder)
	subj, err := ssh.Authenticate(f.alice, hour)
	if err != nil || subj != "alice" {
		t.Fatalf("ssh auth = (%q, %v)", subj, err)
	}
	if _, err := ssh.Authenticate(f.bob, hour); !errors.Is(err, ErrNotAuthenticated) {
		t.Errorf("unenrolled: %v", err)
	}
	if _, err := ssh.Authenticate(nil, hour); !errors.Is(err, ErrNotAuthenticated) {
		t.Errorf("nil cred: %v", err)
	}
}

func TestSSHAuthenticatorIgnoresExpiry(t *testing.T) {
	// SSH keys do not expire — one of the paper's contrasts with GSI.
	f := newFixture()
	ssh := NewSSHAuthenticator()
	ssh.Enroll(f.alice.Holder)
	if _, err := ssh.Authenticate(f.alice, 10000*hour); err != nil {
		t.Errorf("ssh auth at far future: %v", err)
	}
}

func TestSSHAuthenticatorRejectsProxyDelegation(t *testing.T) {
	// A proxy key is a fresh key pair; without enrollment SSH auth fails —
	// demonstrating "PlanetLab currently does not provide a mechanism for
	// identity delegation".
	f := newFixture()
	ssh := NewSSHAuthenticator()
	ssh.Enroll(f.alice.Holder)
	proxy, err := f.alice.Delegate("alice/proxy", 0, 10*hour, nil, f.rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ssh.Authenticate(proxy, hour); !errors.Is(err, ErrNotAuthenticated) {
		t.Errorf("delegated proxy under SSH model: %v", err)
	}
	// Whereas the chain authenticator accepts it as alice.
	subj, err := f.auth.Authenticate(proxy, hour)
	if err != nil || subj != "alice" {
		t.Errorf("chain auth of proxy = (%q, %v)", subj, err)
	}
}

func TestGridmap(t *testing.T) {
	g := NewGridmap()
	g.Map("alice", "u1001")
	if acct, err := g.Authorize("alice"); err != nil || acct != "u1001" {
		t.Fatalf("Authorize = (%q, %v)", acct, err)
	}
	if _, err := g.Authorize("mallory"); !errors.Is(err, ErrNoMapping) {
		t.Errorf("unmapped: %v", err)
	}
}

func TestGridmapBlacklist(t *testing.T) {
	g := NewGridmap()
	g.Map("alice", "u1001")
	g.Blacklist("alice")
	if _, err := g.Authorize("alice"); !errors.Is(err, ErrBlacklisted) {
		t.Errorf("blacklisted: %v", err)
	}
}

func TestGridmapWhitelist(t *testing.T) {
	g := NewGridmap()
	g.Map("alice", "u1001")
	g.Map("bob", "u1002")
	g.UseWhitelist = true
	g.Whitelist("alice")
	if _, err := g.Authorize("alice"); err != nil {
		t.Errorf("whitelisted: %v", err)
	}
	if _, err := g.Authorize("bob"); !errors.Is(err, ErrNotWhitelisted) {
		t.Errorf("not whitelisted: %v", err)
	}
}

func TestGridmapSubjectsSorted(t *testing.T) {
	g := NewGridmap()
	g.Map("zed", "z")
	g.Map("alice", "a")
	s := g.Subjects()
	if len(s) != 2 || s[0] != "alice" || s[1] != "zed" {
		t.Errorf("Subjects = %v", s)
	}
}

func TestSitePolicyAdmit(t *testing.T) {
	f := newFixture()
	g := NewGridmap()
	g.Map("alice", "u1001")
	pol := &SitePolicy{Auth: f.auth, Gridmap: g}
	local, subj, err := pol.Admit(f.alice, "submit", hour)
	if err != nil || local != "u1001" || subj != "alice" {
		t.Fatalf("Admit = (%q, %q, %v)", local, subj, err)
	}
}

func TestSitePolicyRightDenied(t *testing.T) {
	f := newFixture()
	g := NewGridmap()
	g.Map("alice", "u1001")
	pol := &SitePolicy{Auth: f.auth, Gridmap: g}
	// Restricted proxy lacking the needed right.
	p, _ := f.alice.Delegate("p", 0, 10*hour, []string{"query"}, f.rng)
	if _, _, err := pol.Admit(p, "submit", hour); !errors.Is(err, ErrRightDenied) {
		t.Errorf("lacking right: %v", err)
	}
}

func TestSitePolicyHonouredRights(t *testing.T) {
	f := newFixture()
	g := NewGridmap()
	g.Map("alice", "u1001")
	pol := &SitePolicy{Auth: f.auth, Gridmap: g, HonouredRights: []string{"query"}}
	if _, _, err := pol.Admit(f.alice, "submit", hour); !errors.Is(err, ErrRightDenied) {
		t.Errorf("unhonoured right: %v", err)
	}
	if _, _, err := pol.Admit(f.alice, "query", hour); err != nil {
		t.Errorf("honoured right: %v", err)
	}
	// Empty right skips the rights checks entirely.
	if _, _, err := pol.Admit(f.alice, "", hour); err != nil {
		t.Errorf("no right requested: %v", err)
	}
}

func TestCASIssueAndVerify(t *testing.T) {
	f := newFixture()
	cas := NewCAS("physics-vo", f.rng)
	cas.AddMember("alice")
	cas.Grant("read", "srb://dataset1")
	a, err := cas.Issue("alice", "read", "srb://dataset1", 10*hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAssertion(a, cas.Signer(), hour); err != nil {
		t.Errorf("verify: %v", err)
	}
	if err := VerifyAssertion(a, cas.Signer(), 10*hour); !errors.Is(err, ErrAssertionExpired) {
		t.Errorf("expired: %v", err)
	}
}

func TestCASRefusesNonMembers(t *testing.T) {
	f := newFixture()
	cas := NewCAS("vo", f.rng)
	cas.Grant("read", "r")
	if _, err := cas.Issue("mallory", "read", "r", hour); err == nil {
		t.Error("non-member issued assertion")
	}
}

func TestCASRefusesUngranted(t *testing.T) {
	f := newFixture()
	cas := NewCAS("vo", f.rng)
	cas.AddMember("alice")
	if _, err := cas.Issue("alice", "write", "r", hour); err == nil {
		t.Error("ungranted action issued")
	}
}

func TestCASAssertionTamperDetected(t *testing.T) {
	f := newFixture()
	cas := NewCAS("vo", f.rng)
	cas.AddMember("alice")
	cas.Grant("read", "r")
	a, _ := cas.Issue("alice", "read", "r", 10*hour)
	a.Subject = "mallory"
	if err := VerifyAssertion(a, cas.Signer(), hour); !errors.Is(err, ErrBadAssertion) {
		t.Errorf("tampered assertion: %v", err)
	}
}

func TestAdmitWithAssertion(t *testing.T) {
	f := newFixture()
	cas := NewCAS("physics-vo", f.rng)
	cas.AddMember("alice")
	cas.Grant("read", "srb://dataset1")
	a, err := cas.Issue("alice", "read", "srb://dataset1", 10*hour)
	if err != nil {
		t.Fatal(err)
	}
	pol := &SitePolicy{
		Auth:       f.auth,
		Gridmap:    NewGridmap(), // alice has NO individual mapping
		TrustedCAS: map[string]*identity.Principal{"physics-vo": cas.Signer()},
	}
	local, subj, err := pol.AdmitWithAssertion(f.alice, a, "read", "srb://dataset1", hour)
	if err != nil {
		t.Fatal(err)
	}
	if local != "community-physics-vo" || subj != "alice" {
		t.Errorf("admit = (%q, %q)", local, subj)
	}
	// The plain path still refuses her (no gridmap entry).
	if _, _, err := pol.Admit(f.alice, "", hour); !errors.Is(err, ErrNoMapping) {
		t.Errorf("plain admit: %v", err)
	}
}

func TestAdmitWithAssertionRejections(t *testing.T) {
	f := newFixture()
	cas := NewCAS("vo", f.rng)
	cas.AddMember("alice")
	cas.Grant("read", "r1")
	a, _ := cas.Issue("alice", "read", "r1", 10*hour)
	pol := &SitePolicy{
		Auth:       f.auth,
		Gridmap:    NewGridmap(),
		TrustedCAS: map[string]*identity.Principal{"vo": cas.Signer()},
	}
	// Wrong presenter: bob shows alice's assertion.
	if _, _, err := pol.AdmitWithAssertion(f.bob, a, "read", "r1", hour); !errors.Is(err, ErrBadAssertion) {
		t.Errorf("wrong presenter: %v", err)
	}
	// Wrong action/resource.
	if _, _, err := pol.AdmitWithAssertion(f.alice, a, "write", "r1", hour); !errors.Is(err, ErrBadAssertion) {
		t.Errorf("wrong action: %v", err)
	}
	if _, _, err := pol.AdmitWithAssertion(f.alice, a, "read", "r2", hour); !errors.Is(err, ErrBadAssertion) {
		t.Errorf("wrong resource: %v", err)
	}
	// Untrusted community.
	other := &SitePolicy{Auth: f.auth, Gridmap: NewGridmap()}
	if _, _, err := other.AdmitWithAssertion(f.alice, a, "read", "r1", hour); !errors.Is(err, ErrBadAssertion) {
		t.Errorf("untrusted cas: %v", err)
	}
	// Expired assertion.
	if _, _, err := pol.AdmitWithAssertion(f.alice, a, "read", "r1", 11*hour); !errors.Is(err, ErrAssertionExpired) {
		t.Errorf("expired: %v", err)
	}
	// Site veto: blacklist beats the community grant.
	pol.Gridmap.Blacklist("alice")
	if _, _, err := pol.AdmitWithAssertion(f.alice, a, "read", "r1", hour); !errors.Is(err, ErrBlacklisted) {
		t.Errorf("blacklisted: %v", err)
	}
}
