package capability

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func simNewEngine() *sim.Engine { return sim.NewEngine(1) }

type fakeClock struct{ t time.Duration }

func (c *fakeClock) Now() time.Duration { return c.t }

const hour = time.Hour

func newNM() (*fakeClock, *NodeManager) {
	clk := &fakeClock{}
	nm := NewNodeManager("n1", clk, rand.New(rand.NewSource(1)), map[ResourceType]float64{
		CPU: 2, Network: 1000, Memory: 1 << 30, Disk: 10 << 30,
	})
	return clk, nm
}

func TestMintDedicatedAdmissionControl(t *testing.T) {
	_, nm := newNM()
	c, err := nm.Mint(MintRequest{Type: CPU, Amount: 1.5, Dedicated: true, NotAfter: hour})
	if err != nil {
		t.Fatal(err)
	}
	if c.Node != "n1" || !c.Dedicated {
		t.Errorf("cap = %+v", c)
	}
	if _, err := nm.Mint(MintRequest{Type: CPU, Amount: 1, Dedicated: true, NotAfter: hour}); !errors.Is(err, ErrInsufficient) {
		t.Errorf("overcommit: %v", err)
	}
	if got := nm.Available(CPU); got != 0.5 {
		t.Errorf("Available = %v, want 0.5", got)
	}
}

func TestMintFairShareUnbounded(t *testing.T) {
	_, nm := newNM()
	for i := 0; i < 100; i++ {
		if _, err := nm.Mint(MintRequest{Type: CPU, Amount: 10, NotAfter: hour}); err != nil {
			t.Fatalf("fair-share mint %d: %v", i, err)
		}
	}
	if nm.Available(CPU) != 2 {
		t.Errorf("fair-share mints consumed dedicated capacity: %v", nm.Available(CPU))
	}
}

func TestMintRejectsBadRequests(t *testing.T) {
	_, nm := newNM()
	if _, err := nm.Mint(MintRequest{Type: CPU, Amount: 0, NotAfter: hour}); err == nil {
		t.Error("zero amount accepted")
	}
	if _, err := nm.Mint(MintRequest{Type: CPU, Amount: 1, NotBefore: hour, NotAfter: hour}); err == nil {
		t.Error("empty interval accepted")
	}
}

func TestPortCapabilityFCFS(t *testing.T) {
	_, nm := newNM()
	c1, err := nm.Mint(MintRequest{Type: Port, PortNum: 80, NotAfter: hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nm.Mint(MintRequest{Type: Port, PortNum: 80, NotAfter: hour}); !errors.Is(err, ErrPortTaken) {
		t.Errorf("double port mint: %v", err)
	}
	nm.Release(c1.ID)
	if _, err := nm.Mint(MintRequest{Type: Port, PortNum: 80, NotAfter: hour}); err != nil {
		t.Errorf("port after release: %v", err)
	}
}

func TestForgedIDRejected(t *testing.T) {
	_, nm := newNM()
	nm.Mint(MintRequest{Type: CPU, Amount: 1, NotAfter: hour})
	var forged ID
	forged[0] = 0xFF
	if _, err := nm.Verify(forged); !errors.Is(err, ErrUnknownCapability) {
		t.Errorf("forged: %v", err)
	}
}

func TestBindOnce(t *testing.T) {
	_, nm := newNM()
	c, _ := nm.Mint(MintRequest{Type: CPU, Amount: 1, Dedicated: true, NotAfter: hour})
	if _, err := nm.Bind(c.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := nm.Bind(c.ID); !errors.Is(err, ErrAlreadyBound) {
		t.Errorf("double bind: %v", err)
	}
	if nm.BoundN != 1 {
		t.Errorf("BoundN = %d", nm.BoundN)
	}
}

func TestExpiredCapability(t *testing.T) {
	clk, nm := newNM()
	c, _ := nm.Mint(MintRequest{Type: CPU, Amount: 1, NotAfter: hour})
	clk.t = hour
	if _, err := nm.Bind(c.ID); !errors.Is(err, ErrExpiredCapability) {
		t.Errorf("expired bind: %v", err)
	}
	// Not yet valid.
	c2, _ := nm.Mint(MintRequest{Type: CPU, Amount: 1, NotBefore: 5 * hour, NotAfter: 6 * hour})
	if _, err := nm.Verify(c2.ID); !errors.Is(err, ErrExpiredCapability) {
		t.Errorf("future claim: %v", err)
	}
}

func TestSplit(t *testing.T) {
	_, nm := newNM()
	c, _ := nm.Mint(MintRequest{Type: Network, Amount: 1000, Dedicated: true, NotAfter: hour})
	part, rest, err := nm.Split(c.ID, 300)
	if err != nil {
		t.Fatal(err)
	}
	if part.Amount != 300 || rest.Amount != 700 {
		t.Errorf("split = %v/%v", part.Amount, rest.Amount)
	}
	// Original consumed.
	if _, err := nm.Verify(c.ID); !errors.Is(err, ErrUnknownCapability) {
		t.Errorf("original after split: %v", err)
	}
	// Committed total unchanged.
	if got := nm.Available(Network); got != 0 {
		t.Errorf("Available(Network) = %v, want 0", got)
	}
	// Both halves bind independently.
	if _, err := nm.Bind(part.ID); err != nil {
		t.Errorf("bind part: %v", err)
	}
	if _, err := nm.Bind(rest.ID); err != nil {
		t.Errorf("bind rest: %v", err)
	}
}

func TestSplitErrors(t *testing.T) {
	_, nm := newNM()
	c, _ := nm.Mint(MintRequest{Type: Network, Amount: 100, NotAfter: hour})
	if _, _, err := nm.Split(c.ID, 100); !errors.Is(err, ErrSplitTooLarge) {
		t.Errorf("full split: %v", err)
	}
	if _, _, err := nm.Split(c.ID, 0); !errors.Is(err, ErrSplitTooLarge) {
		t.Errorf("zero split: %v", err)
	}
	p, _ := nm.Mint(MintRequest{Type: Port, PortNum: 80, NotAfter: hour})
	if _, _, err := nm.Split(p.ID, 0.5); !errors.Is(err, ErrNotDivisible) {
		t.Errorf("port split: %v", err)
	}
	nm.Bind(c.ID)
	if _, _, err := nm.Split(c.ID, 50); !errors.Is(err, ErrAlreadyBound) {
		t.Errorf("bound split: %v", err)
	}
}

func TestReleaseReturnsCapacity(t *testing.T) {
	_, nm := newNM()
	c, _ := nm.Mint(MintRequest{Type: CPU, Amount: 2, Dedicated: true, NotAfter: hour})
	if nm.Available(CPU) != 0 {
		t.Fatal("capacity not committed")
	}
	nm.Release(c.ID)
	if nm.Available(CPU) != 2 {
		t.Errorf("Available = %v after release", nm.Available(CPU))
	}
	nm.Release(c.ID) // idempotent
}

func TestRevoke(t *testing.T) {
	_, nm := newNM()
	c, _ := nm.Mint(MintRequest{Type: CPU, Amount: 1, Dedicated: true, NotAfter: hour})
	nm.Revoke(c.ID)
	if _, err := nm.Verify(c.ID); !errors.Is(err, ErrRevokedCapability) {
		t.Errorf("revoked: %v", err)
	}
	if nm.Available(CPU) != 2 {
		t.Errorf("capacity not reclaimed: %v", nm.Available(CPU))
	}
}

func TestExpireSweep(t *testing.T) {
	clk, nm := newNM()
	nm.Mint(MintRequest{Type: CPU, Amount: 1, Dedicated: true, NotAfter: hour})
	nm.Mint(MintRequest{Type: CPU, Amount: 1, Dedicated: true, NotAfter: 3 * hour})
	clk.t = 2 * hour
	if n := nm.ExpireSweep(); n != 1 {
		t.Errorf("swept %d, want 1", n)
	}
	if nm.Available(CPU) != 1 {
		t.Errorf("Available = %v, want 1", nm.Available(CPU))
	}
	if nm.Outstanding() != 1 {
		t.Errorf("Outstanding = %d, want 1", nm.Outstanding())
	}
}

func TestIDString(t *testing.T) {
	var id ID
	id[0], id[1] = 0xAB, 0xCD
	if got := id.String(); got != "abcd00000000" {
		t.Errorf("String = %q", got)
	}
}

func TestResourceTypeString(t *testing.T) {
	if CPU.String() != "cpu" || Port.String() != "port" {
		t.Error("type names wrong")
	}
	if ResourceType(99).String() != "ResourceType(99)" {
		t.Error("unknown type name wrong")
	}
}

// Property: any sequence of valid splits preserves the total committed
// amount, and all fragment IDs are distinct.
func TestSplitConservesProperty(t *testing.T) {
	f := func(cuts []uint8) bool {
		_, nm := newNM()
		c, err := nm.Mint(MintRequest{Type: Network, Amount: 1000, Dedicated: true, NotAfter: hour})
		if err != nil {
			return false
		}
		frags := map[ID]float64{c.ID: c.Amount}
		ids := map[ID]bool{c.ID: true}
		for _, cut := range cuts {
			// Pick the largest fragment deterministically.
			var target ID
			var max float64
			for id, amt := range frags {
				if amt > max || (amt == max && string(id[:]) < string(target[:])) {
					max, target = amt, id
				}
			}
			if max < 2 {
				break
			}
			frac := (float64(cut%98) + 1) / 100 // 1%..98%
			part, rest, err := nm.Split(target, max*frac)
			if err != nil {
				return false
			}
			delete(frags, target)
			frags[part.ID], frags[rest.ID] = part.Amount, rest.Amount
			if ids[part.ID] || ids[rest.ID] {
				return false // ID collision
			}
			ids[part.ID], ids[rest.ID] = true, true
		}
		total := 0.0
		for _, amt := range frags {
			total += amt
		}
		return total > 999.999 && total < 1000.001 && nm.Available(Network) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: mint/release pairs always restore available capacity.
func TestMintReleaseRoundTripProperty(t *testing.T) {
	f := func(amounts []uint16) bool {
		_, nm := newNM()
		before := nm.Available(Disk)
		var ids []ID
		for _, a := range amounts {
			amt := float64(a%1000) + 1
			c, err := nm.Mint(MintRequest{Type: Disk, Amount: amt, Dedicated: true, NotAfter: hour})
			if errors.Is(err, ErrInsufficient) {
				continue
			}
			if err != nil {
				return false
			}
			ids = append(ids, c.ID)
		}
		for _, id := range ids {
			nm.Release(id)
		}
		return nm.Available(Disk) == before && nm.Outstanding() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAttachSweeper(t *testing.T) {
	eng := simNewEngine()
	nm := NewNodeManager("n1", eng, rand.New(rand.NewSource(1)), map[ResourceType]float64{CPU: 2})
	nm.Mint(MintRequest{Type: CPU, Amount: 2, Dedicated: true, NotAfter: 30 * time.Minute})
	tk := nm.AttachSweeper(eng, 10*time.Minute)
	eng.RunUntil(25 * time.Minute)
	if nm.Available(CPU) != 0 {
		t.Fatal("swept too early")
	}
	eng.RunUntil(41 * time.Minute)
	if nm.Available(CPU) != 2 {
		t.Errorf("Available = %v after expiry sweep", nm.Available(CPU))
	}
	tk.Stop()
}
