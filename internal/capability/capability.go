// Package capability implements PlanetLab's resource-usage-delegation
// mechanism [Chun & Spalink, PDN-03-13]: "resource capabilities represent
// time-limited claims over low-level resources available at a node or
// site: fair-share or dedicated use for CPU, network, memory, disk,
// network ports, file descriptors. A local resource manager keeps track of
// resources available at a node and hands over capabilities to brokers
// that operate at the VO level. A PlanetLab capability is represented by a
// 160-bit opaque identifier."
//
// Capabilities here are bearer tokens: whoever presents the 160-bit
// identifier holds the claim (services may wrap them in their own
// authentication, which the paper notes PlanetLab does not standardize).
// The NodeManager is the per-node ledger; enforcement on bind is delegated
// to a silk.Context created from the capability's resource envelope.
package capability

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/sim"
)

// ResourceType enumerates the low-level resource classes the paper lists.
type ResourceType int

// The capability resource classes.
const (
	CPU             ResourceType = iota // core fraction (dedicated) or shares (fair-share)
	Network                             // bytes/second
	Memory                              // bytes
	Disk                                // bytes
	Port                                // one specific port number
	FileDescriptors                     // count
)

var typeNames = map[ResourceType]string{
	CPU: "cpu", Network: "net", Memory: "mem", Disk: "disk",
	Port: "port", FileDescriptors: "fds",
}

func (r ResourceType) String() string {
	if s, ok := typeNames[r]; ok {
		return s
	}
	return fmt.Sprintf("ResourceType(%d)", int(r))
}

// Errors returned by the node manager.
var (
	ErrUnknownCapability = errors.New("capability: unknown or forged identifier")
	ErrExpiredCapability = errors.New("capability: claim interval not current")
	ErrInsufficient      = errors.New("capability: insufficient uncommitted resources")
	ErrAlreadyBound      = errors.New("capability: already bound")
	ErrSplitTooLarge     = errors.New("capability: split exceeds capability amount")
	ErrRevokedCapability = errors.New("capability: revoked")
	ErrNotDivisible      = errors.New("capability: resource type is not divisible")
	ErrPortTaken         = errors.New("capability: port already claimed")
)

// ID is the 160-bit opaque capability identifier.
type ID [20]byte

// String renders a short hex prefix for logs.
func (id ID) String() string {
	return fmt.Sprintf("%x", id[:6])
}

// Capability is a time-limited claim over a low-level resource at a node.
type Capability struct {
	ID        ID
	Node      string
	Type      ResourceType
	Amount    float64 // meaning depends on Type; 1 for Port
	PortNum   int     // valid when Type == Port
	Dedicated bool    // guaranteed (admission-controlled) vs fair-share
	NotBefore time.Duration
	NotAfter  time.Duration
}

// CurrentAt reports whether the claim interval covers t.
func (c *Capability) CurrentAt(t time.Duration) bool {
	return t >= c.NotBefore && t < c.NotAfter
}

// Clock abstracts virtual time so the package depends only on sim
// indirectly (any engine works).
type Clock interface{ Now() time.Duration }

// NodeManager is the local resource manager of one PlanetLab node: it
// tracks node capacity, mints capabilities against uncommitted capacity,
// and redeems/binds them.
type NodeManager struct {
	Node string

	clock Clock
	rng   *rand.Rand

	capacity  map[ResourceType]float64 // dedicated-committable capacity
	committed map[ResourceType]float64 // dedicated amounts promised
	ports     map[int]ID               // port -> holding capability
	caps      map[ID]*Capability
	bound     map[ID]bool
	revoked   map[ID]bool

	// Minted and Bound count operations for experiment accounting.
	Minted, BoundN uint64
}

// NewNodeManager creates a ledger for a node with the given dedicated
// capacities. Fair-share CPU/network claims are not admission-controlled
// (they only carry scheduling weight), matching PlanetLab's default
// best-effort regime.
func NewNodeManager(node string, clock Clock, rng *rand.Rand, capacity map[ResourceType]float64) *NodeManager {
	capCopy := make(map[ResourceType]float64, len(capacity))
	for k, v := range capacity {
		capCopy[k] = v
	}
	return &NodeManager{
		Node:      node,
		clock:     clock,
		rng:       rng,
		capacity:  capCopy,
		committed: make(map[ResourceType]float64),
		ports:     make(map[int]ID),
		caps:      make(map[ID]*Capability),
		bound:     make(map[ID]bool),
		revoked:   make(map[ID]bool),
	}
}

func (m *NodeManager) newID() ID {
	var id ID
	for i := range id {
		id[i] = byte(m.rng.Intn(256))
	}
	return id
}

// Available returns the uncommitted dedicated capacity for a type.
func (m *NodeManager) Available(t ResourceType) float64 {
	return m.capacity[t] - m.committed[t]
}

// MintRequest describes a capability to mint.
type MintRequest struct {
	Type      ResourceType
	Amount    float64
	PortNum   int
	Dedicated bool
	NotBefore time.Duration
	NotAfter  time.Duration
}

// Mint issues a capability. Dedicated requests are admission-controlled
// against uncommitted capacity; fair-share requests always succeed (they
// are scheduling weights, not guarantees). Port requests claim a specific
// port FCFS.
func (m *NodeManager) Mint(req MintRequest) (*Capability, error) {
	if req.NotAfter <= req.NotBefore {
		return nil, fmt.Errorf("capability: empty interval [%v,%v)", req.NotBefore, req.NotAfter)
	}
	switch req.Type {
	case Port:
		if _, taken := m.ports[req.PortNum]; taken {
			return nil, fmt.Errorf("%w: %d", ErrPortTaken, req.PortNum)
		}
		req.Amount = 1
		req.Dedicated = true
	default:
		if req.Amount <= 0 {
			return nil, fmt.Errorf("capability: amount %v must be positive", req.Amount)
		}
		if req.Dedicated && m.Available(req.Type) < req.Amount {
			return nil, fmt.Errorf("%w: %s want %.2f free %.2f",
				ErrInsufficient, req.Type, req.Amount, m.Available(req.Type))
		}
	}
	c := &Capability{
		ID:        m.newID(),
		Node:      m.Node,
		Type:      req.Type,
		Amount:    req.Amount,
		PortNum:   req.PortNum,
		Dedicated: req.Dedicated,
		NotBefore: req.NotBefore,
		NotAfter:  req.NotAfter,
	}
	if req.Dedicated && req.Type != Port {
		m.committed[req.Type] += req.Amount
	}
	if req.Type == Port {
		m.ports[req.PortNum] = c.ID
	}
	m.caps[c.ID] = c
	m.Minted++
	return c, nil
}

// lookup validates an ID and returns the live capability.
func (m *NodeManager) lookup(id ID) (*Capability, error) {
	if m.revoked[id] {
		return nil, ErrRevokedCapability
	}
	c, ok := m.caps[id]
	if !ok {
		return nil, ErrUnknownCapability
	}
	return c, nil
}

// Split divides a divisible capability into one of the requested amount
// and the remainder, invalidating the original — this is the fine-grained
// "ability of each site/node to delegate resource usage rights to multiple
// brokers at fine granularity".
func (m *NodeManager) Split(id ID, amount float64) (part, rest *Capability, err error) {
	c, err := m.lookup(id)
	if err != nil {
		return nil, nil, err
	}
	if c.Type == Port {
		return nil, nil, ErrNotDivisible
	}
	if m.bound[id] {
		return nil, nil, ErrAlreadyBound
	}
	if amount <= 0 || amount >= c.Amount {
		return nil, nil, fmt.Errorf("%w: %v of %v", ErrSplitTooLarge, amount, c.Amount)
	}
	mk := func(amt float64) *Capability {
		nc := *c
		nc.ID = m.newID()
		nc.Amount = amt
		m.caps[nc.ID] = &nc
		return &nc
	}
	part, rest = mk(amount), mk(c.Amount-amount)
	delete(m.caps, id) // original is consumed
	return part, rest, nil
}

// Verify checks that an ID names a live, current capability (a broker or
// buyer calls this before paying for a transferred capability).
func (m *NodeManager) Verify(id ID) (*Capability, error) {
	c, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	if !c.CurrentAt(m.clock.Now()) {
		return nil, ErrExpiredCapability
	}
	return c, nil
}

// Bind redeems a capability, marking it consumed by a VM. The returned
// capability tells the caller what envelope to enforce (via silk). A
// capability binds at most once.
func (m *NodeManager) Bind(id ID) (*Capability, error) {
	c, err := m.Verify(id)
	if err != nil {
		return nil, err
	}
	if m.bound[id] {
		return nil, ErrAlreadyBound
	}
	m.bound[id] = true
	m.BoundN++
	return c, nil
}

// Extend pushes a live capability's NotAfter out to a later time — the
// hard-state half of a SHARP lease renewal. The committed amount is
// unchanged, so no admission check is needed: the claim keeps the
// resources it already holds, just for longer. Shrinking (or failing to
// extend) the interval is rejected.
func (m *NodeManager) Extend(id ID, notAfter time.Duration) error {
	c, err := m.lookup(id)
	if err != nil {
		return err
	}
	if now := m.clock.Now(); now >= c.NotAfter {
		return fmt.Errorf("%w: lapsed at %v, now %v", ErrExpiredCapability, c.NotAfter, now)
	}
	if notAfter <= c.NotAfter {
		return fmt.Errorf("capability: extend to %v does not pass current %v", notAfter, c.NotAfter)
	}
	c.NotAfter = notAfter
	return nil
}

// Release returns a bound or outstanding capability's resources to the
// pool and forgets it.
func (m *NodeManager) Release(id ID) {
	c, ok := m.caps[id]
	if !ok {
		return
	}
	if c.Dedicated && c.Type != Port {
		m.committed[c.Type] -= c.Amount
	}
	if c.Type == Port {
		delete(m.ports, c.PortNum)
	}
	delete(m.caps, id)
	delete(m.bound, id)
}

// Revoke invalidates a capability without waiting for expiry ("by
// allowing PlanetLab administrators 'root' access on individual nodes" —
// central administrators can always reclaim).
func (m *NodeManager) Revoke(id ID) {
	m.revoked[id] = true
	m.Release(id)
}

// ExpireSweep releases every capability whose interval has passed; call
// periodically (e.g. from a sim.Ticker).
func (m *NodeManager) ExpireSweep() int {
	now := m.clock.Now()
	var dead []ID
	for id, c := range m.caps {
		if now >= c.NotAfter {
			dead = append(dead, id)
		}
	}
	// Deterministic order for reproducible traces.
	sort.Slice(dead, func(i, j int) bool {
		return string(dead[i][:]) < string(dead[j][:])
	})
	for _, id := range dead {
		m.Release(id)
	}
	return len(dead)
}

// Outstanding returns the number of live capabilities.
func (m *NodeManager) Outstanding() int { return len(m.caps) }

// Sweeper runs ExpireSweep on a fixed period using any ticker-capable
// engine (matching sim.Engine's NewTicker), so expired claims return to
// the pool without manual housekeeping.
type tickerEngine interface {
	NewTicker(period time.Duration, fn func()) *sim.Ticker
}

// AttachSweeper starts periodic expiry sweeps and returns the ticker so
// callers can stop it.
func (m *NodeManager) AttachSweeper(eng tickerEngine, period time.Duration) *sim.Ticker {
	return eng.NewTicker(period, func() { m.ExpireSweep() })
}
