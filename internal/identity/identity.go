// Package identity implements the PKI machinery both systems' security
// layers build on: principals with ed25519 key pairs, X.509-style
// certificates signed by certificate authorities, and GSI proxy
// certificates [Welch et al. 2004] — short-lived certificates signed by a
// *user* (not a CA), optionally carrying restricted rights, whose chains
// validate back to a trusted CA.
//
// The paper's E4 experiment ("Choosing the lifetime of proxy certificates
// requires a compromise between allowing long-term jobs to continue to run
// as authenticated entities and the need to limit the damage in the event
// a proxy is compromised") is exercised directly against this package: the
// signatures are real, expiry is checked against the simulation clock, and
// a stolen proxy is usable exactly until NotAfter.
package identity

import (
	"bytes"
	"crypto/ed25519"
	"crypto/sha1"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Errors returned by chain validation.
var (
	ErrExpired        = errors.New("identity: certificate expired or not yet valid")
	ErrBadSignature   = errors.New("identity: signature verification failed")
	ErrUntrustedRoot  = errors.New("identity: chain does not terminate at a trusted CA")
	ErrNotCA          = errors.New("identity: issuer is not a CA")
	ErrBrokenChain    = errors.New("identity: chain issuer/subject mismatch")
	ErrProxyFromProxy = errors.New("identity: proxy chain exceeds depth limit")
	ErrRevoked        = errors.New("identity: certificate revoked")
	ErrRightsEscalate = errors.New("identity: proxy rights exceed issuer rights")
	ErrEmptyChain     = errors.New("identity: empty chain")
)

// Principal is a named key pair: a user, a service, a site authority, or a
// CA. The private key never leaves the Principal value; signing goes
// through methods.
type Principal struct {
	Name string
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewPrincipal deterministically derives a principal from the rng, so
// simulations are reproducible.
func NewPrincipal(name string, rng *rand.Rand) *Principal {
	seed := make([]byte, ed25519.SeedSize)
	for i := range seed {
		seed[i] = byte(rng.Intn(256))
	}
	priv := ed25519.NewKeyFromSeed(seed)
	return &Principal{Name: name, pub: priv.Public().(ed25519.PublicKey), priv: priv}
}

// Public returns the principal's public key.
func (p *Principal) Public() ed25519.PublicKey { return p.pub }

// Sign signs arbitrary bytes with the principal's key.
func (p *Principal) Sign(msg []byte) []byte { return ed25519.Sign(p.priv, msg) }

// Verify checks a signature allegedly made by this principal.
func (p *Principal) Verify(msg, sig []byte) bool { return ed25519.Verify(p.pub, msg, sig) }

// Certificate binds a subject name and public key to a validity interval
// and an optional rights set, signed by an issuer. IsProxy marks GSI proxy
// certificates, which are signed by the delegating *user* rather than a CA.
type Certificate struct {
	Subject    string
	SubjectKey ed25519.PublicKey
	Issuer     string
	IssuerKey  ed25519.PublicKey
	NotBefore  time.Duration // virtual time
	NotAfter   time.Duration
	IsCA       bool
	IsProxy    bool
	// Rights restricts what the holder may do. nil means "inherit all
	// rights of the issuer" (an unrestricted proxy); an empty non-nil
	// slice grants nothing.
	Rights    []string
	Signature []byte
	Serial    uint64
}

// tbs returns the canonical to-be-signed encoding of the certificate.
// A hand-rolled deterministic encoding avoids JSON map-order pitfalls.
func (c *Certificate) tbs() []byte {
	var buf bytes.Buffer
	writeStr := func(s string) {
		var n [4]byte
		binary.BigEndian.PutUint32(n[:], uint32(len(s)))
		buf.Write(n[:])
		buf.WriteString(s)
	}
	writeStr(c.Subject)
	buf.Write(c.SubjectKey)
	writeStr(c.Issuer)
	buf.Write(c.IssuerKey)
	var t [8]byte
	binary.BigEndian.PutUint64(t[:], uint64(c.NotBefore))
	buf.Write(t[:])
	binary.BigEndian.PutUint64(t[:], uint64(c.NotAfter))
	buf.Write(t[:])
	flags := byte(0)
	if c.IsCA {
		flags |= 1
	}
	if c.IsProxy {
		flags |= 2
	}
	if c.Rights != nil {
		flags |= 4
	}
	buf.WriteByte(flags)
	rights := append([]string(nil), c.Rights...)
	sort.Strings(rights)
	for _, r := range rights {
		writeStr(r)
	}
	binary.BigEndian.PutUint64(t[:], c.Serial)
	buf.Write(t[:])
	return buf.Bytes()
}

// Fingerprint returns a stable 20-byte digest identifying the certificate.
func (c *Certificate) Fingerprint() [20]byte { return sha1.Sum(c.tbs()) }

// VerifySignature checks the certificate's signature against its embedded
// issuer key (chain trust is established separately by Verifier.Validate).
func (c *Certificate) VerifySignature() bool {
	return ed25519.Verify(c.IssuerKey, c.tbs(), c.Signature)
}

// ValidAt reports whether the validity interval covers t.
func (c *Certificate) ValidAt(t time.Duration) bool {
	return t >= c.NotBefore && t < c.NotAfter
}

// CA is a certificate authority: a principal whose self-signed root
// certificate anchors trust.
type CA struct {
	*Principal
	Root   *Certificate
	serial uint64
}

// NewCA creates a CA with a self-signed root valid over [0, horizon).
func NewCA(name string, horizon time.Duration, rng *rand.Rand) *CA {
	p := NewPrincipal(name, rng)
	ca := &CA{Principal: p}
	root := &Certificate{
		Subject:    name,
		SubjectKey: p.pub,
		Issuer:     name,
		IssuerKey:  p.pub,
		NotBefore:  0,
		NotAfter:   horizon,
		IsCA:       true,
		Serial:     ca.nextSerial(),
	}
	root.Signature = p.Sign(root.tbs())
	ca.Root = root
	return ca
}

func (ca *CA) nextSerial() uint64 {
	ca.serial++
	return ca.serial
}

// IssueUser signs an end-entity certificate for the principal.
func (ca *CA) IssueUser(subject *Principal, notBefore, notAfter time.Duration) *Certificate {
	c := &Certificate{
		Subject:    subject.Name,
		SubjectKey: subject.pub,
		Issuer:     ca.Name,
		IssuerKey:  ca.pub,
		NotBefore:  notBefore,
		NotAfter:   notAfter,
		Serial:     ca.nextSerial(),
	}
	c.Signature = ca.Sign(c.tbs())
	return c
}

// Credential is a principal together with the certificate chain proving
// its identity: [end-entity-or-proxy, ..., user-cert]. The CA root is not
// included; verifiers hold roots out of band.
type Credential struct {
	Holder *Principal
	Chain  []*Certificate
}

// Leaf returns the chain's leaf certificate (the holder's own).
func (cr *Credential) Leaf() *Certificate {
	if len(cr.Chain) == 0 {
		return nil
	}
	return cr.Chain[0]
}

// Subject returns the *original* identity at the end of the chain — for a
// proxy chain, the delegating user, which is what authorization decisions
// key on ("searches the certificate chain until the user certificate is
// found in order to do the authorization based on that identity token").
func (cr *Credential) Subject() string {
	if len(cr.Chain) == 0 {
		return ""
	}
	return cr.Chain[len(cr.Chain)-1].Subject
}

// EffectiveRights returns the intersection of all restricted-rights sets
// along the chain; nil means unrestricted.
func (cr *Credential) EffectiveRights() []string {
	var set map[string]bool
	for _, c := range cr.Chain {
		if c.Rights == nil {
			continue
		}
		if set == nil {
			set = make(map[string]bool, len(c.Rights))
			for _, r := range c.Rights {
				set[r] = true
			}
			continue
		}
		keep := make(map[string]bool)
		for _, r := range c.Rights {
			if set[r] {
				keep[r] = true
			}
		}
		set = keep
	}
	if set == nil {
		return nil
	}
	out := make([]string, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// HasRight reports whether the credential permits the named right.
func (cr *Credential) HasRight(right string) bool {
	r := cr.EffectiveRights()
	if r == nil {
		return true
	}
	for _, x := range r {
		if x == right {
			return true
		}
	}
	return false
}

// UserCredential bundles a user certificate into a credential.
func UserCredential(holder *Principal, cert *Certificate) *Credential {
	return &Credential{Holder: holder, Chain: []*Certificate{cert}}
}

// MaxProxyDepth bounds delegation chains (user + proxies). GSI tooling of
// the era defaulted to similar small limits.
const MaxProxyDepth = 8

// Delegate creates a proxy credential: a fresh key pair whose certificate
// is signed by the current credential's holder, valid for lifetime from
// now, optionally restricted to rights (nil = inherit). This is GSI
// identity delegation: the proxy can act as the original subject.
func (cr *Credential) Delegate(name string, now, lifetime time.Duration, rights []string, rng *rand.Rand) (*Credential, error) {
	if len(cr.Chain) >= MaxProxyDepth {
		return nil, ErrProxyFromProxy
	}
	if rights != nil {
		// A proxy may only narrow rights, never widen them.
		for _, r := range rights {
			if !cr.HasRight(r) {
				return nil, fmt.Errorf("%w: %q", ErrRightsEscalate, r)
			}
		}
	}
	proxy := NewPrincipal(name, rng)
	c := &Certificate{
		Subject:    name,
		SubjectKey: proxy.pub,
		Issuer:     cr.Holder.Name,
		IssuerKey:  cr.Holder.pub,
		NotBefore:  now,
		NotAfter:   now + lifetime,
		IsProxy:    true,
		Rights:     rights,
	}
	c.Signature = cr.Holder.Sign(c.tbs())
	chain := append([]*Certificate{c}, cr.Chain...)
	return &Credential{Holder: proxy, Chain: chain}, nil
}

// Verifier validates chains against a set of trusted roots and a
// revocation list.
type Verifier struct {
	roots   map[string]ed25519.PublicKey
	revoked map[[20]byte]bool
}

// NewVerifier returns a verifier trusting the given CAs.
func NewVerifier(roots ...*CA) *Verifier {
	v := &Verifier{
		roots:   make(map[string]ed25519.PublicKey, len(roots)),
		revoked: make(map[[20]byte]bool),
	}
	for _, ca := range roots {
		v.roots[ca.Name] = ca.Public()
	}
	return v
}

// AddRoot trusts an additional CA root.
func (v *Verifier) AddRoot(ca *CA) { v.roots[ca.Name] = ca.Public() }

// Revoke adds a certificate to the revocation list.
func (v *Verifier) Revoke(c *Certificate) { v.revoked[c.Fingerprint()] = true }

// Validate checks a credential chain at virtual time now: every link's
// signature, validity window, revocation status, issuer/subject
// continuity, proxy marking, and termination at a trusted root. On success
// it returns the authenticated original subject name.
func (v *Verifier) Validate(cr *Credential, now time.Duration) (subject string, err error) {
	if cr == nil || len(cr.Chain) == 0 {
		return "", ErrEmptyChain
	}
	if len(cr.Chain) > MaxProxyDepth {
		return "", ErrProxyFromProxy
	}
	// The holder must actually possess the leaf key (proof-of-possession
	// is modelled structurally: the Credential carries the Principal).
	if cr.Holder == nil || !cr.Holder.pub.Equal(cr.Chain[0].SubjectKey) {
		return "", fmt.Errorf("%w: holder key does not match leaf", ErrBadSignature)
	}
	for i, c := range cr.Chain {
		if v.revoked[c.Fingerprint()] {
			return "", ErrRevoked
		}
		if !c.ValidAt(now) {
			return "", fmt.Errorf("%w: %q [%v,%v) at %v", ErrExpired, c.Subject, c.NotBefore, c.NotAfter, now)
		}
		if !c.VerifySignature() {
			return "", fmt.Errorf("%w: %q", ErrBadSignature, c.Subject)
		}
		last := i == len(cr.Chain)-1
		if !last {
			// Non-last links must be proxies issued by the next link's
			// subject.
			if !c.IsProxy {
				return "", fmt.Errorf("%w: intermediate %q is not a proxy", ErrBrokenChain, c.Subject)
			}
			next := cr.Chain[i+1]
			if c.Issuer != next.Subject || !bytes.Equal(c.IssuerKey, next.SubjectKey) {
				return "", fmt.Errorf("%w: %q not issued by %q", ErrBrokenChain, c.Subject, next.Subject)
			}
		} else {
			// The chain's last certificate must be CA-issued.
			rootKey, ok := v.roots[c.Issuer]
			if !ok {
				return "", fmt.Errorf("%w: issuer %q", ErrUntrustedRoot, c.Issuer)
			}
			if !rootKey.Equal(ed25519.PublicKey(c.IssuerKey)) {
				return "", fmt.Errorf("%w: issuer key mismatch for %q", ErrUntrustedRoot, c.Issuer)
			}
			if c.IsProxy {
				return "", fmt.Errorf("%w: chain root is a proxy", ErrBrokenChain)
			}
		}
	}
	return cr.Subject(), nil
}
