package identity

import (
	"math/rand"
	"testing"
)

func TestSigCacheMemoizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewPrincipal("p", rng)
	msg := []byte("hello")
	sig := p.Sign(msg)

	c := NewSigCache(16)
	if !c.Verify(p.Public(), msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if c.Len() != 1 || c.Misses != 1 || c.Hits != 0 {
		t.Fatalf("after first verify: len=%d hits=%d misses=%d", c.Len(), c.Hits, c.Misses)
	}
	if !c.Verify(p.Public(), msg, sig) {
		t.Fatal("memoized signature rejected")
	}
	if c.Hits != 1 {
		t.Fatalf("second verify should hit, hits=%d", c.Hits)
	}
}

func TestSigCacheNeverCachesFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := NewPrincipal("p", rng)
	other := NewPrincipal("other", rng)
	msg := []byte("msg")
	forged := other.Sign(msg) // valid for other, forged for p

	c := NewSigCache(16)
	for i := 0; i < 3; i++ {
		if c.Verify(p.Public(), msg, forged) {
			t.Fatal("forged signature accepted")
		}
	}
	if c.Len() != 0 {
		t.Fatalf("failure was cached: len=%d", c.Len())
	}
	// Tampering with a cached-good message must miss the cache and fail.
	good := p.Sign(msg)
	if !c.Verify(p.Public(), msg, good) {
		t.Fatal("good signature rejected")
	}
	tampered := append([]byte(nil), msg...)
	tampered[0] ^= 1
	if c.Verify(p.Public(), tampered, good) {
		t.Fatal("tampered message accepted via cache")
	}
}

func TestSigCacheBoundedEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := NewPrincipal("p", rng)
	c := NewSigCache(4)
	for i := 0; i < 10; i++ {
		msg := []byte{byte(i)}
		if !c.Verify(p.Public(), msg, p.Sign(msg)) {
			t.Fatalf("verify %d failed", i)
		}
		if c.Len() > 4 {
			t.Fatalf("cache exceeded cap: %d", c.Len())
		}
	}
	if c.Evictions == 0 {
		t.Fatal("expected at least one generation eviction")
	}
}

func TestBatchDedupAndVerdicts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := NewPrincipal("p", rng)
	shared := []byte("shared-prefix")
	sharedSig := p.Sign(shared)

	b := NewBatch(nil)
	var idx []int
	// 8 repeats of the shared triple + 8 distinct leaves + 1 forgery.
	for i := 0; i < 8; i++ {
		idx = append(idx, b.Add(p.Public(), shared, sharedSig))
	}
	leaves := make([][]byte, 8)
	for i := range leaves {
		leaves[i] = []byte{byte(i), 0xee}
		idx = append(idx, b.Add(p.Public(), leaves[i], p.Sign(leaves[i])))
	}
	bad := b.Add(p.Public(), []byte("forged"), sharedSig)

	if b.Len() != 17 || b.Distinct() != 10 {
		t.Fatalf("len=%d distinct=%d, want 17/10", b.Len(), b.Distinct())
	}
	res := b.Run()
	if b.VerifiedN != 10 {
		t.Fatalf("VerifiedN=%d, want 10 (one per distinct)", b.VerifiedN)
	}
	for _, i := range idx {
		if !res[i] {
			t.Fatalf("item %d should verify", i)
		}
	}
	if res[bad] {
		t.Fatal("forged item verified")
	}
}

func TestBatchFeedsAndReadsCache(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := NewPrincipal("p", rng)
	c := NewSigCache(64)
	msg := []byte("root")
	sig := p.Sign(msg)

	b := NewBatch(c)
	b.Add(p.Public(), msg, sig)
	b.Run()
	if b.VerifiedN != 1 || c.Len() != 1 {
		t.Fatalf("first run: verified=%d cached=%d", b.VerifiedN, c.Len())
	}

	b2 := NewBatch(c)
	b2.Add(p.Public(), msg, sig)
	res := b2.Run()
	if b2.VerifiedN != 0 {
		t.Fatalf("second batch re-verified a cached triple: %d", b2.VerifiedN)
	}
	if !res[0] {
		t.Fatal("cached triple rejected")
	}
}

func TestBatchReset(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := NewPrincipal("p", rng)
	b := NewBatch(nil)
	m := []byte("x")
	b.Add(p.Public(), m, p.Sign(m))
	b.Run()
	b.Reset()
	if b.Len() != 0 || b.Distinct() != 0 {
		t.Fatalf("reset left items: len=%d distinct=%d", b.Len(), b.Distinct())
	}
	m2 := []byte("y")
	i := b.Add(p.Public(), m2, p.Sign(m2))
	if res := b.Run(); !res[i] {
		t.Fatal("post-reset verify failed")
	}
}
