package identity

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

const hour = time.Hour

func setup(t *testing.T) (*rand.Rand, *CA, *Principal, *Credential, *Verifier) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	ca := NewCA("DOEGrids", 1000*hour, rng)
	user := NewPrincipal("/O=Grid/CN=alice", rng)
	cert := ca.IssueUser(user, 0, 500*hour)
	cred := UserCredential(user, cert)
	return rng, ca, user, cred, NewVerifier(ca)
}

func TestUserCertValidates(t *testing.T) {
	_, _, _, cred, v := setup(t)
	subj, err := v.Validate(cred, 10*hour)
	if err != nil {
		t.Fatal(err)
	}
	if subj != "/O=Grid/CN=alice" {
		t.Errorf("subject = %q", subj)
	}
}

func TestExpiry(t *testing.T) {
	_, _, _, cred, v := setup(t)
	if _, err := v.Validate(cred, 500*hour); !errors.Is(err, ErrExpired) {
		t.Errorf("at expiry: %v", err)
	}
	if _, err := v.Validate(cred, 499*hour); err != nil {
		t.Errorf("just before expiry: %v", err)
	}
}

func TestUntrustedCA(t *testing.T) {
	rng, _, _, cred, _ := setup(t)
	other := NewCA("Mallory CA", 1000*hour, rng)
	v := NewVerifier(other)
	if _, err := v.Validate(cred, 1*hour); !errors.Is(err, ErrUntrustedRoot) {
		t.Errorf("err = %v, want ErrUntrustedRoot", err)
	}
}

func TestProxyDelegationAndSubject(t *testing.T) {
	rng, _, _, cred, v := setup(t)
	proxy, err := cred.Delegate("alice/proxy", 1*hour, 12*hour, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	subj, err := v.Validate(proxy, 2*hour)
	if err != nil {
		t.Fatal(err)
	}
	// Authorization is keyed on the original user identity.
	if subj != "/O=Grid/CN=alice" {
		t.Errorf("proxy subject = %q, want original user", subj)
	}
}

func TestProxyExpiresIndependently(t *testing.T) {
	rng, _, _, cred, v := setup(t)
	proxy, _ := cred.Delegate("alice/proxy", 0, 12*hour, nil, rng)
	if _, err := v.Validate(proxy, 12*hour); !errors.Is(err, ErrExpired) {
		t.Errorf("expired proxy: %v", err)
	}
	// The user credential still works.
	if _, err := v.Validate(cred, 12*hour); err != nil {
		t.Errorf("user cred after proxy expiry: %v", err)
	}
}

func TestProxyChainDepth(t *testing.T) {
	rng, _, _, cred, v := setup(t)
	cur := cred
	var err error
	for i := 0; i < MaxProxyDepth-1; i++ {
		cur, err = cur.Delegate("p", 0, 400*hour, nil, rng)
		if err != nil {
			t.Fatalf("depth %d: %v", i, err)
		}
	}
	if _, err := v.Validate(cur, hour); err != nil {
		t.Fatalf("max-depth chain invalid: %v", err)
	}
	if _, err := cur.Delegate("p", 0, hour, nil, rng); !errors.Is(err, ErrProxyFromProxy) {
		t.Errorf("over-depth: %v", err)
	}
}

func TestRestrictedRights(t *testing.T) {
	rng, _, _, cred, _ := setup(t)
	p1, err := cred.Delegate("p1", 0, 10*hour, []string{"submit", "query"}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !p1.HasRight("submit") || p1.HasRight("transfer") {
		t.Errorf("rights = %v", p1.EffectiveRights())
	}
	// Narrowing is allowed.
	p2, err := p1.Delegate("p2", 0, 5*hour, []string{"query"}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p2.HasRight("submit") || !p2.HasRight("query") {
		t.Errorf("narrowed rights = %v", p2.EffectiveRights())
	}
	// Widening is rejected.
	if _, err := p1.Delegate("p3", 0, hour, []string{"transfer"}, rng); !errors.Is(err, ErrRightsEscalate) {
		t.Errorf("escalation: %v", err)
	}
}

func TestUnrestrictedProxyInheritsAll(t *testing.T) {
	rng, _, _, cred, _ := setup(t)
	p, _ := cred.Delegate("p", 0, hour, nil, rng)
	if p.EffectiveRights() != nil {
		t.Errorf("unrestricted proxy rights = %v, want nil", p.EffectiveRights())
	}
	if !p.HasRight("anything") {
		t.Error("unrestricted proxy denied a right")
	}
}

func TestEmptyRightsGrantNothing(t *testing.T) {
	rng, _, _, cred, _ := setup(t)
	p, _ := cred.Delegate("p", 0, hour, []string{}, rng)
	if p.HasRight("submit") {
		t.Error("empty rights set granted a right")
	}
}

func TestTamperedCertRejected(t *testing.T) {
	_, _, _, cred, v := setup(t)
	evil := *cred.Leaf()
	evil.Subject = "/O=Grid/CN=mallory"
	forged := &Credential{Holder: cred.Holder, Chain: []*Certificate{&evil}}
	if _, err := v.Validate(forged, hour); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered cert: %v", err)
	}
}

func TestStolenProxyWithoutKeyRejected(t *testing.T) {
	rng, _, _, cred, v := setup(t)
	proxy, _ := cred.Delegate("p", 0, 10*hour, nil, rng)
	// The thief has the chain but not the private key.
	thief := NewPrincipal("thief", rng)
	stolen := &Credential{Holder: thief, Chain: proxy.Chain}
	if _, err := v.Validate(stolen, hour); !errors.Is(err, ErrBadSignature) {
		t.Errorf("stolen chain without key: %v", err)
	}
}

func TestStolenProxyWithKeyWorksUntilExpiry(t *testing.T) {
	// "Proxy certificates ... stored with unencrypted private keys" — a
	// full compromise (chain + key) is usable exactly until NotAfter.
	rng, _, _, cred, v := setup(t)
	proxy, _ := cred.Delegate("p", 0, 10*hour, nil, rng)
	stolen := &Credential{Holder: proxy.Holder, Chain: proxy.Chain}
	if _, err := v.Validate(stolen, 9*hour); err != nil {
		t.Errorf("compromised proxy before expiry: %v", err)
	}
	if _, err := v.Validate(stolen, 10*hour); !errors.Is(err, ErrExpired) {
		t.Errorf("compromised proxy after expiry: %v", err)
	}
}

func TestRevocation(t *testing.T) {
	rng, _, _, cred, v := setup(t)
	proxy, _ := cred.Delegate("p", 0, 10*hour, nil, rng)
	v.Revoke(proxy.Leaf())
	if _, err := v.Validate(proxy, hour); !errors.Is(err, ErrRevoked) {
		t.Errorf("revoked proxy: %v", err)
	}
	if _, err := v.Validate(cred, hour); err != nil {
		t.Errorf("user cred after proxy revocation: %v", err)
	}
}

func TestChainContinuityEnforced(t *testing.T) {
	rng, ca, _, cred, v := setup(t)
	// Bob delegates a proxy; splice Bob's proxy onto Alice's user cert.
	bob := NewPrincipal("/O=Grid/CN=bob", rng)
	bobCred := UserCredential(bob, ca.IssueUser(bob, 0, 500*hour))
	bobProxy, _ := bobCred.Delegate("bob/proxy", 0, 10*hour, nil, rng)
	spliced := &Credential{
		Holder: bobProxy.Holder,
		Chain:  []*Certificate{bobProxy.Leaf(), cred.Leaf()},
	}
	if _, err := v.Validate(spliced, hour); !errors.Is(err, ErrBrokenChain) {
		t.Errorf("spliced chain: %v", err)
	}
}

func TestNonProxyIntermediateRejected(t *testing.T) {
	rng, ca, _, _, v := setup(t)
	// A user cert in an intermediate position must be rejected.
	u1 := NewPrincipal("u1", rng)
	c1 := ca.IssueUser(u1, 0, 500*hour)
	u2 := NewPrincipal("u2", rng)
	c2 := ca.IssueUser(u2, 0, 500*hour)
	// Forge: chain [c2, c1] with holder u2 — c2 is not a proxy.
	bad := &Credential{Holder: u2, Chain: []*Certificate{c2, c1}}
	if _, err := v.Validate(bad, hour); !errors.Is(err, ErrBrokenChain) {
		t.Errorf("non-proxy intermediate: %v", err)
	}
}

func TestProxyAsChainRootRejected(t *testing.T) {
	rng, _, _, cred, v := setup(t)
	proxy, _ := cred.Delegate("p", 0, 10*hour, nil, rng)
	// Drop the user cert: chain of just the proxy.
	naked := &Credential{Holder: proxy.Holder, Chain: proxy.Chain[:1]}
	if _, err := v.Validate(naked, hour); err == nil {
		t.Error("proxy-only chain accepted")
	}
}

func TestEmptyChain(t *testing.T) {
	_, _, _, _, v := setup(t)
	if _, err := v.Validate(&Credential{}, 0); !errors.Is(err, ErrEmptyChain) {
		t.Errorf("empty: %v", err)
	}
	if _, err := v.Validate(nil, 0); !errors.Is(err, ErrEmptyChain) {
		t.Errorf("nil: %v", err)
	}
}

func TestFingerprintStable(t *testing.T) {
	_, _, _, cred, _ := setup(t)
	if cred.Leaf().Fingerprint() != cred.Leaf().Fingerprint() {
		t.Error("fingerprint unstable")
	}
	other := *cred.Leaf()
	other.Serial++
	if other.Fingerprint() == cred.Leaf().Fingerprint() {
		t.Error("distinct certs share fingerprint")
	}
}

func TestDeterministicKeys(t *testing.T) {
	a := NewPrincipal("x", rand.New(rand.NewSource(7)))
	b := NewPrincipal("x", rand.New(rand.NewSource(7)))
	if !a.Public().Equal(b.Public()) {
		t.Error("same-seed principals differ")
	}
}

// Property: for any split of rights into granted/rest, a proxy restricted
// to granted has exactly those rights and can never regain a dropped one
// through further delegation.
func TestRightsMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ca := NewCA("ca", 1000*hour, rng)
	user := NewPrincipal("u", rng)
	cred := UserCredential(user, ca.IssueUser(user, 0, 999*hour))
	all := []string{"a", "b", "c", "d", "e"}
	f := func(mask uint8, mask2 uint8) bool {
		var granted []string
		for i, r := range all {
			if mask&(1<<i) != 0 {
				granted = append(granted, r)
			}
		}
		if granted == nil {
			granted = []string{}
		}
		p1, err := cred.Delegate("p1", 0, hour, granted, rng)
		if err != nil {
			return false
		}
		// p1 has exactly `granted`.
		for i, r := range all {
			want := mask&(1<<i) != 0
			if p1.HasRight(r) != want {
				return false
			}
		}
		// Any further delegation can only keep a subset.
		var sub []string
		for i, r := range all {
			if mask2&(1<<i) != 0 && mask&(1<<i) != 0 {
				sub = append(sub, r)
			}
		}
		if sub == nil {
			sub = []string{}
		}
		p2, err := p1.Delegate("p2", 0, hour, sub, rng)
		if err != nil {
			return false
		}
		for i, r := range all {
			if p2.HasRight(r) && (mask&(1<<i) == 0 || mask2&(1<<i) == 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestVerifySignatureDirect(t *testing.T) {
	_, _, _, cred, _ := setup(t)
	if !cred.Leaf().VerifySignature() {
		t.Error("fresh cert fails self verification")
	}
}

func TestValidAtBoundaries(t *testing.T) {
	c := &Certificate{NotBefore: 5 * hour, NotAfter: 10 * hour}
	cases := []struct {
		t    time.Duration
		want bool
	}{{4 * hour, false}, {5 * hour, true}, {9 * hour, true}, {10 * hour, false}}
	for _, tc := range cases {
		if got := c.ValidAt(tc.t); got != tc.want {
			t.Errorf("ValidAt(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}
