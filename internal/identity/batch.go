package identity

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
)

// Batched signature verification and a bounded verification memo.
//
// ed25519.Verify dominates every SHARP redeem at scale: a delegation
// chain of depth d costs d verifications, and a redeem batch of n
// tickets sold from one stocked ticket repeats the same d-1 prefix
// signatures n times. Both redundancies are pure: signature validity is
// a deterministic function of (public key, message, signature), so a
// triple verified once never needs verifying again. SigCache memoizes
// that function across calls; Batch additionally deduplicates within
// one collection pass, so a 64-ticket batch over depth-4 chains costs
// ~67 verifications instead of 256.
//
// Security argument (the PR 9 forgery kit stays defeated): only
// *successful* verifications enter the cache, keyed by a SHA-256 digest
// over the exact (key, message, signature) triple. A tampered claim
// changes the message, a swapped issuer changes the key, a re-signed
// claim changes the signature — each yields a fresh digest, misses the
// cache, and runs the real ed25519.Verify, which fails exactly as
// before. Caching can therefore never convert an invalid triple into a
// valid one; it only skips re-proving triples already proven.

// sigDigest keys the memo: a SHA-256 over the length-framed triple, so
// no concatenation ambiguity exists between key, message, and signature.
func sigDigest(pub ed25519.PublicKey, msg, sig []byte) [32]byte {
	h := sha256.New()
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(pub)))
	h.Write(n[:])
	h.Write(pub)
	binary.BigEndian.PutUint32(n[:], uint32(len(msg)))
	h.Write(n[:])
	h.Write(msg)
	binary.BigEndian.PutUint32(n[:], uint32(len(sig)))
	h.Write(n[:])
	h.Write(sig)
	var d [32]byte
	h.Sum(d[:0])
	return d
}

// SigCache is a bounded memo of signatures that have already verified.
// Eviction is deterministic: when the cache reaches capacity the whole
// generation is cleared, so cache *contents* never depend on map
// iteration order and same-seed runs stay byte-identical.
type SigCache struct {
	capN    int
	entries map[[32]byte]struct{}

	// Hits/Misses count lookups; Evictions counts whole-generation
	// clears. Plain ints so the snapshot walker rewinds them.
	Hits, Misses, Evictions int
}

// DefaultSigCacheCap bounds a cache built with NewSigCache(0). At 32
// bytes per digest this is ~2 MiB of memo for 64k distinct signatures.
const DefaultSigCacheCap = 1 << 16

// NewSigCache returns a memo bounded to capN verified triples
// (capN <= 0 selects DefaultSigCacheCap).
func NewSigCache(capN int) *SigCache {
	if capN <= 0 {
		capN = DefaultSigCacheCap
	}
	return &SigCache{capN: capN, entries: make(map[[32]byte]struct{})}
}

// Len reports how many verified triples are memoized.
func (c *SigCache) Len() int { return len(c.entries) }

// seen reports whether the digest is memoized as verified.
func (c *SigCache) seen(d [32]byte) bool {
	_, ok := c.entries[d]
	if ok {
		c.Hits++
	} else {
		c.Misses++
	}
	return ok
}

// addVerified memoizes a digest that just verified, clearing the
// generation first when at capacity.
func (c *SigCache) addVerified(d [32]byte) {
	if len(c.entries) >= c.capN {
		for k := range c.entries {
			delete(c.entries, k)
		}
		c.Evictions++
	}
	c.entries[d] = struct{}{}
}

// Verify is the memoized form of ed25519.Verify: a cache hit skips the
// scalar math, a miss runs it and memoizes success.
func (c *SigCache) Verify(pub ed25519.PublicKey, msg, sig []byte) bool {
	d := sigDigest(pub, msg, sig)
	if c.seen(d) {
		return true
	}
	if !ed25519.Verify(pub, msg, sig) {
		return false
	}
	c.addVerified(d)
	return true
}

// Batch collects signature checks and resolves them in one pass,
// verifying each *distinct* triple at most once and consulting (and
// feeding) an optional SigCache. Zero value is not usable; NewBatch.
type Batch struct {
	cache *SigCache

	// distinct triples, in first-seen order.
	keys [][]byte
	msgs [][]byte
	sigs [][]byte
	dig  [][32]byte
	// index maps digest -> position in the distinct slices.
	index map[[32]byte]int32
	// refs maps each Add'd item to its distinct position.
	refs []int32
	// ok holds per-distinct verdicts after Run.
	ok []bool

	// VerifiedN counts actual ed25519.Verify calls in the last Run —
	// the deterministic evidence the amortization gates assert on.
	VerifiedN int
}

// NewBatch returns an empty batch feeding (and fed by) cache, which may
// be nil for a standalone dedup-only batch.
func NewBatch(cache *SigCache) *Batch {
	return &Batch{cache: cache, index: make(map[[32]byte]int32)}
}

// Add enqueues one signature check and returns its item index for
// Results. Duplicate triples (same key, message, signature) collapse
// onto one verification.
func (b *Batch) Add(pub ed25519.PublicKey, msg, sig []byte) int {
	d := sigDigest(pub, msg, sig)
	pos, dup := b.index[d]
	if !dup {
		pos = int32(len(b.dig))
		b.index[d] = pos
		b.keys = append(b.keys, pub)
		b.msgs = append(b.msgs, msg)
		b.sigs = append(b.sigs, sig)
		b.dig = append(b.dig, d)
	}
	b.refs = append(b.refs, pos)
	return len(b.refs) - 1
}

// Len reports how many items were added; Distinct how many unique
// triples they collapsed to.
func (b *Batch) Len() int      { return len(b.refs) }
func (b *Batch) Distinct() int { return len(b.dig) }

// Run resolves the batch: every distinct triple is answered from the
// cache or by one ed25519.Verify (successes memoized). Returns the
// per-item verdicts, aligned with Add order.
func (b *Batch) Run() []bool {
	b.ok = make([]bool, len(b.dig))
	b.VerifiedN = 0
	for i := range b.dig {
		if b.cache != nil && b.cache.seen(b.dig[i]) {
			b.ok[i] = true
			continue
		}
		b.VerifiedN++
		if ed25519.Verify(ed25519.PublicKey(b.keys[i]), b.msgs[i], b.sigs[i]) {
			b.ok[i] = true
			if b.cache != nil {
				b.cache.addVerified(b.dig[i])
			}
		}
	}
	out := make([]bool, len(b.refs))
	for i, pos := range b.refs {
		out[i] = b.ok[pos]
	}
	return out
}

// Results re-reads the last Run's verdicts without re-resolving.
func (b *Batch) Results() []bool {
	out := make([]bool, len(b.refs))
	for i, pos := range b.refs {
		out[i] = b.ok[pos]
	}
	return out
}

// Reset clears the batch for reuse, keeping the cache attachment and
// the allocated capacity.
func (b *Batch) Reset() {
	b.keys = b.keys[:0]
	b.msgs = b.msgs[:0]
	b.sigs = b.sigs[:0]
	b.dig = b.dig[:0]
	b.refs = b.refs[:0]
	b.ok = nil
	for k := range b.index {
		delete(b.index, k)
	}
}
