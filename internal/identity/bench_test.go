package identity

import (
	"math/rand"
	"testing"
	"time"
)

func benchFixture(b *testing.B) (*rand.Rand, *Verifier, *Credential) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	ca := NewCA("ca", 1e6*time.Hour, rng)
	user := NewPrincipal("user", rng)
	cred := UserCredential(user, ca.IssueUser(user, 0, 1e5*time.Hour))
	return rng, NewVerifier(ca), cred
}

func BenchmarkDelegateProxy(b *testing.B) {
	rng, _, cred := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cred.Delegate("p", 0, time.Hour, nil, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValidateProxyChain(b *testing.B) {
	rng, v, cred := benchFixture(b)
	proxy, _ := cred.Delegate("p", 0, time.Hour, nil, rng)
	deep, _ := proxy.Delegate("p2", 0, time.Hour, nil, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Validate(deep, time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}
