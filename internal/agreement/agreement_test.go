package agreement

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/capability"
	"repro/internal/gram"
	"repro/internal/identity"
	"repro/internal/sharp"
	"repro/internal/sim"
	"repro/internal/simnet"
)

type fixture struct {
	eng *sim.Engine
	net *simnet.Network
	nm  *capability.NodeManager
	r   *Responder
}

func newCapFixture(t *testing.T) *fixture {
	t.Helper()
	eng := sim.NewEngine(1)
	net := simnet.New(eng)
	net.AddSite("A", 0, 0)
	net.AddSite("B", 20, 0)
	net.AddHost("consumer", "A", 1e6)
	net.AddHost("provider", "B", 1e6)
	nm := capability.NewNodeManager("provider", eng, rand.New(rand.NewSource(7)), map[capability.ResourceType]float64{
		capability.CPU: 4, capability.Network: 1000,
	})
	r := NewResponder(eng, net, "provider", &CapabilityEnforcement{Eng: eng, NM: nm})
	r.AddTemplate(Template{
		Name: "compute",
		Constraints: []TermConstraint{
			{Name: "cpu", Min: 0.1, Max: 4},
		},
	})
	return &fixture{eng: eng, net: net, nm: nm, r: r}
}

func TestTemplateFetch(t *testing.T) {
	f := newCapFixture(t)
	f.r.AddTemplate(Template{Name: "another"})
	var got []Template
	Templates(f.net, "consumer", "provider", time.Minute, func(ts []Template, err error) { got = ts })
	f.eng.Run()
	if len(got) != 2 || got[0].Name != "another" || got[1].Name != "compute" {
		t.Errorf("templates = %+v", got)
	}
}

func TestCreateObservedAndExpiry(t *testing.T) {
	f := newCapFixture(t)
	var ack Ack
	var err error
	Create(f.net, "consumer", "provider", Offer{
		Template: "compute",
		Terms:    map[string]float64{"cpu": 2},
		Lifetime: time.Hour,
	}, time.Minute, func(a Ack, e error) { ack, err = a, e })
	f.eng.RunUntil(time.Second)
	if err != nil || ack.State != Observed {
		t.Fatalf("create = (%+v, %v)", ack, err)
	}
	// Capacity committed while observed.
	if got := f.nm.Available(capability.CPU); got != 2 {
		t.Errorf("Available = %v during agreement", got)
	}
	// At expiry the agreement completes and resources return.
	f.eng.Run()
	if st := f.r.Agreement(ack.ID).State(); st != Complete {
		t.Errorf("state = %v, want complete", st)
	}
	if got := f.nm.Available(capability.CPU); got != 4 {
		t.Errorf("Available = %v after expiry", got)
	}
}

func TestCreateRejectedByConstraint(t *testing.T) {
	f := newCapFixture(t)
	var ack Ack
	var err error
	Create(f.net, "consumer", "provider", Offer{
		Template: "compute",
		Terms:    map[string]float64{"cpu": 8}, // beyond Max 4
	}, time.Minute, func(a Ack, e error) { ack, err = a, e })
	f.eng.Run()
	if !errors.Is(err, ErrConstraint) || ack.State != Rejected {
		t.Errorf("create = (%+v, %v)", ack, err)
	}
	if f.r.RejectedN != 1 {
		t.Errorf("RejectedN = %d", f.r.RejectedN)
	}
}

func TestCreateRejectedByEnforcement(t *testing.T) {
	f := newCapFixture(t)
	// Consume the node first.
	if _, err := f.nm.Mint(capability.MintRequest{Type: capability.CPU, Amount: 3.5, Dedicated: true, NotAfter: time.Hour}); err != nil {
		t.Fatal(err)
	}
	var ack Ack
	var err error
	Create(f.net, "consumer", "provider", Offer{
		Template: "compute",
		Terms:    map[string]float64{"cpu": 2}, // within template, beyond capacity
	}, time.Minute, func(a Ack, e error) { ack, err = a, e })
	f.eng.Run()
	if !errors.Is(err, ErrEnforcement) || ack.State != Rejected {
		t.Errorf("create = (%+v, %v)", ack, err)
	}
}

func TestUnknownTemplate(t *testing.T) {
	f := newCapFixture(t)
	var err error
	Create(f.net, "consumer", "provider", Offer{Template: "nosuch"}, time.Minute,
		func(_ Ack, e error) { err = e })
	f.eng.Run()
	if !errors.Is(err, ErrNoTemplate) {
		t.Errorf("err = %v", err)
	}
}

func TestTerminateReleases(t *testing.T) {
	f := newCapFixture(t)
	var id string
	Create(f.net, "consumer", "provider", Offer{
		Template: "compute", Terms: map[string]float64{"cpu": 2}, Lifetime: 100 * time.Hour,
	}, time.Minute, func(a Ack, e error) { id = a.ID })
	f.eng.RunUntil(time.Second)
	var ack Ack
	f.net.Call("consumer", "provider", SvcTerminate, id, time.Minute, func(r any, e error) {
		if e == nil {
			ack = r.(Ack)
		}
	})
	f.eng.RunUntil(2 * time.Second)
	if ack.State != Terminated {
		t.Fatalf("terminate ack = %+v", ack)
	}
	if got := f.nm.Available(capability.CPU); got != 4 {
		t.Errorf("Available = %v after terminate", got)
	}
	// Expiry event must not flip it to Complete later.
	f.eng.Run()
	if st := f.r.Agreement(id).State(); st != Terminated {
		t.Errorf("state flipped to %v", st)
	}
}

func TestStatusMonitoring(t *testing.T) {
	f := newCapFixture(t)
	var id string
	Create(f.net, "consumer", "provider", Offer{
		Template: "compute", Terms: map[string]float64{"cpu": 1}, Lifetime: time.Hour,
	}, time.Minute, func(a Ack, e error) { id = a.ID })
	f.eng.RunUntil(time.Second)
	var st Ack
	f.net.Call("consumer", "provider", SvcStatus, id, time.Minute, func(r any, e error) {
		if e == nil {
			st = r.(Ack)
		}
	})
	f.eng.RunUntil(2 * time.Second)
	if st.State != Observed {
		t.Errorf("status = %v", st.State)
	}
	var unkErr error
	f.net.Call("consumer", "provider", SvcStatus, "nosuch", time.Minute, func(_ any, e error) { unkErr = e })
	f.eng.Run()
	if !errors.Is(unkErr, ErrUnknownAgreement) {
		t.Errorf("unknown status: %v", unkErr)
	}
}

func TestRenegotiateGrow(t *testing.T) {
	f := newCapFixture(t)
	var id string
	Create(f.net, "consumer", "provider", Offer{
		Template: "compute", Terms: map[string]float64{"cpu": 1}, Lifetime: 100 * time.Hour,
	}, time.Minute, func(a Ack, e error) { id = a.ID })
	f.eng.RunUntil(time.Second)
	var ack Ack
	var err error
	f.net.Call("consumer", "provider", SvcRenegotiate, RenegotiateRequest{
		ID:    id,
		Offer: Offer{Template: "compute", Terms: map[string]float64{"cpu": 3}, Lifetime: 100 * time.Hour},
	}, time.Minute, func(r any, e error) {
		if a, ok := r.(Ack); ok {
			ack = a
		}
		err = e
	})
	f.eng.RunUntil(2 * time.Second)
	if err != nil || ack.State != Observed {
		t.Fatalf("renegotiate = (%+v, %v)", ack, err)
	}
	if got := f.nm.Available(capability.CPU); got != 1 {
		t.Errorf("Available = %v, want 1 (4-3)", got)
	}
}

func TestRenegotiateInfeasibleKeepsOriginal(t *testing.T) {
	f := newCapFixture(t)
	var id string
	Create(f.net, "consumer", "provider", Offer{
		Template: "compute", Terms: map[string]float64{"cpu": 3}, Lifetime: 100 * time.Hour,
	}, time.Minute, func(a Ack, e error) { id = a.ID })
	f.eng.RunUntil(time.Second)
	// Growing to 4 requires 4 free, but only 1 is free plus our own 3:
	// commit-before-release makes this fail, preserving the original.
	var err error
	f.net.Call("consumer", "provider", SvcRenegotiate, RenegotiateRequest{
		ID:    id,
		Offer: Offer{Template: "compute", Terms: map[string]float64{"cpu": 4}},
	}, time.Minute, func(_ any, e error) { err = e })
	f.eng.RunUntil(2 * time.Second)
	if !errors.Is(err, ErrEnforcement) {
		t.Fatalf("err = %v", err)
	}
	if st := f.r.Agreement(id).State(); st != Observed {
		t.Errorf("original lost: %v", st)
	}
	if got := f.nm.Available(capability.CPU); got != 1 {
		t.Errorf("Available = %v, want 1", got)
	}
}

func TestStringTermConstraint(t *testing.T) {
	f := newCapFixture(t)
	f.r.AddTemplate(Template{
		Name: "os-pinned",
		Constraints: []TermConstraint{
			{Name: "cpu", Min: 0.1, Max: 4},
			{Name: "os", Exact: "linux", IsString: true},
		},
	})
	var err error
	Create(f.net, "consumer", "provider", Offer{
		Template: "os-pinned",
		Terms:    map[string]float64{"cpu": 1},
		Strings:  map[string]string{"os": "solaris"},
	}, time.Minute, func(_ Ack, e error) { err = e })
	f.eng.RunUntil(time.Second)
	if !errors.Is(err, ErrConstraint) {
		t.Errorf("os mismatch: %v", err)
	}
}

func TestBatchEnforcementBackend(t *testing.T) {
	eng := sim.NewEngine(1)
	net := simnet.New(eng)
	net.AddSite("A", 0, 0)
	net.AddHost("consumer", "A", 1e6)
	net.AddHost("provider", "A", 1e6)
	bm := gram.NewBatchManager(eng, "batch", 8)
	r := NewResponder(eng, net, "provider", &BatchEnforcement{BM: bm})
	r.AddTemplate(Template{
		Name: "reserve",
		Constraints: []TermConstraint{
			{Name: "slots", Min: 1, Max: 8},
			{Name: "start", Min: 0, Max: 1e9},
			{Name: "duration", Min: 60, Max: 86400},
		},
	})
	var ack Ack
	var err error
	Create(net, "consumer", "provider", Offer{
		Template: "reserve",
		Terms:    map[string]float64{"slots": 8, "start": 3600, "duration": 3600},
	}, time.Minute, func(a Ack, e error) { ack, err = a, e })
	eng.RunUntil(time.Second)
	if err != nil || ack.State != Observed {
		t.Fatalf("create = (%+v, %v)", ack, err)
	}
	// The reservation is real: an identical second one must be refused.
	var err2 error
	Create(net, "consumer", "provider", Offer{
		Template: "reserve",
		Terms:    map[string]float64{"slots": 8, "start": 3600, "duration": 3600},
	}, time.Minute, func(a Ack, e error) { err2 = e })
	eng.RunUntil(2 * time.Second)
	if !errors.Is(err2, ErrEnforcement) {
		t.Errorf("double reservation: %v", err2)
	}
	// ReservationID round-trips through the handle accessor.
	if id := ReservationID(r.Agreement(ack.ID).handle); id == "" {
		t.Error("no reservation id in handle")
	}
}

func TestCapabilitiesAccessor(t *testing.T) {
	f := newCapFixture(t)
	var id string
	Create(f.net, "consumer", "provider", Offer{
		Template: "compute", Terms: map[string]float64{"cpu": 1}, Lifetime: time.Hour,
	}, time.Minute, func(a Ack, e error) { id = a.ID })
	f.eng.RunUntil(time.Second)
	ids := Capabilities(f.r.Agreement(id).handle)
	if len(ids) != 1 {
		t.Fatalf("capabilities = %v", ids)
	}
	// The minted capability is bindable at the node manager.
	if _, err := f.nm.Bind(ids[0]); err != nil {
		t.Errorf("bind minted capability: %v", err)
	}
	if Capabilities("wrong type") != nil {
		t.Error("accessor on wrong type")
	}
}

func TestSharpEnforcementBackend(t *testing.T) {
	// §6: WS-Agreement as the vehicle for usage-delegation agreements,
	// enforced by SHARP tickets+leases.
	eng := sim.NewEngine(1)
	net := simnet.New(eng)
	net.AddSite("A", 0, 0)
	net.AddHost("consumer", "A", 1e6)
	net.AddHost("provider", "A", 1e6)
	rng := rand.New(rand.NewSource(8))
	nm := capability.NewNodeManager("A", eng, rng, map[capability.ResourceType]float64{capability.CPU: 4})
	auth := sharp.NewAuthority(eng, "A", identity.NewPrincipal("auth@A", rng), nm,
		map[capability.ResourceType]float64{capability.CPU: 4})
	r := NewResponder(eng, net, "provider", &SharpEnforcement{
		Authority: auth,
		Holder:    identity.NewPrincipal("responder", rng),
		Clock:     eng,
	})
	r.AddTemplate(Template{Name: "cpu-lease", Constraints: []TermConstraint{{Name: "cpu", Min: 0.1, Max: 4}}})

	var ack Ack
	var err error
	Create(net, "consumer", "provider", Offer{
		Template: "cpu-lease", Terms: map[string]float64{"cpu": 3}, Lifetime: time.Hour,
	}, time.Minute, func(a Ack, e error) { ack, err = a, e })
	eng.RunUntil(time.Second)
	if err != nil || ack.State != Observed {
		t.Fatalf("create = (%+v, %v)", ack, err)
	}
	if lease := LeaseOf(r.Agreement(ack.ID).handle); lease == nil || lease.Amount != 3 {
		t.Fatalf("lease = %+v", LeaseOf(r.Agreement(ack.ID).handle))
	}
	// Capacity is held by the lease...
	if got := nm.Available(capability.CPU); got != 1 {
		t.Errorf("Available = %v during agreement", got)
	}
	// ...a second over-capacity agreement is rejected at the SHARP layer...
	var err2 error
	Create(net, "consumer", "provider", Offer{
		Template: "cpu-lease", Terms: map[string]float64{"cpu": 2}, Lifetime: time.Hour,
	}, time.Minute, func(_ Ack, e error) { err2 = e })
	eng.RunUntil(2 * time.Second)
	if !errors.Is(err2, ErrEnforcement) {
		t.Errorf("overcommit via sharp: %v", err2)
	}
	// ...and expiry releases it.
	eng.Run()
	if got := nm.Available(capability.CPU); got != 4 {
		t.Errorf("Available = %v after expiry", got)
	}
	if LeaseOf("bogus") != nil {
		t.Error("LeaseOf on wrong type")
	}
}
