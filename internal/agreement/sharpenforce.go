package agreement

import (
	"fmt"
	"time"

	"repro/internal/capability"
	"repro/internal/identity"
	"repro/internal/sharp"
)

// SharpEnforcement realizes the paper's §6 recommendation to Globus:
// "the WS-Agreement protocol can be used as vehicle to experiment with
// global schedulers based on delegating the right to consume resources,
// building on PlanetLab experience using SHARP." An agreement's terms
// are committed by issuing a SHARP ticket at the site authority and
// redeeming it immediately into a hard lease; the agreement's Observed
// period is exactly the lease's validity.
//
// Recognized numeric term: "cpu" (cores). The agreement Lifetime bounds
// the claim interval.
type SharpEnforcement struct {
	Authority *sharp.Authority
	// Holder is the principal the ticket is issued to (the agreement
	// responder acts as its own service manager).
	Holder *identity.Principal
	// Clock supplies virtual time.
	Clock interface{ Now() time.Duration }
}

// sharpHandle pairs the lease with its authority for release.
type sharpHandle struct {
	lease *sharp.Lease
}

// Commit issues and immediately redeems a ticket for the offer's cpu
// term. Oversubscription conflicts surface here as commit failures —
// i.e. as WS-Agreement rejections, which is precisely the layering the
// paper sketches.
func (e *SharpEnforcement) Commit(o Offer) (any, error) {
	cpuAmt, ok := o.Terms["cpu"]
	if !ok || cpuAmt <= 0 {
		return nil, fmt.Errorf("agreement: offer needs a positive cpu term")
	}
	life := o.Lifetime
	if life == 0 {
		life = 24 * time.Hour
	}
	now := e.Clock.Now()
	tk, err := e.Authority.IssueTicket(e.Holder.Name, e.Holder.Public(), capability.CPU, cpuAmt, now, now+life)
	if err != nil {
		return nil, err
	}
	lease, err := e.Authority.Redeem(tk)
	if err != nil {
		return nil, err
	}
	return sharpHandle{lease: lease}, nil
}

// Release returns the lease's resources to the site.
func (e *SharpEnforcement) Release(handle any) {
	h, ok := handle.(sharpHandle)
	if !ok {
		return
	}
	e.Authority.ReleaseLease(h.lease)
}

// LeaseOf extracts the SHARP lease from a commit handle (consumers bind
// its capability to a VM).
func LeaseOf(handle any) *sharp.Lease {
	h, ok := handle.(sharpHandle)
	if !ok {
		return nil
	}
	return h.lease
}
