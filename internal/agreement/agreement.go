// Package agreement implements the WS-Agreement protocol [Czajkowski et
// al., GGF 2003] as the paper frames it: "a uniform representation of
// agreements between resource/service providers and consumers", with "a
// (re)negotiation protocol, agreement states and their lifetimes, a
// standard way to describe agreement monitoring services", while "the
// enforcement mechanism on the provider side is not specified: it can be a
// PlanetLab capability, a queuing system supporting reservations on a
// cluster, or any ad-hoc solution."
//
// Accordingly, the provider side takes a pluggable Enforcement; package
// gridlab wires in both backends the paper names — capability minting
// (enforce.go: CapabilityEnforcement) and batch-queue reservations
// (BatchEnforcement) — demonstrating the complementarity claim: "a
// capability is in fact an implied agreement."
package agreement

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// Service names registered by a Responder.
const (
	SvcTemplates   = "agreement.templates"
	SvcCreate      = "agreement.create"
	SvcStatus      = "agreement.status"
	SvcTerminate   = "agreement.terminate"
	SvcRenegotiate = "agreement.renegotiate"
)

// Protocol errors.
var (
	ErrNoTemplate       = errors.New("agreement: no such template")
	ErrConstraint       = errors.New("agreement: offer violates template constraints")
	ErrUnknownAgreement = errors.New("agreement: unknown agreement")
	ErrNotObserved      = errors.New("agreement: agreement not in observed state")
	ErrEnforcement      = errors.New("agreement: provider cannot commit resources")
)

// State is the WS-Agreement lifecycle.
type State int

// Agreement states: an offer is Pending until the provider decides,
// Observed while in force, Rejected on refusal, Complete at natural
// expiry, Terminated on consumer abort.
const (
	Pending State = iota
	Observed
	Rejected
	Complete
	Terminated
)

var stateNames = [...]string{"pending", "observed", "rejected", "complete", "terminated"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// TermConstraint bounds one service term in a template. Numeric terms use
// [Min, Max]; string terms must equal Exact when Exact is non-empty.
type TermConstraint struct {
	Name     string
	Min, Max float64
	Exact    string
	IsString bool
}

// Template is a provider's advertised agreement shape (the creation
// constraints of WS-Agreement).
type Template struct {
	Name        string
	Constraints []TermConstraint
}

// Offer is a concrete proposal against a template.
type Offer struct {
	Template string
	Terms    map[string]float64
	Strings  map[string]string
	// Lifetime bounds the agreement; the provider completes it at expiry.
	Lifetime time.Duration
	// Initiator identifies the consumer (for monitoring).
	Initiator string
}

// validate checks an offer against template constraints. Every
// constrained term must be present and in range; unconstrained extra
// terms are allowed (WS-Agreement lets domain-specific terms ride along).
func (t Template) validate(o Offer) error {
	for _, c := range t.Constraints {
		if c.IsString {
			got, ok := o.Strings[c.Name]
			if !ok {
				return fmt.Errorf("%w: missing term %q", ErrConstraint, c.Name)
			}
			if c.Exact != "" && got != c.Exact {
				return fmt.Errorf("%w: %q=%q, want %q", ErrConstraint, c.Name, got, c.Exact)
			}
			continue
		}
		got, ok := o.Terms[c.Name]
		if !ok {
			return fmt.Errorf("%w: missing term %q", ErrConstraint, c.Name)
		}
		if got < c.Min || got > c.Max {
			return fmt.Errorf("%w: %q=%v outside [%v,%v]", ErrConstraint, c.Name, got, c.Min, c.Max)
		}
	}
	return nil
}

// Enforcement is the provider-side commitment backend.
type Enforcement interface {
	// Commit reserves resources for the offer, returning an opaque handle.
	Commit(o Offer) (handle any, err error)
	// Release frees a previously committed handle.
	Release(handle any)
}

// Agreement is the provider-side record of one agreement.
type Agreement struct {
	ID      string
	Offer   Offer
	Created time.Duration
	Expires time.Duration

	state  State
	handle any
	expiry sim.Event
}

// State returns the agreement state (monitoring interface).
func (a *Agreement) State() State { return a.state }

// Ack is the wire reply to create/renegotiate/status/terminate.
type Ack struct {
	ID    string
	State State
}

// RenegotiateRequest modifies the terms of an observed agreement.
type RenegotiateRequest struct {
	ID    string
	Offer Offer
}

// Responder is the provider-side agreement service.
type Responder struct {
	eng  *sim.Engine
	net  *simnet.Network
	host string

	templates  map[string]Template
	agreements map[string]*Agreement
	enforce    Enforcement
	seq        int

	// CreatedN / RejectedN count outcomes for experiments.
	CreatedN, RejectedN int
}

// NewResponder installs an agreement provider on host with the given
// enforcement backend.
func NewResponder(eng *sim.Engine, net *simnet.Network, host string, enforce Enforcement) *Responder {
	r := &Responder{
		eng:        eng,
		net:        net,
		host:       host,
		templates:  make(map[string]Template),
		agreements: make(map[string]*Agreement),
		enforce:    enforce,
	}
	h := net.Host(host)
	h.Handle(SvcTemplates, r.handleTemplates)
	h.Handle(SvcCreate, r.handleCreate)
	h.Handle(SvcStatus, r.handleStatus)
	h.Handle(SvcTerminate, r.handleTerminate)
	h.Handle(SvcRenegotiate, r.handleRenegotiate)
	// Expiry events mutate agreements and responder counters, so the
	// whole responder must be in the snapshot walker's reach for
	// Engine.Fork to rewind it (the responder is not hung off the
	// core.Build federation root — agreements run on bare engines too).
	eng.SnapRoot("agreement.responder/"+host, r)
	return r
}

// AddTemplate advertises a template.
func (r *Responder) AddTemplate(t Template) { r.templates[t.Name] = t }

// Agreement returns the provider-side record (monitoring/local use).
func (r *Responder) Agreement(id string) *Agreement { return r.agreements[id] }

func (r *Responder) handleTemplates(string, any) (any, error) {
	out := make([]Template, 0, len(r.templates))
	// Deterministic order by name.
	names := make([]string, 0, len(r.templates))
	for n := range r.templates {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		out = append(out, r.templates[n])
	}
	return out, nil
}

func (r *Responder) handleCreate(from string, raw any) (any, error) {
	o, ok := raw.(Offer)
	if !ok {
		return nil, fmt.Errorf("agreement: bad create payload %T", raw)
	}
	t, ok := r.templates[o.Template]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTemplate, o.Template)
	}
	r.seq++
	id := fmt.Sprintf("%s/ag%d", r.host, r.seq)
	a := &Agreement{ID: id, Offer: o, Created: r.eng.Now(), state: Pending}
	r.agreements[id] = a
	if err := t.validate(o); err != nil {
		a.state = Rejected
		r.RejectedN++
		return Ack{ID: id, State: Rejected}, err
	}
	handle, err := r.enforce.Commit(o)
	if err != nil {
		a.state = Rejected
		r.RejectedN++
		return Ack{ID: id, State: Rejected}, fmt.Errorf("%w: %v", ErrEnforcement, err)
	}
	a.handle = handle
	a.state = Observed
	r.CreatedN++
	if o.Lifetime > 0 {
		a.Expires = r.eng.Now() + o.Lifetime
		a.expiry = r.eng.Schedule(o.Lifetime, func() { r.complete(a) })
	}
	return Ack{ID: id, State: Observed}, nil
}

func (r *Responder) complete(a *Agreement) {
	if a.state != Observed {
		return
	}
	a.state = Complete
	r.enforce.Release(a.handle)
	a.handle = nil
}

func (r *Responder) handleStatus(from string, raw any) (any, error) {
	id, ok := raw.(string)
	if !ok {
		return nil, fmt.Errorf("agreement: bad status payload %T", raw)
	}
	a, ok := r.agreements[id]
	if !ok {
		return nil, ErrUnknownAgreement
	}
	return Ack{ID: id, State: a.state}, nil
}

func (r *Responder) handleTerminate(from string, raw any) (any, error) {
	id, ok := raw.(string)
	if !ok {
		return nil, fmt.Errorf("agreement: bad terminate payload %T", raw)
	}
	a, ok := r.agreements[id]
	if !ok {
		return nil, ErrUnknownAgreement
	}
	if a.state == Observed {
		a.state = Terminated
		r.enforce.Release(a.handle)
		a.handle = nil
		r.eng.Cancel(a.expiry)
	}
	return Ack{ID: id, State: a.state}, nil
}

// handleRenegotiate atomically replaces an observed agreement's terms:
// commit the new offer first, then release the old commitment; on
// failure the original agreement stays in force.
func (r *Responder) handleRenegotiate(from string, raw any) (any, error) {
	req, ok := raw.(RenegotiateRequest)
	if !ok {
		return nil, fmt.Errorf("agreement: bad renegotiate payload %T", raw)
	}
	a, ok := r.agreements[req.ID]
	if !ok {
		return nil, ErrUnknownAgreement
	}
	if a.state != Observed {
		return Ack{ID: a.ID, State: a.state}, ErrNotObserved
	}
	t, ok := r.templates[req.Offer.Template]
	if !ok {
		return Ack{ID: a.ID, State: a.state}, fmt.Errorf("%w: %q", ErrNoTemplate, req.Offer.Template)
	}
	if err := t.validate(req.Offer); err != nil {
		return Ack{ID: a.ID, State: a.state}, err
	}
	newHandle, err := r.enforce.Commit(req.Offer)
	if err != nil {
		return Ack{ID: a.ID, State: a.state}, fmt.Errorf("%w: %v", ErrEnforcement, err)
	}
	r.enforce.Release(a.handle)
	a.handle = newHandle
	a.Offer = req.Offer
	r.eng.Cancel(a.expiry)
	a.expiry = sim.Event{}
	if req.Offer.Lifetime > 0 {
		a.Expires = r.eng.Now() + req.Offer.Lifetime
		a.expiry = r.eng.Schedule(req.Offer.Lifetime, func() { r.complete(a) })
	}
	return Ack{ID: a.ID, State: Observed}, nil
}

// Create is the initiator-side helper: propose an offer to a provider.
func Create(net *simnet.Network, from, provider string, o Offer, timeout time.Duration, done func(Ack, error)) {
	net.Call(from, provider, SvcCreate, o, timeout, func(resp any, err error) {
		ack, _ := resp.(Ack)
		done(ack, err)
	})
}

// Templates fetches a provider's advertised templates.
func Templates(net *simnet.Network, from, provider string, timeout time.Duration, done func([]Template, error)) {
	net.Call(from, provider, SvcTemplates, nil, timeout, func(resp any, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		done(resp.([]Template), nil)
	})
}
