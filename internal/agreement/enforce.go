package agreement

import (
	"fmt"
	"time"

	"repro/internal/capability"
	"repro/internal/gram"
	"repro/internal/sim"
)

// CapabilityEnforcement backs agreements with PlanetLab-style capability
// minting — the concrete form of "a capability is in fact an implied
// agreement: the issuer of the capability agrees to provide some specified
// resources during a specified time interval to the capability holder."
//
// Recognized numeric terms: "cpu" (dedicated cores), "net" (dedicated
// bytes/s), "mem" (bytes), "disk" (bytes). The agreement Lifetime becomes
// the capabilities' validity interval.
type CapabilityEnforcement struct {
	Eng *sim.Engine
	NM  *capability.NodeManager
}

var termType = map[string]capability.ResourceType{
	"cpu":  capability.CPU,
	"net":  capability.Network,
	"mem":  capability.Memory,
	"disk": capability.Disk,
}

// Commit mints one dedicated capability per recognized term; on any
// failure it releases the partial set and reports the error.
func (e *CapabilityEnforcement) Commit(o Offer) (any, error) {
	life := o.Lifetime
	if life == 0 {
		life = 24 * time.Hour
	}
	now := e.Eng.Now()
	var minted []capability.ID
	rollback := func() {
		for _, id := range minted {
			e.NM.Release(id)
		}
	}
	// Deterministic term order.
	for _, name := range []string{"cpu", "net", "mem", "disk"} {
		amt, ok := o.Terms[name]
		if !ok || amt <= 0 {
			continue
		}
		c, err := e.NM.Mint(capability.MintRequest{
			Type:      termType[name],
			Amount:    amt,
			Dedicated: true,
			NotBefore: now,
			NotAfter:  now + life,
		})
		if err != nil {
			rollback()
			return nil, err
		}
		minted = append(minted, c.ID)
	}
	if len(minted) == 0 {
		return nil, fmt.Errorf("agreement: offer names no enforceable terms")
	}
	return minted, nil
}

// Release returns the minted capabilities to the node pool.
func (e *CapabilityEnforcement) Release(handle any) {
	ids, ok := handle.([]capability.ID)
	if !ok {
		return
	}
	for _, id := range ids {
		e.NM.Release(id)
	}
}

// Capabilities extracts the minted capability IDs from a commit handle
// (consumers bind these to VMs).
func Capabilities(handle any) []capability.ID {
	ids, _ := handle.([]capability.ID)
	return ids
}

// BatchEnforcement backs agreements with advance reservations on a batch
// queue — the other enforcement backend the paper names. Recognized
// terms: "slots" (count), "start" (seconds of virtual time), "duration"
// (seconds).
type BatchEnforcement struct {
	BM *gram.BatchManager
}

// Commit admits a reservation for the offer's window.
func (e *BatchEnforcement) Commit(o Offer) (any, error) {
	slots := int(o.Terms["slots"])
	if slots <= 0 {
		return nil, fmt.Errorf("agreement: offer needs a positive slots term")
	}
	start := time.Duration(o.Terms["start"] * float64(time.Second))
	dur := time.Duration(o.Terms["duration"] * float64(time.Second))
	if dur <= 0 {
		return nil, fmt.Errorf("agreement: offer needs a positive duration term")
	}
	id, err := e.BM.Reserve(start, dur, slots)
	if err != nil {
		return nil, err
	}
	return id, nil
}

// Release cancels the underlying reservation (claimed reservations are
// owned by their job and stay).
func (e *BatchEnforcement) Release(handle any) {
	id, ok := handle.(string)
	if !ok {
		return
	}
	// CancelReservation fails for claimed reservations; that is correct —
	// the claiming job now owns the slots.
	_ = e.BM.CancelReservation(id)
}

// ReservationID extracts the reservation handle for job submission.
func ReservationID(handle any) string {
	id, _ := handle.(string)
	return id
}
