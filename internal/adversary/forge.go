package adversary

import (
	"bytes"
	"encoding/binary"
	"time"

	"repro/internal/capability"
	"repro/internal/identity"
	"repro/internal/sharp"
)

// claimTBS re-implements sharp's to-be-signed claim encoding from the
// claim's exported fields — what a real attacker would do from the wire
// format. The adversary tests pin it against the original: if sharp's
// encoding drifted, WidenDelegation's validly-signed forgery would be
// rejected as ErrBadSignature instead of ErrAmountWidened and the
// typed-error assertions would fail.
func claimTBS(c *sharp.Claim) []byte {
	var buf bytes.Buffer
	w := func(s string) {
		var n [4]byte
		binary.BigEndian.PutUint32(n[:], uint32(len(s)))
		buf.Write(n[:])
		buf.WriteString(s)
	}
	w(c.Site)
	var t [8]byte
	binary.BigEndian.PutUint64(t[:], uint64(c.Type))
	buf.Write(t[:])
	binary.BigEndian.PutUint64(t[:], uint64(int64(c.Amount*1e6)))
	buf.Write(t[:])
	binary.BigEndian.PutUint64(t[:], uint64(c.NotBefore))
	buf.Write(t[:])
	binary.BigEndian.PutUint64(t[:], uint64(c.NotAfter))
	buf.Write(t[:])
	w(c.Issuer)
	buf.Write(c.IssuerKey)
	w(c.Holder)
	buf.Write(c.HolderKey)
	binary.BigEndian.PutUint64(t[:], c.Serial)
	buf.Write(t[:])
	buf.Write(c.ParentHash[:])
	return buf.Bytes()
}

// TamperAmount returns a copy of the ticket with its leaf amount scaled
// but the original signature kept. Verify must reject it as
// ErrBadSignature: the signed bytes no longer match the claim.
func TamperAmount(t *sharp.Ticket, factor float64) *sharp.Ticket {
	chain := append([]sharp.Claim(nil), t.Chain...)
	chain[len(chain)-1].Amount *= factor
	return &sharp.Ticket{Chain: chain}
}

// SelfIssuedRoot forges a root claim "issued" by the attacker's own
// key. Redeem must reject it as ErrBadChain: the root is not signed by
// the pinned authority key, however internally consistent the claim is.
func SelfIssuedRoot(attacker *identity.Principal, site string, typ capability.ResourceType, amount float64, notBefore, notAfter time.Duration, serial uint64) *sharp.Ticket {
	c := sharp.Claim{
		Site:      site,
		Type:      typ,
		Amount:    amount,
		NotBefore: notBefore,
		NotAfter:  notAfter,
		Issuer:    attacker.Name,
		IssuerKey: attacker.Public(),
		Holder:    attacker.Name,
		HolderKey: attacker.Public(),
		Serial:    serial,
	}
	c.Sig = attacker.Sign(claimTBS(&c))
	return &sharp.Ticket{Chain: []sharp.Claim{c}}
}

// SpliceChains grafts the donor ticket's leaf onto the base ticket's
// chain — the delegation-splicing attack. Verify must reject it as
// ErrBadChain: either the leaf's issuer is not the base leaf's holder,
// or the parent hash does not match.
func SpliceChains(base, donor *sharp.Ticket) *sharp.Ticket {
	chain := append([]sharp.Claim(nil), base.Chain...)
	chain = append(chain, *donor.Leaf())
	return &sharp.Ticket{Chain: chain}
}

// WidenDelegation appends a validly signed child claim whose amount
// exceeds its parent's — the attacker owns the leaf, so the signature
// checks out and only the amount-narrowing rule can reject it. Verify
// must fail with ErrAmountWidened. The holder principal must match the
// ticket's leaf holder.
func WidenDelegation(t *sharp.Ticket, holder *identity.Principal, factor float64, serial uint64) *sharp.Ticket {
	leaf := t.Leaf()
	c := sharp.Claim{
		Site:       leaf.Site,
		Type:       leaf.Type,
		Amount:     leaf.Amount * factor,
		NotBefore:  leaf.NotBefore,
		NotAfter:   leaf.NotAfter,
		Issuer:     leaf.Holder,
		IssuerKey:  holder.Public(),
		Holder:     holder.Name,
		HolderKey:  holder.Public(),
		Serial:     serial,
		ParentHash: leaf.Hash(),
	}
	c.Sig = holder.Sign(claimTBS(&c))
	chain := append(append([]sharp.Claim(nil), t.Chain...), c)
	return &sharp.Ticket{Chain: chain}
}
