// Package adversary implements pluggable byzantine behaviours wrapped
// around the honest SHARP components, for the robustness experiments:
//
//   - OversellBroker: a broker.Seller that announces inflated
//     inventory, delegates over-generous validity windows, and
//     periodically re-sells a previously sold ticket verbatim — the
//     "same inventory to multiple service managers" attack. Its
//     tickets are cryptographically valid (it really holds the stock
//     roots it delegates from), so the fraud is only detectable at
//     redeem time, where the authority's replay cache rejects the
//     double-spend deterministically.
//
//   - RenegeAuthority / ShrinkAuthority: broker.SiteAuthority
//     implementations wrapping a real *sharp.Authority. One reneges on
//     otherwise-valid redeems (claiming a capacity conflict while
//     quietly keeping the resources); the other grants leases and then
//     silently releases them early. Both are behaviourally — never
//     structurally — distinguishable from an honest site, which is why
//     the service manager's availability accounting and renew errors
//     are the detection surface.
//
//   - Forgery constructors (forge.go): client attacks on the ticket
//     chain itself — tampered amounts, self-issued roots, spliced
//     chains, widened delegations. Each must fail Ticket.Verify /
//     Authority.Redeem with its typed error; the chaos attack ticker
//     asserts exactly that, every period, in every seed.
//
// Nothing in this package weakens the honest components: every attack
// goes through the same public surfaces a correct participant uses.
package adversary

import (
	"crypto/ed25519"
	"fmt"
	"time"

	"repro/internal/capability"
	"repro/internal/identity"
	"repro/internal/sharp"
)

// oversellEntry is one stocked root ticket with how much has been sold
// against it (honest brokers decrement a remainder; this one only
// counts upward, toward Factor times the real amount).
type oversellEntry struct {
	ticket     *sharp.Ticket
	leafAmount float64
	sold       float64
}

// OversellBroker is the byzantine broker.Seller. It lies on every
// surface a seller controls: Inventory reports Factor× its real stock,
// Sell delegates the full stock window rather than the requested one
// (an offer too good to be true — and the wide window is what makes a
// cached ticket cover later requests), and every ReplayEvery-th sale
// for a site returns the previously sold ticket verbatim instead of a
// fresh delegation.
type OversellBroker struct {
	// Factor inflates announced inventory and bounds cumulative sales
	// per stocked root (>= 1).
	Factor float64
	// ReplayEvery re-sells the cached previous delegation every k-th
	// sale per site (1 = every sale after the first; 0 disables the
	// double-sell, leaving only overselling).
	ReplayEvery int

	// SoldN counts sales; ReplaySoldN counts sales that re-used a
	// previously sold ticket.
	SoldN, ReplaySoldN int

	name     string
	signer   *identity.Principal
	serial   uint64
	stock    []*oversellEntry
	saleN    map[string]int           // per-site sale counter
	lastSold map[string]*sharp.Ticket // per-site cached previous sale
}

// NewOversellBroker creates the byzantine seller around its own signing
// principal.
func NewOversellBroker(signer *identity.Principal, factor float64, replayEvery int) *OversellBroker {
	if factor < 1 {
		factor = 1
	}
	return &OversellBroker{
		Factor:      factor,
		ReplayEvery: replayEvery,
		name:        signer.Name,
		signer:      signer,
		saleN:       make(map[string]int),
		lastSold:    make(map[string]*sharp.Ticket),
	}
}

// SellerName identifies the broker on an exchange.
func (b *OversellBroker) SellerName() string { return b.name }

// Key returns the broker's public key (authorities issue stock to it).
func (b *OversellBroker) Key() ed25519.PublicKey { return b.signer.Public() }

// Acquire stores a root ticket issued to this broker — its real stock,
// which it will sell many times over.
func (b *OversellBroker) Acquire(t *sharp.Ticket) error {
	leaf := t.Leaf()
	if leaf == nil || !leaf.HolderKey.Equal(b.signer.Public()) {
		return sharp.ErrNotHolder
	}
	b.stock = append(b.stock, &oversellEntry{ticket: t, leafAmount: leaf.Amount})
	return nil
}

// Inventory announces Factor times the real unsold stock — the
// oversubscription lie. A buyer that believes this number will route
// purchases here long after the honest remainder is gone.
func (b *OversellBroker) Inventory(site string, typ capability.ResourceType) float64 {
	total := 0.0
	for _, e := range b.stock {
		leaf := e.ticket.Leaf()
		if leaf.Site == site && leaf.Type == typ {
			if room := e.leafAmount*b.Factor - e.sold; room > 0 {
				total += room
			}
		}
	}
	return total
}

// Sell implements broker.Seller byzantinely: every ReplayEvery-th sale
// per site returns the cached previous delegation verbatim (if it
// covers the request — the wide windows below make sure it usually
// does); otherwise it mints a fresh, individually valid delegation for
// the full stock window, counting cumulative sales against
// Factor×stock instead of decrementing a remainder.
func (b *OversellBroker) Sell(buyerName string, buyerKey ed25519.PublicKey, site string, typ capability.ResourceType, amount float64, notBefore, notAfter time.Duration) ([]*sharp.Ticket, error) {
	key := fmt.Sprintf("%s/%d", site, typ)
	b.saleN[key]++
	if b.ReplayEvery > 0 && b.saleN[key] > 1 && (b.saleN[key]-1)%b.ReplayEvery == 0 {
		if prev := b.lastSold[key]; prev != nil {
			leaf := prev.Leaf()
			if leaf.Amount >= amount && leaf.NotBefore <= notBefore && leaf.NotAfter >= notAfter {
				b.SoldN++
				b.ReplaySoldN++
				return []*sharp.Ticket{prev}, nil
			}
		}
	}
	for _, e := range b.stock {
		leaf := e.ticket.Leaf()
		if leaf.Site != site || leaf.Type != typ {
			continue
		}
		if e.sold+amount > e.leafAmount*b.Factor || amount > e.leafAmount {
			continue
		}
		b.serial++
		// Delegate the whole stock window, not the requested one: the
		// over-generous ticket covers any later request, so the cached
		// copy stays replayable.
		sub, err := e.ticket.Delegate(b.signer, buyerName, buyerKey, amount, leaf.NotBefore, leaf.NotAfter, b.serial)
		if err != nil {
			return nil, err
		}
		e.sold += amount
		b.SoldN++
		b.lastSold[key] = sub
		return []*sharp.Ticket{sub}, nil
	}
	return nil, fmt.Errorf("%w: oversell budget exhausted for %s", sharp.ErrInventory, site)
}
