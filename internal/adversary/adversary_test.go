package adversary

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/capability"
	"repro/internal/identity"
	"repro/internal/sharp"
	"repro/internal/sim"
)

const hour = time.Hour

type fixture struct {
	eng      *sim.Engine
	auth     *sharp.Authority
	nm       *capability.NodeManager
	rng      *rand.Rand
	attacker *identity.Principal
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	eng := sim.NewEngine(1)
	rng := rand.New(rand.NewSource(7))
	signer := identity.NewPrincipal("authority@A", rng)
	nm := capability.NewNodeManager("A", eng, rng, map[capability.ResourceType]float64{
		capability.CPU: 10,
	})
	auth := sharp.NewAuthority(eng, "A", signer, nm, map[capability.ResourceType]float64{
		capability.CPU: 10,
	})
	auth.SetOversellFactor(100)
	return &fixture{eng: eng, auth: auth, nm: nm, rng: rng,
		attacker: identity.NewPrincipal("mallory", rng)}
}

// buyDirect issues a ticket straight to the attacker (standing in for a
// ticket legitimately bought from a broker).
func (f *fixture) buyDirect(t *testing.T, amount float64, nb, na time.Duration) *sharp.Ticket {
	t.Helper()
	tk, err := f.auth.IssueTicket(f.attacker.Name, f.attacker.Public(), capability.CPU, amount, nb, na)
	if err != nil {
		t.Fatal(err)
	}
	return tk
}

func TestOversellBrokerDoubleSellRejectedAtRedeem(t *testing.T) {
	f := newFixture(t)
	byz := NewOversellBroker(identity.NewPrincipal("byz-broker", f.rng), 10, 1)
	root, err := f.auth.IssueTicket(byz.SellerName(), byz.Key(), capability.CPU, 2, 0, 4*hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := byz.Acquire(root); err != nil {
		t.Fatal(err)
	}
	// Announced inventory is the oversubscription lie: Factor× stock.
	if got := byz.Inventory("A", capability.CPU); got != 20 {
		t.Fatalf("inventory = %v; want 20 (10× the real 2)", got)
	}
	buyer1 := identity.NewPrincipal("sm-1", f.rng)
	buyer2 := identity.NewPrincipal("sm-2", f.rng)
	sold1, err := byz.Sell(buyer1.Name, buyer1.Public(), "A", capability.CPU, 0.5, 0, hour)
	if err != nil {
		t.Fatal(err)
	}
	// Second sale re-uses the first delegation verbatim — the same
	// inventory sold to a different service manager.
	sold2, err := byz.Sell(buyer2.Name, buyer2.Public(), "A", capability.CPU, 0.5, 0, hour)
	if err != nil {
		t.Fatal(err)
	}
	if byz.ReplaySoldN != 1 {
		t.Fatalf("ReplaySoldN = %d; want 1", byz.ReplaySoldN)
	}
	if sold1[0].Leaf().Hash() != sold2[0].Leaf().Hash() {
		t.Fatal("double-sell did not re-use the same ticket")
	}
	// Both tickets verify — the fraud is invisible cryptographically.
	if err := sold2[0].Verify(f.auth.Key(), time.Minute); err != nil {
		t.Fatalf("double-sold ticket fails verify: %v", err)
	}
	// First redeem wins; the second is caught by the replay cache.
	if _, err := f.auth.Redeem(sold1[0]); err != nil {
		t.Fatalf("first redeem: %v", err)
	}
	_, err = f.auth.Redeem(sold2[0])
	if !errors.Is(err, sharp.ErrReplayed) || !errors.Is(err, sharp.ErrDoubleSpend) {
		t.Fatalf("second redeem = %v; want ErrReplayed (and ErrDoubleSpend)", err)
	}
}

func TestOversellBrokerBudgetExhausts(t *testing.T) {
	f := newFixture(t)
	byz := NewOversellBroker(identity.NewPrincipal("byz-broker", f.rng), 2, 0)
	root, _ := f.auth.IssueTicket(byz.SellerName(), byz.Key(), capability.CPU, 1, 0, 4*hour)
	if err := byz.Acquire(root); err != nil {
		t.Fatal(err)
	}
	buyer := identity.NewPrincipal("sm-1", f.rng)
	// Factor 2 over a 1-CPU root: two full-amount sales clear, the third
	// fails even for a liar.
	for i := 0; i < 2; i++ {
		if _, err := byz.Sell(buyer.Name, buyer.Public(), "A", capability.CPU, 1, 0, hour); err != nil {
			t.Fatalf("sale %d: %v", i, err)
		}
	}
	if _, err := byz.Sell(buyer.Name, buyer.Public(), "A", capability.CPU, 1, 0, hour); !errors.Is(err, sharp.ErrInventory) {
		t.Fatalf("over-budget sale = %v; want ErrInventory", err)
	}
}

func TestForgeriesRejectedTyped(t *testing.T) {
	f := newFixture(t)
	legit := f.buyDirect(t, 1, 0, hour)
	now := time.Minute

	if err := TamperAmount(legit, 3).Verify(f.auth.Key(), now); !errors.Is(err, sharp.ErrBadSignature) {
		t.Fatalf("tampered amount = %v; want ErrBadSignature", err)
	}
	forged := SelfIssuedRoot(f.attacker, "A", capability.CPU, 5, 0, hour, 99)
	if err := forged.Verify(f.auth.Key(), now); !errors.Is(err, sharp.ErrBadChain) {
		t.Fatalf("self-issued root = %v; want ErrBadChain", err)
	}
	donor := f.buyDirect(t, 1, 0, hour)
	if err := SpliceChains(legit, donor).Verify(f.auth.Key(), now); !errors.Is(err, sharp.ErrBadChain) {
		t.Fatalf("spliced chain = %v; want ErrBadChain", err)
	}
	// The widened delegation is validly signed by the rightful leaf
	// holder — only the narrowing rule can reject it. This also pins
	// claimTBS against sharp's encoding: drift would surface here as
	// ErrBadSignature.
	if err := WidenDelegation(legit, f.attacker, 4, 100).Verify(f.auth.Key(), now); !errors.Is(err, sharp.ErrAmountWidened) {
		t.Fatalf("widened delegation = %v; want ErrAmountWidened", err)
	}
	// Redeem applies the same verification.
	if _, err := f.auth.Redeem(forged); !errors.Is(err, sharp.ErrBadChain) {
		t.Fatalf("redeem self-issued = %v; want ErrBadChain", err)
	}
}

func TestRenegeAuthority(t *testing.T) {
	f := newFixture(t)
	ren := NewRenegeAuthority(f.auth, 2)
	t1 := f.buyDirect(t, 1, 0, hour)
	t2 := f.buyDirect(t, 1, 0, hour)
	if _, err := ren.Redeem(t1); err != nil {
		t.Fatalf("first redeem: %v", err)
	}
	// Every 2nd valid redeem is reneged with a fake conflict...
	_, err := ren.Redeem(t2)
	if !errors.Is(err, sharp.ErrConflict) {
		t.Fatalf("reneged redeem = %v; want ErrConflict", err)
	}
	if ren.RenegedN != 1 {
		t.Fatalf("RenegedN = %d; want 1", ren.RenegedN)
	}
	// ...and the ticket is burned: retrying it now replays.
	if _, err := ren.Redeem(t2); !errors.Is(err, sharp.ErrReplayed) {
		t.Fatalf("retry after renege = %v; want ErrReplayed", err)
	}
}

func TestShrinkAuthority(t *testing.T) {
	f := newFixture(t)
	shr := NewShrinkAuthority(f.eng, f.auth, 0.5)
	tk := f.buyDirect(t, 1, 0, 2*hour)
	lease, err := shr.Redeem(tk)
	if err != nil {
		t.Fatal(err)
	}
	// Before the shrink point the lease is honored.
	f.eng.RunUntil(30 * time.Minute)
	if _, err := f.nm.Bind(lease.CapID); err != nil {
		t.Fatalf("capability gone before shrink point: %v", err)
	}
	// After Frac of the term the site has silently reclaimed it.
	f.eng.RunUntil(90 * time.Minute)
	if shr.ShrunkN != 1 {
		t.Fatalf("ShrunkN = %d; want 1", shr.ShrunkN)
	}
	if _, err := f.nm.Bind(lease.CapID); err == nil {
		t.Fatal("capability still bindable after silent shrink")
	}
	// The holder discovers the theft only when renewing.
	renew := f.buyDirect(t, 1, 0, 4*hour)
	if _, err := shr.Renew(lease.ID, renew); !errors.Is(err, sharp.ErrUnknownLease) {
		t.Fatalf("renew shrunk lease = %v; want ErrUnknownLease", err)
	}
}
