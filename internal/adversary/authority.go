package adversary

import (
	"fmt"
	"time"

	"repro/internal/sharp"
	"repro/internal/sim"
)

// RenegeAuthority wraps a real site authority and reneges on every
// Every-th otherwise-valid redeem: the ticket is verified, marked
// spent, the capacity is quietly kept, and the buyer is told there was
// a conflict. Structurally indistinguishable from an honestly
// oversubscribed site — which is the attack's cover, and why redeem
// failures must feed availability accounting and breaker state rather
// than being trusted as honest signals.
type RenegeAuthority struct {
	*sharp.Authority
	// Every is the renege period (0 behaves honestly).
	Every int
	// RenegedN counts redeems the site reneged on.
	RenegedN int

	n int
}

// NewRenegeAuthority wraps an authority.
func NewRenegeAuthority(a *sharp.Authority, every int) *RenegeAuthority {
	return &RenegeAuthority{Authority: a, Every: every}
}

// Redeem lets the real authority do the work, then reneges
// periodically: the granted lease is silently released (the site keeps
// its resources free for "better" customers) and a fake conflict goes
// back. The ticket stays burned in the replay cache — the buyer cannot
// even retry it, which is what makes reneging strictly worse than an
// honest conflict.
func (a *RenegeAuthority) Redeem(t *sharp.Ticket) (*sharp.Lease, error) {
	lease, err := a.Authority.Redeem(t)
	if err != nil {
		return nil, err
	}
	a.n++
	if a.Every > 0 && a.n%a.Every == 0 {
		a.Authority.ReleaseLease(lease)
		a.RenegedN++
		return nil, fmt.Errorf("%w: site reneged on redeem", sharp.ErrConflict)
	}
	return lease, nil
}

// ShrinkAuthority wraps a real site authority and silently shrinks
// every lease it grants: after Frac of the lease term, the backing
// capability is released without telling the holder. The service's VM
// keeps "running" on resources the site has re-taken; the holder finds
// out when its renewal fails with ErrUnknownLease (or an audit catches
// the released record).
type ShrinkAuthority struct {
	*sharp.Authority
	// Frac in (0, 1] is the fraction of the lease term the site honors
	// before quietly reclaiming it (0 behaves honestly).
	Frac float64
	// ShrunkN counts leases reclaimed early.
	ShrunkN int

	eng *sim.Engine
}

// NewShrinkAuthority wraps an authority on the given engine.
func NewShrinkAuthority(eng *sim.Engine, a *sharp.Authority, frac float64) *ShrinkAuthority {
	return &ShrinkAuthority{Authority: a, Frac: frac, eng: eng}
}

// Redeem grants the lease honestly, then schedules its silent early
// reclaim.
func (a *ShrinkAuthority) Redeem(t *sharp.Ticket) (*sharp.Lease, error) {
	lease, err := a.Authority.Redeem(t)
	if err != nil || a.Frac <= 0 {
		return lease, err
	}
	term := lease.NotAfter - a.eng.Now()
	delay := time.Duration(float64(term) * a.Frac)
	if delay < 0 {
		delay = 0
	}
	a.eng.Schedule(delay, func() { a.shrink(lease) })
	return lease, nil
}

// shrink reclaims a lease early unless the holder already released it.
func (a *ShrinkAuthority) shrink(l *sharp.Lease) {
	for _, rec := range a.LeaseRecords() {
		if rec.Lease.ID == l.ID && !rec.Released {
			a.Authority.ReleaseLease(l)
			a.ShrunkN++
			return
		}
	}
}
