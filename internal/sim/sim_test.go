package sim

import (
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(3*time.Second, func() { got = append(got, 3) })
	e.Schedule(1*time.Second, func() { got = append(got, 1) })
	e.Schedule(2*time.Second, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3*time.Second {
		t.Errorf("Now = %v, want 3s", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(time.Second, func() { fired = true })
	e.Cancel(ev)
	if !ev.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
	// Double cancel and the zero handle are no-ops.
	e.Cancel(ev)
	e.Cancel(Event{})
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
}

// A handle kept across its event's firing (or cancellation sweep) goes
// stale: cancelling it must not touch whatever event has since been
// scheduled onto the recycled node.
func TestStaleHandleCancelIsNoOp(t *testing.T) {
	e := NewEngine(1)
	stale := e.Schedule(time.Second, func() {})
	e.Run() // fires; node released to the free list
	fired := false
	fresh := e.Schedule(time.Second, func() { fired = true })
	e.Cancel(stale) // stale generation: must not cancel fresh
	e.Run()
	if !fired {
		t.Fatal("stale Cancel killed a recycled event")
	}
	if fresh.Cancelled() {
		t.Error("fresh handle reports cancelled")
	}
}

// Pending must match a brute-force count of live queued events under
// randomized schedule/cancel/run churn (the counter is maintained
// incrementally; this pins it to ground truth).
func TestPendingMatchesBruteForce(t *testing.T) {
	e := NewEngine(1)
	rng := e.ForkRand()
	brute := func() int {
		n := 0
		for _, s := range e.q {
			if !e.nodes[s.idx].dead {
				n++
			}
		}
		return n
	}
	var held []Event
	for i := 0; i < 5000; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // schedule
			held = append(held, e.Schedule(time.Duration(rng.Intn(1000))*time.Millisecond, func() {}))
		case 5, 6, 7: // cancel something (possibly stale, possibly twice)
			if len(held) > 0 {
				e.Cancel(held[rng.Intn(len(held))])
			}
		case 8: // run a little
			e.RunUntil(e.Now() + time.Duration(rng.Intn(50))*time.Millisecond)
		case 9: // step
			e.Step()
		}
		if got, want := e.Pending(), brute(); got != want {
			t.Fatalf("iteration %d: Pending() = %d, brute force = %d", i, got, want)
		}
	}
	e.Run()
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", got)
	}
}

// Mass cancellation must trigger tombstone compaction without perturbing
// the firing order of the survivors.
func TestCompactionPreservesOrder(t *testing.T) {
	e := NewEngine(1)
	var evs []Event
	for i := 0; i < 4096; i++ {
		evs = append(evs, e.Schedule(time.Duration(i)*time.Millisecond, func() {}))
	}
	var want []time.Duration
	for i, ev := range evs {
		if i%4 != 0 {
			e.Cancel(ev)
		} else {
			want = append(want, ev.Time())
		}
	}
	if len(e.q) >= len(evs) {
		t.Fatalf("compaction never ran: queue holds %d nodes for %d live events", len(e.q), e.Pending())
	}
	var got []time.Duration
	for e.Step() {
		got = append(got, e.Now())
	}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("fire %d at %v, want %v", i, got[i], want[i])
		}
	}
}

// Steady-state ticker churn must not allocate: the ticker owns one
// closure for life and its event node cycles through the free list.
func TestTickerSteadyStateAllocFree(t *testing.T) {
	e := NewEngine(1)
	n := 0
	tk := e.NewTicker(time.Second, func() { n++ })
	defer tk.Stop()
	e.RunUntil(10 * time.Second) // warm the free list and arena chunk
	avg := testing.AllocsPerRun(100, func() {
		e.RunUntil(e.Now() + 100*time.Second)
	})
	if avg > 0.5 {
		t.Errorf("ticker steady state allocates %.1f allocs per 100 ticks, want 0", avg)
	}
	if n == 0 {
		t.Fatal("ticker never ticked")
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var times []time.Duration
	e.Schedule(time.Second, func() {
		times = append(times, e.Now())
		e.Schedule(time.Second, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != time.Second || times[1] != 2*time.Second {
		t.Fatalf("nested times = %v", times)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4} {
		d := d * time.Second
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(2 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if e.Now() != 2*time.Second {
		t.Errorf("Now = %v, want 2s", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
	// RunUntil advances the clock even with no events.
	e2 := NewEngine(1)
	e2.RunUntil(5 * time.Second)
	if e2.Now() != 5*time.Second {
		t.Errorf("empty RunUntil Now = %v", e2.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	n := 0
	for i := 0; i < 10; i++ {
		e.Schedule(time.Duration(i)*time.Second, func() {
			n++
			if n == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if n != 3 {
		t.Errorf("executed %d events after Stop, want 3", n)
	}
}

func TestEnginePanicsOnPast(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(time.Second, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("At in the past did not panic")
		}
	}()
	e.At(0, func() {})
}

func TestEnginePanicsOnNegativeDelay(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.Schedule(-time.Second, func() {})
}

func TestEngineDeterministicRand(t *testing.T) {
	a, b := NewEngine(42), NewEngine(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same-seed engines diverge")
		}
	}
}

func TestTimerResetStop(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	tm := e.NewTimer(func() { fired++ })
	tm.Reset(time.Second)
	tm.Reset(2 * time.Second) // supersedes
	e.Run()
	if fired != 1 {
		t.Fatalf("timer fired %d times, want 1", fired)
	}
	if e.Now() != 2*time.Second {
		t.Errorf("timer fired at %v, want 2s", e.Now())
	}
	tm.Reset(time.Second)
	tm.Stop()
	tm.Stop() // idempotent
	e.Run()
	if fired != 1 {
		t.Errorf("stopped timer fired")
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine(1)
	var ticks []time.Duration
	var tk *Ticker
	tk = e.NewTicker(time.Second, func() {
		ticks = append(ticks, e.Now())
		if len(ticks) == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks, want 3", len(ticks))
	}
	for i, at := range ticks {
		if want := time.Duration(i+1) * time.Second; at != want {
			t.Errorf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestFluidSingleConsumer(t *testing.T) {
	e := NewEngine(1)
	s := NewFluidSystem(e)
	r := s.NewResource("link", 100) // 100 units/s
	done := time.Duration(-1)
	s.Add(&FluidConsumer{Name: "f", Weight: 1, OnDone: func() { done = e.Now() }}, 500, r)
	e.Run()
	if want := 5 * time.Second; done != want {
		t.Errorf("completion at %v, want %v", done, want)
	}
}

func TestFluidEqualSharing(t *testing.T) {
	e := NewEngine(1)
	s := NewFluidSystem(e)
	r := s.NewResource("cpu", 100)
	var d1, d2 time.Duration
	s.Add(&FluidConsumer{Name: "a", Weight: 1, OnDone: func() { d1 = e.Now() }}, 500, r)
	s.Add(&FluidConsumer{Name: "b", Weight: 1, OnDone: func() { d2 = e.Now() }}, 500, r)
	e.Run()
	// Each gets 50/s while both active: both finish at 10s.
	if d1 != 10*time.Second || d2 != 10*time.Second {
		t.Errorf("completions %v %v, want 10s both", d1, d2)
	}
}

func TestFluidWeightedSharing(t *testing.T) {
	e := NewEngine(1)
	s := NewFluidSystem(e)
	r := s.NewResource("cpu", 100)
	var dh, dl time.Duration
	// Weight 3 vs 1: heavy gets 75/s, light 25/s while both run.
	s.Add(&FluidConsumer{Name: "heavy", Weight: 3, OnDone: func() { dh = e.Now() }}, 300, r)
	s.Add(&FluidConsumer{Name: "light", Weight: 1, OnDone: func() { dl = e.Now() }}, 300, r)
	e.Run()
	if dh != 4*time.Second {
		t.Errorf("heavy done at %v, want 4s", dh)
	}
	// Light: 25*4=100 done by t=4, then 200 remaining at 100/s → t=6.
	if dl != 6*time.Second {
		t.Errorf("light done at %v, want 6s", dl)
	}
}

func TestFluidRateLimit(t *testing.T) {
	e := NewEngine(1)
	s := NewFluidSystem(e)
	r := s.NewResource("link", 100)
	var dCapped, dFree time.Duration
	s.Add(&FluidConsumer{Name: "capped", Weight: 1, Limit: 10, OnDone: func() { dCapped = e.Now() }}, 100, r)
	s.Add(&FluidConsumer{Name: "free", Weight: 1, OnDone: func() { dFree = e.Now() }}, 450, r)
	e.Run()
	// Capped takes 10/s → done at 10s; free gets the other 90/s → 5s.
	if dFree != 5*time.Second {
		t.Errorf("free done at %v, want 5s", dFree)
	}
	if dCapped != 10*time.Second {
		t.Errorf("capped done at %v, want 10s", dCapped)
	}
}

func TestFluidMultiResourceBottleneck(t *testing.T) {
	e := NewEngine(1)
	s := NewFluidSystem(e)
	up := s.NewResource("up", 100)
	down := s.NewResource("down", 10)
	var done time.Duration
	s.Add(&FluidConsumer{Name: "f", Weight: 1, OnDone: func() { done = e.Now() }}, 100, up, down)
	e.Run()
	if done != 10*time.Second {
		t.Errorf("done at %v, want 10s (bottleneck=10/s)", done)
	}
}

func TestFluidRemove(t *testing.T) {
	e := NewEngine(1)
	s := NewFluidSystem(e)
	r := s.NewResource("cpu", 100)
	fired := false
	c := s.Add(&FluidConsumer{Name: "x", Weight: 1, OnDone: func() { fired = true }}, 1000, r)
	e.Schedule(time.Second, func() { s.Remove(c) })
	e.Run()
	if fired {
		t.Error("OnDone fired after Remove")
	}
	if got := c.Remaining(); got < 899 || got > 901 {
		t.Errorf("Remaining = %v, want ~900", got)
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d, want 0", s.Len())
	}
}

func TestFluidCapacityChange(t *testing.T) {
	e := NewEngine(1)
	s := NewFluidSystem(e)
	r := s.NewResource("link", 100)
	var done time.Duration
	s.Add(&FluidConsumer{Name: "f", Weight: 1, OnDone: func() { done = e.Now() }}, 1000, r)
	e.Schedule(5*time.Second, func() { r.SetCapacity(50) })
	e.Run()
	// 500 done in first 5s, remaining 500 at 50/s → +10s = 15s.
	if done != 15*time.Second {
		t.Errorf("done at %v, want 15s", done)
	}
}

func TestFluidDepartureSpeedsUpSurvivor(t *testing.T) {
	e := NewEngine(1)
	s := NewFluidSystem(e)
	r := s.NewResource("link", 100)
	var dShort, dLong time.Duration
	s.Add(&FluidConsumer{Name: "short", Weight: 1, OnDone: func() { dShort = e.Now() }}, 100, r)
	s.Add(&FluidConsumer{Name: "long", Weight: 1, OnDone: func() { dLong = e.Now() }}, 300, r)
	e.Run()
	// Both at 50/s. short done at 2s (100 units). long has 200 left, now
	// at 100/s → done at 4s.
	if dShort != 2*time.Second {
		t.Errorf("short done at %v, want 2s", dShort)
	}
	if dLong != 4*time.Second {
		t.Errorf("long done at %v, want 4s", dLong)
	}
}

func TestFluidZeroWork(t *testing.T) {
	e := NewEngine(1)
	s := NewFluidSystem(e)
	r := s.NewResource("link", 100)
	fired := false
	s.Add(&FluidConsumer{Name: "z", Weight: 1, OnDone: func() { fired = true }}, 0, r)
	e.Run()
	if !fired {
		t.Error("zero-work consumer never completed")
	}
}

func TestFluidPanicsOnBadConsumer(t *testing.T) {
	e := NewEngine(1)
	s := NewFluidSystem(e)
	r := s.NewResource("link", 100)
	for name, fn := range map[string]func(){
		"zero weight":   func() { s.Add(&FluidConsumer{Weight: 0}, 10, r) },
		"negative work": func() { s.Add(&FluidConsumer{Weight: 1}, -1, r) },
		"no constraint": func() { s.Add(&FluidConsumer{Weight: 1}, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFluidManyConsumersDeterministic(t *testing.T) {
	run := func() []time.Duration {
		e := NewEngine(7)
		s := NewFluidSystem(e)
		r := s.NewResource("link", 1000)
		var out []time.Duration
		for i := 0; i < 50; i++ {
			w := float64(1 + i%3)
			work := float64(100 + 37*i)
			s.Add(&FluidConsumer{Name: "c", Weight: w, OnDone: func() {
				out = append(out, e.Now())
			}}, work, r)
		}
		e.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("completions %d/%d, want 50", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("fluid system nondeterministic across identical runs")
		}
	}
}

// Property: events fire in exactly (time, insertion) order for arbitrary
// schedules, including cancellations.
func TestEventOrderingProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		e := NewEngine(1)
		type rec struct {
			at  time.Duration
			seq int
		}
		var want []rec
		var got []rec
		seq := 0
		for i := 0; i+1 < len(raw) && i < 60; i += 2 {
			at := time.Duration(raw[i]) * time.Millisecond
			cancel := raw[i+1]%5 == 0
			s := seq
			seq++
			ev := e.At(at, func() { got = append(got, rec{at, s}) })
			if cancel {
				e.Cancel(ev)
			} else {
				want = append(want, rec{at, s})
			}
		}
		// Expected order: stable sort by time (insertion order preserved
		// within equal times, which `want` already has).
		sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
		e.Run()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
