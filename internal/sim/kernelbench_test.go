package sim_test

// Kernel microbenchmarks, shared with the gridlab bench subcommand via
// the internal/perf/benches registry (an external test package so the
// registry's sim import is not a cycle). Run with:
//
//	go test ./internal/sim -bench Kernel -benchmem
//
// The 1M-event variant extends the registry's default 10k/100k sizes to
// cover the full churn range.

import (
	"testing"

	"repro/internal/perf/benches"
)

func BenchmarkKernel(b *testing.B) {
	for _, spec := range benches.Kernel(10_000, 100_000, 1_000_000) {
		b.Run(spec.Name, spec.Fn)
	}
}

func BenchmarkFluid(b *testing.B) {
	for _, spec := range benches.Fluid() {
		b.Run(spec.Name, spec.Fn)
	}
}
