package sim_test

// Differential gates for the incremental fluid allocator: the pruned
// dirty-set mode must be byte-identical — rates, completion order, and
// completion timestamps — to the full-recompute reference across a
// seeded churn grid, and the allocator's state (scratch slices included)
// must survive Snapshot/Fork. The tests live in the external test
// package so they can use snaptest, which itself imports sim.

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/sim/snaptest"
)

// fluidChurn is the scripted workload both gates share, hoisted into a
// SnapRoot-registrable struct per the snapshot-safety contract: the rng,
// the live set, and the event log all rewind with the system on Fork.
type fluidChurn struct {
	eng  *sim.Engine
	sys  *sim.FluidSystem
	rng  *rand.Rand
	res  []*sim.FluidResource
	live []*fluidTracked
	log  []string
	seq  int
}

// fluidTracked pairs a consumer with its id so completions can log a
// stable name and drop the entry from the live set.
type fluidTracked struct {
	c  *sim.FluidConsumer
	id int
	d  *fluidChurn
}

func (t *fluidTracked) done() {
	d := t.d
	d.log = append(d.log, fmt.Sprintf("%d done f%d", d.eng.Now(), t.id))
	for i, x := range d.live {
		if x == t {
			d.live = append(d.live[:i], d.live[i+1:]...)
			break
		}
	}
}

// tick performs one churn operation — add (with occasional cross-cluster
// paths and rate caps), remove, limit change, or capacity change — then
// logs every live consumer's rate as raw float bits, pinning the whole
// allocation, not just completions.
func (d *fluidChurn) tick() {
	d.seq++
	const perCluster = 3
	clusters := len(d.res) / perCluster
	switch op := d.rng.Intn(10); {
	case op < 5 || len(d.live) == 0: // add
		t := &fluidTracked{id: d.seq, d: d}
		work := 1e5 + float64(d.rng.Intn(900_000))
		cl := d.rng.Intn(clusters)
		rs := []*sim.FluidResource{d.res[cl*perCluster+d.rng.Intn(perCluster)]}
		switch d.rng.Intn(10) {
		case 0: // cross-cluster path: merges two components transitively
			cl2 := (cl + 1 + d.rng.Intn(clusters-1)) % clusters
			rs = append(rs, d.res[cl2*perCluster+d.rng.Intn(perCluster)])
		case 1, 2: // second hop within the cluster
			rs = append(rs, d.res[cl*perCluster+d.rng.Intn(perCluster)])
		}
		var limit float64
		if d.rng.Intn(10) < 3 {
			limit = 20 + float64(d.rng.Intn(80))
		}
		t.c = &sim.FluidConsumer{
			Name:   fmt.Sprintf("f%d", d.seq),
			Weight: float64(1 + d.rng.Intn(4)),
			Limit:  limit,
			OnDone: t.done,
		}
		d.live = append(d.live, t)
		d.sys.Add(t.c, work, rs...)
	case op < 7: // remove mid-flight
		i := d.rng.Intn(len(d.live))
		t := d.live[i]
		d.live = append(d.live[:i], d.live[i+1:]...)
		d.sys.Remove(t.c)
		d.log = append(d.log, fmt.Sprintf("%d rm f%d moved=%x", d.eng.Now(), t.id, math.Float64bits(t.c.Transferred())))
	case op < 9: // re-cap a live consumer (the SetLoss/Mathis path)
		t := d.live[d.rng.Intn(len(d.live))]
		var limit float64
		if d.rng.Intn(2) == 0 {
			limit = 10 + float64(d.rng.Intn(90))
		}
		t.c.SetLimit(limit)
	default: // capacity churn
		r := d.res[d.rng.Intn(len(d.res))]
		r.SetCapacity(100 + float64(d.rng.Intn(400)))
	}
	for _, t := range d.live {
		d.log = append(d.log, fmt.Sprintf("%d rate f%d %x", d.eng.Now(), t.id, math.Float64bits(t.c.Rate())))
	}
}

func (d *fluidChurn) render() []byte {
	var b bytes.Buffer
	for _, ln := range d.log {
		fmt.Fprintln(&b, ln)
	}
	fmt.Fprintf(&b, "live=%d\n", d.sys.Len())
	return b.Bytes()
}

// buildFluidChurn wires the scripted churn onto a fresh engine: a
// clustered resource set (so incremental mode sees many small
// components), a 500ms churn ticker, and the driver registered as a
// snapshot root.
func buildFluidChurn(seed int64, full bool) (*sim.Engine, *fluidChurn) {
	eng := sim.NewEngine(seed)
	sys := sim.NewFluidSystem(eng)
	sys.SetFullRecompute(full)
	d := &fluidChurn{eng: eng, sys: sys, rng: eng.ForkRand()}
	for i := 0; i < 12; i++ {
		d.res = append(d.res, sys.NewResource(fmt.Sprintf("r%d", i), 100+float64(50*(i%3))))
	}
	eng.SnapRoot("fluid.churn", d)
	eng.NewTicker(500*time.Millisecond, d.tick)
	return eng, d
}

// TestFluidIncrementalVsFull is the tentpole's differential gate: over a
// 20-seed churn grid, the dirty-set allocator must produce byte-identical
// rates (raw float bits), completion order, and virtual timestamps to a
// full recompute of every component on every change.
func TestFluidIncrementalVsFull(t *testing.T) {
	n := 20
	if testing.Short() {
		n = 4
	}
	for _, seed := range snaptest.Seeds(1, n) {
		run := func(full bool) []byte {
			eng, d := buildFluidChurn(seed, full)
			eng.RunUntil(2 * time.Minute)
			return d.render()
		}
		inc, full := run(false), run(true)
		if !bytes.Equal(inc, full) {
			t.Fatalf("incremental vs full divergence at seed %d:\n%s", seed, snaptest.Describe(full, inc))
		}
	}
}

// TestForkVsColdFluid proves the allocator's new state — dense indices,
// admission sequence, epoch marks, and the reusable scratch slices — is
// all SnapRoot-reachable: a run forked mid-churn must be byte-identical
// to a cold one.
func TestForkVsColdFluid(t *testing.T) {
	n := 20
	if testing.Short() {
		n = 4
	}
	snaptest.Scenario{
		Name: "fluid.churn",
		Build: func(seed int64) (*sim.Engine, func() []byte) {
			eng, d := buildFluidChurn(seed, false)
			return eng, d.render
		},
		WarmUntil: 30 * time.Second,
		Horizon:   2 * time.Minute,
	}.Run(t, snaptest.Seeds(1, n))
}
