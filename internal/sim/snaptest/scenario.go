package snaptest

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// Scenario is the per-package differential hook: a layer describes how
// to build itself on a fresh engine and how to serialize everything it
// observably produced, and Run proves fork-vs-cold byte identity across
// a seed grid. This is the same gate faultlab's chaos tests apply,
// packaged so every layer that schedules engine events can assert its
// own state survives Fork — without reconstructing the harness.
//
// The contract Build must honor is the snapshot-safety one the gridlint
// analyzers enforce: every piece of mutable scenario state (logs and
// counters included) must be reachable from a SnapRoot registration,
// never held only in closure captures.
type Scenario struct {
	// Name labels divergence reports.
	Name string
	// Build constructs the layer under test on a fresh engine for seed
	// and returns the engine plus a render function serializing every
	// observable output accumulated so far. It must not run the engine.
	Build func(seed int64) (*sim.Engine, func() []byte)
	// WarmUntil is the virtual time at which the forked variant
	// snapshots. Must be positive and before Horizon.
	WarmUntil time.Duration
	// Horizon is the virtual end time of both variants.
	Horizon time.Duration
}

// Run replays the scenario cold (straight to Horizon) and forked (warm
// to WarmUntil, snapshot, run dirty to Horizon, fork back, replay to
// Horizon) for every seed, failing on the first byte of divergence.
// Running past the snapshot before forking is the point: the rewind is
// exercised against genuinely mutated state, not a freshly captured
// no-op.
func (s Scenario) Run(t testing.TB, seeds []int64) {
	t.Helper()
	if s.Build == nil || s.WarmUntil <= 0 || s.Horizon <= s.WarmUntil {
		t.Fatalf("snaptest: scenario %q needs Build and 0 < WarmUntil < Horizon", s.Name)
	}
	Diff(t, s.Name, seeds,
		func(seed int64) []byte {
			eng, render := s.Build(seed)
			eng.RunUntil(s.Horizon)
			return render()
		},
		func(seed int64) []byte {
			eng, render := s.Build(seed)
			eng.RunUntil(s.WarmUntil)
			snap := eng.Snapshot()
			eng.RunUntil(s.Horizon) // dirty the timeline past the fork point
			snap.Fork()
			eng.RunUntil(s.Horizon) // replay it from the rewound state
			return render()
		})
}
