// Package snaptest is the differential test harness for Engine
// snapshot/fork: it replays a scenario cold (fresh engine, straight run)
// and forked (warm up, snapshot, fork, run) across a seed grid and fails
// on the first byte of divergence in the scenario's serialized output —
// traces, chaos reports, figure text, whatever the caller renders.
//
// Byte-identity is deliberately the gate, not structural equality: the
// repository's golden tests already pin outputs byte-for-byte, so any
// weaker comparison here would let fork drift hide behind formatting.
//
// The package knows nothing about upper layers (it depends only on the
// standard library and the sim kernel), so faultlab, core, and perf
// tests can all use it without import cycles. Diff is the raw
// cold-vs-forked comparator; Scenario (scenario.go) is the per-package
// hook layers adopt to run the same gate over their own state.
package snaptest

import (
	"bytes"
	"fmt"
	"testing"
)

// Seeds returns the standard differential seed grid: n consecutive seeds
// from start. The CI gate runs at least 20.
func Seeds(start int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = start + int64(i)
	}
	return out
}

// Diff runs cold and forked for every seed and fails the test on the
// first divergence, reporting the seed and a context window around the
// first differing byte.
func Diff(t testing.TB, name string, seeds []int64, cold, forked func(seed int64) []byte) {
	t.Helper()
	for _, seed := range seeds {
		c := cold(seed)
		f := forked(seed)
		if !bytes.Equal(c, f) {
			t.Fatalf("%s: fork-vs-cold divergence at seed %d:\n%s", name, seed, Describe(c, f))
		}
	}
}

// Describe renders a human-useful description of where two outputs first
// diverge: byte offset, and the surrounding line from each side.
func Describe(cold, forked []byte) string {
	n := len(cold)
	if len(forked) < n {
		n = len(forked)
	}
	i := 0
	for i < n && cold[i] == forked[i] {
		i++
	}
	if i == n && len(cold) == len(forked) {
		return "outputs are identical"
	}
	return fmt.Sprintf("first divergence at byte %d (cold %dB, forked %dB)\n  cold:   %q\n  forked: %q",
		i, len(cold), len(forked), lineAround(cold, i), lineAround(forked, i))
}

// lineAround extracts the line containing offset i (clamped, bounded).
func lineAround(b []byte, i int) []byte {
	if len(b) == 0 {
		return b
	}
	if i >= len(b) {
		i = len(b) - 1
	}
	lo := bytes.LastIndexByte(b[:i], '\n') + 1
	hi := bytes.IndexByte(b[i:], '\n')
	if hi < 0 {
		hi = len(b)
	} else {
		hi += i
	}
	const maxLine = 300
	if hi-lo > maxLine {
		hi = lo + maxLine
	}
	return b[lo:hi]
}
