package sim

import (
	"testing"
	"time"
)

func TestWindowAppliesAndRevokes(t *testing.T) {
	eng := NewEngine(1)
	var log []string
	w := eng.NewWindow(10*time.Second, 5*time.Second,
		func() { log = append(log, "apply@"+eng.Now().String()) },
		func() { log = append(log, "revoke@"+eng.Now().String()) })
	if w.Active() {
		t.Error("active before apply")
	}
	eng.RunUntil(12 * time.Second)
	if !w.Active() {
		t.Error("not active inside window")
	}
	eng.RunUntil(20 * time.Second)
	if w.Active() {
		t.Error("active after revoke")
	}
	if len(log) != 2 || log[0] != "apply@10s" || log[1] != "revoke@15s" {
		t.Errorf("log = %v", log)
	}
}

func TestWindowEarlyRevoke(t *testing.T) {
	eng := NewEngine(1)
	applied, revoked := 0, 0
	w := eng.NewWindow(10*time.Second, time.Hour,
		func() { applied++ },
		func() { revoked++ })
	eng.RunUntil(20 * time.Second)
	w.Revoke() // force-heal long before the scheduled revocation
	if applied != 1 || revoked != 1 {
		t.Fatalf("applied=%d revoked=%d", applied, revoked)
	}
	w.Revoke() // idempotent
	eng.Run()  // the cancelled scheduled revocation must not fire
	if revoked != 1 {
		t.Errorf("revoke ran %d times", revoked)
	}
}

func TestWindowRevokeBeforeApplyCancels(t *testing.T) {
	eng := NewEngine(1)
	applied, revoked := 0, 0
	w := eng.NewWindow(10*time.Second, time.Second,
		func() { applied++ },
		func() { revoked++ })
	w.Revoke()
	eng.Run()
	if applied != 0 || revoked != 0 {
		t.Errorf("cancelled window ran: applied=%d revoked=%d", applied, revoked)
	}
	if w.Active() {
		t.Error("cancelled window active")
	}
}

func TestWindowZeroDuration(t *testing.T) {
	eng := NewEngine(1)
	var order []string
	eng.NewWindow(time.Second, 0,
		func() { order = append(order, "apply") },
		func() { order = append(order, "revoke") })
	eng.Run()
	if len(order) != 2 || order[0] != "apply" || order[1] != "revoke" {
		t.Errorf("order = %v", order)
	}
}

func TestWindowPanicsOnBadArgs(t *testing.T) {
	eng := NewEngine(1)
	for name, fn := range map[string]func(){
		"nil apply":    func() { eng.NewWindow(0, time.Second, nil, func() {}) },
		"nil revoke":   func() { eng.NewWindow(0, time.Second, func() {}, nil) },
		"negative dur": func() { eng.NewWindow(0, -time.Second, func() {}, func() {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
