// Package sim provides the deterministic discrete-event simulation kernel
// that every other gridlab subsystem runs on.
//
// The kernel models virtual time as a time.Duration offset from a zero
// epoch. Events are callbacks scheduled at absolute virtual times and are
// executed in (time, sequence) order, so runs are fully deterministic for
// a given seed and schedule, regardless of host scheduling or map
// iteration order.
//
// The kernel is intentionally single-threaded: gridlab simulates wide-area
// concurrency by interleaving events, not by running goroutines, which is
// what makes traces reproducible and assertable in tests. That same
// single-threadedness is what makes the hot-path machinery below safe:
// event nodes live on a per-engine free list and are recycled across
// schedules, cancellation is lazy (tombstones are skipped at pop time and
// compacted away when they dominate the heap), and the priority queue is a
// 4-ary index-addressed heap, which trades a slightly costlier sift-down
// for half the tree depth and far fewer cache misses than the binary
// container/heap it replaced.
//
// Because nodes are recycled, the Event values handed to callers are
// generation-stamped handles, not raw pointers: a handle whose node has
// since fired (or been swept) no longer matches the node's generation, so
// Cancel on a stale handle is a guaranteed no-op rather than a use-after-
// reuse bug. The zero Event is inert.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// node is the kernel-owned state of one scheduled callback. Nodes live in
// the engine's nodes slice, addressed by index, and are recycled through
// the free list; the generation counter is bumped on every recycle so
// stale Event handles cannot reach them. The ordering keys (at, seq) live
// in the heap slot, not here, so sift comparisons never touch nodes.
type node struct {
	fn   func()
	dead bool // tombstone: cancelled, awaiting pop or compaction
	gen  uint64
}

// slot is one heap entry: the (at, seq) ordering key inline plus the
// index of the node it orders. Slots are pointer-free, so the queue is
// never scanned by the collector and sift moves incur no write barriers.
type slot struct {
	at  time.Duration
	seq uint64
	idx int32
}

// Event is a generation-stamped handle to a scheduled callback. It is a
// small value, cheap to copy and store; the zero Event is inert (Cancel
// and Cancelled on it are no-ops). Handles are single-use: once the event
// fires or is cancelled and reclaimed, the handle goes stale and all
// operations on it are no-ops.
type Event struct {
	eng *Engine
	idx int32
	gen uint64
	at  time.Duration
}

// Time returns the virtual time at which the event was scheduled to fire
// (zero for the zero Event).
func (e Event) Time() time.Duration { return e.at }

// Cancelled reports whether the event was cancelled and has not yet been
// reclaimed by the kernel. Once the tombstone is swept (or the node is
// recycled) the handle is stale and Cancelled reports false.
func (e Event) Cancelled() bool {
	// The bounds check is not paranoia: a Fork can rewind the engine to a
	// point where this handle's node had not been allocated yet.
	if e.eng == nil || int(e.idx) >= len(e.eng.nodes) {
		return false
	}
	nd := &e.eng.nodes[e.idx]
	return nd.gen == e.gen && nd.dead
}

// live reports whether the handle still names a pending, uncancelled
// event.
func (e Event) live() bool {
	if e.eng == nil || int(e.idx) >= len(e.eng.nodes) {
		return false
	}
	nd := &e.eng.nodes[e.idx]
	return nd.gen == e.gen && !nd.dead
}

// compactMin is the queue length below which tombstone compaction is never
// triggered: small heaps drain tombstones through pops faster than a
// rebuild pays off.
const compactMin = 256

// Engine is a discrete-event simulation engine. It is not safe for
// concurrent use; all simulated activity happens on the calling goroutine.
// (Fanning whole engines out across goroutines — one private engine per
// run — is the job of internal/perf, the one audited owner of
// cross-goroutine execution.)
type Engine struct {
	now     time.Duration
	seq     uint64
	q       []slot  // 4-ary min-heap by (at, seq); may contain tombstones
	live    int     // pending uncancelled events (Pending is O(1))
	nodes   []node  // index-stable backing store (appended, never shrunk)
	free    []int32 // recycled node indexes
	rng     *rand.Rand
	stopped bool
	// processed counts events executed, for test and debug assertions.
	processed uint64

	// genCounter is the source of every node generation ever minted. It is
	// engine-global and monotonic, and — critically — it is the one piece
	// of kernel state a Fork never rewinds: generations are unique across
	// all timelines, so an Event handle minted in an abandoned timeline can
	// never match a node in a later one (see snap.go).
	genCounter uint64

	// Snapshot registries (see snap.go). snapRoots anchors layer state for
	// the deep-capture walker; snapHooks holds save/restore callbacks for
	// state the walker cannot reach. Both live on the Engine struct so a
	// restore truncates them to their snapshot-time lengths automatically.
	snapRoots []snapRoot
	snapHooks []snapHook
}

// NewEngine returns an engine at virtual time zero whose random stream is
// derived from seed. Two engines with equal seeds and schedules produce
// identical runs.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random stream. Subsystems must
// draw all randomness from here (or from streams forked via ForkRand) so
// runs stay reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// ForkRand returns an independent deterministic random stream derived from
// the engine seed stream. Use one per subsystem so adding draws in one
// subsystem does not perturb another.
func (e *Engine) ForkRand() *rand.Rand {
	return rand.New(rand.NewSource(e.rng.Int63()))
}

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// nextGen mints a fresh, never-before-used node generation. Generations
// come from the engine-global counter rather than per-node bumps so that
// no generation is ever reused — not even across Fork rewinds, which
// restore node state but deliberately leave the counter alone.
func (e *Engine) nextGen() uint64 {
	e.genCounter++
	return e.genCounter
}

// alloc hands out a node index from the free list, growing the backing
// slice when it runs dry; append's growth policy amortizes allocation.
// Fresh nodes draw a generation immediately: a zero generation would
// collide with handles minted against index reuse after a Fork truncates
// and regrows the nodes slice.
func (e *Engine) alloc() int32 {
	if n := len(e.free); n > 0 {
		idx := e.free[n-1]
		e.free = e.free[:n-1]
		return idx
	}
	e.nodes = append(e.nodes, node{gen: e.nextGen()})
	return int32(len(e.nodes) - 1)
}

// release recycles a node: the fresh generation invalidates every
// outstanding handle, and dropping fn releases the closure.
func (e *Engine) release(idx int32) {
	nd := &e.nodes[idx]
	nd.gen = e.nextGen()
	nd.fn = nil
	nd.dead = false
	e.free = append(e.free, idx)
}

// Schedule runs fn after delay (>= 0) of virtual time. It returns the
// event so the caller may cancel it. Scheduling in the past panics: it
// would silently reorder causality.
func (e *Engine) Schedule(delay time.Duration, fn func()) Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t (>= Now).
func (e *Engine) At(t time.Duration, fn func()) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	e.seq++
	idx := e.alloc()
	nd := &e.nodes[idx]
	nd.fn = fn
	e.push(slot{at: t, seq: e.seq, idx: idx})
	e.live++
	return Event{eng: e, idx: idx, gen: nd.gen, at: t}
}

// Cancel prevents a pending event from firing. Cancelling an already
// fired, already cancelled, or zero event is a no-op. Cancellation is
// lazy: the node stays queued as a tombstone and is skipped at pop time,
// with a compaction sweep when tombstones outnumber live events.
func (e *Engine) Cancel(ev Event) {
	if ev.eng != e || !ev.live() {
		return
	}
	nd := &e.nodes[ev.idx]
	nd.dead = true
	nd.fn = nil
	e.live--
	if len(e.q) >= compactMin && e.live*2 < len(e.q) {
		e.compact()
	}
}

// compact rebuilds the heap from its live events, releasing tombstones.
// The slot array is pointer-free, so the abandoned tail needs no clearing.
func (e *Engine) compact() {
	q := e.q[:0]
	for _, s := range e.q {
		if e.nodes[s.idx].dead {
			e.release(s.idx)
		} else {
			q = append(q, s)
		}
	}
	e.q = q
	for i := (len(q) - 2) / 4; i >= 0; i-- {
		e.down(i)
	}
}

// Stop makes the current Run/RunUntil call return after the current event
// completes. Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// peek prunes tombstones off the top of the heap and returns the next
// live entry (ok=false when the queue is effectively empty).
func (e *Engine) peek() (slot, bool) {
	for len(e.q) > 0 {
		s := e.q[0]
		if !e.nodes[s.idx].dead {
			return s, true
		}
		e.release(e.popTop().idx)
	}
	return slot{}, false
}

// Step executes the single next event, advancing the clock to it. It
// reports false when the queue is empty.
func (e *Engine) Step() bool {
	s, ok := e.peek()
	if !ok {
		return false
	}
	e.popTop()
	e.now = s.at
	e.processed++
	e.live--
	fn := e.nodes[s.idx].fn
	// Recycle before firing: outstanding handles are invalidated by the
	// generation bump, and a reschedule inside fn (the Ticker pattern)
	// reuses this very node with zero allocation.
	e.release(s.idx)
	fn()
	return true
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with time <= t, then sets the clock to t.
// Events scheduled beyond t remain queued.
func (e *Engine) RunUntil(t time.Duration) {
	if t < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", t, e.now))
	}
	e.stopped = false
	for !e.stopped {
		s, ok := e.peek()
		if !ok || s.at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Pending returns the number of queued (uncancelled) events. It is O(1):
// the kernel maintains the count incrementally across push, cancel, and
// pop.
func (e *Engine) Pending() int { return e.live }

// ---- 4-ary heap over (at, seq), keys inline in the slot array ---------

// push appends s and sifts it up.
func (e *Engine) push(s slot) {
	e.q = append(e.q, s)
	e.up(len(e.q) - 1)
}

// popTop removes and returns the root (callers check tombstones).
func (e *Engine) popTop() slot {
	q := e.q
	top := q[0]
	last := len(q) - 1
	s := q[last]
	e.q = q[:last]
	if last > 0 {
		e.q[0] = s
		e.down(0)
	}
	return top
}

// up sifts the entry at index i toward the root.
func (e *Engine) up(i int) {
	q := e.q
	s := q[i]
	for i > 0 {
		p := (i - 1) / 4
		if q[p].at < s.at || (q[p].at == s.at && q[p].seq < s.seq) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = s
}

// down sifts the entry at index i toward the leaves using Floyd's
// bottom-up variant: the hole walks the min-child path all the way down
// (three comparisons per level instead of four), then the displaced entry
// sifts back up the same path — almost always a step or less, because in
// the pop-heavy case it came from the leaf layer. The ordering keys sit
// inline in q, so the child scan touches one or two cache lines and never
// dereferences a node.
func (e *Engine) down(i int) {
	q := e.q
	n := len(q)
	s := q[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		best := c
		ba, bs := q[c].at, q[c].seq
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if q[j].at < ba || (q[j].at == ba && q[j].seq < bs) {
				best, ba, bs = j, q[j].at, q[j].seq
			}
		}
		q[i] = q[best]
		i = best
	}
	for i > 0 {
		p := (i - 1) / 4
		if q[p].at < s.at || (q[p].at == s.at && q[p].seq < s.seq) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = s
}

// Timer is a restartable one-shot timer bound to an engine, analogous to
// time.Timer but in virtual time.
type Timer struct {
	eng  *Engine
	ev   Event
	fn   func()
	fire func() // bound once; clears ev so Stop never cancels a stale handle
}

// NewTimer returns a stopped timer that will invoke fn when it fires.
func (e *Engine) NewTimer(fn func()) *Timer {
	if fn == nil {
		panic("sim: nil timer function")
	}
	t := &Timer{eng: e, fn: fn}
	t.fire = func() {
		t.ev = Event{}
		t.fn()
	}
	return t
}

// Reset (re)arms the timer to fire after d, cancelling any pending firing.
func (t *Timer) Reset(d time.Duration) {
	t.Stop()
	t.ev = t.eng.Schedule(d, t.fire)
}

// Stop cancels a pending firing. It is a no-op on a stopped timer.
func (t *Timer) Stop() {
	t.eng.Cancel(t.ev)
	t.ev = Event{}
}

// Window is a scheduled apply/revoke pair: apply fires at a start time,
// revoke fires after a duration. It is the primitive fault injectors use
// to guarantee every injected fault is revoked exactly once — either by
// the scheduled revocation or by an early forced Revoke, never both.
type Window struct {
	eng      *Engine
	applyEv  Event
	revokeEv Event
	revokeFn func()
	applied  bool
	revoked  bool
}

// NewWindow schedules apply at absolute virtual time start and revoke at
// start+dur. Both callbacks are required; dur must be non-negative.
func (e *Engine) NewWindow(start, dur time.Duration, apply, revoke func()) *Window {
	if apply == nil || revoke == nil {
		panic("sim: nil window function")
	}
	if dur < 0 {
		panic(fmt.Sprintf("sim: negative window duration %v", dur))
	}
	w := &Window{eng: e, revokeFn: revoke}
	w.applyEv = e.At(start, func() {
		w.applied = true
		apply()
		w.revokeEv = e.Schedule(dur, func() {
			w.revoked = true
			revoke()
		})
	})
	return w
}

// Active reports whether the window has applied but not yet revoked.
func (w *Window) Active() bool { return w.applied && !w.revoked }

// Revoke ends the window now: a pending apply is cancelled without ever
// firing; an active window's revoke callback runs immediately and its
// scheduled revocation is cancelled. Idempotent.
func (w *Window) Revoke() {
	if w.revoked {
		return
	}
	if !w.applied {
		w.revoked = true
		w.eng.Cancel(w.applyEv)
		return
	}
	w.revoked = true
	w.eng.Cancel(w.revokeEv)
	w.revokeFn()
}

// Ticker invokes fn every period until stopped. One callback closure and
// (steady-state) one recycled event node serve the ticker's whole life,
// so ticking is allocation-free.
type Ticker struct {
	eng     *Engine
	period  time.Duration
	fn      func()
	ev      Event
	stopped bool
	tick    func() // bound once, re-armed every period
}

// NewTicker starts a ticker with the given period. The first tick fires
// one period from now.
func (e *Engine) NewTicker(period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: ticker period %v must be positive", period))
	}
	t := &Ticker{eng: e, period: period, fn: fn}
	t.tick = func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.ev = t.eng.Schedule(t.period, t.tick)
		}
	}
	t.ev = e.Schedule(period, t.tick)
	return t
}

// Stop halts the ticker. Safe to call multiple times.
func (t *Ticker) Stop() {
	t.stopped = true
	t.eng.Cancel(t.ev)
	t.ev = Event{}
}
