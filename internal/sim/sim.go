// Package sim provides the deterministic discrete-event simulation kernel
// that every other gridlab subsystem runs on.
//
// The kernel models virtual time as a time.Duration offset from a zero
// epoch. Events are callbacks scheduled at absolute virtual times and are
// executed in (time, sequence) order, so runs are fully deterministic for
// a given seed and schedule, regardless of host scheduling or map
// iteration order.
//
// The kernel is intentionally single-threaded: gridlab simulates wide-area
// concurrency by interleaving events, not by running goroutines, which is
// what makes traces reproducible and assertable in tests.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Event is a scheduled callback. The zero Event is invalid; events are
// created through Engine.Schedule and friends.
type Event struct {
	at     time.Duration
	seq    uint64
	fn     func()
	index  int // heap index, -1 when popped or cancelled
	cancel bool
}

// Time returns the virtual time at which the event fires.
func (e *Event) Time() time.Duration { return e.at }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancel }

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation engine. It is not safe for
// concurrent use; all simulated activity happens on the calling goroutine.
type Engine struct {
	now     time.Duration
	seq     uint64
	queue   eventQueue
	rng     *rand.Rand
	stopped bool
	// processed counts events executed, for test and debug assertions.
	processed uint64
}

// NewEngine returns an engine at virtual time zero whose random stream is
// derived from seed. Two engines with equal seeds and schedules produce
// identical runs.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random stream. Subsystems must
// draw all randomness from here (or from streams forked via ForkRand) so
// runs stay reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// ForkRand returns an independent deterministic random stream derived from
// the engine seed stream. Use one per subsystem so adding draws in one
// subsystem does not perturb another.
func (e *Engine) ForkRand() *rand.Rand {
	return rand.New(rand.NewSource(e.rng.Int63()))
}

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Schedule runs fn after delay (>= 0) of virtual time. It returns the
// event so the caller may cancel it. Scheduling in the past panics: it
// would silently reorder causality.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t (>= Now).
func (e *Engine) At(t time.Duration, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel prevents a pending event from firing. Cancelling an already fired
// or already cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancel {
		return
	}
	ev.cancel = true
	if ev.index >= 0 {
		heap.Remove(&e.queue, ev.index)
	}
}

// Stop makes the current Run/RunUntil call return after the current event
// completes. Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single next event, advancing the clock to it. It
// reports false when the queue is empty.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancel {
			continue
		}
		e.now = ev.at
		e.processed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with time <= t, then sets the clock to t.
// Events scheduled beyond t remain queued.
func (e *Engine) RunUntil(t time.Duration) {
	if t < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", t, e.now))
	}
	e.stopped = false
	for !e.stopped {
		if e.queue.Len() == 0 {
			break
		}
		// Peek.
		next := e.queue[0]
		if next.at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Pending returns the number of queued (uncancelled) events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.cancel {
			n++
		}
	}
	return n
}

// Timer is a restartable one-shot timer bound to an engine, analogous to
// time.Timer but in virtual time.
type Timer struct {
	eng *Engine
	ev  *Event
	fn  func()
}

// NewTimer returns a stopped timer that will invoke fn when it fires.
func (e *Engine) NewTimer(fn func()) *Timer {
	if fn == nil {
		panic("sim: nil timer function")
	}
	return &Timer{eng: e, fn: fn}
}

// Reset (re)arms the timer to fire after d, cancelling any pending firing.
func (t *Timer) Reset(d time.Duration) {
	t.Stop()
	t.ev = t.eng.Schedule(d, t.fn)
}

// Stop cancels a pending firing. It is a no-op on a stopped timer.
func (t *Timer) Stop() {
	if t.ev != nil {
		t.eng.Cancel(t.ev)
		t.ev = nil
	}
}

// Window is a scheduled apply/revoke pair: apply fires at a start time,
// revoke fires after a duration. It is the primitive fault injectors use
// to guarantee every injected fault is revoked exactly once — either by
// the scheduled revocation or by an early forced Revoke, never both.
type Window struct {
	eng      *Engine
	applyEv  *Event
	revokeEv *Event
	revokeFn func()
	applied  bool
	revoked  bool
}

// NewWindow schedules apply at absolute virtual time start and revoke at
// start+dur. Both callbacks are required; dur must be non-negative.
func (e *Engine) NewWindow(start, dur time.Duration, apply, revoke func()) *Window {
	if apply == nil || revoke == nil {
		panic("sim: nil window function")
	}
	if dur < 0 {
		panic(fmt.Sprintf("sim: negative window duration %v", dur))
	}
	w := &Window{eng: e, revokeFn: revoke}
	w.applyEv = e.At(start, func() {
		w.applied = true
		apply()
		w.revokeEv = e.Schedule(dur, func() {
			w.revoked = true
			revoke()
		})
	})
	return w
}

// Active reports whether the window has applied but not yet revoked.
func (w *Window) Active() bool { return w.applied && !w.revoked }

// Revoke ends the window now: a pending apply is cancelled without ever
// firing; an active window's revoke callback runs immediately and its
// scheduled revocation is cancelled. Idempotent.
func (w *Window) Revoke() {
	if w.revoked {
		return
	}
	if !w.applied {
		w.revoked = true
		w.eng.Cancel(w.applyEv)
		return
	}
	w.revoked = true
	w.eng.Cancel(w.revokeEv)
	w.revokeFn()
}

// Ticker invokes fn every period until stopped.
type Ticker struct {
	eng     *Engine
	period  time.Duration
	fn      func()
	ev      *Event
	stopped bool
}

// NewTicker starts a ticker with the given period. The first tick fires
// one period from now.
func (e *Engine) NewTicker(period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: ticker period %v must be positive", period))
	}
	t := &Ticker{eng: e, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.eng.Schedule(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop halts the ticker. Safe to call multiple times.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.ev != nil {
		t.eng.Cancel(t.ev)
		t.ev = nil
	}
}
