package sim

import (
	"testing"
	"time"
)

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Duration(i%1000)*time.Millisecond, func() {})
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}

func BenchmarkFluidChurn(b *testing.B) {
	// Arrival/departure churn over a shared resource: each iteration adds
	// a consumer (forcing a reallocation over the live set).
	e := NewEngine(1)
	s := NewFluidSystem(e)
	r := s.NewResource("link", 1e6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(&FluidConsumer{Name: "c", Weight: 1}, 1e4, r)
		if i%64 == 63 {
			e.Run() // drain completions
		}
	}
	e.Run()
}
