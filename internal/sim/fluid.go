package sim

import (
	"fmt"
	"math"
	"slices"
	"time"
)

// The fluid model approximates packet- or tick-level resource sharing with
// piecewise-constant rates: a set of consumers drains work through a set of
// capacity-limited resources, and rates are recomputed with weighted
// max-min fairness (progressive filling) whenever the consumer set or any
// capacity changes. This is the standard fluid approximation used by
// flow-level network simulators; gridlab uses one instance for WAN
// bandwidth sharing (internal/simnet) and one per node for
// proportional-share CPU scheduling (internal/silk).
//
// Allocation is incremental: weighted max-min fairness decomposes exactly
// across connected components of the consumer↔resource sharing graph, so a
// change (consumer add/remove, limit change, capacity change) re-fills only
// the component containing the change — the "dirty set" — and leaves every
// other component's rates untouched. Within the dirty set the progressive
// filling iterates consumers in admission order and resources in creation
// order, which makes the float arithmetic bit-identical to a global
// recompute restricted to that component; SetFullRecompute(true) disables
// the pruning and is the reference mode the differential gates compare
// against. Completion events are rescheduled only for consumers whose rate
// actually changed: an unchanged rate means the pending event's
// ceil-rounded ETA is still exact, so cancel+reschedule churn (previously
// O(N) per change) tracks the size of the rate change, not the system.
//
// All allocator state — including the reusable scratch slices — lives in
// struct fields reachable from the FluidSystem, never in closure captures,
// so engine snapshots taken mid-run restore the allocator exactly (see
// snap.go and the snapshot-safety analyzers).

// FluidResource is a capacity-limited resource, e.g. a link direction or a
// node's CPU. Capacity is in work units per second.
type FluidResource struct {
	Name     string
	capacity float64
	sys      *FluidSystem
	idx      int32 // dense index in sys.resources (creation order)

	// consumers are the live consumers crossing this resource, in
	// admission order — the edge list the dirty-set walk follows.
	consumers []*FluidConsumer

	// Scratch used during one fill; meaningful only mid-reallocation.
	avail    float64
	weightOn float64
	visited  uint64 // dirty-walk epoch stamp
}

// Capacity returns the resource's current capacity in units/second.
func (r *FluidResource) Capacity() float64 { return r.capacity }

// SetCapacity changes the capacity and reallocates the rates of the
// resource's connected component.
func (r *FluidResource) SetCapacity(c float64) {
	if c < 0 || math.IsNaN(c) {
		panic(fmt.Sprintf("sim: invalid capacity %v for %s", c, r.Name))
	}
	r.capacity = c
	r.sys.seedR[0] = r
	r.sys.reallocAround(nil, r.sys.seedR[:])
}

// FluidConsumer is one unit of demand draining through one or more
// resources simultaneously (a network flow traverses both endpoints'
// access links; a CPU task uses one CPU).
type FluidConsumer struct {
	Name string
	// Weight sets the consumer's share relative to competitors (stride /
	// proportional-share semantics). Must be > 0.
	Weight float64
	// Limit caps the consumer's rate independent of fair share, in
	// units/second; 0 means unlimited. Used for TCP loss-limited rates and
	// token-bucket ceilings. Change it on a live consumer via SetLimit,
	// which triggers reallocation; writing the field directly takes effect
	// only at the next reallocation touching the consumer.
	Limit float64
	// OnDone fires when Remaining reaches zero; the consumer is removed
	// before the callback runs.
	OnDone func()

	remaining  float64
	total      float64
	rate       float64
	resources  []*FluidResource
	sys        *FluidSystem
	done       Event
	lastUpdate time.Duration
	started    time.Duration
	seq        uint64 // admission order, stable across removals
	live       bool

	// Scratch used during one fill; meaningful only mid-reallocation.
	visited uint64
	frozen  bool
}

// doneEps is the absolute remaining-work tolerance below which the
// consumer counts as finished; it scales with the original work size to
// absorb float drift from repeated settling of large transfers.
func (c *FluidConsumer) doneEps() float64 { return 1e-9 * (1 + c.total) }

// Rate returns the currently allocated rate in units/second.
func (c *FluidConsumer) Rate() float64 { return c.rate }

// Remaining returns the work left as of the current virtual time.
func (c *FluidConsumer) Remaining() float64 {
	c.settle()
	return c.remaining
}

// Transferred returns the work completed as of the current virtual time.
// It remains valid (and frozen) after the consumer is removed, which is
// what lets callers charge exactly the bytes a cancelled transfer moved.
func (c *FluidConsumer) Transferred() float64 {
	c.settle()
	return c.total - c.remaining
}

// Started returns the virtual time the consumer was added.
func (c *FluidConsumer) Started() time.Duration { return c.started }

// SetLimit changes the consumer's rate cap (0 = unlimited) and, for a
// live consumer, reallocates its component — the hook loss/RTT churn uses
// to re-cap in-flight TCP streams. A bitwise-equal limit is a no-op.
func (c *FluidConsumer) SetLimit(limit float64) {
	if limit < 0 || math.IsNaN(limit) {
		panic(fmt.Sprintf("sim: consumer %q invalid limit %v", c.Name, limit))
	}
	if limit == c.Limit {
		return
	}
	c.Limit = limit
	if c.live {
		c.sys.reallocAround(c, nil)
	}
}

// settle charges progress since the last update at the current rate.
func (c *FluidConsumer) settle() {
	if c.sys == nil {
		return
	}
	now := c.sys.eng.Now()
	if now > c.lastUpdate {
		c.remaining -= c.rate * (now - c.lastUpdate).Seconds()
		if c.remaining < 0 {
			c.remaining = 0
		}
	}
	c.lastUpdate = now
}

// FluidSystem owns a set of resources and the consumers draining through
// them, recomputing the weighted max-min fair allocation of the affected
// component on every change.
type FluidSystem struct {
	eng       *Engine
	resources []*FluidResource
	order     []*FluidConsumer // live consumers in admission order
	liveN     int
	seqC      uint64 // admission sequence source
	epoch     uint64 // dirty-walk epoch source

	// full disables dirty-set pruning: every reallocation re-fills all
	// components. The differential gates compare this reference mode
	// against the pruned one.
	full bool

	// Reusable scratch, reachable from the system so snapshots restore it
	// (the contents are only meaningful mid-reallocation).
	dirtyC  []*FluidConsumer
	dirtyR  []*FluidResource
	queueR  []*FluidResource
	newRate []float64
	seedR   [1]*FluidResource
}

// NewFluidSystem returns an empty system bound to the engine.
func NewFluidSystem(eng *Engine) *FluidSystem {
	return &FluidSystem{eng: eng}
}

// NewResource registers a resource with the given capacity (units/sec).
func (s *FluidSystem) NewResource(name string, capacity float64) *FluidResource {
	if capacity < 0 || math.IsNaN(capacity) {
		panic(fmt.Sprintf("sim: invalid capacity %v for %s", capacity, name))
	}
	r := &FluidResource{Name: name, capacity: capacity, sys: s, idx: int32(len(s.resources))}
	s.resources = append(s.resources, r)
	return r
}

// SetFullRecompute toggles the reference allocation mode: when on, every
// change re-fills all components instead of only the dirty one. Rates,
// completion order, and completion timestamps are byte-identical in both
// modes (the differential property tests enforce this); full mode exists
// as the comparison baseline for those gates and for benchmarks.
func (s *FluidSystem) SetFullRecompute(on bool) { s.full = on }

// Add starts a consumer with the given amount of work across the listed
// resources and returns it. A consumer with no resources is limited only
// by its Limit (or runs instantaneously if Limit is 0 — disallowed).
// Zero work completes immediately: OnDone fires before Add returns.
func (s *FluidSystem) Add(c *FluidConsumer, work float64, resources ...*FluidResource) *FluidConsumer {
	if c.Weight <= 0 {
		panic(fmt.Sprintf("sim: consumer %q weight %v must be positive", c.Name, c.Weight))
	}
	if work < 0 || math.IsNaN(work) {
		panic(fmt.Sprintf("sim: consumer %q invalid work %v", c.Name, work))
	}
	if len(resources) == 0 && c.Limit <= 0 {
		panic(fmt.Sprintf("sim: consumer %q needs a resource or a rate limit", c.Name))
	}
	for _, r := range resources {
		if r.sys != s {
			panic(fmt.Sprintf("sim: consumer %q uses resource %q from another system", c.Name, r.Name))
		}
	}
	c.sys = s
	c.remaining = work
	c.total = work
	c.rate = 0
	c.done = Event{}
	c.resources = append([]*FluidResource(nil), resources...)
	c.lastUpdate = s.eng.Now()
	c.started = s.eng.Now()
	if work <= c.doneEps() {
		// Nothing to transfer: complete synchronously without ever joining
		// the allocation, as the previous global recompute did.
		c.remaining = 0
		if c.OnDone != nil {
			c.OnDone()
		}
		return c
	}
	s.seqC++
	c.seq = s.seqC
	c.live = true
	s.liveN++
	s.order = append(s.order, c)
	for _, r := range c.resources {
		r.consumers = append(r.consumers, c)
	}
	s.reallocAround(c, nil)
	return c
}

// Remove cancels a consumer without firing OnDone. Safe on finished ones.
func (s *FluidSystem) Remove(c *FluidConsumer) {
	if !c.live || c.sys != s {
		return
	}
	c.settle()
	s.detach(c)
	s.reallocAround(nil, c.resources)
}

func (s *FluidSystem) detach(c *FluidConsumer) {
	c.live = false
	s.liveN--
	for i, x := range s.order {
		if x == c {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	for _, r := range c.resources {
		for i, x := range r.consumers {
			if x == c {
				r.consumers = append(r.consumers[:i], r.consumers[i+1:]...)
				break
			}
		}
	}
	s.eng.Cancel(c.done)
	c.done = Event{}
	c.rate = 0
}

// Len returns the number of active consumers.
func (s *FluidSystem) Len() int { return s.liveN }

// reallocAround recomputes rates for the connected component(s) touched
// by a change seeded at consumer c (may be nil) and/or resources rs, then
// reschedules completion events for the consumers whose rate changed.
func (s *FluidSystem) reallocAround(c *FluidConsumer, rs []*FluidResource) {
	s.collectDirty(c, rs)
	s.fill()
	s.applyRates()
}

// collectDirty walks the sharing graph from the seeds and leaves the
// affected consumers in s.dirtyC (admission order) and resources in
// s.dirtyR (creation order). In full mode it selects everything.
func (s *FluidSystem) collectDirty(seedC *FluidConsumer, seedR []*FluidResource) {
	s.dirtyC = s.dirtyC[:0]
	s.dirtyR = s.dirtyR[:0]
	s.queueR = s.queueR[:0]
	if s.full {
		s.dirtyC = append(s.dirtyC, s.order...)
		s.dirtyR = append(s.dirtyR, s.resources...)
		return
	}
	s.epoch++
	if seedC != nil && seedC.live {
		seedC.visited = s.epoch
		s.dirtyC = append(s.dirtyC, seedC)
		for _, r := range seedC.resources {
			if r.visited != s.epoch {
				r.visited = s.epoch
				s.dirtyR = append(s.dirtyR, r)
				s.queueR = append(s.queueR, r)
			}
		}
	}
	for _, r := range seedR {
		if r.visited != s.epoch {
			r.visited = s.epoch
			s.dirtyR = append(s.dirtyR, r)
			s.queueR = append(s.queueR, r)
		}
	}
	for len(s.queueR) > 0 {
		r := s.queueR[len(s.queueR)-1]
		s.queueR = s.queueR[:len(s.queueR)-1]
		for _, c := range r.consumers {
			if c.visited == s.epoch {
				continue
			}
			c.visited = s.epoch
			s.dirtyC = append(s.dirtyC, c)
			for _, cr := range c.resources {
				if cr.visited != s.epoch {
					cr.visited = s.epoch
					s.dirtyR = append(s.dirtyR, cr)
					s.queueR = append(s.queueR, cr)
				}
			}
		}
	}
	// Canonical order makes the component fill's float arithmetic match a
	// full recompute's (which iterates admission/creation order) exactly.
	slices.SortFunc(s.dirtyC, func(a, b *FluidConsumer) int {
		switch {
		case a.seq < b.seq:
			return -1
		case a.seq > b.seq:
			return 1
		}
		return 0
	})
	slices.SortFunc(s.dirtyR, func(a, b *FluidResource) int { return int(a.idx - b.idx) })
}

// fill runs weighted progressive filling over the dirty set, writing the
// computed rates into s.newRate (parallel to s.dirtyC) without touching
// consumer state. Each round freezes either one rate-capped consumer or
// every consumer crossing the saturating resource, at the minimum of the
// resource ratios (avail/weight-on) and consumer cap ratios
// (Limit/Weight) — identical arithmetic to a global fill restricted to
// these components, since components never share resources.
func (s *FluidSystem) fill() {
	dc, dr := s.dirtyC, s.dirtyR
	if cap(s.newRate) < len(dc) {
		s.newRate = make([]float64, len(dc))
	}
	s.newRate = s.newRate[:len(dc)]
	for _, r := range dr {
		r.avail = r.capacity
	}
	for i, c := range dc {
		c.frozen = false
		s.newRate[i] = 0
	}
	unfrozen := len(dc)
	for unfrozen > 0 {
		for _, r := range dr {
			r.weightOn = 0
		}
		for _, c := range dc {
			if c.frozen {
				continue
			}
			for _, r := range c.resources {
				r.weightOn += c.Weight
			}
		}
		minRatio := math.Inf(1)
		var minRes *FluidResource
		minCapped := -1
		for _, r := range dr {
			if r.weightOn == 0 {
				continue
			}
			if ratio := r.avail / r.weightOn; ratio < minRatio {
				minRatio, minRes, minCapped = ratio, r, -1
			}
		}
		for i, c := range dc {
			if c.frozen || c.Limit <= 0 {
				continue
			}
			if ratio := c.Limit / c.Weight; ratio < minRatio {
				minRatio, minRes, minCapped = ratio, nil, i
			}
		}
		switch {
		case minCapped >= 0:
			// One consumer hits its rate cap below everyone's fair share.
			c := dc[minCapped]
			s.newRate[minCapped] = c.Limit
			for _, r := range c.resources {
				r.avail -= c.Limit
				if r.avail < 0 {
					r.avail = 0
				}
			}
			c.frozen = true
			unfrozen--
		case minRes != nil:
			// A resource saturates: freeze everyone crossing it.
			for i, c := range dc {
				if c.frozen {
					continue
				}
				uses := false
				for _, r := range c.resources {
					if r == minRes {
						uses = true
						break
					}
				}
				if !uses {
					continue
				}
				rate := c.Weight * minRatio
				s.newRate[i] = rate
				for _, r := range c.resources {
					r.avail -= rate
					if r.avail < 0 {
						r.avail = 0
					}
				}
				c.frozen = true
				unfrozen--
			}
			minRes.avail = 0
		default:
			// Only unconstrained, uncapped consumers remain (no resources
			// at all would have been rejected at Add). Nothing binds: this
			// can only happen when all their resources have infinite
			// capacity — treat as unlimited via an infinite rate.
			for i, c := range dc {
				if !c.frozen {
					s.newRate[i] = math.Inf(1)
					c.frozen = true
				}
			}
			unfrozen = 0
		}
	}
}

// applyRates commits the filled rates: consumers whose rate is bitwise
// unchanged are left entirely alone — their pending completion event's
// ceil-rounded ETA is still exact — while changed consumers settle the
// work done at the old rate and get a fresh completion event.
func (s *FluidSystem) applyRates() {
	now := s.eng.Now()
	for i, c := range s.dirtyC {
		nr := s.newRate[i]
		if nr == c.rate {
			continue
		}
		if now > c.lastUpdate {
			c.remaining -= c.rate * (now - c.lastUpdate).Seconds()
			if c.remaining < 0 {
				c.remaining = 0
			}
		}
		c.lastUpdate = now
		c.rate = nr
		s.eng.Cancel(c.done)
		c.done = Event{}
		switch {
		case c.remaining <= c.doneEps():
			// Already done as of the settle (a co-bottlenecked consumer
			// finishing at exactly this instant): complete now rather than
			// pushing the event a nanosecond into the future.
			c.done = s.eng.Schedule(0, func() { s.finish(c) })
		case nr > 0 && !math.IsInf(nr, 1):
			c.done = s.eng.Schedule(completionEta(c.remaining, nr), func() { s.finish(c) })
		case math.IsInf(nr, 1):
			c.done = s.eng.Schedule(0, func() { s.finish(c) })
		}
		// nr == 0: starved — no event until capacity returns.
	}
}

// maxEta caps completion ETAs at ~146 years of virtual time: a duration
// beyond that cannot be represented (the float64→Duration conversion
// would overflow to a bogus near-zero delay and grind the engine through
// nanosecond-step events). Such a consumer effectively never finishes
// unless a reallocation raises its rate, which replaces the event.
const maxEta = time.Duration(math.MaxInt64 / 2)

// completionEta returns the ceil-rounded delay until work `remaining`
// drains at `rate`, at least 1ns (a truncated ETA would leave a sliver
// and loop at the same virtual time), at most maxEta.
func completionEta(remaining, rate float64) time.Duration {
	sec := remaining / rate
	if sec >= maxEta.Seconds() {
		return maxEta
	}
	eta := time.Duration(math.Ceil(sec * float64(time.Second)))
	if eta < 1 {
		eta = 1
	}
	return eta
}

func (s *FluidSystem) finish(c *FluidConsumer) {
	if !c.live {
		return
	}
	c.settle()
	// Finished when within tolerance, or when the sliver left is smaller
	// than one nanosecond of progress at the current rate (it can never
	// be represented as a future event).
	if c.remaining > c.doneEps() && c.remaining > c.rate*1e-9 {
		// Defensive: real work remains (settle drift). The rate did not
		// change, so reschedule directly from the settled remainder.
		c.done = s.eng.Schedule(completionEta(c.remaining, c.rate), func() { s.finish(c) })
		return
	}
	c.remaining = 0
	s.detach(c)
	s.reallocAround(nil, c.resources)
	if c.OnDone != nil {
		c.OnDone()
	}
}
