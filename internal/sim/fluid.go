package sim

import (
	"fmt"
	"math"
	"time"
)

// The fluid model approximates packet- or tick-level resource sharing with
// piecewise-constant rates: a set of consumers drains work through a set of
// capacity-limited resources, and rates are recomputed with weighted
// max-min fairness (progressive filling) whenever the consumer set or any
// capacity changes. This is the standard fluid approximation used by
// flow-level network simulators; gridlab uses one instance for WAN
// bandwidth sharing (internal/simnet) and one per node for
// proportional-share CPU scheduling (internal/silk).

// FluidResource is a capacity-limited resource, e.g. a link direction or a
// node's CPU. Capacity is in work units per second.
type FluidResource struct {
	Name     string
	capacity float64
	sys      *FluidSystem
}

// Capacity returns the resource's current capacity in units/second.
func (r *FluidResource) Capacity() float64 { return r.capacity }

// SetCapacity changes the capacity and reallocates all rates.
func (r *FluidResource) SetCapacity(c float64) {
	if c < 0 || math.IsNaN(c) {
		panic(fmt.Sprintf("sim: invalid capacity %v for %s", c, r.Name))
	}
	r.capacity = c
	r.sys.reallocate()
}

// FluidConsumer is one unit of demand draining through one or more
// resources simultaneously (a network flow traverses both endpoints'
// access links; a CPU task uses one CPU).
type FluidConsumer struct {
	Name string
	// Weight sets the consumer's share relative to competitors (stride /
	// proportional-share semantics). Must be > 0.
	Weight float64
	// Limit caps the consumer's rate independent of fair share, in
	// units/second; 0 means unlimited. Used for TCP loss-limited rates and
	// token-bucket ceilings.
	Limit float64
	// OnDone fires when Remaining reaches zero; the consumer is removed
	// before the callback runs.
	OnDone func()

	remaining  float64
	total      float64
	rate       float64
	resources  []*FluidResource
	sys        *FluidSystem
	done       Event
	lastUpdate time.Duration
	started    time.Duration
}

// doneEps is the absolute remaining-work tolerance below which the
// consumer counts as finished; it scales with the original work size to
// absorb float drift from repeated settling of large transfers.
func (c *FluidConsumer) doneEps() float64 { return 1e-9 * (1 + c.total) }

// Rate returns the currently allocated rate in units/second.
func (c *FluidConsumer) Rate() float64 { return c.rate }

// Remaining returns the work left as of the current virtual time.
func (c *FluidConsumer) Remaining() float64 {
	c.settle()
	return c.remaining
}

// Started returns the virtual time the consumer was added.
func (c *FluidConsumer) Started() time.Duration { return c.started }

// settle charges progress since the last update at the current rate.
func (c *FluidConsumer) settle() {
	now := c.sys.eng.Now()
	if now > c.lastUpdate {
		c.remaining -= c.rate * (now - c.lastUpdate).Seconds()
		if c.remaining < 0 {
			c.remaining = 0
		}
	}
	c.lastUpdate = now
}

// FluidSystem owns a set of resources and the consumers draining through
// them, recomputing the weighted max-min fair allocation on every change.
type FluidSystem struct {
	eng       *Engine
	resources []*FluidResource
	consumers map[*FluidConsumer]struct{}
	order     []*FluidConsumer // insertion order, for deterministic iteration
}

// NewFluidSystem returns an empty system bound to the engine.
func NewFluidSystem(eng *Engine) *FluidSystem {
	return &FluidSystem{
		eng:       eng,
		consumers: make(map[*FluidConsumer]struct{}),
	}
}

// NewResource registers a resource with the given capacity (units/sec).
func (s *FluidSystem) NewResource(name string, capacity float64) *FluidResource {
	if capacity < 0 || math.IsNaN(capacity) {
		panic(fmt.Sprintf("sim: invalid capacity %v for %s", capacity, name))
	}
	r := &FluidResource{Name: name, capacity: capacity, sys: s}
	s.resources = append(s.resources, r)
	return r
}

// Add starts a consumer with the given amount of work across the listed
// resources and returns it. A consumer with no resources is limited only
// by its Limit (or runs instantaneously if Limit is 0 — disallowed).
func (s *FluidSystem) Add(c *FluidConsumer, work float64, resources ...*FluidResource) *FluidConsumer {
	if c.Weight <= 0 {
		panic(fmt.Sprintf("sim: consumer %q weight %v must be positive", c.Name, c.Weight))
	}
	if work < 0 || math.IsNaN(work) {
		panic(fmt.Sprintf("sim: consumer %q invalid work %v", c.Name, work))
	}
	if len(resources) == 0 && c.Limit <= 0 {
		panic(fmt.Sprintf("sim: consumer %q needs a resource or a rate limit", c.Name))
	}
	for _, r := range resources {
		if r.sys != s {
			panic(fmt.Sprintf("sim: consumer %q uses resource %q from another system", c.Name, r.Name))
		}
	}
	c.sys = s
	c.remaining = work
	c.total = work
	c.resources = append([]*FluidResource(nil), resources...)
	c.lastUpdate = s.eng.Now()
	c.started = s.eng.Now()
	s.consumers[c] = struct{}{}
	s.order = append(s.order, c)
	s.reallocate()
	return c
}

// Remove cancels a consumer without firing OnDone. Safe on finished ones.
func (s *FluidSystem) Remove(c *FluidConsumer) {
	if _, ok := s.consumers[c]; !ok {
		return
	}
	c.settle()
	s.detach(c)
	s.reallocate()
}

func (s *FluidSystem) detach(c *FluidConsumer) {
	delete(s.consumers, c)
	for i, x := range s.order {
		if x == c {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.eng.Cancel(c.done)
	c.done = Event{}
	c.rate = 0
}

// Len returns the number of active consumers.
func (s *FluidSystem) Len() int { return len(s.consumers) }

// reallocate recomputes all rates via weighted progressive filling and
// reschedules completion events.
func (s *FluidSystem) reallocate() {
	// Charge elapsed progress at old rates first.
	for _, c := range s.order {
		c.settle()
	}
	// Fire any consumers that finished exactly now.
	var finished []*FluidConsumer
	for _, c := range s.order {
		if c.remaining <= c.doneEps() {
			finished = append(finished, c)
		}
	}
	for _, c := range finished {
		s.detach(c)
	}

	// Progressive filling over the unfrozen set.
	avail := make(map[*FluidResource]float64, len(s.resources))
	for _, r := range s.resources {
		avail[r] = r.capacity
	}
	unfrozen := make(map[*FluidConsumer]struct{}, len(s.order))
	for _, c := range s.order {
		unfrozen[c] = struct{}{}
		c.rate = 0
	}
	for len(unfrozen) > 0 {
		// Per-resource fair share per unit weight.
		weightOn := make(map[*FluidResource]float64)
		for _, c := range s.order {
			if _, ok := unfrozen[c]; !ok {
				continue
			}
			for _, r := range c.resources {
				weightOn[r] += c.Weight
			}
		}
		// The binding constraint is the minimum of resource ratios and
		// consumer cap ratios (Limit/Weight).
		minRatio := math.Inf(1)
		var minRes *FluidResource
		var minCapped *FluidConsumer
		for _, r := range s.resources {
			w := weightOn[r]
			if w == 0 {
				continue
			}
			ratio := avail[r] / w
			if ratio < minRatio {
				minRatio, minRes, minCapped = ratio, r, nil
			}
		}
		for _, c := range s.order {
			if _, ok := unfrozen[c]; !ok {
				continue
			}
			if c.Limit > 0 {
				ratio := c.Limit / c.Weight
				if ratio < minRatio {
					minRatio, minRes, minCapped = ratio, nil, c
				}
			}
		}
		switch {
		case minCapped != nil:
			// One consumer hits its rate cap below everyone's fair share.
			minCapped.rate = minCapped.Limit
			for _, r := range minCapped.resources {
				avail[r] -= minCapped.rate
				if avail[r] < 0 {
					avail[r] = 0
				}
			}
			delete(unfrozen, minCapped)
		case minRes != nil:
			// A resource saturates: freeze everyone crossing it.
			for _, c := range s.order {
				if _, ok := unfrozen[c]; !ok {
					continue
				}
				uses := false
				for _, r := range c.resources {
					if r == minRes {
						uses = true
						break
					}
				}
				if !uses {
					continue
				}
				c.rate = c.Weight * minRatio
				for _, r := range c.resources {
					avail[r] -= c.rate
					if avail[r] < 0 {
						avail[r] = 0
					}
				}
				delete(unfrozen, c)
			}
			avail[minRes] = 0
		default:
			// Only unconstrained, uncapped consumers remain (no resources
			// at all would have been rejected at Add). Nothing binds: this
			// can only happen when all their resources have infinite
			// capacity — treat as unlimited via a large finite rate.
			for c := range unfrozen {
				c.rate = math.Inf(1)
			}
			unfrozen = nil
		}
	}

	// Reschedule completions at the new rates.
	for _, c := range s.order {
		s.eng.Cancel(c.done)
		c.done = Event{}
		if c.rate > 0 && !math.IsInf(c.rate, 1) {
			// Round up to whole nanoseconds so the completion event never
			// fires before the work is actually done (a truncated ETA
			// would leave a sliver and loop at the same virtual time).
			eta := time.Duration(math.Ceil(c.remaining / c.rate * float64(time.Second)))
			if eta < 1 {
				eta = 1
			}
			cc := c
			c.done = s.eng.Schedule(eta, func() { s.finish(cc) })
		} else if math.IsInf(c.rate, 1) {
			cc := c
			c.done = s.eng.Schedule(0, func() { s.finish(cc) })
		}
	}

	// Run completion callbacks for consumers that were already done when
	// we entered (after rates are consistent).
	for _, c := range finished {
		if c.OnDone != nil {
			c.OnDone()
		}
	}
}

func (s *FluidSystem) finish(c *FluidConsumer) {
	if _, ok := s.consumers[c]; !ok {
		return
	}
	c.settle()
	// Finished when within tolerance, or when the sliver left is smaller
	// than one nanosecond of progress at the current rate (it can never
	// be represented as a future event).
	if c.remaining > c.doneEps() && c.remaining > c.rate*1e-9 {
		// A rate change left real work; reallocate reschedules it.
		s.reallocate()
		return
	}
	c.remaining = 0
	s.detach(c)
	s.reallocate()
	if c.OnDone != nil {
		c.OnDone()
	}
}
