package sim

import (
	"fmt"
	"reflect"
	"unsafe"
)

// snapwalk is the deep-state capture machinery behind Engine.Snapshot: a
// reflection walker that, starting from the engine and its registered
// snapshot roots, records a restorable copy of every piece of mutable
// state it can reach — struct contents, map entries, slice backing
// arrays, and everything reachable through pointers and interfaces,
// including *rand.Rand internals.
//
// The capture is an in-place rewind, not a graph clone: restore writes
// the recorded bytes back into the same objects. Pointer fields are
// restored bitwise, which is correct precisely because the pointed-to
// objects still exist in this process (the snapshot's own references keep
// them alive), so a rewound heap of event closures keeps referring to a
// rewound — and therefore consistent — object graph.
//
// What the walker deliberately does NOT traverse:
//
//   - func values: a closure's captured variables are invisible to
//     reflection. Mutable state may therefore never live only in closure
//     captures of long-lived callbacks; it must be hoisted into a struct
//     the walker can reach (see DESIGN.md §12 for the layer contract).
//     Immutable captures (loop variables, config, pointers to reachable
//     structs) are fine: the func value itself is restored bitwise.
//   - channels and unsafe.Pointer: the simulation layers use neither.
//   - strings: immutable by construction.
type walker struct {
	seen map[seenKey]struct{}

	mems   []memAct
	maps   []mapAct
	slices []sliceAct
}

// seenKey dedupes visited objects. n disambiguates slice views: two
// slices over one backing array with different lengths are different
// restore regions (their saved windows overlap consistently, since both
// were captured at the same instant).
type seenKey struct {
	p unsafe.Pointer
	t reflect.Type
	n int
}

// memAct restores one addressable region (a pointer target) bitwise.
type memAct struct {
	dst   reflect.Value // addressable, non-RO
	saved reflect.Value // private copy taken at capture time
}

// mapAct restores one map to its captured key set and values: every
// current key is deleted, then the saved pairs are reinserted.
type mapAct struct {
	m  reflect.Value
	kv []reflect.Value // flattened key/value pairs
}

// sliceAct restores the [0:len] window of one slice's backing array.
type sliceAct struct {
	dst   reflect.Value // the captured slice header (non-RO)
	saved reflect.Value // private element copy
}

func newWalker() *walker {
	return &walker{seen: make(map[seenKey]struct{})}
}

// launder strips reflect's read-only flag from an addressable value, so
// unexported fields can be copied out and restored into. This is the
// standard reflect.NewAt trick; it never violates the memory model — the
// kernel is single-threaded and restore happens between events.
func launder(v reflect.Value) reflect.Value {
	if v.CanSet() {
		return v
	}
	return reflect.NewAt(v.Type(), unsafe.Pointer(v.UnsafeAddr())).Elem()
}

// capture records the object at ptr (an addressable target of type t)
// and scans it for further references. It is the entry point for pointer
// targets, including the Engine itself.
func (w *walker) capture(ptr unsafe.Pointer, t reflect.Type) {
	key := seenKey{p: ptr, t: t, n: -1}
	if _, dup := w.seen[key]; dup {
		return
	}
	w.seen[key] = struct{}{}
	obj := reflect.NewAt(t, ptr).Elem()
	saved := reflect.New(t).Elem()
	saved.Set(obj)
	w.mems = append(w.mems, memAct{dst: obj, saved: saved})
	w.scan(obj)
}

// scan walks v looking for reference types to follow. v's own bytes are
// assumed already saved by the caller (as part of an enclosing object,
// slice window, or map entry), so scan never records v itself.
func (w *walker) scan(v reflect.Value) {
	switch v.Kind() {
	case reflect.Ptr:
		if v.IsNil() {
			return
		}
		w.capture(unsafe.Pointer(v.Pointer()), v.Type().Elem())

	case reflect.Interface:
		if v.IsNil() {
			return
		}
		dyn := v.Elem()
		if dyn.Kind() == reflect.Ptr || dyn.Kind() == reflect.Map ||
			dyn.Kind() == reflect.Slice || dyn.Kind() == reflect.Interface {
			w.scan(dyn)
			return
		}
		// A non-pointer value boxed in an interface is immutable (nothing
		// can take its address), but it may still carry references.
		w.scanInside(dyn)

	case reflect.Map:
		w.captureMap(v)

	case reflect.Slice:
		w.captureSlice(v)

	case reflect.Struct, reflect.Array:
		w.scanInside(v)
	}
}

// scanInside recurses into the fields/elements of a struct or array (or
// the reference kinds of any other value) without saving its bytes.
func (w *walker) scanInside(v reflect.Value) {
	switch v.Kind() {
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < v.NumField(); i++ {
			if !hasRefs(t.Field(i).Type) {
				continue
			}
			fv := v.Field(i)
			if fv.CanAddr() {
				fv = launder(fv)
			}
			w.scan(fv)
		}
	case reflect.Array:
		if !hasRefs(v.Type().Elem()) {
			return
		}
		for i := 0; i < v.Len(); i++ {
			w.scan(v.Index(i))
		}
	default:
		w.scan(v)
	}
}

// captureMap records a map's current entries for clear-and-reinsert
// restore, then scans keys and values.
func (w *walker) captureMap(m reflect.Value) {
	if m.IsNil() {
		return
	}
	key := seenKey{p: unsafe.Pointer(m.Pointer()), t: m.Type(), n: -1}
	if _, dup := w.seen[key]; dup {
		return
	}
	w.seen[key] = struct{}{}
	if !m.CanSet() && !canWriteMap(m) {
		panic(fmt.Sprintf("sim: snapshot cannot restore read-only map of type %v "+
			"(reached through an opaque interface value; hoist it into a struct field)", m.Type()))
	}
	kt, vt := m.Type().Key(), m.Type().Elem()
	kv := make([]reflect.Value, 0, 2*m.Len())
	it := m.MapRange()
	for it.Next() {
		k := reflect.New(kt).Elem()
		k.Set(it.Key())
		val := reflect.New(vt).Elem()
		val.Set(it.Value())
		kv = append(kv, k, val)
	}
	w.maps = append(w.maps, mapAct{m: m, kv: kv})
	for i := 0; i < len(kv); i += 2 {
		if hasRefs(kt) {
			w.scan(kv[i])
		}
		if hasRefs(vt) {
			w.scan(kv[i+1])
		}
	}
}

// canWriteMap reports whether SetMapIndex will work on m: reflect forbids
// writes through values flagged read-only. Laundered struct fields are
// writable; only maps dug out of opaque boxed values are not.
func canWriteMap(m reflect.Value) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	// SetMapIndex with a zero key probe would mutate; instead test the RO
	// flag indirectly: Interface() panics exactly when the value is RO.
	_ = m.Interface()
	return true
}

// captureSlice records the [0:len] window of a slice for content restore,
// then scans the elements.
func (w *walker) captureSlice(s reflect.Value) {
	if s.IsNil() || s.Len() == 0 {
		return
	}
	key := seenKey{p: unsafe.Pointer(s.Pointer()), t: s.Type(), n: s.Len()}
	if _, dup := w.seen[key]; dup {
		return
	}
	w.seen[key] = struct{}{}
	saved := reflect.MakeSlice(s.Type(), s.Len(), s.Len())
	reflect.Copy(saved, s)
	w.slices = append(w.slices, sliceAct{dst: s, saved: saved})
	if !hasRefs(s.Type().Elem()) {
		return
	}
	for i := 0; i < s.Len(); i++ {
		// Slice elements are addressable through the header regardless of
		// how the header itself was reached.
		w.scan(launder(s.Index(i)))
	}
}

// restore writes every recorded region back. Order does not matter: all
// actions were captured at one instant and write disjoint (or identically
// saved, for aliased slice windows) regions.
func (w *walker) restore() {
	for i := range w.mems {
		w.mems[i].dst.Set(w.mems[i].saved)
	}
	for i := range w.slices {
		reflect.Copy(w.slices[i].dst, w.slices[i].saved)
	}
	zero := reflect.Value{}
	for i := range w.maps {
		m := w.maps[i].m
		// Delete keys added (or kept) since the snapshot...
		live := make([]reflect.Value, 0, m.Len())
		it := m.MapRange()
		for it.Next() {
			k := reflect.New(m.Type().Key()).Elem()
			k.Set(it.Key())
			live = append(live, k)
		}
		for _, k := range live {
			m.SetMapIndex(k, zero)
		}
		// ...then reinsert the captured entries.
		kv := w.maps[i].kv
		for j := 0; j < len(kv); j += 2 {
			m.SetMapIndex(kv[j], kv[j+1])
		}
	}
}

// hasRefs reports whether values of type t can contain anything the
// walker must follow or separately restore (pointers, maps, slices,
// interfaces). Pure-scalar types (and strings/funcs/chans, which are
// leaves) are fully handled by the enclosing bitwise copy, so the walker
// can skip them — this prunes most of a big struct's fields.
func hasRefs(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Ptr, reflect.Map, reflect.Slice, reflect.Interface:
		return true
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if hasRefs(t.Field(i).Type) {
				return true
			}
		}
		return false
	case reflect.Array:
		return hasRefs(t.Elem())
	default:
		return false
	}
}
