package sim

import (
	"fmt"
	"reflect"
	"time"
	"unsafe"
)

// Snapshot/Fork: copy-on-demand time travel for the kernel and everything
// built on it.
//
// Snapshot captures the engine's complete state — clock, sequence
// numbers, event heap, node store, free list, rng stream — together with
// the deep state of every registered snapshot root (see SnapRoot).
// Fork rewinds the engine, in place, back to that captured state.
//
// The model is sequential time travel, not parallel cloning: the heap is
// full of closures over the live object graph, so the only way a restored
// heap stays meaningful is if the graph it points into is restored with
// it. Fork therefore returns the SAME *Engine, rewound; at most one
// timeline is alive at a time, and a snapshot may be forked any number of
// times (each Fork abandons the current timeline). Parallel sweeps keep
// their parallelism one level up — one engine per worker, sequential
// forks within it — which internal/perf/chaos exploits.
//
// Correctness contract: a forked run is byte-identical to a cold run that
// reaches the fork point by executing the same schedule. The differential
// harness in internal/sim/snaptest (and the faultlab/core gates built on
// it) enforce this across a seed grid under -race.

// snapRoot is one registered object-graph anchor for the deep walker.
type snapRoot struct {
	name string
	val  any
}

// snapHook is a save/restore callback pair for state the walker cannot
// reach (closure-local by necessity, external caches, ...).
type snapHook struct {
	save    func() any
	restore func(any)
}

// SnapRoot registers an object graph to be captured by Snapshot and
// rewound by Fork. The walker follows struct fields (exported or not),
// pointers, interfaces, maps, and slices; it does NOT look inside func
// values, so mutable state captured only by closures must be hoisted into
// a struct reachable from some root. Roots registered after a snapshot
// was taken are forgotten by its Fork (the registry itself is rewound).
func (e *Engine) SnapRoot(name string, root any) {
	if root == nil {
		panic("sim: nil snapshot root")
	}
	if rv := reflect.ValueOf(root); rv.Kind() != reflect.Ptr && rv.Kind() != reflect.Map {
		panic(fmt.Sprintf("sim: snapshot root %q must be a pointer or map, got %T", name, root))
	}
	e.snapRoots = append(e.snapRoots, snapRoot{name: name, val: root})
}

// OnSnap registers a save/restore hook: save runs at Snapshot time and
// its result is handed back to restore after every Fork of that snapshot.
// Use it only for state the walker genuinely cannot reach; prefer
// SnapRoot.
func (e *Engine) OnSnap(save func() any, restore func(any)) {
	if save == nil || restore == nil {
		panic("sim: nil snapshot hook")
	}
	e.snapHooks = append(e.snapHooks, snapHook{save: save, restore: restore})
}

// Snapshot is a captured engine state; Fork rewinds the engine back to
// it. The zero Snapshot is invalid.
type Snapshot struct {
	eng   *Engine
	w     *walker
	hooks []hookSave
	// at is the capture-time clock, for assertions and bisect bookkeeping.
	at time.Duration
}

type hookSave struct {
	restore func(any)
	val     any
}

// Snapshot captures the engine and all registered roots. It must be
// called between events (never from inside a running callback) and has
// zero behavioural cost: the capture only reads state, so a
// snapshot-then-continue run is byte-identical to never snapshotting.
func (e *Engine) Snapshot() Snapshot {
	w := newWalker()
	w.capture(unsafe.Pointer(e), reflect.TypeOf(*e))
	s := Snapshot{eng: e, w: w, at: e.now}
	for _, h := range e.snapHooks {
		s.hooks = append(s.hooks, hookSave{restore: h.restore, val: h.save()})
	}
	return s
}

// At returns the virtual time at which the snapshot was captured.
func (s *Snapshot) At() time.Duration { return s.at }

// Fork rewinds the engine — in place — to the snapshot point and returns
// it. The current timeline is abandoned: its pending events, object
// state, and rng position are all rolled back. Event handles minted in
// the abandoned timeline become permanent no-ops (generations are never
// reused across timelines), while handles that were live at capture time
// are live again.
func (s *Snapshot) Fork() *Engine {
	e := s.eng
	if e == nil {
		panic("sim: Fork on zero Snapshot")
	}
	// The generation counter survives the rewind: it is what guarantees
	// cross-timeline handle uniqueness.
	gen := e.genCounter
	s.w.restore()
	if gen > e.genCounter {
		e.genCounter = gen
	}
	for _, h := range s.hooks {
		h.restore(h.val)
	}
	return e
}
