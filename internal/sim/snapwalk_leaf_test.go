package sim

import (
	"testing"
	"unsafe"
)

// leafBox holds one field of every kind the snapshot walker treats as a
// leaf, plus a scalar control. The walker saves and restores the struct
// bitwise, so the field WORDS (func value, chan reference, string
// header, raw pointer) rewind on Fork — but nothing BEHIND those words
// is captured: closure cells, channel buffers, and unsafe pointees all
// survive the rewind.
type leafBox struct {
	fn func() int
	ch chan int
	s  string
	up unsafe.Pointer
	n  int
}

// TestSnapwalkLeafSemantics is the table the snapshot-safety analyzers
// (snapcapture, snapleaf, snaproot) enforce by construction: each row
// pins one side of the leaf contract — which mutations Fork rewinds
// (field words) and which it provably cannot (state reachable only
// through a leaf). If a row in the "survives" half ever starts
// rewinding, the walker grew a capability the analyzers assume absent;
// if a row in the "rewinds" half breaks, Fork lost bitwise restore.
func TestSnapwalkLeafSemantics(t *testing.T) {
	one := func() int { return 1 }
	two := func() int { return 2 }
	var counter int
	var chA, chB chan int
	var x, y int

	cases := []struct {
		name   string
		setup  func(b *leafBox)
		mutate func(b *leafBox)
		verify func(t *testing.T, b *leafBox)
	}{
		{
			name:   "scalar field rewinds (control)",
			setup:  func(b *leafBox) { b.n = 1 },
			mutate: func(b *leafBox) { b.n = 2 },
			verify: func(t *testing.T, b *leafBox) {
				if b.n != 1 {
					t.Fatalf("n = %d after fork, want 1", b.n)
				}
			},
		},
		{
			name:   "string field rewinds (immutable, header restore is complete)",
			setup:  func(b *leafBox) { b.s = "before" },
			mutate: func(b *leafBox) { b.s = "after" },
			verify: func(t *testing.T, b *leafBox) {
				if b.s != "before" {
					t.Fatalf("s = %q after fork, want %q", b.s, "before")
				}
			},
		},
		{
			name:   "func field word rewinds",
			setup:  func(b *leafBox) { b.fn = one },
			mutate: func(b *leafBox) { b.fn = two },
			verify: func(t *testing.T, b *leafBox) {
				if got := b.fn(); got != 1 {
					t.Fatalf("fn() = %d after fork, want 1 (pre-snapshot func value)", got)
				}
			},
		},
		{
			name: "closure captures survive the rewind",
			setup: func(b *leafBox) {
				counter = 0
				b.fn = func() int { counter++; return counter }
			},
			mutate: func(b *leafBox) { b.fn(); b.fn(); b.fn() },
			verify: func(t *testing.T, b *leafBox) {
				// The func word rewound to the same closure, but its capture
				// cell kept the post-snapshot count: this is the bug class
				// snapcapture exists to catch.
				if got := b.fn(); got != 4 {
					t.Fatalf("fn() = %d after fork, want 4 (captures are walker-invisible)", got)
				}
			},
		},
		{
			name: "chan field word rewinds",
			setup: func(b *leafBox) {
				chA, chB = make(chan int, 1), make(chan int, 1)
				b.ch = chA
			},
			mutate: func(b *leafBox) { b.ch = chB },
			verify: func(t *testing.T, b *leafBox) {
				if b.ch != chA {
					t.Fatal("ch is not the pre-snapshot channel after fork")
				}
			},
		},
		{
			name: "chan buffer survives the rewind",
			setup: func(b *leafBox) {
				b.ch = make(chan int, 2)
			},
			mutate: func(b *leafBox) { b.ch <- 42 },
			verify: func(t *testing.T, b *leafBox) {
				// The element enqueued after the snapshot is still buffered:
				// channel internals are runtime state the walker cannot copy,
				// which is why snapleaf flags chan fields unconditionally.
				if got := len(b.ch); got != 1 {
					t.Fatalf("len(ch) = %d after fork, want 1 (buffers are walker-invisible)", got)
				}
			},
		},
		{
			name: "unsafe.Pointer word rewinds, pointee survives",
			setup: func(b *leafBox) {
				x, y = 1, 0
				b.up = unsafe.Pointer(&x)
			},
			mutate: func(b *leafBox) {
				*(*int)(b.up) = 9
				b.up = unsafe.Pointer(&y)
			},
			verify: func(t *testing.T, b *leafBox) {
				if b.up != unsafe.Pointer(&x) {
					t.Fatal("up is not the pre-snapshot pointer after fork")
				}
				// The walker restored the word but never followed it: the
				// typeless pointee kept its post-snapshot value.
				if x != 9 {
					t.Fatalf("x = %d after fork, want 9 (unsafe pointees are walker-invisible)", x)
				}
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEngine(1)
			b := &leafBox{}
			e.SnapRoot("leafbox", b)
			tc.setup(b)
			snap := e.Snapshot()
			tc.mutate(b)
			snap.Fork()
			tc.verify(t, b)
		})
	}
}
