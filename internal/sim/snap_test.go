package sim

import (
	"fmt"
	"testing"
	"time"
)

// record runs a fixed little workload and returns its observable log:
// fired events with times plus rng draws, enough to expose clock, heap
// order, and rng divergence.
type recorder struct {
	eng *Engine
	log []string
}

func (r *recorder) emit(tag string) {
	r.log = append(r.log, fmt.Sprintf("%v %s", r.eng.Now(), tag))
}

func (r *recorder) draw(tag string) {
	r.log = append(r.log, fmt.Sprintf("%v %s rng=%d", r.eng.Now(), tag, r.eng.Rand().Intn(1_000_000)))
}

// TestForkRewindsKernelState proves a forked run replays exactly: clock,
// event order, rng stream, and pending events all rewind.
func TestForkRewindsKernelState(t *testing.T) {
	e := NewEngine(7)
	r := &recorder{eng: e}
	e.SnapRoot("recorder", r)

	var tick func(n int)
	tick = func(n int) {
		r.draw(fmt.Sprintf("tick%d", n))
		if n < 6 {
			e.Schedule(time.Duration(1+n)*time.Second, func() { tick(n + 1) })
		}
	}
	e.Schedule(time.Second, func() { tick(0) })
	e.RunUntil(3 * time.Second) // ticks 0,1 fired, tick2 pending

	snap := e.Snapshot()
	if snap.At() != 3*time.Second {
		t.Fatalf("snapshot at %v, want 3s", snap.At())
	}
	e.Run()
	first := append([]string(nil), r.log...)

	snap.Fork()
	if e.Now() != 3*time.Second {
		t.Fatalf("fork rewound clock to %v, want 3s", e.Now())
	}
	e.Run()
	second := r.log

	if len(first) != len(second) {
		t.Fatalf("forked run length %d, cold %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("forked run diverged at %d: %q vs %q", i, second[i], first[i])
		}
	}
}

// TestForkRepeatedly proves one snapshot supports many forks, each
// replaying identically.
func TestForkRepeatedly(t *testing.T) {
	e := NewEngine(3)
	r := &recorder{eng: e}
	e.SnapRoot("recorder", r)
	tk := e.NewTicker(time.Second, func() { r.draw("tick") })
	defer tk.Stop()
	e.RunUntil(2 * time.Second)
	snap := e.Snapshot()

	var runs [][]string
	for i := 0; i < 3; i++ {
		snap.Fork()
		e.RunUntil(10 * time.Second)
		runs = append(runs, append([]string(nil), r.log...))
	}
	for i := 1; i < len(runs); i++ {
		if fmt.Sprint(runs[i]) != fmt.Sprint(runs[0]) {
			t.Fatalf("fork %d diverged:\n%v\nvs\n%v", i, runs[i], runs[0])
		}
	}
}

// TestSnapshotPurity proves taking a snapshot (and never forking it) has
// zero behavioural cost: the continued run is identical to a run that
// never snapshotted.
func TestSnapshotPurity(t *testing.T) {
	run := func(snapshotAt2s bool) []string {
		e := NewEngine(11)
		r := &recorder{eng: e}
		e.SnapRoot("recorder", r)
		tk := e.NewTicker(700*time.Millisecond, func() { r.draw("tick") })
		defer tk.Stop()
		e.RunUntil(2 * time.Second)
		if snapshotAt2s {
			_ = e.Snapshot()
		}
		e.RunUntil(6 * time.Second)
		return r.log
	}
	plain, snapped := run(false), run(true)
	if fmt.Sprint(plain) != fmt.Sprint(snapped) {
		t.Fatalf("snapshot perturbed the run:\n%v\nvs\n%v", snapped, plain)
	}
}

// TestStaleHandlesAcrossForks is the handle-reuse regression table: after
// free-list recycling, a handle from one timeline must be a permanent
// no-op in every other timeline — cancelling it neither fires nor kills
// whatever now occupies its node slot.
func TestStaleHandlesAcrossForks(t *testing.T) {
	cases := []struct {
		name string
		// mint returns the handle to attack with, given the engine and a
		// snapshot point; the returned handle belongs to the PARENT
		// timeline (minted before or after the snapshot as the case
		// dictates).
		run func(t *testing.T)
	}{
		{"parent-handle-cancelled-in-child", func(t *testing.T) {
			e := NewEngine(1)
			fired := &struct{ n int }{}
			e.SnapRoot("fired", fired)
			snap := e.Snapshot()
			// Parent timeline: mint a handle, let the node recycle.
			parentEv := e.Schedule(time.Second, func() { fired.n++ })
			e.Run()
			if fired.n != 1 {
				t.Fatalf("parent event did not fire")
			}
			// Child timeline: the same node index gets reused for a new
			// event. Cancelling the parent handle must not touch it.
			snap.Fork()
			childFired := false
			e.Schedule(time.Second, func() { childFired = true })
			e.Cancel(parentEv)
			if parentEv.Cancelled() {
				t.Fatalf("stale parent handle reports cancelled")
			}
			e.Run()
			if !childFired {
				t.Fatalf("cancelling a stale parent handle killed the child's event")
			}
		}},
		{"child-handle-cancelled-after-refork", func(t *testing.T) {
			e := NewEngine(2)
			marker := &struct{ n int }{}
			e.SnapRoot("marker", marker)
			snap := e.Snapshot()
			// Timeline 1: mint and abandon a pending handle.
			t1Ev := e.Schedule(time.Minute, func() { marker.n = 100 })
			// Timeline 2: same node index hosts a different event; the
			// timeline-1 handle must be inert both for Cancel and state.
			snap.Fork()
			ok := false
			e.Schedule(time.Second, func() { ok = true })
			e.Cancel(t1Ev)
			if t1Ev.Cancelled() {
				t.Fatalf("abandoned-timeline handle reports cancelled")
			}
			e.Run()
			if !ok || marker.n != 0 {
				t.Fatalf("stale handle perturbed the new timeline (ok=%v marker=%d)", ok, marker.n)
			}
		}},
		{"presnapshot-handle-live-again-after-fork", func(t *testing.T) {
			e := NewEngine(3)
			n := &struct{ fired int }{}
			e.SnapRoot("n", n)
			ev := e.Schedule(time.Minute, func() { n.fired++ })
			snap := e.Snapshot()
			e.Run()
			if n.fired != 1 {
				t.Fatalf("event did not fire in parent")
			}
			snap.Fork()
			// The handle was pending at capture time, so it is pending
			// again — and cancellable — in the child.
			e.Cancel(ev)
			e.Run()
			if n.fired != 0 {
				t.Fatalf("restored pending event survived cancellation (fired=%d)", n.fired)
			}
		}},
		{"handle-beyond-restored-nodes", func(t *testing.T) {
			e := NewEngine(4)
			snap := e.Snapshot() // zero nodes captured
			var evs []Event
			for i := 0; i < 64; i++ {
				evs = append(evs, e.Schedule(time.Duration(i)*time.Millisecond, func() {}))
			}
			snap.Fork() // nodes slice rewound to empty
			for _, ev := range evs {
				// Must not panic on out-of-range node indexes, and must be
				// inert.
				if ev.Cancelled() {
					t.Fatalf("stale handle beyond restored nodes reports cancelled")
				}
				e.Cancel(ev)
			}
			if got := e.Pending(); got != 0 {
				t.Fatalf("pending = %d after rewind, want 0", got)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { tc.run(t) })
	}
}

// TestForkRestoresFluidState proves mid-transfer fluid consumers rewind:
// remaining work, rates, and completion events all replay.
func TestForkRestoresFluidState(t *testing.T) {
	e := NewEngine(5)
	sys := NewFluidSystem(e)
	res := sys.NewResource("link", 100) // 100 units/s
	done := &struct{ log []string }{}
	e.SnapRoot("done", done)
	e.SnapRoot("sys", sys)

	c1 := &FluidConsumer{Name: "a", Weight: 1, OnDone: func() { done.log = append(done.log, fmt.Sprintf("a@%v", e.Now())) }}
	sys.Add(c1, 1000, res) // 10s alone
	e.RunUntil(2 * time.Second)

	snap := e.Snapshot()
	run := func() []string {
		c2 := &FluidConsumer{Name: "b", Weight: 1, OnDone: func() { done.log = append(done.log, fmt.Sprintf("b@%v", e.Now())) }}
		sys.Add(c2, 400, res)
		e.RunUntil(30 * time.Second)
		return append([]string(nil), done.log...)
	}
	first := run()
	snap.Fork()
	second := run()
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("fluid state diverged after fork:\n%v\nvs\n%v", second, first)
	}
	if len(first) != 2 {
		t.Fatalf("expected both consumers to finish, got %v", first)
	}
}

// TestOnSnapHook proves the escape hatch: state invisible to the walker
// round-trips through the save/restore callbacks.
func TestOnSnapHook(t *testing.T) {
	e := NewEngine(6)
	hidden := 1 // closure-local on purpose
	e.OnSnap(func() any { return hidden }, func(v any) { hidden = v.(int) })
	snap := e.Snapshot()
	hidden = 99
	snap.Fork()
	if hidden != 1 {
		t.Fatalf("OnSnap hook did not restore: hidden=%d", hidden)
	}
}

// TestForkPreservesGenerationMonotonicity: generations minted after a
// fork must exceed every generation the abandoned timeline minted.
func TestForkPreservesGenerationMonotonicity(t *testing.T) {
	e := NewEngine(8)
	snap := e.Snapshot()
	for i := 0; i < 1000; i++ {
		e.Schedule(0, func() {})
	}
	e.Run()
	gen := e.genCounter
	snap.Fork()
	if e.genCounter < gen {
		t.Fatalf("fork rewound the generation counter: %d < %d", e.genCounter, gen)
	}
}
