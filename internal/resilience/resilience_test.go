package resilience

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

func newExec(t *testing.T, seed int64, pol Policy) (*sim.Engine, *Executor) {
	t.Helper()
	eng := sim.NewEngine(seed)
	return eng, NewExecutor(eng, eng.ForkRand(), pol, nil)
}

func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	eng, ex := newExec(t, 1, Policy{Base: 10 * time.Second, Cap: time.Minute, Mult: 2, Jitter: time.Second})
	fails := 3
	var got error
	settled := false
	ex.Do("op", nil, func(attempt int, done func(error)) {
		if fails > 0 {
			fails--
			done(errors.New("transient"))
			return
		}
		done(nil)
	}, func(err error) { got = err; settled = true })
	eng.Run()
	if !settled || got != nil {
		t.Fatalf("want success, got settled=%v err=%v", settled, got)
	}
	if ex.AttemptsN != 4 || ex.RetriesN != 3 || ex.OKN != 1 {
		t.Fatalf("counter mismatch: attempts=%d retries=%d ok=%d", ex.AttemptsN, ex.RetriesN, ex.OKN)
	}
	// Three backoffs of >= 10s+20s+40s must have elapsed on the virtual clock.
	if eng.Now() < 70*time.Second {
		t.Fatalf("backoff did not consume virtual time: now=%v", eng.Now())
	}
}

func TestDoBackoffDeterministicAcrossRuns(t *testing.T) {
	run := func() []time.Duration {
		eng, ex := newExec(t, 42, Policy{Base: 5 * time.Second, Cap: time.Minute, Mult: 2, Jitter: 20 * time.Second, MaxAttempts: 5})
		var at []time.Duration
		ex.Do("op", nil, func(attempt int, done func(error)) {
			at = append(at, eng.Now())
			done(errors.New("always fails"))
		}, func(error) {})
		eng.Run()
		return at
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed produced different attempt schedules:\n%v\n%v", a, b)
	}
	if len(a) != 5 {
		t.Fatalf("want 5 attempts, got %d", len(a))
	}
	// Jitter must actually move at least one attempt off the unjittered grid.
	unjittered := []time.Duration{0, 5 * time.Second, 15 * time.Second, 35 * time.Second, 75 * time.Second}
	same := true
	for i := range a {
		if a[i] != unjittered[i] {
			same = false
		}
	}
	if same {
		t.Fatal("jitter drew nothing from the rand stream")
	}
}

func TestDoMaxAttemptsExhausted(t *testing.T) {
	eng, ex := newExec(t, 1, Policy{Base: time.Second, Cap: time.Minute, Mult: 2, MaxAttempts: 3})
	var got error
	ex.Do("op", nil, func(attempt int, done func(error)) {
		done(errors.New("nope"))
	}, func(err error) { got = err })
	eng.Run()
	if !errors.Is(got, ErrRetriesExhausted) {
		t.Fatalf("want ErrRetriesExhausted, got %v", got)
	}
	if ex.AttemptsN != 3 || ex.FailN != 1 {
		t.Fatalf("attempts=%d fail=%d", ex.AttemptsN, ex.FailN)
	}
}

func TestDoBudgetExhausted(t *testing.T) {
	eng, ex := newExec(t, 1, Policy{Base: time.Minute, Cap: time.Hour, Mult: 2, Budget: 90 * time.Second})
	var got error
	ex.Do("op", nil, func(attempt int, done func(error)) {
		done(errors.New("nope"))
	}, func(err error) { got = err })
	eng.Run()
	if !errors.Is(got, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", got)
	}
	if eng.Now() > 90*time.Second {
		t.Fatalf("retried past the budget: now=%v", eng.Now())
	}
}

func TestDoNonRetryableStopsImmediately(t *testing.T) {
	permanent := errors.New("policy refusal")
	pol := Policy{Base: time.Second, MaxAttempts: 5, Retryable: func(err error) bool { return !errors.Is(err, permanent) }}
	eng, ex := newExec(t, 1, pol)
	var got error
	ex.Do("op", nil, func(attempt int, done func(error)) { done(permanent) }, func(err error) { got = err })
	eng.Run()
	if !errors.Is(got, permanent) {
		t.Fatalf("want the permanent error, got %v", got)
	}
	if ex.AttemptsN != 1 || ex.RetriesN != 0 {
		t.Fatalf("retried a non-retryable error: attempts=%d retries=%d", ex.AttemptsN, ex.RetriesN)
	}
}

func TestDoAttemptTimeout(t *testing.T) {
	eng, ex := newExec(t, 1, Policy{Base: time.Second, MaxAttempts: 2, AttemptTimeout: 30 * time.Second})
	var got error
	calls := 0
	ex.Do("op", nil, func(attempt int, done func(error)) {
		calls++
		// Never settle: the per-attempt deadline must fire.
	}, func(err error) { got = err })
	eng.Run()
	if !errors.Is(got, ErrRetriesExhausted) || !errors.Is(got, ErrAttemptTimeout) {
		t.Fatalf("want exhausted+timeout, got %v", got)
	}
	if calls != 2 {
		t.Fatalf("want 2 attempts, got %d", calls)
	}
}

func TestDoLateSettleAfterDeadlineIgnored(t *testing.T) {
	eng, ex := newExec(t, 1, Policy{Base: time.Second, MaxAttempts: 1, AttemptTimeout: 10 * time.Second})
	var results []error
	ex.Do("op", nil, func(attempt int, done func(error)) {
		eng.Schedule(time.Minute, func() { done(nil) }) // settles after the deadline
	}, func(err error) { results = append(results, err) })
	eng.Run()
	if len(results) != 1 || !errors.Is(results[0], ErrAttemptTimeout) {
		t.Fatalf("want exactly one timeout outcome, got %v", results)
	}
}

func TestBreakerTripHalfOpenReclose(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := BreakerConfig{Threshold: 3, Cooldown: 5 * time.Minute, HalfOpenSuccesses: 1}
	b := NewBreaker(eng, "s0", cfg, nil)

	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		b.Failure()
	}
	if b.State() != StateOpen || b.TripsN != 1 {
		t.Fatalf("want open after threshold, got %s trips=%d", b.State(), b.TripsN)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted an attempt")
	}

	eng.RunUntil(5 * time.Minute)
	if b.State() != StateHalfOpen {
		t.Fatalf("want half-open after cooldown, got %s", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.Success()
	if b.State() != StateClosed || b.ReclosesN != 1 {
		t.Fatalf("want re-closed, got %s recloses=%d", b.State(), b.ReclosesN)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	eng := sim.NewEngine(1)
	b := NewBreaker(eng, "s0", BreakerConfig{Threshold: 1, Cooldown: time.Minute}, nil)
	b.Allow()
	b.Failure()
	eng.RunUntil(time.Minute)
	if !b.Allow() {
		t.Fatal("no probe admitted after cooldown")
	}
	b.Failure()
	if b.State() != StateOpen || b.TripsN != 2 {
		t.Fatalf("want re-opened, got %s trips=%d", b.State(), b.TripsN)
	}
	// Ready must not consume the probe slot.
	eng.RunUntil(2 * time.Minute)
	if !b.Ready() || !b.Ready() {
		t.Fatal("Ready consumed the probe slot")
	}
	if !b.Allow() {
		t.Fatal("probe refused after Ready checks")
	}
}

func TestNilBreakerAlwaysAllows(t *testing.T) {
	var b *Breaker
	if !b.Allow() || !b.Ready() || b.State() != StateClosed {
		t.Fatal("nil breaker must be an open gate")
	}
	b.Success()
	b.Failure() // must not panic
}

func TestExecutorBreakerFastFailRetries(t *testing.T) {
	eng := sim.NewEngine(1)
	ex := NewExecutor(eng, eng.ForkRand(), Policy{Base: time.Minute, Cap: time.Minute, Mult: 1}, nil)
	b := NewBreaker(eng, "s0", BreakerConfig{Threshold: 1, Cooldown: 3 * time.Minute}, nil)
	b.Allow()
	b.Failure() // trip it
	attempts := 0
	var got error
	ex.Do("op", b, func(attempt int, done func(error)) {
		attempts++
		done(nil)
	}, func(err error) { got = err })
	eng.Run()
	if got != nil {
		t.Fatalf("want eventual success through half-open, got %v", got)
	}
	if attempts != 1 {
		t.Fatalf("op ran %d times; fast-fails must not invoke it", attempts)
	}
	if eng.Now() < 3*time.Minute {
		t.Fatalf("succeeded before the cooldown elapsed: now=%v", eng.Now())
	}
	if b.State() != StateClosed {
		t.Fatalf("probe success did not re-close: %s", b.State())
	}
}

func TestBreakerSetDeterministicReporting(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewBreakerSet(eng, BreakerConfig{Threshold: 1, Cooldown: time.Hour}, nil)
	for _, name := range []string{"s2", "s0", "s1"} {
		b := s.For(name)
		b.Allow()
		b.Failure()
	}
	s.For("s3") // untouched, stays closed
	want := []string{"s0", "s1", "s2"}
	got := s.NotClosed()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("NotClosed = %v, want %v", got, want)
	}
	if s.Trips() != 3 || s.Recloses() != 0 {
		t.Fatalf("trips=%d recloses=%d", s.Trips(), s.Recloses())
	}
}

func TestRenewerRenewsBeforeExpiry(t *testing.T) {
	eng := sim.NewEngine(1)
	ex := NewExecutor(eng, eng.ForkRand(), Policy{Base: time.Second, Jitter: 0}, nil)
	r := NewRenewer(eng, ex, RenewerConfig{Lead: 0.25}, nil)
	term := time.Hour
	var renewedAt []time.Duration
	var horizon time.Duration = term
	r.Track("lease1", term, term, nil, func(target time.Duration, done func(error)) {
		renewedAt = append(renewedAt, eng.Now())
		horizon = target
		done(nil)
	})
	eng.RunUntil(3 * time.Hour)
	r.Untrack("lease1")
	if len(renewedAt) < 3 {
		t.Fatalf("want >= 3 renewals over 3 terms, got %d", len(renewedAt))
	}
	// First renewal lands at 75% of the term; each success extends by one term.
	if renewedAt[0] != 45*time.Minute {
		t.Fatalf("first renewal at %v, want 45m", renewedAt[0])
	}
	if horizon <= 3*time.Hour {
		t.Fatalf("horizon %v never got ahead of the clock", horizon)
	}
	if r.RenewedN != len(renewedAt) {
		t.Fatalf("RenewedN=%d, cycles=%d", r.RenewedN, len(renewedAt))
	}
}

func TestRenewerGivesUpAtExpiryBudget(t *testing.T) {
	eng := sim.NewEngine(1)
	ex := NewExecutor(eng, eng.ForkRand(), Policy{Base: 2 * time.Minute, Cap: 2 * time.Minute, Mult: 1, Jitter: 0}, nil)
	r := NewRenewer(eng, ex, RenewerConfig{Lead: 0.25}, nil)
	fail := errors.New("site unreachable")
	attempts := 0
	r.Track("lease1", 20*time.Minute, 20*time.Minute, nil, func(target time.Duration, done func(error)) {
		attempts++
		done(fail)
	})
	eng.RunUntil(time.Hour)
	if r.GiveupsN != 1 {
		t.Fatalf("want exactly one abandoned cycle, got %d (attempts=%d)", r.GiveupsN, attempts)
	}
	if attempts < 2 {
		t.Fatalf("renewer gave up without retrying (attempts=%d)", attempts)
	}
	// All attempts must land before the claim expired.
	if eng.Now() < 20*time.Minute {
		t.Fatal("clock did not advance past expiry")
	}
}

func TestRenewerUntrackCancelsMidFlight(t *testing.T) {
	eng := sim.NewEngine(1)
	ex := NewExecutor(eng, eng.ForkRand(), Policy{Base: time.Minute, Mult: 1, Jitter: 0}, nil)
	r := NewRenewer(eng, ex, RenewerConfig{}, nil)
	calls := 0
	r.Track("x", time.Hour, time.Hour, nil, func(target time.Duration, done func(error)) {
		calls++
		done(errors.New("failing"))
	})
	eng.RunUntil(46 * time.Minute) // first attempt at 45m fails; retry pending
	r.Untrack("x")
	eng.RunUntil(2 * time.Hour)
	if r.Tracked("x") {
		t.Fatal("still tracked after Untrack")
	}
	if calls > 2 {
		t.Fatalf("renewal kept running after Untrack: %d calls", calls)
	}
}

func TestKitConstruction(t *testing.T) {
	eng := sim.NewEngine(7)
	kit := NewKit(eng, eng.ForkRand(), nil)
	if kit.Retry == nil || kit.Breakers == nil || kit.Renewer == nil {
		t.Fatal("kit missing a component")
	}
	if kit.Breakers.For("s0") == nil {
		t.Fatal("breaker set refused to mint")
	}
}

// Regression: an attempt the executor admits (consuming the half-open
// probe slot) may be refused downstream by a second gate over the same
// breaker, settling ErrBreakerOpen. The executor must release the probe
// it holds — otherwise the breaker jams half-open forever, with every
// later Allow refused by a probe nobody is running.
func TestAdmittedBreakerOpenReleasesProbe(t *testing.T) {
	eng, ex := newExec(t, 9, Policy{Base: time.Second, Cap: time.Second, MaxAttempts: 1})
	br := NewBreaker(eng, "site", BreakerConfig{Threshold: 1, Cooldown: time.Minute}, nil)
	br.Failure() // trip
	eng.RunUntil(time.Minute)

	settled := false
	ex.Do("op", br, func(_ int, done func(error)) {
		// Downstream gate consults the same breaker: the slot is held by
		// the executor's own admission, so it refuses.
		if br.Allow() {
			t.Error("downstream gate won the probe the executor already holds")
		}
		done(fmt.Errorf("%w: site", ErrBreakerOpen))
	}, func(error) { settled = true })
	eng.Run()
	if !settled {
		t.Fatal("op never settled")
	}
	if !br.Ready() {
		t.Fatal("probe slot still held after ErrBreakerOpen settle: breaker jammed half-open")
	}
	// The released slot admits a fresh probe, whose success re-closes.
	if !br.Allow() {
		t.Fatal("released probe slot refused a new probe")
	}
	br.Success()
	if br.State() != StateClosed {
		t.Fatalf("state = %s after successful probe", br.State())
	}
}
