package resilience

import (
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// BreakerConfig shapes the per-site circuit breakers.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that trips the breaker.
	Threshold int
	// Cooldown is how long an open breaker refuses attempts before
	// half-opening for a probe (virtual time).
	Cooldown time.Duration
	// HalfOpenSuccesses is how many consecutive probe successes re-close
	// a half-open breaker.
	HalfOpenSuccesses int
}

// DefaultBreakerConfig trips after 3 consecutive failures, cools down
// for 5 minutes, and re-closes on a single successful probe.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{Threshold: 3, Cooldown: 5 * time.Minute, HalfOpenSuccesses: 1}
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	d := DefaultBreakerConfig()
	if c.Threshold <= 0 {
		c.Threshold = d.Threshold
	}
	if c.Cooldown <= 0 {
		c.Cooldown = d.Cooldown
	}
	if c.HalfOpenSuccesses <= 0 {
		c.HalfOpenSuccesses = d.HalfOpenSuccesses
	}
	return c
}

// Breaker states.
const (
	StateClosed   = "closed"
	StateOpen     = "open"
	StateHalfOpen = "half-open"
)

// Breaker is one target's circuit breaker. Transitions are lazy — the
// open→half-open move happens when Allow is consulted after the
// cool-down, not on a scheduled event — so an idle breaker costs no
// engine events. A nil *Breaker is valid and always allows (the off
// switch, mirroring the nil obs.Tracer convention).
type Breaker struct {
	name string
	eng  *sim.Engine
	cfg  BreakerConfig

	state       string
	consecFails int
	openedAt    time.Duration
	halfOpenOK  int
	probing     bool // a half-open probe is in flight

	// TripsN / ReclosesN count state transitions as plain ints.
	TripsN, ReclosesN int

	cTrips, cRecloses *obs.Counter
}

// NewBreaker builds a closed breaker over the engine clock.
func NewBreaker(eng *sim.Engine, name string, cfg BreakerConfig, tr *obs.Tracer) *Breaker {
	if eng == nil {
		panic("resilience: nil engine")
	}
	return &Breaker{
		name:      name,
		eng:       eng,
		cfg:       cfg.withDefaults(),
		state:     StateClosed,
		cTrips:    tr.Counter("resilience.breaker.trips"),
		cRecloses: tr.Counter("resilience.breaker.recloses"),
	}
}

// Name returns the breaker's target name ("" on nil).
func (b *Breaker) Name() string {
	if b == nil {
		return ""
	}
	return b.name
}

// State returns the effective state at the current virtual time: an open
// breaker whose cool-down has elapsed reads as half-open even before the
// next Allow performs the transition.
func (b *Breaker) State() string {
	if b == nil {
		return StateClosed
	}
	if b.state == StateOpen && b.eng.Now() >= b.openedAt+b.cfg.Cooldown {
		return StateHalfOpen
	}
	return b.state
}

// Ready reports whether an attempt would currently be admitted, without
// consuming the half-open probe slot. Candidate-selection loops use this
// to skip targets the breaker has written off.
func (b *Breaker) Ready() bool {
	if b == nil {
		return true
	}
	switch b.State() {
	case StateClosed:
		return true
	case StateHalfOpen:
		return !b.probing
	default:
		return false
	}
}

// Allow admits or refuses an attempt. After the cool-down it transitions
// open→half-open and admits exactly one probe at a time; the probe's
// Success/Failure decides what happens next.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	if b.state == StateOpen && b.eng.Now() >= b.openedAt+b.cfg.Cooldown {
		b.state = StateHalfOpen
		b.halfOpenOK = 0
		b.probing = false
	}
	switch b.state {
	case StateClosed:
		return true
	case StateHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	default:
		return false
	}
}

// Success records a successful attempt: it resets the failure streak and
// re-closes a half-open breaker once enough probes succeed. A no-op on
// nil.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	switch b.state {
	case StateClosed:
		b.consecFails = 0
	case StateHalfOpen:
		b.probing = false
		b.halfOpenOK++
		if b.halfOpenOK >= b.cfg.HalfOpenSuccesses {
			b.state = StateClosed
			b.consecFails = 0
			b.ReclosesN++
			b.cRecloses.Inc()
		}
	}
}

// Abort releases a half-open probe without a verdict: the admitted
// attempt was refused downstream before reaching the target (e.g. by a
// second gate over the same breaker), so no connectivity information
// was gained and the probe slot must not stay consumed. A no-op on nil.
func (b *Breaker) Abort() {
	if b == nil {
		return
	}
	if b.state == StateHalfOpen {
		b.probing = false
	}
}

// Failure records a failed attempt: it trips a closed breaker at the
// threshold and re-opens a half-open one (restarting the cool-down). A
// no-op on nil.
func (b *Breaker) Failure() {
	if b == nil {
		return
	}
	switch b.state {
	case StateClosed:
		b.consecFails++
		if b.consecFails >= b.cfg.Threshold {
			b.trip()
		}
	case StateHalfOpen:
		b.probing = false
		b.trip()
	}
}

func (b *Breaker) trip() {
	b.state = StateOpen
	b.openedAt = b.eng.Now()
	b.consecFails = 0
	b.TripsN++
	b.cTrips.Inc()
}

// BreakerSet is the per-site breaker registry one federation shares: all
// layers consulting the same set agree on a site's health.
type BreakerSet struct {
	eng *sim.Engine
	cfg BreakerConfig
	tr  *obs.Tracer
	m   map[string]*Breaker
}

// NewBreakerSet builds an empty registry; breakers are created closed on
// first use.
func NewBreakerSet(eng *sim.Engine, cfg BreakerConfig, tr *obs.Tracer) *BreakerSet {
	if eng == nil {
		panic("resilience: nil engine")
	}
	return &BreakerSet{eng: eng, cfg: cfg.withDefaults(), tr: tr, m: make(map[string]*Breaker)}
}

// For returns (creating on first use) the breaker for a target. A nil
// set returns a nil breaker, which always allows.
func (s *BreakerSet) For(name string) *Breaker {
	if s == nil {
		return nil
	}
	b, ok := s.m[name]
	if !ok {
		b = NewBreaker(s.eng, name, s.cfg, s.tr)
		s.m[name] = b
	}
	return b
}

// Trips sums trips across all breakers (0 on nil).
func (s *BreakerSet) Trips() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, b := range s.m {
		n += b.TripsN
	}
	return n
}

// Recloses sums re-closes across all breakers (0 on nil).
func (s *BreakerSet) Recloses() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, b := range s.m {
		n += b.ReclosesN
	}
	return n
}

// NotClosed returns the names of breakers whose effective state is not
// closed, sorted for deterministic reporting.
func (s *BreakerSet) NotClosed() []string {
	if s == nil {
		return nil
	}
	var out []string
	for name, b := range s.m {
		if b.State() != StateClosed {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
