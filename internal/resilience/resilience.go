// Package resilience is gridlab's deterministic fault-handling layer:
// the recovery half of the paper's soft-state story. SHARP tickets are
// *soft* claims that must be refreshed into hard leases before they
// lapse, and short lease/proxy lifetimes trade exposure for renewal
// traffic — which only works if something actually renews, retries, and
// stops hammering dead sites. This package supplies those three
// mechanisms:
//
//   - Policy/Executor: capped exponential backoff with jitter drawn from
//     an injected seeded *rand.Rand, scheduled on the sim.Engine clock
//     (never the wall clock), with per-attempt deadlines and an overall
//     virtual-time budget.
//   - Breaker: per-site circuit breakers (closed/open/half-open with a
//     virtual-time cool-down) so callers degrade gracefully instead of
//     hammering partitioned or crashed sites.
//   - Renewer: a keepalive loop that re-redeems leases a configurable
//     fraction of the term before notAfter, retrying through the
//     executor with the remaining lifetime as its budget.
//
// Determinism contract: the package never reads the wall clock, never
// draws from the global rand stream, and schedules everything on the
// engine, so a run with resilience enabled is byte-identical across
// repeats of the same seed. Construct executors via NewExecutor/NewKit —
// the jitterrand analyzer flags composite-literal construction, which
// could smuggle in a jittered backoff with no rand source.
package resilience

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Package errors. Terminal Do outcomes wrap both the classifying
// sentinel and the last attempt's error, so errors.Is works on either.
var (
	// ErrBreakerOpen reports an attempt refused because the target's
	// breaker was open. It is transient: the breaker half-opens after its
	// cool-down, so policies normally retry it.
	ErrBreakerOpen = errors.New("resilience: breaker open")
	// ErrAttemptTimeout reports an attempt abandoned at its per-attempt
	// deadline (the operation's own completion, if any, is then ignored).
	ErrAttemptTimeout = errors.New("resilience: attempt deadline exceeded")
	// ErrRetriesExhausted reports MaxAttempts failures.
	ErrRetriesExhausted = errors.New("resilience: attempts exhausted")
	// ErrBudgetExhausted reports that the next retry would start past the
	// policy's overall virtual-time budget.
	ErrBudgetExhausted = errors.New("resilience: retry budget exhausted")
)

// IsBreakerOpen reports whether err was caused by an open breaker
// refusing the attempt (a connectivity verdict, not an answer from the
// target — callers treating refusals as final should still retry these).
func IsBreakerOpen(err error) bool { return errors.Is(err, ErrBreakerOpen) }

// Policy shapes one retry loop: capped exponential backoff plus uniform
// jitter, bounded by attempts and/or an overall virtual-time budget.
type Policy struct {
	// Base is the backoff before the second attempt; each further retry
	// multiplies it by Mult, capped at Cap.
	Base time.Duration
	Cap  time.Duration
	Mult float64
	// Jitter is the maximum extra delay added to each backoff, drawn
	// uniformly from [0, Jitter) off the executor's injected rand stream.
	// Jitter decorrelates retry storms without breaking determinism.
	Jitter time.Duration
	// MaxAttempts bounds total attempts (0 = unbounded; rely on Budget).
	MaxAttempts int
	// Budget bounds the whole loop in virtual time from the first
	// attempt: a retry that would start after Budget is not scheduled
	// (0 = unbounded).
	Budget time.Duration
	// AttemptTimeout abandons any single attempt that has not settled
	// after this much virtual time (0 = wait forever on the attempt).
	AttemptTimeout time.Duration
	// Retryable classifies errors; a nil func retries everything.
	// Non-retryable errors end the loop immediately (site policy said no;
	// asking again cannot help).
	Retryable func(error) bool
}

// DefaultPolicy returns the stack-wide default retry shape: 10s base
// doubling to a 5m cap, up to 10s of jitter, at most 6 attempts.
func DefaultPolicy() Policy {
	return Policy{
		Base:        10 * time.Second,
		Cap:         5 * time.Minute,
		Mult:        2,
		Jitter:      10 * time.Second,
		MaxAttempts: 6,
	}
}

// withDefaults fills zero fields so a partially specified policy behaves.
func (p Policy) withDefaults() Policy {
	d := DefaultPolicy()
	if p.Base <= 0 {
		p.Base = d.Base
	}
	if p.Cap <= 0 {
		p.Cap = d.Cap
	}
	if p.Mult < 1 {
		p.Mult = d.Mult
	}
	return p
}

// backoff returns the delay before attempt n+1 (n >= 1), jittered from
// the injected stream.
func (p Policy) backoff(n int, rng *rand.Rand) time.Duration {
	d := float64(p.Base)
	for i := 1; i < n; i++ {
		d *= p.Mult
		if d >= float64(p.Cap) {
			d = float64(p.Cap)
			break
		}
	}
	delay := time.Duration(d)
	if delay > p.Cap {
		delay = p.Cap
	}
	if p.Jitter > 0 {
		delay += time.Duration(rng.Int63n(int64(p.Jitter)))
	}
	return delay
}

// Op is one retryable asynchronous operation: do the work for the given
// attempt (1-based) and settle exactly once through done. Settling after
// the attempt's deadline has passed is ignored.
type Op func(attempt int, done func(error))

// Executor runs Ops under a Policy on the engine clock. All state
// machines run inside engine callbacks (the kernel is single-threaded),
// so no locking is needed and event order is deterministic.
type Executor struct {
	eng *sim.Engine
	rng *rand.Rand
	pol Policy

	// AttemptsN / RetriesN / OKN / FailN count outcomes as plain ints so
	// chaos summaries do not depend on whether tracing is on.
	AttemptsN, RetriesN, OKN, FailN int

	// inflight tracks active retry loops. The per-loop state machine
	// (attempt number, settled flag, deadline handle) lives on doCall
	// structs reachable from here so that engine snapshots taken mid-loop
	// restore it exactly (see sim/snap.go).
	inflight map[*doCall]struct{}

	tr                              *obs.Tracer
	cAttempts, cRetries, cOK, cFail *obs.Counter
	cFastFail                       *obs.Counter
}

// NewExecutor builds an executor over the engine's virtual clock. The
// rand stream must be non-nil (fork one from the engine); the tracer may
// be nil (all instrumentation stays inert).
func NewExecutor(eng *sim.Engine, rng *rand.Rand, pol Policy, tr *obs.Tracer) *Executor {
	if eng == nil {
		panic("resilience: nil engine")
	}
	if rng == nil {
		panic("resilience: nil rand source (fork one from the engine)")
	}
	return &Executor{
		eng:       eng,
		rng:       rng,
		pol:       pol.withDefaults(),
		inflight:  make(map[*doCall]struct{}),
		tr:        tr,
		cAttempts: tr.Counter("resilience.attempts"),
		cRetries:  tr.Counter("resilience.retries"),
		cOK:       tr.Counter("resilience.ok"),
		cFail:     tr.Counter("resilience.giveups"),
		cFastFail: tr.Counter("resilience.breaker.fastfail"),
	}
}

// Policy returns a copy of the executor's default policy, for callers
// that want a per-call variant (set Retryable, tighten Budget, ...).
func (e *Executor) Policy() Policy { return e.pol }

// Do runs op under the executor's default policy. See DoWithPolicy.
func (e *Executor) Do(name string, br *Breaker, op Op, done func(error)) {
	e.DoWithPolicy(name, e.pol, br, op, done)
}

// DoWithPolicy runs op now and retries failures per pol, gated by br
// (nil = ungated): a denied attempt settles as ErrBreakerOpen — without
// charging the breaker a failure — and retries like any transient error.
// done is called exactly once with nil on success or a terminal error
// wrapping the last attempt's failure.
func (e *Executor) DoWithPolicy(name string, pol Policy, br *Breaker, op Op, done func(error)) {
	c := &doCall{
		e:     e,
		pol:   pol.withDefaults(),
		br:    br,
		op:    op,
		done:  done,
		start: e.eng.Now(),
	}
	if e.tr != nil {
		c.span = e.tr.Begin("resilience.do", obs.String("op", name))
	}
	e.inflight[c] = struct{}{}
	restore := e.tr.EnterScope(c.span)
	defer restore()
	c.attempt(1)
}

// doCall is one retry loop in flight: all mutable loop state lives here,
// not in closure captures, so mid-loop snapshots restore exactly.
type doCall struct {
	e     *Executor
	pol   Policy
	br    *Breaker
	op    Op
	done  func(error)
	span  obs.SpanContext
	start time.Duration

	attempts int
	// settled and admitted describe the CURRENT attempt (c.attempts);
	// settle calls carry the attempt number they belong to, so a late
	// completion from an abandoned attempt cannot touch a newer one.
	settled  bool
	admitted bool
	deadline sim.Event
}

func (c *doCall) finish(err error) {
	delete(c.e.inflight, c)
	if err == nil {
		c.e.OKN++
		c.e.cOK.Inc()
	} else {
		c.e.FailN++
		c.e.cFail.Inc()
	}
	c.span.End(obs.Int("attempts", c.attempts), obs.Err(err))
	c.done(err)
}

func (c *doCall) attempt(n int) {
	c.attempts = n
	c.settled = false
	c.admitted = false
	c.deadline = sim.Event{}
	settle := func(opErr error) { c.settle(n, opErr) }
	if !c.br.Allow() {
		c.e.cFastFail.Inc()
		settle(fmt.Errorf("%w: %s", ErrBreakerOpen, c.br.Name()))
		return
	}
	c.admitted = true
	c.e.AttemptsN++
	c.e.cAttempts.Inc()
	if c.pol.AttemptTimeout > 0 {
		c.deadline = c.e.eng.Schedule(c.pol.AttemptTimeout, func() {
			c.settle(n, ErrAttemptTimeout)
		})
	}
	c.op(n, settle)
}

// settle records the outcome of attempt n; settles from superseded
// attempts (or a second settle of the current one) are ignored.
func (c *doCall) settle(n int, opErr error) {
	if c.settled || c.attempts != n {
		return
	}
	c.settled = true
	e := c.e
	e.eng.Cancel(c.deadline)
	if opErr == nil {
		c.br.Success()
		c.finish(nil)
		return
	}
	if !errors.Is(opErr, ErrBreakerOpen) {
		c.br.Failure()
	} else if c.admitted {
		// The op was admitted here but refused by a downstream
		// gate over the same breaker: release the probe slot this
		// admission may hold, or the breaker jams half-open.
		c.br.Abort()
	}
	c.span.Event("resilience.attempt_failed",
		obs.Int("attempt", n), obs.Err(opErr))
	if c.pol.Retryable != nil && !c.pol.Retryable(opErr) {
		c.finish(opErr)
		return
	}
	if c.pol.MaxAttempts > 0 && n >= c.pol.MaxAttempts {
		c.finish(fmt.Errorf("%w (%d): %w", ErrRetriesExhausted, n, opErr))
		return
	}
	delay := c.pol.backoff(n, e.rng)
	if c.pol.Budget > 0 && e.eng.Now()+delay-c.start > c.pol.Budget {
		c.finish(fmt.Errorf("%w (%v): %w", ErrBudgetExhausted, c.pol.Budget, opErr))
		return
	}
	e.RetriesN++
	e.cRetries.Inc()
	e.schedule(delay, c.span, func() { c.attempt(n + 1) })
}

// schedule runs fn after delay, attributed to span when tracing is on.
func (e *Executor) schedule(delay time.Duration, span obs.SpanContext, fn func()) {
	if e.tr != nil {
		e.tr.Schedule(delay, span, fn)
		return
	}
	e.eng.Schedule(delay, fn)
}

// Kit bundles one federation's resilience machinery: a shared executor,
// the per-site breaker set, and the lease renewer, all over one engine
// and one forked rand stream.
type Kit struct {
	Retry    *Executor
	Breakers *BreakerSet
	Renewer  *Renewer
}

// NewKit builds the standard kit: default policy and breaker config,
// renewal at the default lead fraction. The tracer may be nil.
func NewKit(eng *sim.Engine, rng *rand.Rand, tr *obs.Tracer) *Kit {
	ex := NewExecutor(eng, rng, DefaultPolicy(), tr)
	return &Kit{
		Retry:    ex,
		Breakers: NewBreakerSet(eng, DefaultBreakerConfig(), tr),
		Renewer:  NewRenewer(eng, ex, RenewerConfig{}, tr),
	}
}
