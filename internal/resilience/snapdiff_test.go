package resilience

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/sim/snaptest"
)

var errSnapFlaky = errors.New("resilience: snapdiff flaky op")

// snapDriver hoists the differential scenario's state — log, sequence
// counter, failure rng — into a SnapRoot-registered struct, per the
// snapshot-safety contract the package's retry loops themselves follow
// (doCall structs hang off Executor.inflight for exactly this reason).
type snapDriver struct {
	eng *sim.Engine
	ex  *Executor
	br  *Breaker
	rn  *Renewer
	rng *rand.Rand
	log []string
	seq int
}

func (d *snapDriver) emit(format string, args ...any) {
	d.log = append(d.log, fmt.Sprintf("%v ", d.eng.Now())+fmt.Sprintf(format, args...))
}

// tick launches one flaky op per period: with retry loops, breaker
// transitions, and renewal cycles all in flight across the snapshot
// point, the fork must rewind every state machine mid-stride.
func (d *snapDriver) tick() {
	d.seq++
	id := d.seq
	d.ex.Do("snapdiff.op", d.br, func(attempt int, settle func(error)) {
		if d.rng.Intn(3) == 0 {
			settle(errSnapFlaky)
			return
		}
		settle(nil)
	}, func(err error) {
		d.emit("op %d err=%v breaker=%s", id, err, d.br.State())
	})
}

func buildResilienceDiff(seed int64) (*sim.Engine, func() []byte) {
	eng := sim.NewEngine(seed)
	pol := Policy{Base: 5 * time.Second, Cap: 30 * time.Second, Mult: 2,
		Jitter: 5 * time.Second, MaxAttempts: 4}
	ex := NewExecutor(eng, eng.ForkRand(), pol, nil)
	br := NewBreaker(eng, "snapdiff.site", DefaultBreakerConfig(), nil)
	rn := NewRenewer(eng, ex, RenewerConfig{}, nil)
	d := &snapDriver{eng: eng, ex: ex, br: br, rn: rn, rng: eng.ForkRand()}
	eng.SnapRoot("resilience.snapdiff", d)
	rn.Track("lease", 10*time.Minute, 10*time.Minute, br, func(target time.Duration, done func(error)) {
		if d.rng.Intn(4) == 0 {
			done(errSnapFlaky)
			return
		}
		d.emit("renewed to %v", target)
		done(nil)
	})
	eng.NewTicker(time.Minute, d.tick)
	render := func() []byte {
		var b bytes.Buffer
		for _, ln := range d.log {
			fmt.Fprintln(&b, ln)
		}
		fmt.Fprintf(&b, "attempts=%d retries=%d ok=%d fail=%d renewed=%d giveups=%d\n",
			ex.AttemptsN, ex.RetriesN, ex.OKN, ex.FailN, rn.RenewedN, rn.GiveupsN)
		return b.Bytes()
	}
	return eng, render
}

// TestForkVsColdResilience is the package's adoption of the snaptest
// scenario hook: retry backoff draws, breaker clocks, and keepalive
// cycles must all rewind exactly, so a forked run re-settles every
// in-flight op byte-identically to a cold run.
func TestForkVsColdResilience(t *testing.T) {
	n := 20
	if testing.Short() {
		n = 4
	}
	snaptest.Scenario{
		Name:      "resilience.retry",
		Build:     buildResilienceDiff,
		WarmUntil: 15 * time.Minute,
		Horizon:   60 * time.Minute,
	}.Run(t, snaptest.Seeds(1, n))
}
