package resilience

import (
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// RenewFunc extends a tracked claim to the target notAfter and settles
// exactly once through done. It is invoked once per attempt, so it must
// be safe to call again after a failure.
type RenewFunc func(target time.Duration, done func(error))

// RenewerConfig shapes the keepalive loop.
type RenewerConfig struct {
	// Lead is the fraction of the claim's term before notAfter at which
	// renewal starts (default 0.25: renew at 75% of the term, as SHARP
	// deployments refresh soft claims well before they harden into
	// expiry).
	Lead float64
	// Extend is how much each successful renewal extends notAfter by
	// (default: the claim's own term, keeping a steady cadence).
	Extend time.Duration
	// Policy overrides the executor's default policy for renewal
	// attempts; its Budget is always clamped to the claim's remaining
	// lifetime (retrying past expiry is pointless).
	Policy *Policy
}

type renewal struct {
	id       string
	notAfter time.Duration
	term     time.Duration
	br       *Breaker
	renew    RenewFunc
	ev       sim.Event
	gen      int // invalidates in-flight cycles after Untrack/re-Track
}

// Renewer drives keepalive renewal for time-limited claims (SHARP
// leases here, but anything with a notAfter works). It only renews: the
// claim's owner keeps enforcement (tearing down what actually lapsed)
// and calls Untrack on any teardown path.
type Renewer struct {
	eng *sim.Engine
	ex  *Executor
	cfg RenewerConfig

	items map[string]*renewal

	// RenewedN / GiveupsN count renewal cycles that succeeded / were
	// abandoned (budget or attempts exhausted before expiry).
	RenewedN, GiveupsN int

	tr                *obs.Tracer
	cRenewed, cGiveup *obs.Counter
}

// NewRenewer builds a renewer that retries through ex. The tracer may be
// nil.
func NewRenewer(eng *sim.Engine, ex *Executor, cfg RenewerConfig, tr *obs.Tracer) *Renewer {
	if eng == nil {
		panic("resilience: nil engine")
	}
	if ex == nil {
		panic("resilience: nil executor")
	}
	if cfg.Lead <= 0 || cfg.Lead >= 1 {
		cfg.Lead = 0.25
	}
	return &Renewer{
		eng:      eng,
		ex:       ex,
		cfg:      cfg,
		items:    make(map[string]*renewal),
		tr:       tr,
		cRenewed: tr.Counter("resilience.renewals"),
		cGiveup:  tr.Counter("resilience.renewals.abandoned"),
	}
}

// Track starts keepalive for a claim expiring at notAfter with the given
// full term, gated by the target's breaker (nil = ungated). Re-tracking
// an id replaces the previous schedule.
func (r *Renewer) Track(id string, notAfter, term time.Duration, br *Breaker, renew RenewFunc) {
	r.Untrack(id)
	it := &renewal{id: id, notAfter: notAfter, term: term, br: br, renew: renew}
	r.items[id] = it
	r.arm(it)
}

// Untrack stops keepalive for a claim (owner teardown, lapse, failover).
// Unknown ids are a no-op so every teardown path may call it.
func (r *Renewer) Untrack(id string) {
	it, ok := r.items[id]
	if !ok {
		return
	}
	it.gen++
	r.eng.Cancel(it.ev)
	it.ev = sim.Event{}
	delete(r.items, id)
}

// Tracked reports whether a claim is under keepalive.
func (r *Renewer) Tracked(id string) bool {
	_, ok := r.items[id]
	return ok
}

// arm schedules the next renewal cycle at notAfter − Lead×term (now, if
// that point has already passed).
func (r *Renewer) arm(it *renewal) {
	at := it.notAfter - time.Duration(r.cfg.Lead*float64(it.term))
	if now := r.eng.Now(); at < now {
		at = now
	}
	gen := it.gen
	it.ev = r.eng.At(at, func() { r.cycle(it, gen) })
}

// cycle runs one renewal: retry through the executor with the remaining
// lifetime as the budget. Success re-arms; failure leaves the claim to
// its owner's expiry enforcement.
func (r *Renewer) cycle(it *renewal, gen int) {
	if it.gen != gen {
		return
	}
	it.ev = sim.Event{}
	target := it.notAfter + r.cfg.Extend
	if r.cfg.Extend <= 0 {
		target = it.notAfter + it.term
	}
	pol := r.ex.Policy()
	if r.cfg.Policy != nil {
		pol = *r.cfg.Policy
	}
	pol.MaxAttempts = 0 // keep trying until the lifetime budget runs out
	if remain := it.notAfter - r.eng.Now(); pol.Budget <= 0 || pol.Budget > remain {
		pol.Budget = remain
	}
	r.ex.DoWithPolicy("renew:"+it.id, pol, it.br,
		func(_ int, done func(error)) {
			if it.gen != gen {
				done(nil) // owner untracked mid-flight; stop the loop
				return
			}
			it.renew(target, done)
		},
		func(err error) {
			if it.gen != gen {
				return // owner untracked mid-flight; outcome is moot
			}
			if err != nil {
				r.GiveupsN++
				r.cGiveup.Inc()
				return
			}
			r.RenewedN++
			r.cRenewed.Inc()
			it.notAfter = target
			r.arm(it)
		})
}
