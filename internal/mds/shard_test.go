package mds

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// shardRig drives the same registration stream into a flat GIIS and a
// region/root sharded plane, so queries against both can be compared
// byte for byte.
type shardRig struct {
	eng     *sim.Engine
	net     *simnet.Network
	flat    *GIIS
	root    *RootIndex
	regions []*RegionIndex
}

func newShardRig(t *testing.T, nRegions int) *shardRig {
	t.Helper()
	eng := sim.NewEngine(1)
	net := simnet.New(eng)
	net.AddSite("HQ", 0, 0)
	net.AddHost("flat", "HQ", 1e6)
	net.AddHost("rootidx", "HQ", 1e6)
	rig := &shardRig{
		eng:  eng,
		net:  net,
		flat: NewGIIS(eng, net, "flat"),
		root: NewRootIndex(eng, net, "rootidx"),
	}
	in := NewInterner()
	for i := 0; i < nRegions; i++ {
		host := fmt.Sprintf("region%d", i)
		net.AddHost(host, "HQ", 1e6)
		rg := NewRegionIndex(eng, net, host, fmt.Sprintf("R%d", i), in)
		rig.regions = append(rig.regions, rg)
		rig.root.AttachRegion(rg)
	}
	return rig
}

// feed registers one record into both planes (region chosen by site
// index), as if the site's GRIS pushed to each.
func (rig *shardRig) feed(t *testing.T, site int, rec Record, ttl time.Duration) {
	t.Helper()
	reg := Registration{Rec: rec, TTL: ttl}
	if _, err := rig.flat.handleRegister(rec.Source, reg); err != nil {
		t.Fatal(err)
	}
	if err := rig.regions[site%len(rig.regions)].RegisterRecord(reg); err != nil {
		t.Fatal(err)
	}
}

// renderReply serializes a reply canonically: records in order with
// sorted attrs, then the staleness bound.
func renderReply(r QueryReply) []byte {
	var b bytes.Buffer
	for _, rec := range r.Records {
		fmt.Fprintf(&b, "%s src=%s stamp=%v", rec.Name, rec.Source, rec.Stamp)
		keys := make([]string, 0, len(rec.Attrs))
		for k := range rec.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%s", k, rec.Attrs[k])
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "maxstale=%v\n", r.MaxStale)
	return b.Bytes()
}

// TestShardedMatchesFlat is the differential gate: over a seeded grid
// of sites with churning attributes, partial refresh loss (expiring
// records), and a spread of query shapes, the sharded plane must return
// byte-identical replies to the flat registry.
func TestShardedMatchesFlat(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		rig := newShardRig(t, 4)
		rng := rand.New(rand.NewSource(seed))
		const nSites, perSite = 24, 3
		oses := []string{"linux", "aix", "solaris"}

		refresh := func(round int) {
			now := rig.eng.Now()
			for s := 0; s < nSites; s++ {
				// A third of sites go quiet after round 0 — their records
				// must expire identically in both planes.
				if round > 0 && s%3 == 0 {
					continue
				}
				for r := 0; r < perSite; r++ {
					rec := Record{
						Name:   fmt.Sprintf("site%02d/res%d", s, r),
						Source: fmt.Sprintf("site%02d", s),
						Stamp:  now,
						Attrs: map[string]string{
							"os":   oses[(s+r)%len(oses)],
							"cpus": fmt.Sprint(1 << uint(rng.Intn(5))),
							"load": fmt.Sprintf("%.2f", rng.Float64()*8),
							"site": fmt.Sprintf("site%02d", s),
						},
					}
					if r == 2 {
						rec.Attrs["gpu"] = "1" // sparse attribute
					}
					rig.feed(t, s, rec, 10*time.Minute)
				}
			}
		}

		refresh(0)
		rig.eng.RunUntil(4 * time.Minute)
		refresh(1)
		// Let the quiet third expire: round-0 records lapse at 10m.
		rig.eng.RunUntil(11 * time.Minute)
		for _, rg := range rig.regions {
			rg.StartSummaryPush("rootidx", time.Minute)
		}
		rig.eng.RunUntil(12 * time.Minute)

		queries := []Query{
			{},
			{Limit: 7},
			{Filters: []Filter{{"os", FEq, "linux"}}},
			{Filters: []Filter{{"os", FEq, "plan9"}}},
			{Filters: []Filter{{"os", FNe, "linux"}}, Limit: 5},
			{Filters: []Filter{{"cpus", FGe, "8"}}},
			{Filters: []Filter{{"load", FLt, "2.0"}}},
			{Filters: []Filter{{"gpu", FEq, "1"}}},
			{Filters: []Filter{{"nope", FEq, "x"}}},
			{Filters: []Filter{{"os", FEq, "aix"}, {"cpus", FLe, "4"}}, Limit: 3},
			{Filters: []Filter{{"site", FEq, "site05"}}},
			{Filters: []Filter{{"os", FGt, "3"}}}, // non-numeric attr side
		}
		for qi, q := range queries {
			flat := renderReply(rig.flat.Eval(q))
			sharded, err := rig.root.QueryShards(q)
			if err != nil {
				t.Fatalf("seed %d query %d: %v", seed, qi, err)
			}
			if got := renderReply(sharded); !bytes.Equal(flat, got) {
				t.Errorf("seed %d query %d diverged:\n--- flat ---\n%s--- sharded ---\n%s", seed, qi, flat, got)
			}
		}
	}
}

// TestSummaryPruning: with fresh summaries, a filter naming one
// region's private value must skip the other regions entirely.
func TestSummaryPruning(t *testing.T) {
	rig := newShardRig(t, 3)
	now := rig.eng.Now()
	for s := 0; s < 3; s++ {
		rig.feed(t, s, Record{
			Name:   fmt.Sprintf("r%d/node", s),
			Source: fmt.Sprintf("r%d", s),
			Stamp:  now,
			Attrs:  map[string]string{"zone": fmt.Sprintf("zone%d", s), "cpus": fmt.Sprint(4 * (s + 1))},
		}, 30*time.Minute)
	}
	for _, rg := range rig.regions {
		rg.StartSummaryPush("rootidx", time.Minute)
	}
	rig.eng.RunUntil(time.Second)
	if rig.root.SummaryFresh() != 3 {
		t.Fatalf("summaries fresh = %d, want 3", rig.root.SummaryFresh())
	}

	reply, err := rig.root.QueryShards(Query{Filters: []Filter{{"zone", FEq, "zone1"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Records) != 1 || reply.Records[0].Name != "r1/node" {
		t.Fatalf("reply = %+v", reply.Records)
	}
	if rig.root.FanoutN != 1 || rig.root.PrunedN != 2 {
		t.Errorf("fanout=%d pruned=%d, want 1/2", rig.root.FanoutN, rig.root.PrunedN)
	}

	// Numeric range pruning: only region 2 has cpus=12.
	rig.root.FanoutN, rig.root.PrunedN = 0, 0
	if _, err := rig.root.QueryShards(Query{Filters: []Filter{{"cpus", FGt, "8"}}}); err != nil {
		t.Fatal(err)
	}
	if rig.root.FanoutN != 1 || rig.root.PrunedN != 2 {
		t.Errorf("numeric fanout=%d pruned=%d, want 1/2", rig.root.FanoutN, rig.root.PrunedN)
	}

	// An attribute no region carries prunes everything.
	rig.root.FanoutN, rig.root.PrunedN = 0, 0
	if _, err := rig.root.QueryShards(Query{Filters: []Filter{{"ghost", FEq, "x"}}}); err != nil {
		t.Fatal(err)
	}
	if rig.root.FanoutN != 0 || rig.root.PrunedN != 3 {
		t.Errorf("ghost fanout=%d pruned=%d, want 0/3", rig.root.FanoutN, rig.root.PrunedN)
	}
}

// TestStaleSummaryIsConservative: when a region's summary lapses, the
// root must consult it anyway — ignorance never excludes.
func TestStaleSummaryIsConservative(t *testing.T) {
	rig := newShardRig(t, 2)
	now := rig.eng.Now()
	rig.feed(t, 0, Record{Name: "a/n", Source: "a", Stamp: now,
		Attrs: map[string]string{"zone": "east"}}, time.Hour)
	rig.feed(t, 1, Record{Name: "b/n", Source: "b", Stamp: now,
		Attrs: map[string]string{"zone": "west"}}, time.Hour)
	rig.regions[0].StartSummaryPush("rootidx", time.Minute)
	rig.regions[1].StartSummaryPush("rootidx", time.Minute)
	rig.eng.RunUntil(time.Second)

	// Region 1 goes quiet; its summary TTL (2m) lapses.
	rig.regions[1].StopSummaryPush()
	rig.eng.RunUntil(5 * time.Minute)
	if rig.root.SummaryFresh() != 1 {
		t.Fatalf("fresh summaries = %d, want 1", rig.root.SummaryFresh())
	}
	rig.root.FanoutN, rig.root.PrunedN, rig.root.UnknownN = 0, 0, 0
	reply, err := rig.root.QueryShards(Query{Filters: []Filter{{"zone", FEq, "west"}}})
	if err != nil {
		t.Fatal(err)
	}
	// Region 0's fresh summary excludes it; region 1 is unknown and
	// must still be asked — and it holds the match.
	if len(reply.Records) != 1 || reply.Records[0].Name != "b/n" {
		t.Fatalf("stale-summary region's record lost: %+v", reply.Records)
	}
	if rig.root.UnknownN != 1 || rig.root.PrunedN != 1 {
		t.Errorf("unknown=%d pruned=%d, want 1/1", rig.root.UnknownN, rig.root.PrunedN)
	}
}

// TestSummaryDeltaPush: a quiet region elides every other uplink tick
// (the TTL tolerates one silence); a widening region pushes every tick.
func TestSummaryDeltaPush(t *testing.T) {
	rig := newShardRig(t, 2)
	quiet, busy := rig.regions[0], rig.regions[1]
	now := rig.eng.Now()
	rig.feed(t, 0, Record{Name: "q/n", Source: "q", Stamp: now,
		Attrs: map[string]string{"os": "linux"}}, time.Hour)
	quiet.StartSummaryPush("rootidx", time.Minute)
	busy.StartSummaryPush("rootidx", time.Minute)
	tick := 0
	rig.eng.NewTicker(time.Minute, func() {
		tick++
		// Strictly increasing value keeps widening busy's numeric range.
		if err := busy.RegisterRecord(Registration{Rec: Record{
			Name: "b/n", Source: "b", Stamp: rig.eng.Now(),
			Attrs: map[string]string{"load": fmt.Sprint(tick)},
		}, TTL: time.Hour}); err != nil {
			t.Error(err)
		}
	})
	rig.eng.RunUntil(10*time.Minute + time.Second)

	if quiet.SummarySkipN == 0 {
		t.Errorf("quiet region never skipped a push (push=%d skip=%d)", quiet.SummaryPushN, quiet.SummarySkipN)
	}
	if quiet.SummaryPushN+quiet.SummarySkipN != 11 {
		t.Errorf("quiet ticks = %d, want 11", quiet.SummaryPushN+quiet.SummarySkipN)
	}
	if quiet.SummaryPushN > 7 {
		t.Errorf("quiet region pushed %d of 11 ticks; delta elision not working", quiet.SummaryPushN)
	}
	if busy.SummarySkipN > 1 {
		t.Errorf("widening region skipped %d pushes", busy.SummarySkipN)
	}
	// The quiet region's summary must nonetheless stay fresh at the root.
	if rig.root.SummaryFresh() != 2 {
		t.Errorf("fresh summaries = %d, want 2", rig.root.SummaryFresh())
	}
}

// TestRegionSweepTightensSummary: sweeping expired slots rebuilds the
// summary over survivors, so pruning precision recovers.
func TestRegionSweepTightensSummary(t *testing.T) {
	rig := newShardRig(t, 1)
	rg := rig.regions[0]
	now := rig.eng.Now()
	rig.feed(t, 0, Record{Name: "short", Source: "s", Stamp: now,
		Attrs: map[string]string{"os": "aix"}}, time.Minute)
	rig.feed(t, 0, Record{Name: "long", Source: "s", Stamp: now,
		Attrs: map[string]string{"os": "linux"}}, time.Hour)
	rig.eng.RunUntil(2 * time.Minute)
	if got := rg.Sweep(); got != 1 {
		t.Fatalf("swept %d, want 1", got)
	}
	s := rg.Summary(time.Minute)
	for _, ks := range s.Keys {
		if ks.Key == "os" {
			if len(ks.Values) != 1 || ks.Values[0] != "linux" {
				t.Errorf("post-sweep os values = %v, want [linux]", ks.Values)
			}
		}
	}
	// The freed slot is reused by the next registration.
	slots := rg.Slots()
	rig.feed(t, 0, Record{Name: "fresh", Source: "s", Stamp: rig.eng.Now(),
		Attrs: map[string]string{"os": "plan9"}}, time.Hour)
	if rg.Slots() != slots {
		t.Errorf("slots grew %d -> %d despite free list", slots, rg.Slots())
	}
}

// TestRootNoRegions: the fan-out API reports an error rather than
// silently returning an empty reply.
func TestRootNoRegions(t *testing.T) {
	eng := sim.NewEngine(1)
	net := simnet.New(eng)
	net.AddSite("HQ", 0, 0)
	net.AddHost("rootidx", "HQ", 1e6)
	root := NewRootIndex(eng, net, "rootidx")
	if _, err := root.QueryShards(Query{}); err == nil {
		t.Fatal("no-region query succeeded")
	}
}

// TestGIISRefreshAllocFree: re-registering a known name with a fixed
// key set must not allocate — the satellite fix for the per-push
// map churn.
func TestGIISRefreshAllocFree(t *testing.T) {
	eng := sim.NewEngine(1)
	net := simnet.New(eng)
	net.AddSite("HQ", 0, 0)
	net.AddHost("flat", "HQ", 1e6)
	g := NewGIIS(eng, net, "flat")
	// Hoisted into an interface once: the handler's `any` parameter would
	// otherwise box the Registration on every call and charge the test an
	// allocation the register path doesn't own.
	var raw any = Registration{Rec: Record{Name: "n", Source: "s",
		Attrs: map[string]string{"os": "linux", "cpus": "4", "load": "0.5"}}, TTL: time.Minute}
	if _, err := g.handleRegister("s", raw); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(200, func() {
		if _, err := g.handleRegister("s", raw); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Errorf("steady-state GIIS refresh allocates %.1f objects/op, want 0", n)
	}
}

// TestRegionRefreshAllocFree: the dense store's in-place rewrite must
// also be alloc-free once the name and keys are known.
func TestRegionRefreshAllocFree(t *testing.T) {
	rig := newShardRig(t, 1)
	reg := Registration{Rec: Record{Name: "n", Source: "s",
		Attrs: map[string]string{"os": "linux", "cpus": "4", "load": "0.5"}}, TTL: time.Minute}
	if err := rig.regions[0].RegisterRecord(reg); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(200, func() {
		if err := rig.regions[0].RegisterRecord(reg); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Errorf("steady-state region refresh allocates %.1f objects/op, want 0", n)
	}
}

// TestGRISIntoRefreshAllocFree: a fill-style provider's snapshot reuses
// its persistent record and map.
func TestGRISIntoRefreshAllocFree(t *testing.T) {
	eng := sim.NewEngine(1)
	net := simnet.New(eng)
	net.AddSite("HQ", 0, 0)
	net.AddHost("n1", "HQ", 1e6)
	g := NewGRIS(eng, net, "n1")
	load := 0
	g.AddProviderInto("n1/compute", func(attrs map[string]string) {
		attrs["os"] = "linux"
		attrs["load"] = fmt.Sprint(load) // varies, same key set
	})
	_ = g.record("n1/compute")
	n := testing.AllocsPerRun(200, func() {
		load = (load + 1) % 4 // small ints: fmt.Sprint hits cached strings
		_ = g.record("n1/compute")
	})
	if n != 0 {
		t.Errorf("fill-style refresh allocates %.1f objects/op, want 0", n)
	}
}

// TestProviderIntoVisibleToIndex: end to end, a fill-style provider's
// refreshed values reach the index like a classic provider's.
func TestProviderIntoVisibleToIndex(t *testing.T) {
	eng := sim.NewEngine(1)
	net := simnet.New(eng)
	net.AddSite("HQ", 0, 0)
	net.AddHost("flat", "HQ", 1e6)
	net.AddHost("n1", "HQ", 1e6)
	idx := NewGIIS(eng, net, "flat")
	g := NewGRIS(eng, net, "n1")
	load := 0
	g.AddProviderInto("n1/compute", func(attrs map[string]string) {
		attrs["load"] = fmt.Sprint(load)
	})
	g.StartPush("flat", time.Minute)
	eng.RunUntil(time.Second)
	load = 7
	eng.RunUntil(90 * time.Second)
	reply := idx.Eval(Query{Filters: []Filter{{"load", FEq, "7"}}})
	if len(reply.Records) != 1 {
		t.Errorf("refreshed fill-style attr not visible: %+v", reply)
	}
	g.Stop()
}
