package mds

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// Sharded hierarchical MDS: site GRIS -> regional index -> root index.
//
// The flat GIIS holds every record in one map of heap-allocated cache
// entries, so both registration cost and query cost grow with the whole
// federation. The sharded plane splits the federation into regions:
// each RegionIndex keeps its records in dense flat slices addressed by
// int32 slot handles with interned attribute keys (the PR 5 kernel
// idiom), so a site's registration touches only its own region and
// steady-state refresh writes in place without allocating. Regions push
// small widening summaries of their attribute space upward with
// soft-state TTLs; the root consults those summaries to fan a query out
// only to regions that could possibly match. Pruning is conservative in
// both directions a summary can be wrong: a stale or missing summary
// includes the region (never exclude on ignorance), and summaries only
// ever widen between rebuilds (they cover every value the region has
// seen, a superset of what is live), so exclusion is always sound.
//
// A differential gate in shard_test.go holds the whole plane to the
// flat GIIS semantics: byte-identical records in byte-identical order,
// same TTL expiry, same staleness accounting, same Limit behavior.

// SvcSummary is the region -> root summary push service.
const SvcSummary = "mds.summary"

// ErrNoRegions reports a root query with no attached regions.
var ErrNoRegions = errors.New("mds: root index has no attached regions")

// summaryValueCap bounds the per-key distinct-value set a summary
// carries; beyond it the key is marked overflowed and equality pruning
// disables (numeric range pruning keeps working — min/max stay exact).
const summaryValueCap = 8

// Interner maps attribute keys to dense int32 ids so per-record
// attribute storage is a pair of flat slices instead of a map.
type Interner struct {
	ids  map[string]int32
	keys []string
}

// NewInterner returns an empty key interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]int32)}
}

// ID interns key, returning its dense id.
func (in *Interner) ID(key string) int32 {
	if id, ok := in.ids[key]; ok {
		return id
	}
	id := int32(len(in.keys))
	in.ids[key] = id
	in.keys = append(in.keys, key)
	return id
}

// Lookup returns key's id without interning it.
func (in *Interner) Lookup(key string) (int32, bool) {
	id, ok := in.ids[key]
	return id, ok
}

// Key returns the string for an interned id.
func (in *Interner) Key(id int32) string { return in.keys[id] }

// Len reports how many keys are interned.
func (in *Interner) Len() int { return len(in.keys) }

// errNotNumeric is the shared sentinel parseNumeric returns for values
// that cannot start a number — ParseFloat's *NumError allocates per
// call, which would put an allocation on the hot register path for
// every plain-string attribute.
var errNotNumeric = errors.New("mds: not numeric")

// parseNumeric is ParseFloat with an alloc-free fast reject for values
// that obviously are not numbers (the common string attribute case).
func parseNumeric(s string) (float64, error) {
	if s == "" {
		return 0, errNotNumeric
	}
	if c := s[0]; c != '-' && c != '+' && c != '.' && (c < '0' || c > '9') {
		return 0, errNotNumeric
	}
	return strconv.ParseFloat(s, 64)
}

// regSlot is one dense record slot: interned attribute pairs in flat
// slices, reused across refreshes so steady-state churn is alloc-free.
type regSlot struct {
	name    string
	source  string
	stamp   time.Duration
	expires time.Duration
	keys    []int32
	vals    []string
}

// keyStat is the running widening summary of one attribute key: the
// distinct values seen (capped), and the numeric range over values that
// parse. It only widens between rebuilds, which is what makes summary
// pruning sound under stale soft state.
type keyStat struct {
	values   map[string]struct{}
	overflow bool
	hasNum   bool
	min, max float64
}

// KeySummary is the wire form of one key's summary.
type KeySummary struct {
	Key string
	// Values is the sorted distinct-value set; meaningless when
	// Overflow (the set exceeded summaryValueCap and equality pruning
	// must not be trusted).
	Values   []string
	Overflow bool
	// HasNum with Min/Max bound every value that parsed as a float.
	HasNum   bool
	Min, Max float64
}

// RegionSummary is what a region pushes to the root: enough to decide
// "could any record here match this query", never to answer it.
type RegionSummary struct {
	Region string
	Host   string
	N      int
	Keys   []KeySummary
	TTL    time.Duration
}

// RegionIndex is a GIIS shard: the aggregate index for one region's
// sites, with dense interned record storage and a summary uplink.
type RegionIndex struct {
	eng  *sim.Engine
	net  *simnet.Network
	host string
	name string
	in   *Interner

	slots  []regSlot
	free   []int32
	byName map[string]int32

	// scratch holds attr keys for sorting during registration, reused.
	scratch []string

	// sum is the running widening summary; sumVersion bumps when it
	// widens, so unchanged summaries skip their uplink push.
	sum        map[int32]*keyStat
	sumVersion uint64
	lastPushed uint64
	skippedOne bool
	ticker     *sim.Ticker

	// RegisterN counts registrations absorbed; QueryN queries served.
	// SummaryPushN/SummarySkipN count uplink ticks that sent / elided.
	RegisterN, QueryN          int
	SummaryPushN, SummarySkipN int
}

// NewRegionIndex installs a regional index named name on host. Regions
// of one federation share an Interner (attribute keys are global
// vocabulary); pass nil to own a private one.
func NewRegionIndex(eng *sim.Engine, net *simnet.Network, host, name string, in *Interner) *RegionIndex {
	if in == nil {
		in = NewInterner()
	}
	r := &RegionIndex{
		eng:    eng,
		net:    net,
		host:   host,
		name:   name,
		in:     in,
		byName: make(map[string]int32),
		sum:    make(map[int32]*keyStat),
	}
	h := net.Host(host)
	h.Handle(SvcRegister, r.handleRegister)
	h.Handle(SvcQuery, r.handleQuery)
	return r
}

// Name returns the region's name.
func (r *RegionIndex) Name() string { return r.name }

// Host returns the host the region index is served from.
func (r *RegionIndex) Host() string { return r.host }

// Keys returns how many distinct attribute keys the region's interner
// holds (shared interners report the federation-wide vocabulary).
func (r *RegionIndex) Keys() int { return r.in.Len() }

func (r *RegionIndex) handleRegister(from string, raw any) (any, error) {
	reg, ok := raw.(Registration)
	if !ok {
		return nil, fmt.Errorf("mds: bad registration payload %T", raw)
	}
	return nil, r.RegisterRecord(reg)
}

func (r *RegionIndex) handleQuery(from string, raw any) (any, error) {
	q, ok := raw.(Query)
	if !ok {
		return nil, fmt.Errorf("mds: bad query payload %T", raw)
	}
	return r.Eval(q), nil
}

// RegisterRecord absorbs one registration into the dense store
// (exported for in-process use by co-located pushers; the network path
// arrives through the same code). Refreshing an existing name rewrites
// its slot in place — no allocation in steady state.
func (r *RegionIndex) RegisterRecord(reg Registration) error {
	if reg.Rec.Name == "" {
		return fmt.Errorf("mds: registration without a name from %q", reg.Rec.Source)
	}
	r.RegisterN++
	idx, ok := r.byName[reg.Rec.Name]
	if !ok {
		idx = r.allocSlot()
		r.byName[reg.Rec.Name] = idx
	}
	s := &r.slots[idx]
	s.name = reg.Rec.Name
	s.source = reg.Rec.Source
	s.stamp = reg.Rec.Stamp
	s.expires = r.eng.Now() + reg.TTL

	// Deterministic slot layout: sorted attr keys, interned, written
	// over the slot's existing pair storage.
	r.scratch = r.scratch[:0]
	for k := range reg.Rec.Attrs {
		r.scratch = append(r.scratch, k)
	}
	sort.Strings(r.scratch)
	s.keys = s.keys[:0]
	s.vals = s.vals[:0]
	for _, k := range r.scratch {
		v := reg.Rec.Attrs[k]
		id := r.in.ID(k)
		s.keys = append(s.keys, id)
		s.vals = append(s.vals, v)
		r.absorb(id, v)
	}
	return nil
}

// allocSlot pops a free slot or appends one.
func (r *RegionIndex) allocSlot() int32 {
	if n := len(r.free); n > 0 {
		idx := r.free[n-1]
		r.free = r.free[:n-1]
		return idx
	}
	r.slots = append(r.slots, regSlot{})
	return int32(len(r.slots) - 1)
}

// absorb widens the running summary with one observed attribute value,
// bumping the version only when something actually widened.
func (r *RegionIndex) absorb(id int32, v string) {
	st, ok := r.sum[id]
	if !ok {
		st = &keyStat{values: make(map[string]struct{})}
		r.sum[id] = st
		r.sumVersion++
	}
	if !st.overflow {
		if _, seen := st.values[v]; !seen {
			if len(st.values) >= summaryValueCap {
				st.overflow = true
				r.sumVersion++
			} else {
				st.values[v] = struct{}{}
				r.sumVersion++
			}
		}
	}
	if f, err := parseNumeric(v); err == nil {
		if !st.hasNum {
			st.hasNum = true
			st.min, st.max = f, f
			r.sumVersion++
		} else {
			if f < st.min {
				st.min = f
				r.sumVersion++
			}
			if f > st.max {
				st.max = f
				r.sumVersion++
			}
		}
	}
}

// Live reports unexpired records.
func (r *RegionIndex) Live() int {
	now := r.eng.Now()
	n := 0
	for i := range r.slots {
		if r.slots[i].name != "" && r.slots[i].expires > now {
			n++
		}
	}
	return n
}

// Slots reports the dense store's slot count (peak concurrent names).
func (r *RegionIndex) Slots() int { return len(r.slots) }

// Sweep frees expired slots and rebuilds the running summary from what
// survives, re-tightening the widening bounds. Returns slots freed.
func (r *RegionIndex) Sweep() int {
	now := r.eng.Now()
	n := 0
	for i := range r.slots {
		s := &r.slots[i]
		if s.name == "" || s.expires > now {
			continue
		}
		delete(r.byName, s.name)
		s.name = ""
		s.keys = s.keys[:0]
		s.vals = s.vals[:0]
		r.free = append(r.free, int32(i))
		n++
	}
	if n > 0 {
		r.rebuildSummary()
	}
	return n
}

// rebuildSummary recomputes the summary over live slots only (the one
// place the widening bounds tighten).
func (r *RegionIndex) rebuildSummary() {
	for id := range r.sum {
		delete(r.sum, id)
	}
	for i := range r.slots {
		s := &r.slots[i]
		if s.name == "" {
			continue
		}
		for j, id := range s.keys {
			r.absorb(id, s.vals[j])
		}
	}
	r.sumVersion++
}

// matchSlot evaluates one filter against a slot's interned pairs,
// mirroring Filter.Match exactly (missing attribute never matches).
func (r *RegionIndex) matchSlot(f Filter, s *regSlot) bool {
	id, ok := r.in.Lookup(f.Attr)
	if !ok {
		return false
	}
	for j, kid := range s.keys {
		if kid == id {
			return f.matchValue(s.vals[j])
		}
	}
	return false
}

// Eval answers a query from the dense store with exactly the flat GIIS
// semantics: live records in sorted name order, Limit truncation,
// MaxStale over the records actually returned.
func (r *RegionIndex) Eval(q Query) QueryReply {
	r.QueryN++
	now := r.eng.Now()
	var names []string
	for i := range r.slots {
		if r.slots[i].name != "" && r.slots[i].expires > now {
			names = append(names, r.slots[i].name)
		}
	}
	sort.Strings(names)
	var reply QueryReply
	for _, name := range names {
		s := &r.slots[r.byName[name]]
		match := true
		for _, f := range q.Filters {
			if !r.matchSlot(f, s) {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		attrs := make(map[string]string, len(s.keys))
		for j, id := range s.keys {
			attrs[r.in.Key(id)] = s.vals[j]
		}
		reply.Records = append(reply.Records, Record{Name: s.name, Attrs: attrs, Stamp: s.stamp, Source: s.source})
		if age := now - s.stamp; age > reply.MaxStale {
			reply.MaxStale = age
		}
		if q.Limit > 0 && len(reply.Records) >= q.Limit {
			break
		}
	}
	return reply
}

// Summary materializes the region's current summary for an uplink push.
func (r *RegionIndex) Summary(ttl time.Duration) RegionSummary {
	out := RegionSummary{Region: r.name, Host: r.host, N: r.Live(), TTL: ttl}
	ids := make([]int32, 0, len(r.sum))
	for id := range r.sum {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return r.in.Key(ids[i]) < r.in.Key(ids[j]) })
	for _, id := range ids {
		st := r.sum[id]
		ks := KeySummary{Key: r.in.Key(id), Overflow: st.overflow, HasNum: st.hasNum, Min: st.min, Max: st.max}
		if !st.overflow {
			for v := range st.values {
				ks.Values = append(ks.Values, v)
			}
			sort.Strings(ks.Values)
		}
		out.Keys = append(out.Keys, ks)
	}
	return out
}

// StartSummaryPush begins the soft-state uplink: every interval the
// region pushes its summary to the root with TTL 2×interval — unless
// nothing widened since the last push, in which case one tick may be
// skipped (the TTL survives exactly one silence; the second tick pushes
// as a keepalive). That is the delta behavior: a quiet region costs the
// root half the summary traffic of a churning one.
func (r *RegionIndex) StartSummaryPush(rootHost string, interval time.Duration) {
	if r.ticker != nil {
		r.ticker.Stop()
	}
	push := func() {
		if r.sumVersion == r.lastPushed && !r.skippedOne {
			r.skippedOne = true
			r.SummarySkipN++
			return
		}
		r.skippedOne = false
		r.lastPushed = r.sumVersion
		r.SummaryPushN++
		r.net.Send(r.host, rootHost, SvcSummary, r.Summary(2*interval))
	}
	push()
	r.ticker = r.eng.NewTicker(interval, push)
}

// StopSummaryPush halts the uplink.
func (r *RegionIndex) StopSummaryPush() {
	if r.ticker != nil {
		r.ticker.Stop()
		r.ticker = nil
	}
}

// rootSum is one region's soft-state summary as held by the root.
type rootSum struct {
	sum     RegionSummary
	expires time.Duration
}

// RootIndex is the federation-wide query point: it holds region
// summaries (soft state, pushed) and fans queries out only to regions
// whose summary admits a possible match. Query-plane region handles are
// attached in-process — the root answers synchronously like GIIS.Eval,
// which is what brokers co-located with the index consume.
type RootIndex struct {
	eng  *sim.Engine
	net  *simnet.Network
	host string

	regions []*RegionIndex
	sums    map[string]*rootSum

	// QueryN counts root queries; per query, FanoutN counts regions
	// actually consulted, PrunedN regions excluded by summary, and
	// UnknownN regions consulted because their summary was missing or
	// stale (the conservative path).
	QueryN, FanoutN, PrunedN, UnknownN int
}

// NewRootIndex installs the root index service on host.
func NewRootIndex(eng *sim.Engine, net *simnet.Network, host string) *RootIndex {
	rt := &RootIndex{eng: eng, net: net, host: host, sums: make(map[string]*rootSum)}
	h := net.Host(host)
	h.Handle(SvcSummary, rt.handleSummary)
	h.Handle(SvcQuery, rt.handleQuery)
	return rt
}

// AttachRegion registers a region's query-plane handle with the root.
func (rt *RootIndex) AttachRegion(r *RegionIndex) {
	rt.regions = append(rt.regions, r)
}

func (rt *RootIndex) handleSummary(from string, raw any) (any, error) {
	s, ok := raw.(RegionSummary)
	if !ok {
		return nil, fmt.Errorf("mds: bad summary payload %T", raw)
	}
	rt.AbsorbSummary(s)
	return nil, nil
}

// AbsorbSummary installs one region summary with its soft-state TTL
// (exported for in-process feeders co-located with the root; the
// network path arrives through the same code).
func (rt *RootIndex) AbsorbSummary(s RegionSummary) {
	rs := rt.sums[s.Region]
	if rs == nil {
		rs = &rootSum{}
		rt.sums[s.Region] = rs
	}
	rs.sum = s
	rs.expires = rt.eng.Now() + s.TTL
}

func (rt *RootIndex) handleQuery(from string, raw any) (any, error) {
	q, ok := raw.(Query)
	if !ok {
		return nil, fmt.Errorf("mds: bad query payload %T", raw)
	}
	return rt.QueryShards(q)
}

// summaryMayMatch reports whether a region whose attribute space is
// bounded by s could hold a record matching q. False only when some
// filter is provably unsatisfiable against the summary.
func summaryMayMatch(s RegionSummary, q Query) bool {
	for _, f := range q.Filters {
		i := sort.Search(len(s.Keys), func(i int) bool { return s.Keys[i].Key >= f.Attr })
		if i >= len(s.Keys) || s.Keys[i].Key != f.Attr {
			// No record in the region has the attribute: Match is false
			// for every record, so the region cannot contribute.
			return false
		}
		ks := s.Keys[i]
		switch f.Op {
		case FEq:
			if !ks.Overflow {
				j := sort.SearchStrings(ks.Values, f.Value)
				if j >= len(ks.Values) || ks.Values[j] != f.Value {
					return false
				}
			}
		case FNe:
			if !ks.Overflow && len(ks.Values) == 1 && ks.Values[0] == f.Value {
				return false
			}
		default:
			b, err := strconv.ParseFloat(f.Value, 64)
			if err != nil {
				// Non-numeric comparison value: Match fails everywhere.
				return false
			}
			if !ks.HasNum {
				return false
			}
			// Min/Max keep widening even past value-set overflow, so the
			// range test stays sound under overflow.
			switch f.Op {
			case FLt:
				if !(ks.Min < b) {
					return false
				}
			case FLe:
				if !(ks.Min <= b) {
					return false
				}
			case FGt:
				if !(ks.Max > b) {
					return false
				}
			case FGe:
				if !(ks.Max >= b) {
					return false
				}
			}
		}
	}
	return true
}

// QueryShards answers a query by pruned fan-out: regions whose live
// summary rules out a match are skipped; regions with stale or missing
// summaries are consulted anyway (conservative). Results merge into the
// flat-GIIS order contract — global sorted name order, Limit applied
// after the merge, MaxStale over the records actually returned.
func (rt *RootIndex) QueryShards(q Query) (QueryReply, error) {
	if len(rt.regions) == 0 {
		return QueryReply{}, ErrNoRegions
	}
	rt.QueryN++
	now := rt.eng.Now()
	var merged []Record
	for _, rg := range rt.regions {
		rs := rt.sums[rg.name]
		known := rs != nil && rs.expires > now
		if known && !summaryMayMatch(rs.sum, q) {
			rt.PrunedN++
			continue
		}
		if !known {
			rt.UnknownN++
		}
		rt.FanoutN++
		// Per-region Limit is sound: the global first-Limit names
		// include at most Limit from any single region, and each
		// region returns its own first matches in name order.
		sub := rg.Eval(q)
		merged = append(merged, sub.Records...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Name < merged[j].Name })
	if q.Limit > 0 && len(merged) > q.Limit {
		merged = merged[:q.Limit]
	}
	var reply QueryReply
	reply.Records = merged
	for _, rec := range merged {
		if age := now - rec.Stamp; age > reply.MaxStale {
			reply.MaxStale = age
		}
	}
	return reply, nil
}

// Regions reports how many regions are attached.
func (rt *RootIndex) Regions() int { return len(rt.regions) }

// SummaryFresh reports how many region summaries are currently live.
func (rt *RootIndex) SummaryFresh() int {
	now := rt.eng.Now()
	n := 0
	for _, rs := range rt.sums {
		if rs.expires > now {
			n++
		}
	}
	return n
}
