package mds

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
)

type fixture struct {
	eng *sim.Engine
	net *simnet.Network
}

func newFixture() *fixture {
	eng := sim.NewEngine(1)
	net := simnet.New(eng)
	net.AddSite("A", 0, 0)
	net.AddSite("B", 30, 0)
	net.AddHost("idx", "A", 1e6)
	net.AddHost("n1", "B", 1e6)
	net.AddHost("n2", "B", 1e6)
	net.AddHost("client", "A", 1e6)
	return &fixture{eng: eng, net: net}
}

func staticProvider(attrs map[string]string) Provider {
	return func() map[string]string { return attrs }
}

func TestFilterMatch(t *testing.T) {
	attrs := map[string]string{"os": "linux", "cpus": "4", "mem": "2048"}
	cases := []struct {
		f    Filter
		want bool
	}{
		{Filter{"os", FEq, "linux"}, true},
		{Filter{"os", FEq, "solaris"}, false},
		{Filter{"os", FNe, "solaris"}, true},
		{Filter{"cpus", FGe, "4"}, true},
		{Filter{"cpus", FGt, "4"}, false},
		{Filter{"mem", FLt, "4096"}, true},
		{Filter{"mem", FLe, "2048"}, true},
		{Filter{"nope", FEq, "x"}, false},
		{Filter{"os", FGt, "3"}, false}, // non-numeric side
	}
	for _, tc := range cases {
		if got := tc.f.Match(attrs); got != tc.want {
			t.Errorf("%+v = %v, want %v", tc.f, got, tc.want)
		}
	}
}

func TestRegistrationAndQuery(t *testing.T) {
	f := newFixture()
	idx := NewGIIS(f.eng, f.net, "idx")
	g1 := NewGRIS(f.eng, f.net, "n1")
	g1.AddProvider("n1/compute", staticProvider(map[string]string{"os": "linux", "cpus": "4"}))
	g2 := NewGRIS(f.eng, f.net, "n2")
	g2.AddProvider("n2/compute", staticProvider(map[string]string{"os": "aix", "cpus": "16"}))
	g1.StartPush("idx", time.Minute)
	g2.StartPush("idx", time.Minute)
	f.eng.RunUntil(time.Second)
	if idx.Live() != 2 {
		t.Fatalf("Live = %d, want 2", idx.Live())
	}
	var reply QueryReply
	QueryIndex(f.net, "client", "idx", Query{Filters: []Filter{{"os", FEq, "linux"}}}, time.Minute,
		func(r QueryReply, err error) { reply = r })
	f.eng.RunUntil(2 * time.Second)
	if len(reply.Records) != 1 || reply.Records[0].Name != "n1/compute" {
		t.Fatalf("reply = %+v", reply)
	}
	g1.Stop()
	g2.Stop()
}

func TestTTLExpiry(t *testing.T) {
	f := newFixture()
	idx := NewGIIS(f.eng, f.net, "idx")
	g := NewGRIS(f.eng, f.net, "n1")
	g.AddProvider("n1/compute", staticProvider(map[string]string{"os": "linux"}))
	g.StartPush("idx", time.Minute)
	f.eng.RunUntil(time.Second)
	if idx.Live() != 1 {
		t.Fatal("not registered")
	}
	// Node dies: pushes stop, record must expire after TTL (2×interval).
	g.Stop()
	f.net.SetDown("n1", true)
	f.eng.RunUntil(4 * time.Minute)
	if idx.Live() != 0 {
		t.Errorf("dead node still live after TTL")
	}
	if idx.Sweep() != 1 {
		t.Error("sweep did not collect the expired record")
	}
}

func TestStalenessReported(t *testing.T) {
	f := newFixture()
	idx := NewGIIS(f.eng, f.net, "idx")
	g := NewGRIS(f.eng, f.net, "n1")
	g.AddProvider("r", staticProvider(map[string]string{"os": "linux"}))
	g.StartPush("idx", 10*time.Minute)
	f.eng.RunUntil(5 * time.Minute)
	reply := idx.Eval(Query{})
	// Snapshot taken at ~0 (plus push latency), queried at 5min.
	if reply.MaxStale < 4*time.Minute || reply.MaxStale > 6*time.Minute {
		t.Errorf("MaxStale = %v, want ~5m", reply.MaxStale)
	}
	g.Stop()
}

func TestDynamicProviderRefreshes(t *testing.T) {
	f := newFixture()
	idx := NewGIIS(f.eng, f.net, "idx")
	load := 0
	g := NewGRIS(f.eng, f.net, "n1")
	g.AddProvider("r", func() map[string]string {
		return map[string]string{"load": fmt.Sprint(load)}
	})
	g.StartPush("idx", time.Minute)
	f.eng.RunUntil(time.Second)
	load = 7
	f.eng.RunUntil(90 * time.Second) // second push at 60s carries load=7
	reply := idx.Eval(Query{Filters: []Filter{{"load", FEq, "7"}}})
	if len(reply.Records) != 1 {
		t.Errorf("refreshed attr not visible: %+v", reply)
	}
	g.Stop()
}

func TestQueryLimit(t *testing.T) {
	f := newFixture()
	idx := NewGIIS(f.eng, f.net, "idx")
	g := NewGRIS(f.eng, f.net, "n1")
	for i := 0; i < 10; i++ {
		g.AddProvider(fmt.Sprintf("r%02d", i), staticProvider(map[string]string{"os": "linux"}))
	}
	g.StartPush("idx", time.Minute)
	f.eng.RunUntil(time.Second)
	reply := idx.Eval(Query{Limit: 3})
	if len(reply.Records) != 3 {
		t.Errorf("Limit ignored: %d records", len(reply.Records))
	}
	g.Stop()
}

func TestDeterministicResultOrder(t *testing.T) {
	f := newFixture()
	idx := NewGIIS(f.eng, f.net, "idx")
	g := NewGRIS(f.eng, f.net, "n1")
	for _, name := range []string{"zeta", "alpha", "mid"} {
		g.AddProvider(name, staticProvider(map[string]string{"x": "1"}))
	}
	g.StartPush("idx", time.Minute)
	f.eng.RunUntil(time.Second)
	reply := idx.Eval(Query{})
	want := []string{"alpha", "mid", "zeta"}
	for i, rec := range reply.Records {
		if rec.Name != want[i] {
			t.Fatalf("order = %v", reply.Records)
		}
	}
	g.Stop()
}

func TestHierarchyUplink(t *testing.T) {
	f := newFixture()
	f.net.AddHost("rootidx", "A", 1e6)
	root := NewGIIS(f.eng, f.net, "rootidx")
	site := NewGIIS(f.eng, f.net, "idx")
	g := NewGRIS(f.eng, f.net, "n1")
	g.AddProvider("n1/r", staticProvider(map[string]string{"os": "linux"}))
	g.StartPush("idx", time.Minute)
	site.StartUplink("rootidx", time.Minute)
	f.eng.RunUntil(90 * time.Second)
	if root.Live() != 1 {
		t.Errorf("root Live = %d, want 1 (uplinked)", root.Live())
	}
	g.Stop()
	site.StopUplink()
}

func TestPushCountScalesWithResources(t *testing.T) {
	// E3's core observation: registration traffic is linear in resources.
	f := newFixture()
	NewGIIS(f.eng, f.net, "idx")
	g := NewGRIS(f.eng, f.net, "n1")
	for i := 0; i < 5; i++ {
		g.AddProvider(fmt.Sprintf("r%d", i), staticProvider(map[string]string{"x": "1"}))
	}
	g.StartPush("idx", time.Minute)
	f.eng.RunUntil(5*time.Minute + time.Second)
	// Initial push + 5 ticks = 6 rounds × 5 resources.
	if g.PushN != 30 {
		t.Errorf("PushN = %d, want 30", g.PushN)
	}
	g.Stop()
}
