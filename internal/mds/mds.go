// Package mds implements the discovery and monitoring plane: per-resource
// information providers (GRIS), an aggregating index service (GIIS) fed by
// soft-state registrations over the network, and an attribute-filter query
// language. This is the Globus MDS-2 architecture; PlanetLab's per-node
// sensors feeding services like Sophia/CoMon are structurally the same
// push-with-TTL pattern, so both stacks reuse this package with different
// refresh policies.
//
// The E3 scale experiment measures what the paper asserts about
// deployment scale (GT "in production use across VOs integrating resources
// from 20-50 sites ... expected to scale to 100s"): registration traffic
// grows with resource count while query staleness depends on the refresh
// interval.
package mds

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// SvcRegister and SvcQuery are the GIIS service names on its host.
const (
	SvcRegister = "mds.register"
	SvcQuery    = "mds.query"
)

// ErrBadFilter reports an unusable query filter.
var ErrBadFilter = errors.New("mds: bad filter")

// Provider produces the current attribute snapshot of one resource.
type Provider func() map[string]string

// Record is a registered resource snapshot held by an index.
type Record struct {
	Name  string
	Attrs map[string]string
	// Stamp is when the snapshot was taken at the source.
	Stamp time.Duration
	// Source is the host whose GRIS produced the snapshot, so audits can
	// relate served records back to node liveness.
	Source string
}

// Registration is the wire form GRIS pushes to GIIS.
type Registration struct {
	Rec Record
	// TTL bounds how long the index may serve this snapshot.
	TTL time.Duration
}

// FilterOp is a query comparison operator.
type FilterOp int

// The filter operators. Numeric comparisons parse both sides as floats
// and fail the match when either side is non-numeric.
const (
	FEq FilterOp = iota
	FNe
	FLt
	FLe
	FGt
	FGe
)

// Filter is one attribute comparison.
type Filter struct {
	Attr  string
	Op    FilterOp
	Value string
}

// Match evaluates the filter against an attribute set.
func (f Filter) Match(attrs map[string]string) bool {
	got, ok := attrs[f.Attr]
	if !ok {
		return false
	}
	return f.matchValue(got)
}

// matchValue compares one present attribute value — shared by the flat
// map path above and the sharded interned-pair path, so both planes
// agree operator for operator.
func (f Filter) matchValue(got string) bool {
	switch f.Op {
	case FEq:
		return got == f.Value
	case FNe:
		return got != f.Value
	}
	a, errA := strconv.ParseFloat(got, 64)
	b, errB := strconv.ParseFloat(f.Value, 64)
	if errA != nil || errB != nil {
		return false
	}
	switch f.Op {
	case FLt:
		return a < b
	case FLe:
		return a <= b
	case FGt:
		return a > b
	case FGe:
		return a >= b
	}
	return false
}

// Query is a conjunction of filters.
type Query struct {
	Filters []Filter
	// Limit caps results (0 = all).
	Limit int
}

// QueryReply carries matching records and their worst-case staleness.
type QueryReply struct {
	Records []Record
	// MaxStale is the age of the oldest snapshot served.
	MaxStale time.Duration
}

// GRIS is the per-host information service: it owns providers for local
// resources and pushes soft-state registrations to an index.
type GRIS struct {
	eng  *sim.Engine
	net  *simnet.Network
	host string

	providers map[string]Provider
	// into holds fill-style providers (AddProviderInto); recs their
	// persistent records, whose attr maps are rewritten in place each
	// push so steady-state refresh is alloc-free.
	into   map[string]func(attrs map[string]string)
	recs   map[string]*Record
	order  []string
	ticker *sim.Ticker

	// PushN counts registration messages sent.
	PushN int
}

// NewGRIS creates the information service for host.
func NewGRIS(eng *sim.Engine, net *simnet.Network, host string) *GRIS {
	return &GRIS{
		eng: eng, net: net, host: host,
		providers: make(map[string]Provider),
		into:      make(map[string]func(map[string]string)),
		recs:      make(map[string]*Record),
	}
}

// AddProvider registers a named local resource provider.
func (g *GRIS) AddProvider(name string, p Provider) {
	if _, dup := g.providers[name]; !dup {
		if _, dup2 := g.into[name]; !dup2 {
			g.order = append(g.order, name)
		}
	}
	g.providers[name] = p
	delete(g.into, name)
	delete(g.recs, name)
}

// AddProviderInto registers a fill-style provider: each push, fill is
// handed the same attribute map (cleared) to repopulate, so a provider
// refreshing a fixed key set allocates nothing in steady state. The
// in-flight registration aliases that map until delivered; with push
// intervals far above network latency (the soft-state regime) the value
// skew window is negligible, and indexes copy on receipt.
func (g *GRIS) AddProviderInto(name string, fill func(attrs map[string]string)) {
	if _, dup := g.into[name]; !dup {
		if _, dup2 := g.providers[name]; !dup2 {
			g.order = append(g.order, name)
		}
	}
	g.into[name] = fill
	g.recs[name] = &Record{Name: name, Attrs: make(map[string]string), Source: g.host}
	delete(g.providers, name)
}

// record materializes the current record for one provider. Fill-style
// providers rewrite their persistent record in place; the returned
// record's Attrs therefore aliases provider-owned storage.
func (g *GRIS) record(name string) Record {
	if fill, ok := g.into[name]; ok {
		rec := g.recs[name]
		clear(rec.Attrs)
		fill(rec.Attrs)
		rec.Stamp = g.eng.Now()
		return *rec
	}
	return Record{Name: name, Attrs: g.providers[name](), Stamp: g.eng.Now(), Source: g.host}
}

// Snapshot returns current records for all providers (local query path).
// Fill-style providers' attrs are copied so the caller owns the result.
func (g *GRIS) Snapshot() []Record {
	out := make([]Record, 0, len(g.order))
	for _, name := range g.order {
		rec := g.record(name)
		if _, isInto := g.into[name]; isInto {
			attrs := make(map[string]string, len(rec.Attrs))
			for k, v := range rec.Attrs {
				attrs[k] = v
			}
			rec.Attrs = attrs
		}
		out = append(out, rec)
	}
	return out
}

// StartPush begins soft-state registration to the index host every
// interval, with TTL = 2×interval (surviving one lost push).
func (g *GRIS) StartPush(indexHost string, interval time.Duration) {
	if g.ticker != nil {
		g.ticker.Stop()
	}
	push := func() {
		for _, name := range g.order {
			g.net.Send(g.host, indexHost, SvcRegister, Registration{Rec: g.record(name), TTL: 2 * interval})
			g.PushN++
		}
	}
	push() // initial registration
	g.ticker = g.eng.NewTicker(interval, push)
}

// Stop halts pushing.
func (g *GRIS) Stop() {
	if g.ticker != nil {
		g.ticker.Stop()
		g.ticker = nil
	}
}

// GIIS is the aggregate index: it caches registrations until their TTL
// expires and answers attribute queries from the cache. A GIIS can itself
// push upward to a parent index, forming the MDS hierarchy.
type GIIS struct {
	eng  *sim.Engine
	net  *simnet.Network
	host string

	records map[string]*cached
	ticker  *sim.Ticker

	// QueryN counts queries served; RegisterN registrations absorbed.
	QueryN, RegisterN int
}

type cached struct {
	rec     Record
	expires time.Duration
}

// NewGIIS installs an index service on host.
func NewGIIS(eng *sim.Engine, net *simnet.Network, host string) *GIIS {
	g := &GIIS{eng: eng, net: net, host: host, records: make(map[string]*cached)}
	h := net.Host(host)
	h.Handle(SvcRegister, g.handleRegister)
	h.Handle(SvcQuery, g.handleQuery)
	return g
}

func (g *GIIS) handleRegister(from string, raw any) (any, error) {
	reg, ok := raw.(Registration)
	if !ok {
		return nil, fmt.Errorf("mds: bad registration payload %T", raw)
	}
	g.RegisterN++
	// Refresh in place: a re-registering name reuses its cache entry and
	// attr map, so steady-state soft-state refresh allocates nothing
	// (the map-churn fix — previously every push allocated a fresh entry
	// and retained the sender's map).
	c := g.records[reg.Rec.Name]
	if c == nil {
		c = &cached{rec: Record{Attrs: make(map[string]string, len(reg.Rec.Attrs))}}
		g.records[reg.Rec.Name] = c
	}
	c.rec.Name = reg.Rec.Name
	c.rec.Stamp = reg.Rec.Stamp
	c.rec.Source = reg.Rec.Source
	clear(c.rec.Attrs)
	for k, v := range reg.Rec.Attrs {
		c.rec.Attrs[k] = v
	}
	c.expires = g.eng.Now() + reg.TTL
	return nil, nil
}

func (g *GIIS) handleQuery(from string, raw any) (any, error) {
	q, ok := raw.(Query)
	if !ok {
		return nil, fmt.Errorf("mds: bad query payload %T", raw)
	}
	g.QueryN++
	return g.Eval(q), nil
}

// Eval answers a query from the local cache (exported for in-process use
// by brokers co-located with the index).
func (g *GIIS) Eval(q Query) QueryReply {
	now := g.eng.Now()
	var names []string
	for name, c := range g.records {
		if c.expires <= now {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names) // deterministic result order
	var reply QueryReply
	for _, name := range names {
		c := g.records[name]
		match := true
		for _, f := range q.Filters {
			if !f.Match(c.rec.Attrs) {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		reply.Records = append(reply.Records, c.rec)
		if age := now - c.rec.Stamp; age > reply.MaxStale {
			reply.MaxStale = age
		}
		if q.Limit > 0 && len(reply.Records) >= q.Limit {
			break
		}
	}
	return reply
}

// Live returns the number of unexpired records.
func (g *GIIS) Live() int {
	now := g.eng.Now()
	n := 0
	for _, c := range g.records {
		if c.expires > now {
			n++
		}
	}
	return n
}

// Sweep drops expired records (housekeeping; Eval already ignores them).
func (g *GIIS) Sweep() int {
	now := g.eng.Now()
	n := 0
	// Deleting during range is safe in Go, and deletion is commutative,
	// so no intermediate collect-and-sort slice is needed.
	for name, c := range g.records {
		if c.expires <= now {
			delete(g.records, name)
			n++
		}
	}
	return n
}

// StartUplink pushes this index's live records to a parent index every
// interval, forming the GIIS hierarchy.
func (g *GIIS) StartUplink(parentHost string, interval time.Duration) {
	if g.ticker != nil {
		g.ticker.Stop()
	}
	push := func() {
		now := g.eng.Now()
		names := make([]string, 0, len(g.records))
		for name, c := range g.records {
			if c.expires > now {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			c := g.records[name]
			g.net.Send(g.host, parentHost, SvcRegister, Registration{Rec: c.rec, TTL: 2 * interval})
		}
	}
	push()
	g.ticker = g.eng.NewTicker(interval, push)
}

// StopUplink halts the uplink push.
func (g *GIIS) StopUplink() {
	if g.ticker != nil {
		g.ticker.Stop()
		g.ticker = nil
	}
}

// QueryIndex is the client helper: query a GIIS over the network.
func QueryIndex(net *simnet.Network, from, indexHost string, q Query, timeout time.Duration, done func(QueryReply, error)) {
	net.Call(from, indexHost, SvcQuery, q, timeout, func(resp any, err error) {
		if err != nil {
			done(QueryReply{}, err)
			return
		}
		done(resp.(QueryReply), nil)
	})
}
