package faultlab

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// Injector binds a schedule to a running federation. Every fault becomes
// a sim.Window, so each is applied and revoked exactly once no matter how
// the run ends (naturally, or force-healed by HealAll).
type Injector struct {
	fed     *core.Federation
	sched   *Schedule
	windows []*sim.Window
	trace   []string

	// AppliedN and RevokedN count fault activations for reporting.
	AppliedN, RevokedN int
}

// Install schedules every fault of sched against the federation and
// returns the injector handle. Faults targeting unjoined or unknown sites
// degrade to no-ops inside core's fault surface.
func Install(f *core.Federation, sched *Schedule) *Injector {
	inj := &Injector{fed: f, sched: sched}
	for i := range sched.Faults {
		ft := sched.Faults[i]
		apply, revoke := inj.actions(ft)
		w := f.Eng.NewWindow(ft.At, ft.Duration,
			func() {
				inj.AppliedN++
				inj.trace = append(inj.trace, fmt.Sprintf("t=%v apply %s", f.Eng.Now(), ft))
				apply()
			},
			func() {
				inj.RevokedN++
				inj.trace = append(inj.trace, fmt.Sprintf("t=%v revoke %s", f.Eng.Now(), ft))
				revoke()
			})
		inj.windows = append(inj.windows, w)
	}
	return inj
}

// actions maps a fault to its apply/revoke pair.
func (inj *Injector) actions(ft Fault) (apply, revoke func()) {
	f := inj.fed
	switch ft.Kind {
	case NodeCrash:
		return func() { f.CrashNode(ft.Site) }, func() { f.RestoreSite(ft.Site) }
	case SiteOutage:
		return func() { f.CrashSite(ft.Site) }, func() { f.RestoreSite(ft.Site) }
	case NetPartition:
		return func() { f.Net.Partition(ft.Site, ft.Peer, true) },
			func() { f.Net.Partition(ft.Site, ft.Peer, false) }
	case LossBurst:
		return func() { f.Net.SetLoss(ft.Site, ft.Peer, ft.Loss) },
			func() { f.Net.ClearLoss(ft.Site, ft.Peer) }
	case LatencyChurn:
		return func() { f.Net.SetLatency(ft.Site, ft.Peer, ft.Latency) },
			func() { f.Net.ClearLatency(ft.Site, ft.Peer) }
	case ClockSkew:
		skew := func(d time.Duration) {
			s := f.SiteByName(ft.Site)
			if s == nil || s.Runtime == nil {
				return
			}
			s.Runtime.Authority.SetClockSkew(d)
		}
		return func() { skew(ft.Skew) }, func() { skew(0) }
	}
	panic(fmt.Sprintf("faultlab: unknown fault kind %v", ft.Kind))
}

// HealAll force-revokes every window: active faults are lifted now,
// not-yet-applied faults are cancelled. Used at horizon end so the
// convergence phase starts from a fully healed substrate.
func (inj *Injector) HealAll() {
	for _, w := range inj.windows {
		w.Revoke()
	}
}

// Trace returns the apply/revoke log in execution order.
func (inj *Injector) Trace() []string {
	out := make([]string, len(inj.trace))
	copy(out, inj.trace)
	return out
}
