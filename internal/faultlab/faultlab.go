// Package faultlab is gridlab's deterministic fault-injection layer: it
// generates seed-driven fault schedules (node crashes, site outages,
// network partitions, loss and latency churn, clock-skewed certificate
// validation), injects them into a running core.Federation, and audits
// cross-stack invariants afterwards — the "what actually breaks" half of
// the paper's comparison that the steady-state experiments cannot see.
//
// Everything is reproducible: a (seed, profile) pair fully determines the
// schedule, and a schedule plus the scenario seed fully determines the
// run. That is what makes Sweep useful — the first violating (seed,
// profile) it reports is a complete minimal repro.
package faultlab

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Kind enumerates injectable fault classes.
type Kind int

// The fault classes. NodeCrash is silent (discovered via soft state);
// SiteOutage is declared (management planes are notified, as when
// PlanetLab central support power-cycles a node).
const (
	NodeCrash Kind = iota
	SiteOutage
	NetPartition
	LossBurst
	LatencyChurn
	ClockSkew
)

var kindNames = [...]string{
	"node-crash", "site-outage", "partition", "loss-burst", "latency-churn", "clock-skew",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fault is one scheduled fault: applied at At, revoked at At+Duration.
type Fault struct {
	Kind     Kind
	At       time.Duration
	Duration time.Duration
	// Site is the primary target; Peer the second endpoint for pair faults
	// (partitions, loss bursts, latency churn).
	Site string
	Peer string
	// Loss is the injected loss probability for LossBurst.
	Loss float64
	// Latency is the override for LatencyChurn.
	Latency time.Duration
	// Skew is the validation-clock drift for ClockSkew.
	Skew time.Duration
}

// String renders the fault compactly for traces and repro output.
func (f Fault) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s @%v +%v %s", f.Kind, f.At, f.Duration, f.Site)
	if f.Peer != "" {
		fmt.Fprintf(&b, "~%s", f.Peer)
	}
	switch f.Kind {
	case LossBurst:
		fmt.Fprintf(&b, " loss=%.2f", f.Loss)
	case LatencyChurn:
		fmt.Fprintf(&b, " lat=%v", f.Latency)
	case ClockSkew:
		fmt.Fprintf(&b, " skew=%v", f.Skew)
	}
	return b.String()
}

// Schedule is a reproducible fault plan.
type Schedule struct {
	Seed    int64
	Profile string
	Horizon time.Duration
	Faults  []Fault
}

// String renders the whole plan, one fault per line.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule seed=%d profile=%s horizon=%v faults=%d\n",
		s.Seed, s.Profile, s.Horizon, len(s.Faults))
	for _, f := range s.Faults {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	return b.String()
}

// Profile shapes a fault mix: per-class arrival rates (events per hour of
// virtual time) and severity knobs.
type Profile struct {
	Name string

	// Arrival rates, events/hour. Zero disables the class.
	CrashRate     float64
	OutageRate    float64
	PartitionRate float64
	LossRate      float64
	ChurnRate     float64
	SkewRate      float64

	// MeanDown is the mean crash/outage length; MeanCut the mean partition
	// length; MeanBurst the mean loss/churn/skew length.
	MeanDown  time.Duration
	MeanCut   time.Duration
	MeanBurst time.Duration

	// BurstLoss is the injected loss probability; ChurnLatency the latency
	// override; MaxSkew bounds the drawn certificate-clock drift.
	BurstLoss    float64
	ChurnLatency time.Duration
	MaxSkew      time.Duration

	// Hub, when set, joins the site pool for pair faults only — cutting a
	// site off from the VO center is the interesting partition.
	Hub string
}

// Quiet is the empty profile: Generate returns a schedule with no faults,
// which is how the metamorphic no-fault equivalence test is phrased.
func Quiet() Profile { return Profile{Name: "quiet"} }

// Profiles returns the built-in fault mixes gridlab chaos sweeps.
func Profiles() []Profile {
	return []Profile{
		{
			Name:      "crashes",
			CrashRate: 0.7, OutageRate: 0.7,
			MeanDown: 25 * time.Minute, MeanCut: 20 * time.Minute, MeanBurst: 10 * time.Minute,
			Hub: "vo-center",
		},
		{
			Name:          "partitions",
			PartitionRate: 1.0, LossRate: 0.8, ChurnRate: 0.8,
			MeanDown: 25 * time.Minute, MeanCut: 20 * time.Minute, MeanBurst: 10 * time.Minute,
			BurstLoss: 0.12, ChurnLatency: 400 * time.Millisecond,
			Hub: "vo-center",
		},
		{
			Name:      "mixed",
			CrashRate: 0.4, OutageRate: 0.4, PartitionRate: 0.5,
			LossRate: 0.4, ChurnRate: 0.4, SkewRate: 0.3,
			MeanDown: 25 * time.Minute, MeanCut: 20 * time.Minute, MeanBurst: 10 * time.Minute,
			BurstLoss: 0.12, ChurnLatency: 400 * time.Millisecond, MaxSkew: 48 * time.Hour,
			Hub: "vo-center",
		},
	}
}

// ProfileByName resolves a built-in profile ("quiet" included).
func ProfileByName(name string) (Profile, error) {
	if name == "quiet" {
		return Quiet(), nil
	}
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("faultlab: unknown profile %q", name)
}

// classSpec drives one Poisson arrival process inside Generate.
type classSpec struct {
	kind Kind
	rate float64 // events/hour
	mean time.Duration
	pair bool
}

// Generate draws a fault schedule for the profile over [0, horizon) using
// its own RNG — generation never touches an engine's random streams, so a
// fault-free (quiet) schedule provably cannot perturb the scenario it is
// injected into. The same (seed, profile, sites, horizon) always yields
// the same schedule.
func Generate(seed int64, p Profile, sites []string, horizon time.Duration) *Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := &Schedule{Seed: seed, Profile: p.Name, Horizon: horizon}
	if len(sites) == 0 {
		return s
	}
	pairPool := sites
	if p.Hub != "" {
		pairPool = append(append([]string{}, sites...), p.Hub)
	}
	classes := []classSpec{
		{NodeCrash, p.CrashRate, p.MeanDown, false},
		{SiteOutage, p.OutageRate, p.MeanDown, false},
		{NetPartition, p.PartitionRate, p.MeanCut, true},
		{LossBurst, p.LossRate, p.MeanBurst, true},
		{LatencyChurn, p.ChurnRate, p.MeanBurst, true},
		{ClockSkew, p.SkewRate, p.MeanBurst, false},
	}
	for _, c := range classes {
		if c.rate <= 0 || c.mean <= 0 {
			continue
		}
		interval := time.Duration(float64(time.Hour) / c.rate)
		t := time.Duration(rng.ExpFloat64() * float64(interval))
		for t < horizon {
			dur := time.Duration(rng.ExpFloat64() * float64(c.mean))
			if dur < time.Minute {
				dur = time.Minute
			}
			if t+dur > horizon {
				dur = horizon - t
			}
			f := Fault{Kind: c.kind, At: t, Duration: dur}
			if c.pair {
				a := pairPool[rng.Intn(len(pairPool))]
				b := a
				for b == a {
					b = pairPool[rng.Intn(len(pairPool))]
				}
				f.Site, f.Peer = a, b
			} else {
				f.Site = sites[rng.Intn(len(sites))]
			}
			switch c.kind {
			case LossBurst:
				f.Loss = p.BurstLoss
			case LatencyChurn:
				f.Latency = p.ChurnLatency
			case ClockSkew:
				// Drift far enough to matter against multi-hour leases.
				f.Skew = time.Duration((0.25 + 0.75*rng.Float64()) * float64(p.MaxSkew))
			}
			s.Faults = append(s.Faults, f)
			t += time.Duration(rng.ExpFloat64() * float64(interval))
		}
	}
	sort.Slice(s.Faults, func(i, j int) bool {
		a, b := s.Faults[i], s.Faults[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		return a.Peer < b.Peer
	})
	return s
}
