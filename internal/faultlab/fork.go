package faultlab

// Warm-fork sweep support: the chaos scenario's build phase — federation
// construction, certificate issuance, service placement, job-stream setup
// — is profile-independent, so a sweep that runs every profile for a seed
// can pay for it once. ForkedSeedReports builds the scenario once,
// snapshots the engine at the arm point, and re-forks that snapshot for
// each profile. The correctness contract (a forked run is byte-identical
// to a cold run of the same (seed, profile)) is enforced by the
// differential tests in fork_test.go over a seed grid under -race.

// ForkedSeedRun runs every profile for one seed off a single warm build,
// in profile order, calling visit with each report as it completes.
//
// visit runs BEFORE the next profile's fork: Report.Tracer is the live
// engine tracer, shared across the seed's forks, and the next fork rewinds
// it to the snapshot point — so trace output (WriteJSONL and friends) must
// be drained inside visit. Everything else on the Report (summary,
// schedule, violations, counters) is plain data owned by its own timeline
// and stays valid indefinitely.
func ForkedSeedRun(seed int64, profiles []Profile, cfg ChaosConfig, visit func(*Report)) {
	if len(profiles) == 0 {
		return
	}
	c := newChaosRun(seed, cfg)
	snap := c.f.Eng.Snapshot()
	for _, p := range profiles {
		snap.Fork()
		c.arm(Generate(seed, p, cfg.SiteNames(), cfg.Horizon))
		visit(c.finish())
	}
}

// ForkedSeedReports is ForkedSeedRun collecting the reports. The returned
// reports are byte-identical to calling RunChaos(seed, p, cfg) per
// profile, except Report.Tracer, which all point at the seed's shared
// tracer as rewound by the LAST fork (use ForkedSeedRun to drain traces
// per profile).
func ForkedSeedReports(seed int64, profiles []Profile, cfg ChaosConfig) []*Report {
	reports := make([]*Report, 0, len(profiles))
	ForkedSeedRun(seed, profiles, cfg, func(rep *Report) {
		reports = append(reports, rep)
	})
	return reports
}
