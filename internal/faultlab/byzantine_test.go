package faultlab

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/sim/snaptest"
	"repro/internal/trust"
)

var updateByz = flag.Bool("update-byz", false, "rewrite byzantine golden files")

// byzTestConfig is the shrunken byzantine grid: the fork-test scenario
// (every stateful layer on) plus a small adversarial market, sized so the
// differential and determinism gates stay fast under -race.
func byzTestConfig() ChaosConfig {
	cfg := forkTestConfig()
	// The 90m fork grid is too short for reputation to converge; give the
	// market enough probe traffic to starve the byzantine broker.
	cfg.Horizon = 6 * time.Hour
	cfg.Byzantine = ByzantineConfig{
		HonestBrokers:    2,
		ByzantineBrokers: 1,
		StockPerSite:     50,
		OversellFactor:   10,
		ReplayEvery:      1,
		Deposit:          5,
		SlashPenalty:     1,
		ScoreDecay:       trust.DefaultScoreDecay,
		MinScore:         0.25,
		AttackEvery:      20 * time.Minute,
		ShopEvery:        4 * time.Minute,
		ShopAmount:       0.25,
		LateFraction:     0.75,
	}
	return cfg
}

// serializeByzReport extends the chaos serialization with the byzantine
// section, so per-broker scores, bank totals, and attack counters are all
// inside the byte comparison — not just the summary rows derived from
// them.
func serializeByzReport(t *testing.T, rep *Report) []byte {
	t.Helper()
	var b bytes.Buffer
	b.Write(serializeReport(t, rep))
	if rep.Byzantine != nil {
		fmt.Fprintf(&b, "byzantine=%+v\n", *rep.Byzantine)
	}
	return b.Bytes()
}

// TestByzantineForkVsCold is satellite 3's differential half: with the
// byzantine layer on, running all profiles off one warm fork must be
// byte-identical — including scoreboard state, slash totals, and attack
// counters — to cold-building each (seed, profile) run. The whole byzRun
// hangs off the chaos SnapRoot, so a fork that failed to rewind any of
// its state (replay caches, banks, exchange rng, ticker positions) shows
// up here as a byte diff.
func TestByzantineForkVsCold(t *testing.T) {
	cfg := byzTestConfig()
	profiles := Profiles()
	cold := func(seed int64) []byte {
		var b bytes.Buffer
		for _, p := range profiles {
			b.Write(serializeByzReport(t, RunChaos(seed, p, cfg)))
		}
		return b.Bytes()
	}
	forked := func(seed int64) []byte {
		var b bytes.Buffer
		ForkedSeedRun(seed, profiles, cfg, func(rep *Report) {
			b.Write(serializeByzReport(t, rep))
		})
		return b.Bytes()
	}
	n := 8
	if testing.Short() {
		n = 2
	}
	snaptest.Diff(t, "byzantine", snaptest.Seeds(1, n), cold, forked)
}

// TestByzantineRepeatedForkIdentical pins rng rewind under the byzantine
// layer: forking the SAME profile twice off one snapshot must replay the
// market (exchange picks, shop ticks, attacks) byte-for-byte.
func TestByzantineRepeatedForkIdentical(t *testing.T) {
	cfg := byzTestConfig()
	p, _ := ProfileByName("mixed")
	for _, seed := range snaptest.Seeds(1, 4) {
		var runs [][]byte
		ForkedSeedRun(seed, []Profile{p, p}, cfg, func(rep *Report) {
			runs = append(runs, serializeByzReport(t, rep))
		})
		if !bytes.Equal(runs[0], runs[1]) {
			t.Fatalf("seed %d: second byzantine fork diverged:\n%s",
				seed, snaptest.Describe(runs[0], runs[1]))
		}
	}
}

// TestByzantineConvergence runs the golden scenario end to end and checks
// the paper-level claims on each seed: every replay and forgery rejected,
// collateral actually seized, the byzantine brokers' late market share
// within the 5% bound, and every byzantine broker scored strictly below
// every honest one by the end of the run.
func TestByzantineConvergence(t *testing.T) {
	cfg := DefaultByzantineChaosConfig()
	p, _ := ProfileByName("mixed")
	seeds := 3
	if testing.Short() {
		seeds = 1
	}
	for s := int64(1); s <= int64(seeds); s++ {
		rep := RunChaos(s, p, cfg)
		if !rep.OK() {
			t.Fatalf("seed %d: violations: %v", s, rep.Violations)
		}
		bz := rep.Byzantine
		if bz == nil {
			t.Fatalf("seed %d: byzantine stats missing", s)
		}
		if bz.ReplayAttempts == 0 || bz.ForgeAttempts == 0 {
			t.Fatalf("seed %d: attack ticker idle: %d replays, %d forgeries",
				s, bz.ReplayAttempts, bz.ForgeAttempts)
		}
		if bz.ReplayRejected != bz.ReplayAttempts {
			t.Errorf("seed %d: replays rejected %d/%d", s, bz.ReplayRejected, bz.ReplayAttempts)
		}
		if bz.ForgeRejected != bz.ForgeAttempts {
			t.Errorf("seed %d: forgeries rejected %d/%d", s, bz.ForgeRejected, bz.ForgeAttempts)
		}
		if bz.ShopBuys == 0 {
			t.Errorf("seed %d: market exerciser made no purchases", s)
		}
		if bz.ByzShareLate > 0.05 {
			t.Errorf("seed %d: byz late share %.4f > 0.05 (%d/%d)",
				s, bz.ByzShareLate, bz.ByzRedeemsLate, bz.MarketRedeemsLate)
		}
		if bz.CollateralSlashed <= 0 {
			t.Errorf("seed %d: no collateral slashed", s)
		}
		if bz.TrustReportErrs != 0 {
			t.Errorf("seed %d: %d trust report errors", s, bz.TrustReportErrs)
		}
		minHonest, maxByz := 2.0, -1.0
		for _, sc := range bz.Scores {
			if len(sc.Broker) >= 3 && sc.Broker[:3] == "byz" {
				if sc.Score > maxByz {
					maxByz = sc.Score
				}
			} else if sc.Score < minHonest {
				minHonest = sc.Score
			}
		}
		if maxByz >= minHonest {
			t.Errorf("seed %d: scoreboard did not separate: max byz %.4f >= min honest %.4f",
				s, maxByz, minHonest)
		}
	}
}

// TestByzantineAvailabilityDominance checks the defense is not itself a
// denial of service: per seed, the run with the byzantine layer (attacks
// plus reputation routing) must keep honest service availability at least
// as high as the identical run without it.
func TestByzantineAvailabilityDominance(t *testing.T) {
	withByz := byzTestConfig()
	plain := withByz
	plain.Byzantine = ByzantineConfig{}
	p, _ := ProfileByName("mixed")
	for _, seed := range snaptest.Seeds(1, 5) {
		base := RunChaos(seed, p, plain)
		byz := RunChaos(seed, p, withByz)
		if byz.Availability < base.Availability {
			t.Errorf("seed %d: byzantine availability %.4f < baseline %.4f",
				seed, byz.Availability, base.Availability)
		}
	}
}

// TestByzantineZeroConfigInert pins the compatibility contract: a zero
// ByzantineConfig must leave the scenario untouched — no exchange, no
// banks, no byzantine report section, and a report byte-identical to one
// from a config struct that predates the field.
func TestByzantineZeroConfigInert(t *testing.T) {
	if (ByzantineConfig{}).Enabled() {
		t.Fatal("zero ByzantineConfig reports Enabled")
	}
	cfg := forkTestConfig()
	p, _ := ProfileByName("crashes")
	rep := RunChaos(7, p, cfg)
	if rep.Byzantine != nil {
		t.Fatalf("layer off but report has byzantine section: %+v", *rep.Byzantine)
	}
}

// TestByzantineSweepGolden pins the small-grid evidence table to a
// committed golden file, so any drift in market routing, slashing, attack
// accounting, or rendering is an explicit, reviewed change. Regenerate
// with:
//
//	go test ./internal/faultlab -run TestByzantineSweepGolden -update-byz
func TestByzantineSweepGolden(t *testing.T) {
	cfg := byzTestConfig()
	p, _ := ProfileByName("mixed")
	res := ByzantineSweep(1, 5, p, cfg)
	if !res.OK() {
		t.Fatalf("golden grid fails its own gate:\n%s", res)
	}
	got := []byte(res.String())
	golden := filepath.Join("testdata", "byzantine_sweep_golden.txt")
	if *updateByz {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("byzantine sweep drifted from golden file.\ngot:\n%s\nwant:\n%s", got, want)
	}
}
