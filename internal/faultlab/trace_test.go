package faultlab

import (
	"bytes"
	"testing"
	"time"
)

// shortChaos shrinks the default scenario so the traced/untraced and
// determinism comparisons stay fast.
func shortChaos() ChaosConfig {
	cfg := DefaultChaosConfig()
	cfg.Horizon = 2 * time.Hour
	return cfg
}

// TestChaosTracingZeroPerturbation gates the obs layer's core promise at
// chaos scale: switching tracing on changes nothing about the run — the
// summary (jobs, redeploys, degraded time, violations) is byte-identical
// — because instrumentation adds no engine events and no rng draws.
func TestChaosTracingZeroPerturbation(t *testing.T) {
	p, err := ProfileByName("mixed")
	if err != nil {
		t.Fatal(err)
	}
	cfg := shortChaos()
	plain := RunChaos(5, p, cfg)
	if plain.Tracer != nil {
		t.Error("untraced run carries a tracer")
	}
	cfg.Trace = true
	traced := RunChaos(5, p, cfg)
	if traced.Tracer == nil {
		t.Fatal("traced run lost its tracer")
	}
	if plain.Summary != traced.Summary {
		t.Errorf("tracing perturbed the run:\n--- untraced ---\n%s\n--- traced ---\n%s", plain.Summary, traced.Summary)
	}
}

// TestChaosTraceDeterministic asserts same seed + profile + tracing twice
// yields byte-identical JSONL exports.
func TestChaosTraceDeterministic(t *testing.T) {
	p, err := ProfileByName("mixed")
	if err != nil {
		t.Fatal(err)
	}
	cfg := shortChaos()
	cfg.Trace = true
	export := func() []byte {
		rep := RunChaos(9, p, cfg)
		var buf bytes.Buffer
		if err := rep.Tracer.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed chaos JSONL differs (%d vs %d bytes)", len(a), len(b))
	}
	if len(a) == 0 {
		t.Fatal("chaos trace is empty")
	}
}
