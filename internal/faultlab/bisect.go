package faultlab

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/sim"
)

// Bisection: localize WHEN a chaos run first goes wrong without replaying
// the whole horizon per guess. The coarse pass runs the scenario once,
// snapshotting the engine at window boundaries and noting the cumulative
// violation count at each; the first window whose count grows contains the
// first recorded violation. The fine pass then binary-searches inside that
// window by re-forking the window-start snapshot and running to the probe
// time: the audit ticker is live in every forked timeline, so "a new
// violation was recorded by time T" is a cheap, monotone predicate — read
// straight off the scenario state, no separate audit pass — and the search
// converges on the exact audit tick that first caught the breach.

// BisectResult is the outcome of localizing a chaos failure in time.
type BisectResult struct {
	Seed    int64
	Profile string
	// Report is the full run's outcome (identical to RunChaos for the same
	// inputs; the coarse pass's snapshots are behaviourally free).
	Report *Report
	// FailAt is the virtual time of the audit that first recorded a
	// violation, localized to Resolution. Zero when the run never failed
	// mid-run (clean run, or FinalOnly).
	FailAt time.Duration
	// Lo, Hi bound the coarse window the failure was localized into.
	Lo, Hi time.Duration
	// First holds the violations the FailAt audit recorded.
	First []Violation
	// FinalOnly reports that violations appeared only in the post-heal
	// converged audit, so there is no mid-run time to bisect to.
	FinalOnly bool
	// Probes counts forked probe runs the fine pass executed; Windows is
	// the coarse snapshot count.
	Probes, Windows int
}

// OK reports a clean run (nothing to bisect).
func (r *BisectResult) OK() bool { return r.Report.OK() }

// String renders the bisection for CLI output.
func (r *BisectResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "bisect: seed=%d profile=%s windows=%d probes=%d\n",
		r.Seed, r.Profile, r.Windows, r.Probes)
	switch {
	case r.OK():
		b.WriteString("run is clean: nothing to bisect\n")
	case r.FinalOnly:
		b.WriteString("violations appear only in the final converged audit (no mid-run breach)\n")
	default:
		fmt.Fprintf(&b, "first violation recorded at %v (window %v..%v)\n", r.FailAt, r.Lo, r.Hi)
		for _, v := range r.First {
			fmt.Fprintf(&b, "  %s\n", v)
		}
	}
	return b.String()
}

// BisectResolution is the fine pass's stopping width; audits land on
// discrete ticks, so converging below the tick spacing pins the exact one.
const BisectResolution = time.Second

// Bisect runs the (seed, profile) chaos scenario once with windows coarse
// snapshots across the horizon, then — if any mid-run violation was
// recorded — binary-searches the first failing window by re-forking its
// start snapshot. windows <= 0 defaults to 8.
func Bisect(seed int64, p Profile, cfg ChaosConfig, windows int) *BisectResult {
	if windows <= 0 {
		windows = 8
	}
	sched := Generate(seed, p, cfg.SiteNames(), cfg.Horizon)
	c := newChaosRun(seed, cfg)
	c.arm(sched)

	// Coarse pass: one full run, snapshotting at each window boundary.
	// snaps[k] is the state at bound[k]; violN[k] the violations recorded
	// by then. bound[0] is the arm point (t≈1s), bound[windows] the horizon.
	bounds := make([]time.Duration, windows+1)
	snaps := make([]sim.Snapshot, windows+1)
	violN := make([]int, windows+1)
	bounds[0] = c.f.Eng.Now()
	snaps[0] = c.f.Eng.Snapshot()
	for k := 1; k <= windows; k++ {
		bounds[k] = cfg.Horizon * time.Duration(k) / time.Duration(windows)
		c.f.Eng.RunUntil(bounds[k])
		snaps[k] = c.f.Eng.Snapshot()
		violN[k] = len(c.violations)
	}
	res := &BisectResult{
		Seed: seed, Profile: p.Name, Windows: windows,
		Report: c.finish(),
	}
	if res.OK() {
		return res
	}

	// First window whose violation count grew.
	first := -1
	for k := 1; k <= windows; k++ {
		if violN[k] > violN[k-1] {
			first = k
			break
		}
	}
	if first < 0 {
		res.FinalOnly = true
		return res
	}
	res.Lo, res.Hi = bounds[first-1], bounds[first]
	base := violN[first-1]

	// Fine pass: fork the window-start snapshot and run to the probe time;
	// the live audit ticker appends to c.violations, so the predicate is
	// just a length check. Monotone by construction — violations only
	// accumulate along a timeline.
	probe := func(at time.Duration) bool {
		snaps[first-1].Fork()
		c.f.Eng.RunUntil(at)
		res.Probes++
		return len(c.violations) > base
	}
	lo, hi := res.Lo, res.Hi
	for hi-lo > BisectResolution {
		mid := lo + (hi-lo)/2
		if probe(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	res.FailAt = hi
	// One last fork to harvest exactly what the first failing audit saw.
	snaps[first-1].Fork()
	c.f.Eng.RunUntil(hi)
	res.First = append([]Violation(nil), c.violations[base:]...)
	return res
}
