package faultlab

import (
	"strings"
	"testing"
	"time"
)

// shortLeaseConfig is the scenario where lease keepalive is load-bearing:
// 90-minute leases inside a 4-hour fault window, with a periodic repair
// pass so the no-resilience arm can at least limp back after each lapse.
func shortLeaseConfig() ChaosConfig {
	cfg := DefaultChaosConfig()
	cfg.Horizon = 4 * time.Hour
	cfg.Lease = 90 * time.Minute
	cfg.ReconcileEvery = 15 * time.Minute
	return cfg
}

// Resilience must not cost determinism: same (seed, profile, config)
// reproduces the run bit-for-bit, retry jitter and breaker cooldowns
// included, and turning tracing on observes the same run.
func TestChaosResilienceDeterministic(t *testing.T) {
	cfg := shortLeaseConfig()
	cfg.Resilience = true
	p, _ := ProfileByName("mixed")
	a := RunChaos(23, p, cfg)
	b := RunChaos(23, p, cfg)
	if strings.Join(a.Trace, "\n") != strings.Join(b.Trace, "\n") {
		t.Errorf("traces diverged:\n%s\nvs\n%s",
			strings.Join(a.Trace, "\n"), strings.Join(b.Trace, "\n"))
	}
	if a.Summary != b.Summary {
		t.Errorf("summaries diverged:\n%s\nvs\n%s", a.Summary, b.Summary)
	}
	traced := cfg
	traced.Trace = true
	c := RunChaos(23, p, traced)
	if c.Summary != a.Summary {
		t.Errorf("traced resilience run diverged:\n%s\nvs\n%s", c.Summary, a.Summary)
	}
	if a.Resilience == nil || a.Resilience.Renewals == 0 {
		t.Errorf("resilience run recorded no renewals: %+v", a.Resilience)
	}
}

// The tentpole gate: on the same seeds, availability with renewal +
// breakers ON dominates OFF seed-by-seed and strictly in aggregate —
// the no-resilience arm loses every PoP each 90 minutes and waits for
// the next repair pass, the resilient arm renews in place.
func TestResilienceAvailabilityDominates(t *testing.T) {
	if testing.Short() {
		t.Skip("dominance sweep is a long acceptance test")
	}
	off := shortLeaseConfig()
	on := shortLeaseConfig()
	on.Resilience = true
	p, _ := ProfileByName("mixed")
	var sumOn, sumOff float64
	lapsesOn, lapsesOff := 0, 0
	for seed := int64(1); seed <= 20; seed++ {
		a := RunChaos(seed, p, off)
		b := RunChaos(seed, p, on)
		if b.Availability < a.Availability {
			t.Errorf("seed %d: availability on %.4f < off %.4f", seed, b.Availability, a.Availability)
		}
		sumOn += b.Availability
		sumOff += a.Availability
		lapsesOn += b.LeaseLapses
		lapsesOff += a.LeaseLapses
	}
	if sumOn <= sumOff {
		t.Errorf("aggregate availability on %.4f not strictly above off %.4f", sumOn/20, sumOff/20)
	}
	if lapsesOn >= lapsesOff {
		t.Errorf("lease lapses on %d not below off %d", lapsesOn, lapsesOff)
	}
}

// The soak satellite: across 20 seeds, a healthy site never loses a
// lease (quiet runs renew forever with zero lapses), every invariant —
// lease continuity included — holds under the mixed profile, and every
// breaker is closed again after HealAll plus the converge window.
func TestChaosResilienceSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak sweep is a long acceptance test")
	}
	cfg := shortLeaseConfig()
	cfg.Resilience = true
	mixed, _ := ProfileByName("mixed")
	for seed := int64(1); seed <= 20; seed++ {
		quiet := RunChaos(seed, Quiet(), cfg)
		if !quiet.OK() {
			t.Errorf("seed %d quiet: %v", seed, quiet.Violations)
		}
		if quiet.LeaseLapses != 0 {
			t.Errorf("seed %d quiet: %d leases lapsed on healthy sites", seed, quiet.LeaseLapses)
		}
		if quiet.Resilience == nil || quiet.Resilience.Renewals == 0 {
			t.Errorf("seed %d quiet: keepalive never renewed", seed)
		}

		rep := RunChaos(seed, mixed, cfg)
		if !rep.OK() {
			t.Errorf("seed %d mixed: %v (repro: %s)", seed, rep.Violations, rep.Repro())
		}
		if rep.Resilience == nil {
			t.Fatalf("seed %d mixed: no resilience stats", seed)
		}
		if open := rep.Resilience.OpenSites; len(open) != 0 {
			t.Errorf("seed %d mixed: breakers still open after heal: %v", seed, open)
		}
	}
}

// Sweep aggregates feed the EXPERIMENTS evidence table.
func TestSweepAggregatesAvailability(t *testing.T) {
	cfg := shortLeaseConfig()
	cfg.Resilience = true
	res := Sweep(1, 2, []Profile{Quiet()}, cfg)
	if res.Runs != 2 {
		t.Fatalf("Runs = %d", res.Runs)
	}
	if res.AvailabilitySum <= 0 || res.AvailabilitySum > 2 {
		t.Errorf("AvailabilitySum = %v", res.AvailabilitySum)
	}
	if res.LeaseLapses != 0 {
		t.Errorf("LeaseLapses = %d on quiet runs", res.LeaseLapses)
	}
}

// Teeth for the continuity checker: Repro must also carry the flags
// needed to rebuild the configuration.
func TestReproCarriesResilienceFlags(t *testing.T) {
	cfg := shortLeaseConfig()
	cfg.Resilience = true
	rep := RunChaos(3, Quiet(), cfg)
	want := "gridlab chaos -seed 3 -profile quiet -resilience -lease 1h30m0s -reconcile 15m0s"
	if got := rep.Repro(); got != want {
		t.Errorf("Repro() = %q, want %q", got, want)
	}
}
