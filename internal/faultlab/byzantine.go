package faultlab

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/adversary"
	"repro/internal/broker"
	"repro/internal/capability"
	"repro/internal/core"
	"repro/internal/identity"
	"repro/internal/metrics"
	"repro/internal/sharp"
	"repro/internal/sim"
	"repro/internal/trust"
)

// ByzantineConfig adds adversarial actors and the reputation/collateral
// defense to a chaos run. The zero value (both broker counts zero)
// disables the whole layer and keeps the scenario byte-identical to a
// pre-byzantine run.
type ByzantineConfig struct {
	// HonestBrokers and ByzantineBrokers populate the ticket exchange.
	// Honest brokers are plain sharp agents; byzantine ones are
	// adversary.OversellBrokers.
	HonestBrokers    int
	ByzantineBrokers int
	// StockPerSite is each broker's real per-site root ticket amount.
	StockPerSite float64
	// OversellFactor and ReplayEvery shape the byzantine brokers (see
	// adversary.OversellBroker).
	OversellFactor float64
	ReplayEvery    int
	// Deposit is each broker's collateral at each site bank; SlashPenalty
	// the seizure per detected fraud.
	Deposit      float64
	SlashPenalty float64
	// ScoreDecay and MinScore tune the buyer-side scoreboard and the
	// exchange's reputation eligibility floor.
	ScoreDecay float64
	MinScore   float64
	// AttackEvery paces the client-side attack ticker (replayed redeems
	// and forged chains thrown at the round-robin next live site). Zero
	// disables the ticker.
	AttackEvery time.Duration
	// ShopEvery paces the market exerciser: a steady stream of probe
	// purchases (bought on the exchange, redeemed, outcome-scored, lease
	// released) standing in for the federation's other service managers.
	// This is the traffic the reputation loop converges on — without it
	// the managed service alone buys too rarely for byzantine brokers to
	// be found out. Zero disables it. ShopAmount is the per-purchase ask.
	ShopEvery  time.Duration
	ShopAmount float64
	// LateFraction positions the market-share measurement mark: the
	// byzantine share is computed over redeems after LateFraction of the
	// run, when the scoreboard has had time to converge.
	LateFraction float64
	// RenegeSites wraps the first N site authorities in
	// adversary.RenegeAuthority with period RenegeEvery. Off by default
	// in the golden sweep: a reneging site's fake conflict is blamed on
	// the (innocent) seller, which is a documented detection limit, not
	// part of the convergence claim.
	RenegeSites int
	RenegeEvery int
}

// Enabled reports whether the byzantine layer is active.
func (b ByzantineConfig) Enabled() bool { return b.HonestBrokers+b.ByzantineBrokers > 0 }

// DefaultByzantineConfig is the golden byzantine mix: an
// honest-majority market (3 vs 2) where every byzantine sale after the
// first per site is a double-sell.
func DefaultByzantineConfig() ByzantineConfig {
	return ByzantineConfig{
		HonestBrokers:    3,
		ByzantineBrokers: 2,
		StockPerSite:     200,
		OversellFactor:   10,
		ReplayEvery:      1,
		Deposit:          10,
		SlashPenalty:     1,
		ScoreDecay:       trust.DefaultScoreDecay,
		// 0.35 means two consecutive frauds (0.5 → 0.4 → 0.32 under 0.8
		// decay) drop a fresh broker below the floor; 0.25 would need four
		// and lets a late first-sale-at-a-fresh-site slip through the mark.
		MinScore:     0.35,
		AttackEvery:  30 * time.Minute,
		ShopEvery:    4 * time.Minute,
		ShopAmount:   0.25,
		LateFraction: 0.75,
	}
}

// ByzantineStats is the byzantine section of a chaos Report.
type ByzantineStats struct {
	HonestBrokers, ByzBrokers int
	// ByzRedeemsLate / MarketRedeemsLate count successful market redeems
	// after the LateFraction mark; ByzShareLate is their ratio — the
	// convergence headline (byzantine market share → 0).
	ByzRedeemsLate, MarketRedeemsLate int
	ByzShareLate                      float64
	// CollateralHeld / CollateralSlashed / SlashEvents aggregate the site
	// banks at the end of the run.
	CollateralHeld, CollateralSlashed float64
	SlashEvents                       int
	// ReplayAttempts/Rejected and ForgeAttempts/Rejected count the attack
	// ticker's direct assaults on site authorities. Every attempt must be
	// rejected; acceptance files a violation.
	ReplayAttempts, ReplayRejected int
	ForgeAttempts, ForgeRejected   int
	// ShopBuys / ShopFails count the market exerciser's probe purchases.
	ShopBuys, ShopFails int
	// Scores is the final scoreboard, sorted by broker name.
	Scores []trust.BrokerScore
	// TrustReportErrs counts scoreboard feeding failures at the manager.
	TrustReportErrs int
}

// byzRun holds the byzantine layer's mutable run state. It hangs off
// chaosRun.byz, so it is reachable from the engine snapshot root and
// rewinds with the rest of the scenario on fork.
type byzRun struct {
	cfg    ByzantineConfig
	scores *trust.Scoreboard
	ex     *broker.Exchange
	banks  []*trust.Bank

	honest []*sharp.Agent
	byz    []*adversary.OversellBroker
	renege []*adversary.RenegeAuthority

	attacker     *identity.Principal
	attackSerial uint64
	attackNext   int
	attackTicker *sim.Ticker

	shopper    *identity.Principal
	shopNext   int
	shopTicker *sim.Ticker
	// ShopBuys / ShopFails count probe purchases that did / did not
	// convert into leases through any seller; ReportErrs counts
	// scoreboard feeding failures from the exerciser.
	ShopBuys, ShopFails int
	ReportErrs          int

	// okAtMark snapshots per-seller successful redeems at the
	// LateFraction mark; sellerNames fixes the deterministic iteration
	// order (honest first, then byzantine, in creation order).
	sellerNames []string
	byzSet      map[string]bool
	okAtMark    map[string]int
	marked      bool

	// ReplayAttempts etc. mirror ByzantineStats' attack counters.
	ReplayAttempts, ReplayRejected int
	ForgeAttempts, ForgeRejected   int
	// AttackSkips counts ticks that found no live site or no stock.
	AttackSkips int
}

// newByzRun builds the market: scoreboard, per-site collateral banks,
// honest and byzantine sellers stocked at every site, and the exchange,
// which it installs on the federation's deployer. Called from
// newChaosRun after the house agent is stocked and before the service
// manager starts, so the very first deploy already buys on the market.
func newByzRun(f *core.Federation, cfg ByzantineConfig, stockUntil time.Duration) *byzRun {
	b := &byzRun{
		cfg:      cfg,
		scores:   trust.NewScoreboard(cfg.ScoreDecay),
		byzSet:   make(map[string]bool),
		okAtMark: make(map[string]int),
		attacker: identity.NewPrincipal("byz-client", f.Rng),
		shopper:  identity.NewPrincipal("market-probe", f.Rng),
	}
	sites := f.JoinedSites()
	for _, s := range sites {
		if s.Runtime == nil {
			continue
		}
		s.Runtime.Bank = trust.NewBank(s.Spec.Name)
		b.banks = append(b.banks, s.Runtime.Bank)
	}
	b.ex = broker.NewExchange(f.Eng.ForkRand(), b.scores)
	b.ex.SlashPenalty = cfg.SlashPenalty
	b.ex.MinScore = cfg.MinScore

	for i := 0; i < cfg.HonestBrokers; i++ {
		ag := sharp.NewAgent(identity.NewPrincipal(fmt.Sprintf("honest-%02d", i), f.Rng))
		for _, s := range sites {
			if s.Runtime == nil {
				continue
			}
			tk, err := s.Runtime.Authority.IssueTicket(ag.Name, ag.Key(), capability.CPU, cfg.StockPerSite, 0, stockUntil)
			if err != nil {
				panic(fmt.Sprintf("faultlab: stocking honest broker: %v", err))
			}
			if err := ag.Acquire(tk); err != nil {
				panic(fmt.Sprintf("faultlab: honest broker acquire: %v", err))
			}
			if err := s.Runtime.Bank.Deposit(ag.Name, cfg.Deposit); err != nil {
				panic(fmt.Sprintf("faultlab: honest deposit: %v", err))
			}
		}
		b.honest = append(b.honest, ag)
		b.ex.AddSeller(ag)
		b.sellerNames = append(b.sellerNames, ag.SellerName())
	}
	for i := 0; i < cfg.ByzantineBrokers; i++ {
		ob := adversary.NewOversellBroker(identity.NewPrincipal(fmt.Sprintf("byz-%02d", i), f.Rng),
			cfg.OversellFactor, cfg.ReplayEvery)
		for _, s := range sites {
			if s.Runtime == nil {
				continue
			}
			tk, err := s.Runtime.Authority.IssueTicket(ob.SellerName(), ob.Key(), capability.CPU, cfg.StockPerSite, 0, stockUntil)
			if err != nil {
				panic(fmt.Sprintf("faultlab: stocking byz broker: %v", err))
			}
			if err := ob.Acquire(tk); err != nil {
				panic(fmt.Sprintf("faultlab: byz broker acquire: %v", err))
			}
			if err := s.Runtime.Bank.Deposit(ob.SellerName(), cfg.Deposit); err != nil {
				panic(fmt.Sprintf("faultlab: byz deposit: %v", err))
			}
		}
		b.byz = append(b.byz, ob)
		b.byzSet[ob.SellerName()] = true
		b.ex.AddSeller(ob)
		b.sellerNames = append(b.sellerNames, ob.SellerName())
	}
	f.Deployer.Exchange = b.ex

	// Optional reneging sites: wrap the first N authorities so every
	// RenegeEvery-th valid redeem is reneged on.
	for i := 0; i < cfg.RenegeSites && i < len(sites); i++ {
		rt := sites[i].Runtime
		if rt == nil {
			continue
		}
		if auth, ok := rt.Authority.(*sharp.Authority); ok {
			ren := adversary.NewRenegeAuthority(auth, cfg.RenegeEvery)
			rt.Authority = ren
			b.renege = append(b.renege, ren)
		}
	}
	return b
}

// arm starts the market exerciser and attack tickers and plants the
// late-share mark.
func (b *byzRun) arm(c *chaosRun) {
	if b.cfg.ShopEvery > 0 {
		b.shopTicker = c.f.Eng.NewTicker(b.cfg.ShopEvery, func() { b.shop(c) })
	}
	if b.cfg.AttackEvery > 0 {
		b.attackTicker = c.f.Eng.NewTicker(b.cfg.AttackEvery, func() { b.attack(c) })
	}
	frac := b.cfg.LateFraction
	if frac <= 0 || frac >= 1 {
		frac = 0.75
	}
	c.f.Eng.At(time.Duration(float64(c.end)*frac), func() { b.mark() })
}

// mark snapshots per-seller successful redeems for the late-share
// computation.
func (b *byzRun) mark() {
	for _, name := range b.sellerNames {
		b.okAtMark[name] = b.ex.Stats(name).RedeemOK
	}
	b.marked = true
}

// shop is one tick of the market exerciser: buy ShopAmount at the next
// live site on the exchange, score every seller outcome, and release
// the leases immediately — a probe purchase standing in for the
// federation's wider service-manager population. Byzantine double-sells
// surface here as fraudulent redeem failures: the seller is slashed and
// its score decays, which is the traffic that starves it out of the
// market.
func (b *byzRun) shop(c *chaosRun) {
	f := c.f
	sites := f.JoinedSites()
	for try := 0; try < len(sites); try++ {
		s := sites[b.shopNext%len(sites)]
		b.shopNext++
		if s.Runtime == nil || f.SiteDown(s.Spec.Name) {
			continue
		}
		now := f.Eng.Now()
		leases, outcomes, err := b.ex.Purchase(b.shopper.Name, b.shopper.Public(),
			s.Spec.Name, s.Runtime, capability.CPU, b.cfg.ShopAmount, now, now+time.Hour)
		for _, o := range outcomes {
			if rerr := b.scores.ReportOutcome(o.Seller, o.OK); rerr != nil {
				b.ReportErrs++
			}
		}
		if err != nil {
			b.ShopFails++
			return
		}
		b.ShopBuys++
		for _, l := range leases {
			s.Runtime.Authority.ReleaseLease(l)
		}
		return
	}
	b.ShopFails++
}

// attack is one tick of the client-side adversary: pick the next live
// site round-robin, buy real tickets from the house agent, then (1)
// redeem one, release the lease, and replay it — the replay cache must
// reject the second redeem; (2) throw the four forgery shapes at the
// authority — each must fail with its typed error. Any acceptance is
// recorded as a violation.
func (b *byzRun) attack(c *chaosRun) {
	f := c.f
	sites := f.JoinedSites()
	for try := 0; try < len(sites); try++ {
		s := sites[b.attackNext%len(sites)]
		b.attackNext++
		if s.Runtime == nil || f.SiteDown(s.Spec.Name) {
			continue
		}
		b.attackSite(c, s)
		return
	}
	b.AttackSkips++
}

func (b *byzRun) attackSite(c *chaosRun, s *core.Site) {
	f := c.f
	now := f.Eng.Now()
	site := s.Spec.Name
	buy := func() *sharp.Ticket {
		tks, err := f.Deployer.Agent.Sell(b.attacker.Name, b.attacker.Public(),
			site, capability.CPU, 0.25, now, now+time.Hour)
		if err != nil || len(tks) != 1 {
			return nil
		}
		return tks[0]
	}
	tk := buy()
	if tk == nil {
		b.AttackSkips++
		return
	}
	// Replay: redeem, release, redeem again.
	b.ReplayAttempts++
	lease, err := s.Runtime.Authority.Redeem(tk)
	if err == nil {
		s.Runtime.Authority.ReleaseLease(lease)
		if _, err := s.Runtime.Authority.Redeem(tk); errors.Is(err, sharp.ErrReplayed) {
			b.ReplayRejected++
		} else {
			c.record([]Violation{{
				Invariant: "byz-replay-accepted",
				Detail:    fmt.Sprintf("%s: replayed redeem at %v returned %v", site, now, err),
			}})
		}
	} else {
		// The honest redeem itself failed (skewed clock, expired window):
		// nothing was spent, so no replay is possible either.
		b.ReplayRejected++
	}
	// Forgeries, all derived from a second legitimately bought ticket.
	tk2 := buy()
	if tk2 == nil {
		b.AttackSkips++
		return
	}
	b.attackSerial++
	b.forge(c, s, adversary.WidenDelegation(tk2, b.attacker, 4, b.attackSerial),
		sharp.ErrAmountWidened, "widened delegation")
	b.forge(c, s, adversary.TamperAmount(tk2, 3), sharp.ErrBadSignature, "tampered amount")
	b.attackSerial++
	b.forge(c, s, adversary.SelfIssuedRoot(b.attacker, site, capability.CPU, 5, now, now+time.Hour, b.attackSerial),
		sharp.ErrBadChain, "self-issued root")
	b.forge(c, s, adversary.SpliceChains(tk2, tk), sharp.ErrBadChain, "spliced chain")
}

// forge presents one forged ticket and asserts the typed rejection.
func (b *byzRun) forge(c *chaosRun, s *core.Site, tk *sharp.Ticket, want error, kind string) {
	b.ForgeAttempts++
	if _, err := s.Runtime.Authority.Redeem(tk); errors.Is(err, want) {
		b.ForgeRejected++
	} else {
		c.record([]Violation{{
			Invariant: "byz-forgery-accepted",
			Detail:    fmt.Sprintf("%s: %s returned %v; want %v", s.Spec.Name, kind, err, want),
		}})
	}
}

// stats assembles the report section and summary rows after the run.
func (b *byzRun) stats(c *chaosRun, tbl *metrics.Table) *ByzantineStats {
	st := &ByzantineStats{
		HonestBrokers:   len(b.honest),
		ByzBrokers:      len(b.byz),
		ReplayAttempts:  b.ReplayAttempts,
		ReplayRejected:  b.ReplayRejected,
		ForgeAttempts:   b.ForgeAttempts,
		ForgeRejected:   b.ForgeRejected,
		ShopBuys:        b.ShopBuys,
		ShopFails:       b.ShopFails,
		Scores:          b.scores.Snapshot(),
		TrustReportErrs: c.mgr.TrustReportErrs + b.ReportErrs,
	}
	for _, name := range b.sellerNames {
		late := b.ex.Stats(name).RedeemOK - b.okAtMark[name]
		st.MarketRedeemsLate += late
		if b.byzSet[name] {
			st.ByzRedeemsLate += late
		}
	}
	if st.MarketRedeemsLate > 0 {
		st.ByzShareLate = float64(st.ByzRedeemsLate) / float64(st.MarketRedeemsLate)
	}
	for _, bank := range b.banks {
		st.CollateralHeld += bank.TotalHeld()
		st.CollateralSlashed += bank.TotalSlashed()
		st.SlashEvents += len(bank.Events())
	}
	tbl.AddRow("byz brokers", fmt.Sprintf("%d/%d", st.ByzBrokers, st.HonestBrokers+st.ByzBrokers))
	tbl.AddRow("market probes", fmt.Sprintf("%d ok, %d failed", st.ShopBuys, st.ShopFails))
	tbl.AddRow("byz late redeems", fmt.Sprintf("%d/%d", st.ByzRedeemsLate, st.MarketRedeemsLate))
	tbl.AddRow("byz late share", fmt.Sprintf("%.4f", st.ByzShareLate))
	tbl.AddRow("collateral held", fmt.Sprintf("%.1f", st.CollateralHeld))
	tbl.AddRow("collateral slashed", fmt.Sprintf("%.1f", st.CollateralSlashed))
	tbl.AddRow("slash events", st.SlashEvents)
	tbl.AddRow("replays rejected", fmt.Sprintf("%d/%d", st.ReplayRejected, st.ReplayAttempts))
	tbl.AddRow("forgeries rejected", fmt.Sprintf("%d/%d", st.ForgeRejected, st.ForgeAttempts))
	for _, sc := range st.Scores {
		tbl.AddRow("score "+sc.Broker, fmt.Sprintf("%.4f (%d)", sc.Score, sc.Reports))
	}
	return st
}

// DefaultByzantineChaosConfig is the golden byzantine scenario: the
// resilience kit on (renewing leases, breakers, reconcile loop) plus the
// default byzantine mix.
func DefaultByzantineChaosConfig() ChaosConfig {
	cfg := DefaultChaosConfig()
	cfg.Resilience = true
	cfg.Lease = 90 * time.Minute
	cfg.ReconcileEvery = 15 * time.Minute
	cfg.Byzantine = DefaultByzantineConfig()
	return cfg
}

// ByzantineSweepResult aggregates a byzantine seed sweep into the
// evidence table the golden test pins.
type ByzantineSweepResult struct {
	Runs       int
	ViolationN int
	// MaxByzShareLate is the worst per-seed late byzantine market share —
	// the convergence bound (≤ 5%) is checked against this.
	MaxByzShareLate float64
	// MeanAvailability averages honest service availability over seeds.
	MeanAvailability float64
	// TotalSlashed sums seized collateral over seeds.
	TotalSlashed float64
	// AttacksOK reports every replay and forgery attempt rejected, in
	// every seed.
	AttacksOK bool
	// Table is the per-seed evidence table.
	Table string
	// First is the first violating report in sweep order, if any.
	First *Report

	availabilitySum float64
	tbl             *metrics.Table
}

// OK is the sweep's acceptance gate: no violations, every attack
// rejected, and the byzantine brokers' late market share bounded by 5%.
func (r *ByzantineSweepResult) OK() bool {
	return r.ViolationN == 0 && r.AttacksOK && r.MaxByzShareLate <= 0.05
}

// NewByzantineSweepResult returns an empty aggregate ready for Add.
func NewByzantineSweepResult() *ByzantineSweepResult {
	return &ByzantineSweepResult{
		AttacksOK: true,
		tbl: metrics.NewTable("seed", "availability", "byz share", "slashed",
			"replays", "forgeries", "violations"),
	}
}

// Add folds one byzantine report into the aggregate. Reports must be
// added in seed order; the parallel sweep reduces through this method in
// that order, which keeps its output byte-identical to the sequential
// one.
func (r *ByzantineSweepResult) Add(rep *Report) {
	bz := rep.Byzantine
	if bz == nil {
		bz = &ByzantineStats{}
	}
	r.Runs++
	r.ViolationN += len(rep.Violations)
	r.availabilitySum += rep.Availability
	r.MeanAvailability = r.availabilitySum / float64(r.Runs)
	if bz.ByzShareLate > r.MaxByzShareLate {
		r.MaxByzShareLate = bz.ByzShareLate
	}
	r.TotalSlashed += bz.CollateralSlashed
	if bz.ReplayRejected != bz.ReplayAttempts || bz.ForgeRejected != bz.ForgeAttempts {
		r.AttacksOK = false
	}
	if !rep.OK() && r.First == nil {
		r.First = rep
	}
	r.tbl.AddRow(rep.Seed,
		fmt.Sprintf("%.4f", rep.Availability),
		fmt.Sprintf("%.4f", bz.ByzShareLate),
		fmt.Sprintf("%.1f", bz.CollateralSlashed),
		fmt.Sprintf("%d/%d", bz.ReplayRejected, bz.ReplayAttempts),
		fmt.Sprintf("%d/%d", bz.ForgeRejected, bz.ForgeAttempts),
		len(rep.Violations))
	r.Table = r.tbl.String()
}

// String renders the evidence table plus the aggregate verdict.
func (r *ByzantineSweepResult) String() string {
	var b strings.Builder
	b.WriteString(r.Table)
	fmt.Fprintf(&b, "\nruns %d  violations %d  mean availability %.4f  max byz late share %.4f  slashed %.1f  attacks rejected %v\n",
		r.Runs, r.ViolationN, r.MeanAvailability, r.MaxByzShareLate, r.TotalSlashed, r.AttacksOK)
	if r.First != nil {
		fmt.Fprintf(&b, "first failure: %s\n", r.First.Repro())
	}
	return b.String()
}

// ByzantineSweep runs the byzantine scenario over a seed range under one
// profile, sequentially. The parallel equivalent lives in
// internal/perf/chaos; both reduce through Add in seed order and render
// byte-identical results.
func ByzantineSweep(startSeed int64, seeds int, p Profile, cfg ChaosConfig) *ByzantineSweepResult {
	res := NewByzantineSweepResult()
	for s := int64(0); s < int64(seeds); s++ {
		res.Add(RunChaos(startSeed+s, p, cfg))
	}
	return res
}
