package faultlab

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/gram"
	"repro/internal/mds"
	"repro/internal/servicemgr"
	"repro/internal/sharp"
	"repro/internal/silk"
	"repro/internal/trust"
)

// Violation is one detected invariant breach.
type Violation struct {
	// Invariant names the broken property ("lease-term", "port-excl", ...).
	Invariant string
	Detail    string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// CheckLeaseTerms asserts SHARP's containment property on a site's lease
// audit log: a granted lease's hard term must sit inside the redeemed
// ticket's leaf term, which in turn cannot outlive the root ticket the
// authority originally signed. A lease outliving its ticket would be a
// resource held on an expired promise.
func CheckLeaseTerms(site string, recs []sharp.LeaseRecord) []Violation {
	var out []Violation
	for _, r := range recs {
		l := r.Lease
		if l.NotBefore < r.LeafNotBefore || l.NotAfter > r.LeafNotAfter {
			out = append(out, Violation{
				Invariant: "lease-term",
				Detail: fmt.Sprintf("%s: lease %s [%v,%v) outside ticket term [%v,%v)",
					site, l.ID, l.NotBefore, l.NotAfter, r.LeafNotBefore, r.LeafNotAfter),
			})
		}
		if l.NotAfter > r.RootNotAfter {
			out = append(out, Violation{
				Invariant: "lease-term",
				Detail: fmt.Sprintf("%s: lease %s ends %v after root ticket expiry %v",
					site, l.ID, l.NotAfter, r.RootNotAfter),
			})
		}
	}
	return out
}

// CheckPortExclusivity cross-examines a node's kernel port table against
// every context's own port list: each bound port must have exactly one
// owner, and both views must agree. This is the silk/capability invariant
// behind "resources that cannot be shared (e.g., network ports)".
func CheckPortExclusivity(node *silk.Node) []Violation {
	var out []Violation
	bindings := node.PortBindings()
	claims := make(map[int][]string)
	for _, c := range node.ContextList() {
		for _, p := range c.Ports() {
			claims[p] = append(claims[p], c.Name)
		}
	}
	ports := make([]int, 0, len(claims))
	for p := range claims {
		ports = append(ports, p)
	}
	sort.Ints(ports)
	for _, p := range ports {
		owners := claims[p]
		if len(owners) > 1 {
			out = append(out, Violation{
				Invariant: "port-excl",
				Detail:    fmt.Sprintf("%s: port %d claimed by %v", node.Name, p, owners),
			})
			continue
		}
		if bindings[p] != owners[0] {
			out = append(out, Violation{
				Invariant: "port-excl",
				Detail: fmt.Sprintf("%s: port %d bound to %q but claimed by %q",
					node.Name, p, bindings[p], owners[0]),
			})
		}
	}
	return out
}

// CheckNoDoneDuringOutage asserts that no GRAM job reported success while
// its site was down: a Done transition timestamped strictly inside an
// outage interval means a crashed node claimed to finish work.
func CheckNoDoneDuringOutage(site string, jobs []*gram.Job, outages []core.DownInterval) []Violation {
	if len(outages) == 0 {
		return nil
	}
	var out []Violation
	for _, j := range jobs {
		for _, tr := range j.History {
			if tr.To != gram.Done {
				continue
			}
			for _, iv := range outages {
				if tr.At > iv.From && (iv.Open || tr.At < iv.To) {
					out = append(out, Violation{
						Invariant: "done-on-dead-node",
						Detail: fmt.Sprintf("%s: job %s done at %v inside outage [%v,%v)",
							site, j.ID, tr.At, iv.From, iv.To),
					})
				}
			}
		}
	}
	return out
}

// CheckServiceStrength asserts a managed service converged back to its
// target points of presence — or to the feasible maximum when fewer sites
// than Target survived.
func CheckServiceStrength(m *servicemgr.Manager, feasible int) []Violation {
	want := m.Target()
	if feasible < want {
		want = feasible
	}
	if got := m.Running(); got < want {
		return []Violation{{
			Invariant: "service-strength",
			Detail: fmt.Sprintf("running %d < required %d (target %d, feasible %d)",
				got, want, m.Target(), feasible),
		}}
	}
	return nil
}

// CheckLeaseContinuity asserts the keepalive promise: a running point of
// presence at a healthy (not crashed) site must still be inside its
// lease horizon. A PoP strictly past its horizon means lease
// enforcement and renewal both failed — the VM is running on resources
// it no longer holds.
func CheckLeaseContinuity(f *core.Federation, m *servicemgr.Manager) []Violation {
	now := f.Eng.Now()
	var out []Violation
	for _, site := range m.ActiveSites() {
		if f.SiteDown(site) {
			continue
		}
		exp, ok := m.LeaseHorizon(site)
		if !ok {
			out = append(out, Violation{
				Invariant: "lease-continuity",
				Detail:    fmt.Sprintf("%s: active PoP holds no recorded lease", site),
			})
			continue
		}
		if exp < now {
			out = append(out, Violation{
				Invariant: "lease-continuity",
				Detail:    fmt.Sprintf("%s: active PoP past lease horizon %v at %v", site, exp, now),
			})
		}
	}
	return out
}

// CheckMDSFreshness asserts the soft-state promise: an index must not
// serve a record whose source host has been dead longer than the maximum
// TTL — by then every registration it could have pushed has expired.
func CheckMDSFreshness(index *mds.GIIS, now time.Duration,
	downSince func(host string) (time.Duration, bool), maxTTL time.Duration) []Violation {
	var out []Violation
	for _, rec := range index.Eval(mds.Query{}).Records {
		since, down := downSince(rec.Source)
		if !down {
			continue
		}
		if dead := now - since; dead > maxTTL {
			out = append(out, Violation{
				Invariant: "mds-freshness",
				Detail: fmt.Sprintf("record %s served from %s dead for %v (max TTL %v)",
					rec.Name, rec.Source, dead, maxTTL),
			})
		}
	}
	return out
}

// CheckOpts parameterizes a federation-wide audit.
type CheckOpts struct {
	// Managers, when non-empty, have their strength checked (convergence
	// audits pass them only after the heal + converge phase).
	Managers []*servicemgr.Manager
	// LeaseManagers, when non-empty, have lease continuity checked: this
	// is structural (safe mid-run), unlike the strength check.
	LeaseManagers []*servicemgr.Manager
	// FeasibleSites is the number of candidate sites a manager could
	// possibly occupy right now.
	FeasibleSites int
	// TTLBound is the MDS freshness bound (0 skips the MDS check — use
	// during mid-run audits only when refresh config is known).
	TTLBound time.Duration
	// Scoreboards, when non-empty, have their score bounds checked:
	// every reputation score must stay a number in [0, 1].
	Scoreboards []*trust.Scoreboard
}

// CheckFederation runs every applicable invariant over the federation's
// joined sites plus its VO-level indexes, returning all violations found.
func CheckFederation(f *core.Federation, opts CheckOpts) []Violation {
	var out []Violation
	for _, s := range f.JoinedSites() {
		if s.Runtime != nil {
			out = append(out, CheckLeaseTerms(s.Spec.Name, s.Runtime.Authority.LeaseRecords())...)
			out = append(out, CheckPortExclusivity(s.Runtime.Node)...)
			out = append(out, CheckBankConservation(s.Spec.Name, s.Runtime.Bank)...)
		}
		if s.Gatekeeper != nil {
			out = append(out, CheckNoDoneDuringOutage(s.Spec.Name, s.Gatekeeper.Jobs(), f.DownLog(s.Spec.Name))...)
		}
	}
	if opts.TTLBound > 0 {
		now := f.Eng.Now()
		out = append(out, CheckMDSFreshness(f.Index, now, f.HostDownSince, opts.TTLBound)...)
		out = append(out, CheckMDSFreshness(f.Comon, now, f.HostDownSince, opts.TTLBound)...)
	}
	for _, m := range opts.LeaseManagers {
		out = append(out, CheckLeaseContinuity(f, m)...)
	}
	for _, m := range opts.Managers {
		out = append(out, CheckServiceStrength(m, opts.FeasibleSites)...)
	}
	for _, sb := range opts.Scoreboards {
		out = append(out, CheckScoreBounds(sb)...)
	}
	return out
}

// CheckBankConservation asserts the collateral ledger's conservation
// law at one site: lifetime deposits must equal held plus slashed, per
// broker and in aggregate. A nil bank (byzantine layer off) passes.
func CheckBankConservation(site string, b *trust.Bank) []Violation {
	if b == nil {
		return nil
	}
	if err := b.CheckConservation(); err != nil {
		return []Violation{{
			Invariant: "collateral-conservation",
			Detail:    fmt.Sprintf("%s: %v", site, err),
		}}
	}
	return nil
}

// CheckScoreBounds asserts every reputation score is a number in [0, 1]
// — the EWMA can never leave the unit interval however outcomes arrive.
func CheckScoreBounds(s *trust.Scoreboard) []Violation {
	if err := s.CheckBounds(); err != nil {
		return []Violation{{
			Invariant: "score-bounds",
			Detail:    err.Error(),
		}}
	}
	return nil
}
