package faultlab

import (
	"strings"
	"testing"
	"time"
)

// TestBisectLocalizesPlantedBreach plants a violation at a known virtual
// time via the arm hook and checks the coarse+fine passes converge on it.
// The planted event rides the snapshot like any scheduled work: it must
// fire again in every probe fork, which is exactly the mid-run re-fork
// machinery gridlab chaos -bisect relies on.
func TestBisectLocalizesPlantedBreach(t *testing.T) {
	const breakAt = 53*time.Minute + 17*time.Second
	armHook = func(c *chaosRun) {
		c.f.Eng.Schedule(breakAt-c.f.Eng.Now(), func() {
			c.record([]Violation{{Invariant: "planted", Detail: "test breach"}})
		})
	}
	defer func() { armHook = nil }()

	cfg := forkTestConfig()
	p, _ := ProfileByName("mixed")
	res := Bisect(7, p, cfg, 8)
	if res.OK() || res.FinalOnly {
		t.Fatalf("planted breach not seen: ok=%v finalOnly=%v", res.OK(), res.FinalOnly)
	}
	if res.Lo > breakAt || res.Hi < breakAt {
		t.Fatalf("coarse window [%v,%v] misses planted time %v", res.Lo, res.Hi, breakAt)
	}
	if d := res.FailAt - breakAt; d < 0 || d > BisectResolution {
		t.Fatalf("FailAt=%v, want within %v after %v", res.FailAt, BisectResolution, breakAt)
	}
	if len(res.First) != 1 || res.First[0].Invariant != "planted" {
		t.Fatalf("First=%v, want the planted violation", res.First)
	}
	if res.Probes == 0 {
		t.Fatalf("fine pass ran no probes")
	}
	if !strings.Contains(res.String(), "first violation recorded at") {
		t.Fatalf("String() = %q", res.String())
	}
}

// TestBisectCleanRun: nothing to bisect on a healthy run.
func TestBisectCleanRun(t *testing.T) {
	cfg := forkTestConfig()
	p, _ := ProfileByName("crashes")
	res := Bisect(1, p, cfg, 4)
	if !res.OK() || res.Probes != 0 || res.FailAt != 0 {
		t.Fatalf("clean run bisected: ok=%v probes=%d failAt=%v violations=%v",
			res.OK(), res.Probes, res.FailAt, res.Report.Violations)
	}
	if !strings.Contains(res.String(), "clean") {
		t.Fatalf("String() = %q", res.String())
	}
}

// TestBisectFinalOnly: a run that fails only the post-heal converged audit
// (short lease, no keepalive — the service dies and nothing restarts it)
// has no mid-run breach to search for.
func TestBisectFinalOnly(t *testing.T) {
	cfg := ChaosConfig{
		Sites: 4, Target: 2, CPUPerSite: 0.5,
		Horizon: 90 * time.Minute, Converge: 15 * time.Minute,
		Refresh: 2 * time.Minute, JobEvery: 5 * time.Minute,
		AuditEvery: 5 * time.Minute, Lease: 10 * time.Minute,
	}
	p, _ := ProfileByName("crashes")
	res := Bisect(1, p, cfg, 4)
	if res.OK() {
		t.Fatalf("expected a failing run (got clean)")
	}
	if !res.FinalOnly || res.FailAt != 0 || res.Probes != 0 {
		t.Fatalf("expected FinalOnly: %+v", res)
	}
	if !strings.Contains(res.String(), "final converged audit") {
		t.Fatalf("String() = %q", res.String())
	}
}
