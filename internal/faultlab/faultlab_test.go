package faultlab

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gram"
	"repro/internal/mds"
	"repro/internal/servicemgr"
	"repro/internal/sharp"
)

func testConfig() ChaosConfig {
	cfg := DefaultChaosConfig()
	cfg.Horizon = 4 * time.Hour
	return cfg
}

func TestGenerateDeterministic(t *testing.T) {
	sites := []string{"s00", "s01", "s02"}
	p, err := ProfileByName("mixed")
	if err != nil {
		t.Fatal(err)
	}
	a := Generate(7, p, sites, 8*time.Hour)
	b := Generate(7, p, sites, 8*time.Hour)
	if a.String() != b.String() {
		t.Errorf("same seed diverged:\n%s\nvs\n%s", a, b)
	}
	if len(a.Faults) == 0 {
		t.Fatal("mixed profile generated no faults")
	}
	for i := 1; i < len(a.Faults); i++ {
		if a.Faults[i].At < a.Faults[i-1].At {
			t.Errorf("schedule not time-sorted at %d", i)
		}
	}
	for _, f := range a.Faults {
		if f.At+f.Duration > 8*time.Hour {
			t.Errorf("fault %s extends past horizon", f)
		}
	}
	c := Generate(8, p, sites, 8*time.Hour)
	if a.String() == c.String() {
		t.Error("different seeds produced identical schedules")
	}
}

func TestGenerateQuietIsEmpty(t *testing.T) {
	s := Generate(3, Quiet(), []string{"s00"}, 8*time.Hour)
	if len(s.Faults) != 0 {
		t.Errorf("quiet profile generated %d faults", len(s.Faults))
	}
}

// Same (seed, profile) must reproduce the run bit-for-bit: identical fault
// trace, identical metrics, identical verdict. This is the property that
// makes a Sweep failure a complete minimal repro.
func TestChaosRunDeterministic(t *testing.T) {
	cfg := testConfig()
	p, _ := ProfileByName("mixed")
	a := RunChaos(11, p, cfg)
	b := RunChaos(11, p, cfg)
	if strings.Join(a.Trace, "\n") != strings.Join(b.Trace, "\n") {
		t.Errorf("traces diverged:\n%s\nvs\n%s",
			strings.Join(a.Trace, "\n"), strings.Join(b.Trace, "\n"))
	}
	if a.Summary != b.Summary {
		t.Errorf("summaries diverged:\n%s\nvs\n%s", a.Summary, b.Summary)
	}
	if a.OK() != b.OK() {
		t.Errorf("verdicts diverged: %v vs %v", a.OK(), b.OK())
	}
	if len(a.Trace) == 0 {
		t.Error("mixed run applied no faults")
	}
}

// Metamorphic property: installing an injector with an empty (quiet)
// schedule must be indistinguishable from never installing one — fault
// generation draws from its own RNG, so the scenario's event streams are
// untouched.
func TestQuietScheduleMatchesBaseline(t *testing.T) {
	cfg := testConfig()
	quiet := RunChaos(5, Quiet(), cfg)
	base := RunBaseline(5, cfg)
	if quiet.Summary != base.Summary {
		t.Errorf("quiet run differs from baseline:\n%s\nvs\n%s", quiet.Summary, base.Summary)
	}
	if len(quiet.Trace) != 0 {
		t.Errorf("quiet run has a fault trace: %v", quiet.Trace)
	}
	if !quiet.OK() || !base.OK() {
		t.Errorf("violations in fault-free runs: %v / %v", quiet.Violations, base.Violations)
	}
}

func TestChaosReproString(t *testing.T) {
	r := &Report{Seed: 17, Profile: "partitions"}
	if got := r.Repro(); got != "gridlab chaos -seed 17 -profile partitions" {
		t.Errorf("Repro() = %q", got)
	}
}

// ---- Teeth tests: each invariant checker must catch a deliberately
// broken world, or a clean sweep means nothing. -----------------------

func TestLeaseTermCheckerTeeth(t *testing.T) {
	good := sharp.LeaseRecord{
		Lease:         &sharp.Lease{ID: "s/lease1", NotBefore: time.Hour, NotAfter: 2 * time.Hour},
		LeafNotBefore: time.Hour, LeafNotAfter: 2 * time.Hour, RootNotAfter: 3 * time.Hour,
	}
	if vs := CheckLeaseTerms("s", []sharp.LeaseRecord{good}); len(vs) != 0 {
		t.Fatalf("clean record flagged: %v", vs)
	}
	// A lease running past its ticket's leaf term — the forged state the
	// checker exists to catch.
	bad := good
	bad.Lease = &sharp.Lease{ID: "s/lease2", NotBefore: time.Hour, NotAfter: 5 * time.Hour}
	vs := CheckLeaseTerms("s", []sharp.LeaseRecord{bad})
	if len(vs) != 2 { // outside leaf term AND past root expiry
		t.Fatalf("violations = %v, want 2", vs)
	}
	if vs[0].Invariant != "lease-term" {
		t.Errorf("invariant = %q", vs[0].Invariant)
	}
}

func TestDoneDuringOutageCheckerTeeth(t *testing.T) {
	outages := []core.DownInterval{{From: time.Hour, To: 2 * time.Hour}}
	ok := &gram.Job{ID: "g/1", History: []gram.Transition{{To: gram.Done, At: 30 * time.Minute}}}
	if vs := CheckNoDoneDuringOutage("s", []*gram.Job{ok}, outages); len(vs) != 0 {
		t.Fatalf("clean job flagged: %v", vs)
	}
	// A job claiming completion while its site was dead.
	bad := &gram.Job{ID: "g/2", History: []gram.Transition{{To: gram.Done, At: 90 * time.Minute}}}
	vs := CheckNoDoneDuringOutage("s", []*gram.Job{bad}, outages)
	if len(vs) != 1 || vs[0].Invariant != "done-on-dead-node" {
		t.Fatalf("violations = %v", vs)
	}
	// Done inside a still-open outage is also a violation.
	open := []core.DownInterval{{From: time.Hour, Open: true}}
	if vs := CheckNoDoneDuringOutage("s", []*gram.Job{bad}, open); len(vs) != 1 {
		t.Fatalf("open-interval violations = %v", vs)
	}
}

// End-to-end MDS teeth: a rogue registration with an enormous TTL pins a
// record in the index; once its source node has been dead longer than the
// honest TTL bound, the freshness audit must flag it.
func TestMDSFreshnessCheckerTeeth(t *testing.T) {
	refresh := 2 * time.Minute
	f := core.Build(core.StackHybrid, core.Config{Seed: 1, RefreshInterval: refresh}, []core.SiteSpec{
		{Name: "s00", X: 10, Y: 0, Nodes: 1, ClusterSlots: 4, Policy: core.PlanetLabSitePolicy()},
		{Name: "s01", X: 20, Y: 5, Nodes: 1, ClusterSlots: 4, Policy: core.PlanetLabSitePolicy()},
	})
	ttlBound := 2*refresh + time.Second

	// The rogue push: a snapshot registered with a 100h TTL.
	rogue := mds.Registration{
		Rec: mds.Record{Name: "rogue/sensor", Attrs: map[string]string{"x": "1"}, Stamp: f.Eng.Now(), Source: "gk-s00"},
		TTL: 100 * time.Hour,
	}
	f.Net.Send("gk-s00", "vo-index", mds.SvcRegister, rogue)
	f.Eng.RunUntil(f.Eng.Now() + time.Second)

	f.CrashNode("s00")
	f.Eng.RunUntil(f.Eng.Now() + 3*refresh)

	vs := CheckMDSFreshness(f.Index, f.Eng.Now(), f.HostDownSince, ttlBound)
	found := false
	for _, v := range vs {
		if v.Invariant == "mds-freshness" && strings.Contains(v.Detail, "rogue/sensor") {
			found = true
		}
	}
	if !found {
		t.Fatalf("rogue record not flagged; violations = %v", vs)
	}
	// Honest records from the dead node must NOT be flagged: their 2×refresh
	// TTL expired before the bound elapsed, so the index no longer serves them.
	for _, v := range vs {
		if !strings.Contains(v.Detail, "rogue/sensor") {
			t.Errorf("unexpected violation %v", v)
		}
	}
}

func TestServiceStrengthChecker(t *testing.T) {
	// Strength is exercised end-to-end by the chaos runs; here just the
	// feasibility clamp: an empty manager with 0 feasible sites is clean.
	if vs := CheckServiceStrength(&servicemgr.Manager{}, 0); len(vs) != 0 {
		t.Errorf("infeasible target flagged: %v", vs)
	}
}

func TestInjectorWindowsIdempotentHeal(t *testing.T) {
	cfg := testConfig()
	p, _ := ProfileByName("crashes")
	sched := Generate(3, p, cfg.SiteNames(), cfg.Horizon)
	if len(sched.Faults) == 0 {
		t.Skip("seed drew no faults")
	}
	// HealAll twice must not double-revoke (Window.Revoke is idempotent).
	rep := RunChaos(3, p, cfg)
	if rep.Schedule == nil || len(rep.Trace) == 0 {
		t.Fatal("no trace")
	}
	applies, revokes := 0, 0
	for _, line := range rep.Trace {
		if strings.Contains(line, " apply ") {
			applies++
		}
		if strings.Contains(line, " revoke ") {
			revokes++
		}
	}
	if applies != revokes {
		t.Errorf("applies %d != revokes %d — a fault leaked past heal", applies, revokes)
	}
}
