package faultlab

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/gram"
	"repro/internal/identity"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/servicemgr"
)

// ChaosConfig shapes the chaos scenario: a hybrid federation running a
// managed service and a steady GRAM job stream while faults land.
type ChaosConfig struct {
	// Sites is the number of (identical, fully ceding) member sites.
	Sites int
	// Target is the managed service's desired points of presence.
	Target int
	// CPUPerSite is the service's per-PoP resource ask.
	CPUPerSite float64
	// Horizon is how long faults may land; Converge is the healed settling
	// time before the final audit.
	Horizon  time.Duration
	Converge time.Duration
	// Refresh is the MDS soft-state period (TTL is 2×Refresh).
	Refresh time.Duration
	// JobEvery paces the background GRAM submission stream.
	JobEvery time.Duration
	// AuditEvery paces mid-run invariant audits.
	AuditEvery time.Duration
	// Trace enables the obs tracing layer for the run; the tracer comes
	// back on Report.Tracer. Off by default: the determinism tests compare
	// traced and untraced runs for identical outcomes.
	Trace bool
}

// DefaultChaosConfig returns the scenario gridlab chaos runs.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{
		Sites:      6,
		Target:     3,
		CPUPerSite: 0.5,
		Horizon:    8 * time.Hour,
		Converge:   30 * time.Minute,
		Refresh:    2 * time.Minute,
		JobEvery:   10 * time.Minute,
		AuditEvery: 5 * time.Minute,
	}
}

// SiteNames returns the scenario's member site names.
func (cfg ChaosConfig) SiteNames() []string {
	names := make([]string, cfg.Sites)
	for i := range names {
		names[i] = fmt.Sprintf("s%02d", i)
	}
	return names
}

// Report is the outcome of one chaos run.
type Report struct {
	Seed     int64
	Profile  string
	Schedule *Schedule
	// Trace is the injector's apply/revoke log.
	Trace []string
	// Violations holds every invariant breach, mid-run and final, deduped.
	Violations []Violation
	// Summary is a metrics table of the run's outcome. It deliberately
	// excludes seed and profile so a quiet-profile run and a no-injector
	// baseline with the same seed render byte-identical summaries.
	Summary string
	// Tracer holds the run's obs tracer when ChaosConfig.Trace was set.
	Tracer *obs.Tracer
}

// OK reports whether every invariant held.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Repro returns the command line that reproduces this exact run.
func (r *Report) Repro() string {
	return fmt.Sprintf("gridlab chaos -seed %d -profile %s", r.Seed, r.Profile)
}

// RunChaos generates the (seed, profile) schedule, runs the scenario under
// it, and audits the invariants. Identical inputs yield identical reports.
func RunChaos(seed int64, p Profile, cfg ChaosConfig) *Report {
	sched := Generate(seed, p, cfg.SiteNames(), cfg.Horizon)
	return run(seed, sched, cfg)
}

// RunBaseline runs the scenario with no injector installed at all — the
// reference for the metamorphic "quiet schedule changes nothing" test.
func RunBaseline(seed int64, cfg ChaosConfig) *Report {
	return run(seed, nil, cfg)
}

func run(seed int64, sched *Schedule, cfg ChaosConfig) *Report {
	names := cfg.SiteNames()
	specs := make([]core.SiteSpec, cfg.Sites)
	for i, name := range names {
		specs[i] = core.SiteSpec{
			Name: name,
			X:    12 * float64(i+1), Y: float64((i * 17) % 50),
			Nodes: 2, ClusterSlots: 8,
			Policy: core.PlanetLabSitePolicy(),
		}
	}
	f := core.Build(core.StackHybrid, core.Config{Seed: seed, RefreshInterval: cfg.Refresh, Trace: cfg.Trace}, specs)
	end := cfg.Horizon + cfg.Converge

	// Ticket stock for the service manager, valid past the audit.
	for _, s := range f.JoinedSites() {
		if s.Runtime != nil {
			s.Runtime.Authority.OversellFactor = 1e6
		}
	}
	if err := f.Deployer.Stock(200, 0, end+time.Hour, names...); err != nil {
		panic(fmt.Sprintf("faultlab: stocking deployer: %v", err))
	}
	sm := identity.NewPrincipal("chaos-sm", f.Rng)
	mgr := servicemgr.New(f.Eng, f.Deployer, sm, servicemgr.Config{
		Name:       "chaos-svc",
		Target:     cfg.Target,
		CPUPerSite: cfg.CPUPerSite,
		Candidates: names,
		Lease:      end + time.Hour,
	})
	if f.Tracer != nil {
		mgr.SetTracer(f.Tracer)
	}
	if err := mgr.Start(); err != nil {
		panic(fmt.Sprintf("faultlab: starting service: %v", err))
	}
	// Declared outages drive the management plane; silent crashes must be
	// survived through soft state alone.
	f.AddFaultObserver(func(site string, down bool) {
		if down {
			mgr.SiteFailed(site)
		} else {
			mgr.SiteRecovered(site)
			mgr.Reconcile()
		}
	})

	// Background GRAM load: a probe job every JobEvery, round-robin over
	// the member gatekeepers, submitted from the VO broker host.
	user := f.User("chaos-user")
	proxy, err := user.Delegate("chaos-user/p", f.Eng.Now(), end+time.Hour, nil, f.Rng)
	if err != nil {
		panic(fmt.Sprintf("faultlab: delegating proxy: %v", err))
	}
	jobRng := rand.New(rand.NewSource(seed + 1))
	gkSites := f.JoinedSites()
	var submitted, accepted, refused int
	next := 0
	jobTicker := f.Eng.NewTicker(cfg.JobEvery, func() {
		s := gkSites[next%len(gkSites)]
		next++
		submitted++
		req := gram.SubmitRequest{
			Cred: proxy,
			Spec: gram.JobSpec{
				RSL:       "&(executable=probe)(count=1)(maxWallTime=1800)",
				ActualRun: time.Duration(1+jobRng.Intn(8)) * time.Minute,
			},
		}
		gram.Submit(f.Net, "vo-broker", s.Host, req, 30*time.Second, func(_ gram.SubmitReply, err error) {
			if err != nil {
				refused++
				return
			}
			accepted++
		})
	})

	var inj *Injector
	if sched != nil {
		inj = Install(f, sched)
	}

	// Mid-run audits: structural invariants only (service strength is a
	// convergence property, judged after heal + settle).
	ttlBound := 2*cfg.Refresh + time.Second
	seen := make(map[string]struct{})
	var violations []Violation
	record := func(vs []Violation) {
		for _, v := range vs {
			key := v.String()
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			violations = append(violations, v)
		}
	}
	auditTicker := f.Eng.NewTicker(cfg.AuditEvery, func() {
		record(CheckFederation(f, CheckOpts{TTLBound: ttlBound}))
	})

	f.Eng.RunUntil(cfg.Horizon)
	if inj != nil {
		inj.HealAll()
	}
	mgr.Reconcile()
	f.Eng.RunUntil(end)
	jobTicker.Stop()
	auditTicker.Stop()

	feasible := 0
	for _, name := range names {
		if !f.SiteDown(name) && f.Deployer.Inventory(name) >= cfg.CPUPerSite {
			feasible++
		}
	}
	record(CheckFederation(f, CheckOpts{
		Managers:      []*servicemgr.Manager{mgr},
		FeasibleSites: feasible,
		TTLBound:      ttlBound,
	}))

	var done, failed int
	for _, s := range f.JoinedSites() {
		if s.Gatekeeper == nil {
			continue
		}
		for _, j := range s.Gatekeeper.Jobs() {
			switch j.State() {
			case gram.Done:
				done++
			case gram.Failed:
				failed++
			}
		}
	}

	applied, revoked := 0, 0
	var trace []string
	if inj != nil {
		applied, revoked = inj.AppliedN, inj.RevokedN
		trace = inj.Trace()
	}
	tbl := metrics.NewTable("metric", "value")
	tbl.AddRow("sites joined", len(f.JoinedSites()))
	tbl.AddRow("jobs submitted", submitted)
	tbl.AddRow("jobs accepted", accepted)
	tbl.AddRow("jobs refused", refused)
	tbl.AddRow("jobs done", done)
	tbl.AddRow("jobs failed", failed)
	tbl.AddRow("service running", mgr.Running())
	tbl.AddRow("service target", mgr.Target())
	tbl.AddRow("service redeploys", mgr.RedeployN)
	tbl.AddRow("service degraded", mgr.DegradedTime.String())
	tbl.AddRow("faults applied", applied)
	tbl.AddRow("faults revoked", revoked)
	tbl.AddRow("violations", len(violations))

	f.Tracer.SampleGauges()
	rep := &Report{
		Seed:       seed,
		Schedule:   sched,
		Trace:      trace,
		Violations: violations,
		Summary:    tbl.String(),
		Tracer:     f.Tracer,
	}
	if sched != nil {
		rep.Profile = sched.Profile
	}
	return rep
}

// SweepResult aggregates a seed × profile sweep.
type SweepResult struct {
	// Runs is the number of chaos runs executed.
	Runs int
	// ViolationN is the total violation count across all runs.
	ViolationN int
	// First is the first violating report in sweep order (nil when clean):
	// its Repro() line is the minimal reproduction of the failure.
	First *Report
}

// OK reports a clean sweep.
func (r *SweepResult) OK() bool { return r.First == nil }

// String summarizes the sweep for CLI output.
func (r *SweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep: %d runs, %d violations\n", r.Runs, r.ViolationN)
	if r.First != nil {
		fmt.Fprintf(&b, "first failure: seed=%d profile=%s\n", r.First.Seed, r.First.Profile)
		for _, v := range r.First.Violations {
			fmt.Fprintf(&b, "  %s\n", v)
		}
		fmt.Fprintf(&b, "repro: %s\n", r.First.Repro())
	}
	return b.String()
}

// Sweep runs the chaos scenario over seeds startSeed..startSeed+seeds-1
// for every profile, reporting the first violating (seed, profile) as a
// minimal repro. Runs are independent, so sweep order is just seed-major.
func Sweep(startSeed int64, seeds int, profiles []Profile, cfg ChaosConfig) *SweepResult {
	res := &SweepResult{}
	for s := int64(0); s < int64(seeds); s++ {
		for _, p := range profiles {
			rep := RunChaos(startSeed+s, p, cfg)
			res.Runs++
			res.ViolationN += len(rep.Violations)
			if !rep.OK() && res.First == nil {
				res.First = rep
			}
		}
	}
	return res
}
