package faultlab

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/gram"
	"repro/internal/identity"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/servicemgr"
	"repro/internal/sim"
	"repro/internal/trust"
)

// ChaosConfig shapes the chaos scenario: a hybrid federation running a
// managed service and a steady GRAM job stream while faults land.
type ChaosConfig struct {
	// Sites is the number of (identical, fully ceding) member sites.
	Sites int
	// Target is the managed service's desired points of presence.
	Target int
	// CPUPerSite is the service's per-PoP resource ask.
	CPUPerSite float64
	// Horizon is how long faults may land; Converge is the healed settling
	// time before the final audit.
	Horizon  time.Duration
	Converge time.Duration
	// Refresh is the MDS soft-state period (TTL is 2×Refresh).
	Refresh time.Duration
	// JobEvery paces the background GRAM submission stream.
	JobEvery time.Duration
	// AuditEvery paces mid-run invariant audits.
	AuditEvery time.Duration
	// Trace enables the obs tracing layer for the run; the tracer comes
	// back on Report.Tracer. Off by default: the determinism tests compare
	// traced and untraced runs for identical outcomes.
	Trace bool
	// Lease is the managed service's lease term. Zero keeps the legacy
	// behaviour of a single lease outliving the whole run; a short term
	// makes keepalive renewal load-bearing.
	Lease time.Duration
	// ReconcileEvery, when positive, runs a periodic repair pass in
	// addition to the event-driven fault hooks — the only way silently
	// crashed sites get replaced before the final heal.
	ReconcileEvery time.Duration
	// Resilience wires the retry/breaker/keepalive kit through the stack
	// (core.Config.Resilience) and routes the job stream through the
	// retrying submit path.
	Resilience bool
	// Byzantine, when enabled, populates a multi-broker ticket exchange
	// with honest and adversarial sellers, posts collateral at per-site
	// banks, feeds a reputation scoreboard from redeem outcomes, and runs
	// a client-side attack ticker. Zero value keeps the run byte-identical
	// to a pre-byzantine scenario.
	Byzantine ByzantineConfig
}

// DefaultChaosConfig returns the scenario gridlab chaos runs.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{
		Sites:      6,
		Target:     3,
		CPUPerSite: 0.5,
		Horizon:    8 * time.Hour,
		Converge:   30 * time.Minute,
		Refresh:    2 * time.Minute,
		JobEvery:   10 * time.Minute,
		AuditEvery: 5 * time.Minute,
	}
}

// SiteNames returns the scenario's member site names.
func (cfg ChaosConfig) SiteNames() []string {
	names := make([]string, cfg.Sites)
	for i := range names {
		names[i] = fmt.Sprintf("s%02d", i)
	}
	return names
}

// Report is the outcome of one chaos run.
type Report struct {
	Seed     int64
	Profile  string
	Schedule *Schedule
	// Trace is the injector's apply/revoke log.
	Trace []string
	// Violations holds every invariant breach, mid-run and final, deduped.
	Violations []Violation
	// Summary is a metrics table of the run's outcome. It deliberately
	// excludes seed and profile so a quiet-profile run and a no-injector
	// baseline with the same seed render byte-identical summaries.
	Summary string
	// Tracer holds the run's obs tracer when ChaosConfig.Trace was set.
	Tracer *obs.Tracer
	// Availability is the fraction of the run the service spent at full
	// strength: 1 − degraded/total.
	Availability float64
	// LeaseLapses counts PoPs torn down by the lease watchdog.
	LeaseLapses int
	// Resilience carries the kit's counters when ChaosConfig.Resilience
	// was set (nil otherwise).
	Resilience *ResilienceStats
	// Flags holds the non-default chaos flags needed to reproduce the
	// run's configuration ("" for the default scenario).
	Flags string
	// Byzantine carries the adversarial-market outcome when
	// ChaosConfig.Byzantine was enabled (nil otherwise).
	Byzantine *ByzantineStats
}

// ResilienceStats snapshots the resilience kit's counters after a run.
type ResilienceStats struct {
	// Renewals / RenewGiveups count keepalive cycles that extended a
	// lease vs. exhausted their budget.
	Renewals, RenewGiveups int
	// Trips / Recloses count breaker state transitions across all sites.
	Trips, Recloses int
	// Retries counts re-attempts the shared executor scheduled.
	Retries int
	// OpenSites lists breakers not closed at the end of the run — after
	// HealAll and the converge window this should be empty.
	OpenSites []string
}

// OK reports whether every invariant held.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Repro returns the command line that reproduces this exact run.
func (r *Report) Repro() string {
	cmd := "chaos"
	if r.Byzantine != nil {
		cmd = "byzantine"
	}
	s := fmt.Sprintf("gridlab %s -seed %d -profile %s", cmd, r.Seed, r.Profile)
	if r.Flags != "" {
		s += " " + r.Flags
	}
	return s
}

// reproFlags renders the non-default knobs for Report.Flags.
func reproFlags(cfg ChaosConfig) string {
	var fl []string
	if cfg.Resilience {
		fl = append(fl, "-resilience")
	}
	if cfg.Lease > 0 {
		fl = append(fl, fmt.Sprintf("-lease %s", cfg.Lease))
	}
	if cfg.ReconcileEvery > 0 {
		fl = append(fl, fmt.Sprintf("-reconcile %s", cfg.ReconcileEvery))
	}
	return strings.Join(fl, " ")
}

// RunChaos generates the (seed, profile) schedule, runs the scenario under
// it, and audits the invariants. Identical inputs yield identical reports.
func RunChaos(seed int64, p Profile, cfg ChaosConfig) *Report {
	sched := Generate(seed, p, cfg.SiteNames(), cfg.Horizon)
	return run(seed, sched, cfg)
}

// RunBaseline runs the scenario with no injector installed at all — the
// reference for the metamorphic "quiet schedule changes nothing" test.
func RunBaseline(seed int64, cfg ChaosConfig) *Report {
	return run(seed, nil, cfg)
}

func run(seed int64, sched *Schedule, cfg ChaosConfig) *Report {
	c := newChaosRun(seed, cfg)
	c.arm(sched)
	return c.finish()
}

// chaosRun is one scenario instance with every piece of mutable run state
// held in fields rather than closure captures. The struct is registered as
// an engine snapshot root, so a snapshot taken before arm (the warm sweep
// fork point) or mid-run (bisection) rewinds the whole scenario — job
// counters, audit dedup state, injector bookkeeping — along with the
// federation underneath it.
type chaosRun struct {
	cfg   ChaosConfig
	seed  int64
	names []string
	end   time.Duration

	f      *core.Federation
	mgr    *servicemgr.Manager
	proxy  *identity.Credential
	jobRng *rand.Rand

	gkSites                      []*core.Site
	submitted, accepted, refused int
	next                         int

	ttlBound   time.Duration
	seen       map[string]struct{}
	violations []Violation

	jobTicker, reconcileTicker, auditTicker *sim.Ticker
	inj                                     *Injector

	// byz holds the byzantine market layer when ChaosConfig.Byzantine is
	// enabled (nil otherwise). Reachable from the snapshot root, so the
	// scoreboard, banks, and seller state rewind on fork with the rest.
	byz *byzRun
}

// newChaosRun builds the federation and starts the steady-state machinery
// (service manager, job stream, reconcile loop) but installs no faults and
// arms no audits: this is the profile-independent prefix a warm sweep
// snapshots once per seed and re-forks per profile.
func newChaosRun(seed int64, cfg ChaosConfig) *chaosRun {
	names := cfg.SiteNames()
	specs := make([]core.SiteSpec, cfg.Sites)
	for i, name := range names {
		specs[i] = core.SiteSpec{
			Name: name,
			X:    12 * float64(i+1), Y: float64((i * 17) % 50),
			Nodes: 2, ClusterSlots: 8,
			Policy: core.PlanetLabSitePolicy(),
		}
	}
	f := core.Build(core.StackHybrid, core.Config{
		Seed: seed, RefreshInterval: cfg.Refresh, Trace: cfg.Trace,
		Resilience: cfg.Resilience,
	}, specs)
	c := &chaosRun{
		cfg:   cfg,
		seed:  seed,
		names: names,
		end:   cfg.Horizon + cfg.Converge,
		f:     f,
		seen:  make(map[string]struct{}),
	}
	f.Eng.SnapRoot("faultlab.chaos", c)

	// Ticket stock for the service manager, valid past the audit.
	for _, s := range f.JoinedSites() {
		if s.Runtime != nil {
			s.Runtime.Authority.SetOversellFactor(1e6)
		}
	}
	if err := f.Deployer.Stock(200, 0, c.end+time.Hour, names...); err != nil {
		panic(fmt.Sprintf("faultlab: stocking deployer: %v", err))
	}
	if cfg.Byzantine.Enabled() {
		c.byz = newByzRun(f, cfg.Byzantine, c.end+time.Hour)
	}
	lease := cfg.Lease
	if lease == 0 {
		lease = c.end + time.Hour // legacy: one lease outlives the run
	}
	sm := identity.NewPrincipal("chaos-sm", f.Rng)
	c.mgr = servicemgr.New(f.Eng, f.Deployer, sm, servicemgr.Config{
		Name:       "chaos-svc",
		Target:     cfg.Target,
		CPUPerSite: cfg.CPUPerSite,
		Candidates: names,
		Lease:      lease,
	})
	if f.Tracer != nil {
		c.mgr.SetTracer(f.Tracer)
	}
	if f.Resilience != nil {
		c.mgr.SetResilience(f.Resilience)
	}
	if c.byz != nil {
		c.mgr.SetTrust(c.byz.scores)
	}
	if err := c.mgr.Start(); err != nil {
		panic(fmt.Sprintf("faultlab: starting service: %v", err))
	}
	// Declared outages drive the management plane; silent crashes must be
	// survived through soft state alone.
	f.AddFaultObserver(func(site string, down bool) {
		if down {
			c.mgr.SiteFailed(site)
		} else {
			c.mgr.SiteRecovered(site)
			c.mgr.Reconcile()
		}
	})

	// Background GRAM load: a probe job every JobEvery, round-robin over
	// the member gatekeepers, submitted from the VO broker host.
	user := f.User("chaos-user")
	proxy, err := user.Delegate("chaos-user/p", f.Eng.Now(), c.end+time.Hour, nil, f.Rng)
	if err != nil {
		panic(fmt.Sprintf("faultlab: delegating proxy: %v", err))
	}
	c.proxy = proxy
	c.jobRng = rand.New(rand.NewSource(seed + 1))
	c.gkSites = f.JoinedSites()
	c.jobTicker = f.Eng.NewTicker(cfg.JobEvery, c.submitJob)

	if cfg.ReconcileEvery > 0 {
		c.reconcileTicker = f.Eng.NewTicker(cfg.ReconcileEvery, func() {
			c.mgr.Reconcile()
			if f.Resilience != nil {
				// Half-open trials for written-off sites the service no
				// longer visits on its own.
				for _, site := range f.Resilience.Breakers.NotClosed() {
					f.Deployer.Probe(site)
				}
			}
		})
	}
	if c.byz != nil {
		c.byz.arm(c)
	}
	return c
}

// submitJob is one tick of the background GRAM load.
func (c *chaosRun) submitJob() {
	s := c.gkSites[c.next%len(c.gkSites)]
	c.next++
	c.submitted++
	req := gram.SubmitRequest{
		Cred: c.proxy,
		Spec: gram.JobSpec{
			RSL:       "&(executable=probe)(count=1)(maxWallTime=1800)",
			ActualRun: time.Duration(1+c.jobRng.Intn(8)) * time.Minute,
		},
	}
	done := func(_ gram.SubmitReply, err error) {
		if err != nil {
			c.refused++
			return
		}
		c.accepted++
	}
	if c.f.Resilience != nil {
		gram.SubmitWithRetry(c.f.Resilience.Retry, c.f.Resilience.Breakers.For(s.Spec.Name),
			c.f.Net, "vo-broker", s.Host, req, 30*time.Second, done)
	} else {
		gram.Submit(c.f.Net, "vo-broker", s.Host, req, 30*time.Second, done)
	}
}

// record folds invariant breaches into the run's deduped violation log.
func (c *chaosRun) record(vs []Violation) {
	for _, v := range vs {
		key := v.String()
		if _, dup := c.seen[key]; dup {
			continue
		}
		c.seen[key] = struct{}{}
		c.violations = append(c.violations, v)
	}
}

// scoreboards returns the reputation scoreboards to bound-check during
// audits (none when the byzantine layer is off).
func (c *chaosRun) scoreboards() []*trust.Scoreboard {
	if c.byz == nil {
		return nil
	}
	return []*trust.Scoreboard{c.byz.scores}
}

// arm installs the fault schedule (nil for a baseline run) and starts the
// mid-run invariant audits. Event creation order — job ticker, reconcile
// ticker, injector windows, audit ticker — matches the historical inline
// scenario exactly, so reports are byte-identical to pre-refactor runs.
func (c *chaosRun) arm(sched *Schedule) {
	if sched != nil {
		c.inj = Install(c.f, sched)
	}
	// Mid-run audits: structural invariants only (service strength is a
	// convergence property, judged after heal + settle).
	c.ttlBound = 2*c.cfg.Refresh + time.Second
	c.auditTicker = c.f.Eng.NewTicker(c.cfg.AuditEvery, func() {
		c.record(CheckFederation(c.f, CheckOpts{
			TTLBound:      c.ttlBound,
			LeaseManagers: []*servicemgr.Manager{c.mgr},
			Scoreboards:   c.scoreboards(),
		}))
	})
	if armHook != nil {
		armHook(c)
	}
}

// armHook is a test seam: the bisect tests use it to plant a scheduled
// invariant breach at a known virtual time (the healthy scenario holds its
// invariants by design, so there is nothing real to bisect to). Always nil
// outside tests.
var armHook func(*chaosRun)

// finish drives the scenario to its end, heals, audits, and assembles the
// report.
func (c *chaosRun) finish() *Report {
	f := c.f
	f.Eng.RunUntil(c.cfg.Horizon)
	if c.inj != nil {
		c.inj.HealAll()
	}
	c.mgr.Reconcile()
	f.Eng.RunUntil(c.end)
	c.jobTicker.Stop()
	c.auditTicker.Stop()
	if c.reconcileTicker != nil {
		c.reconcileTicker.Stop()
	}
	if c.byz != nil {
		if c.byz.attackTicker != nil {
			c.byz.attackTicker.Stop()
		}
		if c.byz.shopTicker != nil {
			c.byz.shopTicker.Stop()
		}
	}

	feasible := 0
	for _, name := range c.names {
		if !f.SiteDown(name) && f.Deployer.Inventory(name) >= c.cfg.CPUPerSite {
			feasible++
		}
	}
	c.record(CheckFederation(f, CheckOpts{
		Managers:      []*servicemgr.Manager{c.mgr},
		LeaseManagers: []*servicemgr.Manager{c.mgr},
		FeasibleSites: feasible,
		TTLBound:      c.ttlBound,
		Scoreboards:   c.scoreboards(),
	}))

	var done, failed int
	for _, s := range f.JoinedSites() {
		if s.Gatekeeper == nil {
			continue
		}
		for _, j := range s.Gatekeeper.Jobs() {
			switch j.State() {
			case gram.Done:
				done++
			case gram.Failed:
				failed++
			}
		}
	}

	applied, revoked := 0, 0
	var trace []string
	var sched *Schedule
	if c.inj != nil {
		applied, revoked = c.inj.AppliedN, c.inj.RevokedN
		trace = c.inj.Trace()
		sched = c.inj.sched
	}
	// Resilience counters: plain zeros when the kit is off, so the summary
	// table keeps the same rows (and stays byte-comparable) either way.
	renewals, giveups, trips, recloses, retries := 0, 0, 0, 0, 0
	if f.Resilience != nil {
		renewals = f.Resilience.Renewer.RenewedN
		giveups = f.Resilience.Renewer.GiveupsN
		trips = f.Resilience.Breakers.Trips()
		recloses = f.Resilience.Breakers.Recloses()
		retries = f.Resilience.Retry.RetriesN
	}
	availability := 1 - float64(c.mgr.DegradedSoFar())/float64(c.end)
	tbl := metrics.NewTable("metric", "value")
	tbl.AddRow("sites joined", len(f.JoinedSites()))
	tbl.AddRow("jobs submitted", c.submitted)
	tbl.AddRow("jobs accepted", c.accepted)
	tbl.AddRow("jobs refused", c.refused)
	tbl.AddRow("jobs done", done)
	tbl.AddRow("jobs failed", failed)
	tbl.AddRow("service running", c.mgr.Running())
	tbl.AddRow("service target", c.mgr.Target())
	tbl.AddRow("service redeploys", c.mgr.RedeployN)
	tbl.AddRow("service degraded", c.mgr.DegradedSoFar().String())
	tbl.AddRow("service availability", fmt.Sprintf("%.4f", availability))
	tbl.AddRow("lease lapses", c.mgr.LeaseLapsedN)
	tbl.AddRow("lease renewals", renewals)
	tbl.AddRow("renew giveups", giveups)
	tbl.AddRow("breaker trips", trips)
	tbl.AddRow("breaker recloses", recloses)
	tbl.AddRow("op retries", retries)
	tbl.AddRow("faults applied", applied)
	tbl.AddRow("faults revoked", revoked)
	tbl.AddRow("violations", len(c.violations))
	// Byzantine rows are appended after the fixed block, so a run with
	// the layer off renders the exact historical summary.
	var byzStats *ByzantineStats
	if c.byz != nil {
		byzStats = c.byz.stats(c, tbl)
	}

	f.Tracer.SampleGauges()
	rep := &Report{
		Seed:     c.seed,
		Schedule: sched,
		Trace:    trace,
		// Copied, not aliased: a later Fork rewinds c.violations to a
		// shorter prefix of the same backing array, and the next
		// timeline's appends would otherwise scribble over this report.
		Violations:   append([]Violation(nil), c.violations...),
		Summary:      tbl.String(),
		Tracer:       f.Tracer,
		Availability: availability,
		LeaseLapses:  c.mgr.LeaseLapsedN,
		Flags:        reproFlags(c.cfg),
	}
	if f.Resilience != nil {
		rep.Resilience = &ResilienceStats{
			Renewals: renewals, RenewGiveups: giveups,
			Trips: trips, Recloses: recloses, Retries: retries,
			OpenSites: f.Resilience.Breakers.NotClosed(),
		}
	}
	rep.Byzantine = byzStats
	if sched != nil {
		rep.Profile = sched.Profile
	}
	return rep
}

// SweepResult aggregates a seed × profile sweep.
type SweepResult struct {
	// Runs is the number of chaos runs executed.
	Runs int
	// ViolationN is the total violation count across all runs.
	ViolationN int
	// AvailabilitySum accumulates per-run availability; divide by Runs
	// for the sweep mean.
	AvailabilitySum float64
	// LeaseLapses is the total watchdog teardown count across all runs.
	LeaseLapses int
	// First is the first violating report in sweep order (nil when clean):
	// its Repro() line is the minimal reproduction of the failure.
	First *Report
}

// OK reports a clean sweep.
func (r *SweepResult) OK() bool { return r.First == nil }

// Add folds one report into the aggregate. Both the sequential Sweep and
// the parallel executor (internal/perf/chaos) reduce through this method
// in the same seed-major grid order, which is what makes their results
// identical at any worker count.
func (r *SweepResult) Add(rep *Report) {
	r.Runs++
	r.ViolationN += len(rep.Violations)
	r.AvailabilitySum += rep.Availability
	r.LeaseLapses += rep.LeaseLapses
	if !rep.OK() && r.First == nil {
		r.First = rep
	}
}

// String summarizes the sweep for CLI output.
func (r *SweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep: %d runs, %d violations\n", r.Runs, r.ViolationN)
	if r.First != nil {
		fmt.Fprintf(&b, "first failure: seed=%d profile=%s\n", r.First.Seed, r.First.Profile)
		for _, v := range r.First.Violations {
			fmt.Fprintf(&b, "  %s\n", v)
		}
		fmt.Fprintf(&b, "repro: %s\n", r.First.Repro())
	}
	return b.String()
}

// Sweep runs the chaos scenario over seeds startSeed..startSeed+seeds-1
// for every profile, reporting the first violating (seed, profile) as a
// minimal repro. Each seed's profile-independent build runs once and is
// re-forked per profile (see ForkedSeedReports); the reduce order stays
// seed-major, and forked runs are byte-identical to cold ones, so the
// result matches the historical run-every-cell-cold sweep exactly.
func Sweep(startSeed int64, seeds int, profiles []Profile, cfg ChaosConfig) *SweepResult {
	res := &SweepResult{}
	for s := int64(0); s < int64(seeds); s++ {
		for _, rep := range ForkedSeedReports(startSeed+s, profiles, cfg) {
			res.Add(rep)
		}
	}
	return res
}
