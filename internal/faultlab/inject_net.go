package faultlab

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// NetInjector binds a schedule's network-visible faults to a bare
// simnet.Network — no federation required. Workload scenarios that drive
// the data plane directly (the overlay CDN) reuse the same generated
// schedules as the full chaos harness, with the node/site/skew fault
// classes degrading to counted no-ops since there is no management plane
// to crash.
type NetInjector struct {
	net     *simnet.Network
	windows []*sim.Window
	trace   []string

	// AppliedN and RevokedN count fault activations; SkippedN counts
	// faults whose class needs a federation and was ignored.
	AppliedN, RevokedN, SkippedN int
}

// InstallNet schedules every network fault of sched against the network
// and returns the injector handle. Like Install, each fault becomes a
// sim.Window so it is applied and revoked exactly once.
func InstallNet(net *simnet.Network, sched *Schedule) *NetInjector {
	inj := &NetInjector{net: net}
	for i := range sched.Faults {
		ft := sched.Faults[i]
		apply, revoke := inj.netActions(ft)
		if apply == nil {
			inj.SkippedN++
			continue
		}
		w := net.Engine().NewWindow(ft.At, ft.Duration,
			func() {
				inj.AppliedN++
				inj.trace = append(inj.trace, fmt.Sprintf("t=%v apply %s", net.Engine().Now(), ft))
				apply()
			},
			func() {
				inj.RevokedN++
				inj.trace = append(inj.trace, fmt.Sprintf("t=%v revoke %s", net.Engine().Now(), ft))
				revoke()
			})
		inj.windows = append(inj.windows, w)
	}
	return inj
}

// netActions maps a fault to its apply/revoke pair on the bare network,
// or (nil, nil) for classes that need a federation.
func (inj *NetInjector) netActions(ft Fault) (apply, revoke func()) {
	n := inj.net
	switch ft.Kind {
	case NetPartition:
		return func() { n.Partition(ft.Site, ft.Peer, true) },
			func() { n.Partition(ft.Site, ft.Peer, false) }
	case LossBurst:
		return func() { n.SetLoss(ft.Site, ft.Peer, ft.Loss) },
			func() { n.ClearLoss(ft.Site, ft.Peer) }
	case LatencyChurn:
		return func() { n.SetLatency(ft.Site, ft.Peer, ft.Latency) },
			func() { n.ClearLatency(ft.Site, ft.Peer) }
	}
	return nil, nil
}

// HealAll force-revokes every window: active faults are lifted now,
// not-yet-applied faults are cancelled.
func (inj *NetInjector) HealAll() {
	for _, w := range inj.windows {
		w.Revoke()
	}
}

// Trace returns the apply/revoke log in execution order.
func (inj *NetInjector) Trace() []string {
	out := make([]string, len(inj.trace))
	copy(out, inj.trace)
	return out
}
